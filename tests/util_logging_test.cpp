#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace nlft::util {
namespace {

struct LogLevelGuard {
  LogLevel saved = logLevel();
  ~LogLevelGuard() { setLogLevel(saved); }
};

TEST(Logging, DefaultLevelIsWarn) {
  const LogLevelGuard guard;
  EXPECT_EQ(logLevel(), LogLevel::Warn);
}

TEST(Logging, SetLevelRoundTrips) {
  const LogLevelGuard guard;
  for (LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    setLogLevel(level);
    EXPECT_EQ(logLevel(), level);
  }
}

TEST(Logging, EmitsToStderrWhenEnabled) {
  const LogLevelGuard guard;
  setLogLevel(LogLevel::Info);
  testing::internal::CaptureStderr();
  NLFT_LOG_INFO("test", "value=%d", 42);
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("INFO"), std::string::npos);
  EXPECT_NE(output.find("test"), std::string::npos);
  EXPECT_NE(output.find("value=42"), std::string::npos);
}

TEST(Logging, FiltersBelowThreshold) {
  const LogLevelGuard guard;
  setLogLevel(LogLevel::Error);
  testing::internal::CaptureStderr();
  NLFT_LOG_INFO("test", "hidden");
  NLFT_LOG_WARN("test", "also hidden");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Logging, OffSilencesEverything) {
  const LogLevelGuard guard;
  setLogLevel(LogLevel::Off);
  testing::internal::CaptureStderr();
  NLFT_LOG_ERROR("test", "even errors");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace nlft::util
