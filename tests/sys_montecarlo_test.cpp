// Monte-Carlo vs analytic Markov cross-validation. The simulation and the
// CTMC models encode the same stochastic assumptions, so the MC estimates
// must agree with the analytic results within sampling error — this is the
// repository's substitute for validation against the SHARPE tool.
#include "sysmodel/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbw/markov_models.hpp"

namespace nlft::sys {
namespace {

constexpr double kYear = 8760.0;

NodeParameters paperParams() { return {}; }  // defaults match the paper

SystemSpec spec(NodeBehavior behavior, std::vector<GroupSpec> groups) {
  SystemSpec s;
  s.behavior = behavior;
  s.params = paperParams();
  s.groups = std::move(groups);
  return s;
}

bbw::ReliabilityParameters bbwParams() { return bbw::ReliabilityParameters::paperDefaults(); }

TEST(MonteCarlo, SingleFsNodeMatchesExponential) {
  const SystemSpec s = spec(NodeBehavior::FailSilent, {{"solo", 1, 1}});
  MonteCarloConfig config;
  config.trials = 30000;
  config.seed = 11;
  config.checkpointHours = {kYear / 4, kYear};
  const MonteCarloResult result = estimateReliability(s, config);
  const double lambda = s.params.lambdaPermanent + s.params.lambdaTransient;
  for (const auto& checkpoint : result.checkpoints) {
    const double expected = std::exp(-lambda * checkpoint.tHours);
    EXPECT_NEAR(checkpoint.reliability.proportion, expected, 0.01) << checkpoint.tHours;
  }
}

TEST(MonteCarlo, SingleNlftNodeMatchesUnmaskedRate) {
  const SystemSpec s = spec(NodeBehavior::Nlft, {{"solo", 1, 1}});
  MonteCarloConfig config;
  config.trials = 30000;
  config.seed = 12;
  config.checkpointHours = {kYear};
  const MonteCarloResult result = estimateReliability(s, config);
  const double rate =
      s.params.lambdaPermanent + s.params.lambdaTransient * (1.0 - 0.99 * 0.9);
  EXPECT_NEAR(result.checkpoints[0].reliability.proportion, std::exp(-rate * kYear), 0.01);
}

TEST(MonteCarlo, CentralUnitDuplexMatchesMarkovChain) {
  for (const auto behavior : {NodeBehavior::FailSilent, NodeBehavior::Nlft}) {
    const SystemSpec s = spec(behavior, {{"cu", 2, 1}});
    MonteCarloConfig config;
    config.trials = 30000;
    config.seed = 13;
    config.checkpointHours = {kYear / 2, kYear};
    const MonteCarloResult result = estimateReliability(s, config);
    const auto chain = bbw::centralUnitChain(
        behavior == NodeBehavior::FailSilent ? bbw::NodeType::FailSilent : bbw::NodeType::Nlft,
        bbwParams());
    for (const auto& checkpoint : result.checkpoints) {
      const double analytic = chain.reliability(checkpoint.tHours);
      EXPECT_NEAR(checkpoint.reliability.proportion, analytic, 0.012)
          << "behavior=" << static_cast<int>(behavior) << " t=" << checkpoint.tHours;
    }
  }
}

TEST(MonteCarlo, WheelSubsystemDegradedMatchesMarkovChain) {
  for (const auto behavior : {NodeBehavior::FailSilent, NodeBehavior::Nlft}) {
    const SystemSpec s = spec(behavior, {{"wns", 4, 3}});
    MonteCarloConfig config;
    config.trials = 30000;
    config.seed = 14;
    config.checkpointHours = {kYear};
    const MonteCarloResult result = estimateReliability(s, config);
    const auto chain = bbw::wheelSubsystemChain(
        behavior == NodeBehavior::FailSilent ? bbw::NodeType::FailSilent : bbw::NodeType::Nlft,
        bbw::FunctionalityMode::Degraded, bbwParams());
    EXPECT_NEAR(result.checkpoints[0].reliability.proportion, chain.reliability(kYear), 0.012)
        << "behavior=" << static_cast<int>(behavior);
  }
}

TEST(MonteCarlo, WheelSubsystemFullMatchesMarkovChain) {
  const SystemSpec s = spec(NodeBehavior::Nlft, {{"wns", 4, 4}});
  MonteCarloConfig config;
  config.trials = 30000;
  config.seed = 15;
  config.checkpointHours = {kYear / 2};
  const MonteCarloResult result = estimateReliability(s, config);
  const auto chain =
      bbw::wheelSubsystemChain(bbw::NodeType::Nlft, bbw::FunctionalityMode::Full, bbwParams());
  EXPECT_NEAR(result.checkpoints[0].reliability.proportion, chain.reliability(kYear / 2), 0.012);
}

TEST(MonteCarlo, FullBbwSystemMatchesAnalyticProduct) {
  for (const auto behavior : {NodeBehavior::FailSilent, NodeBehavior::Nlft}) {
    const SystemSpec s = spec(behavior, {{"cu", 2, 1}, {"wns", 4, 3}});
    MonteCarloConfig config;
    config.trials = 30000;
    config.seed = 16;
    config.checkpointHours = {kYear};
    const MonteCarloResult result = estimateReliability(s, config);
    const bbw::BbwStudy study{bbwParams()};
    const double analytic = study.systemReliability(
        behavior == NodeBehavior::FailSilent ? bbw::NodeType::FailSilent : bbw::NodeType::Nlft,
        bbw::FunctionalityMode::Degraded, kYear);
    EXPECT_NEAR(result.checkpoints[0].reliability.proportion, analytic, 0.012)
        << "behavior=" << static_cast<int>(behavior);
  }
}

TEST(MonteCarlo, MttfMatchesKroneckerComposition) {
  const SystemSpec s = spec(NodeBehavior::Nlft, {{"cu", 2, 1}, {"wns", 4, 3}});
  const util::RunningStats stats = estimateMttf(s, 6000, 17);
  const bbw::BbwStudy study{bbwParams()};
  const double analytic =
      study.systemMttfHours(bbw::NodeType::Nlft, bbw::FunctionalityMode::Degraded);
  EXPECT_NEAR(stats.mean(), analytic, analytic * 0.06);
  // The analytic value must lie inside the MC confidence interval.
  EXPECT_LE(std::abs(stats.mean() - analytic), 3.0 * stats.confidenceHalfWidth(0.95));
}

TEST(MonteCarlo, NlftBeatsFailSilent) {
  MonteCarloConfig config;
  config.trials = 20000;
  config.seed = 18;
  config.checkpointHours = {kYear};
  const auto fs = estimateReliability(
      spec(NodeBehavior::FailSilent, {{"cu", 2, 1}, {"wns", 4, 3}}), config);
  const auto nlft =
      estimateReliability(spec(NodeBehavior::Nlft, {{"cu", 2, 1}, {"wns", 4, 3}}), config);
  EXPECT_GT(nlft.checkpoints[0].reliability.low, fs.checkpoints[0].reliability.high);
}

TEST(MonteCarlo, DeterministicForSameSeed) {
  const SystemSpec s = spec(NodeBehavior::Nlft, {{"cu", 2, 1}});
  MonteCarloConfig config;
  config.trials = 2000;
  config.seed = 19;
  config.checkpointHours = {kYear};
  const auto a = estimateReliability(s, config);
  const auto b = estimateReliability(s, config);
  EXPECT_EQ(a.checkpoints[0].reliability.successes, b.checkpoints[0].reliability.successes);
  EXPECT_EQ(a.failuresWithinHorizon, b.failuresWithinHorizon);
}

TEST(MonteCarlo, LifetimeIsCappedAtHorizon) {
  const SystemSpec s = spec(NodeBehavior::Nlft, {{"solo", 1, 1}});
  util::Rng rng{20};
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(simulateLifetime(s, 100.0, rng), 100.0);
  }
}

TEST(MonteCarlo, ZeroRequirementNeverFailsFromDowntime) {
  // requiredUp = 0: only undetected errors can kill the system.
  SystemSpec s = spec(NodeBehavior::FailSilent, {{"spares", 2, 0}});
  s.params.coverage = 1.0;  // and they never happen
  util::Rng rng{21};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(simulateLifetime(s, 1000.0, rng), 1000.0);
  }
}

TEST(MonteCarlo, InvalidInputThrows) {
  SystemSpec empty;
  util::Rng rng{22};
  EXPECT_THROW((void)simulateLifetime(empty, 1.0, rng), std::invalid_argument);
  SystemSpec bad = spec(NodeBehavior::Nlft, {{"g", 1, 2}});
  EXPECT_THROW((void)simulateLifetime(bad, 1.0, rng), std::invalid_argument);
  MonteCarloConfig config;
  config.checkpointHours = {};
  EXPECT_THROW((void)estimateReliability(spec(NodeBehavior::Nlft, {{"g", 1, 1}}), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace nlft::sys
