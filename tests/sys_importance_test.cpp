// Importance-sampling estimator correctness (docs/ESTIMATORS.md):
//  - identity bias (boosts == 1) reproduces plain Monte-Carlo BIT FOR BIT,
//    with every likelihood-ratio weight exactly 1.0;
//  - on a non-rare configuration the IS estimate agrees with plain MC within
//    overlapping 95% intervals (unbiasedness cross-check);
//  - on a rare-event configuration IS resolves the probability plain MC
//    cannot, with a tighter interval at equal trial count;
//  - results are bit-identical across thread counts;
//  - sequential early stopping honours the precision target.
#include "sysmodel/importance.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nlft::sys {
namespace {

constexpr double kYear = 8760.0;

SystemSpec degradedWheelSpec(NodeBehavior behavior) {
  SystemSpec s;
  s.behavior = behavior;
  s.groups = {{"cu", 2, 1}, {"wns", 4, 3}};
  return s;
}

/// A configuration where failures are common enough (F(1y) ~ 0.15, driven by
/// uncovered errors) that plain MC measures them well: IS vs plain MC
/// agreement is a sharp unbiasedness test here.
SystemSpec nonRareSpec() {
  SystemSpec s;
  s.behavior = NodeBehavior::FailSilent;
  s.params.coverage = 0.95;
  s.groups = {{"cu", 2, 1}};
  return s;
}

MonteCarloConfig mcConfig(std::size_t trials, std::uint64_t seed) {
  MonteCarloConfig config;
  config.trials = trials;
  config.seed = seed;
  config.checkpointHours = {kYear};
  return config;
}

TEST(ImportanceSampling, IdentityBiasReproducesPlainMonteCarloExactly) {
  const SystemSpec s = degradedWheelSpec(NodeBehavior::Nlft);
  const MonteCarloConfig config = mcConfig(5000, 21);
  ImportanceSamplingConfig identity;
  identity.arrivalBoost = 1.0;
  identity.uncoveredBoost = 1.0;

  const MonteCarloResult plain = estimateReliability(s, config);
  const IsReliabilityResult is = estimateReliabilityIs(s, config, identity);

  ASSERT_EQ(is.checkpoints.size(), plain.checkpoints.size());
  // Same seed + same RNG consumption: every trial classifies identically, so
  // the IS failure probability equals the plain MC failure fraction (the
  // incremental mean and the exact ratio can differ in the last ulp only).
  EXPECT_DOUBLE_EQ(is.checkpoints[0].failureProbability,
                   1.0 - plain.checkpoints[0].reliability.proportion);
  // Every weight is exactly 1.0: sum-of-weights and ESS equal the trial
  // count exactly, and the weight coefficient of variation is exactly zero.
  EXPECT_EQ(is.weightDiagnostics.sumWeights(), static_cast<double>(is.trials));
  EXPECT_EQ(is.weightDiagnostics.effectiveSampleSize(),
            static_cast<double>(is.trials));
  EXPECT_EQ(is.weightDiagnostics.weightCv(), 0.0);
}

TEST(ImportanceSampling, AgreesWithPlainMonteCarloOnNonRareConfig) {
  const SystemSpec s = nonRareSpec();
  const MonteCarloConfig config = mcConfig(20000, 22);
  ImportanceSamplingConfig bias;
  bias.arrivalBoost = 2.0;

  const MonteCarloResult plain = estimateReliability(s, config);
  const IsReliabilityResult is = estimateReliabilityIs(s, config, bias);

  const auto& mc = plain.checkpoints[0].reliability;
  const double mcFailLow = 1.0 - mc.high;
  const double mcFailHigh = 1.0 - mc.low;
  const double isLow = is.checkpoints[0].failureProbability - is.checkpoints[0].halfWidth;
  const double isHigh = is.checkpoints[0].failureProbability + is.checkpoints[0].halfWidth;
  // Overlapping 95% intervals — the estimators target the same quantity.
  EXPECT_LT(isLow, mcFailHigh);
  EXPECT_GT(isHigh, mcFailLow);
  EXPECT_GT(is.weightDiagnostics.effectiveSampleSize(), 0.0);
}

TEST(ImportanceSampling, ResolvesRareEventTighterThanPlainMonteCarlo) {
  // Paper parameters, NLFT degraded wheel group: one-year system failure is
  // rare enough that a few thousand plain trials see almost none.
  const SystemSpec s = degradedWheelSpec(NodeBehavior::Nlft);
  const MonteCarloConfig config = mcConfig(4000, 23);
  ImportanceSamplingConfig bias;
  bias.arrivalBoost = 15.0;
  bias.uncoveredBoost = 5.0;

  const MonteCarloResult plain = estimateReliability(s, config);
  const IsReliabilityResult is = estimateReliabilityIs(s, config, bias);

  EXPECT_GT(is.checkpoints[0].failureProbability, 0.0);
  const auto& mc = plain.checkpoints[0].reliability;
  const double plainHalfWidth = (mc.high - mc.low) / 2.0;
  EXPECT_LT(is.checkpoints[0].halfWidth, plainHalfWidth);
}

TEST(ImportanceSampling, CensoredWeightsStayUnbiasedOnShortHorizons) {
  // Regression test for the horizon-censored likelihood ratio. On a short
  // mission almost every boosted arrival draw lands past the horizon; with
  // the raw density ratio those censored draws have unbounded weight
  // variance (E[w^2] diverges for boosts >= 2), the effective sample size
  // collapses to a handful of trials and the estimate comes out orders of
  // magnitude low. The survival-ratio censoring keeps the weights bounded:
  // the IS estimate must agree with plain MC and keep a healthy ESS.
  const SystemSpec s = degradedWheelSpec(NodeBehavior::Nlft);
  MonteCarloConfig config = mcConfig(12000, 26);
  config.checkpointHours = {48.0};
  ImportanceSamplingConfig bias;
  bias.arrivalBoost = 15.0;
  bias.uncoveredBoost = 5.0;

  const MonteCarloResult plain = estimateReliability(s, config);
  const IsReliabilityResult is = estimateReliabilityIs(s, config, bias);

  const auto& mc = plain.checkpoints[0].reliability;
  const double isLow = is.checkpoints[0].failureProbability - is.checkpoints[0].halfWidth;
  const double isHigh = is.checkpoints[0].failureProbability + is.checkpoints[0].halfWidth;
  EXPECT_LT(isLow, 1.0 - mc.low);
  EXPECT_GT(isHigh, 1.0 - mc.high);
  // The broken (uncensored) estimator drops to ESS ~ 4 out of 12000 here.
  EXPECT_GT(is.weightDiagnostics.effectiveSampleSize(), 12000.0 / 4.0);
  EXPECT_LT(is.checkpoints[0].halfWidth, (mc.high - mc.low) / 2.0);
}

TEST(ImportanceSampling, BitIdenticalAcrossThreadCounts) {
  const SystemSpec s = degradedWheelSpec(NodeBehavior::Nlft);
  ImportanceSamplingConfig bias;
  bias.arrivalBoost = 10.0;

  MonteCarloConfig config = mcConfig(3000, 24);
  config.parallelism.chunkSize = 125;
  config.parallelism.threads = 1;
  const IsReliabilityResult serial = estimateReliabilityIs(s, config, bias);
  for (unsigned threads : {2u, 8u}) {
    config.parallelism.threads = threads;
    const IsReliabilityResult parallel = estimateReliabilityIs(s, config, bias);
    EXPECT_EQ(parallel.checkpoints[0].failureProbability,
              serial.checkpoints[0].failureProbability)
        << "threads=" << threads;
    EXPECT_EQ(parallel.weightDiagnostics.sumWeights(), serial.weightDiagnostics.sumWeights())
        << "threads=" << threads;
  }
}

TEST(ImportanceSampling, EarlyStoppingHonoursPrecisionTarget) {
  const SystemSpec s = nonRareSpec();
  MonteCarloConfig config = mcConfig(50000, 25);
  config.parallelism.chunkSize = 500;
  config.target.ciHalfWidth = 0.02;
  config.target.minTrials = 1000;

  const MonteCarloResult plain = estimateReliability(s, config);
  EXPECT_TRUE(plain.stoppedEarly);
  EXPECT_LT(plain.trials, 50000u);
  EXPECT_EQ(plain.trials % 500, 0u);  // chunk boundary
  const auto& mc = plain.checkpoints[0].reliability;
  EXPECT_LE((mc.high - mc.low) / 2.0, config.target.ciHalfWidth);

  // Same target, different thread count: identical stopped result.
  config.parallelism.threads = 4;
  const MonteCarloResult parallel = estimateReliability(s, config);
  EXPECT_EQ(parallel.trials, plain.trials);
  EXPECT_EQ(parallel.checkpoints[0].reliability.proportion, mc.proportion);
}

TEST(ImportanceSampling, MttfIdentityBiasMatchesPlainEstimator) {
  const SystemSpec s = nonRareSpec();
  const util::RunningStats plain = estimateMttf(s, 2000, 31);
  const MttfIsEstimate is = estimateMttfIs(s, 2000, 31, {1.0, 1.0});
  EXPECT_EQ(is.weightedLifetimes.mean(), plain.mean());
  EXPECT_EQ(is.weightDiagnostics.sumWeights(), 2000.0);
  EXPECT_EQ(is.weightDiagnostics.weightCv(), 0.0);
}

TEST(ImportanceSampling, BoostedMttfAgreesWithinConfidenceIntervals) {
  const SystemSpec s = nonRareSpec();
  const util::RunningStats plain = estimateMttf(s, 20000, 32);
  ImportanceSamplingConfig bias;
  bias.arrivalBoost = 1.5;
  const MttfIsEstimate is = estimateMttfIs(s, 20000, 32, bias);
  const double plainHw = plain.confidenceHalfWidth();
  const double isHw = is.weightedLifetimes.confidenceHalfWidth();
  EXPECT_LT(is.weightedLifetimes.mean() - isHw, plain.mean() + plainHw);
  EXPECT_GT(is.weightedLifetimes.mean() + isHw, plain.mean() - plainHw);
}

TEST(ImportanceSampling, RejectsNonPositiveBoosts) {
  const SystemSpec s = nonRareSpec();
  const MonteCarloConfig config = mcConfig(10, 1);
  EXPECT_THROW((void)estimateReliabilityIs(s, config, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)estimateReliabilityIs(s, config, {1.0, -2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace nlft::sys
