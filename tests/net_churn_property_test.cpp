// Membership under random churn: after an arbitrary sequence of node
// deaths and restarts followed by a quiet period, every alive node's view
// converges to exactly the set of alive nodes.
#include <gtest/gtest.h>

#include "net/membership.hpp"
#include "util/rng.hpp"

namespace nlft::net {
namespace {

using util::Duration;
using util::Rng;
using util::SimTime;

class ChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnProperty, ViewsConvergeAfterQuiescence) {
  Rng rng{GetParam()};
  sim::Simulator simulator;
  TdmaConfig config;
  config.slotLength = Duration::milliseconds(1);
  const int nodeCount = 3 + static_cast<int>(rng.uniformInt(4));  // 3..6 nodes
  for (int i = 1; i <= nodeCount; ++i) config.staticSchedule.push_back(i);

  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};
  std::vector<bool> alive(nodeCount + 1, true);
  for (int i = 1; i <= nodeCount; ++i) membership.addNode(i);
  membership.start();

  // Random churn for ~50 cycles.
  const Duration cycle = bus.cycleLength();
  const int churnEvents = 5 + static_cast<int>(rng.uniformInt(15));
  for (int event = 0; event < churnEvents; ++event) {
    const auto atUs = static_cast<std::int64_t>(rng.uniformInt(50 * cycle.us()));
    const NodeId victim = 1 + static_cast<NodeId>(rng.uniformInt(nodeCount));
    const bool makeAlive = rng.bernoulli(0.5);
    simulator.scheduleAt(SimTime::fromUs(atUs), [&membership, &alive, victim, makeAlive] {
      membership.setAlive(victim, makeAlive);
      alive[victim] = makeAlive;
    });
  }

  // Quiet period: enough cycles for every expulsion and reintegration.
  simulator.runUntil(SimTime::fromUs(50 * cycle.us() + 10 * cycle.us()));

  std::set<NodeId> aliveSet;
  for (int i = 1; i <= nodeCount; ++i) {
    if (alive[i]) aliveSet.insert(i);
  }
  for (int i = 1; i <= nodeCount; ++i) {
    if (!alive[i]) {
      EXPECT_TRUE(membership.membershipView(i).empty()) << "dead node " << i;
      continue;
    }
    EXPECT_EQ(membership.membershipView(i), aliveSet) << "observer " << i;
  }
}

TEST_P(ChurnProperty, ViewsNeverContainLongDeadNodes) {
  // Even DURING churn, a node dead for > missTolerance+1 cycles must not be
  // in anyone's view.
  Rng rng{GetParam() ^ 0xD00D};
  sim::Simulator simulator;
  TdmaConfig config;
  config.slotLength = Duration::milliseconds(1);
  config.staticSchedule = {1, 2, 3, 4};
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};
  for (NodeId i = 1; i <= 4; ++i) membership.addNode(i);
  membership.start();

  const NodeId victim = 1 + static_cast<NodeId>(rng.uniformInt(4));
  const auto deadAtUs = static_cast<std::int64_t>(4000 + rng.uniformInt(20'000));
  simulator.scheduleAt(SimTime::fromUs(deadAtUs),
                       [&membership, victim] { membership.setAlive(victim, false); });
  // Check at several instants well after death.
  const Duration cycle = bus.cycleLength();
  for (int k = 3; k <= 6; ++k) {
    simulator.runUntil(SimTime::fromUs(deadAtUs + k * cycle.us()));
    for (NodeId observer = 1; observer <= 4; ++observer) {
      if (observer == victim) continue;
      EXPECT_FALSE(membership.isMember(observer, victim)) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace nlft::net
