// Differential equivalence suite of the snapshot/copy-on-inject engine
// (ctest label "snapshot"; docs/SNAPSHOT.md).
//
// The engine's only correctness claim is EQUIVALENCE: everything observable
// — trace-sink event streams, metrics fingerprints, campaign statistics —
// must be bit-identical whether a run executes straight through or resumes
// from a snapshot, at every split point and every thread count. This suite
// pins that claim on:
//   - every checked-in golden trace, straight vs snapshot-resume at 5
//     seeded split points;
//   - every checked-in fuzz-corpus case, comparing metrics fingerprints and
//     state fingerprints the same way;
//   - the machine-level TEM and fail-silent campaigns, straight vs
//     snapshot execution across threads {1, 2, 8};
//   - the MachineBaseline fork path, including out-of-order forks that
//     exercise the rewind + snapshot-cache resume;
//   - the fuzzer's det.replay oracle, which must report a deliberately
//     corrupted checkpoint restore as a violation instead of caching it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bbw/guest_programs.hpp"
#include "bbw/system_sim.hpp"
#include "faults/campaign.hpp"
#include "faults/golden_trace.hpp"
#include "faults/snapshot_exec.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/oracles.hpp"
#include "obs/metrics.hpp"
#include "snap/cache.hpp"
#include "util/rng.hpp"

namespace nlft {
namespace {

using bbw::BbwSimConfig;
using bbw::BbwSystemSim;

/// Five deterministic split points per case, spread over the braking
/// manoeuvre (the stop completes within ~3.5 simulated seconds).
std::vector<std::int64_t> seededSplitPoints(std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<std::int64_t> splits;
  for (int i = 0; i < 5; ++i) {
    splits.push_back(static_cast<std::int64_t>(100'000 + rng.uniformInt(3'200'000)));
  }
  return splits;
}

TEST(SnapshotDifferential, EveryGoldenTraceIsSplitInvariant) {
  for (const std::string& name : fi::goldenScenarioNames()) {
    const std::vector<std::string> straight = fi::recordScenarioTrace(name);
    std::uint64_t seed = 0x600d;
    for (const char c : name) seed = seed * 131 + static_cast<unsigned char>(c);
    for (const std::int64_t splitUs : seededSplitPoints(seed)) {
      SCOPED_TRACE(name + " split=" + std::to_string(splitUs) + "us");
      const std::vector<std::string> resumed = fi::recordScenarioTraceResumed(name, splitUs);
      const fi::TraceDiff diff = fi::compareTraces(straight, resumed);
      EXPECT_TRUE(diff.identical)
          << "first divergence at line " << diff.line << "\n  straight: " << diff.expected
          << "\n  resumed:  " << diff.actual;
    }
  }
}

BbwSimConfig configFor(const fuzz::ScenarioParams& params) {
  BbwSimConfig config;
  config.nodeType = params.nodeType;
  config.initialSpeedMps = params.initialSpeedMps;
  config.pedal = params.pedal;
  config.restartTime = util::Duration::microseconds(params.restartTimeUs);
  return config;
}

void applyEvents(BbwSystemSim& sim, const std::vector<fuzz::ScheduleEvent>& events) {
  for (const fuzz::ScheduleEvent& event : events) {
    const util::SimTime at = util::SimTime::fromUs(event.atUs);
    switch (event.kind) {
      case fuzz::EventKind::ComputationFault: sim.injectComputationFault(event.node, at); break;
      case fuzz::EventKind::DetectedError: sim.injectDetectedError(event.node, at); break;
      case fuzz::EventKind::KernelError: sim.injectKernelError(event.node, at); break;
      case fuzz::EventKind::OmissionFailure: sim.injectOmissionFailure(event.node, at); break;
      case fuzz::EventKind::ValueFailure: sim.injectValueFailure(event.node, at); break;
      case fuzz::EventKind::BusCorruption:
        sim.injectBusCorruption(event.node, at, event.flipBits);
        break;
    }
  }
}

TEST(SnapshotDifferential, EveryCorpusCaseIsSplitInvariant) {
  const std::vector<fuzz::CorpusEntry> corpus = fuzz::loadCorpusDir(NLFT_FUZZ_CORPUS_DIR);
  ASSERT_GE(corpus.size(), 6u);
  for (const fuzz::CorpusEntry& entry : corpus) {
    const BbwSimConfig config = configFor(entry.scenario.params);

    obs::Registry straightMetrics;
    BbwSystemSim straight{config};
    straight.setMetricsRegistry(&straightMetrics);
    applyEvents(straight, entry.scenario.events);
    const bbw::BbwSimResult straightResult = straight.run();
    const std::string straightFingerprint = straightMetrics.goldenFingerprint();
    const std::uint64_t straightState = straight.stateFingerprint();

    for (const std::int64_t splitUs : seededSplitPoints(entry.key)) {
      SCOPED_TRACE(entry.signature + " split=" + std::to_string(splitUs) + "us");
      BbwSystemSim producer{config};
      applyEvents(producer, entry.scenario.events);
      producer.runUntil(util::SimTime::fromUs(splitUs));
      const std::vector<std::uint8_t> checkpoint = producer.saveState();

      // Metrics attach BEFORE restore, so the replayed prefix streams the
      // same live samples (e2e latency histogram) as the straight run.
      obs::Registry resumedMetrics;
      BbwSystemSim resumed{config};
      resumed.setMetricsRegistry(&resumedMetrics);
      resumed.restoreState(checkpoint);
      const bbw::BbwSimResult resumedResult = resumed.run();

      EXPECT_EQ(straightFingerprint, resumedMetrics.goldenFingerprint());
      EXPECT_EQ(straightState, resumed.stateFingerprint());
      EXPECT_EQ(straightResult.stopped, resumedResult.stopped);
      EXPECT_EQ(straightResult.stoppingDistanceM, resumedResult.stoppingDistanceM);
      EXPECT_EQ(straightResult.commandFramesDelivered, resumedResult.commandFramesDelivered);
      EXPECT_EQ(straightResult.errorsMaskedByTem, resumedResult.errorsMaskedByTem);
      EXPECT_EQ(straightResult.busFramesDropped, resumedResult.busFramesDropped);
    }
  }
}

bool sameMechanisms(const fi::DetectionMechanismCounts& a, const fi::DetectionMechanismCounts& b) {
  return a.illegalInstruction == b.illegalInstruction && a.addressError == b.addressError &&
         a.busError == b.busError && a.divideByZero == b.divideByZero &&
         a.mmuViolation == b.mmuViolation && a.stackOverflow == b.stackOverflow &&
         a.executionTimeMonitor == b.executionTimeMonitor &&
         a.outputUnreadable == b.outputUnreadable && a.temComparison == b.temComparison &&
         a.eccCorrected == b.eccCorrected && a.endToEndCheck == b.endToEndCheck;
}

/// Outcome statistics only — the snap counters legitimately differ between
/// execution modes (that difference IS the speedup).
bool sameTemOutcomes(const fi::TemCampaignStats& a, const fi::TemCampaignStats& b) {
  return sameMechanisms(a.mechanisms, b.mechanisms) && a.experiments == b.experiments &&
         a.notActivated == b.notActivated && a.maskedByEcc == b.maskedByEcc &&
         a.maskedByVote == b.maskedByVote && a.maskedByRestart == b.maskedByRestart &&
         a.omissionVoteFailed == b.omissionVoteFailed && a.omissionNoBudget == b.omissionNoBudget &&
         a.undetected == b.undetected;
}

bool sameFsOutcomes(const fi::FsCampaignStats& a, const fi::FsCampaignStats& b) {
  return a.experiments == b.experiments && a.notActivated == b.notActivated &&
         a.maskedByEcc == b.maskedByEcc && a.failSilent == b.failSilent &&
         a.detectedByEndToEnd == b.detectedByEndToEnd && a.undetected == b.undetected;
}

bool sameSnapCounters(const fi::SnapCounters& a, const fi::SnapCounters& b) {
  return a.simulatedCycles == b.simulatedCycles && a.snapshotHits == b.snapshotHits &&
         a.snapshotMisses == b.snapshotMisses && a.snapshotBytes == b.snapshotBytes &&
         a.resumePoints == b.resumePoints && a.replayedCopies == b.replayedCopies &&
         a.executedCopies == b.executedCopies && a.straightFallbacks == b.straightFallbacks;
}

TEST(SnapshotDifferential, CampaignStatisticsMatchAcrossModesAndThreads) {
  for (const bbw::GuestProgram& program : bbw::guestPrograms()) {
    SCOPED_TRACE(program.name);
    const fi::TaskImage image = program.makeNominalImage();
    fi::CampaignConfig config;
    config.experiments = 600;
    config.seed = 29;
    config.parallelism.chunkSize = 75;

    config.mode = fi::ExecutionMode::Straight;
    const fi::TemCampaignStats temStraight = fi::runTemCampaign(image, config);
    const fi::FsCampaignStats fsStraight = fi::runFsCampaign(image, config);

    config.mode = fi::ExecutionMode::Snapshot;
    const fi::TemCampaignStats temSnapshot = fi::runTemCampaign(image, config);
    const fi::FsCampaignStats fsSnapshot = fi::runFsCampaign(image, config);

    // Straight vs snapshot: identical outcome statistics, fewer simulated
    // cycles.
    EXPECT_TRUE(sameTemOutcomes(temStraight, temSnapshot));
    EXPECT_TRUE(sameFsOutcomes(fsStraight, fsSnapshot));
    EXPECT_LT(temSnapshot.snap.simulatedCycles, temStraight.snap.simulatedCycles);

    // Snapshot mode across threads {2, 8}: EVERYTHING identical, including
    // the snap counters (pure sums merged in chunk order).
    for (const unsigned threads : {2u, 8u}) {
      SCOPED_TRACE(threads);
      config.parallelism.threads = threads;
      const fi::TemCampaignStats temThreaded = fi::runTemCampaign(image, config);
      const fi::FsCampaignStats fsThreaded = fi::runFsCampaign(image, config);
      EXPECT_TRUE(sameTemOutcomes(temSnapshot, temThreaded));
      EXPECT_TRUE(sameSnapCounters(temSnapshot.snap, temThreaded.snap));
      EXPECT_TRUE(sameFsOutcomes(fsSnapshot, fsThreaded));
      EXPECT_TRUE(sameSnapCounters(fsSnapshot.snap, fsThreaded.snap));
    }
    config.parallelism.threads = 1;
  }
}

TEST(SnapshotDifferential, MachineBaselineForkMatchesStraightExecutionEvenOutOfOrder) {
  const fi::TaskImage image = bbw::guestPrograms().front().makeNominalImage();
  const std::vector<std::uint8_t> baseline = fi::machineBaselineSnapshot(image);

  hw::Machine start{image.memBytes};
  start.restoreState(baseline);
  snap::SnapshotCache cache{1u << 20};
  fi::MachineBaseline forked{start, 1, 4, cache};
  hw::Machine scratch{image.memBytes};

  // Deliberately out-of-order fork targets: the rewinds exercise the
  // snapshot-cache resume path that sorted campaigns never need.
  for (const std::uint64_t target : {std::uint64_t{12}, std::uint64_t{3}, std::uint64_t{17},
                                     std::uint64_t{8}, std::uint64_t{0}, std::uint64_t{15}}) {
    SCOPED_TRACE(target);
    forked.forkAt(target, scratch);

    hw::Machine straight{image.memBytes};
    straight.restoreState(baseline);
    (void)straight.run(target);
    EXPECT_EQ(straight.saveState(), scratch.saveState());
  }
}

TEST(SnapshotDifferential, CorruptedCheckpointRestoreIsAViolationNotACacheEntry) {
  fuzz::Scenario scenario;
  scenario.events.push_back(
      {fuzz::EventKind::ComputationFault, bbw::kWheelNodeBase, 500'000, {}});

  fuzz::OracleConfig corrupting = fuzz::resolveOracleConfig({});
  corrupting.checkTemMonotone = false;
  corrupting.corruptReplayCheckpoint = [](std::vector<std::uint8_t>& blob) {
    blob[blob.size() / 2] ^= 0x20;
  };

  fuzz::GoldenCache cache;
  const fuzz::ScenarioVerdict corrupted =
      fuzz::evaluateScenario(scenario, corrupting, &cache);
  bool reported = false;
  for (const fuzz::OracleViolation& violation : corrupted.violations) {
    if (violation.oracle == "det.replay") reported = true;
  }
  EXPECT_TRUE(reported) << "corrupted restore did not raise det.replay";

  // Same cache, corruption off: a clean verdict with no violations — the
  // corrupted restore cached NOTHING.
  fuzz::OracleConfig clean = corrupting;
  clean.corruptReplayCheckpoint = nullptr;
  const fuzz::ScenarioVerdict verdict = fuzz::evaluateScenario(scenario, clean, &cache);
  EXPECT_TRUE(verdict.valid);
  EXPECT_TRUE(verdict.violations.empty());
}

}  // namespace
}  // namespace nlft
