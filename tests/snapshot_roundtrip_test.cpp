// Property tests for the versioned snapshot state format (ctest label
// "snapshot"; docs/SNAPSHOT.md).
//
// Pins the contract of hw::Machine::saveState/restoreState and the
// BbwSystemSim replay checkpoints:
//   - save -> restore -> save is byte-identical for randomized states;
//   - truncated or bit-flipped blobs are rejected by the per-section CRC
//     with a diagnostic NAMING the damaged section;
//   - a blob with a bumped format version fails loudly instead of being
//     misparsed;
//   - a blob of the wrong KIND (machine vs system) is refused;
//   - fi::runTracedCopy verifies the reconstructed machine against the
//     campaign baseline snapshot and throws on drift (regression for the
//     silent-drift hazard).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bbw/guest_programs.hpp"
#include "bbw/system_sim.hpp"
#include "faults/campaign.hpp"
#include "faults/snapshot_exec.hpp"
#include "hw/machine.hpp"
#include "snap/blob.hpp"
#include "util/rng.hpp"

namespace nlft {
namespace {

using bbw::BbwSimConfig;
using bbw::BbwSystemSim;

/// A machine in a randomized mid-execution state: the guest image loaded,
/// then advanced by a random number of instructions.
hw::Machine randomizedMachine(const fi::TaskImage& image, util::Rng& rng) {
  hw::Machine machine{image.memBytes};
  machine.restoreState(fi::machineBaselineSnapshot(image));
  (void)machine.run(rng.uniformInt(40));
  return machine;
}

TEST(SnapshotRoundtrip, MachineSaveRestoreSaveIsByteIdentical) {
  util::Rng rng{0x5eed5eedULL};
  for (const bbw::GuestProgram& program : bbw::guestPrograms()) {
    SCOPED_TRACE(program.name);
    const fi::TaskImage image = program.makeNominalImage();
    for (int round = 0; round < 8; ++round) {
      hw::Machine machine = randomizedMachine(image, rng);
      const std::vector<std::uint8_t> first = machine.saveState();

      hw::Machine restored{image.memBytes};
      restored.restoreState(first);
      EXPECT_EQ(first, restored.saveState());
      EXPECT_EQ(fi::behaviorDigest(machine), fi::behaviorDigest(restored));
    }
  }
}

TEST(SnapshotRoundtrip, RestoredMachineContinuesBitIdentically) {
  util::Rng rng{0xabcdefULL};
  const fi::TaskImage image = bbw::guestPrograms().front().makeNominalImage();
  for (int round = 0; round < 4; ++round) {
    hw::Machine machine = randomizedMachine(image, rng);
    hw::Machine restored{image.memBytes};
    restored.restoreState(machine.saveState());
    (void)machine.run(10);
    (void)restored.run(10);
    EXPECT_EQ(machine.saveState(), restored.saveState());
  }
}

TEST(SnapshotRoundtrip, SystemSaveRestoreSaveIsByteIdentical) {
  util::Rng rng{0x5751e3ULL};
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    BbwSimConfig config;
    config.initialSpeedMps = 20.0 + rng.uniform(0.0, 15.0);
    config.pedal = 0.7 + rng.uniform(0.0, 0.3);

    BbwSystemSim producer{config};
    const net::NodeId node =
        static_cast<net::NodeId>(1 + rng.uniformInt(6));
    producer.injectComputationFault(node, util::SimTime::fromUs(400000));
    if (rng.bernoulli(0.5)) {
      producer.injectKernelError(bbw::kWheelNodeBase, util::SimTime::fromUs(700000));
    }
    producer.runUntil(util::SimTime::fromUs(
        static_cast<std::int64_t>(200000 + rng.uniformInt(2000000))));
    const std::vector<std::uint8_t> first = producer.saveState();

    BbwSystemSim restored{config};
    restored.restoreState(first);
    EXPECT_EQ(first, restored.saveState());
    EXPECT_EQ(producer.stateFingerprint(), restored.stateFingerprint());
  }
}

TEST(SnapshotRoundtrip, TruncatedMachineBlobIsRejected) {
  const fi::TaskImage image = bbw::guestPrograms().front().makeNominalImage();
  const std::vector<std::uint8_t> blob = fi::machineBaselineSnapshot(image);
  // Every truncation point, from the empty blob to one byte short, must be
  // refused — never silently half-restored.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{7}, std::size_t{20}, blob.size() / 2,
        blob.size() - 1}) {
    SCOPED_TRACE(keep);
    const std::vector<std::uint8_t> truncated(blob.begin(),
                                              blob.begin() + static_cast<std::ptrdiff_t>(keep));
    hw::Machine machine{image.memBytes};
    EXPECT_THROW(machine.restoreState(truncated), snap::BlobError);
  }
}

TEST(SnapshotRoundtrip, BitFlippedMachineBlobNamesTheDamagedSection) {
  const fi::TaskImage image = bbw::guestPrograms().front().makeNominalImage();
  const std::vector<std::uint8_t> blob = fi::machineBaselineSnapshot(image);
  // The first section of a machine blob is "cpu": a flip inside its payload
  // must produce a CRC diagnostic that names it.
  std::vector<std::uint8_t> corrupted = blob;
  corrupted[16] ^= 0x01;  // inside the "cpu" section payload
  hw::Machine machine{image.memBytes};
  try {
    machine.restoreState(corrupted);
    FAIL() << "corrupted blob was accepted";
  } catch (const snap::BlobError& error) {
    EXPECT_NE(std::string{error.what()}.find("'cpu'"), std::string::npos) << error.what();
  }

  // A flip deep in the blob damages a later section — still caught, still
  // named (whichever section it lands in).
  corrupted = blob;
  corrupted[blob.size() / 2] ^= 0x80;
  try {
    machine.restoreState(corrupted);
    FAIL() << "corrupted blob was accepted";
  } catch (const snap::BlobError& error) {
    EXPECT_NE(std::string{error.what()}.find("section"), std::string::npos) << error.what();
  }
}

TEST(SnapshotRoundtrip, BitFlippedSystemBlobNamesTheDamagedSection) {
  BbwSystemSim producer{BbwSimConfig{}};
  producer.runUntil(util::SimTime::fromUs(500000));
  const std::vector<std::uint8_t> blob = producer.saveState();
  std::vector<std::uint8_t> corrupted = blob;
  corrupted[10] ^= 0x04;  // inside the "config" section
  BbwSystemSim fresh{BbwSimConfig{}};
  try {
    fresh.restoreState(corrupted);
    FAIL() << "corrupted blob was accepted";
  } catch (const snap::BlobError& error) {
    EXPECT_NE(std::string{error.what()}.find("'config'"), std::string::npos) << error.what();
  }
}

TEST(SnapshotRoundtrip, VersionBumpFailsLoudly) {
  const fi::TaskImage image = bbw::guestPrograms().front().makeNominalImage();
  std::vector<std::uint8_t> blob = fi::machineBaselineSnapshot(image);
  // Header layout: u32 magic, u16 kind, u16 version (little-endian).
  blob[6] += 1;
  hw::Machine machine{image.memBytes};
  try {
    machine.restoreState(blob);
    FAIL() << "version-bumped blob was accepted";
  } catch (const snap::BlobError& error) {
    EXPECT_NE(std::string{error.what()}.find("version"), std::string::npos) << error.what();
  }
}

TEST(SnapshotRoundtrip, WrongKindIsRefused) {
  // A machine blob restored into a system simulation (and vice versa) must
  // be refused by the kind field, not misparsed.
  const fi::TaskImage image = bbw::guestPrograms().front().makeNominalImage();
  const std::vector<std::uint8_t> machineBlob = fi::machineBaselineSnapshot(image);
  BbwSystemSim fresh{BbwSimConfig{}};
  EXPECT_THROW(fresh.restoreState(machineBlob), snap::BlobError);

  BbwSystemSim producer{BbwSimConfig{}};
  producer.runUntil(util::SimTime::fromUs(200000));
  const std::vector<std::uint8_t> systemBlob = producer.saveState();
  hw::Machine machine{image.memBytes};
  EXPECT_THROW(machine.restoreState(systemBlob), snap::BlobError);
}

TEST(SnapshotRoundtrip, RestoreIntoUsedSystemSimIsRefused) {
  BbwSystemSim producer{BbwSimConfig{}};
  producer.runUntil(util::SimTime::fromUs(300000));
  const std::vector<std::uint8_t> blob = producer.saveState();

  BbwSystemSim advanced{BbwSimConfig{}};
  advanced.runUntil(util::SimTime::fromUs(1000));
  EXPECT_THROW(advanced.restoreState(blob), std::runtime_error);

  BbwSystemSim injected{BbwSimConfig{}};
  injected.injectComputationFault(bbw::kCuA, util::SimTime::fromUs(500000));
  EXPECT_THROW(injected.restoreState(blob), std::runtime_error);
}

TEST(SnapshotRoundtrip, SystemConfigMismatchIsRefused) {
  BbwSimConfig config;
  BbwSystemSim producer{config};
  producer.runUntil(util::SimTime::fromUs(300000));
  const std::vector<std::uint8_t> blob = producer.saveState();

  BbwSimConfig other = config;
  other.initialSpeedMps += 1.0;
  BbwSystemSim mismatched{other};
  try {
    mismatched.restoreState(blob);
    FAIL() << "checkpoint restored under a different configuration";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string{error.what()}.find("configuration"), std::string::npos)
        << error.what();
  }
}

// Regression for the silent-drift hazard: runTracedCopy reconstructs a
// fresh machine, so an image mutated between the campaign and the traced
// run used to silently yield a trace of a DIFFERENT program. With the
// campaign baseline passed it must throw instead.
TEST(SnapshotRoundtrip, TracedCopyDetectsDriftFromCampaignBaseline) {
  const fi::TaskImage image = bbw::guestPrograms().front().makeNominalImage();
  const std::vector<std::uint8_t> baseline = fi::machineBaselineSnapshot(image);

  // Unperturbed: verification passes and the traced run completes.
  const fi::TracedRun clean = fi::runTracedCopy(image, std::nullopt, &baseline);
  EXPECT_FALSE(clean.pcTrace.empty());

  // Perturb one input word: the reconstructed machine no longer matches the
  // campaign baseline byte-for-byte.
  fi::TaskImage drifted = image;
  ASSERT_FALSE(drifted.input.empty());
  drifted.input.front() ^= 1u;
  EXPECT_THROW((void)fi::runTracedCopy(drifted, std::nullopt, &baseline), std::runtime_error);

  // Without the baseline the drifted image still runs — the check is what
  // closes the hazard.
  EXPECT_NO_THROW((void)fi::runTracedCopy(drifted, std::nullopt));
}

}  // namespace
}  // namespace nlft
