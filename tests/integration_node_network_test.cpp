// Cross-module integration: two NlftNode instances (a duplex pair) on a
// TDMA bus with heartbeat membership and the dynamic-segment state-resync
// protocol — the full "omission failure -> partner provides state ->
// reintegration" story the paper sketches in its future-work section.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "net/membership.hpp"
#include "net/state_resync.hpp"

namespace nlft {
namespace {

using util::Duration;
using util::SimTime;

constexpr net::NodeId kNodeA = 1;
constexpr net::NodeId kNodeB = 2;
constexpr net::StateId32 kFilterState = 0xF117;

struct DuplexFixture : ::testing::Test {
  sim::Simulator simulator;
  net::TdmaConfig busConfig;
  std::unique_ptr<net::TdmaBus> bus;
  std::unique_ptr<net::MembershipService> membership;
  std::unique_ptr<net::StateResyncService> resync;
  std::unique_ptr<tem::NlftNode> nodeA;
  std::unique_ptr<tem::NlftNode> nodeB;
  // The replicated application state: a smoothed setpoint each node
  // maintains (identical while both are healthy — replica determinism).
  std::uint32_t stateA = 0;
  std::uint32_t stateB = 0;

  void SetUp() override {
    busConfig.slotLength = Duration::milliseconds(1);
    busConfig.staticSchedule = {kNodeA, kNodeB};
    busConfig.dynamicMinislots = 4;
    busConfig.minislotLength = Duration::microseconds(250);
    bus = std::make_unique<net::TdmaBus>(simulator, busConfig);
    membership = std::make_unique<net::MembershipService>(simulator, *bus);
    membership->addNode(kNodeA);
    membership->addNode(kNodeB);
    resync = std::make_unique<net::StateResyncService>(simulator, *bus);
    resync->addNode(kNodeA, [this](net::StateId32 id)
                                -> std::optional<std::vector<std::uint32_t>> {
      if (id == kFilterState && !nodeA->silent()) return std::vector<std::uint32_t>{stateA};
      return std::nullopt;
    });
    resync->addNode(kNodeB, [this](net::StateId32 id)
                                -> std::optional<std::vector<std::uint32_t>> {
      if (id == kFilterState && !nodeB->silent()) return std::vector<std::uint32_t>{stateB};
      return std::nullopt;
    });

    nodeA = makeNode(kNodeA, stateA);
    nodeB = makeNode(kNodeB, stateB);
    membership->start();
    nodeA->start();
    nodeB->start();
  }

  std::unique_ptr<tem::NlftNode> makeNode(net::NodeId id, std::uint32_t& state) {
    auto node = std::make_unique<tem::NlftNode>(simulator);
    node->setSilentHook([this, id] { membership->setAlive(id, false); });
    rt::TaskConfig config;
    config.name = "filter";
    config.priority = 5;
    config.period = Duration::milliseconds(5);
    config.wcet = Duration::milliseconds(1);
    node->addCriticalTask(config, [&state](const tem::CopyContext&) {
      tem::CopyPlan plan;
      plan.executionTime = Duration::milliseconds(1);
      plan.result = {state + 1};  // the next filter state
      return plan;
    });
    node->setResultSink([&state](const rt::JobResult& result) { state = result.data[0]; });
    return node;
  }
};

TEST_F(DuplexFixture, HealthyPairStaysInLockstep) {
  simulator.runUntil(SimTime::fromUs(100'000));
  EXPECT_EQ(stateA, stateB);
  EXPECT_GT(stateA, 10u);
  EXPECT_EQ(membership->membershipView(kNodeA), (std::set<net::NodeId>{kNodeA, kNodeB}));
}

TEST_F(DuplexFixture, FailedNodeRecoversStateFromPartnerAndReintegrates) {
  // Node A dies at 40 ms (kernel error), loses its filter state.
  simulator.scheduleAfter(Duration::milliseconds(40), [&] {
    nodeA->reportKernelError({rt::ErrorEvent::Source::HardwareException, 0});
    stateA = 0;  // volatile state lost with the crash
  });
  simulator.runUntil(SimTime::fromUs(80'000));
  EXPECT_TRUE(nodeA->silent());
  EXPECT_FALSE(membership->isMember(kNodeB, kNodeA));
  const std::uint32_t stateBeforeRestart = stateB;
  EXPECT_GT(stateBeforeRestart, 0u);

  // Restart at 80 ms: the rebooted node comes back on the bus (peers will
  // re-admit it after two clean cycles), asks the partner for the filter
  // state over the dynamic segment, adopts it, and only then resumes its
  // task releases.
  Duration recoveryLatency{};
  resync->setRecoveredHandler(
      kNodeA, [&](net::StateId32 id, const std::vector<std::uint32_t>& data, Duration latency) {
        ASSERT_EQ(id, kFilterState);
        stateA = data[0];
        recoveryLatency = latency;
        nodeA->restart();
      });
  simulator.scheduleAfter(Duration::milliseconds(1), [&] {
    membership->setAlive(kNodeA, true);  // hardware rebooted: back on the bus
    resync->requestState(kNodeA, kFilterState);
  });
  simulator.runUntil(SimTime::fromUs(200'000));

  EXPECT_FALSE(nodeA->silent());
  EXPECT_GT(recoveryLatency, Duration{});
  EXPECT_LE(recoveryLatency, bus->cycleLength() * 3);
  // A's state is continuous with B's history (never reset to zero).
  EXPECT_GE(stateA, stateBeforeRestart);
  // Both nodes live again in everyone's membership view.
  EXPECT_TRUE(membership->isMember(kNodeB, kNodeA));
  EXPECT_TRUE(membership->isMember(kNodeA, kNodeB));
  // And the pair re-converges: equal job counts from restart on means the
  // states differ only by phase; both keep advancing.
  EXPECT_GT(stateA, stateBeforeRestart);
  EXPECT_GT(stateB, stateBeforeRestart);
}

TEST_F(DuplexFixture, ResyncWhilePartnerDeadYieldsNothing) {
  simulator.scheduleAfter(Duration::milliseconds(20), [&] {
    nodeB->reportKernelError({rt::ErrorEvent::Source::HardwareException, 0});
  });
  simulator.scheduleAfter(Duration::milliseconds(30), [&] {
    nodeA->reportKernelError({rt::ErrorEvent::Source::HardwareException, 0});
    stateA = 0;
  });
  bool recovered = false;
  resync->setRecoveredHandler(
      kNodeA, [&](net::StateId32, const std::vector<std::uint32_t>&, Duration) {
        recovered = true;
      });
  simulator.scheduleAfter(Duration::milliseconds(40), [&] {
    resync->requestState(kNodeA, kFilterState);
  });
  simulator.runUntil(SimTime::fromUs(120'000));
  EXPECT_FALSE(recovered);  // no healthy holder of the state remains
}

}  // namespace
}  // namespace nlft
