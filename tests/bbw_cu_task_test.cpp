// Equivalence and fault-injection tests for the interpreted CU task.
#include "bbw/cu_task.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbw/control.hpp"

namespace nlft::bbw {
namespace {

class CuTaskEquivalence : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(CuTaskEquivalence, AssemblyMatchesFixedPointReference) {
  const std::int32_t pedal = GetParam();
  const fi::TaskImage image = makeCuTaskImage(pedal);
  const fi::CopyRun run = fi::goldenRun(image);
  ASSERT_EQ(run.end, fi::CopyRun::End::Output);
  const auto expected = distributeFixedPoint(pedal);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(static_cast<std::int32_t>(run.output[w]), expected[w]) << "wheel " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(PedalSweep, CuTaskEquivalence,
                         ::testing::Values(0, 1, 64, 128, 200, 255, 256, 300, -5));

TEST(CuTask, FixedPointTracksFloatingDistribution) {
  // The q8.8 law must agree with the double-precision CU algorithm to
  // within quantisation (one torque LSB per 1/256 pedal step).
  const CentralUnitConfig config;
  for (int pedalQ8 : {0, 32, 100, 256}) {
    const auto fixed = distributeFixedPoint(pedalQ8);
    const auto floating = distributeBrakeForce(config, pedalQ8 / 256.0);
    for (int w = 0; w < 4; ++w) {
      EXPECT_NEAR(static_cast<double>(fixed[w]) / 256.0, floating[w], 0.51) << w;
    }
  }
}

TEST(CuTask, ClampsOutOfRangePedal) {
  EXPECT_EQ(distributeFixedPoint(-100), distributeFixedPoint(0));
  EXPECT_EQ(distributeFixedPoint(1000), distributeFixedPoint(256));
}

TEST(CuTask, FrontRearProportioning) {
  const auto torques = distributeFixedPoint(256);
  EXPECT_EQ(torques[FrontLeft], torques[FrontRight]);
  EXPECT_EQ(torques[RearLeft], torques[RearRight]);
  EXPECT_EQ(torques[FrontLeft] * 2, torques[RearLeft] * 3);  // 60:40 = 3:2
}

TEST(CuTask, TemCampaignMasksLargeMajority) {
  const fi::TaskImage image = makeCuTaskImage(200);
  fi::CampaignConfig config;
  config.experiments = 2000;
  config.seed = 77;
  config.jobBudgetFactor = 3.8;
  const fi::TemCampaignStats stats = fi::runTemCampaign(image, config);
  ASSERT_GT(stats.activated(), 100u);
  EXPECT_GT(stats.pMask().proportion, 0.8);
  EXPECT_GT(stats.coverage().proportion, 0.97);
}

TEST(CuTask, SpecificRegisterFaultIsMasked) {
  const fi::TaskImage image = makeCuTaskImage(200);
  fi::FaultSpec fault;
  fault.location = fi::RegisterBitFlip{4, 10};  // front torque register
  fault.afterInstructions = 9;                  // after mul, before store
  fault.targetCopy = 1;
  const fi::TemOutcome outcome = fi::runTemExperiment(image, fault);
  EXPECT_TRUE(outcome == fi::TemOutcome::MaskedByVote ||
              outcome == fi::TemOutcome::NotActivated)
      << static_cast<int>(outcome);
}

TEST(CuTask, BudgetCoversLongestPath) {
  // All pedal branches fit the budget timer.
  for (int pedal : {-5, 0, 128, 256, 400}) {
    const fi::TaskImage image = makeCuTaskImage(pedal);
    const fi::CopyRun run = fi::goldenRun(image);
    EXPECT_LT(run.instructions, image.maxInstructionsPerCopy) << pedal;
  }
}

}  // namespace
}  // namespace nlft::bbw
