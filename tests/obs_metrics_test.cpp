// Randomized property sweep over the obs::Registry merge algebra.
//
// The chunked-campaign reducers rely on one invariant: folding per-chunk
// registries together — in ANY grouping and ANY order — is bit-identical to
// applying the same multiset of updates to a single registry serially. The
// sweep below generates random update streams, shards them randomly, merges
// the shards under random permutations and random association trees, and
// compares full-JSON fingerprints (not just the golden subset: the algebra
// must hold for wall.* metrics too).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nlft::obs {
namespace {

using util::Rng;

// A small fixed vocabulary so shards genuinely collide on names.
const std::vector<std::string> kCounterNames{"tem.jobs", "bus.frames", "campaign.stops",
                                             "kernel.errors"};
const std::vector<std::string> kGaugeNames{"wall.items_per_second", "queue.peak", "wall.threads"};
const std::vector<std::string> kHistogramNames{"wall.chunk_seconds", "stop.distance_m"};
constexpr HistogramSpec kSpec{0.0, 50.0, 8};

/// One randomly generated registry update.
struct Update {
  enum class Kind : int { Counter, Gauge, Histogram } kind = Kind::Counter;
  std::string name;
  double value = 0.0;
  std::uint64_t delta = 0;
};

Update randomUpdate(Rng& rng) {
  Update u;
  u.kind = static_cast<Update::Kind>(rng.uniformInt(3));
  switch (u.kind) {
    case Update::Kind::Counter:
      u.name = kCounterNames[rng.uniformInt(kCounterNames.size())];
      u.delta = rng.uniformInt(100);
      break;
    case Update::Kind::Gauge:
      u.name = kGaugeNames[rng.uniformInt(kGaugeNames.size())];
      u.value = rng.uniform(-10.0, 1000.0);
      break;
    case Update::Kind::Histogram:
      u.name = kHistogramNames[rng.uniformInt(kHistogramNames.size())];
      u.value = rng.uniform(-5.0, 60.0);  // deliberately exceeds [lo, hi)
      break;
  }
  return u;
}

void apply(Registry& registry, const Update& u) {
  switch (u.kind) {
    case Update::Kind::Counter: registry.add(u.name, u.delta); break;
    case Update::Kind::Gauge: registry.gaugeMax(u.name, u.value); break;
    case Update::Kind::Histogram: registry.observe(u.name, kSpec, u.value); break;
  }
}

std::string fingerprint(const Registry& registry) { return registry.toJson().dump(); }

TEST(ObsMetricsProperty, MergedShardsEqualSerialApplicationForArbitrarySplits) {
  Rng root{2024};
  for (int round = 0; round < 60; ++round) {
    Rng rng = root.fork(static_cast<std::uint64_t>(round));
    const std::size_t updates = 1 + rng.uniformInt(200);
    const std::size_t shards = 1 + rng.uniformInt(8);

    Registry serial;
    std::vector<Registry> sharded(shards);
    for (std::size_t i = 0; i < updates; ++i) {
      const Update u = randomUpdate(rng);
      apply(serial, u);
      apply(sharded[rng.uniformInt(shards)], u);  // random interleaving
    }

    // Merge the shards in a random order.
    std::vector<std::size_t> order(shards);
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t i = shards; i > 1; --i)
      std::swap(order[i - 1], order[rng.uniformInt(i)]);
    Registry merged;
    for (const std::size_t s : order) merged.merge(sharded[s]);

    EXPECT_EQ(fingerprint(merged), fingerprint(serial)) << "round " << round;
  }
}

TEST(ObsMetricsProperty, MergeIsAssociative) {
  Rng root{7};
  for (int round = 0; round < 40; ++round) {
    Rng rng = root.fork(static_cast<std::uint64_t>(round));
    std::vector<Registry> parts(3);
    for (int i = 0; i < 120; ++i) apply(parts[rng.uniformInt(3)], randomUpdate(rng));

    // (a + b) + c
    Registry left;
    left.merge(parts[0]);
    left.merge(parts[1]);
    left.merge(parts[2]);
    // a + (b + c)
    Registry bc;
    bc.merge(parts[1]);
    bc.merge(parts[2]);
    Registry right;
    right.merge(parts[0]);
    right.merge(bc);

    EXPECT_EQ(fingerprint(left), fingerprint(right)) << "round " << round;
  }
}

TEST(ObsMetricsProperty, MergeIsCommutative) {
  Rng root{11};
  for (int round = 0; round < 40; ++round) {
    Rng rng = root.fork(static_cast<std::uint64_t>(round));
    std::vector<Registry> parts(2);
    for (int i = 0; i < 80; ++i) apply(parts[rng.uniformInt(2)], randomUpdate(rng));

    Registry ab;
    ab.merge(parts[0]);
    ab.merge(parts[1]);
    Registry ba;
    ba.merge(parts[1]);
    ba.merge(parts[0]);
    EXPECT_EQ(fingerprint(ab), fingerprint(ba)) << "round " << round;
  }
}

TEST(ObsMetricsProperty, HistogramBucketCountsSumToSampleCount) {
  Rng rng{99};
  Registry registry;
  std::uint64_t samples = 0;
  for (int i = 0; i < 5000; ++i) {
    registry.observe("h", kSpec, rng.uniform(-20.0, 80.0));  // many out-of-range
    ++samples;
  }
  const HistogramSnapshot snapshot = registry.histogram("h");
  ASSERT_EQ(snapshot.counts.size(), kSpec.buckets);
  const std::uint64_t bucketSum =
      std::accumulate(snapshot.counts.begin(), snapshot.counts.end(), std::uint64_t{0});
  EXPECT_EQ(bucketSum, samples);
  EXPECT_EQ(snapshot.total, samples);
}

TEST(ObsMetrics, CounterGaugeBasics) {
  Registry registry;
  EXPECT_EQ(registry.count("absent"), 0u);
  EXPECT_FALSE(registry.hasCounter("absent"));
  registry.add("c");
  registry.add("c", 4);
  EXPECT_EQ(registry.count("c"), 5u);
  EXPECT_TRUE(registry.hasCounter("c"));

  registry.gaugeMax("g", 2.5);
  registry.gaugeMax("g", 1.0);  // lower: ignored (peak semantics)
  EXPECT_DOUBLE_EQ(registry.gauge("g"), 2.5);
  registry.gaugeMax("g", 7.25);
  EXPECT_DOUBLE_EQ(registry.gauge("g"), 7.25);
}

TEST(ObsMetrics, HistogramSpecMismatchThrows) {
  Registry registry;
  registry.observe("h", kSpec, 1.0);
  EXPECT_THROW(registry.observe("h", HistogramSpec{0.0, 50.0, 9}, 1.0), std::invalid_argument);
  Registry other;
  other.observe("h", HistogramSpec{0.0, 10.0, 8}, 1.0);
  EXPECT_THROW(registry.merge(other), std::invalid_argument);
}

TEST(ObsMetrics, SelfMergeThrows) {
  Registry registry;
  registry.add("c");
  EXPECT_THROW(registry.merge(registry), std::invalid_argument);
}

TEST(ObsMetrics, MismatchedHistogramSpecsAreRejectedWithBothLayouts) {
  Registry a;
  a.observe("e2e.latency", HistogramSpec{0.0, 50000.0, 50}, 100.0);
  Registry b;
  b.observe("e2e.latency", HistogramSpec{0.0, 25000.0, 40}, 100.0);

  // merge(): the diagnostic must carry the metric name and BOTH bin-edge
  // layouts — a silent merge of mismatched edges would corrupt every
  // percentile downstream.
  try {
    a.merge(b);
    FAIL() << "merge of mismatched specs did not throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("e2e.latency"), std::string::npos) << message;
    EXPECT_NE(message.find("[0, 50000) / 50 bins"), std::string::npos) << message;
    EXPECT_NE(message.find("[0, 25000) / 40 bins"), std::string::npos) << message;
  }

  // observe() with a drifted spec on an existing histogram: same contract.
  try {
    a.observe("e2e.latency", HistogramSpec{0.0, 50000.0, 25}, 1.0);
    FAIL() << "observe with mismatched spec did not throw";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("registered [0, 50000) / 50 bins"), std::string::npos) << message;
    EXPECT_NE(message.find("observed [0, 50000) / 25 bins"), std::string::npos) << message;
  }

  // The failed merge must not have corrupted the target.
  EXPECT_EQ(a.histogram("e2e.latency").total, 1u);
}

TEST(ObsMetrics, GoldenFingerprintExcludesWallMetrics) {
  Registry a;
  a.add("tem.jobs", 10);
  a.gaugeMax("wall.items_per_second", 123.0);
  a.observe("wall.chunk_seconds", kSpec, 0.25);
  Registry b;
  b.add("tem.jobs", 10);
  b.gaugeMax("wall.items_per_second", 9999.0);  // different wall clock
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_EQ(a.goldenFingerprint(), b.goldenFingerprint());
  EXPECT_TRUE(isNonGoldenMetric("wall.anything"));
  EXPECT_FALSE(isNonGoldenMetric("tem.jobs"));
}

}  // namespace
}  // namespace nlft::obs
