// End-to-end tests of the fuzzing loop (src/fuzz/fuzzer.cpp):
//
//   * the full search report is bit-identical across thread counts {1,2,8}
//     and across repeated runs (the acceptance criterion behind
//     `nlft-fuzz --budget N --seed S`);
//   * the oracles hold on the real system: a healthy search over hundreds
//     of scenarios finds NO violations;
//   * a deliberately weakened static bound — emulating the historical
//     revert of the response-time contribution to the holistic end-to-end
//     chain — is REDISCOVERED by the diff.e2e-bound oracle and auto-shrunk
//     to a minimal repro of at most 5 schedule events.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/fuzzer.hpp"
#include "fuzz/oracles.hpp"

namespace nlft::fuzz {
namespace {

FuzzConfig smallSearch() {
  FuzzConfig config;
  config.seed = 1;
  config.budget = 60;
  config.batchSize = 20;
  return config;
}

TEST(FuzzEngine, ReportBitIdenticalAcrossThreadCounts) {
  FuzzConfig config = smallSearch();
  config.parallelism.threads = 1;
  const std::string serial = runFuzzer(config).toJson().dump();
  config.parallelism.threads = 2;
  const std::string two = runFuzzer(config).toJson().dump();
  config.parallelism.threads = 8;
  const std::string eight = runFuzzer(config).toJson().dump();
  const std::string eightAgain = runFuzzer(config).toJson().dump();
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  EXPECT_EQ(eight, eightAgain);
}

TEST(FuzzEngine, SeedChangesTheSearch) {
  FuzzConfig config = smallSearch();
  const std::string one = runFuzzer(config).toJson().dump();
  config.seed = 2;
  const std::string other = runFuzzer(config).toJson().dump();
  EXPECT_NE(one, other);
}

TEST(FuzzEngine, HealthySystemSurvivesTheSearchWithoutViolations) {
  const FuzzReport report = runFuzzer(smallSearch());
  EXPECT_EQ(report.executed, 60u);
  EXPECT_EQ(report.rounds, 3u);
  EXPECT_GT(report.valid, 50u);  // perturbed params stay inside stopping range
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front().oracle << ": " << report.violations.front().message;
  EXPECT_TRUE(report.violationCounts.empty());
  // The novelty map found several distinct behaviour classes, including
  // masked runs (the common case on the NLFT deployment).
  EXPECT_GT(report.corpus.size(), 5u);
  EXPECT_GT(report.outcomeCounts.count("masked"), 0u);
}

TEST(FuzzEngine, RediscoversRevertedBoundAndShrinksTheRepro) {
  // Weakened verifier: 5000 us is what the holistic chain degenerates to
  // without the response-time term — below the real measured 5600 us
  // sample->apply latency, so the simulation refutes it. The search must
  // rediscover this (the bug class PR 7's seeded mutations guard) and
  // shrink the repro to <= 5 schedule events.
  FuzzConfig config = smallSearch();
  config.budget = 20;
  config.batchSize = 20;
  config.oracle.e2eBoundNlftUs = 5000;
  config.oracle.e2eBoundFsUs = 5000;
  // Keep the run cheap: the metamorphic + replay oracles are exercised by
  // the other tests and would triple the simulation count here.
  config.oracle.checkTemMonotone = false;
  config.oracle.checkReplayDeterminism = false;

  const FuzzReport report = runFuzzer(config);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_GT(report.violationCounts.at("diff.e2e-bound"), 0u);

  bool shrunkRepro = false;
  for (const FuzzViolation& violation : report.violations) {
    if (violation.oracle != "diff.e2e-bound" || !violation.wasShrunk) continue;
    shrunkRepro = true;
    EXPECT_LE(violation.shrunk.events.size(), 5u);
    // The bound is beaten by the fault-free pipeline latency itself, so the
    // minimal repro needs no fault schedule at all.
    EXPECT_EQ(violation.shrunk.events.size(), 0u);
    EXPECT_NE(violation.message.find("exceeds the static bound"), std::string::npos);
  }
  EXPECT_TRUE(shrunkRepro);
}

TEST(FuzzEngine, MetamorphicOraclesHoldScenarioByScenario) {
  // Direct spot-check of evaluateScenario (independent of the search loop):
  // single transients on the NLFT deployment mask or degrade gracefully,
  // TEM monotonicity and replay determinism hold.
  const OracleConfig oracle = resolveOracleConfig({});
  GoldenCache cache;
  util::Rng rng{424242};
  int checked = 0;
  for (int i = 0; i < 15; ++i) {
    Scenario scenario = randomScenario(rng);
    scenario.params.nodeType = bbw::NodeType::Nlft;
    scenario.events.resize(1);
    clampScenario(scenario);
    const ScenarioVerdict verdict = evaluateScenario(scenario, oracle, &cache);
    if (!verdict.valid) continue;
    ++checked;
    EXPECT_TRUE(verdict.violations.empty())
        << verdict.violations.front().oracle << ": " << verdict.violations.front().message;
  }
  EXPECT_GT(checked, 10);
}

}  // namespace
}  // namespace nlft::fuzz
