#include "hw/hamming.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nlft::hw {
namespace {

TEST(Hamming, CleanRoundTrip) {
  for (std::uint32_t word : {0u, 1u, 0xFFFFFFFFu, 0xDEADBEEFu, 0x80000001u}) {
    const auto decoded = eccDecode(eccEncode(word));
    EXPECT_EQ(decoded.status, EccStatus::Clean);
    EXPECT_EQ(decoded.data, word);
  }
}

TEST(Hamming, RandomWordsRoundTrip) {
  util::Rng rng{77};
  for (int i = 0; i < 2000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    const auto decoded = eccDecode(eccEncode(word));
    ASSERT_EQ(decoded.status, EccStatus::Clean);
    ASSERT_EQ(decoded.data, word);
  }
}

// Exhaustive single-error correction over every codeword bit position.
class HammingSingleBit : public ::testing::TestWithParam<int> {};

TEST_P(HammingSingleBit, EverySingleBitFlipIsCorrected) {
  const int bit = GetParam();
  for (std::uint32_t word : {0u, 0xFFFFFFFFu, 0xA5A5A5A5u, 0x12345678u}) {
    const std::uint64_t corrupted = eccEncode(word) ^ (1ULL << bit);
    const auto decoded = eccDecode(corrupted);
    EXPECT_EQ(decoded.status, EccStatus::Corrected) << "bit " << bit;
    EXPECT_EQ(decoded.data, word) << "bit " << bit;
    EXPECT_EQ(decoded.codeword, eccEncode(word)) << "bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, HammingSingleBit, ::testing::Range(0, kEccCodewordBits));

TEST(Hamming, EveryDoubleBitFlipIsDetected) {
  const std::uint32_t word = 0xC001D00Du;
  const std::uint64_t clean = eccEncode(word);
  for (int i = 0; i < kEccCodewordBits; ++i) {
    for (int j = i + 1; j < kEccCodewordBits; ++j) {
      const auto decoded = eccDecode(clean ^ (1ULL << i) ^ (1ULL << j));
      ASSERT_EQ(decoded.status, EccStatus::Uncorrectable) << i << "," << j;
    }
  }
}

TEST(Hamming, RandomDoubleFlipsNeverMiscorrect) {
  util::Rng rng{78};
  for (int trial = 0; trial < 5000; ++trial) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t clean = eccEncode(word);
    const int i = static_cast<int>(rng.uniformInt(kEccCodewordBits));
    int j = static_cast<int>(rng.uniformInt(kEccCodewordBits));
    while (j == i) j = static_cast<int>(rng.uniformInt(kEccCodewordBits));
    const auto decoded = eccDecode(clean ^ (1ULL << i) ^ (1ULL << j));
    // A double error must never be silently "corrected" into wrong data.
    ASSERT_EQ(decoded.status, EccStatus::Uncorrectable);
  }
}

TEST(Hamming, CodewordFitsIn39Bits) {
  for (std::uint32_t word : {0xFFFFFFFFu, 0x0u, 0x55555555u}) {
    EXPECT_EQ(eccEncode(word) >> kEccCodewordBits, 0u);
  }
}

TEST(Hamming, DistinctWordsGetDistinctCodewords) {
  util::Rng rng{79};
  for (int trial = 0; trial < 1000; ++trial) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    const auto b = static_cast<std::uint32_t>(rng.next());
    if (a == b) continue;
    ASSERT_NE(eccEncode(a), eccEncode(b));
  }
}

}  // namespace
}  // namespace nlft::hw
