// Node policies: fail-silent baseline and non-critical task shutdown.
#include "core/policies.hpp"

#include <gtest/gtest.h>

namespace nlft::tem {
namespace {

using rt::TaskConfig;
using rt::TaskId;
using util::Duration;
using util::SimTime;

struct PolicyFixture : ::testing::Test {
  sim::Simulator simulator;
  rt::Cpu cpu{simulator};
  rt::RtKernel kernel{simulator, cpu};
  int results = 0;
  bool nodeSilent = false;

  void SetUp() override {
    kernel.setResultSink([this](const rt::JobResult&) { ++results; });
    kernel.setFailSilentHook([this] { nodeSilent = true; });
  }

  TaskConfig config(const char* name, Duration wcet, Duration period) {
    TaskConfig cfg;
    cfg.name = name;
    cfg.priority = 1;
    cfg.period = period;
    cfg.wcet = wcet;
    return cfg;
  }
};

CopyPlan good(Duration time) {
  CopyPlan plan;
  plan.executionTime = time;
  plan.result = {1};
  return plan;
}

CopyPlan bad(Duration time) {
  CopyPlan plan;
  plan.executionTime = time;
  plan.end = CopyPlan::End::DetectedError;
  return plan;
}

TEST_F(PolicyFixture, FailSilentNodeRunsSingleCopies) {
  FailSilentExecutor fs{kernel};
  fs.addTask(config("t", Duration::milliseconds(2), Duration::milliseconds(10)),
             [](const CopyContext&) { return good(Duration::milliseconds(2)); });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(35'000));
  EXPECT_EQ(results, 4);
  // Single-copy execution: 4 jobs x 2 ms.
  EXPECT_EQ(cpu.busyTime().us(), 8'000);
  EXPECT_FALSE(nodeSilent);
}

TEST_F(PolicyFixture, FailSilentNodeStopsOnFirstDetectedError) {
  FailSilentExecutor fs{kernel};
  const TaskId task =
      fs.addTask(config("t", Duration::milliseconds(2), Duration::milliseconds(10)),
                 [](const CopyContext& context) {
                   // Third job hits a transient fault.
                   return context.jobIndex == 2 ? bad(Duration::milliseconds(1))
                                                : good(Duration::milliseconds(2));
                 });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(60'000));
  EXPECT_EQ(results, 2);  // jobs 0 and 1 delivered; node silent from job 2 on
  EXPECT_TRUE(nodeSilent);
  EXPECT_TRUE(kernel.stopped());
  EXPECT_EQ(fs.failSilentEvents(), 1u);
  EXPECT_EQ(kernel.stats(task).releases, 3u);
}

TEST_F(PolicyFixture, FailSilentNodeStopsOnReportedError) {
  FailSilentExecutor fs{kernel};
  const TaskId task =
      fs.addTask(config("t", Duration::milliseconds(4), Duration::milliseconds(10)),
                 [](const CopyContext&) { return good(Duration::milliseconds(4)); });
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(1), [&] {
    kernel.reportTaskError(task, {rt::ErrorEvent::Source::MmuViolation, 0});
  });
  simulator.runUntil(SimTime::fromUs(30'000));
  EXPECT_TRUE(nodeSilent);
  EXPECT_EQ(results, 0);
}

TEST_F(PolicyFixture, NonCriticalTaskShutDownOnErrorOthersContinue) {
  FailSilentExecutor fs{kernel};
  fs.addTask(config("critical", Duration::milliseconds(1), Duration::milliseconds(10)),
             [](const CopyContext&) { return good(Duration::milliseconds(1)); });
  const TaskId diagnostic = addNonCriticalTask(
      kernel, config("diagnostic", Duration::milliseconds(1), Duration::milliseconds(10)),
      [](const CopyContext& context) {
        return context.jobIndex == 1 ? bad(Duration::milliseconds(1))
                                     : good(Duration::milliseconds(1));
      });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(45'000));
  // The diagnostic task delivered only its first job, then was shut down.
  EXPECT_EQ(kernel.stats(diagnostic).releases, 2u);
  EXPECT_EQ(kernel.stats(diagnostic).completions, 1u);
  // The node as a whole kept running: critical task unaffected.
  EXPECT_FALSE(nodeSilent);
  EXPECT_FALSE(kernel.stopped());
  EXPECT_EQ(results, 6);  // 5 critical + 1 diagnostic
}

TEST_F(PolicyFixture, NonCriticalCriticalityFlagSet) {
  const TaskId task = addNonCriticalTask(
      kernel, config("nc", Duration::milliseconds(1), Duration::milliseconds(10)),
      [](const CopyContext&) { return good(Duration::milliseconds(1)); });
  EXPECT_EQ(kernel.config(task).criticality, rt::Criticality::NonCritical);
}

TEST_F(PolicyFixture, RejectsNullBehaviors) {
  FailSilentExecutor fs{kernel};
  EXPECT_THROW(fs.addTask(config("t", Duration::milliseconds(1), Duration::milliseconds(10)),
                          CopyBehavior{}),
               std::invalid_argument);
  EXPECT_THROW(addNonCriticalTask(
                   kernel, config("t", Duration::milliseconds(1), Duration::milliseconds(10)),
                   CopyBehavior{}),
               std::invalid_argument);
  EXPECT_THROW(PermanentFaultMonitor{0}, std::invalid_argument);
}

}  // namespace
}  // namespace nlft::tem
