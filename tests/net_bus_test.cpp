#include "net/bus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "util/rng.hpp"

namespace nlft::net {
namespace {

using util::Duration;
using util::SimTime;

struct BusFixture : ::testing::Test {
  sim::Simulator simulator;
  TdmaConfig config;
  std::vector<std::tuple<NodeId, NodeId, std::vector<std::uint32_t>, std::int64_t>> received;

  BusFixture() {
    config.slotLength = Duration::milliseconds(1);
    config.staticSchedule = {1, 2, 3};
    config.dynamicMinislots = 4;
    config.minislotLength = Duration::microseconds(250);
  }

  void attachRecorder(TdmaBus& bus, NodeId node) {
    bus.attach(node, [this, node](const Frame& frame) {
      received.emplace_back(node, frame.sender, frame.payload, simulator.now().us());
    });
  }
};

TEST_F(BusFixture, CycleLengthCoversStaticAndDynamicSegments) {
  TdmaBus bus{simulator, config};
  EXPECT_EQ(bus.cycleLength().us(), 3000 + 4 * 250);
}

TEST_F(BusFixture, StaticFrameDeliveredInOwnersSlot) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 2);
  attachRecorder(bus, 3);
  bus.sendStatic(1, {0xAB});
  bus.start();
  simulator.runUntil(SimTime::fromUs(4000));
  ASSERT_EQ(received.size(), 2u);  // both other nodes hear it
  // Node 1 owns slot 0: delivery at the end of slot 0 = 1 ms.
  EXPECT_EQ(std::get<3>(received[0]), 1000);
  EXPECT_EQ(std::get<1>(received[0]), 1u);
  EXPECT_EQ(std::get<2>(received[0]), (std::vector<std::uint32_t>{0xAB}));
}

TEST_F(BusFixture, SenderDoesNotHearItself) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 1);
  bus.sendStatic(1, {1});
  bus.start();
  simulator.runUntil(SimTime::fromUs(4000));
  EXPECT_TRUE(received.empty());
}

TEST_F(BusFixture, SlotsAreOwnedOneFramePerCycle) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 3);
  bus.sendStatic(1, {1});
  bus.sendStatic(2, {2});
  bus.start();
  simulator.runUntil(SimTime::fromUs(3900));
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(std::get<3>(received[0]), 1000);  // node 1, slot 0
  EXPECT_EQ(std::get<3>(received[1]), 2000);  // node 2, slot 1
}

TEST_F(BusFixture, FreshestValueReplacesPendingStaticFrame) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 2);
  bus.sendStatic(1, {1});
  bus.sendStatic(1, {2});  // replaces the first before the slot opens
  bus.start();
  simulator.runUntil(SimTime::fromUs(3900));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(std::get<2>(received[0]), (std::vector<std::uint32_t>{2}));
}

TEST_F(BusFixture, EmptySlotTransmitsNothing) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 2);
  bus.start();
  simulator.runUntil(SimTime::fromUs(8000));
  EXPECT_TRUE(received.empty());
  EXPECT_GE(bus.cyclesCompleted(), 1u);
}

TEST_F(BusFixture, DynamicSegmentArbitratesByPriority) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 1);
  bus.sendDynamic(3, 7, {30});
  bus.sendDynamic(2, 2, {20});  // higher priority (lower value) wins
  bus.start();
  simulator.runUntil(SimTime::fromUs(4000));
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(std::get<1>(received[0]), 2u);
  EXPECT_EQ(std::get<1>(received[1]), 3u);
}

TEST_F(BusFixture, DynamicOverflowWaitsForNextCycle) {
  config.dynamicMinislots = 1;
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 1);
  bus.sendDynamic(2, 1, {1});
  bus.sendDynamic(3, 2, {2});
  bus.start();
  simulator.runUntil(SimTime::fromUs(3300));  // cycle 0 = 3.25 ms
  ASSERT_EQ(received.size(), 1u);  // only the winner fits in cycle 0
  simulator.runUntil(SimTime::fromUs(6500));
  ASSERT_EQ(received.size(), 2u);  // the loser went out in cycle 1
  EXPECT_EQ(std::get<1>(received[1]), 3u);
}

TEST_F(BusFixture, SilentNodeTransmitsNothing) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 2);
  bus.setNodeSilent(1, true);
  bus.sendStatic(1, {1});
  bus.sendDynamic(1, 0, {2});
  bus.start();
  simulator.runUntil(SimTime::fromUs(8000));
  EXPECT_TRUE(received.empty());
}

TEST_F(BusFixture, CorruptedFrameDroppedAtAllReceivers) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 2);
  attachRecorder(bus, 3);
  bus.corruptNextFrame(1);
  bus.sendStatic(1, {1});
  bus.start();
  simulator.runUntil(SimTime::fromUs(3900));
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(bus.framesDropped(), 1u);

  // The corruption marker is one-shot: the next frame goes through.
  bus.sendStatic(1, {2});
  simulator.runUntil(SimTime::fromUs(7900));
  EXPECT_EQ(received.size(), 2u);
  EXPECT_EQ(bus.framesDelivered(), 1u);
}

TEST_F(BusFixture, CyclesRepeatIndefinitely) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 2);
  bus.start();
  for (int cycle = 0; cycle < 5; ++cycle) {
    bus.sendStatic(1, {static_cast<std::uint32_t>(cycle)});
    simulator.runUntil(SimTime::fromUs((cycle + 1) * 4000));
  }
  EXPECT_EQ(received.size(), 5u);
  EXPECT_EQ(bus.cyclesCompleted(), 5u);
}

TEST_F(BusFixture, BabblingIdiotDestroysEverySlotWithoutGuardian) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 3);
  bus.setBabbling(2, true);  // node 2 transmits everywhere
  bus.sendStatic(1, {1});
  bus.start();
  simulator.runUntil(SimTime::fromUs(3900));
  // Node 1's frame collided with node 2's babble in slot 0.
  EXPECT_TRUE(received.empty());
  EXPECT_GT(bus.babbleCollisions(), 0u);
  EXPECT_EQ(bus.framesDropped(), 1u);
}

TEST_F(BusFixture, BusGuardianContainsTheBabbler) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 3);
  bus.setBusGuardianEnabled(true);
  bus.setBabbling(2, true);
  bus.sendStatic(1, {1});
  bus.start();
  simulator.runUntil(SimTime::fromUs(3900));
  // The guardian blocks node 2's out-of-slot transmissions: node 1's frame
  // arrives untouched (fault containment at the network level).
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(std::get<2>(received[0]), (std::vector<std::uint32_t>{1}));
  EXPECT_GT(bus.babbleBlocked(), 0u);
  EXPECT_EQ(bus.babbleCollisions(), 0u);
}

TEST_F(BusFixture, BabblerStillOwnsItsOwnSlot) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 1);
  bus.setBusGuardianEnabled(true);
  bus.setBabbling(2, true);
  bus.sendStatic(2, {22});
  bus.start();
  simulator.runUntil(SimTime::fromUs(3900));
  // In ITS OWN slot the babbler's transmission is legitimate.
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(std::get<1>(received[0]), 2u);
}

TEST_F(BusFixture, SilencedBabblerStopsColliding) {
  TdmaBus bus{simulator, config};
  attachRecorder(bus, 3);
  bus.setBabbling(2, true);
  bus.setNodeSilent(2, true);  // the node was shut down (fail-silent)
  bus.sendStatic(1, {1});
  bus.start();
  simulator.runUntil(SimTime::fromUs(3900));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(bus.babbleCollisions(), 0u);
}

// --- CRC-16 corruption property ---------------------------------------------
//
// The safety property behind every bus-corruption fault scenario: a frame
// whose CRC check fails is NEVER delivered to a receiver, and every injected
// corruption is accounted for — either rejected by the CRC or (for flip sets
// that cancel out) delivered with a correct checksum. CRC-16-CCITT has
// Hamming distance >= 4 at these frame sizes, so every 1..3-bit corruption
// must be rejected.

TEST_F(BusFixture, RandomizedCorruptionNeverDeliversBadCrc) {
  TdmaBus bus{simulator, config};
  std::uint64_t framesHeard = 0;
  bus.attach(2, [&](const Frame& frame) {
    ++framesHeard;
    // Whatever arrives must carry a CRC consistent with its payload.
    EXPECT_EQ(frame.crc, frameCrc(frame.payload));
  });
  bus.start();

  util::Rng rng{2024};
  const int kRounds = 200;
  std::uint64_t corrupted = 0;
  for (int round = 0; round < kRounds; ++round) {
    const std::vector<std::uint32_t> payload{static_cast<std::uint32_t>(rng.next()),
                                             static_cast<std::uint32_t>(rng.next()),
                                             static_cast<std::uint32_t>(rng.next())};
    const bool corrupt = rng.uniformInt(2) == 0;
    if (corrupt) {
      // 1..3 distinct flips anywhere in the frame (payload or CRC bits).
      const std::size_t flips = 1 + rng.uniformInt(3);
      std::vector<std::uint32_t> bits;
      while (bits.size() < flips) {
        const auto bit = static_cast<std::uint32_t>(rng.uniformInt(3 * 32 + 16));
        if (std::find(bits.begin(), bits.end(), bit) == bits.end()) bits.push_back(bit);
      }
      bus.corruptNextFrame(1, bits);
      ++corrupted;
    }
    bus.sendStatic(1, payload);
    simulator.runUntil(SimTime::fromUs((round + 1) * 4000));  // one full cycle per round
  }

  // Every injected corruption was a <=3-bit error: all rejected, none heard.
  EXPECT_EQ(bus.corruptionsInjected(), corrupted);
  EXPECT_EQ(bus.crcRejected(), corrupted);
  EXPECT_EQ(bus.framesDropped(), corrupted);
  EXPECT_EQ(framesHeard, kRounds - corrupted);
  // Conservation: every sent frame is either delivered or dropped.
  EXPECT_EQ(bus.framesDelivered() + bus.framesDropped(), static_cast<std::uint64_t>(kRounds));
}

TEST_F(BusFixture, FlipFrameBitTargetsPayloadThenCrc) {
  Frame frame;
  frame.payload = {0x0, 0x0};
  frame.crc = frameCrc(frame.payload);
  Frame copy = frame;
  flipFrameBit(copy, 33);  // second payload word, bit 1
  EXPECT_EQ(copy.payload[1], 0x2u);
  EXPECT_EQ(copy.crc, frame.crc);
  copy = frame;
  flipFrameBit(copy, 64);  // first CRC bit
  EXPECT_EQ(copy.payload, frame.payload);
  EXPECT_EQ(copy.crc, frame.crc ^ 1u);
  copy = frame;
  flipFrameBit(copy, 80);  // wraps modulo 64 payload + 16 crc bits
  EXPECT_EQ(copy.payload[0], 0x1u);
}

TEST_F(BusFixture, DropTapSeesCorruptionReason) {
  TdmaBus bus{simulator, config};
  std::vector<std::string> reasons;
  bus.setDropTap([&](const Frame&, const char* reason) { reasons.emplace_back(reason); });
  bus.corruptNextFrame(1);
  bus.sendStatic(1, {0xAB});
  bus.start();
  simulator.runUntil(SimTime::fromUs(3900));
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "crc");
}

TEST_F(BusFixture, InvalidConfigRejected) {
  TdmaConfig bad;
  bad.staticSchedule = {};
  EXPECT_THROW(TdmaBus(simulator, bad), std::invalid_argument);
  bad.staticSchedule = {1};
  bad.slotLength = Duration{};
  EXPECT_THROW(TdmaBus(simulator, bad), std::invalid_argument);
  TdmaBus bus{simulator, config};
  bus.start();
  EXPECT_THROW(bus.start(), std::logic_error);
}

}  // namespace
}  // namespace nlft::net
