// Baseline-architecture models beyond the paper's two: 2-of-3 voting
// triplex, and availability variants with permanent-fault repair.
#include <gtest/gtest.h>

#include "bbw/markov_models.hpp"
#include "util/time.hpp"

namespace nlft::bbw {
namespace {

constexpr double kYear = nlft::util::kHoursPerYear;

TEST(VotingTriplex, ClassicMissionTimeCrossoverAgainstFsDuplex) {
  // Short missions favour the voting triplex (it masks even non-covered
  // errors, which hit the FS duplex immediately); long missions favour the
  // duplex (less exposure: two nodes instead of three, and its degraded
  // state dies at lambda instead of 2*lambda).
  const auto params = ReliabilityParameters::paperDefaults();
  const auto triplex = votingTriplexChain(params);
  const auto duplexFs = centralUnitChain(NodeType::FailSilent, params);
  EXPECT_GT(triplex.reliability(100.0), duplexFs.reliability(100.0));
  EXPECT_LT(triplex.reliability(kYear), duplexFs.reliability(kYear));
  EXPECT_LT(triplex.meanTimeToFailure(), duplexFs.meanTimeToFailure());
}

TEST(VotingTriplex, NlftDuplexBeatsTriplexAtOneYearWithOneFewerNode) {
  // The paper's pitch, sharpened: at automotive mission times the NLFT
  // duplex is not merely competitive with the 2f+1 voting triplex — it is
  // better, using one node fewer (masking without the third-node exposure).
  const auto params = ReliabilityParameters::paperDefaults();
  const double triplex = votingTriplexChain(params).reliability(kYear);
  const double nlftDuplex = centralUnitChain(NodeType::Nlft, params).reliability(kYear);
  EXPECT_GT(nlftDuplex, triplex);
  // But the triplex still wins very short missions (no coverage gap at all).
  EXPECT_GT(votingTriplexChain(params).reliability(10.0),
            centralUnitChain(NodeType::FailSilent, params).reliability(10.0));
}

TEST(Availability, SteadyStateOrderedByNodeType) {
  const auto params = ReliabilityParameters::paperDefaults();
  const double muWorkshop = 1.0 / 24.0;  // permanent repair within a day
  const double fs =
      centralUnitChain(NodeType::FailSilent, params, muWorkshop).steadyStateAvailability();
  const double nlft =
      centralUnitChain(NodeType::Nlft, params, muWorkshop).steadyStateAvailability();
  EXPECT_GT(fs, 0.99);
  EXPECT_GT(nlft, fs);
  EXPECT_LT(nlft, 1.0);
}

TEST(Availability, FasterWorkshopRepairRaisesAvailability) {
  const auto params = ReliabilityParameters::paperDefaults();
  const double slow =
      centralUnitChain(NodeType::Nlft, params, 1.0 / 168.0).steadyStateAvailability();
  const double fast =
      centralUnitChain(NodeType::Nlft, params, 1.0 / 2.0).steadyStateAvailability();
  EXPECT_GT(fast, slow);
}

TEST(Availability, WheelSubsystemChainsSupportRepairToo) {
  const auto params = ReliabilityParameters::paperDefaults();
  for (const NodeType type : {NodeType::FailSilent, NodeType::Nlft}) {
    for (const FunctionalityMode mode :
         {FunctionalityMode::Full, FunctionalityMode::Degraded}) {
      const auto chain = wheelSubsystemChain(type, mode, params, 1.0 / 24.0);
      const double availability = chain.steadyStateAvailability();
      EXPECT_GT(availability, 0.9);
      EXPECT_LT(availability, 1.0);
    }
  }
}

TEST(Availability, ZeroRepairRateKeepsReliabilitySemantics) {
  // permanentRepairRate = 0 must reproduce the original absorbing chains.
  const auto params = ReliabilityParameters::paperDefaults();
  const auto original = centralUnitChain(NodeType::Nlft, params);
  const auto explicitZero = centralUnitChain(NodeType::Nlft, params, 0.0);
  for (double t : {100.0, kYear}) {
    EXPECT_DOUBLE_EQ(original.reliability(t), explicitZero.reliability(t));
  }
  EXPECT_DOUBLE_EQ(original.meanTimeToFailure(), explicitZero.meanTimeToFailure());
}

TEST(Availability, WorkshopRepairExtendsFirstPassageTime) {
  // Repairing permanently-down nodes (state 1 -> 0) postpones the first
  // system failure: reliability(t) of the repairable chain dominates the
  // absorbing chain at every t.
  const auto params = ReliabilityParameters::paperDefaults();
  const auto absorbing = centralUnitChain(NodeType::Nlft, params);
  const auto repairable = centralUnitChain(NodeType::Nlft, params, 1.0 / 24.0);
  for (double t : {500.0, kYear / 2, kYear}) {
    EXPECT_GE(repairable.reliability(t) + 1e-12, absorbing.reliability(t)) << t;
  }
  EXPECT_GT(repairable.reliability(kYear), absorbing.reliability(kYear) + 0.01);
}

}  // namespace
}  // namespace nlft::bbw
