#include "reliability/export.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nlft::rel {
namespace {

TEST(Dot, ContainsStatesAndTransitions) {
  CtmcModel m;
  const StateId up = m.addState("up");
  const StateId down = m.addState("down", true);
  m.addTransition(up, down, 0.5);
  m.addTransition(down, up, 2.0);
  const std::string dot = toDot(m, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"up\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"down\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // failure state marker
  EXPECT_NE(dot.find("s0 -> s1 [label=\"0.5\"]"), std::string::npos);
  EXPECT_NE(dot.find("s1 -> s0 [label=\"2\"]"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, OnlyFailureStatesDoubleCircled) {
  CtmcModel m;
  m.addState("a");
  m.addState("b");
  const std::string dot = toDot(m);
  EXPECT_EQ(dot.find("doublecircle"), std::string::npos);
}

TEST(KOfNRepairable, OneOfOneIsSimpleExponential) {
  const CtmcModel m = kOfNRepairableChain(1, 1, 2e-3, 0.0);
  EXPECT_NEAR(m.reliability(500.0), std::exp(-1.0), 1e-10);
  EXPECT_NEAR(m.meanTimeToFailure(), 500.0, 1e-6);
}

TEST(KOfNRepairable, ParallelPairWithoutRepairClosedForm) {
  // 1-of-2, no repair: MTTF = 1/(2l) + 1/l.
  const double lambda = 1e-3;
  const CtmcModel m = kOfNRepairableChain(2, 1, lambda, 0.0);
  EXPECT_NEAR(m.meanTimeToFailure(), 1.5 / lambda, 1e-6);
}

TEST(KOfNRepairable, ParallelPairWithRepairClosedForm) {
  // 1-of-2 with repair mu: MTTF = (3l + mu) / (2 l^2)  (standard result).
  const double lambda = 1e-3;
  const double mu = 0.1;
  const CtmcModel m = kOfNRepairableChain(2, 1, lambda, mu);
  EXPECT_NEAR(m.meanTimeToFailure(), (3.0 * lambda + mu) / (2.0 * lambda * lambda),
              1.0);
}

TEST(KOfNRepairable, TwoOfThreeFailsOnSecondLoss) {
  // 2-of-3, no repair: MTTF = 1/(3l) + 1/(2l).
  const double lambda = 2e-3;
  const CtmcModel m = kOfNRepairableChain(3, 2, lambda, 0.0);
  EXPECT_NEAR(m.meanTimeToFailure(), 1.0 / (3.0 * lambda) + 1.0 / (2.0 * lambda), 1e-6);
}

TEST(KOfNRepairable, RepairExtendsLifetimeMonotonically) {
  double previous = 0.0;
  for (double mu : {0.0, 0.01, 0.1, 1.0}) {
    const double mttf = kOfNRepairableChain(4, 3, 1e-3, mu).meanTimeToFailure();
    EXPECT_GT(mttf, previous);
    previous = mttf;
  }
}

TEST(KOfNRepairable, NOfNIsSeries) {
  // k = n: any failure kills the group; MTTF = 1/(n*lambda), repair useless.
  const CtmcModel m = kOfNRepairableChain(4, 4, 1e-3, 10.0);
  EXPECT_NEAR(m.meanTimeToFailure(), 250.0, 1e-6);
}

TEST(KOfNRepairable, RejectsBadArguments) {
  EXPECT_THROW((void)kOfNRepairableChain(0, 1, 1e-3, 0.0), std::invalid_argument);
  EXPECT_THROW((void)kOfNRepairableChain(2, 3, 1e-3, 0.0), std::invalid_argument);
  EXPECT_THROW((void)kOfNRepairableChain(2, 1, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)kOfNRepairableChain(2, 1, 1e-3, -1.0), std::invalid_argument);
}

TEST(KOfNRepairable, DotExportOfPaperChainIsWellFormed) {
  const CtmcModel m = kOfNRepairableChain(4, 3, 2e-4, 1.2e3);
  const std::string dot = toDot(m, "wheel-nodes");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 down"), std::string::npos);
  EXPECT_NE(dot.find("2 down"), std::string::npos);
}

}  // namespace
}  // namespace nlft::rel
