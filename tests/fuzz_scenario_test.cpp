// Unit tests of the fuzzer's building blocks: scenario canonicalisation and
// JSON round-trip, mutation legality, signature determinism, corpus novelty
// gating and the shrinker on synthetic predicates (no simulation involved —
// the sim-backed oracles are covered by fuzz_engine_test).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "util/rng.hpp"

namespace nlft::fuzz {
namespace {

TEST(FuzzScenario, ClampCanonicalisesOrderAndRanges) {
  Scenario scenario;
  scenario.params.initialSpeedMps = 500.0;  // out of range
  scenario.params.pedal = -1.0;
  scenario.params.restartTimeUs = 0;
  ScheduleEvent late;
  late.kind = EventKind::KernelError;
  late.node = 99;  // wraps into 1..6
  late.atUs = 99'000'000;
  ScheduleEvent early;
  early.kind = EventKind::BusCorruption;
  early.node = 2;
  early.atUs = 1;  // below minEventUs
  early.flipBits = {1000, 3, 3000};  // out of bit space, unsorted
  scenario.events = {late, early};

  clampScenario(scenario);
  const ScenarioLimits limits;
  EXPECT_EQ(scenario.params.initialSpeedMps, limits.maxSpeedMps);
  EXPECT_EQ(scenario.params.pedal, limits.minPedal);
  EXPECT_EQ(scenario.params.restartTimeUs, limits.minRestartUs);
  ASSERT_EQ(scenario.events.size(), 2u);
  // Canonical order is by time: the clamped "early" event comes first.
  EXPECT_EQ(scenario.events[0].kind, EventKind::BusCorruption);
  EXPECT_EQ(scenario.events[0].atUs, limits.minEventUs);
  for (const std::uint32_t bit : scenario.events[0].flipBits) {
    EXPECT_LT(bit, limits.flipBitSpace);
  }
  EXPECT_TRUE(std::is_sorted(scenario.events[0].flipBits.begin(),
                             scenario.events[0].flipBits.end()));
  EXPECT_EQ(scenario.events[1].atUs, limits.maxEventUs);
  EXPECT_GE(scenario.events[1].node, 1u);
  EXPECT_LE(scenario.events[1].node, limits.nodeCount);
  // Non-bus events carry no flip bits.
  EXPECT_TRUE(scenario.events[1].flipBits.empty());
  EXPECT_TRUE(isLegalScenario(scenario));
}

TEST(FuzzScenario, JsonRoundTripIsExact) {
  util::Rng rng{42};
  for (int i = 0; i < 200; ++i) {
    const Scenario scenario = randomScenario(rng);
    const Scenario back = scenarioFromJson(scenarioToJson(scenario));
    EXPECT_EQ(scenario, back);
    // And the encoding itself is deterministic.
    EXPECT_EQ(scenarioToJson(scenario).dump(), scenarioToJson(back).dump());
  }
}

TEST(FuzzScenario, FromJsonRejectsIllegalAndMalformed) {
  EXPECT_THROW((void)scenarioFromJson(obs::parseJson("{}")), std::runtime_error);
  EXPECT_THROW((void)scenarioFromJson(obs::parseJson(
                   R"({"params":{"node_type":"magic","initial_speed_mps":20,)"
                   R"("pedal":1,"restart_time_us":2000000},"events":[]})")),
               std::runtime_error);
  // Legal JSON but out-of-range speed: rejected, not silently clamped.
  EXPECT_THROW((void)scenarioFromJson(obs::parseJson(
                   R"({"params":{"node_type":"nlft","initial_speed_mps":900,)"
                   R"("pedal":1,"restart_time_us":2000000},"events":[]})")),
               std::runtime_error);
  EXPECT_THROW((void)parseEventKind("definitely-not-a-kind"), std::invalid_argument);
}

TEST(FuzzMutate, MutantsAreAlwaysLegalAndUsuallyDifferent) {
  util::Rng rng{7};
  std::size_t changed = 0;
  const Scenario base = randomScenario(rng);
  const Scenario donor = randomScenario(rng);
  for (int i = 0; i < 500; ++i) {
    const Scenario mutant = mutateScenario(rng, base, &donor);
    EXPECT_TRUE(isLegalScenario(mutant));
    if (!(mutant == base)) ++changed;
  }
  // Some operators no-op on some draws (e.g. deleting from a short
  // schedule), but the vast majority of mutants must differ.
  EXPECT_GT(changed, 400u);
}

TEST(FuzzMutate, DeterministicForFixedSeed) {
  util::Rng a{99};
  util::Rng b{99};
  const Scenario base = randomScenario(a);
  const Scenario baseB = randomScenario(b);
  ASSERT_EQ(base, baseB);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(mutateScenario(a, base), mutateScenario(b, baseB));
  }
}

TEST(FuzzSignature, CanonicalFormIsStableAndKeyed) {
  ScenarioSignature sig;
  sig.outcome = "masked";
  sig.nodeType = "nlft";
  sig.stopped = true;
  sig.distanceBucket = 1;
  sig.eventKindBuckets[2] = 2;
  const std::string canonical = sig.canonical();
  EXPECT_EQ(canonical, "masked|nlft|stopped|d1|o0|b0|down0|-|-|-|ev002000");
  EXPECT_EQ(sig.key(), sig.key());
  ScenarioSignature other = sig;
  other.masking = true;
  EXPECT_NE(other.canonical(), canonical);
  EXPECT_NE(other.key(), sig.key());
}

TEST(FuzzCorpus, NoveltyMapAdmitsEachSignatureOnce) {
  Corpus corpus;
  CorpusEntry entry;
  entry.signature = "masked|nlft|stopped";
  entry.key = 17;
  EXPECT_TRUE(corpus.addIfNovel(entry));
  EXPECT_FALSE(corpus.addIfNovel(entry));
  entry.key = 18;
  EXPECT_TRUE(corpus.addIfNovel(entry));
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_TRUE(corpus.seen(17));
  EXPECT_FALSE(corpus.seen(99));
}

TEST(FuzzCorpus, EntryJsonRoundTripKeepsExpectations) {
  util::Rng rng{5};
  CorpusEntry entry;
  entry.scenario = randomScenario(rng);
  entry.outcome = "omission-degradation";
  entry.signature = "omission-degradation|nlft|stopped|d1|o1|b0|down0|-|-|-|ev100000";
  entry.expectedViolations = {"diff.e2e-bound"};
  const CorpusEntry back = corpusEntryFromJson(corpusEntryToJson(entry));
  EXPECT_EQ(back.scenario, entry.scenario);
  EXPECT_EQ(back.outcome, entry.outcome);
  EXPECT_EQ(back.signature, entry.signature);
  EXPECT_EQ(back.expectedViolations, entry.expectedViolations);
  EXPECT_NE(back.key, 0u);  // recomputed from the signature
  EXPECT_THROW((void)corpusEntryFromJson(obs::parseJson(R"({"format":"v999"})")),
               std::runtime_error);
}

TEST(FuzzShrink, DeletesEveryIrrelevantEvent) {
  // Predicate: "fails" iff the schedule contains a kernel error on node 1.
  const auto stillFails = [](const Scenario& scenario) {
    for (const ScheduleEvent& event : scenario.events) {
      if (event.kind == EventKind::KernelError && event.node == 1) return true;
    }
    return false;
  };

  util::Rng rng{11};
  Scenario noisy = randomScenario(rng);
  noisy.events.clear();
  for (int i = 0; i < 7; ++i) {
    ScheduleEvent filler;
    filler.kind = EventKind::OmissionFailure;
    filler.node = static_cast<net::NodeId>(2 + (i % 5));
    filler.atUs = 200'000 + 100'000 * i;
    noisy.events.push_back(filler);
  }
  ScheduleEvent culprit;
  culprit.kind = EventKind::KernelError;
  culprit.node = 1;
  culprit.atUs = 700'000;
  noisy.events.push_back(culprit);
  clampScenario(noisy);
  ASSERT_TRUE(stillFails(noisy));

  const ShrinkResult result = shrinkScenario(noisy, stillFails);
  ASSERT_EQ(result.scenario.events.size(), 1u);
  EXPECT_EQ(result.scenario.events[0].kind, EventKind::KernelError);
  EXPECT_EQ(result.scenario.events[0].node, 1u);
  EXPECT_EQ(result.removedEvents, 7u);
  // Parameter bisection pulled the deployment back to the defaults and time
  // bisection normalised the injection instant (neither affects this
  // predicate, so both collapse fully).
  EXPECT_EQ(result.scenario.params, ScenarioParams{});
  EXPECT_EQ(result.scenario.events[0].atUs, ScenarioLimits{}.minEventUs);
}

TEST(FuzzShrink, ReturnsSeedWhenPredicateDoesNotFail) {
  util::Rng rng{3};
  const Scenario seed = randomScenario(rng);
  const ShrinkResult result =
      shrinkScenario(seed, [](const Scenario&) { return false; });
  EXPECT_EQ(result.scenario, seed);
  EXPECT_EQ(result.evaluations, 1u);
}

TEST(FuzzShrink, RespectsEvaluationBudget) {
  util::Rng rng{13};
  Scenario big = randomScenario(rng);
  while (big.events.size() < 8) {
    ScheduleEvent extra;
    extra.kind = EventKind::DetectedError;
    extra.node = 3;
    extra.atUs = 500'000 + static_cast<std::int64_t>(big.events.size()) * 100'000;
    big.events.push_back(extra);
  }
  clampScenario(big);
  std::size_t calls = 0;
  const ShrinkResult result = shrinkScenario(
      big,
      [&calls](const Scenario&) {
        ++calls;
        return true;  // everything "fails": worst case for the search
      },
      {}, 25);
  EXPECT_LE(result.evaluations, 26u);  // budget + the initial probe
  EXPECT_LE(calls, 26u);
}

}  // namespace
}  // namespace nlft::fuzz
