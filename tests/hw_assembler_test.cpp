#include "hw/assembler.hpp"

#include <gtest/gtest.h>

#include "hw/isa.hpp"
#include "hw/machine.hpp"

namespace nlft::hw {
namespace {

TEST(Assembler, MinimalProgram) {
  const Program p = assemble("ldi r1, 5\nhalt\n");
  ASSERT_EQ(p.words.size(), 2u);
  const auto first = decode(p.words[0]);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->opcode, Opcode::Ldi);
  EXPECT_EQ(first->rd, 1);
  EXPECT_EQ(first->imm, 5);
  EXPECT_EQ(decode(p.words[1])->opcode, Opcode::Halt);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const Program p = assemble(R"(
      ; leading comment

      nop   ; trailing comment

      halt
  )");
  EXPECT_EQ(p.words.size(), 2u);
}

TEST(Assembler, LabelsResolveToByteAddresses) {
  const Program p = assemble(R"(
    start:
      ldi r1, 0
    loop:
      addi r1, r1, 1
      cmpi r1, 10
      bne loop
      halt
  )");
  EXPECT_EQ(p.symbol("start"), 0u);
  EXPECT_EQ(p.symbol("loop"), 4u);
  const auto branch = decode(p.words[3]);
  EXPECT_EQ(branch->opcode, Opcode::Bne);
  EXPECT_EQ(branch->imm, 4);
}

TEST(Assembler, LabelOnOwnLineAndInline) {
  const Program p = assemble("a:\nb: nop\nhalt\n");
  EXPECT_EQ(p.symbol("a"), 0u);
  EXPECT_EQ(p.symbol("b"), 0u);
  EXPECT_EQ(p.words.size(), 2u);
}

TEST(Assembler, MemoryOperandForms) {
  const Program p = assemble(R"(
    ld r1, [r2]
    ld r3, [r4+8]
    st r5, [r6-4]
    halt
  )");
  const auto plain = decode(p.words[0]);
  EXPECT_EQ(plain->rs1, 2);
  EXPECT_EQ(plain->imm, 0);
  const auto positive = decode(p.words[1]);
  EXPECT_EQ(positive->rs1, 4);
  EXPECT_EQ(positive->imm, 8);
  const auto negative = decode(p.words[2]);
  EXPECT_EQ(negative->opcode, Opcode::St);
  EXPECT_EQ(negative->rs1, 6);
  EXPECT_EQ(negative->imm, -4);
}

TEST(Assembler, SpAliasesR15) {
  const Program p = assemble("mov sp, r1\npush r2\nhalt\n");
  EXPECT_EQ(decode(p.words[0])->rd, kStackPointer);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const Program p = assemble("ldi r1, 0x1F\nldi r2, -3\nhalt\n");
  EXPECT_EQ(decode(p.words[0])->imm, 31);
  EXPECT_EQ(decode(p.words[1])->imm, -3);
}

TEST(Assembler, OrgShiftsLabelAddresses) {
  const Program p = assemble(R"(
    .org 0x100
    entry:
      nop
    target:
      halt
  )");
  EXPECT_EQ(p.origin, 0x100u);
  EXPECT_EQ(p.symbol("entry"), 0x100u);
  EXPECT_EQ(p.symbol("target"), 0x104u);
}

TEST(Assembler, LdiCanLoadLabelAddress) {
  const Program p = assemble(R"(
      ldi r1, data
      halt
    data:
      nop
  )");
  EXPECT_EQ(decode(p.words[0])->imm, 8);
}

TEST(Assembler, JsrAndRtsEncode) {
  const Program p = assemble(R"(
      jsr fn
      halt
    fn:
      rts
  )");
  const auto jsr = decode(p.words[0]);
  EXPECT_EQ(jsr->opcode, Opcode::Jsr);
  EXPECT_EQ(jsr->imm, 8);
  EXPECT_EQ(decode(p.words[2])->opcode, Opcode::Rts);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    (void)assemble("nop\nbogus r1\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Assembler, RejectsBadInput) {
  EXPECT_THROW((void)assemble("ldi r99, 1\n"), AssemblyError);
  EXPECT_THROW((void)assemble("ldi r1\n"), AssemblyError);            // missing operand
  EXPECT_THROW((void)assemble("add r1, r2\n"), AssemblyError);        // wrong arity
  EXPECT_THROW((void)assemble("beq nowhere\n"), AssemblyError);       // undefined label
  EXPECT_THROW((void)assemble("ldi r1, 999999\n"), AssemblyError);    // imm range
  EXPECT_THROW((void)assemble("ld r1, r2\n"), AssemblyError);         // not a memory operand
  EXPECT_THROW((void)assemble("x: nop\nx: nop\n"), AssemblyError);    // duplicate label
  EXPECT_THROW((void)assemble("ldi r1, ,\n"), AssemblyError);         // empty operand
}

TEST(Assembler, WordDirectiveEmitsLiteralData) {
  const Program p = assemble(R"(
      ld r1, [r0+table]
      halt
    table:
      .word 10, 0x20, -1
  )");
  ASSERT_EQ(p.words.size(), 5u);
  EXPECT_EQ(p.symbol("table"), 8u);
  EXPECT_EQ(p.words[2], 10u);
  EXPECT_EQ(p.words[3], 0x20u);
  EXPECT_EQ(p.words[4], 0xFFFFFFFFu);
}

TEST(Assembler, WordDirectiveCanHoldLabelAddresses) {
  const Program p = assemble(R"(
      halt
    vector:
      .word entry
    entry:
      nop
  )");
  EXPECT_EQ(p.words[1], p.symbol("entry"));
}

TEST(Assembler, WordTableIsLoadableData) {
  // A lookup-table program: reads table[input] and stores it.
  const Program p = assemble(R"(
      ldi r1, 0x800
      ld  r2, [r1+0]      ; index
      shl r2, r2, 2       ; *4 bytes
      ldi r3, table
      add r3, r3, r2
      ld  r4, [r3+0]
      st  r4, [r1+4]
      halt
    table:
      .word 100, 200, 300, 400
  )");
  hw::Machine machine{4096};
  machine.loadWords(0, p.words);
  machine.memory().write(0x800, 2);  // index 2
  machine.cpu().setSp(4096);
  EXPECT_EQ(machine.run(100).reason, StopReason::Halted);
  EXPECT_EQ(machine.readWords(0x804, 1)[0], 300u);
}

TEST(Assembler, WordDirectiveRejectsBadOperands) {
  EXPECT_THROW((void)assemble(".word\n"), AssemblyError);
  EXPECT_THROW((void)assemble(".word nowhere\n"), AssemblyError);
  EXPECT_THROW((void)assemble(".word 1x\n"), AssemblyError);
}

TEST(Assembler, MnemonicsAreCaseInsensitive) {
  const Program p = assemble("LDI R1, 1\nHALT\n");
  EXPECT_EQ(decode(p.words[0])->opcode, Opcode::Ldi);
}

}  // namespace
}  // namespace nlft::hw
