#include "core/replication.hpp"

#include <gtest/gtest.h>

namespace nlft::tem {
namespace {

SimTime at(std::int64_t ms) { return SimTime::fromUs(ms * 1000); }

TEST(DuplexArbiterFirstValid, DeliversFirstDropsSecond) {
  DuplexArbiter arbiter{DuplexArbiter::Policy::FirstValid};
  const auto first = arbiter.offer(0, 1, {10, 20}, at(0));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (std::vector<std::uint32_t>{10, 20}));
  const auto second = arbiter.offer(1, 1, {10, 20}, at(1));
  EXPECT_FALSE(second.has_value());
  EXPECT_EQ(arbiter.delivered(), 1u);
  EXPECT_EQ(arbiter.duplicatesDropped(), 1u);
}

TEST(DuplexArbiterFirstValid, IndependentSequencesAllDeliver) {
  DuplexArbiter arbiter{DuplexArbiter::Policy::FirstValid};
  for (std::uint64_t sequence = 0; sequence < 5; ++sequence) {
    EXPECT_TRUE(arbiter.offer(sequence % 2, sequence, {static_cast<std::uint32_t>(sequence)},
                              at(static_cast<std::int64_t>(sequence)))
                    .has_value());
  }
  EXPECT_EQ(arbiter.delivered(), 5u);
}

TEST(DuplexArbiterCompare, MatchingCopiesDeliverOnSecondArrival) {
  DuplexArbiter arbiter{DuplexArbiter::Policy::CompareAndFlag};
  EXPECT_FALSE(arbiter.offer(0, 7, {1, 2}, at(0)).has_value());  // held
  const auto result = arbiter.offer(1, 7, {1, 2}, at(1));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(arbiter.mismatches(), 0u);
}

TEST(DuplexArbiterCompare, MismatchFlaggedAndSuppressed) {
  DuplexArbiter arbiter{DuplexArbiter::Policy::CompareAndFlag};
  std::uint64_t flaggedSequence = 0;
  arbiter.setMismatchHandler([&](std::uint64_t sequence) { flaggedSequence = sequence; });
  EXPECT_FALSE(arbiter.offer(0, 9, {1}, at(0)).has_value());
  EXPECT_FALSE(arbiter.offer(1, 9, {2}, at(1)).has_value());  // divergence!
  EXPECT_EQ(arbiter.mismatches(), 1u);
  EXPECT_EQ(flaggedSequence, 9u);
  EXPECT_EQ(arbiter.delivered(), 0u);
  // Late retransmission of a settled sequence is dropped.
  EXPECT_FALSE(arbiter.offer(0, 9, {1}, at(2)).has_value());
  EXPECT_EQ(arbiter.duplicatesDropped(), 1u);
}

TEST(DuplexArbiterCompare, TimeoutReleasesSingleSource) {
  DuplexArbiter arbiter{DuplexArbiter::Policy::CompareAndFlag, Duration::milliseconds(5)};
  EXPECT_FALSE(arbiter.offer(0, 3, {42}, at(0)).has_value());
  EXPECT_TRUE(arbiter.poll(at(4)).empty());  // window not elapsed
  const auto released = arbiter.poll(at(5));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], (std::vector<std::uint32_t>{42}));
  EXPECT_EQ(arbiter.singleSourceDeliveries(), 1u);
  // The partner's very late copy is now a duplicate.
  EXPECT_FALSE(arbiter.offer(1, 3, {42}, at(6)).has_value());
}

TEST(DuplexArbiterCompare, SameReplicaRetransmissionIsNotAMatch) {
  DuplexArbiter arbiter{DuplexArbiter::Policy::CompareAndFlag};
  EXPECT_FALSE(arbiter.offer(0, 4, {1}, at(0)).has_value());
  EXPECT_FALSE(arbiter.offer(0, 4, {1}, at(1)).has_value());  // same source again
  EXPECT_EQ(arbiter.duplicatesDropped(), 1u);
  // The genuine partner copy still completes the pair.
  EXPECT_TRUE(arbiter.offer(1, 4, {1}, at(2)).has_value());
}

TEST(DuplexArbiter, RejectsBadArguments) {
  EXPECT_THROW(DuplexArbiter(DuplexArbiter::Policy::FirstValid, Duration{}),
               std::invalid_argument);
  DuplexArbiter arbiter{DuplexArbiter::Policy::FirstValid};
  EXPECT_THROW((void)arbiter.offer(2, 0, {}, at(0)), std::invalid_argument);
}

TEST(DuplexArbiterCompare, InterleavedSequencesKeptApart) {
  DuplexArbiter arbiter{DuplexArbiter::Policy::CompareAndFlag};
  EXPECT_FALSE(arbiter.offer(0, 1, {1}, at(0)).has_value());
  EXPECT_FALSE(arbiter.offer(0, 2, {2}, at(0)).has_value());
  EXPECT_TRUE(arbiter.offer(1, 2, {2}, at(1)).has_value());
  EXPECT_TRUE(arbiter.offer(1, 1, {1}, at(1)).has_value());
  EXPECT_EQ(arbiter.delivered(), 2u);
}

}  // namespace
}  // namespace nlft::tem
