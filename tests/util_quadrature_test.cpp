#include "util/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nlft::util {
namespace {

TEST(IntegrateAdaptive, Polynomial) {
  const double v = integrateAdaptive([](double x) { return 3.0 * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(v, 8.0, 1e-10);
}

TEST(IntegrateAdaptive, EmptyInterval) {
  EXPECT_DOUBLE_EQ(integrateAdaptive([](double) { return 1.0; }, 1.0, 1.0), 0.0);
}

TEST(IntegrateAdaptive, OscillatoryFunction) {
  const double v = integrateAdaptive([](double x) { return std::sin(x); }, 0.0, M_PI);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(IntegrateAdaptive, SharpPeakResolved) {
  // Narrow Gaussian centered off the midpoint: naive Simpson would miss it.
  const double sigma = 1e-3;
  const double v = integrateAdaptive(
      [sigma](double x) {
        const double d = (x - 0.3) / sigma;
        return std::exp(-0.5 * d * d);
      },
      0.0, 1.0, 1e-12, 60);
  EXPECT_NEAR(v, sigma * std::sqrt(2.0 * M_PI), 1e-8);
}

TEST(IntegrateToInfinity, ExponentialTail) {
  // MTTF of exp(-lambda t) is 1/lambda — the exact use case in the repo.
  const double lambda = 2.002e-4;  // per hour, the BBW node fault rate
  const double v = integrateToInfinity([lambda](double t) { return std::exp(-lambda * t); },
                                       1000.0);
  EXPECT_NEAR(v, 1.0 / lambda, 1.0 / lambda * 1e-6);
}

TEST(IntegrateToInfinity, FastDecay) {
  const double v = integrateToInfinity([](double t) { return std::exp(-t); }, 0.5);
  EXPECT_NEAR(v, 1.0, 1e-7);
}

TEST(IntegrateToInfinity, ProductOfExponentials) {
  // R1*R2 composition mirrors the fault-tree MTTF path.
  const double a = 1e-4;
  const double b = 3e-4;
  const double v = integrateToInfinity(
      [a, b](double t) { return std::exp(-a * t) * std::exp(-b * t); }, 1000.0);
  EXPECT_NEAR(v, 1.0 / (a + b), 1e-2);
}

}  // namespace
}  // namespace nlft::util
