#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace nlft::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1{7};
  Rng parent2{7};
  Rng childA = parent1.fork(1);
  Rng childB = parent2.fork(1);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(childA.next(), childB.next());

  Rng parent3{7};
  Rng other = parent3.fork(2);
  int equal = 0;
  Rng childC = Rng{7}.fork(1);
  for (int i = 0; i < 64; ++i) equal += childC.next() == other.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng{4};
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntUnbiasedOverSmallRange) {
  Rng rng{5};
  constexpr int n = 60000;
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < n; ++i) ++counts[rng.uniformInt(3)];
  for (int c : counts) EXPECT_NEAR(c, n / 3, n / 50);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng{6};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniformInt(7), 7u);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng{8};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng{9};
  constexpr int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.2);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.2, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{10};
  constexpr int n = 200000;
  const double rate = 4.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.005);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng{11};
  constexpr int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng{12};
  constexpr int n = 100000;
  const double mean = 2.5;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng{14};
  constexpr int n = 20000;
  const double mean = 400.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 1.5);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  // Regression anchors: these values must never change, or every seeded
  // experiment in the repo silently changes.
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(second, 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace nlft::util
