#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace nlft::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1{7};
  Rng parent2{7};
  Rng childA = parent1.fork(1);
  Rng childB = parent2.fork(1);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(childA.next(), childB.next());

  Rng parent3{7};
  Rng other = parent3.fork(2);
  int equal = 0;
  Rng childC = Rng{7}.fork(1);
  for (int i = 0; i < 64; ++i) equal += childC.next() == other.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng{4};
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntUnbiasedOverSmallRange) {
  Rng rng{5};
  constexpr int n = 60000;
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < n; ++i) ++counts[rng.uniformInt(3)];
  for (int c : counts) EXPECT_NEAR(c, n / 3, n / 50);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng{6};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniformInt(7), 7u);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng{8};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng{9};
  constexpr int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.2);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.2, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{10};
  constexpr int n = 200000;
  const double rate = 4.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.005);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng{11};
  constexpr int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng{12};
  constexpr int n = 100000;
  const double mean = 2.5;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng{14};
  constexpr int n = 20000;
  const double mean = 400.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 1.5);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  // Regression anchors: these values must never change, or every seeded
  // experiment in the repo silently changes.
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(second, 0x6E789E6AA1B965F4ULL);
}

TEST(Rng, ForkSubStreamsArePairwiseUncorrelatedAcross1kForks) {
  // The fuzzer's reproducibility rests on fork(label) yielding streams that
  // behave independently: chunked campaigns map chunk index -> sub-stream,
  // and any cross-stream correlation would couple "independent" experiments
  // in every campaign in the repo. Pin it statistically: across 1000 forks
  // of one parent, the pairwise sample correlation of uniform01 draws must
  // stay inside the sampling noise of true independence.
  constexpr std::size_t kForks = 1000;
  constexpr std::size_t kSamples = 256;

  Rng parent{0xfeedfacecafebeefULL};
  std::vector<std::vector<double>> streams;
  streams.reserve(kForks);
  for (std::size_t f = 0; f < kForks; ++f) {
    Rng child = parent.fork(f);
    std::vector<double> samples(kSamples);
    for (double& x : samples) x = child.uniform01();
    streams.push_back(std::move(samples));
  }

  // Per-stream sanity: means near 1/2 (a biased child would poison every
  // campaign before correlation even matters).
  for (std::size_t f = 0; f < kForks; ++f) {
    double mean = 0.0;
    for (const double x : streams[f]) mean += x;
    mean /= static_cast<double>(kSamples);
    ASSERT_NEAR(mean, 0.5, 0.1) << "fork " << f;
  }

  // Pairwise correlations: adjacent labels, label 0 vs everything (the
  // parent state advances once per fork, so THESE are the structurally
  // riskiest pairs), plus a deterministic stride sample of distant pairs.
  const auto correlation = [&](std::size_t a, std::size_t b) {
    double meanA = 0.0;
    double meanB = 0.0;
    for (std::size_t i = 0; i < kSamples; ++i) {
      meanA += streams[a][i];
      meanB += streams[b][i];
    }
    meanA /= static_cast<double>(kSamples);
    meanB /= static_cast<double>(kSamples);
    double cov = 0.0;
    double varA = 0.0;
    double varB = 0.0;
    for (std::size_t i = 0; i < kSamples; ++i) {
      const double da = streams[a][i] - meanA;
      const double db = streams[b][i] - meanB;
      cov += da * db;
      varA += da * da;
      varB += db * db;
    }
    return cov / std::sqrt(varA * varB);
  };

  // For n=256 iid samples, |r| ~ Normal(0, 1/sqrt(n)) => sd ~ 0.0625. A
  // 0.3 bound is ~4.8 sigma per pair; across ~3000 pairs the false-alarm
  // probability is below 1e-2, and a REAL dependence (shared sequence,
  // lagged copy) produces |r| near 1.
  constexpr double kBound = 0.3;
  double worst = 0.0;
  for (std::size_t f = 0; f + 1 < kForks; ++f) {
    worst = std::max(worst, std::abs(correlation(f, f + 1)));
  }
  for (std::size_t f = 1; f < kForks; ++f) {
    worst = std::max(worst, std::abs(correlation(0, f)));
  }
  for (std::size_t f = 3; f < kForks; f += 7) {
    const std::size_t other = (f * 37) % kForks;
    if (other == f) continue;  // e.g. f=250: 250*37 % 1000 == 250
    worst = std::max(worst, std::abs(correlation(f, other)));
  }
  EXPECT_LT(worst, kBound);

  // And forked streams must never simply shift the parent's sequence: a
  // child reproducing the parent's tail is the classic fork bug.
  Rng parent2{0xfeedfacecafebeefULL};
  Rng child = parent2.fork(0);
  std::vector<std::uint64_t> parentTail(64);
  for (std::uint64_t& v : parentTail) v = parent2.next();
  std::size_t collisions = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t draw = child.next();
    for (const std::uint64_t v : parentTail) collisions += draw == v ? 1 : 0;
  }
  EXPECT_EQ(collisions, 0u);
}

}  // namespace
}  // namespace nlft::util
