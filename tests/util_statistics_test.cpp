#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nlft::util {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.confidenceHalfWidth(), 0.0);
}

TEST(RunningStats, ConfidenceIntervalCoversTrueMean) {
  // Property: a 95% CI over repeated experiments covers the true mean about
  // 95% of the time.
  Rng rng{21};
  int covered = 0;
  constexpr int experiments = 400;
  for (int e = 0; e < experiments; ++e) {
    RunningStats s;
    for (int i = 0; i < 200; ++i) s.add(rng.normal(10.0, 3.0));
    const double half = s.confidenceHalfWidth(0.95);
    covered += std::abs(s.mean() - 10.0) <= half;
  }
  EXPECT_GE(covered, experiments * 90 / 100);
  EXPECT_LE(covered, experiments * 99 / 100);
}

TEST(InverseNormalCdf, KnownQuantiles) {
  EXPECT_NEAR(inverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(inverseNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(inverseNormalCdf(0.8413447461), 1.0, 1e-5);
}

TEST(InverseNormalCdf, RejectsOutOfDomain) {
  EXPECT_THROW((void)inverseNormalCdf(0.0), std::invalid_argument);
  EXPECT_THROW((void)inverseNormalCdf(1.0), std::invalid_argument);
}

TEST(WilsonInterval, BracketsPointEstimate) {
  const auto est = wilsonInterval(90, 100);
  EXPECT_DOUBLE_EQ(est.proportion, 0.9);
  EXPECT_LT(est.low, 0.9);
  EXPECT_GT(est.high, 0.9);
  EXPECT_GT(est.low, 0.8);
  EXPECT_LT(est.high, 0.96);
}

TEST(WilsonInterval, ZeroTrialsIsEmptyEstimate) {
  const auto est = wilsonInterval(0, 0);
  EXPECT_EQ(est.trials, 0u);
  EXPECT_DOUBLE_EQ(est.proportion, 0.0);
}

TEST(WilsonInterval, ExtremesStayInUnitInterval) {
  const auto all = wilsonInterval(50, 50);
  EXPECT_LE(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
  const auto none = wilsonInterval(0, 50);
  EXPECT_GE(none.low, 0.0);
  EXPECT_GT(none.high, 0.0);
}

TEST(WilsonInterval, ShrinksWithSampleSize) {
  const auto small = wilsonInterval(9, 10);
  const auto large = wilsonInterval(900, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(RunningStats, MergeWithEmptyPartitionIsIdentity) {
  RunningStats filled;
  for (double x : {1.0, 2.0, 3.0}) filled.add(x);
  const RunningStats before = filled;

  RunningStats empty;
  filled.merge(empty);  // empty on the right: no-op
  EXPECT_EQ(filled.count(), before.count());
  EXPECT_DOUBLE_EQ(filled.mean(), before.mean());
  EXPECT_DOUBLE_EQ(filled.variance(), before.variance());

  RunningStats target;  // empty on the left: copies the argument
  target.merge(before);
  EXPECT_EQ(target.count(), 3u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 3.0);
}

TEST(RunningStats, MergeOfSingletonPartitionsEqualsSequential) {
  // Merging N single-sample accumulators in order must reproduce the
  // sequential fill — the degenerate chunking of a parallel campaign.
  Rng rng{7};
  RunningStats sequential;
  RunningStats merged;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sequential.add(x);
    RunningStats single;
    single.add(x);
    merged.merge(single);
  }
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), sequential.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(merged.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged.max(), sequential.max());
}

TEST(WilsonInterval, ZeroSuccessesHasZeroLowerBoundAndPositiveWidth) {
  for (std::size_t n : {1u, 10u, 1000u}) {
    const auto est = wilsonInterval(0, n);
    EXPECT_DOUBLE_EQ(est.proportion, 0.0);
    EXPECT_DOUBLE_EQ(est.low, 0.0);
    EXPECT_GT(est.high, 0.0) << "n=" << n;
    EXPECT_LT(est.high, 1.0) << "n=" << n;
  }
}

TEST(WilsonInterval, AllSuccessesHasUnitUpperBoundAndPositiveWidth) {
  for (std::size_t n : {1u, 10u, 1000u}) {
    const auto est = wilsonInterval(n, n);
    EXPECT_DOUBLE_EQ(est.proportion, 1.0);
    EXPECT_DOUBLE_EQ(est.high, 1.0);
    EXPECT_LT(est.low, 1.0) << "n=" << n;
    EXPECT_GT(est.low, 0.0) << "n=" << n;
  }
}

TEST(WeightedStats, UnitWeightsMatchRunningStats) {
  Rng rng{11};
  RunningStats plain;
  WeightedStats weighted;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(0.0, 1.0);
    plain.add(x);
    weighted.add(x, 1.0);
  }
  EXPECT_EQ(weighted.count(), plain.count());
  EXPECT_NEAR(weighted.mean(), plain.mean(), 1e-12);
  EXPECT_DOUBLE_EQ(weighted.sumWeights(), 500.0);
  EXPECT_DOUBLE_EQ(weighted.effectiveSampleSize(), 500.0);
  EXPECT_DOUBLE_EQ(weighted.weightCv(), 0.0);
}

TEST(WeightedStats, WeightedMeanAndVarianceAreExactOnSmallCase) {
  WeightedStats s;
  s.add(1.0, 1.0);
  s.add(3.0, 3.0);
  // mean = (1*1 + 3*3)/4 = 2.5; population variance =
  // (1*(1-2.5)^2 + 3*(3-2.5)^2)/4 = (2.25 + 0.75)/4 = 0.75.
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 0.75, 1e-12);
  // ESS = (Σw)²/Σw² = 16/10 = 1.6.
  EXPECT_NEAR(s.effectiveSampleSize(), 1.6, 1e-12);
}

TEST(WeightedStats, ZeroWeightSamplesCountButCarryNoMass) {
  WeightedStats s;
  s.add(100.0, 0.0);
  s.add(2.0, 1.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.sumWeights(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);  // min/max see every draw
}

TEST(WeightedStats, RejectsNegativeWeight) {
  WeightedStats s;
  EXPECT_THROW(s.add(1.0, -0.5), std::invalid_argument);
}

TEST(WeightedStats, MergeAssociativityPropertySweep) {
  // Property sweep: for random data and random 3-way partitions,
  // (A⊕B)⊕C and A⊕(B⊕C) and the sequential fill agree. This is the
  // contract the chunk-order merge of parallel importance-sampling
  // campaigns relies on.
  Rng rng{33};
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 3 + rng.uniformInt(40);
    std::vector<double> xs(n);
    std::vector<double> ws(n);
    WeightedStats sequential;
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = rng.normal(0.0, 2.0);
      ws[i] = rng.uniform01() < 0.1 ? 0.0 : rng.uniform(0.0, 4.0);
      sequential.add(xs[i], ws[i]);
    }
    const std::size_t cut1 = rng.uniformInt(n + 1);
    const std::size_t cut2 = cut1 + rng.uniformInt(n - cut1 + 1);
    WeightedStats a;
    WeightedStats b;
    WeightedStats c;
    for (std::size_t i = 0; i < cut1; ++i) a.add(xs[i], ws[i]);
    for (std::size_t i = cut1; i < cut2; ++i) b.add(xs[i], ws[i]);
    for (std::size_t i = cut2; i < n; ++i) c.add(xs[i], ws[i]);

    WeightedStats leftAssoc = a;
    leftAssoc.merge(b);
    leftAssoc.merge(c);
    WeightedStats bc = b;
    bc.merge(c);
    WeightedStats rightAssoc = a;
    rightAssoc.merge(bc);

    for (const WeightedStats* s : {&leftAssoc, &rightAssoc}) {
      EXPECT_EQ(s->count(), sequential.count());
      EXPECT_NEAR(s->sumWeights(), sequential.sumWeights(), 1e-9);
      EXPECT_DOUBLE_EQ(s->sumSquaredWeights(), sequential.sumSquaredWeights());
      EXPECT_NEAR(s->mean(), sequential.mean(), 1e-9);
      EXPECT_NEAR(s->variance(), sequential.variance(), 1e-9);
      EXPECT_DOUBLE_EQ(s->min(), sequential.min());
      EXPECT_DOUBLE_EQ(s->max(), sequential.max());
    }
  }
}

TEST(StratifiedProportion, SingleStratumMatchesNormalApproximation) {
  const auto est = stratifiedProportion({{1.0, 50, 100}});
  EXPECT_DOUBLE_EQ(est.proportion, 0.5);
  EXPECT_EQ(est.trials, 100u);
  EXPECT_EQ(est.emptyStrata, 0u);
  // z * sqrt(p̃(1-p̃)/n) with p̃ ≈ 0.5: about 0.098.
  EXPECT_NEAR(est.halfWidth, 0.098, 0.004);
}

TEST(StratifiedProportion, CombinesStrataByWeight) {
  // Stratum A (weight .8): p=0.1. Stratum B (weight .2): p=0.9.
  const auto est = stratifiedProportion({{0.8, 10, 100}, {0.2, 90, 100}});
  EXPECT_NEAR(est.proportion, 0.8 * 0.1 + 0.2 * 0.9, 1e-12);
  EXPECT_GT(est.halfWidth, 0.0);
  EXPECT_GE(est.low, 0.0);
  EXPECT_LE(est.high, 1.0);
}

TEST(StratifiedProportion, DegenerateStrataKeepPositiveWidth) {
  const auto est = stratifiedProportion({{0.5, 0, 40}, {0.5, 40, 40}});
  EXPECT_DOUBLE_EQ(est.proportion, 0.5);
  EXPECT_GT(est.halfWidth, 0.0);
}

TEST(StratifiedProportion, FlagsEmptyStrata) {
  const auto est = stratifiedProportion({{0.5, 5, 10}, {0.5, 0, 0}});
  EXPECT_EQ(est.emptyStrata, 1u);
  EXPECT_THROW((void)stratifiedProportion({{-0.1, 0, 1}}), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.binCount(0), 2u);
  EXPECT_EQ(h.binCount(2), 1u);
  EXPECT_EQ(h.binCount(4), 2u);
  EXPECT_DOUBLE_EQ(h.binLow(2), 4.0);
  EXPECT_DOUBLE_EQ(h.binHigh(2), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, MergeRejectsMismatchedLayoutWithDiagnostic) {
  Histogram mine{0.0, 10.0, 5};
  mine.add(1.0);
  const Histogram rebinned{0.0, 10.0, 10};
  const Histogram shifted{0.0, 20.0, 5};
  for (const Histogram* theirs : {&rebinned, &shifted}) {
    try {
      mine.merge(*theirs);
      FAIL() << "merge of incompatible layout did not throw";
    } catch (const std::invalid_argument& error) {
      // The diagnostic names both layouts' bin edges, so the mismatch is
      // debuggable straight from the exception text.
      const std::string message = error.what();
      EXPECT_NE(message.find("ours [0, 10) / 5 bins"), std::string::npos) << message;
      EXPECT_NE(message.find("theirs"), std::string::npos) << message;
    }
  }
  // Failed merges leave the target untouched.
  EXPECT_EQ(mine.total(), 1u);
  Histogram compatible{0.0, 10.0, 5};
  compatible.add(2.0);
  mine.merge(compatible);
  EXPECT_EQ(mine.total(), 2u);
}

}  // namespace
}  // namespace nlft::util
