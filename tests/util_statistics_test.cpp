#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nlft::util {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.confidenceHalfWidth(), 0.0);
}

TEST(RunningStats, ConfidenceIntervalCoversTrueMean) {
  // Property: a 95% CI over repeated experiments covers the true mean about
  // 95% of the time.
  Rng rng{21};
  int covered = 0;
  constexpr int experiments = 400;
  for (int e = 0; e < experiments; ++e) {
    RunningStats s;
    for (int i = 0; i < 200; ++i) s.add(rng.normal(10.0, 3.0));
    const double half = s.confidenceHalfWidth(0.95);
    covered += std::abs(s.mean() - 10.0) <= half;
  }
  EXPECT_GE(covered, experiments * 90 / 100);
  EXPECT_LE(covered, experiments * 99 / 100);
}

TEST(InverseNormalCdf, KnownQuantiles) {
  EXPECT_NEAR(inverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(inverseNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(inverseNormalCdf(0.8413447461), 1.0, 1e-5);
}

TEST(InverseNormalCdf, RejectsOutOfDomain) {
  EXPECT_THROW((void)inverseNormalCdf(0.0), std::invalid_argument);
  EXPECT_THROW((void)inverseNormalCdf(1.0), std::invalid_argument);
}

TEST(WilsonInterval, BracketsPointEstimate) {
  const auto est = wilsonInterval(90, 100);
  EXPECT_DOUBLE_EQ(est.proportion, 0.9);
  EXPECT_LT(est.low, 0.9);
  EXPECT_GT(est.high, 0.9);
  EXPECT_GT(est.low, 0.8);
  EXPECT_LT(est.high, 0.96);
}

TEST(WilsonInterval, ZeroTrialsIsEmptyEstimate) {
  const auto est = wilsonInterval(0, 0);
  EXPECT_EQ(est.trials, 0u);
  EXPECT_DOUBLE_EQ(est.proportion, 0.0);
}

TEST(WilsonInterval, ExtremesStayInUnitInterval) {
  const auto all = wilsonInterval(50, 50);
  EXPECT_LE(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
  const auto none = wilsonInterval(0, 50);
  EXPECT_GE(none.low, 0.0);
  EXPECT_GT(none.high, 0.0);
}

TEST(WilsonInterval, ShrinksWithSampleSize) {
  const auto small = wilsonInterval(9, 10);
  const auto large = wilsonInterval(900, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.binCount(0), 2u);
  EXPECT_EQ(h.binCount(2), 1u);
  EXPECT_EQ(h.binCount(4), 2u);
  EXPECT_DOUBLE_EQ(h.binLow(2), 4.0);
  EXPECT_DOUBLE_EQ(h.binHigh(2), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace nlft::util
