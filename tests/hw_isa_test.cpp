#include "hw/isa.hpp"

#include <gtest/gtest.h>

namespace nlft::hw {
namespace {

TEST(Isa, EncodeDecodeRoundTripRegisterForms) {
  for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Divs, Opcode::And,
                    Opcode::Or, Opcode::Xor}) {
    Instruction in;
    in.opcode = op;
    in.rd = 3;
    in.rs1 = 7;
    in.rs2 = 12;
    const auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->opcode, op);
    EXPECT_EQ(out->rd, 3);
    EXPECT_EQ(out->rs1, 7);
    EXPECT_EQ(out->rs2, 12);
  }
}

TEST(Isa, EncodeDecodeRoundTripImmediateForms) {
  for (std::int32_t imm : {0, 1, -1, 1000, -1000, (1 << 17) - 1, -(1 << 17)}) {
    Instruction in;
    in.opcode = Opcode::Addi;
    in.rd = 5;
    in.rs1 = 6;
    in.imm = imm;
    const auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->imm, imm) << "imm=" << imm;
    EXPECT_EQ(out->rd, 5);
    EXPECT_EQ(out->rs1, 6);
  }
}

TEST(Isa, AllOpcodesRoundTrip) {
  for (std::uint8_t op = 0; op <= kMaxOpcode; ++op) {
    Instruction in;
    in.opcode = static_cast<Opcode>(op);
    in.rd = 1;
    in.rs1 = 2;
    in.rs2 = 3;
    in.imm = 4;
    const auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value()) << "opcode " << int(op);
    EXPECT_EQ(static_cast<std::uint8_t>(out->opcode), op);
  }
}

TEST(Isa, UndefinedOpcodesAreIllegal) {
  for (std::uint32_t op = kMaxOpcode + 1; op < 64; ++op) {
    const std::uint32_t word = op << 26;
    EXPECT_FALSE(decode(word).has_value()) << "opcode " << op;
  }
}

TEST(Isa, IllegalOpcodeFractionIsSubstantial) {
  // A uniformly random opcode field must have a good chance of being
  // illegal, otherwise the illegal-instruction EDM would rarely fire under
  // fault injection. 64 encodings, 27 defined.
  int illegal = 0;
  for (std::uint32_t op = 0; op < 64; ++op) {
    if (!decode(op << 26).has_value()) ++illegal;
  }
  EXPECT_EQ(illegal, 64 - (kMaxOpcode + 1));
  EXPECT_GE(illegal, 30);
}

TEST(Isa, DisassembleProducesReadableText) {
  Instruction ldi;
  ldi.opcode = Opcode::Ldi;
  ldi.rd = 2;
  ldi.imm = -7;
  EXPECT_EQ(disassemble(ldi), "ldi r2, -7");

  Instruction ld;
  ld.opcode = Opcode::Ld;
  ld.rd = 1;
  ld.rs1 = 3;
  ld.imm = 8;
  EXPECT_EQ(disassemble(ld), "ld r1, [r3+8]");

  Instruction add;
  add.opcode = Opcode::Add;
  add.rd = 1;
  add.rs1 = 2;
  add.rs2 = 3;
  EXPECT_EQ(disassemble(add), "add r1, r2, r3");

  Instruction halt;
  halt.opcode = Opcode::Halt;
  EXPECT_EQ(disassemble(halt), "halt");
}

TEST(Isa, MnemonicsAreUnique) {
  for (std::uint8_t a = 0; a <= kMaxOpcode; ++a) {
    for (std::uint8_t b = static_cast<std::uint8_t>(a + 1); b <= kMaxOpcode; ++b) {
      EXPECT_STRNE(mnemonic(static_cast<Opcode>(a)), mnemonic(static_cast<Opcode>(b)));
    }
  }
}

}  // namespace
}  // namespace nlft::hw
