// Stratified system-campaign estimator (docs/ESTIMATORS.md):
//  - the stratum grid reproduces the crude sampler's nominal distribution
//    (weights sum to 1, largest-remainder allocation is exact and fair);
//  - in-stratum sampling respects the pinned kind / target / window;
//  - the post-stratified outcome estimate agrees with the crude campaign
//    within overlapping 95% intervals;
//  - results are bit-identical across thread counts.
#include "faults/system_campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.hpp"

namespace nlft::fi {
namespace {

SystemCampaignConfig smallConfig(std::size_t experiments, std::uint64_t seed) {
  SystemCampaignConfig config;
  config.experiments = experiments;
  config.seed = seed;
  return config;
}

TEST(StratifiedCampaign, GridMatchesNominalDistributionAndBudget) {
  const SystemCampaignConfig config = smallConfig(500, 7);
  const std::vector<StratumSpec> strata = stratifySystemCampaign(config, 3);
  ASSERT_EQ(strata.size(), 4u * 6u * 3u);  // kinds x nodes x window bins

  double weightSum = 0.0;
  std::size_t allocated = 0;
  for (const StratumSpec& stratum : strata) {
    EXPECT_GT(stratum.weight, 0.0);
    EXPECT_LT(stratum.windowLoS, stratum.windowHiS);
    EXPECT_GE(stratum.windowLoS, config.injectEarliestS);
    EXPECT_LE(stratum.windowHiS, config.injectLatestS + 1e-12);
    weightSum += stratum.weight;
    allocated += stratum.experiments;
    // Largest remainder never strays more than one from the exact quota.
    const double quota = 500.0 * stratum.weight;
    EXPECT_GE(static_cast<double>(stratum.experiments), std::floor(quota));
    EXPECT_LE(static_cast<double>(stratum.experiments), std::floor(quota) + 1.0);
  }
  EXPECT_NEAR(weightSum, 1.0, 1e-12);
  EXPECT_EQ(allocated, 500u);
}

TEST(StratifiedCampaign, ZeroWeightKindsAreExcluded) {
  SystemCampaignConfig config = smallConfig(100, 7);
  config.correlatedBurstWeight = 0.0;
  const std::vector<StratumSpec> strata = stratifySystemCampaign(config, 2);
  EXPECT_EQ(strata.size(), 3u * 6u * 2u);
  for (const StratumSpec& stratum : strata) {
    EXPECT_NE(stratum.kind, ScenarioKind::CorrelatedBurst);
  }
}

TEST(StratifiedCampaign, InStratumSamplingRespectsPins) {
  const SystemCampaignConfig config = smallConfig(10, 7);
  const std::vector<StratumSpec> strata = stratifySystemCampaign(config, 3);
  util::Rng rng{42};
  for (const std::size_t index : {0u, 25u, 47u, 71u}) {
    const StratumSpec& stratum = strata[index];
    for (int i = 0; i < 5; ++i) {
      const SystemScenario scenario = sampleScenario(config, rng, stratum);
      EXPECT_EQ(scenario.kind, stratum.kind);
      ASSERT_FALSE(scenario.targets.empty());
      EXPECT_EQ(scenario.targets.front(), stratum.target);
      const double atS = static_cast<double>(scenario.at.us()) / 1e6;
      EXPECT_GE(atS, stratum.windowLoS - 1e-6);
      EXPECT_LE(atS, stratum.windowHiS + 1e-6);
      if (scenario.kind == ScenarioKind::CorrelatedBurst) {
        EXPECT_GE(scenario.targets.size(), 2u);
      }
    }
  }
}

TEST(StratifiedCampaign, AgreesWithCrudeCampaignWithinIntervals) {
  const SystemCampaignConfig config = smallConfig(600, 8);
  const SystemCampaignStats crude = runSystemCampaign(config);
  const StratifiedCampaignResult stratified = runStratifiedSystemCampaign(config, 3);

  EXPECT_EQ(stratified.experiments, 600u);
  for (const SystemOutcome outcome :
       {SystemOutcome::Masked, SystemOutcome::OmissionDegradation}) {
    const util::ProportionEstimate crudeRate =
        util::wilsonInterval(crude.outcome(outcome), crude.experiments);
    const util::StratifiedProportionEstimate stratRate = stratified.outcomeEstimate(outcome);
    EXPECT_LT(stratRate.low, crudeRate.high) << describe(outcome);
    EXPECT_GT(stratRate.high, crudeRate.low) << describe(outcome);
  }
}

TEST(StratifiedCampaign, BitIdenticalAcrossThreadCounts) {
  SystemCampaignConfig config = smallConfig(300, 9);
  config.parallelism.chunkSize = 2;
  config.parallelism.threads = 1;
  const StratifiedCampaignResult serial = runStratifiedSystemCampaign(config, 3);
  for (unsigned threads : {2u, 8u}) {
    config.parallelism.threads = threads;
    const StratifiedCampaignResult parallel = runStratifiedSystemCampaign(config, 3);
    EXPECT_EQ(parallel.total.outcomes, serial.total.outcomes) << "threads=" << threads;
    EXPECT_EQ(parallel.total.stops, serial.total.stops) << "threads=" << threads;
    for (const SystemOutcome outcome : {SystemOutcome::Masked, SystemOutcome::MissedStop}) {
      EXPECT_EQ(parallel.outcomeEstimate(outcome).proportion,
                serial.outcomeEstimate(outcome).proportion)
          << "threads=" << threads;
    }
  }
}

TEST(StratifiedCampaign, SmallBudgetFlagsEmptyStrata) {
  const SystemCampaignConfig config = smallConfig(20, 10);  // < 72 strata
  const StratifiedCampaignResult result = runStratifiedSystemCampaign(config, 3);
  EXPECT_EQ(result.experiments, 20u);
  const util::StratifiedProportionEstimate estimate =
      result.outcomeEstimate(SystemOutcome::Masked);
  EXPECT_GT(estimate.emptyStrata, 0u);
}

TEST(StratifiedCampaign, EmitsOccupancyMetrics) {
  obs::Registry metrics;
  SystemCampaignConfig config = smallConfig(150, 11);
  config.metrics = &metrics;
  const StratifiedCampaignResult result = runStratifiedSystemCampaign(config, 3);
  EXPECT_EQ(metrics.count("campaign.strat.strata"), 72u);
  EXPECT_EQ(metrics.count("campaign.strat.occupied") + metrics.count("campaign.strat.empty"),
            72u);
  EXPECT_EQ(metrics.count("campaign.experiments"), result.experiments);
}

TEST(StratifiedCampaign, RejectsDegenerateConfigs) {
  SystemCampaignConfig config = smallConfig(10, 1);
  EXPECT_THROW((void)stratifySystemCampaign(config, 0), std::invalid_argument);
  config.machineTransientWeight = 0.0;
  config.busCorruptionWeight = 0.0;
  config.nodeCrashWeight = 0.0;
  config.correlatedBurstWeight = 0.0;
  EXPECT_THROW((void)stratifySystemCampaign(config, 3), std::invalid_argument);
}

TEST(StratifiedCampaign, RejectsEmptyInjectionWindow) {
  // An empty (or inverted) injection window would make every windowBin a
  // zero-length interval and the in-stratum time draw degenerate.
  SystemCampaignConfig config = smallConfig(10, 1);
  config.injectEarliestS = config.injectLatestS;
  EXPECT_THROW((void)stratifySystemCampaign(config, 3), std::invalid_argument);
  config.injectEarliestS = config.injectLatestS + 0.5;
  EXPECT_THROW((void)stratifySystemCampaign(config, 3), std::invalid_argument);
}

TEST(StratifiedCampaign, TinyBudgetAllocatesDeterministically) {
  // Budget far below the stratum count: every quota is fractional, so the
  // largest-remainder pass hands out exactly `experiments` single trials.
  // The allocation must be exhaustive (sums to the budget), 0/1-valued,
  // and identical on every call — remainder ties break on the fixed
  // stratum order, never on map/hash iteration luck.
  const SystemCampaignConfig config = smallConfig(20, 10);
  const std::vector<StratumSpec> first = stratifySystemCampaign(config, 3);
  const std::vector<StratumSpec> second = stratifySystemCampaign(config, 3);
  ASSERT_EQ(first.size(), second.size());
  ASSERT_GT(first.size(), config.experiments);

  std::size_t allocated = 0;
  std::size_t occupied = 0;
  for (std::size_t h = 0; h < first.size(); ++h) {
    EXPECT_EQ(first[h].experiments, second[h].experiments) << "stratum " << h;
    EXPECT_LE(first[h].experiments, 1u) << "stratum " << h;
    allocated += first[h].experiments;
    if (first[h].experiments > 0) ++occupied;
  }
  EXPECT_EQ(allocated, config.experiments);
  EXPECT_EQ(occupied, config.experiments);

  // The campaign must respect the tiny allocation exactly.
  const StratifiedCampaignResult result = runStratifiedSystemCampaign(config, 3);
  EXPECT_EQ(result.experiments, config.experiments);
  for (const StratumResult& stratum : result.strata) {
    EXPECT_EQ(stratum.stats.experiments, stratum.spec.experiments);
  }
}

}  // namespace
}  // namespace nlft::fi
