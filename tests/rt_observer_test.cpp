#include "rtkernel/observer.hpp"

#include <gtest/gtest.h>

#include "rtkernel/rta.hpp"

namespace nlft::rt {
namespace {

using util::Duration;
using util::SimTime;

struct ObserverFixture : ::testing::Test {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  RtKernel kernel{simulator, cpu};
  ResponseTimeObserver observer{kernel};

  TaskId addTask(const char* name, int priority, Duration period, Duration wcet,
                 Duration offset = Duration{}) {
    TaskConfig config;
    config.name = name;
    config.priority = priority;
    config.period = period;
    config.wcet = wcet;
    config.offset = offset;
    const Duration work = wcet;
    return kernel.addTask(config, [work](Job& job) {
      job.runCopy(work, [&job](CopyStop) { job.complete({}); });
    });
  }
};

TEST_F(ObserverFixture, UncontendedTaskResponseEqualsWcet) {
  const TaskId task = addTask("solo", 1, Duration::milliseconds(10), Duration::milliseconds(2));
  kernel.start();
  simulator.runUntil(SimTime::fromUs(55'000));
  EXPECT_EQ(observer.stats(task).count(), 6u);
  EXPECT_EQ(observer.worstCase(task).us(), 2000);
  EXPECT_EQ(observer.jitter(task).us(), 0);
}

TEST_F(ObserverFixture, PreemptedTaskShowsJitter) {
  const TaskId high =
      addTask("high", 9, Duration::milliseconds(10), Duration::milliseconds(2));
  const TaskId low =
      addTask("low", 1, Duration::milliseconds(25), Duration::milliseconds(4));
  kernel.start();
  simulator.runUntil(SimTime::fromUs(200'000));

  // High priority: always its WCET.
  EXPECT_EQ(observer.worstCase(high).us(), 2000);
  // Low priority: response varies with interference phase.
  EXPECT_GT(observer.worstCase(low).us(), 4000);
  EXPECT_GT(observer.jitter(low).us(), 0);

  // Worst observed response never exceeds the RTA bound.
  std::vector<RtaTask> analysis{
      {Duration::milliseconds(2), Duration::milliseconds(10), Duration::milliseconds(10), 9, {}},
      {Duration::milliseconds(4), Duration::milliseconds(25), Duration::milliseconds(25), 1, {}}};
  const RtaResult rta = analyze(analysis);
  ASSERT_TRUE(rta.schedulable);
  EXPECT_LE(observer.worstCase(low).us(), rta.responseTimes[1].us());
}

TEST_F(ObserverFixture, OffsetTasksMeasuredFromTheirRelease) {
  const TaskId task = addTask("offset", 1, Duration::milliseconds(10),
                              Duration::milliseconds(1), Duration::milliseconds(3));
  kernel.start();
  simulator.runUntil(SimTime::fromUs(40'000));
  EXPECT_EQ(observer.worstCase(task).us(), 1000);  // offset does not inflate response
}

TEST_F(ObserverFixture, SporadicReleasesUseNotedTimes) {
  TaskConfig config;
  config.name = "sporadic";
  config.priority = 2;
  config.relativeDeadline = Duration::milliseconds(20);
  config.wcet = Duration::milliseconds(3);
  const TaskId task = kernel.addTask(config, [](Job& job) {
    job.runCopy(Duration::milliseconds(3), [&job](CopyStop) { job.complete({}); });
  });
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(7), [&] {
    observer.noteRelease(task, 0, simulator.now());
    kernel.releaseSporadic(task);
  });
  simulator.runUntil(SimTime::fromUs(30'000));
  EXPECT_EQ(observer.stats(task).count(), 1u);
  EXPECT_EQ(observer.worstCase(task).us(), 3000);
}

TEST_F(ObserverFixture, DownstreamSinkStillInvoked) {
  int downstream = 0;
  observer.setDownstream([&](const JobResult&) { ++downstream; });
  addTask("t", 1, Duration::milliseconds(10), Duration::milliseconds(1));
  kernel.start();
  simulator.runUntil(SimTime::fromUs(35'000));
  EXPECT_EQ(downstream, 4);
}

TEST_F(ObserverFixture, UnknownTaskGivesEmptyStats) {
  EXPECT_EQ(observer.stats(TaskId{99}).count(), 0u);
  EXPECT_EQ(observer.worstCase(TaskId{99}).us(), 0);
}

}  // namespace
}  // namespace nlft::rt
