#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nlft::util {
namespace {

Matrix randomMatrix(std::size_t n, Rng& rng) {
  Matrix m{n, n};
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m.at(r, c) = rng.uniform(-2.0, 2.0);
  return m;
}

TEST(Matrix, IdentityAndMultiply) {
  const Matrix identity = Matrix::identity(3);
  Rng rng{1};
  const Matrix a = randomMatrix(3, rng);
  const Matrix left = identity * a;
  const Matrix right = a * identity;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(left.at(r, c), a.at(r, c));
      EXPECT_DOUBLE_EQ(right.at(r, c), a.at(r, c));
    }
}

TEST(Matrix, NormsMatchHandComputation) {
  Matrix m{2, 2};
  m.at(0, 0) = 1.0;
  m.at(0, 1) = -3.0;
  m.at(1, 0) = 2.0;
  m.at(1, 1) = 0.5;
  EXPECT_DOUBLE_EQ(m.normInf(), 4.0);  // row 0: |1| + |-3|
  EXPECT_DOUBLE_EQ(m.norm1(), 3.5);    // col 1: |-3| + |0.5|
}

TEST(Matrix, ApplyAndApplyLeft) {
  Matrix m{2, 3};
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  const auto y = m.apply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const auto z = m.applyLeft({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{2, 2};
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = LuDecomposition{a}.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, ResidualSmallOnRandomSystems) {
  Rng rng{2};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniformInt(8);
    Matrix a = randomMatrix(n, rng);
    for (std::size_t i = 0; i < n; ++i) a.at(i, i) += 4.0;  // keep well-conditioned
    std::vector<double> b(n);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    const auto x = LuDecomposition{a}.solve(b);
    const auto ax = a.apply(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
  }
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a{2, 2};
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW(LuDecomposition{a}, std::runtime_error);
}

TEST(Lu, DeterminantMatchesClosedForm) {
  Matrix a{2, 2};
  a.at(0, 0) = 3;
  a.at(0, 1) = 1;
  a.at(1, 0) = 4;
  a.at(1, 1) = 2;
  EXPECT_NEAR(LuDecomposition{a}.determinant(), 2.0, 1e-12);
}

TEST(Expm, ZeroMatrixGivesIdentity) {
  const Matrix e = matrixExponential(Matrix{3, 3});
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(e.at(r, c), r == c ? 1.0 : 0.0, 1e-14);
}

TEST(Expm, DiagonalMatrixExponentiatesElementwise) {
  Matrix a{2, 2};
  a.at(0, 0) = 1.5;
  a.at(1, 1) = -0.5;
  const Matrix e = matrixExponential(a);
  EXPECT_NEAR(e.at(0, 0), std::exp(1.5), 1e-12);
  EXPECT_NEAR(e.at(1, 1), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(e.at(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrixClosedForm) {
  // exp([[0,1],[0,0]]) = [[1,1],[0,1]].
  Matrix a{2, 2};
  a.at(0, 1) = 1.0;
  const Matrix e = matrixExponential(a);
  EXPECT_NEAR(e.at(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e.at(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e.at(1, 0), 0.0, 1e-14);
  EXPECT_NEAR(e.at(1, 1), 1.0, 1e-14);
}

TEST(Expm, LargeNormTriggersScalingAndStaysAccurate) {
  // Stiff generator-like matrix: exp should map a distribution correctly.
  // 2-state chain with rates a=1e4 (0->1) and b=1 (1->0):
  // p0(t) = b/(a+b) + a/(a+b) * exp(-(a+b) t).
  const double a = 1e4;
  const double b = 1.0;
  Matrix q{2, 2};
  q.at(0, 0) = -a;
  q.at(0, 1) = a;
  q.at(1, 0) = b;
  q.at(1, 1) = -b;
  const double t = 0.01;
  const Matrix e = matrixExponential(q * t);
  const auto p = e.applyLeft({1.0, 0.0});
  const double expected0 = b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
  EXPECT_NEAR(p[0], expected0, 1e-9);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
}

TEST(Expm, AdditionPropertyForCommutingMatrices) {
  // exp(A)·exp(A) == exp(2A).
  Rng rng{3};
  const Matrix a = randomMatrix(4, rng) * 0.4;  // keep norms ~1 so 1e-8 abs tolerance is meaningful
  const Matrix e1 = matrixExponential(a);
  const Matrix e2 = matrixExponential(a * 2.0);
  const Matrix prod = e1 * e1;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(prod.at(r, c), e2.at(r, c), 1e-8);
}

TEST(Kronecker, ProductShapeAndValues) {
  Matrix a{2, 2};
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b{2, 2};
  b.at(0, 0) = 0;
  b.at(0, 1) = 5;
  b.at(1, 0) = 6;
  b.at(1, 1) = 7;
  const Matrix k = kroneckerProduct(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_DOUBLE_EQ(k.at(0, 1), 5.0);   // a00*b01
  EXPECT_DOUBLE_EQ(k.at(1, 0), 6.0);   // a00*b10
  EXPECT_DOUBLE_EQ(k.at(2, 3), 4.0 * 5.0);  // a11*b01
  EXPECT_DOUBLE_EQ(k.at(3, 2), 4.0 * 6.0);  // a11*b10
}

TEST(Kronecker, SumExponentialFactorization) {
  // exp(A (+) B) == exp(A) (x) exp(B) — the identity that makes the
  // Kronecker MTTF composition in the reliability engine exact.
  Rng rng{4};
  const Matrix a = randomMatrix(2, rng) * 0.4;
  const Matrix b = randomMatrix(3, rng) * 0.4;
  const Matrix lhs = matrixExponential(kroneckerSum(a, b));
  const Matrix rhs = kroneckerProduct(matrixExponential(a), matrixExponential(b));
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) EXPECT_NEAR(lhs.at(r, c), rhs.at(r, c), 1e-9);
}

TEST(Matrix, ShapeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 2) += Matrix(3, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(2, 3) * Matrix(2, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(2, 3).apply({1.0}), std::invalid_argument);
  EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, std::invalid_argument);
}

}  // namespace
}  // namespace nlft::util
