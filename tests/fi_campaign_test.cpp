#include "faults/campaign.hpp"

#include <gtest/gtest.h>

namespace nlft::fi {
namespace {

// A small control-style task: reads four inputs, runs an iterative loop and
// writes two outputs. Long enough (~100 instructions) that faults can strike
// many distinct program points.
constexpr const char* kTaskSource = R"(
      ldi r1, 0x800        ; input base
      ld  r2, [r1+0]
      ld  r3, [r1+4]
      ld  r4, [r1+8]
      ld  r5, [r1+12]
      ldi r6, 0            ; acc
      ldi r7, 0            ; i
    loop:
      add r6, r6, r2
      add r6, r6, r3
      addi r7, r7, 1
      cmp r7, r4
      blt loop
      mul r8, r2, r3
      cmpi r8, 1000
      blt noclamp
      ldi r8, 1000
    noclamp:
      add r9, r6, r5
      ldi r10, 0xC00       ; output base
      st  r9, [r10+0]
      st  r8, [r10+4]
      halt
)";

TaskImage makeImage() {
  TaskImage image;
  image.program = hw::assemble(kTaskSource);
  image.entry = 0;
  image.stackTop = 0x4000;
  image.inputBase = 0x800;
  image.input = {7, 11, 20, 3};  // a, b, iterations, offset
  image.outputBase = 0xC00;
  image.outputWords = 2;
  image.memBytes = 64 * 1024;
  // Execution-time monitor: ~1.2x the golden cost (~115 instructions), as a
  // realistic budget timer would be configured. A runaway copy is killed
  // quickly enough that the reserved slack still fits two clean copies.
  image.maxInstructionsPerCopy = 140;
  return image;
}

TEST(GoldenRun, DeterministicAndCorrect) {
  const TaskImage image = makeImage();
  const CopyRun golden = goldenRun(image);
  EXPECT_EQ(golden.end, CopyRun::End::Output);
  // acc = 20 * (7 + 11) = 360; + offset 3 = 363. product 77 < 1000.
  EXPECT_EQ(golden.output, (std::vector<std::uint32_t>{363, 77}));
  EXPECT_GT(golden.instructions, 80u);
  EXPECT_EQ(goldenRun(image).instructions, golden.instructions);
}

TEST(TemExperiment, DataRegisterFlipIsMaskedByVote) {
  const TaskImage image = makeImage();
  FaultSpec fault;
  fault.location = RegisterBitFlip{6, 4};  // accumulator mid-computation
  fault.afterInstructions = 40;
  fault.targetCopy = 1;
  EXPECT_EQ(runTemExperiment(image, fault), TemOutcome::MaskedByVote);
}

TEST(TemExperiment, FaultInSecondCopyAlsoMasked) {
  const TaskImage image = makeImage();
  FaultSpec fault;
  fault.location = RegisterBitFlip{6, 4};
  fault.afterInstructions = 40;
  fault.targetCopy = 2;
  EXPECT_EQ(runTemExperiment(image, fault), TemOutcome::MaskedByVote);
}

TEST(TemExperiment, UnusedRegisterFlipIsNotActivated) {
  const TaskImage image = makeImage();
  FaultSpec fault;
  fault.location = RegisterBitFlip{12, 9};  // r12 never used by the task
  fault.afterInstructions = 30;
  fault.targetCopy = 1;
  EXPECT_EQ(runTemExperiment(image, fault), TemOutcome::NotActivated);
}

TEST(TemExperiment, PcCorruptionIsDetectedAndMaskedByRestart) {
  const TaskImage image = makeImage();
  FaultSpec fault;
  fault.location = PcBitFlip{1};  // misaligned PC -> address error on fetch
  fault.afterInstructions = 25;
  fault.targetCopy = 1;
  EXPECT_EQ(runTemExperiment(image, fault), TemOutcome::MaskedByRestart);
}

TEST(TemExperiment, SingleTextMemoryFlipIsCorrectedByEcc) {
  const TaskImage image = makeImage();
  FaultSpec fault;
  // Flip one codeword bit of an instruction inside the loop: the next fetch
  // corrects it (SEC-DED) and execution stays clean.
  fault.location = MemoryBitFlip{7 * 4, 12};  // "add r6, r6, r2"
  fault.afterInstructions = 30;
  fault.targetCopy = 1;
  EXPECT_EQ(runTemExperiment(image, fault), TemOutcome::MaskedByEcc);
}

TEST(TemExperiment, DoubleTextMemoryFlipEndsInOmission) {
  const TaskImage image = makeImage();
  // An uncorrectable upset in program text persists across ALL copies (the
  // text is never rewritten): every copy takes a bus error, so the job ends
  // in an omission and the node-level monitor would flag a permanent fault.
  FaultSpec fault;
  fault.location = MemoryBitFlip{7 * 4, 12};
  fault.afterInstructions = 30;
  fault.targetCopy = -1;  // double-flip marker
  EXPECT_EQ(runTemExperiment(image, fault), TemOutcome::OmissionNoBudget);
}

TEST(TemExperiment, StackPointerFlipDetected) {
  const TaskImage image = makeImage();
  FaultSpec fault;
  fault.location = RegisterBitFlip{hw::kStackPointer, 31};  // SP into nowhere
  fault.afterInstructions = 10;
  fault.targetCopy = 1;
  // This task uses no stack, so the fault may be latent; a task with calls
  // would trap. Accept either NotActivated or a masked/detected outcome, but
  // never an undetected wrong output.
  const TemOutcome outcome = runTemExperiment(image, fault);
  EXPECT_NE(outcome, TemOutcome::UndetectedWrongOutput);
}

TEST(FsExperiment, DataFaultCanEscapeUndetectedOnFsNode) {
  const TaskImage image = makeImage();
  FaultSpec fault;
  fault.location = RegisterBitFlip{6, 4};
  fault.afterInstructions = 40;
  // Single-copy node: the corrupted accumulator flows straight to the output.
  EXPECT_EQ(runFsExperiment(image, fault), FsOutcome::UndetectedWrongOutput);
}

TEST(FsExperiment, PcFaultMakesFsNodeFailSilent) {
  const TaskImage image = makeImage();
  FaultSpec fault;
  fault.location = PcBitFlip{1};
  fault.afterInstructions = 25;
  EXPECT_EQ(runFsExperiment(image, fault), FsOutcome::FailSilent);
}

TEST(TemCampaign, CountsAreConsistentAndReproducible) {
  const TaskImage image = makeImage();
  CampaignConfig config;
  config.experiments = 400;
  config.seed = 99;
  const TemCampaignStats a = runTemCampaign(image, config);
  const TemCampaignStats b = runTemCampaign(image, config);
  EXPECT_EQ(a.maskedByVote, b.maskedByVote);
  EXPECT_EQ(a.undetected, b.undetected);
  EXPECT_EQ(a.notActivated + a.maskedByEcc + a.maskedByVote + a.maskedByRestart +
                a.omissionVoteFailed + a.omissionNoBudget + a.undetected,
            a.experiments);
}

TEST(TemCampaign, MasksTheLargeMajorityOfActivatedFaults) {
  const TaskImage image = makeImage();
  CampaignConfig config;
  config.experiments = 1500;
  config.seed = 7;
  const TemCampaignStats stats = runTemCampaign(image, config);
  ASSERT_GT(stats.activated(), 100u);
  // The paper assumes P_T = 0.9 and P_OM = 0.05 from its fault-injection
  // study [7]; our ISA-level campaign lands in the same regime (~0.92/0.08).
  EXPECT_GT(stats.pMask().proportion, 0.85);
  EXPECT_LT(stats.pOmission().proportion, 0.15);
  EXPECT_GT(stats.coverage().proportion, 0.98);
}

TEST(TemCampaign, OutperformsFailSilentCoverage) {
  const TaskImage image = makeImage();
  CampaignConfig config;
  config.experiments = 1500;
  config.seed = 7;
  const TemCampaignStats temStats = runTemCampaign(image, config);
  const FsCampaignStats fsStats = runFsCampaign(image, config);
  ASSERT_GT(fsStats.activated(), 100u);
  // An FS node silently delivers wrong outputs for pure data faults; TEM
  // catches them by comparison. TEM's coverage must dominate.
  EXPECT_GT(fsStats.undetected, 0u);
  EXPECT_GT(temStats.coverage().proportion, fsStats.coverage().proportion);
}

TEST(FsCampaign, CountsConsistent) {
  const TaskImage image = makeImage();
  CampaignConfig config;
  config.experiments = 300;
  config.seed = 17;
  const FsCampaignStats stats = runFsCampaign(image, config);
  EXPECT_EQ(stats.notActivated + stats.maskedByEcc + stats.failSilent + stats.undetected,
            stats.experiments);
}

TEST(Inject, DescribeProducesReadableText) {
  EXPECT_EQ(describe(RegisterBitFlip{3, 17}), "reg r3 bit 17");
  EXPECT_EQ(describe(PcBitFlip{4}), "pc bit 4");
  EXPECT_EQ(describe(MemoryBitFlip{0x100, 38}), "mem 0x100 bit 38");
  EXPECT_EQ(describe(StuckAtRegisterBit{2, 5, true}), "stuck-at r2 bit 5=1");
}

TEST(Inject, StuckAtFaultAppliesEveryInstruction) {
  const TaskImage image = makeImage();
  hw::Machine machine{image.memBytes};
  machine.loadWords(image.program.origin, image.program.words);
  machine.loadWords(image.inputBase, image.input);
  inject(machine, StuckAtRegisterBit{6, 2, true});  // accumulator bit stuck high
  const CopyRun run = runCopy(machine, image, std::nullopt);
  ASSERT_EQ(run.end, CopyRun::End::Output);
  EXPECT_NE(run.output, (std::vector<std::uint32_t>{363, 77}));
}

TEST(SampleFault, RespectsMixWeights) {
  const TaskImage image = makeImage();
  util::Rng rng{5};
  FaultMix registersOnly;
  registersOnly.registerWeight = 1.0;
  registersOnly.pcWeight = 0.0;
  registersOnly.memoryWeight = 0.0;
  registersOnly.fetchWeight = 0.0;
  for (int i = 0; i < 200; ++i) {
    const FaultSpec fault = sampleFault(image, 100, registersOnly, rng);
    EXPECT_TRUE(std::holds_alternative<RegisterBitFlip>(fault.location));
    EXPECT_LT(fault.afterInstructions, 100u);
    EXPECT_GE(std::abs(fault.targetCopy), 1);
    EXPECT_LE(std::abs(fault.targetCopy), 2);
  }
}

}  // namespace
}  // namespace nlft::fi
