// The parallel execution engine's core guarantee: for a fixed seed and chunk
// size, Monte-Carlo estimates and fault-injection campaigns are bit-identical
// for EVERY thread count, and merged statistics equal serial statistics.
#include "exec/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "exec/pool.hpp"
#include "faults/campaign.hpp"
#include "hw/assembler.hpp"
#include "sysmodel/montecarlo.hpp"
#include "util/statistics.hpp"

namespace nlft {
namespace {

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  exec::ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&](unsigned) { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WorkerIndicesAreWithinRange) {
  exec::ThreadPool pool{3};
  std::atomic<bool> outOfRange{false};
  for (int i = 0; i < 60; ++i) {
    pool.submit([&](unsigned worker) {
      if (worker >= 3) outOfRange.store(true);
    });
  }
  pool.wait();
  EXPECT_FALSE(outOfRange.load());
}

TEST(ThreadPool, WaitIsReusable) {
  exec::ThreadPool pool{2};
  std::atomic<int> counter{0};
  pool.submit([&](unsigned) { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&](unsigned) { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

// --- forEachChunk ----------------------------------------------------------

TEST(ForEachChunk, CoversEveryItemExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> touched(1000);
    exec::Parallelism par;
    par.threads = threads;
    par.chunkSize = 17;  // deliberately not dividing 1000
    const std::size_t processed =
        exec::forEachChunk(1000, par, [&](const exec::ChunkRange& range, unsigned) {
          for (std::size_t i = range.begin; i < range.end; ++i) touched[i].fetch_add(1);
        });
    EXPECT_EQ(processed, 1000u);
    for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
  }
}

TEST(ForEachChunk, ChunkBoundariesIndependentOfThreadCount) {
  const auto collect = [](unsigned threads) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges(exec::chunkCount(100, 7));
    exec::Parallelism par;
    par.threads = threads;
    par.chunkSize = 7;
    exec::forEachChunk(100, par, [&](const exec::ChunkRange& range, unsigned) {
      ranges[range.index] = {range.begin, range.end};
    });
    return ranges;
  };
  const auto serial = collect(1);
  EXPECT_EQ(serial, collect(2));
  EXPECT_EQ(serial, collect(8));
}

TEST(ForEachChunk, CancellationStopsEarly) {
  exec::CancellationToken cancel;
  exec::Parallelism par;
  par.threads = 2;
  par.chunkSize = 1;
  std::atomic<std::size_t> ran{0};
  const std::size_t processed = exec::forEachChunk(
      10000, par,
      [&](const exec::ChunkRange&, unsigned) {
        if (ran.fetch_add(1) >= 5) cancel.requestCancel();
      },
      &cancel);
  EXPECT_LT(processed, 10000u);
}

TEST(ForEachChunk, ProgressReportsCompleteRun) {
  exec::Parallelism par;
  par.threads = 2;
  par.chunkSize = 50;
  exec::ProgressOptions progress;
  progress.minIntervalSeconds = 0.0;
  std::size_t lastCompleted = 0;
  std::size_t callbacks = 0;
  std::size_t workers = 0;
  progress.callback = [&](const exec::ProgressSnapshot& snapshot) {
    lastCompleted = snapshot.completedItems;
    workers = snapshot.perWorkerItems.size();
    EXPECT_EQ(snapshot.totalItems, 1000u);
    ++callbacks;
  };
  exec::forEachChunk(1000, par, [](const exec::ChunkRange&, unsigned) {}, nullptr, progress);
  EXPECT_GT(callbacks, 0u);
  EXPECT_EQ(lastCompleted, 1000u);  // final callback always fires
  EXPECT_EQ(workers, 2u);
}

// --- mergeable statistics --------------------------------------------------

TEST(RunningStatsMerge, EqualsSerialAccumulation) {
  util::Rng rng{123};
  std::vector<double> samples(5000);
  for (double& s : samples) s = rng.normal(3.0, 2.0);

  util::RunningStats serial;
  for (double s : samples) serial.add(s);

  util::RunningStats merged;
  for (std::size_t start = 0; start < samples.size(); start += 700) {
    util::RunningStats part;
    const std::size_t end = std::min(samples.size(), start + 700);
    for (std::size_t i = start; i < end; ++i) part.add(samples[i]);
    merged.merge(part);
  }

  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.min(), serial.min());
  EXPECT_EQ(merged.max(), serial.max());
  EXPECT_NEAR(merged.mean(), serial.mean(), 1e-12 * std::abs(serial.mean()));
  EXPECT_NEAR(merged.variance(), serial.variance(), 1e-9 * serial.variance());
}

TEST(RunningStatsMerge, EmptySidesAreIdentity) {
  util::RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  util::RunningStats empty;
  util::RunningStats copy = stats;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_EQ(copy.mean(), stats.mean());
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), stats.mean());
}

TEST(HistogramMerge, SumsCountsBinwise) {
  util::Histogram a{0.0, 10.0, 5};
  util::Histogram b{0.0, 10.0, 5};
  a.add(1.0);
  a.add(9.5);
  b.add(1.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.binCount(0), 2u);
  EXPECT_EQ(a.binCount(4), 1u);
  util::Histogram incompatible{0.0, 5.0, 5};
  EXPECT_THROW(a.merge(incompatible), std::invalid_argument);
}

// --- Monte-Carlo determinism across thread counts --------------------------

sys::SystemSpec bbwSpec() {
  sys::SystemSpec spec;
  spec.behavior = sys::NodeBehavior::Nlft;
  spec.groups = {{"cu", 2, 1}, {"wns", 4, 3}};
  return spec;
}

TEST(ParallelMonteCarlo, BitIdenticalAcrossThreadCounts) {
  const sys::SystemSpec spec = bbwSpec();
  sys::MonteCarloConfig config;
  config.trials = 8000;
  config.seed = 42;
  config.checkpointHours = {4380.0, 8760.0};

  config.parallelism.threads = 1;
  const sys::MonteCarloResult serial = sys::estimateReliability(spec, config);

  for (unsigned threads : {2u, 8u}) {
    config.parallelism.threads = threads;
    const sys::MonteCarloResult parallel = sys::estimateReliability(spec, config);
    ASSERT_EQ(parallel.checkpoints.size(), serial.checkpoints.size());
    for (std::size_t c = 0; c < serial.checkpoints.size(); ++c) {
      // Bit-identical, not just close: same survivor counts and, since the
      // Wilson interval is a pure function of them, identical doubles.
      EXPECT_EQ(parallel.checkpoints[c].reliability.successes,
                serial.checkpoints[c].reliability.successes);
      EXPECT_EQ(std::memcmp(&parallel.checkpoints[c].reliability,
                            &serial.checkpoints[c].reliability,
                            sizeof(util::ProportionEstimate)),
                0)
          << "threads=" << threads;
    }
    EXPECT_EQ(parallel.failuresWithinHorizon, serial.failuresWithinHorizon);
    // Chunk-ordered merge: the failure-time statistics are bit-identical too.
    EXPECT_EQ(parallel.failureTimes.count(), serial.failureTimes.count());
    EXPECT_EQ(parallel.failureTimes.mean(), serial.failureTimes.mean());
    EXPECT_EQ(parallel.failureTimes.variance(), serial.failureTimes.variance());
  }
}

TEST(ParallelMonteCarlo, ExplicitChunkSizePreservedAcrossThreadCounts) {
  const sys::SystemSpec spec = bbwSpec();
  sys::MonteCarloConfig config;
  config.trials = 5000;
  config.seed = 7;
  config.checkpointHours = {8760.0};
  config.parallelism.chunkSize = 128;

  config.parallelism.threads = 1;
  const auto serial = sys::estimateReliability(spec, config);
  config.parallelism.threads = 8;
  const auto parallel = sys::estimateReliability(spec, config);
  EXPECT_EQ(parallel.checkpoints[0].reliability.successes,
            serial.checkpoints[0].reliability.successes);
}

TEST(ParallelMonteCarlo, MttfBitIdenticalAcrossThreadCounts) {
  const sys::SystemSpec spec = bbwSpec();
  exec::Parallelism serial;
  const util::RunningStats expected = sys::estimateMttf(spec, 3000, 9, serial);
  for (unsigned threads : {2u, 8u}) {
    exec::Parallelism par;
    par.threads = threads;
    const util::RunningStats actual = sys::estimateMttf(spec, 3000, 9, par);
    EXPECT_EQ(actual.count(), expected.count());
    EXPECT_EQ(actual.mean(), expected.mean());
    EXPECT_EQ(actual.variance(), expected.variance());
    EXPECT_EQ(actual.min(), expected.min());
    EXPECT_EQ(actual.max(), expected.max());
  }
}

TEST(ParallelMonteCarlo, CancellationThrows) {
  const sys::SystemSpec spec = bbwSpec();
  sys::MonteCarloConfig config;
  config.trials = 50000;
  config.seed = 3;
  exec::CancellationToken cancel;
  cancel.requestCancel();  // cancelled before the first chunk
  config.cancel = &cancel;
  EXPECT_THROW((void)sys::estimateReliability(spec, config), std::runtime_error);
}

// --- fault-injection campaign determinism across thread counts --------------

fi::TaskImage campaignImage() {
  // Same small control-style task as fi_campaign_test.
  constexpr const char* kSource = R"(
      ldi r1, 0x800
      ld  r2, [r1+0]
      ld  r3, [r1+4]
      ld  r4, [r1+8]
      ld  r5, [r1+12]
      ldi r6, 0
      ldi r7, 0
    loop:
      add r6, r6, r2
      add r6, r6, r3
      addi r7, r7, 1
      cmp r7, r4
      blt loop
      add r9, r6, r5
      ldi r10, 0xC00
      st  r9, [r10+0]
      st  r6, [r10+4]
      halt
)";
  fi::TaskImage image;
  image.program = hw::assemble(kSource);
  image.entry = 0;
  image.stackTop = 0x4000;
  image.inputBase = 0x800;
  image.input = {7, 11, 20, 3};
  image.outputBase = 0xC00;
  image.outputWords = 2;
  image.maxInstructionsPerCopy = 140;
  return image;
}

template <typename Stats>
void expectSameCampaign(const Stats& a, const Stats& b) {
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.notActivated, b.notActivated);
  EXPECT_EQ(a.maskedByEcc, b.maskedByEcc);
  EXPECT_EQ(a.undetected, b.undetected);
  EXPECT_EQ(a.activated(), b.activated());
}

TEST(ParallelCampaign, TemBitIdenticalAcrossThreadCounts) {
  const fi::TaskImage image = campaignImage();
  fi::CampaignConfig config;
  config.experiments = 600;
  config.seed = 99;

  config.parallelism.threads = 1;
  const fi::TemCampaignStats serial = fi::runTemCampaign(image, config);
  EXPECT_EQ(serial.experiments, 600u);

  for (unsigned threads : {2u, 8u}) {
    config.parallelism.threads = threads;
    const fi::TemCampaignStats parallel = fi::runTemCampaign(image, config);
    expectSameCampaign(parallel, serial);
    EXPECT_EQ(parallel.maskedByVote, serial.maskedByVote);
    EXPECT_EQ(parallel.maskedByRestart, serial.maskedByRestart);
    EXPECT_EQ(parallel.omissionVoteFailed, serial.omissionVoteFailed);
    EXPECT_EQ(parallel.omissionNoBudget, serial.omissionNoBudget);
    EXPECT_EQ(parallel.mechanisms.temComparison, serial.mechanisms.temComparison);
    EXPECT_EQ(parallel.mechanisms.illegalInstruction, serial.mechanisms.illegalInstruction);
    EXPECT_EQ(parallel.mechanisms.executionTimeMonitor, serial.mechanisms.executionTimeMonitor);
  }
}

TEST(ParallelCampaign, FsBitIdenticalAcrossThreadCounts) {
  const fi::TaskImage image = campaignImage();
  fi::CampaignConfig config;
  config.experiments = 600;
  config.seed = 31;

  config.parallelism.threads = 1;
  const fi::FsCampaignStats serial = fi::runFsCampaign(image, config);
  for (unsigned threads : {2u, 8u}) {
    config.parallelism.threads = threads;
    const fi::FsCampaignStats parallel = fi::runFsCampaign(image, config);
    expectSameCampaign(parallel, serial);
    EXPECT_EQ(parallel.failSilent, serial.failSilent);
    EXPECT_EQ(parallel.detectedByEndToEnd, serial.detectedByEndToEnd);
  }
}

TEST(ParallelCampaign, ProgressReportsEveryExperiment) {
  const fi::TaskImage image = campaignImage();
  fi::CampaignConfig config;
  config.experiments = 300;
  config.seed = 5;
  config.parallelism.threads = 2;
  config.parallelism.chunkSize = 25;
  std::size_t lastCompleted = 0;
  config.onProgress = [&](const exec::ProgressSnapshot& snapshot) {
    lastCompleted = snapshot.completedItems;
    EXPECT_LE(snapshot.completedItems, snapshot.totalItems);
    EXPECT_EQ(std::accumulate(snapshot.perWorkerItems.begin(), snapshot.perWorkerItems.end(),
                              std::size_t{0}),
              snapshot.completedItems);
  };
  (void)fi::runTemCampaign(image, config);
  EXPECT_EQ(lastCompleted, 300u);
}

}  // namespace
}  // namespace nlft
