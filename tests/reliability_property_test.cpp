// Property-based tests of the reliability engine over randomly generated
// models: solver agreement, conservation laws, and brute-force equivalence
// for block diagrams and fault trees.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "reliability/ctmc.hpp"
#include "reliability/fault_tree.hpp"
#include "reliability/rbd.hpp"
#include "util/quadrature.hpp"
#include "util/rng.hpp"

namespace nlft::rel {
namespace {

using util::Rng;

/// Random absorbing chain: `transientStates` transient states, one failure
/// state, random rates; absorption reachable from every state.
CtmcModel randomAbsorbingChain(Rng& rng, std::size_t transientStates) {
  CtmcModel m;
  std::vector<StateId> states;
  for (std::size_t i = 0; i < transientStates; ++i) {
    states.push_back(m.addState("s" + std::to_string(i)));
  }
  const StateId failure = m.addState("F", true);
  for (std::size_t i = 0; i < transientStates; ++i) {
    for (std::size_t j = 0; j < transientStates; ++j) {
      if (i != j && rng.bernoulli(0.5)) {
        m.addTransition(states[i], states[j], rng.uniform(0.05, 2.0));
      }
    }
    // Guarantee absorption is reachable from everywhere.
    m.addTransition(states[i], failure, rng.uniform(0.01, 0.5));
  }
  return m;
}

class CtmcProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CtmcProperty, ProbabilityIsConserved) {
  Rng rng{GetParam()};
  const CtmcModel m = randomAbsorbingChain(rng, 2 + rng.uniformInt(4));
  for (double t : {0.1, 1.0, 5.0, 25.0}) {
    const auto p = m.stateProbabilities(t);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9) << "t=" << t;
    for (double probability : p) EXPECT_GE(probability, 0.0);
  }
}

TEST_P(CtmcProperty, UniformizationAgreesWithPade) {
  Rng rng{GetParam() ^ 0xABCDEF};
  const CtmcModel m = randomAbsorbingChain(rng, 2 + rng.uniformInt(4));
  for (double t : {0.3, 2.0, 10.0}) {
    EXPECT_NEAR(m.reliability(t, TransientMethod::PadeExpm),
                m.reliability(t, TransientMethod::Uniformization), 1e-8)
        << "t=" << t;
  }
}

TEST_P(CtmcProperty, ReliabilityIsMonotoneDecreasing) {
  Rng rng{GetParam() ^ 0x123456};
  const CtmcModel m = randomAbsorbingChain(rng, 2 + rng.uniformInt(4));
  double previous = 1.0;
  for (double t = 0.0; t <= 20.0; t += 0.5) {
    const double r = m.reliability(t);
    EXPECT_LE(r, previous + 1e-10);
    previous = r;
  }
}

TEST_P(CtmcProperty, MttfEqualsIntegralOfReliability) {
  Rng rng{GetParam() ^ 0x777};
  const CtmcModel m = randomAbsorbingChain(rng, 2 + rng.uniformInt(3));
  const double mttf = m.meanTimeToFailure();
  const double integral =
      util::integrateToInfinity([&m](double t) { return m.reliability(t); }, 5.0, 1e-8);
  EXPECT_NEAR(mttf, integral, std::max(1e-6, mttf * 1e-4));
}

TEST_P(CtmcProperty, VisitTimesDecomposeMttf) {
  Rng rng{GetParam() ^ 0x999};
  const CtmcModel m = randomAbsorbingChain(rng, 2 + rng.uniformInt(4));
  const auto visits = m.expectedVisitTimes();
  for (double v : visits) EXPECT_GE(v, -1e-12);
  EXPECT_NEAR(std::accumulate(visits.begin(), visits.end(), 0.0), m.meanTimeToFailure(), 1e-8);
}

TEST_P(CtmcProperty, SeriesCompositionIsProduct) {
  Rng rng{GetParam() ^ 0x31415};
  const CtmcModel a = randomAbsorbingChain(rng, 2 + rng.uniformInt(3));
  const CtmcModel b = randomAbsorbingChain(rng, 2 + rng.uniformInt(3));
  const IndependentSeriesSystem system{a, b};
  for (double t : {0.5, 3.0, 12.0}) {
    EXPECT_NEAR(system.reliability(t), a.reliability(t) * b.reliability(t), 1e-9);
  }
  const double mttf = system.meanTimeToFailure();
  const double integral = util::integrateToInfinity(
      [&](double t) { return system.reliability(t); }, 5.0, 1e-8);
  EXPECT_NEAR(mttf, integral, std::max(1e-6, mttf * 1e-4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtmcProperty, ::testing::Range<std::uint64_t>(1, 13));

// --- RBD vs brute force over an explicit expression tree ---

/// Our own structural mirror of a block diagram, so the same random tree can
/// be evaluated (a) by the Rbd engine and (b) by brute-force enumeration of
/// component up/down states.
struct Expr {
  enum class Kind : std::uint8_t { Component, Series, Parallel, KOfN } kind;
  std::size_t componentIndex = 0;
  std::size_t k = 0;
  std::vector<std::size_t> children;  // indices into the expression pool
};

struct RandomDiagram {
  std::vector<Expr> pool;
  std::size_t root = 0;
  std::vector<double> componentReliability;
};

RandomDiagram randomDiagram(Rng& rng, std::size_t count) {
  RandomDiagram d;
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < count; ++i) {
    d.componentReliability.push_back(rng.uniform(0.1, 0.99));
    d.pool.push_back(Expr{Expr::Kind::Component, i, 0, {}});
    live.push_back(d.pool.size() - 1);
  }
  while (live.size() > 1) {
    const std::size_t groupSize =
        std::min<std::size_t>(live.size(), 2 + rng.uniformInt(2));
    Expr combined;
    for (std::size_t i = 0; i < groupSize; ++i) {
      const std::size_t pick = rng.uniformInt(live.size());
      combined.children.push_back(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    switch (rng.uniformInt(3)) {
      case 0: combined.kind = Expr::Kind::Series; break;
      case 1: combined.kind = Expr::Kind::Parallel; break;
      default:
        combined.kind = Expr::Kind::KOfN;
        combined.k = 1 + rng.uniformInt(combined.children.size());
        break;
    }
    d.pool.push_back(std::move(combined));
    live.push_back(d.pool.size() - 1);
  }
  d.root = live[0];
  return d;
}

BlockId buildRbd(Rbd& rbd, const RandomDiagram& d, std::size_t node) {
  const Expr& e = d.pool[node];
  if (e.kind == Expr::Kind::Component) {
    return rbd.component("c", constantReliability(d.componentReliability[e.componentIndex]));
  }
  std::vector<BlockId> children;
  for (std::size_t child : e.children) children.push_back(buildRbd(rbd, d, child));
  switch (e.kind) {
    case Expr::Kind::Series: return rbd.series(children);
    case Expr::Kind::Parallel: return rbd.parallel(children);
    default: return rbd.kOfN(e.k, children);
  }
}

bool evaluateExpr(const RandomDiagram& d, std::size_t node, std::size_t upMask) {
  const Expr& e = d.pool[node];
  switch (e.kind) {
    case Expr::Kind::Component:
      return (upMask >> e.componentIndex) & 1u;
    case Expr::Kind::Series: {
      for (std::size_t child : e.children)
        if (!evaluateExpr(d, child, upMask)) return false;
      return true;
    }
    case Expr::Kind::Parallel: {
      for (std::size_t child : e.children)
        if (evaluateExpr(d, child, upMask)) return true;
      return false;
    }
    case Expr::Kind::KOfN: {
      std::size_t up = 0;
      for (std::size_t child : e.children) up += evaluateExpr(d, child, upMask);
      return up >= e.k;
    }
  }
  return false;
}

double bruteForce(const RandomDiagram& d) {
  const std::size_t n = d.componentReliability.size();
  double total = 0.0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    if (!evaluateExpr(d, d.root, mask)) continue;
    double probability = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      probability *= (mask >> i) & 1u ? d.componentReliability[i]
                                      : 1.0 - d.componentReliability[i];
    }
    total += probability;
  }
  return total;
}

class RbdProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RbdProperty, RandomDiagramMatchesBruteForce) {
  Rng rng{GetParam() ^ 0xBEEF};
  const std::size_t count = 3 + rng.uniformInt(6);  // up to 8 components
  const RandomDiagram d = randomDiagram(rng, count);
  Rbd rbd;
  rbd.setRoot(buildRbd(rbd, d, d.root));
  EXPECT_NEAR(rbd.reliability(1.0), bruteForce(d), 1e-10);
}

TEST_P(RbdProperty, CoherentStructureBounds) {
  Rng rng{GetParam() ^ 0x5EED};
  const std::size_t count = 3 + rng.uniformInt(5);
  const RandomDiagram d = randomDiagram(rng, count);
  Rbd rbd;
  rbd.setRoot(buildRbd(rbd, d, d.root));
  const double r = rbd.reliability(1.0);
  // Series of everything lower-bounds, parallel of everything upper-bounds
  // any coherent structure over the same (single-use) components.
  double series = 1.0;
  double parallelFail = 1.0;
  for (double component : d.componentReliability) {
    series *= component;
    parallelFail *= 1.0 - component;
  }
  EXPECT_GE(r + 1e-12, series);
  EXPECT_LE(r - 1e-12, 1.0 - parallelFail);
}

TEST_P(RbdProperty, FaultTreeDualityOfSeriesParallel) {
  // A series RBD fails iff the OR fault tree fires; a parallel RBD fails iff
  // the AND fault tree fires — for random component sets.
  Rng rng{GetParam() ^ 0xF00D};
  const std::size_t count = 2 + rng.uniformInt(5);
  std::vector<double> reliabilities;
  for (std::size_t i = 0; i < count; ++i) reliabilities.push_back(rng.uniform(0.05, 0.99));

  Rbd seriesRbd;
  Rbd parallelRbd;
  FaultTree orTree;
  FaultTree andTree;
  std::vector<BlockId> seriesBlocks, parallelBlocks;
  std::vector<GateId> orEvents, andEvents;
  for (double r : reliabilities) {
    seriesBlocks.push_back(seriesRbd.component("c", constantReliability(r)));
    parallelBlocks.push_back(parallelRbd.component("c", constantReliability(r)));
    orEvents.push_back(orTree.basicEvent("e", constantReliability(r)));
    andEvents.push_back(andTree.basicEvent("e", constantReliability(r)));
  }
  seriesRbd.setRoot(seriesRbd.series(seriesBlocks));
  parallelRbd.setRoot(parallelRbd.parallel(parallelBlocks));
  orTree.setTop(orTree.orGate(orEvents));
  andTree.setTop(andTree.andGate(andEvents));

  EXPECT_NEAR(seriesRbd.reliability(1.0), orTree.reliability(1.0), 1e-12);
  EXPECT_NEAR(parallelRbd.reliability(1.0), andTree.reliability(1.0), 1e-12);
}

TEST_P(RbdProperty, KOfNMatchesBruteForceEnumeration) {
  Rng rng{GetParam() ^ 0xC0FFEE};
  const std::size_t n = 2 + rng.uniformInt(7);
  const std::size_t k = 1 + rng.uniformInt(n);
  std::vector<double> reliabilities;
  Rbd rbd;
  std::vector<BlockId> blocks;
  for (std::size_t i = 0; i < n; ++i) {
    reliabilities.push_back(rng.uniform(0.05, 0.99));
    blocks.push_back(rbd.component("c", constantReliability(reliabilities.back())));
  }
  rbd.setRoot(rbd.kOfN(k, blocks));

  double expected = 0.0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    std::size_t up = 0;
    double probability = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) {
        probability *= reliabilities[i];
        ++up;
      } else {
        probability *= 1.0 - reliabilities[i];
      }
    }
    if (up >= k) expected += probability;
  }
  EXPECT_NEAR(rbd.reliability(1.0), expected, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbdProperty, ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace nlft::rel
