// Pins the EXPERIMENTS.md headline numbers as regression goldens: the
// reproduction's agreement with the paper's Section 5 figures must not
// drift silently under refactoring.
#include <gtest/gtest.h>

#include "bbw/markov_models.hpp"
#include "bbw/params.hpp"

namespace nlft::bbw {
namespace {

constexpr double kHoursPerYear = 24.0 * 365.0;

struct ExperimentsGolden : ::testing::Test {
  BbwStudy study{};  // paper defaults (Section 5 parameters)
};

// EXPERIMENTS.md headline table: R(1 year) in degraded mode. The paper
// reads ~0.45 (fail-silent) and ~0.70 (NLFT) off Fig. 12; the reproduction
// measures 0.464 and 0.712.
TEST_F(ExperimentsGolden, OneYearDegradedReliability) {
  EXPECT_NEAR(study.systemReliability(NodeType::FailSilent, FunctionalityMode::Degraded,
                                      kHoursPerYear),
              0.464, 1e-3);
  EXPECT_NEAR(
      study.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded, kHoursPerYear),
      0.712, 1e-3);
}

// EXPERIMENTS.md headline table: MTTF in degraded mode, in years. The paper
// gives ~1.2 (fail-silent) and ~1.9 (NLFT); the reproduction measures
// 1.195 and 1.927.
TEST_F(ExperimentsGolden, DegradedMttfYears) {
  EXPECT_NEAR(study.systemMttfHours(NodeType::FailSilent, FunctionalityMode::Degraded) /
                  kHoursPerYear,
              1.195, 1e-3);
  EXPECT_NEAR(
      study.systemMttfHours(NodeType::Nlft, FunctionalityMode::Degraded) / kHoursPerYear,
      1.927, 1e-3);
}

// The paper's central claim in ordering form: NLFT beats the fail-silent
// baseline in both modes, and degraded mode beats full functionality.
TEST_F(ExperimentsGolden, NlftDominatesFailSilent) {
  for (const FunctionalityMode mode : {FunctionalityMode::Full, FunctionalityMode::Degraded}) {
    EXPECT_GT(study.systemReliability(NodeType::Nlft, mode, kHoursPerYear),
              study.systemReliability(NodeType::FailSilent, mode, kHoursPerYear));
    EXPECT_GT(study.systemMttfHours(NodeType::Nlft, mode),
              study.systemMttfHours(NodeType::FailSilent, mode));
  }
  EXPECT_GT(study.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded, kHoursPerYear),
            study.systemReliability(NodeType::Nlft, FunctionalityMode::Full, kHoursPerYear));
}

}  // namespace
}  // namespace nlft::bbw
