#include "reliability/ctmc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace nlft::rel {
namespace {

// Single component, rate lambda, absorbing failure: R(t) = exp(-lambda t).
CtmcModel singleComponent(double lambda) {
  CtmcModel m;
  const StateId up = m.addState("up");
  const StateId down = m.addState("down", /*failure=*/true);
  m.addTransition(up, down, lambda);
  return m;
}

TEST(Ctmc, SingleComponentMatchesClosedForm) {
  const double lambda = 1e-3;
  const CtmcModel m = singleComponent(lambda);
  for (double t : {0.0, 10.0, 100.0, 5000.0}) {
    EXPECT_NEAR(m.reliability(t), std::exp(-lambda * t), 1e-12) << "t=" << t;
  }
}

TEST(Ctmc, SingleComponentMttf) {
  const double lambda = 2.5e-4;
  EXPECT_NEAR(singleComponent(lambda).meanTimeToFailure(), 1.0 / lambda, 1e-6);
}

TEST(Ctmc, TwoStageSeriesClosedForm) {
  // 0 -a-> 1 -b-> F: P(F by t) = 1 - (b e^{-a t} - a e^{-b t})/(b - a).
  const double a = 1e-3;
  const double b = 4e-3;
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s1 = m.addState("1");
  const StateId f = m.addState("F", true);
  m.addTransition(s0, s1, a);
  m.addTransition(s1, f, b);
  for (double t : {100.0, 1000.0, 10000.0}) {
    const double expected = (b * std::exp(-a * t) - a * std::exp(-b * t)) / (b - a);
    EXPECT_NEAR(m.reliability(t), expected, 1e-10);
  }
  EXPECT_NEAR(m.meanTimeToFailure(), 1.0 / a + 1.0 / b, 1e-6);
}

TEST(Ctmc, StateProbabilitiesSumToOne) {
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s1 = m.addState("1");
  const StateId s2 = m.addState("2");
  const StateId f = m.addState("F", true);
  m.addTransition(s0, s1, 0.3);
  m.addTransition(s1, s0, 5.0);
  m.addTransition(s1, s2, 0.2);
  m.addTransition(s2, f, 1.0);
  m.addTransition(s0, f, 0.01);
  for (double t : {0.1, 1.0, 10.0, 100.0}) {
    const auto p = m.stateProbabilities(t);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(Ctmc, UniformizationAgreesWithPade) {
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s1 = m.addState("1");
  const StateId f = m.addState("F", true);
  m.addTransition(s0, s1, 0.8);
  m.addTransition(s1, s0, 2.0);
  m.addTransition(s1, f, 0.5);
  m.addTransition(s0, f, 0.05);
  for (double t : {0.5, 2.0, 8.0, 20.0}) {
    const double pade = m.reliability(t, TransientMethod::PadeExpm);
    const double unif = m.reliability(t, TransientMethod::Uniformization);
    EXPECT_NEAR(pade, unif, 1e-9) << "t=" << t;
  }
}

TEST(Ctmc, UniformizationAgreesOnStiffRepairChain) {
  // Repair rate 6 orders of magnitude above fault rate, like the BBW study.
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s2 = m.addState("2");
  const StateId f = m.addState("F", true);
  m.addTransition(s0, s2, 2e-4);
  m.addTransition(s2, s0, 1.2e3);
  m.addTransition(s2, f, 2e-4);
  const double t = 5.0;  // keep q*t moderate so uniformization stays cheap
  EXPECT_NEAR(m.reliability(t, TransientMethod::PadeExpm),
              m.reliability(t, TransientMethod::Uniformization), 1e-10);
}

TEST(Ctmc, RepairableComponentAvailability) {
  // Up <-> Down (no absorbing state): availability
  // A(t) = mu/(l+mu) + l/(l+mu) e^{-(l+mu)t}.
  const double lambda = 0.2;
  const double mu = 1.5;
  CtmcModel m;
  const StateId up = m.addState("up");
  const StateId down = m.addState("down", /*failure=*/true);
  m.addTransition(up, down, lambda);
  m.addTransition(down, up, mu);
  for (double t : {0.1, 1.0, 5.0}) {
    const auto p = m.stateProbabilities(t);
    const double expected = mu / (lambda + mu) + lambda / (lambda + mu) * std::exp(-(lambda + mu) * t);
    EXPECT_NEAR(p[0], expected, 1e-10);
  }
}

TEST(Ctmc, MttfOfParallelPairClosedForm) {
  // Two active units, no repair: 0 -2l-> 1 -l-> F. MTTF = 1/(2l) + 1/l.
  const double lambda = 1e-4;
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s1 = m.addState("1");
  const StateId f = m.addState("F", true);
  m.addTransition(s0, s1, 2.0 * lambda);
  m.addTransition(s1, f, lambda);
  EXPECT_NEAR(m.meanTimeToFailure(), 1.5 / lambda, 1e-4);
}

TEST(Ctmc, RepairRaisesMttf) {
  const double lambda = 1e-3;
  const double mu = 1.0;
  CtmcModel noRepair;
  {
    const StateId s0 = noRepair.addState("0");
    const StateId s1 = noRepair.addState("1");
    const StateId f = noRepair.addState("F", true);
    noRepair.addTransition(s0, s1, 2.0 * lambda);
    noRepair.addTransition(s1, f, lambda);
  }
  CtmcModel withRepair;
  {
    const StateId s0 = withRepair.addState("0");
    const StateId s1 = withRepair.addState("1");
    const StateId f = withRepair.addState("F", true);
    withRepair.addTransition(s0, s1, 2.0 * lambda);
    withRepair.addTransition(s1, s0, mu);
    withRepair.addTransition(s1, f, lambda);
  }
  EXPECT_GT(withRepair.meanTimeToFailure(), 100.0 * noRepair.meanTimeToFailure());
}

TEST(Ctmc, ExpectedVisitTimesMatchMttfDecomposition) {
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s1 = m.addState("1");
  const StateId f = m.addState("F", true);
  m.addTransition(s0, s1, 0.5);
  m.addTransition(s1, s0, 0.25);
  m.addTransition(s1, f, 0.75);
  const auto visits = m.expectedVisitTimes();
  EXPECT_NEAR(visits[0] + visits[1], m.meanTimeToFailure(), 1e-12);
  EXPECT_GT(visits[0], 0.0);
  EXPECT_GT(visits[1], 0.0);
}

TEST(Ctmc, InitialDistributionRespected) {
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s1 = m.addState("1");
  const StateId f = m.addState("F", true);
  m.addTransition(s0, f, 1.0);
  m.addTransition(s1, f, 2.0);
  m.setInitialProbability(s0, 0.5);
  m.setInitialProbability(s1, 0.5);
  const double t = 0.7;
  EXPECT_NEAR(m.reliability(t), 0.5 * std::exp(-t) + 0.5 * std::exp(-2.0 * t), 1e-12);
}

TEST(Ctmc, InvalidUsageThrows) {
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId f = m.addState("F", true);
  EXPECT_THROW(m.addTransition(s0, s0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.addTransition(s0, f, -1.0), std::invalid_argument);
  EXPECT_THROW(m.addTransition(s0, StateId{99}, 1.0), std::invalid_argument);
  EXPECT_THROW(m.setInitialProbability(s0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)m.reliability(-1.0), std::invalid_argument);
}

TEST(Ctmc, StationaryDistributionTwoStateRepairable) {
  const double lambda = 0.4;
  const double mu = 2.5;
  CtmcModel m;
  const StateId up = m.addState("up");
  const StateId down = m.addState("down", true);
  m.addTransition(up, down, lambda);
  m.addTransition(down, up, mu);
  const auto pi = m.stationaryDistribution();
  EXPECT_NEAR(pi[0], mu / (lambda + mu), 1e-12);
  EXPECT_NEAR(pi[1], lambda / (lambda + mu), 1e-12);
  EXPECT_NEAR(m.steadyStateAvailability(), mu / (lambda + mu), 1e-12);
}

TEST(Ctmc, StationaryDistributionBirthDeath) {
  // Birth-death chain 0<->1<->2 with birth rate b, death rate d:
  // pi_k proportional to (b/d)^k.
  const double b = 1.0;
  const double d = 3.0;
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s1 = m.addState("1");
  const StateId s2 = m.addState("2", true);
  m.addTransition(s0, s1, b);
  m.addTransition(s1, s2, b);
  m.addTransition(s1, s0, d);
  m.addTransition(s2, s1, d);
  const auto pi = m.stationaryDistribution();
  const double rho = b / d;
  const double z = 1.0 + rho + rho * rho;
  EXPECT_NEAR(pi[0], 1.0 / z, 1e-12);
  EXPECT_NEAR(pi[1], rho / z, 1e-12);
  EXPECT_NEAR(pi[2], rho * rho / z, 1e-12);
  EXPECT_NEAR(m.steadyStateAvailability(), (1.0 + rho) / z, 1e-12);
}

TEST(Ctmc, StationaryMatchesLongRunTransient) {
  CtmcModel m;
  const StateId s0 = m.addState("0");
  const StateId s1 = m.addState("1", true);
  const StateId s2 = m.addState("2");
  m.addTransition(s0, s1, 0.7);
  m.addTransition(s1, s2, 1.3);
  m.addTransition(s2, s0, 0.9);
  m.addTransition(s0, s2, 0.2);
  const auto pi = m.stationaryDistribution();
  const auto pLong = m.stateProbabilities(500.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(pi[i], pLong[i], 1e-9);
}

TEST(Ctmc, StationaryDistributionRejectsAbsorbingChains) {
  const CtmcModel m = singleComponent(1e-3);
  EXPECT_THROW((void)m.stationaryDistribution(), std::logic_error);
}

TEST(IndependentSeries, ReliabilityIsProduct) {
  const CtmcModel a = singleComponent(1e-3);
  const CtmcModel b = singleComponent(3e-3);
  const IndependentSeriesSystem system{a, b};
  for (double t : {0.0, 100.0, 1000.0}) {
    EXPECT_NEAR(system.reliability(t), a.reliability(t) * b.reliability(t), 1e-12);
  }
}

TEST(IndependentSeries, MttfOfTwoExponentialsClosedForm) {
  const double la = 1e-3;
  const double lb = 3e-3;
  const IndependentSeriesSystem system{singleComponent(la), singleComponent(lb)};
  EXPECT_NEAR(system.meanTimeToFailure(), 1.0 / (la + lb), 1e-6);
}

TEST(IndependentSeries, MttfMatchesNumericIntegrationOnRichChains) {
  // Cross-check the Kronecker composition against direct quadrature.
  CtmcModel a;
  {
    const StateId s0 = a.addState("0");
    const StateId s1 = a.addState("1");
    const StateId f = a.addState("F", true);
    a.addTransition(s0, s1, 2e-3);
    a.addTransition(s1, s0, 0.1);
    a.addTransition(s1, f, 5e-3);
    a.addTransition(s0, f, 1e-4);
  }
  CtmcModel b;
  {
    const StateId s0 = b.addState("0");
    const StateId s1 = b.addState("1");
    const StateId f = b.addState("F", true);
    b.addTransition(s0, s1, 1e-3);
    b.addTransition(s1, f, 2e-3);
  }
  const IndependentSeriesSystem system{a, b};
  const double analytic = system.meanTimeToFailure();
  // Numeric integral of R(t) via reliability().
  double integral = 0.0;
  const double dt = 25.0;
  double prev = system.reliability(0.0);
  for (double t = dt; t < 4e4; t += dt) {
    const double cur = system.reliability(t);
    integral += 0.5 * (prev + cur) * dt;
    prev = cur;
  }
  EXPECT_NEAR(analytic, integral, analytic * 0.01);
}

}  // namespace
}  // namespace nlft::rel
