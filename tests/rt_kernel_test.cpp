#include "rtkernel/kernel.hpp"

#include <gtest/gtest.h>

#include "core/tem.hpp"

namespace nlft::rt {
namespace {

using util::Duration;
using util::SimTime;

struct KernelFixture : ::testing::Test {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  RtKernel kernel{simulator, cpu};

  TaskConfig periodicTask(const char* name, int priority, Duration period, Duration wcet) {
    TaskConfig cfg;
    cfg.name = name;
    cfg.priority = priority;
    cfg.period = period;
    cfg.wcet = wcet;
    return cfg;
  }
};

// Simple handler: run a single copy and deliver a constant result.
RtKernel::JobHandler simpleHandler(Duration work, std::uint32_t value) {
  return [work, value](Job& job) {
    job.runCopy(work, [&job, value](CopyStop stop) {
      if (stop == CopyStop::Completed) {
        job.complete({value});
      } else {
        job.omit();
      }
    });
  };
}

TEST_F(KernelFixture, PeriodicReleasesAndResults) {
  std::vector<SimTime> deliveries;
  const TaskId task = kernel.addTask(
      periodicTask("t", 1, Duration::milliseconds(10), Duration::milliseconds(2)),
      simpleHandler(Duration::milliseconds(2), 7));
  kernel.setResultSink([&](const JobResult& result) {
    EXPECT_EQ(result.task, task);
    EXPECT_EQ(result.data, (std::vector<std::uint32_t>{7}));
    deliveries.push_back(result.deliveredAt);
  });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(35'000));
  ASSERT_EQ(deliveries.size(), 4u);  // releases at 0, 10, 20, 30
  EXPECT_EQ(deliveries[0].us(), 2000);
  EXPECT_EQ(deliveries[1].us(), 12000);
  EXPECT_EQ(kernel.stats(task).releases, 4u);
  EXPECT_EQ(kernel.stats(task).completions, 4u);
  EXPECT_EQ(kernel.stats(task).deadlineMisses, 0u);
}

TEST_F(KernelFixture, OffsetDelaysFirstRelease) {
  TaskConfig cfg = periodicTask("t", 1, Duration::milliseconds(10), Duration::milliseconds(1));
  cfg.offset = Duration::milliseconds(4);
  std::vector<std::int64_t> releases;
  kernel.addTask(cfg, [&](Job& job) {
    releases.push_back(job.releaseTime().us());
    job.complete({});
  });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(25'000));
  EXPECT_EQ(releases, (std::vector<std::int64_t>{4000, 14000, 24000}));
}

TEST_F(KernelFixture, DeadlineMonitorAbortsLateJob) {
  TaskConfig cfg = periodicTask("slow", 1, Duration::milliseconds(10), Duration::milliseconds(2));
  cfg.relativeDeadline = Duration::milliseconds(5);
  cfg.budget = Duration::milliseconds(20);  // budget does not interfere here
  bool aborted = false;
  CopyStop observed = CopyStop::Completed;
  const TaskId task = kernel.addTask(cfg, [&](Job& job) {
    job.setAbortHandler([&] { aborted = true; });
    // Ask for more work than fits before the deadline.
    job.runCopy(Duration::milliseconds(8), [&](CopyStop stop) { observed = stop; });
  });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(9'000));
  EXPECT_TRUE(aborted);
  EXPECT_EQ(observed, CopyStop::Aborted);
  EXPECT_EQ(kernel.stats(task).deadlineMisses, 1u);
  EXPECT_EQ(kernel.stats(task).omissions, 1u);
  EXPECT_EQ(kernel.stats(task).completions, 0u);
}

TEST_F(KernelFixture, BudgetTimerKillsRunawayCopy) {
  TaskConfig cfg = periodicTask("runaway", 1, Duration::milliseconds(20), Duration::milliseconds(2));
  cfg.budget = Duration::milliseconds(3);
  CopyStop observed = CopyStop::Completed;
  const TaskId task = kernel.addTask(cfg, [&](Job& job) {
    // A control-flow error made the task loop: it asks for 15 ms of CPU.
    job.runCopy(Duration::milliseconds(15), [&](CopyStop stop) {
      observed = stop;
      job.omit();
    });
  });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(10'000));
  EXPECT_EQ(observed, CopyStop::BudgetOverrun);
  EXPECT_EQ(kernel.stats(task).budgetOverruns, 1u);
  // The overrun was caught at 3 ms, not 15: CPU is free again.
  EXPECT_EQ(cpu.busyTime().us(), 3000);
}

TEST_F(KernelFixture, SporadicTaskReleasesOnDemand) {
  TaskConfig cfg;
  cfg.name = "sporadic";
  cfg.priority = 2;
  cfg.period = Duration{};  // sporadic
  cfg.relativeDeadline = Duration::milliseconds(5);
  cfg.wcet = Duration::milliseconds(1);
  int completions = 0;
  const TaskId task = kernel.addTask(cfg, simpleHandler(Duration::milliseconds(1), 1));
  kernel.setResultSink([&](const JobResult&) { ++completions; });
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(3), [&] { kernel.releaseSporadic(task); });
  simulator.scheduleAfter(Duration::milliseconds(9), [&] { kernel.releaseSporadic(task); });
  simulator.runUntil(SimTime::fromUs(20'000));
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(kernel.stats(task).releases, 2u);
}

TEST_F(KernelFixture, PriorityOrderAcrossTasks) {
  // Low-priority long task released at 0; high-priority task at same time.
  std::vector<std::string> order;
  TaskConfig low = periodicTask("low", 1, Duration::milliseconds(100), Duration::milliseconds(6));
  TaskConfig high = periodicTask("high", 9, Duration::milliseconds(100), Duration::milliseconds(2));
  kernel.addTask(low, [&](Job& job) {
    job.runCopy(Duration::milliseconds(6), [&](CopyStop) {
      order.push_back("low");
      job.complete({});
    });
  });
  kernel.addTask(high, [&](Job& job) {
    job.runCopy(Duration::milliseconds(2), [&](CopyStop) {
      order.push_back("high");
      job.complete({});
    });
  });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(50'000));
  EXPECT_EQ(order, (std::vector<std::string>{"high", "low"}));
}

TEST_F(KernelFixture, ErrorRoutedToActiveJob) {
  TaskConfig cfg = periodicTask("t", 1, Duration::milliseconds(10), Duration::milliseconds(4));
  std::optional<ErrorEvent::Source> seen;
  const TaskId task = kernel.addTask(cfg, [&](Job& job) {
    job.setErrorHandler([&](const ErrorEvent& event) { seen = event.source; });
    job.runCopy(Duration::milliseconds(4), [&](CopyStop) { job.complete({}); });
  });
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(1), [&] {
    kernel.reportTaskError(task, {ErrorEvent::Source::HardwareException, 3});
  });
  simulator.runUntil(SimTime::fromUs(8'000));
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, ErrorEvent::Source::HardwareException);
  EXPECT_EQ(kernel.stats(task).errorsDetected, 1u);
}

TEST_F(KernelFixture, KernelErrorSilencesNode) {
  bool silent = false;
  kernel.setFailSilentHook([&] { silent = true; });
  const TaskId task = kernel.addTask(
      periodicTask("t", 1, Duration::milliseconds(5), Duration::milliseconds(1)),
      simpleHandler(Duration::milliseconds(1), 1));
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(7), [&] {
    kernel.reportKernelError({ErrorEvent::Source::HardwareException, 1});
  });
  simulator.runUntil(SimTime::fromUs(50'000));
  EXPECT_TRUE(silent);
  EXPECT_TRUE(kernel.stopped());
  EXPECT_EQ(kernel.kernelErrors(), 1u);
  // Releases at 0 and 5 completed; nothing after the error at 7.
  EXPECT_EQ(kernel.stats(task).releases, 2u);
}

TEST_F(KernelFixture, DisableTaskStopsFurtherReleases) {
  const TaskId task = kernel.addTask(
      periodicTask("noncritical", 1, Duration::milliseconds(5), Duration::milliseconds(1)),
      simpleHandler(Duration::milliseconds(1), 1));
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(12), [&] { kernel.disableTask(task); });
  simulator.runUntil(SimTime::fromUs(40'000));
  EXPECT_EQ(kernel.stats(task).releases, 3u);  // 0, 5, 10
}

TEST_F(KernelFixture, OverrunningJobIsAbortedAtNextRelease) {
  // Deadline equals period; job never finishes within it.
  TaskConfig cfg = periodicTask("t", 1, Duration::milliseconds(10), Duration::milliseconds(1));
  cfg.budget = Duration::milliseconds(50);
  int aborts = 0;
  const TaskId task = kernel.addTask(cfg, [&](Job& job) {
    job.setAbortHandler([&] { ++aborts; });
    job.runCopy(Duration::milliseconds(30), [&](CopyStop) {});
  });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(25'000));
  EXPECT_GE(aborts, 2);
  EXPECT_GE(kernel.stats(task).deadlineMisses, 2u);
  EXPECT_EQ(kernel.stats(task).completions, 0u);
}

TEST_F(KernelFixture, KillRunningCopyReclaimsTime) {
  TaskConfig cfg = periodicTask("t", 1, Duration::milliseconds(20), Duration::milliseconds(10));
  std::int64_t completedAt = 0;
  kernel.addTask(cfg, [&](Job& job) {
    job.runCopy(Duration::milliseconds(10), [&](CopyStop stop) {
      if (stop == CopyStop::Killed) {
        // Restart: the new copy only needs the CPU time from now on.
        job.runCopy(Duration::milliseconds(4), [&](CopyStop) {
          completedAt = simulator.now().us();
          job.complete({});
        });
      }
    });
  });
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(3), [&] {
    kernel.activeJob(TaskId{0})->killRunningCopy();
  });
  simulator.runUntil(SimTime::fromUs(15'000));
  EXPECT_EQ(completedAt, 7000);  // killed at 3 ms + 4 ms new copy
}

TEST_F(KernelFixture, TimeToDeadlineShrinks) {
  TaskConfig cfg = periodicTask("t", 1, Duration::milliseconds(10), Duration::milliseconds(1));
  cfg.relativeDeadline = Duration::milliseconds(8);
  Duration atRelease{};
  kernel.addTask(cfg, [&](Job& job) {
    atRelease = job.timeToDeadline();
    job.runCopy(Duration::milliseconds(1), [&](CopyStop) { job.complete({}); });
  });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(2'000));
  EXPECT_EQ(atRelease.us(), 8000);
}

// Vote tie: all three TEM copies return pairwise-different results, so the
// vote cannot mask the error. The executor must enforce a FAIL-OMISSION
// before the deadline — no result delivered, job omitted in time, and the
// tie accounted as a failed vote (not a deadline miss).
TEST_F(KernelFixture, TemVoteTieForcesOmissionBeforeDeadline) {
  tem::TemExecutor temExecutor{kernel};
  TaskConfig cfg = periodicTask("tie", 1, Duration::milliseconds(10),
                                Duration::microseconds(500));
  cfg.relativeDeadline = Duration::milliseconds(8);
  const TaskId task = temExecutor.addCriticalTask(cfg, [](const tem::CopyContext& context) {
    tem::CopyPlan plan;
    plan.executionTime = Duration::microseconds(500);
    // Every copy disagrees with every other: 101, 102, 103.
    plan.result = {static_cast<std::uint32_t>(100 + context.copyIndex)};
    return plan;
  });

  int deliveries = 0;
  kernel.setResultSink([&](const JobResult&) { ++deliveries; });
  std::int64_t omittedAtUs = -1;
  kernel.setEventTap([&](const KernelEvent& event) {
    if (event.kind == KernelEvent::Kind::JobOmitted && event.task == task) {
      omittedAtUs = simulator.now().us();
    }
  });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(9'000));  // exactly one release at t=0

  EXPECT_EQ(deliveries, 0);  // the wrong result must never leave the node
  ASSERT_GE(omittedAtUs, 0) << "job was not omitted";
  EXPECT_LE(omittedAtUs, 8'000);  // omission enforced before the deadline
  EXPECT_EQ(kernel.stats(task).omissions, 1u);
  EXPECT_EQ(kernel.stats(task).completions, 0u);
  EXPECT_EQ(kernel.stats(task).deadlineMisses, 0u);

  const tem::TemStats& stats = temExecutor.stats(task);
  EXPECT_EQ(stats.jobs, 1u);
  EXPECT_EQ(stats.firstCopies, 1u);
  EXPECT_EQ(stats.secondCopies, 1u);
  EXPECT_EQ(stats.thirdCopies, 1u);  // the tie needed all three executions
  EXPECT_EQ(stats.comparisonMismatches, 1u);
  EXPECT_EQ(stats.omissionsVoteFailed, 1u);
  EXPECT_EQ(stats.maskedByVote, 0u);
  EXPECT_EQ(stats.deliveredCleanly, 0u);
}

TEST_F(KernelFixture, StopCancelsEverything) {
  const TaskId task = kernel.addTask(
      periodicTask("t", 1, Duration::milliseconds(5), Duration::milliseconds(1)),
      simpleHandler(Duration::milliseconds(1), 1));
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(11), [&] { kernel.stop(); });
  simulator.runUntil(SimTime::fromUs(60'000));
  EXPECT_EQ(kernel.stats(task).releases, 3u);
  EXPECT_TRUE(kernel.stopped());
  // releaseSporadic after stop is ignored.
  kernel.releaseSporadic(task);
  EXPECT_EQ(kernel.stats(task).releases, 3u);
}

}  // namespace
}  // namespace nlft::rt
