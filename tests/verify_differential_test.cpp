// Differential harness: static verifier vs simulation.
//
// Replays every checked-in golden-trace scenario with a metrics registry
// attached and asserts that the OBSERVED end-to-end latency (the e2e.latency
// histogram the simulation records from pedal sampling on a CU to the first
// actuator apply of that command on a wheel) never exceeds the STATIC bound
// the verifier derives for the matching configuration. A static bound that a
// recorded execution beats is wrong — this is the cross-check the whole
// verifier rests on. Also pins the golden traces themselves (replay must
// still match tests/golden byte-for-byte with the metrics tap attached).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/golden_trace.hpp"
#include "obs/metrics.hpp"
#include "verify/bbw_configs.hpp"
#include "verify/checks.hpp"
#include "verify/holistic.hpp"

namespace nlft::verify {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string{NLFT_GOLDEN_DIR} + "/" + name + ".trace";
}

/// The configuration a scenario executes: the "fs-" prefix marks the
/// fail-silent baseline, everything else runs the NLFT deployment.
SystemConfig scenarioConfig(const std::string& scenario) {
  if (scenario.rfind("fs-", 0) == 0) return bbwFailSilentConfig();
  return bbwNlftConfig();
}

TEST(VerifyDifferential, StaticBoundDominatesEveryGoldenTraceLatency) {
  for (const std::string& scenario : fi::goldenScenarioNames()) {
    const SystemConfig config = scenarioConfig(scenario);
    const auto bound = computeEndToEndBound(config);
    ASSERT_TRUE(bound.has_value()) << scenario;

    obs::Registry metrics;
    const std::vector<std::string> trace =
        fi::recordScenarioTrace(scenario, {}, nullptr, &metrics);
    ASSERT_FALSE(trace.empty()) << scenario;

    // Thousands of command deliveries per 15 s stop: the histogram must be
    // populated, and its max must respect the static sample->apply bound.
    const obs::HistogramSnapshot histogram = metrics.histogram("e2e.latency");
    EXPECT_GT(histogram.total, 100u) << scenario;
    const double measuredMaxUs = metrics.gauge("e2e.latency.max_us");
    EXPECT_GT(measuredMaxUs, 0.0) << scenario;
    EXPECT_LE(measuredMaxUs, static_cast<double>(bound->sampleToApply().us()))
        << scenario << ": measured " << measuredMaxUs << " us vs static bound "
        << bound->sampleToApply().us() << " us";

    // And the scenario's configuration is one the verifier certifies.
    EXPECT_TRUE(verifyConfiguration(config).passed()) << scenario;
  }
}

TEST(VerifyDifferential, MetricsTapDoesNotPerturbGoldenTraces) {
  // The e2e instrumentation must be observation-only: replaying with the
  // registry attached still reproduces the checked-in traces byte-for-byte.
  for (const std::string& scenario : fi::goldenScenarioNames()) {
    obs::Registry metrics;
    const std::vector<std::string> actual =
        fi::recordScenarioTrace(scenario, {}, nullptr, &metrics);
    const std::vector<std::string> expected = fi::readTraceFile(goldenPath(scenario));
    const fi::TraceDiff diff = fi::compareTraces(expected, actual);
    EXPECT_TRUE(diff.identical) << scenario << " line " << diff.line << "\n  expected: "
                                << diff.expected << "\n  actual:   " << diff.actual;
  }
}

TEST(VerifyDifferential, ObservedLatencyIsPlausiblyTight) {
  // Guard against a vacuous bound: the measured worst case should land in
  // the same order of magnitude as the static bound (within 4x), otherwise
  // the analysis is so loose it certifies nothing interesting.
  const SystemConfig config = bbwNlftConfig();
  const auto bound = computeEndToEndBound(config);
  ASSERT_TRUE(bound.has_value());
  obs::Registry metrics;
  (void)fi::recordScenarioTrace("nlft-computation-fault", {}, nullptr, &metrics);
  const double measuredMaxUs = metrics.gauge("e2e.latency.max_us");
  EXPECT_GE(measuredMaxUs * 4.0, static_cast<double>(bound->sampleToApply().us()));
}

}  // namespace
}  // namespace nlft::verify
