#include "reliability/fault_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nlft::rel {
namespace {

TEST(FaultTree, BasicEventFailureProbability) {
  FaultTree tree;
  tree.basicEvent("e", constantReliability(0.9));
  EXPECT_NEAR(tree.failureProbability(1.0), 0.1, 1e-12);
  EXPECT_NEAR(tree.reliability(1.0), 0.9, 1e-12);
}

TEST(FaultTree, OrGateFailsIfAnyInputFails) {
  FaultTree tree;
  const auto a = tree.basicEvent("a", constantReliability(0.9));
  const auto b = tree.basicEvent("b", constantReliability(0.8));
  tree.setTop(tree.orGate({a, b}));
  EXPECT_NEAR(tree.reliability(1.0), 0.72, 1e-12);  // both must survive
}

TEST(FaultTree, AndGateNeedsAllInputsToFail) {
  FaultTree tree;
  const auto a = tree.basicEvent("a", constantReliability(0.9));
  const auto b = tree.basicEvent("b", constantReliability(0.8));
  tree.setTop(tree.andGate({a, b}));
  EXPECT_NEAR(tree.failureProbability(1.0), 0.1 * 0.2, 1e-12);
}

TEST(FaultTree, KOfNGateMatchesEnumeration) {
  const double r[] = {0.9, 0.8, 0.7};
  FaultTree tree;
  std::vector<GateId> events;
  for (double ri : r) events.push_back(tree.basicEvent("e", constantReliability(ri)));
  tree.setTop(tree.kOfNGate(2, events));  // fails when >= 2 of 3 fail

  double expected = 0.0;
  for (int mask = 0; mask < 8; ++mask) {
    int failed = 0;
    double prob = 1.0;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1 << i)) {
        prob *= 1.0 - r[i];
        ++failed;
      } else {
        prob *= r[i];
      }
    }
    if (failed >= 2) expected += prob;
  }
  EXPECT_NEAR(tree.failureProbability(1.0), expected, 1e-12);
}

TEST(FaultTree, NestedGates) {
  // Top = OR(AND(a, b), c): a duplex masked pair in series with c.
  FaultTree tree;
  const auto a = tree.basicEvent("a", constantReliability(0.9));
  const auto b = tree.basicEvent("b", constantReliability(0.9));
  const auto c = tree.basicEvent("c", constantReliability(0.99));
  tree.setTop(tree.orGate({tree.andGate({a, b}), c}));
  const double duplexFailure = 0.1 * 0.1;
  EXPECT_NEAR(tree.reliability(1.0), (1.0 - duplexFailure) * 0.99, 1e-12);
}

TEST(FaultTree, OrOfExponentialsMttf) {
  FaultTree tree;
  const auto a = tree.basicEvent("a", exponentialReliability(1e-3));
  const auto b = tree.basicEvent("b", exponentialReliability(3e-3));
  tree.setTop(tree.orGate({a, b}));
  EXPECT_NEAR(tree.mttf(100.0), 250.0, 0.5);  // 1/(1e-3+3e-3)
}

TEST(FaultTree, TimeDependenceFlowsThrough) {
  FaultTree tree;
  const auto a = tree.basicEvent("a", exponentialReliability(2e-3));
  tree.setTop(tree.orGate({a}));
  EXPECT_NEAR(tree.reliability(500.0), std::exp(-1.0), 1e-12);
  EXPECT_GT(tree.reliability(100.0), tree.reliability(1000.0));
}

TEST(FaultTree, BirnbaumImportanceClosedForms) {
  // Series (OR of failures): I_i = product of other components' reliability.
  FaultTree tree;
  const auto a = tree.basicEvent("a", constantReliability(0.9));
  const auto b = tree.basicEvent("b", constantReliability(0.8));
  tree.setTop(tree.orGate({a, b}));
  EXPECT_NEAR(tree.birnbaumImportance(a, 1.0), 0.8, 1e-12);
  EXPECT_NEAR(tree.birnbaumImportance(b, 1.0), 0.9, 1e-12);
}

TEST(FaultTree, BirnbaumImportanceParallel) {
  // AND of failures: I_i = product of other components' failure probability.
  FaultTree tree;
  const auto a = tree.basicEvent("a", constantReliability(0.9));
  const auto b = tree.basicEvent("b", constantReliability(0.8));
  tree.setTop(tree.andGate({a, b}));
  EXPECT_NEAR(tree.birnbaumImportance(a, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(tree.birnbaumImportance(b, 1.0), 0.1, 1e-12);
}

TEST(FaultTree, BirnbaumIdentifiesTheBottleneck) {
  // Weakest link in series carries the LOWER importance here? No: in series
  // the importance of a component is the others' reliability, so the MOST
  // reliable partner makes YOUR importance the largest. Bottleneck analysis
  // uses importance x failure probability (criticality); check ordering.
  FaultTree tree;
  const auto weak = tree.basicEvent("weak", constantReliability(0.6));
  const auto strong = tree.basicEvent("strong", constantReliability(0.99));
  tree.setTop(tree.orGate({weak, strong}));
  const double weakCriticality = tree.birnbaumImportance(weak, 1.0) * 0.4;
  const double strongCriticality = tree.birnbaumImportance(strong, 1.0) * 0.01;
  EXPECT_GT(weakCriticality, strongCriticality);
}

TEST(FaultTree, BirnbaumRejectsGateNodes) {
  FaultTree tree;
  const auto a = tree.basicEvent("a", constantReliability(0.9));
  const auto gate = tree.orGate({a});
  tree.setTop(gate);
  EXPECT_THROW((void)tree.birnbaumImportance(gate, 1.0), std::invalid_argument);
}

TEST(FaultTree, InvalidConstructionThrows) {
  FaultTree tree;
  EXPECT_THROW(tree.orGate({}), std::invalid_argument);
  EXPECT_THROW(tree.andGate({}), std::invalid_argument);
  const auto a = tree.basicEvent("a", constantReliability(0.9));
  EXPECT_THROW(tree.kOfNGate(0, {a}), std::invalid_argument);
  EXPECT_THROW(tree.kOfNGate(2, {a}), std::invalid_argument);
  EXPECT_THROW(tree.setTop(GateId{42}), std::invalid_argument);
  EXPECT_THROW(tree.basicEvent("bad", ReliabilityFn{}), std::invalid_argument);
  EXPECT_THROW((void)FaultTree{}.reliability(1.0), std::logic_error);
}

}  // namespace
}  // namespace nlft::rel
