// Voting, end-to-end integrity and control-flow monitoring units.
#include <gtest/gtest.h>

#include "core/control_flow.hpp"
#include "core/end_to_end.hpp"
#include "core/policies.hpp"
#include "core/result.hpp"

namespace nlft::tem {
namespace {

// --- majority voting ---

TEST(Voter, TwoMatchingOfThree) {
  const TaskResult a{1, 2, 3};
  const TaskResult b{9, 9, 9};
  const std::vector<TaskResult> abb{a, b, b};
  const std::vector<TaskResult> bab{b, a, b};
  const std::vector<TaskResult> bba{b, b, a};
  EXPECT_EQ(majorityVote(abb), b);
  EXPECT_EQ(majorityVote(bab), b);
  EXPECT_EQ(majorityVote(bba), b);
}

TEST(Voter, AllThreeDifferentFails) {
  const std::vector<TaskResult> all{{1}, {2}, {3}};
  EXPECT_FALSE(majorityVote(all).has_value());
}

TEST(Voter, AllEqualSucceeds) {
  const std::vector<TaskResult> all{{7, 7}, {7, 7}, {7, 7}};
  EXPECT_EQ(majorityVote(all), (TaskResult{7, 7}));
}

TEST(Voter, TwoResultsBehaveLikeComparison) {
  const std::vector<TaskResult> match{{5}, {5}};
  const std::vector<TaskResult> differ{{5}, {6}};
  EXPECT_TRUE(majorityVote(match).has_value());
  EXPECT_FALSE(majorityVote(differ).has_value());
}

TEST(Voter, EmptyAndSingleCandidateFail) {
  const std::vector<TaskResult> none{};
  const std::vector<TaskResult> one{{1}};
  EXPECT_FALSE(majorityVote(none).has_value());
  EXPECT_FALSE(majorityVote(one).has_value());
}

TEST(Voter, LengthMismatchIsAMismatch) {
  EXPECT_FALSE(resultsMatch({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(resultsMatch({}, {}));
}

// Exhaustive sweep: every placement of one corrupted result among three must
// still deliver the good value.
class VoterPlacement : public ::testing::TestWithParam<int> {};

TEST_P(VoterPlacement, SingleCorruptionAlwaysMasked) {
  const TaskResult good{0xAA, 0xBB};
  const TaskResult bad{0xAA, 0xFF};
  std::vector<TaskResult> candidates{good, good, good};
  candidates[GetParam()] = bad;
  const auto voted = majorityVote(candidates);
  ASSERT_TRUE(voted.has_value());
  EXPECT_EQ(*voted, good);
}

INSTANTIATE_TEST_SUITE_P(Positions, VoterPlacement, ::testing::Values(0, 1, 2));

// --- end-to-end integrity ---

TEST(CrcRecord, RoundTrip) {
  CrcProtectedRecord record;
  const std::uint32_t data[] = {1, 2, 3, 4};
  record.write(data);
  const auto back = record.read();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

TEST(CrcRecord, DetectsEverySingleBitCorruption) {
  CrcProtectedRecord record;
  const std::uint32_t data[] = {0xDEADBEEF, 0x12345678};
  for (std::size_t word = 0; word < 2; ++word) {
    for (int bit = 0; bit < 32; ++bit) {
      record.write(data);
      record.corruptWord(word, bit);
      EXPECT_FALSE(record.read().has_value()) << word << ":" << bit;
    }
  }
}

TEST(CrcRecord, DetectsChecksumCorruption) {
  CrcProtectedRecord record;
  const std::uint32_t data[] = {5};
  record.write(data);
  record.corruptChecksum(17);
  EXPECT_FALSE(record.read().has_value());
}

TEST(CrcRecord, RewriteHeals) {
  CrcProtectedRecord record;
  const std::uint32_t data[] = {5};
  record.write(data);
  record.corruptWord(0, 3);
  record.write(data);
  EXPECT_TRUE(record.read().has_value());
}

TEST(CrcRecord, EmptyRecordReadsEmpty) {
  CrcProtectedRecord record;
  const auto back = record.read();
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(CrcRecord, CorruptOutOfRangeThrows) {
  CrcProtectedRecord record;
  EXPECT_THROW(record.corruptWord(0, 0), std::out_of_range);
  EXPECT_THROW(record.corruptChecksum(32), std::out_of_range);
}

TEST(DuplicatedValue, DetectsDivergence) {
  DuplicatedValue value;
  value.write(100);
  EXPECT_EQ(value.read(), 100u);
  value.corruptCopy(0, 2);
  EXPECT_FALSE(value.read().has_value());
}

TEST(DuplicatedValue, MatchingCorruptionInBothCopiesEscapes) {
  // Documented limitation: identical corruption of both copies is silent.
  DuplicatedValue value;
  value.write(100);
  value.corruptCopy(0, 2);
  value.corruptCopy(1, 2);
  EXPECT_EQ(value.read(), 100u ^ 4u);
}

TEST(TriplicatedValue, MasksSingleCopyCorruption) {
  for (int copy = 0; copy < 3; ++copy) {
    TriplicatedValue value;
    value.write(0xCAFE);
    value.corruptCopy(copy, 7);
    EXPECT_EQ(value.read(), 0xCAFEu) << "copy " << copy;
  }
}

TEST(TriplicatedValue, ThreeWayDivergenceDetected) {
  TriplicatedValue value;
  value.write(10);
  value.corruptCopy(0, 0);
  value.corruptCopy(1, 1);
  EXPECT_FALSE(value.read().has_value());
}

TEST(TriplicatedValue, TwoIdenticallyCorruptedCopiesOutvoteTheGoodOne) {
  // Documented limitation of triplication without diversity.
  TriplicatedValue value;
  value.write(10);
  value.corruptCopy(0, 4);
  value.corruptCopy(1, 4);
  EXPECT_EQ(value.read(), 10u ^ 16u);
}

// --- control-flow monitoring ---

TEST(SignatureMonitor, LegalPathAccepted) {
  SignatureMonitor monitor;
  monitor.addLegalPath({1, 2, 3, 4});
  monitor.begin();
  for (std::uint32_t block : {1u, 2u, 3u, 4u}) monitor.enterBlock(block);
  EXPECT_TRUE(monitor.finishAndCheck());
}

TEST(SignatureMonitor, SkippedBlockDetected) {
  SignatureMonitor monitor;
  monitor.addLegalPath({1, 2, 3, 4});
  monitor.begin();
  for (std::uint32_t block : {1u, 3u, 4u}) monitor.enterBlock(block);  // jumped over 2
  EXPECT_FALSE(monitor.finishAndCheck());
}

TEST(SignatureMonitor, WrongOrderDetected) {
  SignatureMonitor monitor;
  monitor.addLegalPath({1, 2, 3});
  monitor.begin();
  for (std::uint32_t block : {2u, 1u, 3u}) monitor.enterBlock(block);
  EXPECT_FALSE(monitor.finishAndCheck());
}

TEST(SignatureMonitor, MultipleLegalPaths) {
  SignatureMonitor monitor;
  monitor.addLegalPath({1, 2, 4});  // branch taken
  monitor.addLegalPath({1, 3, 4});  // branch not taken
  monitor.begin();
  for (std::uint32_t block : {1u, 3u, 4u}) monitor.enterBlock(block);
  EXPECT_TRUE(monitor.finishAndCheck());
  monitor.begin();
  for (std::uint32_t block : {1u, 2u, 4u}) monitor.enterBlock(block);
  EXPECT_TRUE(monitor.finishAndCheck());
}

TEST(SignatureMonitor, BeginResetsState) {
  SignatureMonitor monitor;
  monitor.addLegalPath({1, 2});
  monitor.begin();
  monitor.enterBlock(1);
  monitor.begin();
  for (std::uint32_t block : {1u, 2u}) monitor.enterBlock(block);
  EXPECT_TRUE(monitor.finishAndCheck());
}

TEST(DeliveryGuard, NormalVoteThenDeliver) {
  DeliveryGuard guard;
  const std::uint32_t checksum = 0x1234;
  const std::uint64_t token = guard.armAfterVote(checksum);
  EXPECT_TRUE(guard.authorizeDelivery(token, checksum));
  EXPECT_EQ(guard.bypassAttempts(), 0u);
}

TEST(DeliveryGuard, DeliveryWithoutVoteRejected) {
  DeliveryGuard guard;
  EXPECT_FALSE(guard.authorizeDelivery(0xABCDE, 0x1234));
  EXPECT_EQ(guard.bypassAttempts(), 1u);
}

TEST(DeliveryGuard, TokenCannotBeReused) {
  DeliveryGuard guard;
  const std::uint64_t token = guard.armAfterVote(1);
  EXPECT_TRUE(guard.authorizeDelivery(token, 1));
  EXPECT_FALSE(guard.authorizeDelivery(token, 1));  // replay
}

TEST(DeliveryGuard, TokenBoundToResultChecksum) {
  DeliveryGuard guard;
  const std::uint64_t token = guard.armAfterVote(1);
  // A control-flow error jumps to the output code with a DIFFERENT result.
  EXPECT_FALSE(guard.authorizeDelivery(token, 2));
}

TEST(DeliveryGuard, StaleTokenFromEarlierJobRejected) {
  DeliveryGuard guard;
  const std::uint64_t oldToken = guard.armAfterVote(1);
  (void)guard.authorizeDelivery(oldToken, 1);
  (void)guard.armAfterVote(1);
  EXPECT_FALSE(guard.authorizeDelivery(oldToken, 1));
}

TEST(DeliveryGuard, DoubleDeliveryCountsAsBypassAttempt) {
  // Two output writes for one vote: the second is the control-flow error
  // (e.g. an erroneous jump back into the delivery code) and must both fail
  // and be visible in the bypass counter.
  DeliveryGuard guard;
  const std::uint64_t token = guard.armAfterVote(9);
  EXPECT_TRUE(guard.authorizeDelivery(token, 9));
  EXPECT_FALSE(guard.authorizeDelivery(token, 9));
  EXPECT_FALSE(guard.authorizeDelivery(token, 9));
  EXPECT_EQ(guard.bypassAttempts(), 2u);
}

TEST(DeliveryGuard, StaleTokenFromUndeliveredJobRejected) {
  // Job A votes but never delivers (e.g. preempted and restarted); job B
  // votes. A's token must not authorise B's delivery.
  DeliveryGuard guard;
  const std::uint64_t tokenA = guard.armAfterVote(1);
  const std::uint64_t tokenB = guard.armAfterVote(1);
  EXPECT_FALSE(guard.authorizeDelivery(tokenA, 1));
  EXPECT_TRUE(guard.authorizeDelivery(tokenB, 1));
}

TEST(DeliveryGuard, FailedAttemptDoesNotDisarm) {
  // A bypass attempt with a forged token must not consume the legitimate
  // arming: the real delivery still succeeds afterwards.
  DeliveryGuard guard;
  const std::uint64_t token = guard.armAfterVote(3);
  EXPECT_FALSE(guard.authorizeDelivery(token ^ 1, 3));
  EXPECT_TRUE(guard.authorizeDelivery(token, 3));
  EXPECT_EQ(guard.bypassAttempts(), 1u);
}

TEST(DeliveryGuard, ChecksumMismatchLeavesTokenValidForRightResult) {
  // Delivering the WRONG result with the right token fails; the token then
  // still authorises the result it was armed for.
  DeliveryGuard guard;
  const std::uint64_t token = guard.armAfterVote(0xAAAA);
  EXPECT_FALSE(guard.authorizeDelivery(token, 0xBBBB));
  EXPECT_TRUE(guard.authorizeDelivery(token, 0xAAAA));
}

TEST(DeliveryGuard, ZeroTokenNeverAuthorises) {
  DeliveryGuard guard;
  (void)guard.armAfterVote(0);
  EXPECT_FALSE(guard.authorizeDelivery(0, 0));
}

}  // namespace
}  // namespace nlft::tem
