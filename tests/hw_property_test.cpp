// Property tests for the simulated hardware: encode/decode/disassemble/
// assemble round trips over random instructions, and randomized memory
// consistency against a reference model.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "hw/assembler.hpp"
#include "hw/isa.hpp"
#include "hw/machine.hpp"
#include "util/rng.hpp"

namespace nlft::hw {
namespace {

using util::Rng;

Instruction randomInstruction(Rng& rng) {
  Instruction instruction;
  instruction.opcode = static_cast<Opcode>(rng.uniformInt(kMaxOpcode + 1));
  instruction.rd = static_cast<int>(rng.uniformInt(kRegisterCount));
  instruction.rs1 = static_cast<int>(rng.uniformInt(kRegisterCount));
  instruction.rs2 = static_cast<int>(rng.uniformInt(kRegisterCount));
  // imm18 signed range.
  instruction.imm = static_cast<std::int32_t>(rng.uniformInt(1u << 18)) - (1 << 17);
  return instruction;
}

/// Canonicalises an instruction for the text round trip: fields the opcode
/// does not use are zeroed (the assembler cannot express them), and branch
/// targets become valid non-negative code addresses.
Instruction sanitizeForText(Instruction instruction, Rng& rng) {
  switch (instruction.opcode) {
    case Opcode::Nop:
    case Opcode::Halt:
    case Opcode::Rts:
      instruction.rd = instruction.rs1 = instruction.rs2 = 0;
      instruction.imm = 0;
      break;
    case Opcode::Ldi:
      instruction.rs1 = instruction.rs2 = 0;
      break;
    case Opcode::Ld:
    case Opcode::St:
      instruction.rs2 = 0;
      break;
    case Opcode::Mov:
      instruction.rs2 = 0;
      instruction.imm = 0;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Divs:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
      instruction.imm = 0;
      break;
    case Opcode::Shl:
    case Opcode::Shr:
      instruction.rs2 = 0;
      instruction.imm &= 31;
      break;
    case Opcode::Addi:
      instruction.rs2 = 0;
      break;
    case Opcode::Cmp:
      instruction.rd = 0;
      instruction.imm = 0;
      break;
    case Opcode::Cmpi:
      instruction.rd = instruction.rs2 = 0;
      break;
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Jmp:
    case Opcode::Jsr:
      instruction.rd = instruction.rs1 = instruction.rs2 = 0;
      instruction.imm = static_cast<std::int32_t>(rng.uniformInt(1 << 16)) & ~3;
      break;
    case Opcode::Push:
    case Opcode::Pop:
      instruction.rs1 = instruction.rs2 = 0;
      instruction.imm = 0;
      break;
  }
  return instruction;
}

class IsaRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsaRoundTrip, EncodeDecodeIsIdentityOnCanonicalFields) {
  Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    const Instruction original = randomInstruction(rng);
    const auto decoded = decode(encode(original));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->opcode, original.opcode);
    // Every encoding decodes back to an instruction that re-encodes to the
    // same word (fields not used by the opcode may normalise to zero).
    EXPECT_EQ(encode(*decoded), encode(original));
  }
}

TEST_P(IsaRoundTrip, DisassembleAssembleRoundTrip) {
  Rng rng{GetParam() ^ 0xA5A5};
  for (int i = 0; i < 100; ++i) {
    const Instruction instruction = sanitizeForText(randomInstruction(rng), rng);
    const std::uint32_t word = encode(instruction);
    const auto decoded = decode(word);
    ASSERT_TRUE(decoded.has_value());
    const std::string text = disassemble(*decoded);
    const Program reassembled = assemble(text + "\n");
    ASSERT_EQ(reassembled.words.size(), 1u) << text;
    EXPECT_EQ(reassembled.words[0], word) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaRoundTrip, ::testing::Range<std::uint64_t>(1, 9));

class MemoryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryProperty, RandomOperationsMatchReferenceModel) {
  Rng rng{GetParam() ^ 0x313};
  EccMemory memory{1024};
  std::map<std::uint32_t, std::uint32_t> reference;
  std::map<std::uint32_t, int> pendingFlips;

  for (int op = 0; op < 3000; ++op) {
    const std::uint32_t address = 4 * static_cast<std::uint32_t>(rng.uniformInt(256));
    switch (rng.uniformInt(3)) {
      case 0: {  // write
        const auto value = static_cast<std::uint32_t>(rng.next());
        memory.write(address, value);
        reference[address] = value;
        pendingFlips[address] = 0;
        break;
      }
      case 1: {  // single-bit upset
        if (pendingFlips[address] >= 2) break;  // keep it decodable territory
        memory.flipBit(address, static_cast<int>(rng.uniformInt(kEccCodewordBits)));
        ++pendingFlips[address];
        break;
      }
      default: {  // read
        const MemoryReadResult result = memory.read(address);
        const int flips = pendingFlips[address];
        if (flips <= 1) {
          ASSERT_TRUE(result.ok);
          ASSERT_EQ(result.value, reference.count(address) ? reference[address] : 0u);
          pendingFlips[address] = 0;  // scrub-on-read heals single upsets
        } else {
          // Two pending flips: either they hit different bits (uncorrectable)
          // or the same bit twice (cancels, reads clean).
          if (result.ok) {
            ASSERT_EQ(result.value, reference.count(address) ? reference[address] : 0u);
            pendingFlips[address] = 0;
          }
        }
        break;
      }
    }
  }
}

TEST_P(MemoryProperty, InterpreterDeterminism) {
  // Random (but halting) straight-line programs: two machines given the same
  // program and inputs always agree on every architectural output.
  Rng rng{GetParam() ^ 0x777};
  std::ostringstream source;
  for (int i = 0; i < 30; ++i) {
    switch (rng.uniformInt(5)) {
      case 0: source << "ldi r" << rng.uniformInt(13) << ", " << rng.uniformInt(1000) << "\n"; break;
      case 1: source << "add r" << rng.uniformInt(13) << ", r" << rng.uniformInt(13) << ", r"
                     << rng.uniformInt(13) << "\n"; break;
      case 2: source << "mul r" << rng.uniformInt(13) << ", r" << rng.uniformInt(13) << ", r"
                     << rng.uniformInt(13) << "\n"; break;
      case 3: source << "xor r" << rng.uniformInt(13) << ", r" << rng.uniformInt(13) << ", r"
                     << rng.uniformInt(13) << "\n"; break;
      default: source << "st r" << rng.uniformInt(13) << ", [r0+" << 4 * (64 + rng.uniformInt(32))
                      << "]\n"; break;
    }
  }
  source << "halt\n";
  const Program program = assemble(source.str());

  auto runOnce = [&] {
    Machine machine{8192};
    machine.loadWords(0, program.words);
    machine.cpu().setSp(8192);
    (void)machine.run(1000);
    return machine.readWords(256, 32);
  };
  EXPECT_EQ(runOnce(), runOnce());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryProperty, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace nlft::hw
