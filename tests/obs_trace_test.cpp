// Chrome trace_event exporter: schema validity, name escaping, simulated-µs
// timestamps, and byte-identical re-export (the determinism-lint hook runs
// the *ByteIdentical* tests against a built tree).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/json.hpp"

namespace nlft::obs {
namespace {

using util::Duration;
using util::SimTime;

TraceRecorder sampleRecorder() {
  TraceRecorder recorder;
  recorder.setProcessName(0, "vehicle");
  recorder.setProcessName(3, "wheel-node-3");
  recorder.setThreadName(3, 1, "wheel-task");
  recorder.instant(3, 0, "computation-fault", "inject", SimTime::fromUs(500'000));
  recorder.instant(3, 0, "task-error", "kernel", SimTime::fromUs(505'000), "job=100");
  recorder.complete(3, 1, "wheel-task", "cpu", SimTime::fromUs(500'000),
                    Duration::microseconds(750));
  recorder.instant(0, 0, "vehicle-stopped", "vehicle", SimTime::fromUs(3'369'000),
                   "distance=37.888");
  return recorder;
}

TEST(ObsTrace, ExportIsValidChromeTraceJson) {
  const TraceRecorder recorder = sampleRecorder();
  const JsonValue doc = parseJson(recorder.toJson());  // throws on malformed JSON

  ASSERT_TRUE(doc.has("traceEvents"));
  EXPECT_EQ(doc.get("displayTimeUnit").asString(), "ms");
  const JsonValue& events = doc.get("traceEvents");
  ASSERT_EQ(events.kind(), JsonValue::Kind::Array);
  ASSERT_EQ(events.size(), recorder.events().size());

  const std::set<std::string> phases{"i", "X", "M"};
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    ASSERT_TRUE(event.has("name"));
    ASSERT_TRUE(event.has("ph"));
    ASSERT_TRUE(event.has("pid"));
    ASSERT_TRUE(event.has("tid"));
    const std::string& phase = event.get("ph").asString();
    EXPECT_TRUE(phases.count(phase)) << "unknown phase " << phase;
    if (phase == "M") continue;  // metadata: no ts/cat
    EXPECT_TRUE(event.has("ts"));
    EXPECT_TRUE(event.has("cat"));
    if (phase == "X") EXPECT_TRUE(event.has("dur"));
    if (phase == "i") EXPECT_EQ(event.get("s").asString(), "t");
  }
}

TEST(ObsTrace, TimestampsAreSimulatedMicroseconds) {
  const TraceRecorder recorder = sampleRecorder();
  const JsonValue doc = parseJson(recorder.toJson());
  const JsonValue& events = doc.get("traceEvents");
  bool sawInject = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.get("name").asString() != "computation-fault") continue;
    sawInject = true;
    EXPECT_EQ(event.get("ts").asInt(), 500'000);  // SimTime µs, not wall clock
  }
  EXPECT_TRUE(sawInject);
}

TEST(ObsTrace, SpanDurationAndArgsSurvive) {
  const TraceRecorder recorder = sampleRecorder();
  const JsonValue doc = parseJson(recorder.toJson());
  const JsonValue& events = doc.get("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.get("ph").asString() == "X") {
      EXPECT_EQ(event.get("dur").asInt(), 750);
      EXPECT_EQ(event.get("tid").asInt(), 1);
    }
    if (event.get("name").asString() == "task-error") {
      EXPECT_EQ(event.get("args").get("detail").asString(), "job=100");
    }
  }
}

TEST(ObsTrace, MetadataEventsNameLanes) {
  const TraceRecorder recorder = sampleRecorder();
  const JsonValue doc = parseJson(recorder.toJson());
  const JsonValue& events = doc.get("traceEvents");
  bool sawProcess = false, sawThread = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.get("ph").asString() != "M") continue;
    if (event.get("name").asString() == "process_name" &&
        event.get("args").get("name").asString() == "wheel-node-3") {
      sawProcess = true;
      EXPECT_EQ(event.get("pid").asInt(), 3);
    }
    if (event.get("name").asString() == "thread_name") {
      sawThread = true;
      EXPECT_EQ(event.get("args").get("name").asString(), "wheel-task");
    }
  }
  EXPECT_TRUE(sawProcess);
  EXPECT_TRUE(sawThread);
}

TEST(ObsTrace, NamesWithSpecialCharactersAreEscaped) {
  TraceRecorder recorder;
  recorder.instant(1, 0, "quote\"back\\slash", "cat\negory", SimTime::fromUs(1),
                   "tab\there");
  const std::string json = recorder.toJson();
  const JsonValue doc = parseJson(json);  // must still parse
  const JsonValue& event = doc.get("traceEvents").at(0);
  EXPECT_EQ(event.get("name").asString(), "quote\"back\\slash");
  EXPECT_EQ(event.get("cat").asString(), "cat\negory");
  EXPECT_EQ(event.get("args").get("detail").asString(), "tab\there");
  EXPECT_EQ(json.find('\n' + std::string{"egory"}), std::string::npos);  // raw newline escaped
}

TEST(ObsTrace, CountHelpersFilterByCategoryAndName) {
  const TraceRecorder recorder = sampleRecorder();
  EXPECT_EQ(recorder.countCategory("inject"), 1u);
  EXPECT_EQ(recorder.countCategory("kernel"), 1u);
  EXPECT_EQ(recorder.countCategory("cpu"), 1u);
  EXPECT_EQ(recorder.countEvents("inject", "computation-fault"), 1u);
  EXPECT_EQ(recorder.countEvents("inject", "no-such-event"), 0u);
  EXPECT_EQ(recorder.countCategory("no-such-category"), 0u);
}

// Run by tools/determinism_lint.sh: the export must be a pure function of
// the recorded events — two exports of the same recorder are byte-identical.
TEST(ObsTrace, ReExportIsByteIdentical) {
  const TraceRecorder recorder = sampleRecorder();
  const std::string first = recorder.toJson();
  const std::string second = recorder.toJson();
  EXPECT_EQ(first, second);

  // And independently-built recorders with the same event stream agree too.
  const std::string other = sampleRecorder().toJson();
  EXPECT_EQ(first, other);
}

TEST(ObsTrace, ClearEmptiesTheRecorder) {
  TraceRecorder recorder = sampleRecorder();
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  const JsonValue doc = parseJson(recorder.toJson());
  EXPECT_EQ(doc.get("traceEvents").size(), 0u);
}

}  // namespace
}  // namespace nlft::obs
