// Validates the reconstructed reliability models against every number the
// paper quotes in Section 3.4, plus structural equivalences between the
// different model representations (CTMC vs RBD vs fault tree).
#include "bbw/markov_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/time.hpp"

namespace nlft::bbw {
namespace {

constexpr double kOneYearHours = nlft::util::kHoursPerYear;

class BbwModelsTest : public ::testing::Test {
 protected:
  ReliabilityParameters params = ReliabilityParameters::paperDefaults();
  BbwStudy study{};
};

TEST_F(BbwModelsTest, PaperParameterValues) {
  EXPECT_DOUBLE_EQ(params.lambdaPermanent, 1.82e-5);
  EXPECT_DOUBLE_EQ(params.lambdaTransient, 1.82e-4);
  EXPECT_DOUBLE_EQ(params.coverage, 0.99);
  EXPECT_DOUBLE_EQ(params.pMask + params.pOmission + params.pFailSilent, 1.0);
  EXPECT_DOUBLE_EQ(params.muRestart, 1.2e3);       // 3 s
  EXPECT_DOUBLE_EQ(params.muOmissionRepair, 2.25e3);  // 1.6 s
}

// --- The paper's headline numbers (Section 3.4) ---

TEST_F(BbwModelsTest, DegradedModeOneYearReliabilityMatchesPaper) {
  const double fs = study.systemReliability(NodeType::FailSilent, FunctionalityMode::Degraded,
                                            kOneYearHours);
  const double nlft = study.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded,
                                              kOneYearHours);
  // Paper: "the reliability increases by 55% (from 0.45 to 0.70)".
  EXPECT_NEAR(fs, 0.45, 0.02);
  EXPECT_NEAR(nlft, 0.70, 0.02);
  const double improvement = (nlft - fs) / fs;
  EXPECT_NEAR(improvement, 0.55, 0.05);
}

TEST_F(BbwModelsTest, DegradedModeMttfMatchesPaper) {
  const double fsYears =
      study.systemMttfHours(NodeType::FailSilent, FunctionalityMode::Degraded) / kOneYearHours;
  const double nlftYears =
      study.systemMttfHours(NodeType::Nlft, FunctionalityMode::Degraded) / kOneYearHours;
  // Paper: "the MTTF increases by almost 60% (1.2 year to 1.9 year)".
  EXPECT_NEAR(fsYears, 1.2, 0.1);
  EXPECT_NEAR(nlftYears, 1.9, 0.1);
  EXPECT_NEAR(nlftYears / fsYears, 1.6, 0.1);
}

TEST_F(BbwModelsTest, FullModeIsMuchLessReliableThanDegraded) {
  for (NodeType type : {NodeType::FailSilent, NodeType::Nlft}) {
    const double full = study.systemReliability(type, FunctionalityMode::Full, kOneYearHours);
    const double degraded =
        study.systemReliability(type, FunctionalityMode::Degraded, kOneYearHours);
    EXPECT_LT(full, degraded);
  }
  // FS/full is dominated by 4*lambda exposure: essentially dead after a year.
  EXPECT_LT(study.systemReliability(NodeType::FailSilent, FunctionalityMode::Full, kOneYearHours),
            0.01);
}

TEST_F(BbwModelsTest, SubsystemReliabilitiesAtOneYear) {
  // Values from the analytic hand-solution documented in DESIGN.md.
  EXPECT_NEAR(study.centralUnitReliability(NodeType::FailSilent, kOneYearHours), 0.823, 0.01);
  EXPECT_NEAR(study.centralUnitReliability(NodeType::Nlft, kOneYearHours), 0.927, 0.01);
  EXPECT_NEAR(
      study.wheelSubsystemReliability(NodeType::FailSilent, FunctionalityMode::Degraded, kOneYearHours),
      0.564, 0.01);
  EXPECT_NEAR(
      study.wheelSubsystemReliability(NodeType::Nlft, FunctionalityMode::Degraded, kOneYearHours),
      0.767, 0.01);
}

TEST_F(BbwModelsTest, WheelSubsystemIsTheBottleneck) {
  // Paper: "The main reliability bottleneck is the wheel node subsystem."
  for (NodeType type : {NodeType::FailSilent, NodeType::Nlft}) {
    for (FunctionalityMode mode : {FunctionalityMode::Full, FunctionalityMode::Degraded}) {
      EXPECT_LT(study.wheelSubsystemReliability(type, mode, kOneYearHours),
                study.centralUnitReliability(type, kOneYearHours));
    }
  }
}

// --- Structural equivalences between representations ---

TEST_F(BbwModelsTest, FullFsRbdEqualsEquivalentChain) {
  const auto rbd = wheelSubsystemRbdFullFs(params);
  const auto chain = wheelSubsystemChain(NodeType::FailSilent, FunctionalityMode::Full, params);
  for (double t : {0.0, 100.0, 1000.0, kOneYearHours}) {
    EXPECT_NEAR(rbd.reliability(t), chain.reliability(t), 1e-10) << "t=" << t;
  }
}

TEST_F(BbwModelsTest, FullFsMatchesClosedForm) {
  const double rate = 4.0 * params.lambdaTotal();
  const auto chain = wheelSubsystemChain(NodeType::FailSilent, FunctionalityMode::Full, params);
  for (double t : {10.0, 500.0, 4000.0}) {
    EXPECT_NEAR(chain.reliability(t), std::exp(-rate * t), 1e-10);
  }
}

TEST_F(BbwModelsTest, FaultTreeMatchesProductOfSubsystems) {
  for (NodeType type : {NodeType::FailSilent, NodeType::Nlft}) {
    for (FunctionalityMode mode : {FunctionalityMode::Full, FunctionalityMode::Degraded}) {
      const auto tree = systemFaultTree(type, mode, params);
      for (double t : {100.0, kOneYearHours / 2.0, kOneYearHours}) {
        const double product = study.centralUnitReliability(type, t) *
                               study.wheelSubsystemReliability(type, mode, t);
        EXPECT_NEAR(tree.reliability(t), product, 1e-9);
        EXPECT_NEAR(study.systemReliability(type, mode, t), product, 1e-9);
      }
    }
  }
}

// --- Model-level properties ---

TEST_F(BbwModelsTest, NlftDominatesFsAtAllTimes) {
  for (FunctionalityMode mode : {FunctionalityMode::Full, FunctionalityMode::Degraded}) {
    for (double t = 0.0; t <= kOneYearHours; t += kOneYearHours / 12.0) {
      EXPECT_GE(study.systemReliability(NodeType::Nlft, mode, t) + 1e-12,
                study.systemReliability(NodeType::FailSilent, mode, t))
          << "mode=" << static_cast<int>(mode) << " t=" << t;
    }
  }
}

TEST_F(BbwModelsTest, ReliabilityIsMonotoneDecreasing) {
  double prev = 1.0;
  for (double t = 0.0; t <= kOneYearHours; t += kOneYearHours / 24.0) {
    const double r = study.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded, t);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
}

TEST_F(BbwModelsTest, NlftWithNoMaskingReducesToFailSilent) {
  // With P_T = 0 and P_FS = 1 the NLFT node behaves exactly like an FS node:
  // every detected transient silences it and repairs at muR.
  ReliabilityParameters noMask = params;
  noMask.pMask = 0.0;
  noMask.pOmission = 0.0;
  noMask.pFailSilent = 1.0;
  const BbwStudy degenerate{noMask};
  for (double t : {100.0, kOneYearHours / 2.0, kOneYearHours}) {
    EXPECT_NEAR(
        degenerate.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded, t),
        degenerate.systemReliability(NodeType::FailSilent, FunctionalityMode::Degraded, t), 1e-9);
  }
}

TEST_F(BbwModelsTest, PerfectCoverageAndMaskingLeavesOnlyPermanentFaults) {
  ReliabilityParameters ideal = params;
  ideal.coverage = 1.0;
  ideal.pMask = 1.0;
  ideal.pOmission = 0.0;
  ideal.pFailSilent = 0.0;
  const auto chain = wheelSubsystemChain(NodeType::Nlft, FunctionalityMode::Full, ideal);
  const double t = 1000.0;
  EXPECT_NEAR(chain.reliability(t), std::exp(-4.0 * ideal.lambdaPermanent * t), 1e-10);
}

TEST_F(BbwModelsTest, HigherCoverageImprovesReliability) {
  ReliabilityParameters low = params;
  low.coverage = 0.9;
  ReliabilityParameters high = params;
  high.coverage = 0.999;
  const BbwStudy lowStudy{low};
  const BbwStudy highStudy{high};
  const double t = 5.0;  // the Fig. 14 horizon
  for (NodeType type : {NodeType::FailSilent, NodeType::Nlft}) {
    EXPECT_GT(highStudy.systemReliability(type, FunctionalityMode::Degraded, t),
              lowStudy.systemReliability(type, FunctionalityMode::Degraded, t));
  }
}

TEST_F(BbwModelsTest, NlftAdvantageGrowsWithTransientFaultRate) {
  // Paper Fig. 14: "the reliability improvements of using NLFT increase for
  // higher fault rates."
  double previousGap = 0.0;
  for (double scale : {1.0, 10.0, 100.0, 1000.0}) {
    ReliabilityParameters p = params;
    p.lambdaTransient = 1.82e-4 * scale;
    const BbwStudy s{p};
    const double gap = s.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded, 5.0) -
                       s.systemReliability(NodeType::FailSilent, FunctionalityMode::Degraded, 5.0);
    EXPECT_GE(gap, previousGap - 1e-12) << "scale=" << scale;
    previousGap = gap;
  }
}

TEST_F(BbwModelsTest, FaultRateNegligibleWhileFarBelowRepairRate) {
  // Paper Fig. 14: at the 5-hour horizon the reliability barely moves while
  // lambda_T stays orders of magnitude below the repair rate.
  ReliabilityParameters p10 = params;
  p10.lambdaTransient *= 10.0;
  const double base = study.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded, 5.0);
  const double scaled =
      BbwStudy{p10}.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded, 5.0);
  EXPECT_GT(base, 0.999);
  EXPECT_NEAR(base, scaled, 1e-3);
}

TEST_F(BbwModelsTest, MttfConsistentWithReliabilityIntegral) {
  // Kronecker-composed MTTF must equal the quadrature of R(t).
  const double analytic = study.systemMttfHours(NodeType::Nlft, FunctionalityMode::Degraded);
  const auto fn = [&](double t) {
    return study.systemReliability(NodeType::Nlft, FunctionalityMode::Degraded, t);
  };
  const double integral = rel::mttfByIntegration(fn, kOneYearHours);
  EXPECT_NEAR(analytic, integral, analytic * 0.01);
}

TEST_F(BbwModelsTest, UnmaskedRateFormula) {
  EXPECT_NEAR(params.unmaskedRate(),
              params.lambdaPermanent + params.lambdaTransient * (1.0 - 0.99 * 0.9), 1e-18);
  EXPECT_LT(params.unmaskedRate(), params.lambdaTotal());
}

}  // namespace
}  // namespace nlft::bbw
