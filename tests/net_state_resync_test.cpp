#include "net/state_resync.hpp"

#include <gtest/gtest.h>

#include "net/membership.hpp"

namespace nlft::net {
namespace {

using util::Duration;
using util::SimTime;

struct ResyncFixture : ::testing::Test {
  sim::Simulator simulator;
  TdmaConfig config;

  ResyncFixture() {
    config.slotLength = Duration::milliseconds(1);
    config.staticSchedule = {1, 2};
    config.dynamicMinislots = 4;
    config.minislotLength = Duration::microseconds(250);
  }
};

TEST_F(ResyncFixture, PartnerAnswersStateRequest) {
  TdmaBus bus{simulator, config};
  StateResyncService resync{simulator, bus};
  // Node 2 holds state 7; node 1 lost it.
  resync.addNode(1, [](StateId32) { return std::nullopt; });
  resync.addNode(2, [](StateId32 id) -> std::optional<std::vector<std::uint32_t>> {
    if (id == 7) return std::vector<std::uint32_t>{0xAA, 0xBB};
    return std::nullopt;
  });

  std::vector<std::uint32_t> recovered;
  Duration latency{};
  resync.setRecoveredHandler(1, [&](StateId32 id, const std::vector<std::uint32_t>& data,
                                    Duration measured) {
    EXPECT_EQ(id, 7u);
    recovered = data;
    latency = measured;
  });

  bus.start();
  resync.requestState(1, 7);
  simulator.runUntil(SimTime::fromUs(10'000));

  EXPECT_EQ(recovered, (std::vector<std::uint32_t>{0xAA, 0xBB}));
  EXPECT_GT(latency, Duration{});
  // Request goes out in cycle 0's dynamic segment, the response in cycle
  // 1's: latency is below two communication cycles.
  EXPECT_LE(latency, bus.cycleLength() * 2);
  EXPECT_EQ(resync.recoveries(), 1u);
  EXPECT_EQ(resync.requestsSent(), 1u);
  EXPECT_EQ(resync.responsesSent(), 1u);
}

TEST_F(ResyncFixture, NoHolderMeansNoRecovery) {
  TdmaBus bus{simulator, config};
  StateResyncService resync{simulator, bus};
  resync.addNode(1, [](StateId32) { return std::nullopt; });
  resync.addNode(2, [](StateId32) { return std::nullopt; });
  bus.start();
  resync.requestState(1, 42);
  simulator.runUntil(SimTime::fromUs(20'000));
  EXPECT_EQ(resync.recoveries(), 0u);
  EXPECT_EQ(resync.responsesSent(), 0u);
}

TEST_F(ResyncFixture, ResponseAddressedToRequesterOnly) {
  config.staticSchedule = {1, 2, 3};
  TdmaBus bus{simulator, config};
  StateResyncService resync{simulator, bus};
  resync.addNode(1, [](StateId32) { return std::nullopt; });
  resync.addNode(2, [](StateId32) { return std::vector<std::uint32_t>{5}; });
  int bystanderRecoveries = 0;
  resync.addNode(3, [](StateId32) { return std::nullopt; });
  resync.setRecoveredHandler(3, [&](StateId32, const std::vector<std::uint32_t>&, Duration) {
    ++bystanderRecoveries;
  });
  bool requesterRecovered = false;
  resync.setRecoveredHandler(1, [&](StateId32, const std::vector<std::uint32_t>&, Duration) {
    requesterRecovered = true;
  });
  bus.start();
  resync.requestState(1, 1);
  simulator.runUntil(SimTime::fromUs(20'000));
  EXPECT_TRUE(requesterRecovered);
  EXPECT_EQ(bystanderRecoveries, 0);
}

TEST_F(ResyncFixture, DuplicateResponsesIgnored) {
  config.staticSchedule = {1, 2, 3};
  TdmaBus bus{simulator, config};
  StateResyncService resync{simulator, bus};
  resync.addNode(1, [](StateId32) { return std::nullopt; });
  // BOTH peers hold the state (duplex partner + warm spare).
  resync.addNode(2, [](StateId32) { return std::vector<std::uint32_t>{1}; });
  resync.addNode(3, [](StateId32) { return std::vector<std::uint32_t>{1}; });
  int recoveries = 0;
  resync.setRecoveredHandler(1, [&](StateId32, const std::vector<std::uint32_t>&, Duration) {
    ++recoveries;
  });
  bus.start();
  resync.requestState(1, 9);
  simulator.runUntil(SimTime::fromUs(30'000));
  EXPECT_EQ(recoveries, 1);  // first response wins, the duplicate is dropped
  EXPECT_EQ(resync.responsesSent(), 2u);
}

TEST_F(ResyncFixture, SilentPeerCannotAnswer) {
  TdmaBus bus{simulator, config};
  StateResyncService resync{simulator, bus};
  resync.addNode(1, [](StateId32) { return std::nullopt; });
  resync.addNode(2, [](StateId32) { return std::vector<std::uint32_t>{1}; });
  bus.setNodeSilent(2, true);
  bus.start();
  resync.requestState(1, 1);
  simulator.runUntil(SimTime::fromUs(20'000));
  EXPECT_EQ(resync.recoveries(), 0u);
}

TEST_F(ResyncFixture, ConcurrentRequestsForDifferentStates) {
  TdmaBus bus{simulator, config};
  StateResyncService resync{simulator, bus};
  resync.addNode(1, [](StateId32) { return std::nullopt; });
  resync.addNode(2, [](StateId32 id) -> std::optional<std::vector<std::uint32_t>> {
    return std::vector<std::uint32_t>{id * 10};
  });
  std::map<StateId32, std::uint32_t> recovered;
  resync.setRecoveredHandler(1, [&](StateId32 id, const std::vector<std::uint32_t>& data,
                                    Duration) { recovered[id] = data[0]; });
  bus.start();
  resync.requestState(1, 1);
  resync.requestState(1, 2);
  simulator.runUntil(SimTime::fromUs(30'000));
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[1], 10u);
  EXPECT_EQ(recovered[2], 20u);
}

// Resync during membership expulsion: the holder fails silent just before
// the request goes out, so the request races its expulsion — no response
// can arrive. After the holder restarts and reintegrates, a repeated
// request succeeds over the same bus.
TEST_F(ResyncFixture, HolderExpelledMidProtocolAnswersAgainAfterReintegration) {
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus, {/*missTolerance=*/1, /*reintegrationCycles=*/2}};
  membership.addNode(1);
  membership.addNode(2);
  StateResyncService resync{simulator, bus};
  resync.addNode(1, [](StateId32) { return std::nullopt; });
  resync.addNode(2, [](StateId32 id) -> std::optional<std::vector<std::uint32_t>> {
    if (id == 7) return std::vector<std::uint32_t>{0xC0, 0xDE};
    return std::nullopt;
  });
  int recoveries = 0;
  resync.setRecoveredHandler(
      1, [&](StateId32, const std::vector<std::uint32_t>&, Duration) { ++recoveries; });
  membership.start();  // also starts the bus

  // t = 5 ms: the holder fails silent. t = 6 ms: node 1 requests the state
  // WHILE the heartbeat protocol is still expelling the holder.
  simulator.scheduleAt(SimTime::fromUs(5'000), [&] {
    membership.setAlive(2, false);
    bus.setNodeSilent(2, true);
  });
  simulator.scheduleAt(SimTime::fromUs(6'000), [&] { resync.requestState(1, 7); });
  simulator.runUntil(SimTime::fromUs(30'000));
  // The fail-silent holder still hears the request and attempts an answer,
  // but its bus interface discards the frame: nothing reaches node 1.
  EXPECT_EQ(recoveries, 0);
  EXPECT_EQ(resync.recoveries(), 0u);
  EXPECT_FALSE(membership.isMember(1, 2));  // expulsion completed

  // The holder restarts, reintegrates, and can answer again.
  bus.setNodeSilent(2, false);
  membership.setAlive(2, true);
  simulator.runUntil(SimTime::fromUs(60'000));
  EXPECT_TRUE(membership.isMember(1, 2));  // re-admitted
  resync.requestState(1, 7);
  simulator.runUntil(SimTime::fromUs(90'000));
  EXPECT_EQ(recoveries, 1);
  EXPECT_EQ(resync.recoveries(), 1u);
}

// The dual case: the RESTARTED node itself asks for its lost state while
// the peers are still holding it out of membership (its reintegration
// heartbeats are still being counted). The event-triggered resync must not
// wait for re-admission — fast state recovery is exactly its purpose.
TEST_F(ResyncFixture, RestartedRequesterRecoversStateBeforeReadmission) {
  MembershipConfig membershipConfig;
  membershipConfig.missTolerance = 1;
  membershipConfig.reintegrationCycles = 4;  // slow re-admission
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus, membershipConfig};
  membership.addNode(1);
  membership.addNode(2);
  StateResyncService resync{simulator, bus};
  resync.addNode(1, [](StateId32) { return std::nullopt; });
  resync.addNode(2, [](StateId32) -> std::optional<std::vector<std::uint32_t>> {
    return std::vector<std::uint32_t>{0xF00D};
  });
  int recoveries = 0;
  bool memberAtRecovery = true;
  resync.setRecoveredHandler(1,
                             [&](StateId32, const std::vector<std::uint32_t>& data, Duration) {
                               ++recoveries;
                               EXPECT_EQ(data[0], 0xF00Du);
                               memberAtRecovery = membership.isMember(2, 1);
                             });
  membership.start();

  // Node 1 crashes at 5 ms and is expelled; it restarts at 15 ms and
  // IMMEDIATELY requests its lost task state — long before the peers'
  // reintegration counter re-admits it.
  simulator.scheduleAt(SimTime::fromUs(5'000), [&] {
    membership.setAlive(1, false);
    bus.setNodeSilent(1, true);
  });
  simulator.scheduleAt(SimTime::fromUs(15'000), [&] {
    bus.setNodeSilent(1, false);
    membership.setAlive(1, true);
    resync.requestState(1, 3);
  });
  simulator.runUntil(SimTime::fromUs(40'000));
  EXPECT_EQ(recoveries, 1);
  EXPECT_FALSE(memberAtRecovery)
      << "recovery should have completed during reintegration, before re-admission";
}

}  // namespace
}  // namespace nlft::net
