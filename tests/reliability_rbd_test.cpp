#include "reliability/rbd.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nlft::rel {
namespace {

TEST(Rbd, SingleComponent) {
  Rbd rbd;
  rbd.component("c", exponentialReliability(1e-3));
  EXPECT_NEAR(rbd.reliability(1000.0), std::exp(-1.0), 1e-12);
}

TEST(Rbd, SeriesMultipliesReliabilities) {
  Rbd rbd;
  const auto a = rbd.component("a", constantReliability(0.9));
  const auto b = rbd.component("b", constantReliability(0.8));
  rbd.setRoot(rbd.series({a, b}));
  EXPECT_NEAR(rbd.reliability(1.0), 0.72, 1e-12);
}

TEST(Rbd, ParallelCombinesUnreliabilities) {
  Rbd rbd;
  const auto a = rbd.component("a", constantReliability(0.9));
  const auto b = rbd.component("b", constantReliability(0.8));
  rbd.setRoot(rbd.parallel({a, b}));
  EXPECT_NEAR(rbd.reliability(1.0), 1.0 - 0.1 * 0.2, 1e-12);
}

TEST(Rbd, KOfNHomogeneousMatchesBinomial) {
  // 2-of-3 with p = 0.9: 3 p^2 (1-p) + p^3.
  Rbd rbd;
  std::vector<BlockId> components;
  for (int i = 0; i < 3; ++i) components.push_back(rbd.component("c", constantReliability(0.9)));
  rbd.setRoot(rbd.kOfN(2, components));
  EXPECT_NEAR(rbd.reliability(1.0), 3 * 0.81 * 0.1 + 0.729, 1e-12);
}

TEST(Rbd, KOfNHeterogeneousMatchesEnumeration) {
  const double p[] = {0.9, 0.7, 0.6, 0.5};
  Rbd rbd;
  std::vector<BlockId> components;
  for (double pi : p) components.push_back(rbd.component("c", constantReliability(pi)));
  rbd.setRoot(rbd.kOfN(3, components));

  // Brute force over all 16 subsets.
  double expected = 0.0;
  for (int mask = 0; mask < 16; ++mask) {
    int working = 0;
    double prob = 1.0;
    for (int i = 0; i < 4; ++i) {
      if (mask & (1 << i)) {
        prob *= p[i];
        ++working;
      } else {
        prob *= 1.0 - p[i];
      }
    }
    if (working >= 3) expected += prob;
  }
  EXPECT_NEAR(rbd.reliability(1.0), expected, 1e-12);
}

TEST(Rbd, KOfNSpecialCasesEqualSeriesAndParallel) {
  const double p[] = {0.9, 0.7, 0.6};
  auto build = [&](auto combiner) {
    Rbd rbd;
    std::vector<BlockId> components;
    for (double pi : p) components.push_back(rbd.component("c", constantReliability(pi)));
    rbd.setRoot(combiner(rbd, components));
    return rbd.reliability(1.0);
  };
  const double nOfN = build([](Rbd& r, auto& c) { return r.kOfN(3, c); });
  const double series = build([](Rbd& r, auto& c) { return r.series(c); });
  EXPECT_NEAR(nOfN, series, 1e-12);
  const double oneOfN = build([](Rbd& r, auto& c) { return r.kOfN(1, c); });
  const double parallel = build([](Rbd& r, auto& c) { return r.parallel(c); });
  EXPECT_NEAR(oneOfN, parallel, 1e-12);
}

TEST(Rbd, NestedDiagram) {
  // (a || b) in series with c.
  Rbd rbd;
  const auto a = rbd.component("a", constantReliability(0.9));
  const auto b = rbd.component("b", constantReliability(0.9));
  const auto c = rbd.component("c", constantReliability(0.95));
  rbd.setRoot(rbd.series({rbd.parallel({a, b}), c}));
  EXPECT_NEAR(rbd.reliability(1.0), (1.0 - 0.01) * 0.95, 1e-12);
}

TEST(Rbd, SeriesOfExponentialsMttf) {
  // Series of independent exponentials is exponential with summed rates.
  Rbd rbd;
  const auto a = rbd.component("a", exponentialReliability(1e-3));
  const auto b = rbd.component("b", exponentialReliability(2e-3));
  rbd.setRoot(rbd.series({a, b}));
  EXPECT_NEAR(rbd.mttf(100.0), 1.0 / 3e-3, 1.0);
}

TEST(Rbd, BlockReliabilityExposesSubsystems) {
  Rbd rbd;
  const auto a = rbd.component("a", constantReliability(0.9));
  const auto b = rbd.component("b", constantReliability(0.8));
  const auto s = rbd.series({a, b});
  rbd.setRoot(s);
  EXPECT_NEAR(rbd.blockReliability(a, 1.0), 0.9, 1e-12);
  EXPECT_NEAR(rbd.blockReliability(s, 1.0), 0.72, 1e-12);
}

TEST(Rbd, InvalidConstructionThrows) {
  Rbd rbd;
  EXPECT_THROW(rbd.series({}), std::invalid_argument);
  EXPECT_THROW(rbd.parallel({}), std::invalid_argument);
  const auto a = rbd.component("a", constantReliability(0.9));
  EXPECT_THROW(rbd.kOfN(0, {a}), std::invalid_argument);
  EXPECT_THROW(rbd.kOfN(2, {a}), std::invalid_argument);
  EXPECT_THROW(rbd.setRoot(BlockId{42}), std::invalid_argument);
  EXPECT_THROW(rbd.component("bad", ReliabilityFn{}), std::invalid_argument);
  EXPECT_THROW((void)Rbd{}.reliability(1.0), std::logic_error);
}

}  // namespace
}  // namespace nlft::rel
