// Closed-loop integration tests: six nodes, TDMA bus, kernels, TEM, vehicle.
#include "bbw/system_sim.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace nlft::bbw {
namespace {

using util::Duration;
using util::SimTime;

BbwSimConfig baseConfig(NodeType type) {
  BbwSimConfig config;
  config.nodeType = type;
  return config;
}

TEST(BbwSystem, FaultFreeStopNlft) {
  BbwSystemSim sim{baseConfig(NodeType::Nlft)};
  const BbwSimResult result = sim.run();
  EXPECT_TRUE(result.stopped);
  EXPECT_GT(result.stoppingDistanceM, 30.0);
  EXPECT_LT(result.stoppingDistanceM, 80.0);
  EXPECT_GT(result.cuCompletions, 100u);
  EXPECT_GT(result.commandFramesDelivered, 100u);
  EXPECT_TRUE(result.nodesDownAtEnd.empty());
  EXPECT_EQ(result.failSilentEvents, 0u);
  for (std::size_t w = 0; w < kWheelCount; ++w) {
    EXPECT_GT(result.wheelCompletions[w], 100u) << w;
    EXPECT_EQ(result.wheelOmissions[w], 0u) << w;
  }
}

TEST(BbwSystem, FaultFreeStopsAreIdenticalAcrossNodeTypes) {
  const BbwSimResult nlft = BbwSystemSim{baseConfig(NodeType::Nlft)}.run();
  const BbwSimResult fs = BbwSystemSim{baseConfig(NodeType::FailSilent)}.run();
  ASSERT_TRUE(nlft.stopped);
  ASSERT_TRUE(fs.stopped);
  // Same control law, same network: fault-free behaviour must match closely.
  EXPECT_NEAR(nlft.stoppingDistanceM, fs.stoppingDistanceM, 0.5);
}

TEST(BbwSystem, NlftMasksComputationFaultWithoutDegradation) {
  const BbwSimResult clean = BbwSystemSim{baseConfig(NodeType::Nlft)}.run();

  BbwSystemSim faulty{baseConfig(NodeType::Nlft)};
  faulty.injectComputationFault(kWheelNodeBase + 0, SimTime::fromUs(300'000));
  const BbwSimResult result = faulty.run();

  EXPECT_TRUE(result.stopped);
  EXPECT_GE(result.errorsMaskedByTem, 1u);
  EXPECT_TRUE(result.nodesDownAtEnd.empty());
  EXPECT_NEAR(result.stoppingDistanceM, clean.stoppingDistanceM, 0.2);
}

TEST(BbwSystem, NlftMasksDetectedErrorByReplacement) {
  const BbwSimResult clean = BbwSystemSim{baseConfig(NodeType::Nlft)}.run();
  BbwSystemSim faulty{baseConfig(NodeType::Nlft)};
  faulty.injectDetectedError(kWheelNodeBase + 1, SimTime::fromUs(500'000));
  const BbwSimResult result = faulty.run();
  EXPECT_TRUE(result.stopped);
  EXPECT_GE(result.errorsMaskedByTem, 1u);
  EXPECT_NEAR(result.stoppingDistanceM, clean.stoppingDistanceM, 0.2);
}

TEST(BbwSystem, FsNodeDetectedErrorSilencesWheelAndLengthensStop) {
  const BbwSimResult clean = BbwSystemSim{baseConfig(NodeType::FailSilent)}.run();

  BbwSystemSim faulty{baseConfig(NodeType::FailSilent)};
  faulty.injectDetectedError(kWheelNodeBase + 0, SimTime::fromUs(300'000));
  const BbwSimResult result = faulty.run();

  EXPECT_TRUE(result.stopped);
  EXPECT_GE(result.failSilentEvents, 1u);
  // Three-wheel braking for ~3 s (the restart time covers most of the stop).
  EXPECT_GT(result.stoppingDistanceM, clean.stoppingDistanceM * 1.05);
}

TEST(BbwSystem, NlftBeatsFsUnderTheSameFault) {
  BbwSystemSim nlft{baseConfig(NodeType::Nlft)};
  nlft.injectDetectedError(kWheelNodeBase + 0, SimTime::fromUs(300'000));
  const BbwSimResult nlftResult = nlft.run();

  BbwSystemSim fs{baseConfig(NodeType::FailSilent)};
  fs.injectDetectedError(kWheelNodeBase + 0, SimTime::fromUs(300'000));
  const BbwSimResult fsResult = fs.run();

  // The headline of the paper at system scale: the NLFT node masks the
  // transient locally; the FS node drops out and the stop degrades.
  EXPECT_LT(nlftResult.stoppingDistanceM, fsResult.stoppingDistanceM - 1.0);
}

TEST(BbwSystem, KernelErrorSilencesNodeOnBothNodeTypes) {
  for (const NodeType type : {NodeType::Nlft, NodeType::FailSilent}) {
    BbwSystemSim sim{baseConfig(type)};
    sim.injectKernelError(kWheelNodeBase + 2, SimTime::fromUs(200'000));
    const BbwSimResult result = sim.run();
    EXPECT_TRUE(result.stopped) << static_cast<int>(type);
    EXPECT_GE(result.failSilentEvents, 1u);
  }
}

TEST(BbwSystem, CentralUnitFailoverKeepsBraking) {
  const BbwSimResult clean = BbwSystemSim{baseConfig(NodeType::Nlft)}.run();
  BbwSystemSim sim{baseConfig(NodeType::Nlft)};
  sim.injectKernelError(kCuA, SimTime::fromUs(100'000));
  const BbwSimResult result = sim.run();
  EXPECT_TRUE(result.stopped);
  // The partner CU provides the service: braking barely affected.
  EXPECT_NEAR(result.stoppingDistanceM, clean.stoppingDistanceM, 1.0);
}

TEST(BbwSystem, NodeRestartsAndReintegrates) {
  BbwSimConfig config = baseConfig(NodeType::Nlft);
  config.restartTime = Duration::milliseconds(500);
  config.horizon = Duration::seconds(15);
  BbwSystemSim sim{config};
  sim.injectKernelError(kWheelNodeBase + 0, SimTime::fromUs(200'000));
  const BbwSimResult result = sim.run();
  EXPECT_TRUE(result.stopped);
  // With a quick restart, the wheel node is back long before the end.
  EXPECT_TRUE(result.nodesDownAtEnd.empty());
}

TEST(BbwSystem, FsComputationFaultIsSilentDataCorruption) {
  // On a fail-silent node a pure data fault escapes detection: the wrong
  // brake torque reaches the actuator (exactly the coverage gap that makes
  // C_D < 1 in the reliability analysis). The stop still happens -- one
  // wheel briefly brakes with a slightly different torque.
  BbwSystemSim sim{baseConfig(NodeType::FailSilent)};
  sim.injectComputationFault(kWheelNodeBase + 3, SimTime::fromUs(400'000));
  const BbwSimResult result = sim.run();
  EXPECT_TRUE(result.stopped);
  EXPECT_EQ(result.failSilentEvents, 0u);  // nothing detected it
}

TEST(BbwSystem, LostCommandFrameIsBridgedByPreviousValue) {
  // A corrupted CU frame drops one command broadcast; wheel nodes keep
  // braking with the previous value and the stop is essentially unaffected.
  const BbwSimResult clean = BbwSystemSim{baseConfig(NodeType::Nlft)}.run();
  BbwSystemSim noisy{baseConfig(NodeType::Nlft)};
  // Time the corruption so it hits command-carrying heartbeats: with a 4 ms
  // communication cycle and 5 ms control period, heartbeats of cycles
  // starting at t = 4 mod 20 ms carry a fresh command; arming the fault at
  // t = cycleStart - 0.4 ms makes that heartbeat the node's next frame.
  for (int i = 0; i < 5; ++i) {
    noisy.injectBusCorruption(kCuA, SimTime::fromUs(503'600 + i * 20'000));
    noisy.injectBusCorruption(kCuB, SimTime::fromUs(503'600 + i * 20'000));
  }
  const BbwSimResult result = noisy.run();
  EXPECT_TRUE(result.stopped);
  EXPECT_NEAR(result.stoppingDistanceM, clean.stoppingDistanceM, 0.5);
  EXPECT_EQ(result.busFramesDropped, 10u);
  EXPECT_EQ(clean.busFramesDropped, 0u);
  EXPECT_LT(result.commandFramesDelivered, clean.commandFramesDelivered);
}

TEST(BbwSystem, DuplexArbiterDropsPartnerDuplicates) {
  const BbwSimResult result = BbwSystemSim{baseConfig(NodeType::Nlft)}.run();
  // Both CUs broadcast every command; each wheel accepts one copy and drops
  // the partner's.
  EXPECT_GT(result.duplicateCommandsDropped, 100u);
  EXPECT_NEAR(static_cast<double>(result.duplicateCommandsDropped),
              static_cast<double>(result.commandFramesDelivered),
              static_cast<double>(result.commandFramesDelivered) * 0.05);
}

TEST(BbwSystem, SingleCuMeansNoDuplicates) {
  BbwSystemSim sim{baseConfig(NodeType::Nlft)};
  sim.injectKernelError(kCuA, SimTime::fromUs(50'000));
  const BbwSimResult result = sim.run();
  EXPECT_TRUE(result.stopped);
  // After CU-A silences, only CU-B's copies arrive: duplicates stop growing.
  EXPECT_LT(result.duplicateCommandsDropped, result.commandFramesDelivered / 2);
}

TEST(BbwSystem, EmergencyBrakeUsesTheEventTriggeredPath) {
  // Driver is coasting (pedal 0); the emergency press at 0.5 s must reach
  // the wheels through the sporadic task + dynamic segment within a few
  // milliseconds, far quicker than a periodic-command round trip from idle.
  BbwSimConfig config = baseConfig(NodeType::Nlft);
  config.pedalProfile = [](double) { return 0.0; };
  BbwSystemSim sim{config};
  sim.pressEmergencyBrake(SimTime::fromUs(500'000));
  const BbwSimResult result = sim.run();
  EXPECT_TRUE(result.stopped);
  EXPECT_GT(result.emergencyBrakeLatency, Duration{});
  EXPECT_LE(result.emergencyBrakeLatency, Duration::milliseconds(6));
  // Coasted for 0.5 s at ~27.8 m/s before braking: total distance is the
  // coast plus a normal full stop.
  EXPECT_GT(result.stoppingDistanceM, 37.0 + 12.0);
}

TEST(BbwSystem, EmergencyBrakeSurvivesOneCuDown) {
  BbwSimConfig config = baseConfig(NodeType::Nlft);
  config.pedalProfile = [](double) { return 0.0; };
  BbwSystemSim sim{config};
  sim.injectKernelError(kCuA, SimTime::fromUs(100'000));
  sim.pressEmergencyBrake(SimTime::fromUs(500'000));
  const BbwSimResult result = sim.run();
  EXPECT_TRUE(result.stopped);
  EXPECT_GT(result.emergencyBrakeLatency, Duration{});
  EXPECT_LE(result.emergencyBrakeLatency, Duration::milliseconds(6));
}

TEST(BbwSystem, PedalProfileDrivesTheStop) {
  // Half pedal brakes longer than full pedal; a ramped profile sits between.
  BbwSimConfig half = baseConfig(NodeType::Nlft);
  half.pedal = 0.5;
  const double halfDistance = BbwSystemSim{half}.run().stoppingDistanceM;

  BbwSimConfig full = baseConfig(NodeType::Nlft);
  const double fullDistance = BbwSystemSim{full}.run().stoppingDistanceM;

  BbwSimConfig ramp = baseConfig(NodeType::Nlft);
  ramp.pedalProfile = [](double t) { return std::min(1.0, 0.5 + t); };  // full after 0.5 s
  const double rampDistance = BbwSystemSim{ramp}.run().stoppingDistanceM;

  EXPECT_GT(halfDistance, fullDistance + 5.0);
  EXPECT_GT(rampDistance, fullDistance);
  EXPECT_LT(rampDistance, halfDistance);
}

TEST(BbwSystem, SoakTestManySequentialFaultsAllMasked) {
  // A long, gentle stop (quarter pedal, ~9 s) with a fault hitting a
  // different node every 700 ms — twelve transients in one braking episode.
  // An NLFT system masks every one of them; nothing goes down, nothing is
  // omitted, and the stop matches the fault-free run exactly.
  auto configure = [] {
    BbwSimConfig config;
    config.nodeType = NodeType::Nlft;
    config.pedal = 0.25;
    config.horizon = Duration::seconds(25);
    return config;
  };
  const BbwSimResult clean = BbwSystemSim{configure()}.run();
  ASSERT_TRUE(clean.stopped);

  BbwSystemSim sim{configure()};
  for (int i = 0; i < 12; ++i) {
    const net::NodeId node = 1 + static_cast<net::NodeId>(i % 6);
    const SimTime at = SimTime::fromUs(300'000 + i * 700'000);
    if (i % 2 == 0) {
      sim.injectComputationFault(node, at);
    } else {
      sim.injectDetectedError(node, at);
    }
  }
  const BbwSimResult result = sim.run();
  EXPECT_TRUE(result.stopped);
  EXPECT_GE(result.errorsMaskedByTem, 10u);  // late faults may miss the stop window
  EXPECT_EQ(result.failSilentEvents, 0u);
  EXPECT_TRUE(result.nodesDownAtEnd.empty());
  for (std::size_t w = 0; w < kWheelCount; ++w) {
    EXPECT_EQ(result.wheelOmissions[w], 0u) << w;
  }
  EXPECT_NEAR(result.stoppingDistanceM, clean.stoppingDistanceM, 0.3);
}

TEST(BbwSystem, CuFailoverAccountingAndMembership) {
  // Kill CU-A mid-stop and keep the restart outside the horizon so the
  // duplex degradation is visible end to end.
  BbwSimConfig config = baseConfig(NodeType::Nlft);
  config.restartTime = Duration::seconds(60);
  const BbwSimResult clean = BbwSystemSim{baseConfig(NodeType::Nlft)}.run();

  BbwSystemSim sim{config};
  std::vector<std::tuple<net::NodeId, net::NodeId, bool>> transitions;
  sim.membership().setMembershipTap(
      [&](net::NodeId observer, net::NodeId peer, bool member) {
        transitions.emplace_back(observer, peer, member);
      });
  sim.injectKernelError(kCuA, SimTime::fromUs(500'000));
  const BbwSimResult result = sim.run();

  ASSERT_TRUE(result.stopped);
  // The surviving CU keeps commanding: frames are still delivered every
  // period, but the duplicate-drop count collapses once only one copy of
  // each command is on the bus.
  EXPECT_GT(result.commandFramesDelivered, 100u);
  EXPECT_GT(clean.duplicateCommandsDropped, 0u);
  EXPECT_LT(result.duplicateCommandsDropped, clean.duplicateCommandsDropped);
  EXPECT_GT(result.duplicateCommandsDropped, 0u);  // duplex until the kill
  EXPECT_EQ(result.failSilentEvents, 1u);
  EXPECT_TRUE(result.nodesDownAtEnd.count(kCuA));

  // Every live observer expelled CU-A from its membership view; nobody was
  // re-admitted (the restart is outside the horizon).
  std::set<net::NodeId> expellers;
  for (const auto& [observer, peer, member] : transitions) {
    EXPECT_EQ(peer, kCuA);
    EXPECT_FALSE(member);
    expellers.insert(observer);
  }
  EXPECT_EQ(expellers, (std::set<net::NodeId>{kCuB, 3, 4, 5, 6}));
  EXPECT_FALSE(sim.membership().isMember(kCuB, kCuA));
  EXPECT_TRUE(sim.membership().isMember(kCuB, kWheelNodeBase));
}

TEST(BbwSystem, DeterministicReplay) {
  auto distance = [] {
    BbwSystemSim sim{baseConfig(NodeType::Nlft)};
    sim.injectDetectedError(kWheelNodeBase + 1, SimTime::fromUs(350'000));
    return sim.run().stoppingDistanceM;
  };
  EXPECT_DOUBLE_EQ(distance(), distance());
}

}  // namespace
}  // namespace nlft::bbw
