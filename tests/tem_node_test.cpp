// The NlftNode facade: policy selection, silent-hook wiring, restart, and
// permanent-fault suspicion shutting the node down.
#include "core/node.hpp"

#include <gtest/gtest.h>

namespace nlft::tem {
namespace {

using util::Duration;
using util::SimTime;

CopyPlan good(Duration time, std::uint32_t value = 1) {
  CopyPlan plan;
  plan.executionTime = time;
  plan.result = {value};
  return plan;
}

rt::TaskConfig taskConfig(const char* name, Duration wcet, Duration period) {
  rt::TaskConfig cfg;
  cfg.name = name;
  cfg.priority = 5;
  cfg.period = period;
  cfg.wcet = wcet;
  return cfg;
}

TEST(NlftNode, NlftPolicyMasksFaults) {
  sim::Simulator simulator;
  NlftNode node{simulator};
  int results = 0;
  node.setResultSink([&](const rt::JobResult&) { ++results; });
  const rt::TaskId task = node.addCriticalTask(
      taskConfig("t", Duration::milliseconds(1), Duration::milliseconds(10)),
      [](const CopyContext& ctx) {
        CopyPlan plan = good(Duration::milliseconds(1), 7);
        if (ctx.jobIndex == 1 && ctx.copyIndex == 2) plan.result[0] ^= 1;  // one fault
        return plan;
      });
  node.start();
  simulator.runUntil(SimTime::fromUs(45'000));
  EXPECT_EQ(results, 5);
  EXPECT_EQ(node.temStats(task).maskedByVote, 1u);
  EXPECT_FALSE(node.silent());
  EXPECT_FALSE(node.permanentFaultSuspected());
}

TEST(NlftNode, FailSilentPolicyStopsOnError) {
  sim::Simulator simulator;
  NodeConfig config;
  config.policy = NodePolicy::FailSilent;
  NlftNode node{simulator, config};
  bool silent = false;
  node.setSilentHook([&] { silent = true; });
  node.addCriticalTask(taskConfig("t", Duration::milliseconds(1), Duration::milliseconds(10)),
                       [](const CopyContext& ctx) {
                         CopyPlan plan = good(Duration::milliseconds(1));
                         if (ctx.jobIndex == 2) plan.end = CopyPlan::End::DetectedError;
                         return plan;
                       });
  node.start();
  simulator.runUntil(SimTime::fromUs(60'000));
  EXPECT_TRUE(silent);
  EXPECT_TRUE(node.silent());
  EXPECT_EQ(node.policy(), NodePolicy::FailSilent);
  EXPECT_THROW((void)node.temStats(rt::TaskId{0}), std::logic_error);
}

TEST(NlftNode, PermanentFaultSuspicionSilencesNode) {
  sim::Simulator simulator;
  NodeConfig config;
  config.permanentFaultThreshold = 3;
  NlftNode node{simulator, config};
  bool silent = false;
  node.setSilentHook([&] { silent = true; });
  // A stuck-at fault corrupts copy 2 of EVERY job: masked each time, but the
  // streak betrays a permanent fault after 3 jobs.
  node.addCriticalTask(taskConfig("t", Duration::milliseconds(1), Duration::milliseconds(10)),
                       [](const CopyContext& ctx) {
                         CopyPlan plan = good(Duration::milliseconds(1));
                         if (ctx.copyIndex == 2) plan.result[0] ^= 4;
                         return plan;
                       });
  node.start();
  simulator.runUntil(SimTime::fromUs(100'000));
  EXPECT_TRUE(node.permanentFaultSuspected());
  EXPECT_TRUE(silent);
  EXPECT_TRUE(node.silent());
}

TEST(NlftNode, RestartAfterTransientDiagnosis) {
  sim::Simulator simulator;
  NlftNode node{simulator};
  int results = 0;
  node.setResultSink([&](const rt::JobResult&) { ++results; });
  node.addCriticalTask(taskConfig("t", Duration::milliseconds(1), Duration::milliseconds(10)),
                       [](const CopyContext&) { return good(Duration::milliseconds(1)); });
  node.start();
  simulator.scheduleAfter(Duration::milliseconds(15), [&] {
    node.reportKernelError({rt::ErrorEvent::Source::HardwareException, 0});
  });
  simulator.scheduleAfter(Duration::milliseconds(35), [&] { node.restart(); });
  simulator.runUntil(SimTime::fromUs(70'000));
  EXPECT_FALSE(node.silent());
  // Jobs at 0, 10 before the error; 35, 45, 55, 65 after the restart.
  EXPECT_EQ(results, 6);
}

TEST(NlftNode, NonCriticalTaskShutdownDoesNotSilenceNode) {
  sim::Simulator simulator;
  NlftNode node{simulator};
  int criticalResults = 0;
  node.setResultSink([&](const rt::JobResult& result) {
    if (result.task == rt::TaskId{0}) ++criticalResults;
  });
  node.addCriticalTask(taskConfig("critical", Duration::milliseconds(1), Duration::milliseconds(10)),
                       [](const CopyContext&) { return good(Duration::milliseconds(1)); });
  const rt::TaskId diag = node.addNonCriticalTask(
      taskConfig("diag", Duration::milliseconds(1), Duration::milliseconds(10)),
      [](const CopyContext& ctx) {
        CopyPlan plan = good(Duration::milliseconds(1));
        if (ctx.jobIndex == 1) plan.end = CopyPlan::End::DetectedError;
        return plan;
      });
  node.start();
  simulator.runUntil(SimTime::fromUs(55'000));
  EXPECT_FALSE(node.silent());
  EXPECT_EQ(criticalResults, 6);
  EXPECT_EQ(node.taskStats(diag).completions, 1u);
  EXPECT_EQ(node.taskStats(diag).releases, 2u);
}

TEST(NlftNode, ReportedTaskErrorTriggersTemRecovery) {
  sim::Simulator simulator;
  NlftNode node{simulator};
  const rt::TaskId task = node.addCriticalTask(
      taskConfig("t", Duration::milliseconds(4), Duration::milliseconds(20)),
      [](const CopyContext&) { return good(Duration::milliseconds(4)); });
  node.start();
  simulator.scheduleAfter(Duration::milliseconds(1), [&] {
    node.reportTaskError(task, {rt::ErrorEvent::Source::EccUncorrectable, 0});
  });
  simulator.runUntil(SimTime::fromUs(19'000));
  EXPECT_EQ(node.temStats(task).maskedByReplacement, 1u);
  EXPECT_EQ(node.taskStats(task).completions, 1u);
}

}  // namespace
}  // namespace nlft::tem
