// Exhaustive enumeration of TEM behaviour: every combination of
// {clean, corrupted, EDM-error} across the three possible copies of a job
// (27 patterns), checked against an independently written reference model
// of the Section 2.5 protocol. Corruptions are pairwise distinct (a second
// fault never reproduces the first one's wrong value).
#include <gtest/gtest.h>

#include "core/tem.hpp"

namespace nlft::tem {
namespace {

using rt::TaskId;
using util::Duration;
using util::SimTime;

enum class CopyFate : int { Clean = 0, Corrupt = 1, EdmError = 2 };

constexpr std::uint32_t kGood = 42;

std::uint32_t copyValue(CopyFate fate, int copyIndex) {
  return fate == CopyFate::Corrupt ? 100u + static_cast<std::uint32_t>(copyIndex) : kGood;
}

struct Expected {
  enum class Kind : std::uint8_t {
    DeliveredClean,
    MaskedByVote,
    MaskedByReplacement,
    OmissionVoteFailed,
    OmissionNoTime,
  } kind;
  std::uint32_t value = kGood;  // meaningful for delivered kinds
};

/// Reference model of the TEM protocol (written against the paper's text,
/// not against the implementation).
Expected reference(const std::array<CopyFate, 3>& pattern) {
  std::vector<std::uint32_t> results;
  bool sawMismatch = false;
  bool sawEdm = false;
  for (int copy = 1; copy <= 3; ++copy) {
    const CopyFate fate = pattern[copy - 1];
    if (fate == CopyFate::EdmError) {
      // The copy produced nothing: no comparison/vote happens now. If this
      // was the last permitted copy, the job is omitted for lack of time —
      // a "vote failed" omission requires three actual results.
      sawEdm = true;
      continue;
    }
    results.push_back(copyValue(fate, copy));
    if (results.size() >= 2) {
      if (results.size() == 2 && results[0] != results[1]) sawMismatch = true;
      // Majority vote over collected results.
      for (std::size_t i = 0; i < results.size(); ++i) {
        for (std::size_t j = i + 1; j < results.size(); ++j) {
          if (results[i] == results[j]) {
            if (!sawMismatch && !sawEdm) return {Expected::Kind::DeliveredClean, results[i]};
            if (sawMismatch && results.size() >= 3)
              return {Expected::Kind::MaskedByVote, results[i]};
            return {Expected::Kind::MaskedByReplacement, results[i]};
          }
        }
      }
      if (copy == 3) return {Expected::Kind::OmissionVoteFailed};
    }
  }
  return {Expected::Kind::OmissionNoTime};  // copy budget exhausted
}

class TemExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(TemExhaustive, MatchesReferenceModel) {
  const int code = GetParam();
  const std::array<CopyFate, 3> pattern{static_cast<CopyFate>(code % 3),
                                        static_cast<CopyFate>((code / 3) % 3),
                                        static_cast<CopyFate>((code / 9) % 3)};

  sim::Simulator simulator;
  rt::Cpu cpu{simulator};
  rt::RtKernel kernel{simulator, cpu};
  TemExecutor tem{kernel};

  rt::TaskConfig config;
  config.name = "exhaustive";
  config.priority = 1;
  config.period = Duration::milliseconds(40);
  config.wcet = Duration::milliseconds(2);
  const TaskId task = tem.addCriticalTask(config, [&pattern](const CopyContext& ctx) {
    const CopyFate fate = pattern[std::min(ctx.copyIndex, 3) - 1];
    CopyPlan plan;
    plan.executionTime = Duration::milliseconds(2);
    if (fate == CopyFate::EdmError) {
      plan.end = CopyPlan::End::DetectedError;
      plan.executionTime = Duration::milliseconds(1);
    } else {
      plan.result = {copyValue(fate, ctx.copyIndex)};
    }
    return plan;
  });

  std::optional<std::uint32_t> delivered;
  kernel.setResultSink([&](const rt::JobResult& r) { delivered = r.data[0]; });
  kernel.start();
  simulator.runUntil(SimTime::fromUs(39'000));

  const Expected expected = reference(pattern);
  const TemStats& stats = tem.stats(task);
  switch (expected.kind) {
    case Expected::Kind::DeliveredClean:
      ASSERT_TRUE(delivered.has_value());
      EXPECT_EQ(*delivered, expected.value);
      EXPECT_EQ(stats.deliveredCleanly, 1u);
      break;
    case Expected::Kind::MaskedByVote:
      ASSERT_TRUE(delivered.has_value());
      EXPECT_EQ(*delivered, expected.value);
      EXPECT_EQ(stats.maskedByVote, 1u);
      break;
    case Expected::Kind::MaskedByReplacement:
      ASSERT_TRUE(delivered.has_value());
      EXPECT_EQ(*delivered, expected.value);
      EXPECT_EQ(stats.maskedByReplacement, 1u);
      break;
    case Expected::Kind::OmissionVoteFailed:
      EXPECT_FALSE(delivered.has_value());
      EXPECT_EQ(stats.omissionsVoteFailed, 1u);
      break;
    case Expected::Kind::OmissionNoTime:
      EXPECT_FALSE(delivered.has_value());
      EXPECT_EQ(stats.omissionsNoTime, 1u);
      break;
  }
  // A delivered result is never a corrupted value, in ANY pattern: with
  // pairwise-distinct corruptions, only the good value can win a vote.
  if (delivered) {
    EXPECT_EQ(*delivered, kGood);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, TemExhaustive, ::testing::Range(0, 27));

}  // namespace
}  // namespace nlft::tem
