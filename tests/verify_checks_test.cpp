// Unit and mutation tests of the system-level static verifier.
//
// The mutation half is the point: starting from the known-good registered
// BBW configuration, each test corrupts ONE field the way a real deployment
// mistake would (duplicate TDMA slot owner, budget under the derived WCET,
// dropped CU replica, overlapping MMU regions, ...) and asserts the verifier
// refutes exactly that corruption with the expected check id — no silent
// passes, no unrelated collateral errors hiding the real one.
#include "verify/checks.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bbw/system_sim.hpp"
#include "verify/bbw_configs.hpp"
#include "verify/holistic.hpp"

namespace nlft::verify {
namespace {

using util::Duration;

TaskSpec& findTask(SystemConfig& config, net::NodeId node, const std::string& name) {
  for (NodeSpec& spec : config.nodes) {
    if (spec.id != node) continue;
    for (TaskSpec& task : spec.tasks) {
      if (task.name == name) return task;
    }
  }
  throw std::logic_error("no such task");
}

/// Asserts the report has >= 1 Error finding with the given check id and
/// that every OTHER Error finding (if any) shares that id — the mutation
/// must be diagnosed precisely.
void expectOnlyError(const Report& report, const std::string& check) {
  EXPECT_FALSE(report.passed()) << report.format();
  const auto flagged = report.byCheck(check);
  EXPECT_FALSE(flagged.empty()) << "expected finding " << check << "\n" << report.format();
  for (const Finding& finding : report.findings) {
    if (finding.severity != Severity::Error) continue;
    EXPECT_EQ(finding.check, check) << report.format();
  }
}

TEST(VerifyBbw, RegisteredConfigurationsPass) {
  for (const SystemConfig& config : registeredConfigurations()) {
    const Report report = verifyConfiguration(config);
    EXPECT_TRUE(report.passed()) << report.format();
    // The certificates carry the complete latency composition.
    const obs::JsonValue& e2e = report.certificates.get("e2e");
    EXPECT_GT(e2e.get("pedal_to_apply_us").asInt(), 0);
    EXPECT_LE(e2e.get("pedal_to_apply_us").asInt(), e2e.get("brake_deadline_us").asInt());
  }
}

TEST(VerifyBbw, NlftBoundMatchesHandComputation) {
  // CU: TEM demand 800 us + emergency interference 300 us + one recovery
  // 400 us = 1500 us; wheel: 600 us + 300 us recovery = 900 us; phasing one
  // 4 ms cycle + one 500 us slot; sampling one 5 ms period per hop.
  const Report report = verifyConfiguration(bbwNlftConfig());
  const obs::JsonValue& e2e = report.certificates.get("e2e");
  EXPECT_EQ(e2e.get("cu_response_us").asInt(), 1500);
  EXPECT_EQ(e2e.get("wheel_response_us").asInt(), 900);
  EXPECT_EQ(e2e.get("bus_phasing_us").asInt(), 4500);
  EXPECT_EQ(e2e.get("sample_to_apply_us").asInt(), 11900);
  EXPECT_EQ(e2e.get("pedal_to_apply_us").asInt(), 16900);
}

TEST(VerifyBbw, JsonOutputIsDeterministic) {
  const Report a = verifyConfiguration(bbwNlftConfig());
  const Report b = verifyConfiguration(bbwNlftConfig());
  EXPECT_EQ(a.toJson().dump(2), b.toJson().dump(2));
  // Schema spot-checks: summary counts findings, severities serialise.
  const obs::JsonValue json = a.toJson();
  EXPECT_EQ(json.get("config").asString(), "bbw-nlft");
  EXPECT_EQ(static_cast<std::size_t>(json.get("summary").get("errors").asInt()),
            a.countAt(Severity::Error));
  EXPECT_EQ(json.get("findings").size(), a.findings.size());
}

TEST(VerifyBbw, FindingsRankedErrorsFirst) {
  Report report;
  report.add("b.check", Severity::Info, "s", "m");
  report.add("a.check", Severity::Warning, "s", "m");
  report.add("z.check", Severity::Error, "s2", "m");
  report.add("z.check", Severity::Error, "s1", "m");
  report.sortFindings();
  ASSERT_EQ(report.findings.size(), 4u);
  EXPECT_EQ(report.findings[0].subject, "s1");  // errors first, ties by subject
  EXPECT_EQ(report.findings[1].subject, "s2");
  EXPECT_EQ(report.findings[2].check, "a.check");
  EXPECT_EQ(report.findings[3].check, "b.check");
}

// --- Seeded mutations (the ISSUE's four, plus the rest of the catalogue) ---

TEST(VerifyMutation, DuplicateSlotOwnerDetected) {
  SystemConfig config = bbwNlftConfig();
  config.bus.staticSchedule[2] = config.bus.staticSchedule[0];  // CU A owns two
  const Report report = verifyConfiguration(config);
  expectOnlyError(report, "tdma.slot-ownership");
  // Both sides of the corruption are named: the double owner and the starved
  // wheel node.
  EXPECT_EQ(report.byCheck("tdma.slot-ownership").size(), 2u) << report.format();
}

TEST(VerifyMutation, BudgetBelowDerivedWcetDetected) {
  SystemConfig config = bbwNlftConfig();
  TaskSpec& wheel = findTask(config, bbw::kWheelNodeBase, "wheel-control");
  ASSERT_GT(wheel.wcetInstructions, 0u);
  wheel.budgetInstructions = wheel.wcetInstructions - 1;
  expectOnlyError(verifyConfiguration(config), "sched.budget-below-wcet");
}

TEST(VerifyMutation, DroppedCuReplicaDetected) {
  SystemConfig config = bbwNlftConfig();
  std::erase_if(config.nodes, [](const NodeSpec& node) { return node.id == bbw::kCuB; });
  const Report report = verifyConfiguration(config);
  EXPECT_FALSE(report.passed()) << report.format();
  // The missing replica surfaces as a wiring error; the freed slot is
  // collateral the verifier must ALSO name (an unknown owner now transmits).
  EXPECT_FALSE(report.byCheck("deploy.duplex-cu").empty()) << report.format();
  EXPECT_FALSE(report.byCheck("tdma.unknown-owner").empty()) << report.format();
}

TEST(VerifyMutation, OverlappingMmuRegionsDetected) {
  SystemConfig config = bbwNlftConfig();
  TaskSpec& wheel = findTask(config, bbw::kWheelNodeBase, "wheel-control");
  ASSERT_FALSE(wheel.mmuRegions.empty());
  hw::MmuRegion intruder = wheel.mmuRegions.front();
  intruder.owner = wheel.mmuRegions.front().owner + 1;  // a different task...
  intruder.permissions = hw::accessMask(hw::Access::Write);
  intruder.name = "intruder";
  wheel.mmuRegions.push_back(intruder);  // ...writable into the same range
  expectOnlyError(verifyConfiguration(config), "task.mmu-overlap");
}

TEST(VerifyMutation, ShrunkDeadlineMakesTemTaskUnschedulable) {
  SystemConfig config = bbwNlftConfig();
  // 1 ms deadline < the 1.5 ms fault-tolerant response: TEM triple execution
  // no longer fits.
  findTask(config, bbw::kCuA, "brake-distribution").deadline = Duration::milliseconds(1);
  expectOnlyError(verifyConfiguration(config), "sched.unschedulable");
}

TEST(VerifyMutation, OversizedFrameDetected) {
  SystemConfig config = bbwNlftConfig();
  for (NodeSpec& node : config.nodes) {
    if (node.id == bbw::kCuA) node.maxFrameWords = 200;  // 6464 bits > 500 us slot
  }
  expectOnlyError(verifyConfiguration(config), "tdma.frame-width");
}

TEST(VerifyMutation, DriftyClocksBreakSlotGuard) {
  SystemConfig config = bbwNlftConfig();
  config.clockSync.maxDriftPpm = 40000.0;  // 2*rho*R ~ 320 us of a 500 us slot
  expectOnlyError(verifyConfiguration(config), "tdma.guard-precision");
}

TEST(VerifyMutation, SlowMembershipMissesDetectionDeadline) {
  SystemConfig config = bbwNlftConfig();
  config.membership.missTolerance = 4;  // 5 cycles * 4 ms = 20 ms > 10 ms
  expectOnlyError(verifyConfiguration(config), "sync.membership-timeout");
}

TEST(VerifyMutation, TightWatchdogWouldTripHealthyKernel) {
  SystemConfig config = bbwNlftConfig();
  for (NodeSpec& node : config.nodes) node.watchdogTimeout = Duration::milliseconds(2);
  expectOnlyError(verifyConfiguration(config), "sync.watchdog");
}

TEST(VerifyMutation, UnwiredVoterDetected) {
  SystemConfig config = bbwNlftConfig();
  for (NodeSpec& node : config.nodes) {
    if (node.id == bbw::kWheelNodeBase + 1) node.votesOnGroup = -1;
  }
  expectOnlyError(verifyConfiguration(config), "deploy.voter-wiring");
}

TEST(VerifyMutation, MissingSignaturePathsDetected) {
  SystemConfig config = bbwNlftConfig();
  findTask(config, bbw::kWheelNodeBase + 2, "wheel-control").legalPaths = 0;
  expectOnlyError(verifyConfiguration(config), "task.signatures");
}

TEST(VerifyMutation, MissingWheelNodeDetected) {
  SystemConfig config = bbwNlftConfig();
  std::erase_if(config.nodes,
                [](const NodeSpec& node) { return node.id == bbw::kWheelNodeBase + 3; });
  const Report report = verifyConfiguration(config);
  EXPECT_FALSE(report.passed()) << report.format();
  EXPECT_FALSE(report.byCheck("deploy.redundancy").empty()) << report.format();
}

TEST(VerifyMutation, EmptyScheduleIsFatal) {
  SystemConfig config = bbwNlftConfig();
  config.bus.staticSchedule.clear();
  const Report report = verifyConfiguration(config);
  EXPECT_FALSE(report.byCheck("tdma.empty-schedule").empty());
}

TEST(VerifyMutation, DivergedReplicaTaskSetsDetected) {
  SystemConfig config = bbwNlftConfig();
  findTask(config, bbw::kCuB, "brake-distribution").singleCopyWcet =
      Duration::microseconds(500);
  const Report report = verifyConfiguration(config);
  EXPECT_FALSE(report.byCheck("deploy.replica-divergence").empty()) << report.format();
}

// --- Degraded-mode paths of the holistic end-to-end analysis -------------
//
// The 13 seeded mutations above exercise the fault-free checks; the tests
// below cover the single-replica-loss branch of checkEndToEnd (zero-slack
// boundary, unbounded survivor) and the bus-phase wraparound term of the
// composed bound.

TEST(VerifyDegraded, ZeroSlackSingleReplicaLossSitsExactlyOnTheDeadline) {
  SystemConfig config = bbwNlftConfig();
  const Report base = verifyConfiguration(config);
  const obs::JsonValue& e2e = base.certificates.get("e2e");
  const std::int64_t full = e2e.get("pedal_to_apply_us").asInt();
  const obs::JsonValue& degraded = e2e.get("degraded_pedal_to_apply_us");
  std::int64_t worstDegraded = 0;
  for (const auto& [cu, latency] : degraded.members()) {
    worstDegraded = std::max(worstDegraded, latency.asInt());
  }
  // The symmetric duplex loses nothing analytically when one replica dies:
  // the FT-RTA response of the survivor IS the full-chain worst case, so
  // the degraded latency equals the full bound — zero slack between them.
  ASSERT_EQ(degraded.members().size(), 2u);
  EXPECT_EQ(worstDegraded, full);

  // Deadline exactly at the degraded bound: zero slack, still certified
  // (the checks are strict-exceed), no e2e.degraded or e2e.deadline error.
  config.vehicleBrakeDeadline = Duration::microseconds(worstDegraded);
  const Report zeroSlack = verifyConfiguration(config);
  EXPECT_TRUE(zeroSlack.passed()) << zeroSlack.format();
  EXPECT_TRUE(zeroSlack.byCheck("e2e.degraded").empty()) << zeroSlack.format();
  // 100% of the budget consumed: the margin warning must flag it.
  EXPECT_FALSE(zeroSlack.byCheck("e2e.margin").empty()) << zeroSlack.format();

  // One microsecond less and the degraded mode (and with it the full chain,
  // since they coincide here) busts the deadline.
  config.vehicleBrakeDeadline = Duration::microseconds(worstDegraded - 1);
  const Report busted = verifyConfiguration(config);
  EXPECT_FALSE(busted.passed());
  EXPECT_FALSE(busted.byCheck("e2e.degraded").empty()) << busted.format();
  EXPECT_FALSE(busted.byCheck("e2e.deadline").empty()) << busted.format();
  // Both single-CU-loss modes are past the deadline.
  EXPECT_EQ(busted.byCheck("e2e.degraded").size(), 2u) << busted.format();
}

TEST(VerifyDegraded, ReplicaLossLeavingNoProducerIsUnboundedNotSilent) {
  // Asymmetric deployment: only CU-A still carries the producer task. The
  // FULL chain remains bounded (CU-A closes it), but losing CU-A leaves no
  // producer anywhere — the degraded check must refuse to certify rather
  // than skip the mode.
  SystemConfig config = bbwNlftConfig();
  for (NodeSpec& node : config.nodes) {
    if (node.id != bbw::kCuB) continue;
    std::erase_if(node.tasks,
                  [&](const TaskSpec& task) { return task.name == config.producerTask; });
  }
  const Report report = verifyConfiguration(config);
  EXPECT_FALSE(report.passed());
  // The full chain kept its bound, so this is NOT the e2e.unbounded path.
  EXPECT_TRUE(report.byCheck("e2e.unbounded").empty()) << report.format();
  bool unboundedDegraded = false;
  for (const Finding& finding : report.byCheck("e2e.degraded")) {
    unboundedDegraded =
        unboundedDegraded ||
        finding.message.find("leaves no bounded") != std::string::npos;
  }
  EXPECT_TRUE(unboundedDegraded) << report.format();
}

TEST(VerifyDegraded, BusPhasingCoversTheWraparoundAtTheFrameBoundary) {
  const SystemConfig config = bbwNlftConfig();
  const auto bound = computeEndToEndBound(config);
  ASSERT_TRUE(bound.has_value());
  const std::int64_t cycleUs = config.cycleLength().us();
  const std::int64_t slotUs = config.bus.slotLength.us();
  ASSERT_GT(cycleUs, 0);
  EXPECT_EQ(bound->busPhasing.us(), cycleUs + slotUs);

  // First static slot owned by CU-A within the cycle.
  std::int64_t slotStartUs = -1;
  for (std::size_t s = 0; s < config.bus.staticSchedule.size(); ++s) {
    if (config.bus.staticSchedule[s] == bbw::kCuA) {
      slotStartUs = static_cast<std::int64_t>(s) * slotUs;
      break;
    }
  }
  ASSERT_GE(slotStartUs, 0);

  // Sweep the command-ready instant over two full cycles (so the phase
  // wraps the frame boundary at least once): a command ready at phase r is
  // transmitted in the first owned slot starting STRICTLY after r and is
  // on the wire for the whole slot.
  std::int64_t worstUs = 0;
  std::int64_t worstPhaseUs = -1;
  for (std::int64_t readyUs = 0; readyUs < 2 * cycleUs; ++readyUs) {
    std::int64_t startUs = slotStartUs;
    while (startUs <= readyUs) startUs += cycleUs;
    const std::int64_t latencyUs = startUs + slotUs - readyUs;
    EXPECT_LE(latencyUs, bound->busPhasing.us()) << "ready at " << readyUs;
    if (latencyUs > worstUs) {
      worstUs = latencyUs;
      worstPhaseUs = readyUs % cycleUs;
    }
  }
  // The bound is TIGHT, and the worst case is a command that becomes ready
  // exactly at its slot's start — it misses the frame and wraps the whole
  // cycle. A bound computed without the wraparound term (slot only, or
  // cycle only) would be refuted by this sweep.
  EXPECT_EQ(worstUs, cycleUs + slotUs);
  EXPECT_EQ(worstPhaseUs, slotStartUs);
}

}  // namespace
}  // namespace nlft::verify
