// Correlated-fault extension of the Monte-Carlo model (the paper excludes
// correlated faults; this quantifies what that assumption is worth).
#include <gtest/gtest.h>

#include "bbw/markov_models.hpp"
#include "sysmodel/montecarlo.hpp"

namespace nlft::sys {
namespace {

constexpr double kYear = 8760.0;

SystemSpec duplexSpec(NodeBehavior behavior, double correlatedFraction) {
  SystemSpec spec;
  spec.behavior = behavior;
  spec.groups = {{"cu", 2, 1}};
  spec.correlation.correlatedFraction = correlatedFraction;
  return spec;
}

double oneYearReliability(const SystemSpec& spec, std::uint64_t seed) {
  MonteCarloConfig config;
  config.trials = 30000;
  config.seed = seed;
  config.checkpointHours = {kYear};
  return estimateReliability(spec, config).checkpoints[0].reliability.proportion;
}

TEST(CorrelatedFaults, ZeroCorrelationRecoversIndependentModel) {
  const double mc = oneYearReliability(duplexSpec(NodeBehavior::Nlft, 0.0), 41);
  const auto chain = bbw::centralUnitChain(bbw::NodeType::Nlft,
                                           bbw::ReliabilityParameters::paperDefaults());
  EXPECT_NEAR(mc, chain.reliability(kYear), 0.012);
}

TEST(CorrelatedFaults, CorrelationHurtsDuplexReliability) {
  const double independent = oneYearReliability(duplexSpec(NodeBehavior::FailSilent, 0.0), 42);
  const double correlated = oneYearReliability(duplexSpec(NodeBehavior::FailSilent, 0.5), 42);
  EXPECT_LT(correlated, independent - 0.01);
}

TEST(CorrelatedFaults, ReliabilityMonotoneInCorrelation) {
  double previous = 1.0;
  for (double fraction : {0.0, 0.2, 0.5, 1.0}) {
    const double r = oneYearReliability(duplexSpec(NodeBehavior::FailSilent, fraction), 43);
    EXPECT_LE(r, previous + 0.01) << fraction;
    previous = r;
  }
}

TEST(CorrelatedFaults, NlftMasksItsShareOfCorrelatedHits) {
  // A correlated transient hits both CU nodes, but each NLFT node still
  // masks its copy with probability P_T: with P_T = 0.9 most correlated
  // hits are survived, whereas FS duplexes lose both channels at once.
  const double fs = oneYearReliability(duplexSpec(NodeBehavior::FailSilent, 0.3), 44);
  const double nlft = oneYearReliability(duplexSpec(NodeBehavior::Nlft, 0.3), 44);
  EXPECT_GT(nlft, fs + 0.05);
}

TEST(CorrelatedFaults, NlftAdvantageGrowsWithCorrelation) {
  const double gapIndependent =
      oneYearReliability(duplexSpec(NodeBehavior::Nlft, 0.0), 45) -
      oneYearReliability(duplexSpec(NodeBehavior::FailSilent, 0.0), 45);
  const double gapCorrelated =
      oneYearReliability(duplexSpec(NodeBehavior::Nlft, 0.5), 45) -
      oneYearReliability(duplexSpec(NodeBehavior::FailSilent, 0.5), 45);
  // The paper argues NLFT "improves the robustness of the system when both
  // nodes are affected by correlated or near-coincident transient faults"
  // (Section 1) — quantified here.
  EXPECT_GT(gapCorrelated, gapIndependent);
}

}  // namespace
}  // namespace nlft::sys
