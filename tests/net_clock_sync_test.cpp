#include "net/clock_sync.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nlft::net {
namespace {

using util::Duration;
using util::SimTime;

constexpr Duration kResync = Duration::milliseconds(100);

TEST(DriftingClock, ReadingFollowsRateAndOffset) {
  DriftingClock clock{100.0, 500.0};  // +100 ppm, 500 us ahead
  EXPECT_DOUBLE_EQ(clock.readAt(SimTime::zero()), 500.0);
  // After 1 s of global time: 500 + 1e6 * 1.0001.
  EXPECT_NEAR(clock.readAt(SimTime::fromUs(1'000'000)), 500.0 + 1'000'100.0, 1e-6);
  clock.adjust(-500.0);
  EXPECT_NEAR(clock.readAt(SimTime::zero()), 0.0, 1e-9);
}

TEST(ClockSync, DriftingClocksDivergeWithoutSync) {
  sim::Simulator simulator;
  ClockSyncService sync{simulator, kResync, 0};
  sync.addClock({+100.0, 0.0});
  sync.addClock({-100.0, 0.0});
  // start() never called: skew grows linearly (200 ppm * 10 s = 2000 us).
  simulator.runUntil(SimTime::fromUs(10'000'000));
  EXPECT_NEAR(sync.maxSkewUs(), 2000.0, 1.0);
}

TEST(ClockSync, ConvergesAndHoldsPrecisionBound) {
  sim::Simulator simulator;
  ClockSyncService sync{simulator, kResync, 0};
  util::Rng rng{7};
  double maxDrift = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double drift = rng.uniform(-100.0, 100.0);
    maxDrift = std::max(maxDrift, std::abs(drift));
    sync.addClock({drift, rng.uniform(-300.0, 300.0)});
  }
  sync.start();
  simulator.runUntil(SimTime::fromUs(5'000'000));
  EXPECT_GT(sync.roundsCompleted(), 40u);
  // Classic bound: skew <= ~2 * rho * R after convergence (plus margin).
  const double bound = 2.0 * maxDrift * 1e-6 * static_cast<double>(kResync.us()) + 1.0;
  EXPECT_LE(sync.maxSkewUs(), bound);
}

TEST(ClockSync, InitialOffsetsAreWipedOut) {
  sim::Simulator simulator;
  ClockSyncService sync{simulator, kResync, 0};
  sync.addClock({0.0, 10'000.0});  // 10 ms apart, no drift
  sync.addClock({0.0, -10'000.0});
  sync.addClock({0.0, 0.0});
  sync.start();
  simulator.runUntil(SimTime::fromUs(1'000'000));
  EXPECT_LE(sync.maxSkewUs(), 1e-6);  // exact convergence without drift
}

TEST(ClockSync, ToleratesOneByzantineClock) {
  sim::Simulator simulator;
  ClockSyncService sync{simulator, kResync, /*faultyTolerated=*/1};
  util::Rng rng{9};
  double maxDrift = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double drift = rng.uniform(-50.0, 50.0);
    maxDrift = std::max(maxDrift, std::abs(drift));
    sync.addClock({drift, rng.uniform(-200.0, 200.0)});
  }
  const std::size_t traitor = sync.addClock({0.0, 0.0});
  // The traitor reports wild, alternating readings.
  int phase = 0;
  sync.setByzantine(traitor, [&phase](double honest) {
    return honest + ((phase++ % 2) ? 5e7 : -5e7);
  });
  sync.start();
  simulator.runUntil(SimTime::fromUs(5'000'000));
  const double bound = 2.0 * maxDrift * 1e-6 * static_cast<double>(kResync.us()) + 1.0;
  EXPECT_LE(sync.maxSkewUs(), bound);  // honest clocks stay tight regardless
}

TEST(ClockSync, WithoutFtaTheByzantineClockWreaksHavoc) {
  // Control experiment: k = 0 and the same traitor — the average chases the
  // wild readings and the honest clocks are dragged apart or away.
  sim::Simulator simulator;
  ClockSyncService sync{simulator, kResync, 0};
  sync.addClock({10.0, 0.0});
  sync.addClock({-10.0, 50.0});
  const std::size_t traitor = sync.addClock({0.0, 0.0});
  int phase = 0;
  sync.setByzantine(traitor, [&phase](double honest) {
    return honest + ((phase++ % 2) ? 5e7 : -5e7);
  });
  sync.start();
  simulator.runUntil(SimTime::fromUs(2'000'000));
  // The two honest clocks get identical corrections, so their mutual skew
  // stays small — but their ABSOLUTE error explodes. Detect it against an
  // ideal reference clock (drift 0, offset 0): reading should be ~ now.
  const double ideal = static_cast<double>(simulator.now().us());
  const double actual = sync.clock(0).readAt(simulator.now());
  EXPECT_GT(std::abs(actual - ideal), 1e6);  // > 1 s off after 2 s!
}

TEST(ClockSync, TighterResyncGivesTighterPrecision) {
  auto skewWithInterval = [](Duration interval) {
    sim::Simulator simulator;
    ClockSyncService sync{simulator, interval, 0};
    sync.addClock({+80.0, 100.0});
    sync.addClock({-80.0, -100.0});
    sync.addClock({+20.0, 0.0});
    sync.start();
    // Measure mid-interval (4.199 s): the 400 ms service last resynced at
    // 4.0 s and has accumulated ~199 ms of drift divergence; the 10 ms one
    // at most 9 ms worth.
    simulator.runUntil(SimTime::fromUs(4'199'000));
    return sync.maxSkewUs();
  };
  EXPECT_LT(skewWithInterval(Duration::milliseconds(10)),
            skewWithInterval(Duration::milliseconds(400)));
}

// Membership expulsion mid-run: a wildly drifting clock (an unnoticed rate
// failure) drags the k=0 ensemble; expelling it at the instant membership
// detects the failure restores the classic precision bound for the members.
TEST(ClockSync, ExpulsionMidRunRestoresPrecision) {
  sim::Simulator simulator;
  ClockSyncService sync{simulator, kResync, 0};
  sync.addClock({+40.0, 0.0});
  sync.addClock({-60.0, 100.0});
  sync.addClock({+10.0, -50.0});
  const std::size_t rogue = sync.addClock({+4000.0, 0.0});
  sync.start();

  // Measure mid-interval (not on a round boundary, where the correction has
  // just zeroed the skew): the rogue re-accumulates ~200 us every 50 ms.
  simulator.runUntil(SimTime::fromUs(1'950'000));
  EXPECT_GT(sync.maxSkewUs(), 100.0);

  // Expulsion fires mid-run, between two resync rounds.
  sync.setExcluded(rogue, true);
  EXPECT_TRUE(sync.excluded(rogue));
  simulator.runUntil(SimTime::fromUs(3'950'000));
  const double bound = 2.0 * 60.0 * 1e-6 * static_cast<double>(kResync.us()) + 1.0;
  EXPECT_LE(sync.maxSkewUs(), bound);  // members re-converge without the rogue
}

// Re-admission after reintegration: the expelled clock free-runs away, and
// once re-admitted the fault-tolerant average pulls it back into the
// ensemble within a few rounds (k=1 shields the members meanwhile).
TEST(ClockSync, ReadmittedClockIsPulledBackIntoTheEnsemble) {
  sim::Simulator simulator;
  ClockSyncService sync{simulator, kResync, 1};
  sync.addClock({+50.0, 0.0});
  sync.addClock({-30.0, 40.0});
  sync.addClock({+20.0, -40.0});
  sync.addClock({-10.0, 10.0});
  const std::size_t returning = sync.addClock({+200.0, 0.0});
  sync.setExcluded(returning, true);
  sync.start();

  // Expelled for ~3 s: the returning clock drifts ~600 us away on its own.
  simulator.runUntil(SimTime::fromUs(2'950'000));
  const double membersOnly = sync.maxSkewUs();

  sync.setExcluded(returning, false);
  simulator.runUntil(SimTime::fromUs(3'950'000));
  const double bound = 2.0 * 200.0 * 1e-6 * static_cast<double>(kResync.us()) + 1.0;
  EXPECT_LE(sync.maxSkewUs(), bound);  // the returnee is back inside the bound
  EXPECT_LE(membersOnly, bound);       // and the members never left it
}

// With every clock expelled but one there are too few members to average;
// the correction phase must skip cleanly rather than divide by zero.
TEST(ClockSync, LoneSurvivorFreeRunsWithoutCrashing) {
  sim::Simulator simulator;
  ClockSyncService sync{simulator, kResync, 1};
  sync.addClock({+10.0, 0.0});
  sync.addClock({-10.0, 0.0});
  const std::size_t survivor = sync.addClock({+5.0, 0.0});
  sync.start();
  sync.setExcluded(0, true);
  sync.setExcluded(1, true);
  simulator.runUntil(SimTime::fromUs(1'000'000));
  EXPECT_GT(sync.roundsCompleted(), 5u);  // rounds keep running
  EXPECT_FALSE(sync.excluded(survivor));
  EXPECT_DOUBLE_EQ(sync.maxSkewUs(), 0.0);  // one member: no pairwise skew
}

TEST(ClockSync, RejectsBadConfig) {
  sim::Simulator simulator;
  EXPECT_THROW(ClockSyncService(simulator, Duration{}, 0), std::invalid_argument);
  EXPECT_THROW(ClockSyncService(simulator, kResync, -1), std::invalid_argument);
  ClockSyncService sync{simulator, kResync, 1};
  sync.addClock({0.0, 0.0});
  sync.addClock({0.0, 0.0});
  EXPECT_THROW(sync.start(), std::invalid_argument);  // need > 2k clocks
}

}  // namespace
}  // namespace nlft::net
