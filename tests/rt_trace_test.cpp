#include "rtkernel/trace.hpp"

#include <gtest/gtest.h>

namespace nlft::rt {
namespace {

using util::Duration;
using util::SimTime;

ExecutionSegment segment(const char* label, std::int64_t startMs, std::int64_t endMs) {
  return {label, SimTime::fromUs(startMs * 1000), SimTime::fromUs(endMs * 1000)};
}

TEST(Gantt, SingleSegment) {
  const std::vector<ExecutionSegment> trace{segment("a", 0, 3)};
  EXPECT_EQ(renderGantt(trace, Duration::milliseconds(1)), "a |###\n");
}

TEST(Gantt, PreemptionPattern) {
  // low [0,3), high [3,5), low [5,8): the canonical preemption Gantt.
  const std::vector<ExecutionSegment> trace{segment("low", 0, 3), segment("high", 3, 5),
                                            segment("low", 5, 8)};
  EXPECT_EQ(renderGantt(trace, Duration::milliseconds(1)),
            "low  |###..###\n"
            "high |...##...\n");
}

TEST(Gantt, IdleGapsShownAsDots) {
  const std::vector<ExecutionSegment> trace{segment("a", 0, 1), segment("a", 4, 5)};
  EXPECT_EQ(renderGantt(trace, Duration::milliseconds(1)), "a |#...#\n");
}

TEST(Gantt, HorizonExtendsChart) {
  const std::vector<ExecutionSegment> trace{segment("a", 0, 2)};
  EXPECT_EQ(renderGantt(trace, Duration::milliseconds(1), Duration::milliseconds(4)),
            "a |##..\n");
}

TEST(Gantt, SubResolutionSegmentStillVisible) {
  const std::vector<ExecutionSegment> trace{
      {"blip", SimTime::fromUs(2500), SimTime::fromUs(2600)}};
  const std::string chart = renderGantt(trace, Duration::milliseconds(1));
  EXPECT_EQ(chart, "blip |..#\n");
}

TEST(Gantt, EmptyTraceRendersEmpty) {
  EXPECT_EQ(renderGantt({}, Duration::milliseconds(1)), "");
}

TEST(Gantt, BadResolutionThrows) {
  EXPECT_THROW((void)renderGantt({segment("a", 0, 1)}, Duration{}), std::invalid_argument);
}

TEST(Gantt, LabelsKeepFirstExecutionOrder) {
  const std::vector<ExecutionSegment> trace{segment("zeta", 0, 1), segment("alpha", 1, 2)};
  const std::string chart = renderGantt(trace, Duration::milliseconds(1));
  EXPECT_LT(chart.find("zeta"), chart.find("alpha"));
}

TEST(PerLabelBusyTime, SumsSegments) {
  const std::vector<ExecutionSegment> trace{segment("a", 0, 3), segment("b", 3, 5),
                                            segment("a", 5, 8)};
  const auto totals = perLabelBusyTime(trace);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].first, "a");
  EXPECT_EQ(totals[0].second.us(), 6000);
  EXPECT_EQ(totals[1].first, "b");
  EXPECT_EQ(totals[1].second.us(), 2000);
}

TEST(Gantt, RendersRealSchedulerTrace) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  cpu.post(1, Duration::milliseconds(10), [] {}, "low");
  simulator.scheduleAfter(Duration::milliseconds(3), [&] {
    cpu.post(5, Duration::milliseconds(2), [] {}, "high");
  });
  simulator.runAll();
  const std::string chart = renderGantt(cpu.trace(), Duration::milliseconds(1));
  EXPECT_EQ(chart,
            "low  |###..#######\n"
            "high |...##.......\n");
}

}  // namespace
}  // namespace nlft::rt
