// Differential equivalence suite for the SYSTEM-level snapshot campaign
// engine (docs/SNAPSHOT.md "system campaigns"): snapshot-forked execution —
// restore at the nearest checkpoint before the injection, splice the golden
// tail after rejoin — must be indistinguishable from straight execution in
// every observable: campaign statistics, metrics fingerprints, golden event
// traces. Thread counts and cache budgets may only move wall-clock time and
// the snap.* engine counters, never a result.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "faults/golden_trace.hpp"
#include "faults/snapshot_exec.hpp"
#include "faults/system_campaign.hpp"
#include "obs/metrics.hpp"
#include "snap/cache.hpp"

namespace nlft::fi {
namespace {

using util::Duration;

/// Small, fast campaign configuration (mirrors system_campaign_test.cpp);
/// the injection window stays at the default [0.2, 2.0] s so scenarios land
/// both deep inside the checkpoint timeline and near the stop.
SystemCampaignConfig smallConfig(ExecutionMode mode) {
  SystemCampaignConfig config;
  config.experiments = 48;
  config.seed = 7;
  config.sim.initialSpeedMps = 15.0;
  config.sim.horizon = Duration::seconds(8);
  config.parallelism.chunkSize = 8;  // fixed chunking = fixed RNG substreams
  config.mode = mode;
  return config;
}

/// Everything except the snap engine counters must be bit-identical across
/// execution modes (and thread counts). Floating-point accumulators compare
/// by memcmp: "equal" means equal bit patterns, not approximately equal.
void expectSameResults(const SystemCampaignStats& a, const SystemCampaignStats& b) {
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.outcomesByKind, b.outcomesByKind);
  EXPECT_EQ(a.nodeLevel.injected, b.nodeLevel.injected);
  EXPECT_EQ(a.nodeLevel.notActivated, b.nodeLevel.notActivated);
  EXPECT_EQ(a.nodeLevel.maskedByEcc, b.nodeLevel.maskedByEcc);
  EXPECT_EQ(a.nodeLevel.masked, b.nodeLevel.masked);
  EXPECT_EQ(a.nodeLevel.omission, b.nodeLevel.omission);
  EXPECT_EQ(a.nodeLevel.failSilent, b.nodeLevel.failSilent);
  EXPECT_EQ(a.nodeLevel.undetected, b.nodeLevel.undetected);
  EXPECT_EQ(a.stops, b.stops);
  EXPECT_EQ(a.skippedMasked, b.skippedMasked);
  EXPECT_EQ(a.stoppingDistanceM.count(), b.stoppingDistanceM.count());
  const double meanA = a.stoppingDistanceM.mean();
  const double meanB = b.stoppingDistanceM.mean();
  EXPECT_EQ(std::memcmp(&meanA, &meanB, sizeof(double)), 0);
  const double varA = a.stoppingDistanceM.variance();
  const double varB = b.stoppingDistanceM.variance();
  EXPECT_EQ(std::memcmp(&varA, &varB, sizeof(double)), 0);
}

void expectSameSnapCounters(const SnapCounters& a, const SnapCounters& b) {
  EXPECT_EQ(a.simulatedCycles, b.simulatedCycles);
  EXPECT_EQ(a.snapshotHits, b.snapshotHits);
  EXPECT_EQ(a.snapshotMisses, b.snapshotMisses);
  EXPECT_EQ(a.snapshotBytes, b.snapshotBytes);
  EXPECT_EQ(a.resumePoints, b.resumePoints);
  EXPECT_EQ(a.replayedCopies, b.replayedCopies);
  EXPECT_EQ(a.executedCopies, b.executedCopies);
  EXPECT_EQ(a.straightFallbacks, b.straightFallbacks);
}

TEST(SystemSnapshotDifferential, SnapshotStatsBitIdenticalToStraight) {
  const SystemCampaignStats straight = runSystemCampaign(smallConfig(ExecutionMode::Straight));
  const SystemCampaignStats snapshot = runSystemCampaign(smallConfig(ExecutionMode::Snapshot));
  expectSameResults(straight, snapshot);

  // The engine actually engaged: restores served, at least one experiment
  // answered by a golden-tail splice, and strictly fewer simulated events.
  EXPECT_GT(snapshot.snap.resumePoints, 0u);
  EXPECT_GT(snapshot.snap.replayedCopies, 0u);
  EXPECT_GT(snapshot.snap.snapshotHits, 0u);
  EXPECT_LT(snapshot.snap.simulatedCycles, straight.snap.simulatedCycles);
  EXPECT_EQ(snapshot.snap.straightFallbacks, 0u);
  EXPECT_EQ(straight.snap.resumePoints, 0u);
  EXPECT_EQ(straight.snap.replayedCopies, 0u);
  // Straight mode still accounts its simulated work.
  EXPECT_GT(straight.snap.simulatedCycles, 0u);
  EXPECT_EQ(straight.snap.executedCopies + straight.skippedMasked,
            static_cast<std::uint64_t>(straight.experiments));
}

TEST(SystemSnapshotDifferential, AutoResolvesToSnapshotForSupportedConfigs) {
  const SystemCampaignConfig config = smallConfig(ExecutionMode::Auto);
  ASSERT_TRUE(systemSnapshotSupported(config.sim));
  const SystemCampaignStats autoStats = runSystemCampaign(config);
  const SystemCampaignStats snapshot = runSystemCampaign(smallConfig(ExecutionMode::Snapshot));
  expectSameResults(autoStats, snapshot);
  expectSameSnapCounters(autoStats.snap, snapshot.snap);
}

TEST(SystemSnapshotDifferential, ThreadCountInvariantIncludingSnapCounters) {
  SystemCampaignConfig config = smallConfig(ExecutionMode::Snapshot);
  config.parallelism.threads = 1;
  const SystemCampaignStats serial = runSystemCampaign(config);
  for (const unsigned threads : {2u, 8u}) {
    config.parallelism.threads = threads;
    const SystemCampaignStats parallel = runSystemCampaign(config);
    expectSameResults(serial, parallel);
    // snap.* counters are chunk-order merged sums of chunk-private caches:
    // bit-identical at every thread count, not just statistically equal.
    expectSameSnapCounters(serial.snap, parallel.snap);
  }
}

TEST(SystemSnapshotDifferential, MetricsFingerprintIdenticalAcrossModesAndThreads) {
  obs::Registry straightMetrics;
  SystemCampaignConfig config = smallConfig(ExecutionMode::Straight);
  config.metrics = &straightMetrics;
  const SystemCampaignStats straight = runSystemCampaign(config);
  const std::string goldenPrint = straightMetrics.goldenFingerprint();

  for (const unsigned threads : {1u, 2u, 8u}) {
    obs::Registry snapshotMetrics;
    SystemCampaignConfig snapConfig = smallConfig(ExecutionMode::Snapshot);
    snapConfig.parallelism.threads = threads;
    snapConfig.metrics = &snapshotMetrics;
    const SystemCampaignStats snapshot = runSystemCampaign(snapConfig);
    expectSameResults(straight, snapshot);
    // The golden fingerprint covers every non-"wall." metric — per-sim
    // kernel/TEM/bus registries and the campaign.* reducers. Snapshot
    // restores replay the clean prefix with the registry attached, so the
    // registries agree to the byte even though execution was forked.
    EXPECT_EQ(snapshotMetrics.goldenFingerprint(), goldenPrint) << "threads=" << threads;
    // Metrics-instrumented experiments never splice (rates cannot be
    // patched post hoc), so every simulated experiment ran to completion.
    EXPECT_EQ(snapshot.snap.replayedCopies, 0u);
    EXPECT_GT(snapshot.snap.resumePoints, 0u);
  }
}

TEST(SystemSnapshotDifferential, TinyCacheEvictsButNeverChangesResults) {
  const SystemCampaignStats straight = runSystemCampaign(smallConfig(ExecutionMode::Straight));

  // A cache budget far below one blob still keeps exactly one entry (the
  // LRU never evicts its last snapshot), so restores stay available while
  // out-of-order scenario times churn the cache hard.
  SystemCampaignConfig tiny = smallConfig(ExecutionMode::Snapshot);
  tiny.snapshotCacheBytes = 300;
  const SystemCampaignStats small = runSystemCampaign(tiny);
  expectSameResults(straight, small);
  EXPECT_GT(small.snap.snapshotMisses, 0u);

  SystemCampaignConfig roomy = smallConfig(ExecutionMode::Snapshot);
  roomy.snapshotCacheBytes = 64u << 20;
  const SystemCampaignStats large = runSystemCampaign(roomy);
  expectSameResults(straight, large);
  EXPECT_GT(large.snap.snapshotHits, small.snap.snapshotHits);
}

TEST(SystemSnapshotDifferential, StratifiedCampaignMatchesAcrossModes) {
  SystemCampaignConfig straightConfig = smallConfig(ExecutionMode::Straight);
  straightConfig.experiments = 72;
  const StratifiedCampaignResult straight = runStratifiedSystemCampaign(straightConfig, 2);

  SystemCampaignConfig snapConfig = smallConfig(ExecutionMode::Snapshot);
  snapConfig.experiments = 72;
  const StratifiedCampaignResult snapshot = runStratifiedSystemCampaign(snapConfig, 2);

  ASSERT_EQ(straight.strata.size(), snapshot.strata.size());
  for (std::size_t h = 0; h < straight.strata.size(); ++h) {
    expectSameResults(straight.strata[h].stats, snapshot.strata[h].stats);
  }
  expectSameResults(straight.total, snapshot.total);
  EXPECT_LT(snapshot.total.snap.simulatedCycles, straight.total.snap.simulatedCycles);
}

TEST(SystemSnapshotDifferential, ForkedGoldenTracesAreLineIdentical) {
  const bbw::BbwSimConfig base{};
  for (const std::string& name : goldenScenarioNames()) {
    const std::vector<std::string> straight = recordScenarioTrace(name, base);
    const std::int64_t earliestUs = goldenScenarioEarliestUs(name);
    // Fork both mid-prefix and just before the first injection: the
    // restored replay must re-emit the prefix lines verbatim and the armed
    // tail must not depend on where the fork happened.
    for (const std::int64_t forkUs : {earliestUs / 2, earliestUs - 100000}) {
      const std::vector<std::string> forked = recordScenarioTraceForked(name, forkUs, base);
      const TraceDiff diff = compareTraces(straight, forked);
      EXPECT_TRUE(diff.identical)
          << name << " forked at " << forkUs << "us diverges at line " << diff.line
          << "\n  expected: " << diff.expected << "\n  actual:   " << diff.actual;
    }
  }
}

TEST(SystemSnapshotDifferential, CorruptedRestoreAbortsLoudly) {
  bbw::BbwSimConfig config;
  config.initialSpeedMps = 15.0;
  config.horizon = Duration::seconds(8);
  const SystemBaseline baseline{config};
  ASSERT_GT(baseline.checkpoints().size(), 4u);

  // A cache holding ONLY a byte-flipped blob at one checkpoint key: the
  // restore walk probes it first and must throw, never silently fall back
  // to straight execution or to an earlier checkpoint.
  const std::size_t k = baseline.checkpoints().size() / 2;
  const SystemCheckpoint& victim = baseline.checkpoints()[k];
  std::vector<std::uint8_t> corrupted = victim.blob;
  corrupted[corrupted.size() / 2] ^= 0x40;
  snap::SnapshotCache cache{1u << 20};
  cache.insert({static_cast<std::uint64_t>(victim.gridUs), 0}, corrupted);

  bbw::BbwSystemSim scratch{config};
  EXPECT_THROW(
      { (void)baseline.restoreBefore(scratch, victim.clockUs + 1, cache); },
      std::runtime_error);
}

TEST(SystemSnapshotDifferential, PedalProfileClosureForksBitIdentically) {
  // A checkpoint blob pins a pedal-profile closure only by PRESENCE (code
  // cannot be serialized), but every campaign sim is built from the SAME
  // config object, so the replay re-executes the same closure and the
  // support probe accepts it. Forked execution must still match straight
  // execution exactly under a non-default profile.
  SystemCampaignConfig straightConfig = smallConfig(ExecutionMode::Straight);
  straightConfig.experiments = 16;
  straightConfig.sim.pedalProfile = [](double) { return 0.8; };
  ASSERT_TRUE(systemSnapshotSupported(straightConfig.sim));
  const SystemCampaignStats straight = runSystemCampaign(straightConfig);

  SystemCampaignConfig snapConfig = straightConfig;
  snapConfig.mode = ExecutionMode::Snapshot;
  const SystemCampaignStats snapshot = runSystemCampaign(snapConfig);
  expectSameResults(straight, snapshot);

  // But restoring that blob into a sim whose config LACKS the closure must
  // abort on the config-digest mismatch, not silently replay a different
  // braking profile.
  bbw::BbwSimConfig with = straightConfig.sim;
  with.nodeType = straightConfig.nodeType;
  bbw::BbwSystemSim producer{with};
  producer.runUntil(util::SimTime::fromUs(100000));
  const std::vector<std::uint8_t> blob = producer.saveState();
  bbw::BbwSimConfig without = with;
  without.pedalProfile = nullptr;
  bbw::BbwSystemSim stranger{without};
  EXPECT_THROW(stranger.restoreState(blob), std::runtime_error);
}

}  // namespace
}  // namespace nlft::fi
