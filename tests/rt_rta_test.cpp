#include "rtkernel/rta.hpp"

#include <gtest/gtest.h>

namespace nlft::rt {
namespace {

using util::Duration;

RtaTask task(std::int64_t wcetMs, std::int64_t periodMs, int priority,
             std::int64_t recoveryMs = 0, std::int64_t deadlineMs = -1) {
  RtaTask t;
  t.wcet = Duration::milliseconds(wcetMs);
  t.period = Duration::milliseconds(periodMs);
  t.deadline = Duration::milliseconds(deadlineMs < 0 ? periodMs : deadlineMs);
  t.priority = priority;
  t.recovery = Duration::milliseconds(recoveryMs);
  return t;
}

TEST(Rta, TextbookExample) {
  // Burns & Wellings example: C/T = 3/7, 3/12, 5/20.
  const std::vector<RtaTask> tasks{task(3, 7, 3), task(3, 12, 2), task(5, 20, 1)};
  EXPECT_EQ(responseTime(tasks, 0)->us(), Duration::milliseconds(3).us());
  EXPECT_EQ(responseTime(tasks, 1)->us(), Duration::milliseconds(6).us());
  EXPECT_EQ(responseTime(tasks, 2)->us(), Duration::milliseconds(20).us());
  const RtaResult result = analyze(tasks);
  EXPECT_TRUE(result.schedulable);
}

TEST(Rta, UnschedulableSetDetected) {
  // Utilisation over 1: cannot be schedulable.
  const std::vector<RtaTask> tasks{task(5, 8, 2), task(5, 10, 1)};
  EXPECT_GT(utilization(tasks), 1.0);
  const RtaResult result = analyze(tasks);
  EXPECT_FALSE(result.schedulable);
  // The first-job recurrence still converges (R = 5 + 2*5 = 15) but misses
  // the 10 ms deadline.
  ASSERT_TRUE(responseTime(tasks, 1).has_value());
  EXPECT_EQ(responseTime(tasks, 1)->us(), Duration::milliseconds(15).us());
}

TEST(Rta, HighestPriorityResponseIsItsWcet) {
  const std::vector<RtaTask> tasks{task(4, 50, 10), task(10, 100, 1)};
  EXPECT_EQ(responseTime(tasks, 0)->us(), Duration::milliseconds(4).us());
}

TEST(Rta, UtilizationComputed) {
  const std::vector<RtaTask> tasks{task(1, 4, 2), task(2, 8, 1)};
  EXPECT_DOUBLE_EQ(utilization(tasks), 0.5);
}

TEST(Rta, FaultRecoveryIncreasesResponse) {
  std::vector<RtaTask> tasks{task(3, 7, 3, 2), task(3, 12, 2, 2), task(5, 20, 1, 3)};
  const auto fault = responseTimeWithFaults(tasks, 2, Duration::milliseconds(100));
  const auto faultFree = responseTime(tasks, 2);
  ASSERT_TRUE(fault.has_value());
  ASSERT_TRUE(faultFree.has_value());
  EXPECT_GT(*fault, *faultFree);
  // The textbook set has zero slack at the bottom: even one recovery per
  // 100 ms pushes task 3 past its 20 ms deadline (hand value: 32 ms).
  EXPECT_EQ(fault->us(), Duration::milliseconds(32).us());
  EXPECT_FALSE(analyze(tasks, Duration::milliseconds(100)).schedulable);
}

TEST(Rta, FtRtaHandComputedExample) {
  // Single task C=2, T=10, recovery=2, faults every 6 ms:
  // R = 2 + ceil(R/6)*2 -> R=4: ceil(4/6)=1 -> 4. Fixed point at 4.
  std::vector<RtaTask> tasks{task(2, 10, 1, 2)};
  const auto r = responseTimeWithFaults(tasks, 0, Duration::milliseconds(6));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->us(), Duration::milliseconds(4).us());
}

TEST(Rta, FrequentFaultsCanMakeSetUnschedulable) {
  // A set with real slack: tolerates sparse faults, collapses under bursts.
  std::vector<RtaTask> tasks{task(1, 10, 3, 1), task(2, 25, 2, 2), task(3, 50, 1, 3)};
  const RtaResult relaxed = analyze(tasks, Duration::milliseconds(1000));
  const RtaResult harsh = analyze(tasks, Duration::milliseconds(2));
  EXPECT_TRUE(relaxed.schedulable);
  EXPECT_FALSE(harsh.schedulable);
}

TEST(Rta, RecoveryOfHigherPriorityTaskHurtsLowerOnes) {
  // Only the high-priority task can fail; the low one still pays.
  std::vector<RtaTask> withRecovery{task(3, 10, 2, 4), task(3, 30, 1, 0)};
  std::vector<RtaTask> without{task(3, 10, 2, 0), task(3, 30, 1, 0)};
  const auto hurt = responseTimeWithFaults(withRecovery, 1, Duration::milliseconds(50));
  const auto fine = responseTimeWithFaults(without, 1, Duration::milliseconds(50));
  ASSERT_TRUE(hurt.has_value());
  ASSERT_TRUE(fine.has_value());
  EXPECT_GT(*hurt, *fine);
}

TEST(Rta, ZeroFaultIntervalMeansFaultFree) {
  std::vector<RtaTask> tasks{task(3, 7, 3, 2), task(5, 20, 1, 5)};
  const RtaResult result = analyze(tasks, Duration{});
  EXPECT_EQ(result.responseTimes[0], *responseTime(tasks, 0));
  EXPECT_EQ(result.responseTimes[1], *responseTime(tasks, 1));
}

TEST(Rta, TemTaskDoublesDemandPlusCheck) {
  const RtaTask t = temTask(Duration::milliseconds(2), Duration::microseconds(100),
                            Duration::milliseconds(20), Duration::milliseconds(20), 5);
  EXPECT_EQ(t.wcet.us(), 4100);
  EXPECT_EQ(t.recovery.us(), 2100);
  EXPECT_EQ(t.priority, 5);
}

TEST(Rta, TemSlackScenario) {
  // A TEM task set that is schedulable fault-free AND with one fault per
  // 50 ms, demonstrating the a-priori slack reservation of Section 2.8.
  std::vector<RtaTask> tasks{
      temTask(Duration::milliseconds(1), Duration::microseconds(50), Duration::milliseconds(10),
              Duration::milliseconds(10), 3),
      temTask(Duration::milliseconds(2), Duration::microseconds(50), Duration::milliseconds(25),
              Duration::milliseconds(25), 2),
  };
  EXPECT_TRUE(analyze(tasks).schedulable);
  EXPECT_TRUE(analyze(tasks, Duration::milliseconds(50)).schedulable);
  // But not if every job suffers a fault burst (T_F = 2 ms).
  EXPECT_FALSE(analyze(tasks, Duration::milliseconds(2)).schedulable);
}

// --- Edge-case audit of the fault-tolerant analysis (hp strict, hep
// inclusive, divergence reporting), cross-checked against the formula in
// rtkernel/rta.hpp and DESIGN.md's "recovery slack" claim. ---

TEST(Rta, ZeroSlackTaskToleratesNoRecovery) {
  // wcet == deadline: schedulable alone (R = C = D), but ANY recovery demand
  // under a finite fault window pushes it past the deadline — the a-priori
  // slack of Section 2.8 must come from somewhere.
  std::vector<RtaTask> zeroSlack{task(10, 10, 1, 1)};
  EXPECT_EQ(responseTime(zeroSlack, 0)->us(), Duration::milliseconds(10).us());
  EXPECT_TRUE(analyze(zeroSlack).schedulable);
  const RtaResult faulty = analyze(zeroSlack, Duration::milliseconds(100));
  EXPECT_FALSE(faulty.schedulable);
  // The recurrence still converges: R = 10 + ceil(R/100)*1 = 11.
  EXPECT_EQ(faulty.responseTimes[0].us(), Duration::milliseconds(11).us());

  // With zero recovery the fault window is irrelevant: k=0 faults to mask.
  std::vector<RtaTask> noRecovery{task(10, 10, 1, 0)};
  EXPECT_TRUE(analyze(noRecovery, Duration::milliseconds(100)).schedulable);
}

TEST(Rta, ZeroRecoverySetMatchesClassicAnalysisForAnyFaultWindow) {
  const std::vector<RtaTask> tasks{task(3, 7, 3), task(3, 12, 2), task(5, 20, 1)};
  for (const std::int64_t windowMs : {1, 6, 100}) {
    const RtaResult faulty = analyze(tasks, Duration::milliseconds(windowMs));
    const RtaResult classic = analyze(tasks);
    ASSERT_TRUE(faulty.schedulable);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_EQ(faulty.responseTimes[i], classic.responseTimes[i]) << i;
    }
  }
}

TEST(Rta, HighestPriorityTaskStillPaysItsOwnRecovery) {
  // hep(i) includes i itself: even the top task re-executes after a fault.
  std::vector<RtaTask> tasks{task(2, 10, 5, 2), task(1, 20, 1, 0)};
  const auto r = responseTimeWithFaults(tasks, 0, Duration::milliseconds(100));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->us(), Duration::milliseconds(4).us());
}

TEST(Rta, EqualPriorityRecoveryCountedButNotInterference) {
  // hp(i) is strict (equal-priority peers do not preempt), while hep(i) is
  // inclusive (their recovery can still steal the fault window's slack).
  std::vector<RtaTask> tasks{task(2, 10, 3, 0), task(2, 10, 3, 4)};
  const auto faultFree = responseTime(tasks, 0);
  ASSERT_TRUE(faultFree.has_value());
  EXPECT_EQ(faultFree->us(), Duration::milliseconds(2).us());  // no preemption
  const auto faulty = responseTimeWithFaults(tasks, 0, Duration::milliseconds(100));
  ASSERT_TRUE(faulty.has_value());
  EXPECT_EQ(faulty->us(), Duration::milliseconds(6).us());  // + partner recovery
}

TEST(Rta, DivergentRecurrenceReportedAsNegativeResponse) {
  // Higher-priority demand saturating the CPU (C=T): the lower task's busy
  // period never ends and the recurrence grows without bound; analyze()
  // reports -1 us (the documented "divergent" marker) and flags the set
  // unschedulable instead of looping forever. (Mere utilisation > 1 can
  // still hit a ceiling-induced fixed point past the deadline, which is
  // reported as a finite response instead.)
  std::vector<RtaTask> tasks{task(5, 5, 2), task(1, 12, 1)};
  EXPECT_FALSE(responseTimeWithFaults(tasks, 1, Duration{}).has_value());
  const RtaResult result = analyze(tasks);
  EXPECT_FALSE(result.schedulable);
  EXPECT_EQ(result.responseTimes[1].us(), -1);
  EXPECT_EQ(result.responseTimes[0].us(), Duration::milliseconds(5).us());
}

TEST(Rta, TemTaskWithZeroCheckOverheadMatchesSimulatorConfig) {
  // The BBW simulator runs TEM with zero comparison overhead: demand is
  // exactly two copies and recovery exactly one.
  const RtaTask t = temTask(Duration::microseconds(400), Duration{}, Duration::milliseconds(5),
                            Duration::milliseconds(5), 10);
  EXPECT_EQ(t.wcet.us(), 800);
  EXPECT_EQ(t.recovery.us(), 400);
  EXPECT_EQ(t.deadline, t.period);
}

TEST(Rta, InvalidInputsThrow) {
  std::vector<RtaTask> zeroWcet{task(0, 10, 1)};
  EXPECT_THROW((void)responseTime(zeroWcet, 0), std::invalid_argument);
  std::vector<RtaTask> zeroPeriod{task(1, 10, 2), RtaTask{Duration::milliseconds(1), Duration{},
                                                          Duration::milliseconds(5), 1, {}}};
  EXPECT_THROW((void)utilization(zeroPeriod), std::invalid_argument);
}

}  // namespace
}  // namespace nlft::rt
