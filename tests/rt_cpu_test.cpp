#include "rtkernel/cpu.hpp"

#include <gtest/gtest.h>

namespace nlft::rt {
namespace {

using util::Duration;
using util::SimTime;

TEST(Cpu, RunsSingleItemToCompletion) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  bool done = false;
  cpu.post(1, Duration::milliseconds(5), [&] { done = true; }, "a");
  simulator.runAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(simulator.now(), SimTime::fromUs(5000));
  ASSERT_EQ(cpu.trace().size(), 1u);
  EXPECT_EQ(cpu.trace()[0].label, "a");
  EXPECT_EQ(cpu.trace()[0].start, SimTime::zero());
  EXPECT_EQ(cpu.trace()[0].end, SimTime::fromUs(5000));
}

TEST(Cpu, EqualPriorityIsFifo) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  std::vector<std::string> order;
  cpu.post(1, Duration::milliseconds(1), [&] { order.push_back("a"); }, "a");
  cpu.post(1, Duration::milliseconds(1), [&] { order.push_back("b"); }, "b");
  cpu.post(1, Duration::milliseconds(1), [&] { order.push_back("c"); }, "c");
  simulator.runAll();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Cpu, HigherPriorityPreempts) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  std::vector<std::pair<std::string, std::int64_t>> completions;
  auto record = [&](const std::string& label) {
    completions.emplace_back(label, simulator.now().us());
  };
  cpu.post(1, Duration::milliseconds(10), [&] { record("low"); }, "low");
  // After 3 ms, a high-priority item arrives and preempts.
  simulator.scheduleAfter(Duration::milliseconds(3), [&] {
    cpu.post(5, Duration::milliseconds(2), [&] { record("high"); }, "high");
  });
  simulator.runAll();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].first, "high");
  EXPECT_EQ(completions[0].second, 5000);  // 3 + 2
  EXPECT_EQ(completions[1].first, "low");
  EXPECT_EQ(completions[1].second, 12000);  // 10 total + 2 preempted
  EXPECT_EQ(cpu.preemptions(), 1u);

  // Trace: low [0,3), high [3,5), low [5,12).
  ASSERT_EQ(cpu.trace().size(), 3u);
  EXPECT_EQ(cpu.trace()[0].label, "low");
  EXPECT_EQ(cpu.trace()[0].end.us(), 3000);
  EXPECT_EQ(cpu.trace()[1].label, "high");
  EXPECT_EQ(cpu.trace()[2].label, "low");
  EXPECT_EQ(cpu.trace()[2].start.us(), 5000);
  EXPECT_EQ(cpu.trace()[2].end.us(), 12000);
}

TEST(Cpu, EqualPriorityDoesNotPreempt) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  std::vector<std::string> order;
  cpu.post(1, Duration::milliseconds(4), [&] { order.push_back("first"); }, "first");
  simulator.scheduleAfter(Duration::milliseconds(1), [&] {
    cpu.post(1, Duration::milliseconds(1), [&] { order.push_back("second"); }, "second");
  });
  simulator.runAll();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(cpu.preemptions(), 0u);
}

TEST(Cpu, NestedPreemption) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  std::vector<std::string> order;
  cpu.post(1, Duration::milliseconds(10), [&] { order.push_back("low"); }, "low");
  simulator.scheduleAfter(Duration::milliseconds(2), [&] {
    cpu.post(2, Duration::milliseconds(6), [&] { order.push_back("mid"); }, "mid");
  });
  simulator.scheduleAfter(Duration::milliseconds(3), [&] {
    cpu.post(3, Duration::milliseconds(1), [&] { order.push_back("high"); }, "high");
  });
  simulator.runAll();
  EXPECT_EQ(order, (std::vector<std::string>{"high", "mid", "low"}));
  // low runs [0,2), mid [2,3), high [3,4), mid [4,9), low [9,17).
  EXPECT_EQ(simulator.now().us(), 17000);
  EXPECT_EQ(cpu.preemptions(), 2u);
}

TEST(Cpu, CancelQueuedItem) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  bool ran = false;
  cpu.post(2, Duration::milliseconds(2), [] {}, "runner");
  const WorkId queued = cpu.post(1, Duration::milliseconds(2), [&] { ran = true; }, "queued");
  EXPECT_TRUE(cpu.cancel(queued));
  EXPECT_FALSE(cpu.cancel(queued));
  simulator.runAll();
  EXPECT_FALSE(ran);
}

TEST(Cpu, CancelRunningItemDispatchesNext) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  bool victimRan = false;
  bool nextRan = false;
  const WorkId victim = cpu.post(2, Duration::milliseconds(10), [&] { victimRan = true; }, "victim");
  cpu.post(1, Duration::milliseconds(1), [&] { nextRan = true; }, "next");
  simulator.scheduleAfter(Duration::milliseconds(3), [&] { cpu.cancel(victim); });
  simulator.runAll();
  EXPECT_FALSE(victimRan);
  EXPECT_TRUE(nextRan);
  EXPECT_EQ(simulator.now().us(), 4000);  // victim ran 3 ms, next 1 ms
  EXPECT_EQ(cpu.busyTime().us(), 4000);
}

TEST(Cpu, BusyTimeExcludesIdleGaps) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  cpu.post(1, Duration::milliseconds(2), [] {}, "a");
  simulator.scheduleAfter(Duration::milliseconds(10), [&] {
    cpu.post(1, Duration::milliseconds(3), [] {}, "b");
  });
  simulator.runAll();
  EXPECT_EQ(simulator.now().us(), 13000);
  EXPECT_EQ(cpu.busyTime().us(), 5000);
}

TEST(Cpu, ContextSwitchOverheadCharged) {
  sim::Simulator simulator;
  Cpu cpu{simulator, Duration::microseconds(100)};
  std::int64_t doneAt = 0;
  cpu.post(1, Duration::milliseconds(1), [&] { doneAt = simulator.now().us(); }, "a");
  simulator.runAll();
  EXPECT_EQ(doneAt, 1100);  // 100 us dispatch overhead + 1 ms work
}

TEST(Cpu, CompletionCanPostFollowUpWork) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  int phase = 0;
  cpu.post(1, Duration::milliseconds(1), [&] {
    phase = 1;
    cpu.post(1, Duration::milliseconds(1), [&] { phase = 2; }, "second");
  }, "first");
  simulator.runAll();
  EXPECT_EQ(phase, 2);
  EXPECT_EQ(simulator.now().us(), 2000);
}

TEST(Cpu, ZeroWorkCompletesImmediately) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  bool done = false;
  cpu.post(1, Duration{}, [&] { done = true; }, "instant");
  simulator.runAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(simulator.now(), SimTime::zero());
}

TEST(Cpu, RejectsNegativeWork) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  EXPECT_THROW(cpu.post(1, Duration::microseconds(-1), [] {}, "bad"), std::invalid_argument);
}

TEST(Cpu, RunningLabelReflectsDispatch) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  EXPECT_TRUE(cpu.idle());
  cpu.post(1, Duration::milliseconds(1), [] {}, "task-a");
  EXPECT_EQ(cpu.runningLabel(), "task-a");
  EXPECT_FALSE(cpu.idle());
  simulator.runAll();
  EXPECT_TRUE(cpu.idle());
}

}  // namespace
}  // namespace nlft::rt
