#include "net/membership.hpp"

#include <gtest/gtest.h>

namespace nlft::net {
namespace {

using util::Duration;
using util::SimTime;

struct MembershipFixture : ::testing::Test {
  sim::Simulator simulator;
  TdmaConfig config;

  MembershipFixture() {
    config.slotLength = Duration::milliseconds(1);
    config.staticSchedule = {1, 2, 3, 4};
    config.dynamicMinislots = 0;
  }

  // Runs until `cycles` communication cycles completed (cycle = 4 ms).
  void runCycles(int cycles) {
    simulator.runUntil(SimTime::fromUs(static_cast<std::int64_t>(cycles) * 4000 + 100));
  }
};

TEST_F(MembershipFixture, AllAliveNodesSeeEachOther) {
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};
  for (NodeId node : {1u, 2u, 3u, 4u}) membership.addNode(node);
  membership.start();
  runCycles(3);
  for (NodeId observer : {1u, 2u, 3u, 4u}) {
    EXPECT_EQ(membership.membershipView(observer), (std::set<NodeId>{1, 2, 3, 4}));
  }
}

TEST_F(MembershipFixture, SilentNodeIsExpelled) {
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};
  for (NodeId node : {1u, 2u, 3u, 4u}) membership.addNode(node);
  membership.start();
  runCycles(2);
  membership.setAlive(3, false);  // fail-silent failure
  runCycles(5);
  EXPECT_EQ(membership.membershipView(1), (std::set<NodeId>{1, 2, 4}));
  EXPECT_FALSE(membership.isMember(2, 3));
}

TEST_F(MembershipFixture, ExpulsionTakesMissToleranceCycles) {
  MembershipConfig membershipConfig;
  membershipConfig.missTolerance = 2;
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus, membershipConfig};
  for (NodeId node : {1u, 2u, 3u, 4u}) membership.addNode(node);
  membership.start();
  runCycles(1);
  membership.setAlive(3, false);
  runCycles(2);  // only one fully-missed cycle evaluated
  EXPECT_TRUE(membership.isMember(1, 3));
  runCycles(4);  // two more missed cycles: tolerance exceeded
  EXPECT_FALSE(membership.isMember(1, 3));
}

TEST_F(MembershipFixture, RestartedNodeReintegratesAfterTwoCleanCycles) {
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};  // reintegrationCycles = 2
  for (NodeId node : {1u, 2u, 3u, 4u}) membership.addNode(node);
  membership.start();
  runCycles(2);
  membership.setAlive(3, false);
  runCycles(4);
  ASSERT_FALSE(membership.isMember(1, 3));

  membership.setAlive(3, true);  // restart complete, heartbeats resume
  const std::int64_t restartUs = simulator.now().us();
  runCycles(static_cast<int>(restartUs / 4000) + 1);
  EXPECT_FALSE(membership.isMember(1, 3));  // one heartbeat is not enough
  runCycles(static_cast<int>(restartUs / 4000) + 3);
  EXPECT_TRUE(membership.isMember(1, 3));
  // The restarted node also rebuilt its own view of the others.
  EXPECT_EQ(membership.membershipView(3), (std::set<NodeId>{1, 2, 3, 4}));
}

TEST_F(MembershipFixture, ReintegrationLatencyBoundsTheOmissionRepairTime) {
  // The paper's mu_OM corresponds to ~1.6 s reintegration; in protocol terms
  // that is reintegrationCycles cycles after the node resumes. Measure it.
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};
  for (NodeId node : {1u, 2u, 3u, 4u}) membership.addNode(node);
  membership.start();
  runCycles(2);
  membership.setAlive(2, false);
  runCycles(4);
  membership.setAlive(2, true);
  const SimTime resumed = simulator.now();
  // Find the first time node 1 readmits node 2.
  SimTime readmitted;
  for (int cycle = 0; cycle < 10; ++cycle) {
    simulator.runUntil(simulator.now() + bus.cycleLength());
    if (membership.isMember(1, 2)) {
      readmitted = simulator.now();
      break;
    }
  }
  const Duration latency = readmitted - resumed;
  EXPECT_GT(latency, Duration{});
  EXPECT_LE(latency, bus.cycleLength() * 3);  // <= reintegrationCycles + 1 cycles
}

TEST_F(MembershipFixture, AppDataRidesAlongHeartbeats) {
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};
  for (NodeId node : {1u, 2u}) membership.addNode(node);
  config.staticSchedule = {1, 2};
  std::vector<std::tuple<NodeId, NodeId, std::vector<std::uint32_t>>> seen;
  membership.setAppReceive([&](NodeId receiver, NodeId sender, const std::vector<std::uint32_t>& data) {
    seen.emplace_back(receiver, sender, data);
  });
  membership.queueAppData(1, {0xCAFE, 0xF00D});
  membership.start();
  runCycles(1);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(std::get<0>(seen[0]), 2u);
  EXPECT_EQ(std::get<1>(seen[0]), 1u);
  EXPECT_EQ(std::get<2>(seen[0]), (std::vector<std::uint32_t>{0xCAFE, 0xF00D}));
}

TEST_F(MembershipFixture, DownNodeHearsNothing) {
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};
  for (NodeId node : {1u, 2u, 3u, 4u}) membership.addNode(node);
  membership.start();
  runCycles(2);
  membership.setAlive(4, false);
  runCycles(6);
  EXPECT_TRUE(membership.membershipView(4).empty());
}

TEST_F(MembershipFixture, NodeAddedDeadJoinsLater) {
  TdmaBus bus{simulator, config};
  MembershipService membership{simulator, bus};
  membership.addNode(1);
  membership.addNode(2);
  membership.addNode(3, /*alive=*/false);
  membership.addNode(4);
  membership.start();
  runCycles(2);
  EXPECT_FALSE(membership.isMember(1, 3));
  membership.setAlive(3, true);
  runCycles(6);
  EXPECT_TRUE(membership.isMember(1, 3));
}

TEST_F(MembershipFixture, InvalidUsage) {
  TdmaBus bus{simulator, config};
  MembershipConfig bad;
  bad.reintegrationCycles = 0;
  EXPECT_THROW(MembershipService(simulator, bus, bad), std::invalid_argument);
  MembershipService membership{simulator, bus};
  membership.addNode(1);
  membership.start();
  EXPECT_THROW(membership.addNode(2), std::logic_error);
  EXPECT_THROW(membership.start(), std::logic_error);
}

}  // namespace
}  // namespace nlft::net
