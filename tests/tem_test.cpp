// Scenario tests for temporal error masking, mirroring Fig. 3 of the paper.
#include "core/tem.hpp"

#include <gtest/gtest.h>

#include "core/policies.hpp"

namespace nlft::tem {
namespace {

using rt::CopyStop;
using rt::TaskConfig;
using rt::TaskId;
using util::Duration;
using util::SimTime;

constexpr std::uint32_t kGood = 42;

CopyPlan goodCopy(Duration time, std::uint32_t value = kGood) {
  CopyPlan plan;
  plan.executionTime = time;
  plan.result = {value};
  return plan;
}

CopyPlan corruptedCopy(Duration time, std::uint32_t value) { return goodCopy(time, value); }

CopyPlan edmErrorCopy(Duration timeUntilError) {
  CopyPlan plan;
  plan.executionTime = timeUntilError;
  plan.end = CopyPlan::End::DetectedError;
  plan.error = {rt::ErrorEvent::Source::HardwareException, 0};
  return plan;
}

/// Behavior that replays a scripted list of per-copy plans (repeating the
/// last entry if more copies start than scripted).
CopyBehavior scripted(std::vector<CopyPlan> plans) {
  return [plans = std::move(plans)](const CopyContext& context) {
    const std::size_t i = std::min<std::size_t>(context.copyIndex - 1, plans.size() - 1);
    return plans[i];
  };
}

struct TemFixture : ::testing::Test {
  sim::Simulator simulator;
  rt::Cpu cpu{simulator};
  rt::RtKernel kernel{simulator, cpu};

  struct Delivery {
    std::uint64_t job;
    std::vector<std::uint32_t> data;
    std::int64_t atUs;
  };
  std::vector<Delivery> deliveries;

  TaskConfig config(Duration wcet, Duration period, Duration deadline = Duration{}) {
    TaskConfig cfg;
    cfg.name = "critical";
    cfg.priority = 5;
    cfg.period = period;
    cfg.relativeDeadline = deadline;
    cfg.wcet = wcet;
    return cfg;
  }

  void captureResults() {
    kernel.setResultSink([this](const rt::JobResult& result) {
      deliveries.push_back({result.jobIndex, result.data, result.deliveredAt.us()});
    });
  }
};

TEST_F(TemFixture, ScenarioI_FaultFreeTwoCopies) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(2);
  const TaskId task = tem.addCriticalTask(config(wcet, Duration::milliseconds(20)),
                                          scripted({goodCopy(wcet)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(19'000));

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].data, (std::vector<std::uint32_t>{kGood}));
  EXPECT_EQ(deliveries[0].atUs, 4000);  // exactly two copies, no third
  EXPECT_EQ(tem.stats(task).deliveredCleanly, 1u);
  EXPECT_EQ(tem.stats(task).comparisonMismatches, 0u);
  EXPECT_EQ(cpu.busyTime().us(), 4000);  // the slack was NOT consumed
}

TEST_F(TemFixture, ScenarioII_ComparisonMismatchTriggersVote) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(2);
  const TaskId task = tem.addCriticalTask(
      config(wcet, Duration::milliseconds(20)),
      scripted({goodCopy(wcet), corruptedCopy(wcet, 13), goodCopy(wcet)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(19'000));

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].data, (std::vector<std::uint32_t>{kGood}));  // vote masked 13
  EXPECT_EQ(deliveries[0].atUs, 6000);  // three copies
  EXPECT_EQ(tem.stats(task).maskedByVote, 1u);
  EXPECT_EQ(tem.stats(task).comparisonMismatches, 1u);
  EXPECT_EQ(tem.stats(task).deliveredCleanly, 0u);
  EXPECT_EQ(kernel.stats(task).completions, 1u);
}

TEST_F(TemFixture, ScenarioIII_EdmErrorInSecondCopyReclaimsTime) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(10);
  const TaskId task = tem.addCriticalTask(
      config(wcet, Duration::milliseconds(50)),
      scripted({goodCopy(wcet), edmErrorCopy(Duration::milliseconds(4)), goodCopy(wcet)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(49'000));

  ASSERT_EQ(deliveries.size(), 1u);
  // 10 (copy1) + 4 (copy2 until EDM) + 10 (replacement copy) = 24 ms: the
  // remaining 6 ms of the terminated copy were reclaimed.
  EXPECT_EQ(deliveries[0].atUs, 24'000);
  EXPECT_EQ(tem.stats(task).maskedByReplacement, 1u);
  EXPECT_EQ(tem.stats(task).edmDetectedErrors, 1u);
  EXPECT_EQ(tem.stats(task).contextRestores, 1u);
  EXPECT_EQ(tem.stats(task).comparisonMismatches, 0u);
}

TEST_F(TemFixture, ScenarioIV_EdmErrorInFirstCopy) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(10);
  const TaskId task = tem.addCriticalTask(
      config(wcet, Duration::milliseconds(50)),
      scripted({edmErrorCopy(Duration::milliseconds(3)), goodCopy(wcet), goodCopy(wcet)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(49'000));

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].atUs, 23'000);  // 3 + 10 + 10
  EXPECT_EQ(tem.stats(task).maskedByReplacement, 1u);
}

TEST_F(TemFixture, ThreeDistinctResultsCauseOmission) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(2);
  const TaskId task = tem.addCriticalTask(
      config(wcet, Duration::milliseconds(20)),
      scripted({goodCopy(wcet, 1), goodCopy(wcet, 2), goodCopy(wcet, 3)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(19'000));

  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(tem.stats(task).omissionsVoteFailed, 1u);
  EXPECT_EQ(kernel.stats(task).omissions, 1u);
  EXPECT_EQ(kernel.stats(task).completions, 0u);
}

TEST_F(TemFixture, NoTimeForThirdCopyForcesOmission) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(4);
  // Deadline 10 ms: two copies fit (8 ms), a third cannot (12 > 10).
  const TaskId task = tem.addCriticalTask(
      config(wcet, Duration::milliseconds(40), Duration::milliseconds(10)),
      scripted({goodCopy(wcet, 1), goodCopy(wcet, 2), goodCopy(wcet, 1)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(39'000));

  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(tem.stats(task).omissionsNoTime, 1u);
  EXPECT_EQ(kernel.stats(task).omissions, 1u);
}

TEST_F(TemFixture, DeadlineMonitorAbortCountsAsOmission) {
  TemExecutor tem{kernel};
  // Declared wcet 2 ms, but the copy actually consumes 20 ms (and the budget
  // timer is configured loosely): the deadline monitor at 12 ms must fire.
  TaskConfig cfg = config(Duration::milliseconds(2), Duration::milliseconds(40),
                          Duration::milliseconds(12));
  cfg.budget = Duration::milliseconds(30);
  const TaskId task = tem.addCriticalTask(cfg, scripted({goodCopy(Duration::milliseconds(20))}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(39'000));

  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(tem.stats(task).omissionsAborted, 1u);
  EXPECT_EQ(kernel.stats(task).deadlineMisses, 1u);
}

TEST_F(TemFixture, ExternalErrorMidCopyKillsAndReplaces) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(10);
  const TaskId task = tem.addCriticalTask(config(wcet, Duration::milliseconds(60)),
                                          scripted({goodCopy(wcet)}));
  captureResults();
  kernel.start();
  // An ECC/MMU error is reported 13 ms in (3 ms into the second copy).
  simulator.scheduleAfter(Duration::milliseconds(13), [&] {
    kernel.reportTaskError(task, {rt::ErrorEvent::Source::EccUncorrectable, 0});
  });
  simulator.runUntil(SimTime::fromUs(59'000));

  ASSERT_EQ(deliveries.size(), 1u);
  // copy1: 10, copy2 killed at 13, replacement: 10 -> delivered at 23 ms.
  EXPECT_EQ(deliveries[0].atUs, 23'000);
  EXPECT_EQ(tem.stats(task).maskedByReplacement, 1u);
  EXPECT_EQ(tem.stats(task).edmDetectedErrors, 1u);
}

TEST_F(TemFixture, BudgetOverrunIsTreatedAsDetectedError) {
  TemExecutor tem{kernel};
  TaskConfig cfg = config(Duration::milliseconds(3), Duration::milliseconds(40));
  cfg.budget = Duration::milliseconds(4);
  // First copy runs away (control-flow error): asks 30 ms, killed at 4 ms.
  const TaskId task = tem.addCriticalTask(
      cfg, scripted({goodCopy(Duration::milliseconds(30)), goodCopy(Duration::milliseconds(3)),
                     goodCopy(Duration::milliseconds(3))}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(39'000));

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].atUs, 10'000);  // 4 (killed) + 3 + 3
  EXPECT_EQ(tem.stats(task).edmDetectedErrors, 1u);
  EXPECT_EQ(kernel.stats(task).budgetOverruns, 1u);
  EXPECT_EQ(tem.stats(task).maskedByReplacement, 1u);
}

TEST_F(TemFixture, MaxCopiesFourSurvivesTwoDetectedErrors) {
  TemConfig temConfig;
  temConfig.maxCopies = 4;
  TemExecutor tem{kernel, temConfig};
  const Duration wcet = Duration::milliseconds(2);
  const TaskId task = tem.addCriticalTask(
      config(wcet, Duration::milliseconds(40)),
      scripted({edmErrorCopy(Duration::milliseconds(1)), edmErrorCopy(Duration::milliseconds(1)),
                goodCopy(wcet), goodCopy(wcet)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(39'000));

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].atUs, 6'000);  // 1 + 1 + 2 + 2
  EXPECT_EQ(tem.stats(task).edmDetectedErrors, 2u);
  EXPECT_EQ(tem.stats(task).maskedByReplacement, 1u);
}

TEST_F(TemFixture, DefaultMaxCopiesStopsAfterThree) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(2);
  // Every copy hits an EDM error: after 3 copies the job must give up.
  const TaskId task = tem.addCriticalTask(config(wcet, Duration::milliseconds(40)),
                                          scripted({edmErrorCopy(Duration::milliseconds(1))}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(39'000));

  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(tem.stats(task).edmDetectedErrors, 3u);
  EXPECT_EQ(tem.stats(task).omissionsNoTime, 1u);
}

TEST_F(TemFixture, CheckOverheadChargedWithSecondAndThirdCopies) {
  TemConfig temConfig;
  temConfig.checkOverhead = Duration::microseconds(500);
  TemExecutor tem{kernel, temConfig};
  const Duration wcet = Duration::milliseconds(2);
  tem.addCriticalTask(config(wcet, Duration::milliseconds(20)), scripted({goodCopy(wcet)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(19'000));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].atUs, 4500);  // 2 + (2 + 0.5) ms
}

TEST_F(TemFixture, JobErrorCallbackFeedsPermanentFaultMonitor) {
  TemExecutor tem{kernel};
  PermanentFaultMonitor monitor{3};
  bool shutdown = false;
  monitor.setShutdownHook([&] { shutdown = true; });
  tem.setJobErrorCallback([&](TaskId task, bool hadError) { monitor.onJob(task, hadError); });

  const Duration wcet = Duration::milliseconds(1);
  // A stuck-at fault corrupts the second copy of EVERY job.
  const TaskId task = tem.addCriticalTask(
      config(wcet, Duration::milliseconds(10)),
      scripted({goodCopy(wcet), corruptedCopy(wcet, 13), goodCopy(wcet)}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(35'000));

  EXPECT_TRUE(shutdown);
  EXPECT_TRUE(monitor.permanentSuspected());
  EXPECT_GE(tem.stats(task).maskedByVote, 3u);
}

TEST_F(TemFixture, ErrorFreeJobsResetTheSuspicionStreak) {
  PermanentFaultMonitor monitor{3};
  bool shutdown = false;
  monitor.setShutdownHook([&] { shutdown = true; });
  const TaskId task{7};
  monitor.onJob(task, true);
  monitor.onJob(task, true);
  monitor.onJob(task, false);  // transient: streak resets
  monitor.onJob(task, true);
  monitor.onJob(task, true);
  EXPECT_FALSE(shutdown);
  EXPECT_EQ(monitor.streak(task), 2);
  monitor.onJob(task, true);
  EXPECT_TRUE(shutdown);
}

TEST_F(TemFixture, PeriodicStreamMixesScenarios) {
  TemExecutor tem{kernel};
  const Duration wcet = Duration::milliseconds(1);
  int jobCount = 0;
  // Job 0: clean; job 1: mismatch+vote; job 2: EDM error; job 3: clean.
  const TaskId task = tem.addCriticalTask(
      config(wcet, Duration::milliseconds(10)),
      [&jobCount, wcet](const CopyContext& context) -> CopyPlan {
        jobCount = static_cast<int>(context.jobIndex);
        switch (context.jobIndex % 4) {
          case 1:
            if (context.copyIndex == 2) return corruptedCopy(wcet, 99);
            break;
          case 2:
            if (context.copyIndex == 1) return edmErrorCopy(Duration::microseconds(300));
            break;
          default:
            break;
        }
        return goodCopy(wcet);
      });
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(79'000));

  EXPECT_EQ(kernel.stats(task).releases, 8u);
  EXPECT_EQ(kernel.stats(task).completions, 8u);  // every job masked its fault
  EXPECT_EQ(tem.stats(task).deliveredCleanly, 4u);
  EXPECT_EQ(tem.stats(task).maskedByVote, 2u);
  EXPECT_EQ(tem.stats(task).maskedByReplacement, 2u);
  EXPECT_EQ(kernel.stats(task).omissions, 0u);
}

TEST_F(TemFixture, TwoCriticalTasksPreemptionBetweenCopies) {
  // A high-priority critical task preempts the low one's copies; both are
  // TEM-protected, both deliver, and the preemption shows in the timing.
  TemExecutor tem{kernel};
  TaskConfig high = config(Duration::milliseconds(1), Duration::milliseconds(10));
  high.name = "high";
  high.priority = 9;
  TaskConfig low = config(Duration::milliseconds(3), Duration::milliseconds(30));
  low.name = "low";
  low.priority = 2;
  const TaskId highTask = tem.addCriticalTask(high, scripted({goodCopy(Duration::milliseconds(1))}));
  const TaskId lowTask = tem.addCriticalTask(low, scripted({goodCopy(Duration::milliseconds(3))}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(29'000));

  // High: jobs at 0, 10, 20 -> 3 completions. Low: job at 0 -> 1 completion.
  EXPECT_EQ(kernel.stats(highTask).completions, 3u);
  EXPECT_EQ(kernel.stats(lowTask).completions, 1u);
  EXPECT_EQ(kernel.stats(lowTask).deadlineMisses, 0u);
  // Low task demand = 6 ms; it is preempted by high's 2 ms at t=0 and the
  // release at t=10 lands inside its second copy? No: low runs [2,5) and
  // [5,8): done at 8 ms, before high's next release.
  ASSERT_GE(deliveries.size(), 2u);
  bool sawLowAt8 = false;
  for (const auto& delivery : deliveries) {
    if (delivery.atUs == 8000) sawLowAt8 = true;
  }
  EXPECT_TRUE(sawLowAt8);
  EXPECT_GE(cpu.preemptions(), 0u);  // no preemption needed in this layout
}

TEST_F(TemFixture, HighPriorityReleaseMidCopyPreemptsAndBothSurvive) {
  TemExecutor tem{kernel};
  TaskConfig high = config(Duration::milliseconds(2), Duration::milliseconds(10));
  high.name = "high";
  high.priority = 9;
  high.offset = Duration::milliseconds(1);  // lands inside low's first copy
  TaskConfig low = config(Duration::milliseconds(4), Duration::milliseconds(40));
  low.name = "low";
  low.priority = 2;
  const TaskId highTask = tem.addCriticalTask(high, scripted({goodCopy(Duration::milliseconds(2))}));
  const TaskId lowTask = tem.addCriticalTask(low, scripted({goodCopy(Duration::milliseconds(4))}));
  captureResults();
  kernel.start();
  simulator.runUntil(SimTime::fromUs(39'000));

  EXPECT_GT(cpu.preemptions(), 0u);
  EXPECT_GT(kernel.stats(highTask).completions, 0u);
  EXPECT_EQ(kernel.stats(lowTask).completions, 1u);
  EXPECT_EQ(kernel.stats(lowTask).deadlineMisses, 0u);
  // Low's two 4 ms copies are delayed by high's TEM jobs (2 copies x 2 ms
  // per release): exact completion from the Gantt: low runs [0,1), then
  // high [1,5), low [5,9.?]... just require it delivered before 20 ms.
  bool lowDelivered = false;
  for (const auto& delivery : deliveries) {
    if (delivery.atUs <= 20'000 && delivery.data == std::vector<std::uint32_t>{kGood}) {
      lowDelivered = true;
    }
  }
  EXPECT_TRUE(lowDelivered);
}

TEST_F(TemFixture, SporadicCriticalTaskUnderTem) {
  TemExecutor tem{kernel};
  TaskConfig sporadic;
  sporadic.name = "sporadic";
  sporadic.priority = 5;
  sporadic.period = Duration{};  // sporadic
  sporadic.relativeDeadline = Duration::milliseconds(10);
  sporadic.wcet = Duration::milliseconds(1);
  const TaskId task = tem.addCriticalTask(
      sporadic, scripted({goodCopy(Duration::milliseconds(1)),
                          corruptedCopy(Duration::milliseconds(1), 9),
                          goodCopy(Duration::milliseconds(1))}));
  captureResults();
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(3), [&] { kernel.releaseSporadic(task); });
  simulator.runUntil(SimTime::fromUs(20'000));
  EXPECT_EQ(kernel.stats(task).completions, 1u);
  EXPECT_EQ(tem.stats(task).maskedByVote, 1u);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].atUs, 6000);  // released at 3 ms + three copies
}

TEST_F(TemFixture, RejectsBadConfig) {
  TemConfig bad;
  bad.maxCopies = 1;
  EXPECT_THROW(TemExecutor(kernel, bad), std::invalid_argument);
  TemExecutor tem{kernel};
  EXPECT_THROW(tem.addCriticalTask(config(Duration::milliseconds(1), Duration::milliseconds(10)),
                                   CopyBehavior{}),
               std::invalid_argument);
  EXPECT_THROW((void)tem.stats(TaskId{42}), std::invalid_argument);
}

}  // namespace
}  // namespace nlft::tem
