#include "hw/machine.hpp"

#include <gtest/gtest.h>

#include "hw/assembler.hpp"

namespace nlft::hw {
namespace {

/// Assembles and loads a program, setting SP to the top of memory.
Machine makeMachine(const char* source, std::uint32_t memBytes = 4096) {
  Machine machine{memBytes};
  const Program program = assemble(source);
  machine.loadWords(program.origin, program.words);
  machine.cpu().pc = program.origin;
  machine.cpu().setSp(memBytes);
  return machine;
}

TEST(Machine, ArithmeticProgram) {
  Machine m = makeMachine(R"(
    ldi r1, 6
    ldi r2, 7
    mul r3, r1, r2
    st r3, [r0+0x100]
    halt
  )");
  const auto result = m.run(100);
  EXPECT_EQ(result.reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 42u);
}

TEST(Machine, LoopComputesSum) {
  Machine m = makeMachine(R"(
      ldi r1, 0      ; sum
      ldi r2, 1      ; i
    loop:
      add r1, r1, r2
      addi r2, r2, 1
      cmpi r2, 11
      blt loop
      st r1, [r0+0x200]
      halt
  )");
  EXPECT_EQ(m.run(1000).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x200, 1)[0], 55u);  // 1+...+10
}

TEST(Machine, SubroutineCallAndReturn) {
  Machine m = makeMachine(R"(
      ldi r1, 5
      jsr double
      st r1, [r0+0x100]
      halt
    double:
      add r1, r1, r1
      rts
  )");
  EXPECT_EQ(m.run(100).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 10u);
}

TEST(Machine, PushPopPreserveValues) {
  Machine m = makeMachine(R"(
    ldi r1, 11
    ldi r2, 22
    push r1
    push r2
    pop r3
    pop r4
    st r3, [r0+0x100]
    st r4, [r0+0x104]
    halt
  )");
  EXPECT_EQ(m.run(100).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 22u);
  EXPECT_EQ(m.readWords(0x104, 1)[0], 11u);
}

TEST(Machine, SignedComparisonsAndBranches) {
  Machine m = makeMachine(R"(
      ldi r1, -5
      cmpi r1, 3
      blt neg        ; -5 < 3, taken
      ldi r2, 0
      jmp store
    neg:
      ldi r2, 1
    store:
      st r2, [r0+0x100]
      halt
  )");
  EXPECT_EQ(m.run(100).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 1u);
}

TEST(Machine, DivisionAndRemainderIdiom) {
  Machine m = makeMachine(R"(
    ldi r1, 37
    ldi r2, 5
    divs r3, r1, r2   ; 7
    mul r4, r3, r2    ; 35
    sub r5, r1, r4    ; 2
    st r3, [r0+0x100]
    st r5, [r0+0x104]
    halt
  )");
  EXPECT_EQ(m.run(100).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 7u);
  EXPECT_EQ(m.readWords(0x104, 1)[0], 2u);
}

TEST(Machine, DivideByZeroRaises) {
  Machine m = makeMachine(R"(
    ldi r1, 1
    ldi r2, 0
    divs r3, r1, r2
    halt
  )");
  const auto result = m.run(100);
  EXPECT_EQ(result.reason, StopReason::Exception);
  EXPECT_EQ(result.exception.kind, ExceptionKind::DivideByZero);
}

TEST(Machine, IllegalInstructionRaises) {
  Machine m{4096};
  m.loadWords(0, {0xFC000000u});  // opcode 63: undefined
  m.cpu().setSp(4096);
  const auto result = m.run(10);
  EXPECT_EQ(result.reason, StopReason::Exception);
  EXPECT_EQ(result.exception.kind, ExceptionKind::IllegalInstruction);
  EXPECT_EQ(result.exception.pc, 0u);
}

TEST(Machine, MisalignedLoadRaisesAddressError) {
  Machine m = makeMachine(R"(
    ldi r1, 2
    ld r2, [r1+0]
    halt
  )");
  const auto result = m.run(10);
  EXPECT_EQ(result.reason, StopReason::Exception);
  EXPECT_EQ(result.exception.kind, ExceptionKind::AddressError);
  EXPECT_EQ(result.exception.address, 2u);
}

TEST(Machine, OutOfRangeStoreRaisesAddressError) {
  Machine m = makeMachine(R"(
    ldi r1, 0x10000
    st r1, [r1+0]
    halt
  )", 4096);
  const auto result = m.run(10);
  EXPECT_EQ(result.reason, StopReason::Exception);
  EXPECT_EQ(result.exception.kind, ExceptionKind::AddressError);
}

TEST(Machine, UncorrectableEccRaisesBusError) {
  Machine m = makeMachine(R"(
    ld r1, [r0+0x100]
    halt
  )");
  m.flipMemoryBit(0x100, 1);
  m.flipMemoryBit(0x100, 7);
  const auto result = m.run(10);
  EXPECT_EQ(result.reason, StopReason::Exception);
  EXPECT_EQ(result.exception.kind, ExceptionKind::BusError);
}

TEST(Machine, SingleEccUpsetIsTransparent) {
  Machine m = makeMachine(R"(
    ld r1, [r0+0x100]
    st r1, [r0+0x200]
    halt
  )");
  m.memory().write(0x100, 77);
  m.flipMemoryBit(0x100, 4);
  EXPECT_EQ(m.run(10).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x200, 1)[0], 77u);
  EXPECT_EQ(m.memory().correctedErrors(), 1u);
}

TEST(Machine, BudgetExhaustionModelsExecutionTimeMonitor) {
  Machine m = makeMachine(R"(
    loop:
      jmp loop
  )");
  const auto result = m.run(50);
  EXPECT_EQ(result.reason, StopReason::BudgetExhausted);
  EXPECT_EQ(result.executedInstructions, 50u);
}

TEST(Machine, MmuViolationOnForeignRegion) {
  Machine m = makeMachine(R"(
    ldi r1, 0x200
    st r1, [r1+0]
    halt
  )");
  m.mmu().addRegion({0x0, 0x100, 1, accessMask(Access::Read) | accessMask(Access::Execute), "text"});
  m.mmu().setEnabled(true);
  m.mmu().setActiveTask(1);
  const auto result = m.run(10);
  EXPECT_EQ(result.reason, StopReason::Exception);
  EXPECT_EQ(result.exception.kind, ExceptionKind::MmuViolation);
  EXPECT_EQ(m.mmu().violationCount(), 1u);
}

TEST(Machine, RegisterBitFlipChangesResult) {
  Machine m = makeMachine(R"(
    ldi r1, 6
    ldi r2, 7
    mul r3, r1, r2
    st r3, [r0+0x100]
    halt
  )");
  // Run two instructions, then flip bit 0 of r1 (6 -> 7).
  EXPECT_FALSE(m.step().has_value());
  EXPECT_FALSE(m.step().has_value());
  m.flipRegisterBit(1, 0);
  EXPECT_EQ(m.run(10).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 49u);  // silent data corruption
}

TEST(Machine, PcBitFlipCanRaiseIllegalInstruction) {
  // Flipping a high PC bit lands in uninitialised memory, which decodes as
  // opcode 0 (nop)... so instead corrupt PC to an odd address: fetch from a
  // misaligned address must raise AddressError.
  Machine m = makeMachine(R"(
    nop
    nop
    halt
  )");
  m.flipPcBit(1);  // pc = 2: misaligned fetch
  const auto result = m.run(10);
  EXPECT_EQ(result.reason, StopReason::Exception);
  EXPECT_EQ(result.exception.kind, ExceptionKind::AddressError);
}

TEST(Machine, StuckAtFaultReassertsEveryInstruction) {
  Machine m = makeMachine(R"(
    ldi r1, 0
    addi r1, r1, 0
    st r1, [r0+0x100]
    halt
  )");
  m.addStuckAtFault({1, 3, true});  // r1 bit 3 stuck high
  EXPECT_EQ(m.run(10).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 8u);
  m.clearStuckAtFaults();
}

TEST(Machine, StackOverflowDetected) {
  Machine m = makeMachine(R"(
    loop:
      push r1
      jmp loop
  )", 4096);
  m.cpu().setSp(0);  // no stack at all: first push wraps below address zero
  const auto result = m.run(100);
  EXPECT_EQ(result.reason, StopReason::Exception);
  // Pushing below address 0 wraps to a huge address -> stack overflow.
  EXPECT_EQ(result.exception.kind, ExceptionKind::StackOverflow);
}

TEST(Machine, HaltIsSticky) {
  Machine m = makeMachine("halt\n");
  EXPECT_EQ(m.run(10).reason, StopReason::Halted);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.run(10).reason, StopReason::Halted);
  EXPECT_EQ(m.run(10).executedInstructions, 0u);
  m.resume();
  EXPECT_FALSE(m.halted());
}

TEST(Machine, DivisionSaturatesOnIntMinByMinusOne) {
  Machine m = makeMachine(R"(
    ldi r1, 1
    shl r1, r1, 31     ; INT_MIN
    ldi r2, -1
    divs r3, r1, r2
    st r3, [r0+0x100]
    halt
  )");
  EXPECT_EQ(m.run(100).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], static_cast<std::uint32_t>(INT32_MAX));
}

TEST(Machine, SignedComparisonAcrossZero) {
  Machine m = makeMachine(R"(
      ldi r1, -1
      ldi r2, 1
      cmp r1, r2
      blt less
      ldi r3, 0
      jmp done
    less:
      ldi r3, 1
    done:
      st r3, [r0+0x100]
      halt
  )");
  EXPECT_EQ(m.run(100).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 1u);  // -1 < 1 in signed compare
}

TEST(Machine, ShiftAmountsMaskedTo31) {
  Machine m = makeMachine(R"(
    ldi r1, 1
    shl r2, r1, 33     ; 33 & 31 = 1
    st r2, [r0+0x100]
    halt
  )");
  EXPECT_EQ(m.run(100).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 2u);
}

TEST(Machine, NestedSubroutines) {
  Machine m = makeMachine(R"(
      ldi r1, 1
      jsr outer
      st r1, [r0+0x100]
      halt
    outer:
      addi r1, r1, 10
      jsr inner
      addi r1, r1, 100
      rts
    inner:
      addi r1, r1, 1000
      rts
  )");
  EXPECT_EQ(m.run(100).reason, StopReason::Halted);
  EXPECT_EQ(m.readWords(0x100, 1)[0], 1111u);
}

TEST(Machine, ContextSaveRestoreRoundTrip) {
  Machine m = makeMachine(R"(
    ldi r1, 5
    ldi r2, 7
    cmpi r1, 9
    halt
  )");
  (void)m.step();
  (void)m.step();
  (void)m.step();
  const CpuState saved = m.saveContext();  // r1=5, r2=7, N flag set, pc=12
  // Clobber everything, then restore.
  m.cpu().regs.fill(0xDEAD);
  m.cpu().pc = 0x4000;
  m.cpu().flagNegative = false;
  m.restoreContext(saved);
  EXPECT_EQ(m.cpu().regs[1], 5u);
  EXPECT_EQ(m.cpu().regs[2], 7u);
  EXPECT_EQ(m.cpu().pc, 12u);
  EXPECT_TRUE(m.cpu().flagNegative);
  EXPECT_EQ(m.run(10).reason, StopReason::Halted);
}

TEST(Machine, DeterministicReplay) {
  auto runOnce = [] {
    Machine m = makeMachine(R"(
        ldi r1, 0
        ldi r2, 1
      loop:
        add r1, r1, r2
        addi r2, r2, 1
        cmpi r2, 100
        blt loop
        st r1, [r0+0x300]
        halt
    )");
    (void)m.run(10000);
    return m.readWords(0x300, 1)[0];
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace nlft::hw
