#include "hw/mmu.hpp"

#include <gtest/gtest.h>

namespace nlft::hw {
namespace {

Mmu makeMmu() {
  Mmu mmu;
  mmu.addRegion({0x0000, 0x100, 1, accessMask(Access::Read) | accessMask(Access::Execute), "task1-text"});
  mmu.addRegion({0x1000, 0x100, 1, accessMask(Access::Read) | accessMask(Access::Write), "task1-data"});
  mmu.addRegion({0x2000, 0x100, 2, accessMask(Access::Read) | accessMask(Access::Write), "task2-data"});
  mmu.setEnabled(true);
  return mmu;
}

TEST(Mmu, AllowsOwnedRegionWithMatchingPermission) {
  Mmu mmu = makeMmu();
  mmu.setActiveTask(1);
  EXPECT_FALSE(mmu.check(0x0000, Access::Execute).has_value());
  EXPECT_FALSE(mmu.check(0x0010, Access::Read).has_value());
  EXPECT_FALSE(mmu.check(0x1004, Access::Write).has_value());
}

TEST(Mmu, DeniesWrongPermission) {
  Mmu mmu = makeMmu();
  mmu.setActiveTask(1);
  const auto violation = mmu.check(0x0000, Access::Write);  // text is read/execute only
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->address, 0x0000u);
  EXPECT_EQ(violation->task, 1u);
}

TEST(Mmu, DeniesOtherTasksRegion) {
  Mmu mmu = makeMmu();
  mmu.setActiveTask(1);
  EXPECT_TRUE(mmu.check(0x2000, Access::Read).has_value());
  mmu.setActiveTask(2);
  EXPECT_FALSE(mmu.check(0x2000, Access::Read).has_value());
  EXPECT_TRUE(mmu.check(0x1000, Access::Read).has_value());
}

TEST(Mmu, DeniesUnmappedAddress) {
  Mmu mmu = makeMmu();
  mmu.setActiveTask(1);
  EXPECT_TRUE(mmu.check(0x5000, Access::Read).has_value());
}

TEST(Mmu, RegionBoundsAreHalfOpen) {
  Mmu mmu = makeMmu();
  mmu.setActiveTask(1);
  EXPECT_FALSE(mmu.check(0x10FF & ~3u, Access::Read).has_value());  // last word inside
  EXPECT_TRUE(mmu.check(0x1100, Access::Read).has_value());        // one past the end
}

TEST(Mmu, KernelBypassesProtection) {
  Mmu mmu = makeMmu();
  mmu.setActiveTask(kKernelTask);
  EXPECT_FALSE(mmu.check(0x5000, Access::Write).has_value());
}

TEST(Mmu, DisabledMmuAllowsEverything) {
  Mmu mmu = makeMmu();
  mmu.setEnabled(false);
  mmu.setActiveTask(1);
  EXPECT_FALSE(mmu.check(0x2000, Access::Write).has_value());
}

TEST(Mmu, ViolationCounterAdvancesViaRecord) {
  Mmu mmu = makeMmu();
  mmu.setActiveTask(1);
  EXPECT_EQ(mmu.violationCount(), 0u);
  if (mmu.check(0x5000, Access::Read)) mmu.recordViolation();
  EXPECT_EQ(mmu.violationCount(), 1u);
}

TEST(Mmu, OverlappingRegionsAnyPermittingRegionWins) {
  Mmu mmu;
  mmu.addRegion({0x0, 0x100, 1, accessMask(Access::Read), "ro"});
  mmu.addRegion({0x0, 0x100, 1, accessMask(Access::Write), "wo"});
  mmu.setEnabled(true);
  mmu.setActiveTask(1);
  EXPECT_FALSE(mmu.check(0x10, Access::Read).has_value());
  EXPECT_FALSE(mmu.check(0x10, Access::Write).has_value());
  EXPECT_TRUE(mmu.check(0x10, Access::Execute).has_value());
}

}  // namespace
}  // namespace nlft::hw
