// The interpreted wheel task running as a TEM-protected critical task on
// the real-time kernel: the full vertical stack (ISA program -> machine ->
// copy plans -> TEM -> kernel -> delivered results).
#include "faults/machine_behavior.hpp"

#include <gtest/gtest.h>

#include "bbw/control.hpp"
#include "bbw/wheel_task.hpp"
#include "core/node.hpp"

namespace nlft::fi {
namespace {

using util::Duration;
using util::SimTime;

struct MachineBehaviorFixture : ::testing::Test {
  sim::Simulator simulator;
  tem::NlftNode node{simulator};
  std::shared_ptr<MachineTaskPort> port;
  rt::TaskId task{};
  std::vector<std::vector<std::uint32_t>> results;

  void addWheelTask() {
    const TaskImage image = bbw::makeWheelTaskImage(0, 0, -1);  // inputs come from the port
    port = std::make_shared<MachineTaskPort>(
        std::vector<std::uint32_t>{800 * 256, 50, static_cast<std::uint32_t>(-1)});
    rt::TaskConfig config;
    config.name = "wheel-isa";
    config.priority = 5;
    config.period = Duration::milliseconds(10);
    // WCET from the clock model: ~29 instructions * 2 cycles / 25 MHz ~ 3 us;
    // give a small margin.
    config.wcet = Duration::microseconds(5);
    task = node.addCriticalTask(config, makeMachineBehavior(image, MachineClock{}, port));
    node.setResultSink([this](const rt::JobResult& result) { results.push_back(result.data); });
  }
};

TEST_F(MachineBehaviorFixture, FaultFreeJobsDeliverTheControlLaw) {
  addWheelTask();
  node.start();
  simulator.runUntil(SimTime::fromUs(35'000));
  ASSERT_EQ(results.size(), 4u);
  std::int32_t limit = 0;
  const std::int32_t torque = bbw::wheelControlFixedPoint(800 * 256, 50, -1, &limit);
  for (const auto& result : results) {
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(static_cast<std::int32_t>(result[0]), torque);
    EXPECT_EQ(static_cast<std::int32_t>(result[1]), limit);
  }
  EXPECT_EQ(node.temStats(task).deliveredCleanly, 4u);
}

TEST_F(MachineBehaviorFixture, InputPortFeedsEachJob) {
  addWheelTask();
  node.start();
  simulator.scheduleAfter(Duration::milliseconds(15), [&] {
    port->setInput({400 * 256, 10, static_cast<std::uint32_t>(-1)});
  });
  simulator.runUntil(SimTime::fromUs(35'000));
  ASSERT_EQ(results.size(), 4u);
  // Jobs 0,1 used the original input; jobs 2,3 the updated one.
  EXPECT_EQ(static_cast<std::int32_t>(results[0][0]),
            static_cast<std::int32_t>(results[1][0]));
  EXPECT_EQ(static_cast<std::int32_t>(results[2][0]), 400 * 256);  // passthrough at low slip
  EXPECT_NE(results[1][0], results[2][0]);
}

TEST_F(MachineBehaviorFixture, RegisterFaultInOneCopyIsMaskedByVote) {
  addWheelTask();
  node.start();
  simulator.scheduleAfter(Duration::milliseconds(9), [&] {
    FaultSpec fault;
    fault.location = RegisterBitFlip{4, 6};  // anti-lock limit register
    fault.afterInstructions = 12;
    port->injectIntoNextCopy(fault);
  });
  simulator.runUntil(SimTime::fromUs(45'000));
  ASSERT_EQ(results.size(), 5u);
  const tem::TemStats& stats = node.temStats(task);
  // The corrupted copy's result disagreed -> third copy -> vote; or the
  // fault was latent in this copy. Either way all five results are correct.
  std::int32_t limit = 0;
  const std::int32_t torque = bbw::wheelControlFixedPoint(800 * 256, 50, -1, &limit);
  for (const auto& result : results) {
    EXPECT_EQ(static_cast<std::int32_t>(result[0]), torque);
  }
  EXPECT_EQ(stats.deliveredCleanly + stats.maskedByVote + stats.maskedByReplacement, 5u);
}

TEST_F(MachineBehaviorFixture, PcFaultTerminatesCopyEarlyAndTimeIsReclaimed) {
  addWheelTask();
  node.start();
  simulator.scheduleAfter(Duration::milliseconds(9), [&] {
    FaultSpec fault;
    fault.location = PcBitFlip{1};  // misaligned fetch -> address error
    fault.afterInstructions = 5;
    port->injectIntoNextCopy(fault);
  });
  simulator.runUntil(SimTime::fromUs(45'000));
  EXPECT_EQ(node.temStats(task).edmDetectedErrors, 1u);
  EXPECT_EQ(node.temStats(task).maskedByReplacement, 1u);
  EXPECT_EQ(node.taskStats(task).completions, 5u);
}

TEST_F(MachineBehaviorFixture, ExecutionTimeFollowsInstructionCount) {
  const MachineClock clock;
  EXPECT_EQ(clock.executionTime(0).us(), 1);  // rounding floor + 1
  EXPECT_GT(clock.executionTime(1000), clock.executionTime(10));
  // 25 MHz, 2 CPI: 1000 instructions = 80 us.
  EXPECT_NEAR(static_cast<double>(clock.executionTime(1000).us()), 80.0, 1.5);
}

}  // namespace
}  // namespace nlft::fi
