// Regression-corpus replay (ctest label "fuzz").
//
// Every checked-in case under tests/corpus/ is re-executed and must
// reproduce exactly what it pinned when it was minted: the outcome class,
// the behaviour signature, and the oracle verdicts (for the corpus seeds:
// no violations at all). A simulator change that shifts any behaviour class
// shows up here as a readable diff of one small JSON case — not as silent
// drift of campaign statistics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/fuzzer.hpp"

namespace nlft::fuzz {
namespace {

std::vector<CorpusEntry> checkedInCorpus() { return loadCorpusDir(NLFT_FUZZ_CORPUS_DIR); }

TEST(FuzzCorpus, CorpusIsNonEmptyAndWellFormed) {
  const std::vector<CorpusEntry> corpus = checkedInCorpus();
  ASSERT_GE(corpus.size(), 6u);
  for (const CorpusEntry& entry : corpus) {
    EXPECT_TRUE(isLegalScenario(entry.scenario)) << entry.signature;
    EXPECT_FALSE(entry.outcome.empty());
    EXPECT_FALSE(entry.signature.empty());
  }
}

TEST(FuzzCorpus, EveryCaseReplaysToItsPinnedBehaviour) {
  const FuzzConfig config;  // default oracles: the real verifier bounds
  for (const CorpusEntry& entry : checkedInCorpus()) {
    const ScenarioVerdict verdict = replayCase(entry, config);
    ASSERT_TRUE(verdict.valid) << entry.signature;
    EXPECT_EQ(fi::describe(verdict.outcome), entry.outcome) << entry.signature;
    EXPECT_EQ(verdict.signature.canonical(), entry.signature);

    // Oracle verdicts must match the expectation list exactly.
    std::vector<std::string> fired;
    for (const OracleViolation& violation : verdict.violations) {
      fired.push_back(violation.oracle);
    }
    EXPECT_EQ(fired, entry.expectedViolations) << entry.signature;
  }
}

TEST(FuzzCorpus, CorpusCoversSeveralBehaviourClasses) {
  std::vector<std::string> outcomes;
  for (const CorpusEntry& entry : checkedInCorpus()) {
    if (std::find(outcomes.begin(), outcomes.end(), entry.outcome) == outcomes.end()) {
      outcomes.push_back(entry.outcome);
    }
  }
  // At least masked + both degradation classes; the corpus is built to hold
  // one representative per discovered signature, not near-duplicates.
  EXPECT_GE(outcomes.size(), 3u);
}

}  // namespace
}  // namespace nlft::fuzz
