// TEM's core guarantee under randomized fault storms: with at most one
// fault affecting any single job, a delivered result is ALWAYS the correct
// one — faults either get masked or degrade to omissions, never to wrong
// outputs. Randomized over fault kinds, timings and task mixes.
#include <gtest/gtest.h>

#include "core/tem.hpp"
#include "util/rng.hpp"

namespace nlft::tem {
namespace {

using util::Duration;
using util::Rng;
using util::SimTime;

class FaultStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultStorm, DeliveredResultsAreAlwaysCorrect) {
  Rng rng{GetParam()};
  sim::Simulator simulator;
  rt::Cpu cpu{simulator};
  rt::RtKernel kernel{simulator, cpu};
  TemConfig temConfig;
  temConfig.maxCopies = 3 + static_cast<int>(rng.uniformInt(2));
  TemExecutor tem{kernel, temConfig};

  // Two critical tasks; each job's correct result encodes (task, jobIndex).
  struct FaultPlan {
    std::uint64_t job;
    int copy;
    int kind;  // 0 = silent corruption, 1 = EDM error in the plan
  };
  std::vector<rt::TaskId> tasks;
  std::vector<std::vector<FaultPlan>> plans(2);
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < 12; ++i) {
      if (rng.bernoulli(0.4)) {
        plans[t].push_back({static_cast<std::uint64_t>(i),
                            1 + static_cast<int>(rng.uniformInt(2)),
                            static_cast<int>(rng.uniformInt(2))});
      }
    }
  }

  for (int t = 0; t < 2; ++t) {
    rt::TaskConfig config;
    config.name = "task" + std::to_string(t);
    config.priority = 5 + t;
    config.period = Duration::milliseconds(10 + 5 * t);
    config.wcet = Duration::milliseconds(1 + t);
    const auto& taskPlans = plans[t];
    tasks.push_back(tem.addCriticalTask(
        config, [t, &taskPlans](const CopyContext& context) -> CopyPlan {
          CopyPlan plan;
          plan.executionTime = Duration::milliseconds(1 + t);
          plan.result = {static_cast<std::uint32_t>(t),
                         static_cast<std::uint32_t>(context.jobIndex)};
          for (const FaultPlan& fault : taskPlans) {
            if (fault.job == context.jobIndex && fault.copy == context.copyIndex) {
              if (fault.kind == 0) {
                plan.result[1] ^= 0x8000;  // silent data corruption
              } else {
                plan.end = CopyPlan::End::DetectedError;
                plan.executionTime = Duration::microseconds(400);
              }
            }
          }
          return plan;
        }));
  }

  // Additionally, random externally reported errors (ECC/MMU style).
  for (int i = 0; i < 6; ++i) {
    const auto at = SimTime::fromUs(1000 + static_cast<std::int64_t>(rng.uniformInt(120'000)));
    const rt::TaskId victim = tasks[rng.uniformInt(2)];
    simulator.scheduleAt(at, [&kernel, victim] {
      kernel.reportTaskError(victim, {rt::ErrorEvent::Source::EccUncorrectable, 0});
    }, sim::EventPriority::FaultInjection);
  }

  int wrongResults = 0;
  int delivered = 0;
  kernel.setResultSink([&](const rt::JobResult& result) {
    ++delivered;
    ASSERT_EQ(result.data.size(), 2u);
    const std::uint32_t task = result.data[0];
    if (result.data[1] != result.jobIndex || task != result.task.value) ++wrongResults;
  });

  kernel.start();
  simulator.runUntil(SimTime::fromUs(130'000));

  EXPECT_EQ(wrongResults, 0);
  EXPECT_GT(delivered, 10);
  // Conservation: every released job either completed or ended in omission
  // (at most one job per task may still be in flight at the horizon).
  for (const rt::TaskId task : tasks) {
    const rt::TaskStats& stats = kernel.stats(task);
    EXPECT_GE(stats.completions + stats.omissions + 1, stats.releases) << task.value;
    EXPECT_LE(stats.completions + stats.omissions, stats.releases) << task.value;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultStorm, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace nlft::tem
