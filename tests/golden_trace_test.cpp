// Golden-trace regression harness: every catalogued fault scenario must
// reproduce its checked-in event trace line-for-line, and the harness must
// catch an intentional behavioural perturbation (self-test).
//
// To update the goldens after an INTENDED change:
//   build/tools/record-golden-traces tests/golden
#include "faults/golden_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace nlft::fi {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string{NLFT_GOLDEN_DIR} + "/" + name + ".trace";
}

TEST(GoldenTrace, CatalogueIsNonTrivial) {
  const auto names = goldenScenarioNames();
  EXPECT_GE(names.size(), 5u);
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    const auto lines = recordScenarioTrace(name);
    EXPECT_FALSE(lines.empty());
  }
}

TEST(GoldenTrace, EveryScenarioMatchesItsCheckedInGolden) {
  for (const std::string& name : goldenScenarioNames()) {
    SCOPED_TRACE(name);
    const auto expected = readTraceFile(goldenPath(name));
    const auto actual = recordScenarioTrace(name);
    const TraceDiff diff = compareTraces(expected, actual);
    EXPECT_TRUE(diff.identical)
        << name << ": first divergence at line " << diff.line << "\n  golden: " << diff.expected
        << "\n  actual: " << diff.actual;
  }
}

TEST(GoldenTrace, RecordingIsDeterministic) {
  const auto a = recordScenarioTrace("cu-failover");
  const auto b = recordScenarioTrace("cu-failover");
  EXPECT_TRUE(compareTraces(a, b).identical);
}

// Self-test: a behavioural perturbation — here a faster node restart
// (mu_R 3 s -> 2 s) — must show up as a trace divergence, otherwise the
// harness would be vacuous.
TEST(GoldenTrace, CatchesPerturbedRestartTime) {
  const auto golden = readTraceFile(goldenPath("fs-kernel-error-restart"));
  bbw::BbwSimConfig perturbed;
  perturbed.restartTime = util::Duration::seconds(2);
  const auto actual = recordScenarioTrace("fs-kernel-error-restart", perturbed);
  const TraceDiff diff = compareTraces(golden, actual);
  EXPECT_FALSE(diff.identical);
  EXPECT_GT(diff.line, 0u);
  EXPECT_NE(diff.expected, diff.actual);
}

TEST(GoldenTrace, GoldenContainsRestartEvent) {
  const auto golden = readTraceFile(goldenPath("fs-kernel-error-restart"));
  const bool hasRestart = std::any_of(golden.begin(), golden.end(), [](const std::string& line) {
    return line.find("node-restarted") != std::string::npos;
  });
  EXPECT_TRUE(hasRestart);  // the scenario exercises mu_R, not just the crash
}

TEST(GoldenTrace, CompareTracesReportsFirstDivergence) {
  const std::vector<std::string> a{"x", "y", "z"};
  const std::vector<std::string> b{"x", "q", "z"};
  const TraceDiff diff = compareTraces(a, b);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.line, 2u);
  EXPECT_EQ(diff.expected, "y");
  EXPECT_EQ(diff.actual, "q");

  const TraceDiff shorter = compareTraces(a, {"x", "y"});
  EXPECT_FALSE(shorter.identical);
  EXPECT_EQ(shorter.line, 3u);
  EXPECT_EQ(shorter.actual, "<missing>");

  EXPECT_TRUE(compareTraces(a, a).identical);
}

}  // namespace
}  // namespace nlft::fi
