// End-to-end checks of the analyzer against the real BBW guest programs:
// derived signatures accept every fault-free execution trace and reject
// mutated ones, derived budgets cover the worst observed runs, derived MMU
// regions admit fault-free execution, and the derived WCETs keep the BBW
// task set schedulable under fault-tolerant RTA.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "analysis/analyzer.hpp"
#include "bbw/cu_task.hpp"
#include "bbw/guest_programs.hpp"
#include "bbw/wheel_task.hpp"
#include "core/control_flow.hpp"
#include "rtkernel/rta.hpp"

namespace nlft {
namespace {

using util::Duration;

// Input sweep that exercises every branch direction of the wheel task:
// {requested torque, slip, current limit}.
const std::vector<std::array<std::int32_t, 3>> kWheelInputs = {
    {200 * 256, 10, -1},       // no slip, no limit
    {200 * 256, 10, 100},      // limit active and recovering below torque
    {200 * 256, 10, 60000},    // limit recovers past torque -> released
    {200 * 256, 50, -1},       // reduce_once, fresh limit
    {200 * 256, 50, 80},       // reduce_once, existing limit
    {200 * 256, 100, -1},      // hard_release, fresh limit
    {200 * 256, 100, 80},      // hard_release, existing limit
    {0, 100, 1},               // limit drops to zero -> clamp
};

TEST(AnalysisBbw, EveryGuestProgramAnalyzesCleanly) {
  for (const bbw::GuestProgram& program : bbw::guestPrograms()) {
    const analysis::ProgramAnalysis& analysis = program.analyze();
    EXPECT_TRUE(analysis.clean()) << program.name << ": "
                                  << analysis::formatReport(program.name, analysis);
    EXPECT_FALSE(analysis.paths.paths.empty()) << program.name;
    EXPECT_FALSE(analysis.paths.truncated) << program.name;
    EXPECT_TRUE(analysis.timing.exact) << program.name;
    EXPECT_GT(analysis.budgetInstructions, analysis.timing.wcetInstructions) << program.name;

    const std::string report = analysis::formatReport(program.name, analysis);
    EXPECT_NE(report.find(program.name), std::string::npos);
    EXPECT_NE(report.find("WCET"), std::string::npos);
    EXPECT_NE(report.find("MMU"), std::string::npos);
  }
}

TEST(AnalysisBbw, DerivedConfigIsAppliedToImages) {
  for (const bbw::GuestProgram& program : bbw::guestPrograms()) {
    const fi::TaskImage image = program.makeNominalImage();
    EXPECT_EQ(image.maxInstructionsPerCopy, program.analyze().budgetInstructions)
        << program.name;
    EXPECT_FALSE(image.mmuRegions.empty()) << program.name;
  }
}

TEST(AnalysisBbw, DerivedSignaturesAcceptEveryFaultFreeWheelTrace) {
  for (const bool checked : {false, true}) {
    const analysis::ProgramAnalysis& analysis =
        checked ? bbw::checkedWheelTaskAnalysis() : bbw::wheelTaskAnalysis();
    tem::SignatureMonitor monitor;
    analysis::populateSignatureMonitor(monitor, analysis);

    for (const auto& [torque, slip, limit] : kWheelInputs) {
      const fi::TaskImage image = checked ? bbw::makeCheckedWheelTaskImage(torque, slip, limit)
                                          : bbw::makeWheelTaskImage(torque, slip, limit);
      const fi::TracedRun traced = fi::runTracedCopy(image, std::nullopt);
      ASSERT_EQ(traced.run.end, fi::CopyRun::End::Output);
      ASSERT_LT(traced.run.instructions, image.maxInstructionsPerCopy);

      const analysis::TraceCheck check = analysis::checkTrace(analysis.cfg, traced.pcTrace);
      EXPECT_TRUE(check.controlFlowIntact) << check.reason;

      monitor.begin();
      for (const std::uint32_t block : analysis::blockTrace(analysis.cfg, traced.pcTrace)) {
        monitor.enterBlock(block);
      }
      EXPECT_TRUE(monitor.finishAndCheck())
          << (checked ? "checked_wheel" : "wheel") << " inputs " << torque << "/" << slip << "/"
          << limit;
    }
  }
}

TEST(AnalysisBbw, DerivedSignaturesAcceptFaultFreeCuTrace) {
  const analysis::ProgramAnalysis& analysis = bbw::cuTaskAnalysis();
  tem::SignatureMonitor monitor;
  analysis::populateSignatureMonitor(monitor, analysis);
  for (const std::int32_t pedal : {-5, 0, 64, 128, 256, 500}) {
    const fi::TracedRun traced = fi::runTracedCopy(bbw::makeCuTaskImage(pedal), std::nullopt);
    ASSERT_EQ(traced.run.end, fi::CopyRun::End::Output);
    monitor.begin();
    for (const std::uint32_t block : analysis::blockTrace(analysis.cfg, traced.pcTrace)) {
      monitor.enterBlock(block);
    }
    EXPECT_TRUE(monitor.finishAndCheck()) << "pedal " << pedal;
  }
}

TEST(AnalysisBbw, MutatedTraceRejected) {
  const analysis::ProgramAnalysis& analysis = bbw::wheelTaskAnalysis();
  tem::SignatureMonitor monitor;
  analysis::populateSignatureMonitor(monitor, analysis);

  const fi::TracedRun traced =
      fi::runTracedCopy(bbw::makeWheelTaskImage(200 * 256, 50, -1), std::nullopt);
  std::vector<std::uint32_t> blocks = analysis::blockTrace(analysis.cfg, traced.pcTrace);
  ASSERT_GE(blocks.size(), 3u);

  // An erroneous jump that skips a block mid-path must change the signature.
  std::vector<std::uint32_t> mutated = blocks;
  mutated.erase(mutated.begin() + 1);
  monitor.begin();
  for (const std::uint32_t block : mutated) monitor.enterBlock(block);
  EXPECT_FALSE(monitor.finishAndCheck());

  // The untouched trace still passes (the monitor state was reset).
  monitor.begin();
  for (const std::uint32_t block : blocks) monitor.enterBlock(block);
  EXPECT_TRUE(monitor.finishAndCheck());
}

TEST(AnalysisBbw, DerivedMmuRegionsAdmitFaultFreeExecution) {
  for (const bbw::GuestProgram& program : bbw::guestPrograms()) {
    fi::TaskImage image = program.makeNominalImage();
    image.enableMmu = true;
    const fi::CopyRun golden = fi::goldenRun(image);
    EXPECT_EQ(golden.end, fi::CopyRun::End::Output) << program.name;
  }
}

TEST(AnalysisBbw, DerivedWcetsKeepBbwSetSchedulableUnderFaults) {
  // The BBW node set, TEM-protected, rate-monotonic: wheel and checked
  // wheel at 5 ms, CU at 10 ms; 1 us per cycle, 10 us comparison overhead;
  // one tolerated fault per 100 ms (paper Section 2.8).
  const Duration perCycle = Duration::microseconds(1);
  const Duration check = Duration::microseconds(10);
  std::vector<rt::RtaTask> tasks = {
      analysis::deriveTemRtaTask(bbw::wheelTaskAnalysis(), perCycle, check,
                                 Duration::milliseconds(5), Duration::milliseconds(5), 3),
      analysis::deriveTemRtaTask(bbw::checkedWheelTaskAnalysis(), perCycle, check,
                                 Duration::milliseconds(5), Duration::milliseconds(5), 2),
      analysis::deriveTemRtaTask(bbw::cuTaskAnalysis(), perCycle, check,
                                 Duration::milliseconds(10), Duration::milliseconds(10), 1),
  };
  EXPECT_TRUE(rt::analyze(tasks).schedulable);
  EXPECT_TRUE(rt::analyze(tasks, Duration::milliseconds(100)).schedulable);

  // Sanity: the derived WCETs are in the expected ballpark (tens of
  // microseconds), not zero and not wildly inflated.
  for (const rt::RtaTask& task : tasks) {
    EXPECT_GT(task.wcet, Duration::microseconds(20));
    EXPECT_LT(task.wcet, Duration::milliseconds(1));
  }
}

TEST(AnalysisBbw, BudgetStopsRunawayCopyBeforeJobSlackExhausted) {
  // A PC stuck in a tight loop must hit the derived budget, not run forever:
  // pick a fault that redirects the PC to the entry (infinite re-execution
  // without HALT is impossible here, but a too-loose budget would still
  // classify differently). The point: budget overrun ends the copy.
  const fi::TaskImage image = bbw::makeWheelTaskImage(200 * 256, 50, -1);
  fi::FaultSpec fault;
  fault.afterInstructions = 5;
  fault.targetCopy = 1;
  fault.location = fi::PcBitFlip{7};  // PC ^= 0x80: lands mid-text
  const fi::TracedRun traced = fi::runTracedCopy(image, fault);
  EXPECT_LE(traced.run.instructions, image.maxInstructionsPerCopy);
}

}  // namespace
}  // namespace nlft
