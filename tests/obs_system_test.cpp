// Observability against the system simulation: the differential golden test
// (recorder event counts must exactly match the counts greppable from the
// checked-in golden traces), run-report/campaign reconciliation, and
// bit-identity of the deterministic metrics across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "faults/golden_trace.hpp"
#include "faults/system_campaign.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nlft::fi {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string{NLFT_GOLDEN_DIR} + "/" + name + ".trace";
}

/// (category, name) key of one recorder instant, as the system-sim adapter
/// maps trace lines (src/bbw/system_sim.cpp record() companions).
using EventKey = std::pair<std::string, std::string>;

/// Classifies one golden trace line; returns false for non-event lines
/// (the trailing "result ..." summary).
bool classifyGoldenLine(const std::string& line, EventKey& key) {
  if (line.rfind("t=", 0) != 0) return false;
  std::istringstream in{line};
  std::string time, word;
  in >> time >> word;
  if (word == "inject") {
    std::string kind;
    in >> kind;
    key = {"inject", kind};
  } else if (word == "omission" || word == "undetected-value") {
    key = {"failure", word};
  } else if (word == "node-silent" || word == "node-restarted") {
    key = {"node", word};
  } else if (word == "task-error" || word == "kernel-error" || word == "job-omitted") {
    key = {"kernel", word};
  } else if (word == "membership") {
    key = {"membership", "membership-change"};
  } else if (word == "bus-drop") {
    key = {"bus", "bus-drop"};
  } else if (word == "vehicle-stopped") {
    key = {"vehicle", "vehicle-stopped"};
  } else {
    ADD_FAILURE() << "unclassified golden trace line: " << line;
    return false;
  }
  return true;
}

// For every catalogued scenario: re-run it with the trace recorder attached
// and reconcile the recorder's (category, name) counts against the counts
// grepped from the checked-in golden trace — exactly, in both directions.
TEST(ObsGoldenDifferential, RecorderCountsMatchGoldenTraceCounts) {
  for (const std::string& name : goldenScenarioNames()) {
    SCOPED_TRACE(name);
    const std::vector<std::string> golden = readTraceFile(goldenPath(name));

    obs::TraceRecorder recorder;
    const std::vector<std::string> actual = recordScenarioTrace(name, {}, &recorder);
    ASSERT_TRUE(compareTraces(golden, actual).identical)
        << "scenario drifted from its golden; differential comparison is void";

    std::map<EventKey, std::uint64_t> expected;
    for (const std::string& line : golden) {
      EventKey key;
      if (classifyGoldenLine(line, key)) ++expected[key];
    }
    ASSERT_FALSE(expected.empty());

    std::uint64_t expectedTotal = 0;
    for (const auto& [key, count] : expected) {
      EXPECT_EQ(recorder.countEvents(key.first, key.second), count)
          << "category=" << key.first << " name=" << key.second;
      expectedTotal += count;
    }

    // And nothing extra: every recorded instant (phase 'i', excluding the
    // synthetic CPU spans and lane metadata) maps back to a golden line.
    std::uint64_t recordedInstants = 0;
    for (const obs::TraceEvent& event : recorder.events()) {
      if (event.phase != 'i') continue;
      ++recordedInstants;
      EXPECT_TRUE(expected.count({event.category, event.name}))
          << "recorder-only event: cat=" << event.category << " name=" << event.name;
    }
    EXPECT_EQ(recordedInstants, expectedTotal);

    // The CPU span export is present and well-formed Chrome JSON.
    EXPECT_GT(recorder.countCategory("cpu"), 0u);
    const obs::JsonValue doc = obs::parseJson(recorder.toJson());
    EXPECT_EQ(doc.get("traceEvents").size(), recorder.events().size());
  }
}

// The golden traces must stay identical whether or not observability is
// attached — instrumentation may never perturb behaviour.
TEST(ObsGoldenDifferential, AttachingObservabilityDoesNotPerturbTheTrace) {
  obs::TraceRecorder recorder;
  obs::Registry metrics;
  const auto plain = recordScenarioTrace("nlft-computation-fault");
  const auto instrumented = recordScenarioTrace("nlft-computation-fault", {}, &recorder, &metrics);
  EXPECT_TRUE(compareTraces(plain, instrumented).identical);
  EXPECT_GT(metrics.count("sim.events_processed"), 0u);
  // The scenario's one fault is masked by TEM (golden: "result temMasked=1").
  EXPECT_EQ(metrics.count("tem.vote.masked_by_vote") +
                metrics.count("tem.vote.masked_by_replacement"),
            1u);
}

SystemCampaignConfig smallCampaign(unsigned threads) {
  SystemCampaignConfig config;
  config.experiments = 48;
  config.seed = 33;
  config.parallelism.threads = threads;
  config.parallelism.chunkSize = 8;
  return config;
}

// Run-report reconciliation: the campaign.* counters the registry exports
// must equal the statistics the campaign returns, counter for counter.
TEST(ObsCampaign, RegistryCountersReconcileWithCampaignStatistics) {
  obs::Registry metrics;
  SystemCampaignConfig config = smallCampaign(2);
  config.metrics = &metrics;
  const SystemCampaignStats stats = runSystemCampaign(config);

  EXPECT_EQ(stats.experiments, config.experiments);
  EXPECT_EQ(metrics.count("campaign.experiments"), stats.experiments);
  EXPECT_EQ(metrics.count("campaign.stops"), stats.stops);
  for (std::size_t o = 0; o < kSystemOutcomeCount; ++o) {
    const std::string name =
        std::string{"campaign.outcome."} + describe(static_cast<SystemOutcome>(o));
    EXPECT_EQ(metrics.count(name), stats.outcomes[o]) << name;
  }
  EXPECT_EQ(metrics.count("campaign.node.injected"), stats.nodeLevel.injected);
  EXPECT_EQ(metrics.count("campaign.node.masked"), stats.nodeLevel.masked);
  EXPECT_EQ(metrics.count("campaign.node.undetected"), stats.nodeLevel.undetected);

  // Per-simulation counters aggregated across all experiments are present.
  EXPECT_GT(metrics.count("sim.events_processed"), 0u);
  EXPECT_GT(metrics.count("bus.frames_delivered"), 0u);
  EXPECT_GT(metrics.count("tem.jobs"), 0u);
  EXPECT_EQ(metrics.count("exec.items"), config.experiments);

  // Profiling output exists but is fenced out of the golden subset.
  EXPECT_TRUE(obs::isNonGoldenMetric("wall.exec.campaign_seconds"));
  EXPECT_GT(metrics.gauge("wall.exec.items_per_second"), 0.0);
}

// The deterministic (golden) subset of the merged registry must be
// bit-identical across thread counts — same fingerprint at 1, 2 and 8
// workers, and the same campaign statistics.
TEST(ObsCampaign, GoldenMetricsAreBitIdenticalAcrossThreadCounts) {
  std::vector<std::string> fingerprints;
  std::vector<std::size_t> stops;
  for (const unsigned threads : {1u, 2u, 8u}) {
    obs::Registry metrics;
    SystemCampaignConfig config = smallCampaign(threads);
    config.metrics = &metrics;
    const SystemCampaignStats stats = runSystemCampaign(config);
    fingerprints.push_back(metrics.goldenFingerprint());
    stops.push_back(stats.stops);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
  EXPECT_EQ(stops[0], stops[1]);
  EXPECT_EQ(stops[0], stops[2]);
}

// Metrics attached vs detached must not change the campaign statistics.
TEST(ObsCampaign, MetricsDoNotChangeCampaignStatistics) {
  SystemCampaignConfig plain = smallCampaign(2);
  const SystemCampaignStats without = runSystemCampaign(plain);

  obs::Registry metrics;
  SystemCampaignConfig instrumented = smallCampaign(2);
  instrumented.metrics = &metrics;
  const SystemCampaignStats with = runSystemCampaign(instrumented);

  EXPECT_EQ(without.outcomes, with.outcomes);
  EXPECT_EQ(without.stops, with.stops);
  EXPECT_EQ(without.experiments, with.experiments);
}

}  // namespace
}  // namespace nlft::fi
