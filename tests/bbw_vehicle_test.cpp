#include "bbw/vehicle.hpp"

#include <gtest/gtest.h>

#include "bbw/control.hpp"

namespace nlft::bbw {
namespace {

TEST(Burckhardt, CurveShape) {
  const VehicleParams params;
  EXPECT_DOUBLE_EQ(burckhardtMu(params, 0.0), 0.0);
  // Friction peaks somewhere below 0.3 slip and decreases toward lock-up.
  const double peak = burckhardtMu(params, 0.15);
  EXPECT_GT(peak, 1.0);
  EXPECT_GT(peak, burckhardtMu(params, 0.05));
  EXPECT_GT(peak, burckhardtMu(params, 1.0));
  // Clamped outside [0, 1].
  EXPECT_DOUBLE_EQ(burckhardtMu(params, 2.0), burckhardtMu(params, 1.0));
}

TEST(Vehicle, CoastsWithOnlyRollingResistance) {
  Vehicle vehicle;
  vehicle.reset(20.0);
  for (int i = 0; i < 1000; ++i) vehicle.step(0.001);  // 1 s
  // Rolling resistance decel ~0.147 m/s^2.
  EXPECT_NEAR(vehicle.speedMps(), 20.0 - 0.147, 0.02);
}

TEST(Vehicle, BrakingDeceleratesAndStops) {
  Vehicle vehicle;
  vehicle.reset(27.8);  // ~100 km/h
  for (std::size_t w = 0; w < kWheelCount; ++w) vehicle.setBrakeTorque(w, 1100.0);
  int steps = 0;
  while (!vehicle.stopped() && steps < 20000) {
    vehicle.step(0.001);
    ++steps;
  }
  EXPECT_TRUE(vehicle.stopped());
  // Full braking from 100 km/h on dry asphalt: roughly 40-60 m.
  EXPECT_GT(vehicle.distanceM(), 30.0);
  EXPECT_LT(vehicle.distanceM(), 80.0);
}

TEST(Vehicle, ExcessiveTorqueLocksTheWheel) {
  Vehicle vehicle;
  vehicle.reset(27.8);
  vehicle.setBrakeTorque(FrontLeft, 5000.0);
  for (int i = 0; i < 300; ++i) vehicle.step(0.001);
  EXPECT_GT(vehicle.slip(FrontLeft), 0.9);          // locked
  EXPECT_LT(vehicle.slip(RearRight), 0.05);         // free rolling
}

TEST(Vehicle, MissingOneWheelLengthensTheStop) {
  auto stoppingDistance = [](int activeWheels) {
    Vehicle vehicle;
    vehicle.reset(27.8);
    for (int w = 0; w < activeWheels; ++w) vehicle.setBrakeTorque(w, 1100.0);
    int steps = 0;
    while (!vehicle.stopped() && steps < 60000) {
      vehicle.step(0.001);
      ++steps;
    }
    return vehicle.distanceM();
  };
  const double four = stoppingDistance(4);
  const double three = stoppingDistance(3);
  EXPECT_GT(three, four * 1.05);  // degraded mode brakes measurably worse
}

TEST(Vehicle, ResetRestoresInitialState) {
  Vehicle vehicle;
  vehicle.reset(10.0);
  vehicle.setBrakeTorque(0, 500.0);
  for (int i = 0; i < 100; ++i) vehicle.step(0.001);
  vehicle.reset(15.0);
  EXPECT_DOUBLE_EQ(vehicle.speedMps(), 15.0);
  EXPECT_DOUBLE_EQ(vehicle.distanceM(), 0.0);
  EXPECT_DOUBLE_EQ(vehicle.brakeTorque(0), 0.0);
  EXPECT_NEAR(vehicle.slip(0), 0.0, 1e-12);
}

TEST(Vehicle, NegativeTorqueClampedToZero) {
  Vehicle vehicle;
  vehicle.reset(10.0);
  vehicle.setBrakeTorque(0, -100.0);
  EXPECT_DOUBLE_EQ(vehicle.brakeTorque(0), 0.0);
  EXPECT_THROW(vehicle.reset(-1.0), std::invalid_argument);
}

TEST(Vehicle, SplitMuSurfaceLocksTheLowFrictionWheelFirst) {
  VehicleParams params;
  params.frictionScale = {1.0, 0.25, 1.0, 0.25};  // right side on ice
  Vehicle vehicle{params};
  vehicle.reset(20.0);
  for (std::size_t w = 0; w < kWheelCount; ++w) vehicle.setBrakeTorque(w, 900.0);
  for (int i = 0; i < 400; ++i) vehicle.step(0.001);
  // The icy wheels cannot transfer 900 Nm: they lock; the grippy side holds.
  EXPECT_GT(vehicle.slip(FrontRight), 0.8);
  EXPECT_LT(vehicle.slip(FrontLeft), 0.3);
}

TEST(Vehicle, AbsControlsEachWheelToItsOwnSurface) {
  VehicleParams params;
  params.frictionScale = {1.0, 0.25, 1.0, 0.25};
  Vehicle vehicle{params};
  vehicle.reset(20.0);
  std::array<WheelSlipController, kWheelCount> controllers;
  double maxIcySlip = 0.0;
  for (int ms = 0; ms < 6000 && !vehicle.stopped(); ++ms) {
    if (ms % 5 == 0) {
      for (std::size_t w = 0; w < kWheelCount; ++w) {
        vehicle.setBrakeTorque(w, controllers[w].update(900.0, vehicle.slip(w)));
      }
    }
    vehicle.step(0.001);
    if (vehicle.speedMps() > 2.0) {
      maxIcySlip = std::max(maxIcySlip, vehicle.slip(FrontRight));
    }
  }
  EXPECT_TRUE(vehicle.stopped());
  EXPECT_LT(maxIcySlip, 0.75);  // the icy wheel is regulated, not locked
}

TEST(Vehicle, IceLengthensTheStop) {
  auto distance = [](double iceScale) {
    VehicleParams params;
    params.frictionScale = {1.0, iceScale, 1.0, iceScale};
    Vehicle vehicle{params};
    vehicle.reset(27.8);
    std::array<WheelSlipController, kWheelCount> controllers;
    for (int ms = 0; ms < 30000 && !vehicle.stopped(); ++ms) {
      if (ms % 5 == 0) {
        for (std::size_t w = 0; w < kWheelCount; ++w) {
          vehicle.setBrakeTorque(w, controllers[w].update(1200.0, vehicle.slip(w)));
        }
      }
      vehicle.step(0.001);
    }
    return vehicle.distanceM();
  };
  EXPECT_GT(distance(0.25), distance(1.0) * 1.2);
}

// --- control algorithms ---

TEST(Distribution, FrontRearSplit) {
  CentralUnitConfig config;
  const auto torques = distributeBrakeForce(config, 1.0);
  EXPECT_DOUBLE_EQ(torques[FrontLeft], torques[FrontRight]);
  EXPECT_DOUBLE_EQ(torques[RearLeft], torques[RearRight]);
  // 60/40 split -> front/rear torque ratio 1.5.
  EXPECT_NEAR(torques[FrontLeft] / torques[RearLeft], 1.5, 1e-12);
  // Total force: sum(torque)/R = maxTotalForce.
  const double totalForce =
      (torques[0] + torques[1] + torques[2] + torques[3]) / config.wheelRadiusM;
  EXPECT_NEAR(totalForce, config.maxTotalForceN, 1e-9);
}

TEST(Distribution, PedalScalesLinearlyAndClamps) {
  CentralUnitConfig config;
  const auto half = distributeBrakeForce(config, 0.5);
  const auto full = distributeBrakeForce(config, 1.0);
  EXPECT_NEAR(half[FrontLeft] * 2.0, full[FrontLeft], 1e-9);
  const auto over = distributeBrakeForce(config, 1.7);
  EXPECT_DOUBLE_EQ(over[FrontLeft], full[FrontLeft]);
  const auto idle = distributeBrakeForce(config, 0.0);
  EXPECT_DOUBLE_EQ(idle[RearLeft], 0.0);
}

TEST(SlipController, PassesThroughBelowTargetSlip) {
  WheelSlipController controller;
  EXPECT_DOUBLE_EQ(controller.update(800.0, 0.05), 800.0);
  EXPECT_DOUBLE_EQ(controller.update(800.0, 0.10), 800.0);
}

TEST(SlipController, ReducesTorqueAboveTargetSlip) {
  WheelSlipController controller;
  const double first = controller.update(800.0, 0.20);
  EXPECT_LT(first, 800.0);
  const double second = controller.update(800.0, 0.20);
  EXPECT_LT(second, first);  // keeps reducing while slip stays high
}

TEST(SlipController, DumpsHardAboveReleaseSlip) {
  WheelSlipController reduceOnce;
  WheelSlipController dumpHard;
  const double gentle = reduceOnce.update(800.0, 0.20);
  const double hard = dumpHard.update(800.0, 0.30);
  EXPECT_LT(hard, gentle);
}

TEST(SlipController, RecoversWhenSlipNormalises) {
  WheelSlipController controller;
  double torque = controller.update(800.0, 0.3);
  const double reduced = torque;
  for (int i = 0; i < 50; ++i) torque = controller.update(800.0, 0.05);
  EXPECT_GT(torque, reduced);
  EXPECT_DOUBLE_EQ(torque, 800.0);  // limit fully released eventually
}

TEST(SlipController, StateRoundTripsThroughPacking) {
  WheelSlipController a;
  (void)a.update(800.0, 0.2);  // activate a limit
  WheelSlipController b;
  b.restoreState(a.packedState());
  EXPECT_DOUBLE_EQ(a.update(800.0, 0.05), b.update(800.0, 0.05));
  WheelSlipController fresh;
  EXPECT_EQ(fresh.packedState(), 0xFFFFFFFFu);
}

TEST(SlipController, RegulatesSlipInClosedLoop) {
  // With ABS the wheel must not lock even under a huge torque request.
  Vehicle vehicle;
  vehicle.reset(27.8);
  std::array<WheelSlipController, kWheelCount> controllers;
  double maxSlipSeen = 0.0;
  for (int ms = 0; ms < 4000 && !vehicle.stopped(); ++ms) {
    if (ms % 5 == 0) {  // 5 ms control period
      for (std::size_t w = 0; w < kWheelCount; ++w) {
        vehicle.setBrakeTorque(w, controllers[w].update(2500.0, vehicle.slip(w)));
      }
    }
    vehicle.step(0.001);
    if (vehicle.speedMps() > 3.0) {
      for (std::size_t w = 0; w < kWheelCount; ++w)
        maxSlipSeen = std::max(maxSlipSeen, vehicle.slip(w));
    }
  }
  EXPECT_TRUE(vehicle.stopped());
  EXPECT_LT(maxSlipSeen, 0.6);  // transiently high, but never sustained lock
  EXPECT_LT(vehicle.distanceM(), 70.0);
}

TEST(FixedPointControl, MirrorsFloatStructure) {
  // Below target: passthrough, no limit.
  std::int32_t limit = -1;
  EXPECT_EQ(wheelControlFixedPoint(800 * 256, 10, -1, &limit), 800 * 256);
  EXPECT_EQ(limit, -1);
  // Above target: limit activates below the request.
  const std::int32_t reduced = wheelControlFixedPoint(800 * 256, 50, -1, &limit);
  EXPECT_LT(reduced, 800 * 256);
  EXPECT_EQ(reduced, limit);
  // Recovery: limit grows and eventually releases.
  std::int32_t l2 = limit;
  for (int i = 0; i < 40 && l2 >= 0; ++i) (void)wheelControlFixedPoint(800 * 256, 10, l2, &l2);
  EXPECT_EQ(l2, -1);
}

TEST(FixedPointControl, NeverNegativeTorque) {
  std::int32_t limit = -1;
  std::int32_t torque = 100 * 256;
  for (int i = 0; i < 100; ++i) {
    torque = wheelControlFixedPoint(100 * 256, 80, limit, &limit);
    EXPECT_GE(torque, 0);
  }
}

}  // namespace
}  // namespace nlft::bbw
