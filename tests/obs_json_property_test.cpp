// Property tests of the obs::JsonValue <-> obs::parseJson round-trip.
//
// The fuzzer's corpus case files (tests/corpus/*.json), the run reports and
// the verifier's --json output all rest on this pair, so the contract is
// pinned property-style over randomized documents:
//
//   * dump -> parse -> dump is BYTE-IDENTICAL (dump() emits a normal form
//     and parsing it is the identity on that form), for compact and
//     pretty-printed output alike;
//   * numeric values survive exactly: int64 round-trips as integers,
//     finite doubles reparse to the bit-identical double (shortest
//     round-trip formatting), non-finite doubles serialise as null;
//   * strings survive arbitrary escapes and control characters;
//   * malformed input is REJECTED with std::runtime_error, never parsed
//     into something plausible.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/rng.hpp"

namespace nlft::obs {
namespace {

std::string randomString(util::Rng& rng) {
  static const std::vector<std::string> atoms = {
      "\"", "\\", "/", "\b", "\f", "\n", "\r", "\t", "\x01", "\x1f",
      "plain", "käse", "日本", "\xf0\x9f\x9a\x97", "a b", "{", "}", "[", "]",
      ":", ",", "0", "null", "\\u0041", "end\\",
  };
  std::string s;
  const std::size_t pieces = rng.uniformInt(6);
  for (std::size_t i = 0; i < pieces; ++i) s += atoms[rng.uniformInt(atoms.size())];
  return s;
}

double randomDouble(util::Rng& rng) {
  switch (rng.uniformInt(8)) {
    case 0: return 0.0;
    case 1: return rng.uniform(-1.0, 1.0);
    case 2: return rng.uniform(-1e18, 1e18);
    case 3: return std::ldexp(rng.uniform(0.5, 1.0), -1040);  // subnormal range
    case 4: return std::ldexp(rng.uniform(0.5, 1.0), 1020);   // huge magnitude
    case 5: return std::numeric_limits<double>::min();
    case 6: return std::numeric_limits<double>::denorm_min();
    default: return std::numeric_limits<double>::max();
  }
}

std::int64_t randomInt(util::Rng& rng) {
  switch (rng.uniformInt(4)) {
    case 0: return static_cast<std::int64_t>(rng.uniformInt(100));
    case 1: return -static_cast<std::int64_t>(rng.uniformInt(1'000'000'000));
    case 2: return std::numeric_limits<std::int64_t>::max();
    default: return std::numeric_limits<std::int64_t>::min();
  }
}

JsonValue randomValue(util::Rng& rng, int depth) {
  const std::uint64_t pick = rng.uniformInt(depth > 0 ? 7 : 5);
  switch (pick) {
    case 0: return JsonValue::null();
    case 1: return JsonValue::boolean(rng.bernoulli(0.5));
    case 2: return JsonValue::integer(randomInt(rng));
    case 3: {
      // Exclude -0.0: it serialises as "-0", which reparses as integer 0 —
      // normal-form edge pinned separately below.
      const double d = randomDouble(rng);
      return JsonValue::number(std::signbit(d) && d == 0.0 ? 0.0 : d);
    }
    case 4: return JsonValue::string(randomString(rng));
    case 5: {
      JsonValue array = JsonValue::array();
      const std::size_t n = rng.uniformInt(4);
      for (std::size_t i = 0; i < n; ++i) array.push(randomValue(rng, depth - 1));
      return array;
    }
    default: {
      JsonValue object = JsonValue::object();
      const std::size_t n = rng.uniformInt(4);
      for (std::size_t i = 0; i < n; ++i) {
        object.set(randomString(rng), randomValue(rng, depth - 1));
      }
      return object;
    }
  }
}

TEST(ObsJsonProperty, DumpParseDumpIsByteIdentical) {
  util::Rng rng{20260808};
  for (int i = 0; i < 2000; ++i) {
    const JsonValue value = randomValue(rng, 4);
    const std::string compact = value.dump();
    const JsonValue reparsed = parseJson(compact);
    EXPECT_EQ(reparsed.dump(), compact) << compact;
    // Pretty-printing changes only whitespace.
    EXPECT_EQ(parseJson(value.dump(2)).dump(), compact) << compact;
  }
}

TEST(ObsJsonProperty, NumericValuesSurviveExactly) {
  util::Rng rng{77};
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t integer = randomInt(rng);
    const JsonValue intBack = parseJson(JsonValue::integer(integer).dump());
    EXPECT_EQ(intBack.kind(), JsonValue::Kind::Int);
    EXPECT_EQ(intBack.asInt(), integer);

    const double d = randomDouble(rng);
    const JsonValue doubleBack = parseJson(JsonValue::number(d).dump());
    ASSERT_TRUE(doubleBack.isNumber()) << d;
    // Bit-exact: shortest-round-trip formatting guarantees strtod returns
    // the identical double (integral doubles come back as Kind::Int with
    // the same numeric value).
    EXPECT_EQ(doubleBack.asDouble(), d) << d;
  }
}

TEST(ObsJsonProperty, NumberEdgeCasesHavePinnedNormalForms) {
  EXPECT_EQ(JsonValue::number(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(JsonValue::number(-std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(JsonValue::number(std::nan("")).dump(), "null");
  // -0.0 dumps as "-0" and normalises to integer 0 after one parse; the
  // parse of the normal form is then a fixed point.
  const std::string minusZero = JsonValue::number(-0.0).dump();
  EXPECT_EQ(minusZero, "-0");
  EXPECT_EQ(parseJson(minusZero).dump(), "0");
  EXPECT_EQ(parseJson("0").dump(), "0");
  // int64 extremes parse back as integers, one past the range falls back
  // to double without throwing.
  EXPECT_EQ(parseJson("-9223372036854775808").kind(), JsonValue::Kind::Int);
  EXPECT_EQ(parseJson("9223372036854775808").kind(), JsonValue::Kind::Double);
}

TEST(ObsJsonProperty, EscapedStringsRoundTrip) {
  util::Rng rng{123};
  for (int i = 0; i < 2000; ++i) {
    const std::string raw = randomString(rng);
    const JsonValue back = parseJson(JsonValue::string(raw).dump());
    ASSERT_EQ(back.kind(), JsonValue::Kind::String);
    EXPECT_EQ(back.asString(), raw);
  }
  // Every control character individually.
  for (int c = 1; c < 0x20; ++c) {
    const std::string raw(1, static_cast<char>(c));
    EXPECT_EQ(parseJson(JsonValue::string(raw).dump()).asString(), raw) << c;
  }
}

TEST(ObsJsonProperty, MalformedInputIsRejected) {
  const std::vector<std::string> malformed = {
      "",
      "   ",
      "{",
      "}",
      "[1,",
      "[1 2]",
      "{\"a\":}",
      "{\"a\" 1}",
      "{a:1}",
      "\"unterminated",
      "\"bad\\escape\"",
      "\"bad\\u12\"",
      "tru",
      "nul",
      "NaN",
      "Infinity",
      "-",
      "--1",
      "+1",
      "1.",
      ".5",
      "1e",
      "1e+",
      "1..2",
      "1-2",
      "{} trailing",
      "[1] [2]",
      "'single'",
  };
  for (const std::string& text : malformed) {
    EXPECT_THROW((void)parseJson(text), std::runtime_error) << "'" << text << "'";
  }
}

TEST(ObsJsonProperty, DeepNestingRoundTrips) {
  JsonValue value = JsonValue::integer(7);
  for (int depth = 0; depth < 64; ++depth) {
    JsonValue wrap = depth % 2 == 0 ? JsonValue::array() : JsonValue::object();
    if (depth % 2 == 0) {
      wrap.push(std::move(value));
    } else {
      wrap.set("k", std::move(value));
    }
    value = std::move(wrap);
  }
  const std::string compact = value.dump();
  EXPECT_EQ(parseJson(compact).dump(), compact);
}

}  // namespace
}  // namespace nlft::obs
