#include "hw/memory.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nlft::hw {
namespace {

TEST(EccMemory, ReadBackWrites) {
  EccMemory mem{1024};
  EXPECT_TRUE(mem.write(0, 0xDEADBEEF));
  EXPECT_TRUE(mem.write(1020, 42));
  const auto a = mem.read(0);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.value, 0xDEADBEEFu);
  const auto b = mem.read(1020);
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(b.value, 42u);
}

TEST(EccMemory, FreshMemoryReadsZero) {
  EccMemory mem{64};
  for (std::uint32_t addr = 0; addr < 64; addr += 4) {
    const auto r = mem.read(addr);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, 0u);
  }
}

TEST(EccMemory, RejectsMisalignedAndOutOfRange) {
  EccMemory mem{64};
  EXPECT_FALSE(mem.read(2).ok);
  EXPECT_FALSE(mem.read(64).ok);
  EXPECT_FALSE(mem.write(3, 1));
  EXPECT_FALSE(mem.write(68, 1));
  EXPECT_FALSE(mem.flipBit(2, 0));
  EXPECT_FALSE(mem.flipBit(0, 39));
  EXPECT_FALSE(mem.flipBit(0, -1));
}

TEST(EccMemory, SingleBitUpsetIsCorrectedAndScrubbed) {
  EccMemory mem{64};
  mem.write(8, 0x1234);
  EXPECT_TRUE(mem.flipBit(8, 5));
  const auto first = mem.read(8);
  EXPECT_TRUE(first.ok);
  EXPECT_TRUE(first.corrected);
  EXPECT_EQ(first.value, 0x1234u);
  EXPECT_EQ(mem.correctedErrors(), 1u);
  // Scrub-on-read means the second read is clean.
  const auto second = mem.read(8);
  EXPECT_TRUE(second.ok);
  EXPECT_FALSE(second.corrected);
  EXPECT_EQ(mem.correctedErrors(), 1u);
}

TEST(EccMemory, DoubleBitUpsetIsUncorrectable) {
  EccMemory mem{64};
  mem.write(8, 0x1234);
  mem.flipBit(8, 3);
  mem.flipBit(8, 17);
  const auto r = mem.read(8);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(mem.uncorrectableErrors(), 1u);
}

TEST(EccMemory, RewriteClearsLatentUpset) {
  EccMemory mem{64};
  mem.write(8, 0x1234);
  mem.flipBit(8, 3);
  mem.flipBit(8, 17);
  mem.write(8, 0x5678);  // fresh codeword
  const auto r = mem.read(8);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 0x5678u);
}

TEST(EccMemory, ParityBitUpsetsAreAlsoCorrected) {
  // Bits beyond the data payload (parity positions) must also be covered.
  EccMemory mem{64};
  mem.write(4, 0xCAFE);
  for (int bit = 0; bit < kEccCodewordBits; ++bit) {
    mem.write(4, 0xCAFE);
    mem.flipBit(4, bit);
    const auto r = mem.read(4);
    ASSERT_TRUE(r.ok) << "bit " << bit;
    ASSERT_EQ(r.value, 0xCAFEu) << "bit " << bit;
  }
}

TEST(EccMemory, SizeRoundsDownToWords) {
  EccMemory mem{10};
  EXPECT_EQ(mem.sizeBytes(), 8u);
  EXPECT_EQ(mem.wordCount(), 2u);
}

TEST(EccMemory, ScrubHealsLatentSingleBitUpsets) {
  EccMemory mem{256};
  mem.write(8, 0x1111);
  mem.write(64, 0x2222);
  mem.flipBit(8, 3);
  mem.flipBit(64, 20);
  EXPECT_EQ(mem.scrub(), 2u);
  EXPECT_EQ(mem.scrub(), 0u);  // everything clean now
  EXPECT_EQ(mem.read(8).value, 0x1111u);
  EXPECT_EQ(mem.read(64).value, 0x2222u);
}

TEST(EccMemory, ScrubbingPreventsDoubleBitAccumulation) {
  // Two single-bit upsets in the SAME word, separated in time: without a
  // scrub in between the word becomes unreadable; with one it survives.
  EccMemory unscrubbed{64};
  unscrubbed.write(4, 0xAAAA);
  unscrubbed.flipBit(4, 2);
  unscrubbed.flipBit(4, 9);
  EXPECT_FALSE(unscrubbed.read(4).ok);

  EccMemory scrubbed{64};
  scrubbed.write(4, 0xAAAA);
  scrubbed.flipBit(4, 2);
  EXPECT_EQ(scrubbed.scrub(), 1u);  // the scrubber runs between the upsets
  scrubbed.flipBit(4, 9);
  const auto r = scrubbed.read(4);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 0xAAAAu);
}

TEST(EccMemory, ScrubLeavesUncorrectableWordsAlone) {
  EccMemory mem{64};
  mem.write(4, 1);
  mem.flipBit(4, 0);
  mem.flipBit(4, 1);
  EXPECT_EQ(mem.scrub(), 0u);
  EXPECT_GT(mem.uncorrectableErrors(), 0u);
  EXPECT_FALSE(mem.read(4).ok);  // still bad; a rewrite is needed
  mem.write(4, 2);
  EXPECT_TRUE(mem.read(4).ok);
}

TEST(EccMemory, RandomisedUpsetSweep) {
  util::Rng rng{123};
  EccMemory mem{256};
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint32_t addr = 4 * static_cast<std::uint32_t>(rng.uniformInt(64));
    const auto value = static_cast<std::uint32_t>(rng.next());
    mem.write(addr, value);
    const int flips = 1 + static_cast<int>(rng.uniformInt(2));
    int firstBit = static_cast<int>(rng.uniformInt(kEccCodewordBits));
    mem.flipBit(addr, firstBit);
    if (flips == 2) {
      int secondBit = static_cast<int>(rng.uniformInt(kEccCodewordBits));
      while (secondBit == firstBit) secondBit = static_cast<int>(rng.uniformInt(kEccCodewordBits));
      mem.flipBit(addr, secondBit);
      ASSERT_FALSE(mem.read(addr).ok);
    } else {
      const auto r = mem.read(addr);
      ASSERT_TRUE(r.ok);
      ASSERT_EQ(r.value, value);
    }
  }
}

}  // namespace
}  // namespace nlft::hw
