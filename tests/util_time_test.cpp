#include "util/time.hpp"

#include <gtest/gtest.h>

namespace nlft::util {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(2), Duration::milliseconds(2000));
  EXPECT_EQ(Duration::milliseconds(3), Duration::microseconds(3000));
  EXPECT_EQ(Duration::seconds(1).us(), 1'000'000);
}

TEST(Duration, ArithmeticIsClosed) {
  const auto a = Duration::milliseconds(10);
  const auto b = Duration::milliseconds(4);
  EXPECT_EQ((a + b).us(), 14'000);
  EXPECT_EQ((a - b).us(), 6'000);
  EXPECT_EQ((a * 3).us(), 30'000);
  EXPECT_EQ(a / b, 2);  // floor division
}

TEST(Duration, NegativeDurationsRepresentable) {
  const auto d = Duration::milliseconds(1) - Duration::milliseconds(5);
  EXPECT_LT(d, Duration{});
  EXPECT_EQ(d.us(), -4000);
}

TEST(Duration, FromSecondsRoundsToMicroseconds) {
  EXPECT_EQ(Duration::fromSeconds(0.0000015).us(), 2);  // round half up
  EXPECT_EQ(Duration::fromSeconds(1.25).us(), 1'250'000);
  EXPECT_DOUBLE_EQ(Duration::fromSeconds(3.5).toSeconds(), 3.5);
}

TEST(Duration, Ordering) {
  EXPECT_LT(Duration::microseconds(999), Duration::milliseconds(1));
  EXPECT_GT(Duration::seconds(1), Duration::milliseconds(999));
}

TEST(Duration, ToStringPicksLargestExactUnit) {
  EXPECT_EQ(Duration::seconds(2).toString(), "2s");
  EXPECT_EQ(Duration::milliseconds(1500).toString(), "1500ms");
  EXPECT_EQ(Duration::microseconds(42).toString(), "42us");
}

TEST(SimTime, AbsoluteArithmetic) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + Duration::milliseconds(5);
  EXPECT_EQ((t1 - t0).us(), 5000);
  EXPECT_EQ((t1 - Duration::milliseconds(2)).us(), 3000);
  EXPECT_LT(t0, t1);
}

TEST(SimTime, FromUsRoundTrips) {
  EXPECT_EQ(SimTime::fromUs(123456).us(), 123456);
  EXPECT_DOUBLE_EQ(SimTime::fromUs(2'500'000).toSeconds(), 2.5);
}

TEST(Rates, RatePerHourFromSeconds) {
  EXPECT_DOUBLE_EQ(ratePerHourFromSeconds(3.0), 1200.0);   // mu_R of the paper
  EXPECT_DOUBLE_EQ(ratePerHourFromSeconds(1.6), 2250.0);   // mu_OM of the paper
}

}  // namespace
}  // namespace nlft::util
