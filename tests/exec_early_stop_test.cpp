// Sequential early stopping in exec::runStoppableChunkedCampaign: the stop
// decision is taken on chunk boundaries only, so a stopped campaign returns
// a deterministic prefix of the full run — bit-identical at every thread
// count (docs/ESTIMATORS.md describes the contract).
#include "exec/chunked_campaign.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nlft::exec {
namespace {

struct SumStats {
  std::size_t experiments = 0;
  double sum = 0.0;
  std::size_t n = 0;

  void merge(const SumStats& other) {
    experiments += other.experiments;
    sum += other.sum;
    n += other.n;
  }
};

void runOne(util::Rng& rng, SumStats& stats) {
  stats.sum += rng.uniform01();
  ++stats.n;
}

constexpr std::uint64_t kSeed = 99;

ChunkedCampaignResult<SumStats> runWithRule(std::size_t experiments, unsigned threads,
                                            std::size_t chunkSize,
                                            const EarlyStopRule<SumStats>& rule,
                                            CancellationToken* cancel = nullptr) {
  Parallelism parallelism;
  parallelism.threads = threads;
  parallelism.chunkSize = chunkSize;
  return runStoppableChunkedCampaign<SumStats>(experiments, kSeed, parallelism, "test", runOne,
                                               rule, cancel);
}

TEST(EarlyStop, StopsOnChunkBoundaryOncePredicateHolds) {
  EarlyStopRule<SumStats> rule;
  rule.shouldStop = [](const SumStats&, std::size_t items) { return items >= 300; };
  const auto result = runWithRule(1000, 1, 50, rule);
  EXPECT_TRUE(result.stoppedEarly);
  EXPECT_EQ(result.itemsUsed, 300u);  // first boundary satisfying the rule
  EXPECT_EQ(result.chunksUsed, 6u);
  EXPECT_EQ(result.stats.n, 300u);
  EXPECT_EQ(result.stats.experiments, 300u);
}

TEST(EarlyStop, StoppedResultIsBitIdenticalToShorterCampaign) {
  // A campaign stopped at 300 items must equal, bit for bit, a campaign
  // whose whole budget is 300 items (same seed, same chunk size): early
  // stopping returns a prefix, never a differently sampled run.
  EarlyStopRule<SumStats> rule;
  rule.shouldStop = [](const SumStats&, std::size_t items) { return items >= 300; };
  const auto stopped = runWithRule(1000, 1, 50, rule);
  const auto shortRun = runWithRule(300, 1, 50, {});
  EXPECT_EQ(stopped.stats.n, shortRun.stats.n);
  EXPECT_EQ(stopped.stats.sum, shortRun.stats.sum);  // exact double equality
}

TEST(EarlyStop, BitIdenticalAcrossThreadCounts) {
  EarlyStopRule<SumStats> rule;
  rule.shouldStop = [](const SumStats& prefix, std::size_t) { return prefix.sum >= 120.0; };
  const auto serial = runWithRule(2000, 1, 25, rule);
  ASSERT_TRUE(serial.stoppedEarly);
  for (unsigned threads : {2u, 8u}) {
    const auto parallel = runWithRule(2000, threads, 25, rule);
    EXPECT_EQ(parallel.itemsUsed, serial.itemsUsed) << "threads=" << threads;
    EXPECT_EQ(parallel.chunksUsed, serial.chunksUsed) << "threads=" << threads;
    EXPECT_EQ(parallel.stats.sum, serial.stats.sum) << "threads=" << threads;
    EXPECT_EQ(parallel.stats.n, serial.stats.n) << "threads=" << threads;
  }
}

TEST(EarlyStop, MinItemsDefersTheDecision) {
  EarlyStopRule<SumStats> rule;
  rule.shouldStop = [](const SumStats&, std::size_t) { return true; };  // eager
  rule.minItems = 101;
  const auto result = runWithRule(1000, 1, 50, rule);
  EXPECT_TRUE(result.stoppedEarly);
  // First boundary at or past minItems: 150, not 50.
  EXPECT_EQ(result.itemsUsed, 150u);
}

TEST(EarlyStop, UnreachableRuleRunsTheFullBudget) {
  EarlyStopRule<SumStats> rule;
  rule.shouldStop = [](const SumStats&, std::size_t) { return false; };
  const auto result = runWithRule(400, 2, 25, rule);
  EXPECT_FALSE(result.stoppedEarly);
  EXPECT_EQ(result.itemsUsed, 400u);
  EXPECT_EQ(result.stats.n, 400u);
  // And equals the plain (rule-free) campaign bit for bit.
  const auto plain = runWithRule(400, 1, 25, {});
  EXPECT_EQ(result.stats.sum, plain.stats.sum);
}

TEST(EarlyStop, CallerCancellationStillThrows) {
  CancellationToken cancel;
  cancel.requestCancel();
  EarlyStopRule<SumStats> rule;
  rule.shouldStop = [](const SumStats&, std::size_t items) { return items >= 1000000; };
  EXPECT_THROW((void)runWithRule(1000, 2, 50, rule, &cancel), std::runtime_error);
}

TEST(EarlyStop, PlainWrapperMatchesStoppableWithoutRule) {
  Parallelism parallelism;
  parallelism.threads = 1;
  parallelism.chunkSize = 50;
  const SumStats wrapped =
      runChunkedCampaign<SumStats>(500, kSeed, parallelism, "test", runOne);
  const auto direct = runWithRule(500, 1, 50, {});
  EXPECT_EQ(wrapped.sum, direct.stats.sum);
  EXPECT_EQ(wrapped.n, direct.stats.n);
}

}  // namespace
}  // namespace nlft::exec
