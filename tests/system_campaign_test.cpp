// System-level fault-injection campaign: deterministic parallel execution
// (bit-identical statistics at every thread count), the system-level oracle,
// and the measured-coverage feedback into the analytic reliability models.
#include "faults/system_campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "bbw/markov_models.hpp"
#include "util/rng.hpp"

namespace nlft::fi {
namespace {

using util::Duration;
using util::SimTime;

/// Small, fast campaign configuration: low speed + short horizon keeps each
/// closed-loop stop cheap without changing any fault-handling mechanism.
SystemCampaignConfig smallConfig() {
  SystemCampaignConfig config;
  config.experiments = 48;
  config.seed = 7;
  config.sim.initialSpeedMps = 15.0;
  config.sim.horizon = Duration::seconds(8);
  return config;
}

void expectIdentical(const SystemCampaignStats& a, const SystemCampaignStats& b) {
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.outcomesByKind, b.outcomesByKind);
  EXPECT_EQ(a.nodeLevel.injected, b.nodeLevel.injected);
  EXPECT_EQ(a.nodeLevel.notActivated, b.nodeLevel.notActivated);
  EXPECT_EQ(a.nodeLevel.maskedByEcc, b.nodeLevel.maskedByEcc);
  EXPECT_EQ(a.nodeLevel.masked, b.nodeLevel.masked);
  EXPECT_EQ(a.nodeLevel.omission, b.nodeLevel.omission);
  EXPECT_EQ(a.nodeLevel.failSilent, b.nodeLevel.failSilent);
  EXPECT_EQ(a.nodeLevel.undetected, b.nodeLevel.undetected);
  EXPECT_EQ(a.stops, b.stops);
  EXPECT_EQ(a.skippedMasked, b.skippedMasked);
  EXPECT_EQ(a.stoppingDistanceM.count(), b.stoppingDistanceM.count());
  // Chunk-order merge: the accumulated moments are bit-identical, not
  // merely approximately equal.
  const double meanA = a.stoppingDistanceM.mean();
  const double meanB = b.stoppingDistanceM.mean();
  EXPECT_EQ(std::memcmp(&meanA, &meanB, sizeof(double)), 0);
  const double varA = a.stoppingDistanceM.variance();
  const double varB = b.stoppingDistanceM.variance();
  EXPECT_EQ(std::memcmp(&varA, &varB, sizeof(double)), 0);
}

TEST(SystemCampaign, BitIdenticalAcrossThreadCounts) {
  SystemCampaignConfig config = smallConfig();
  config.parallelism.chunkSize = 8;  // fixed chunking = fixed RNG substreams

  config.parallelism.threads = 1;
  const SystemCampaignStats serial = runSystemCampaign(config);
  EXPECT_EQ(serial.experiments, config.experiments);

  for (const unsigned threads : {2u, 8u}) {
    config.parallelism.threads = threads;
    const SystemCampaignStats parallel = runSystemCampaign(config);
    expectIdentical(serial, parallel);
  }
}

TEST(SystemCampaign, SameSeedReproduces) {
  const SystemCampaignConfig config = smallConfig();
  const SystemCampaignStats a = runSystemCampaign(config);
  const SystemCampaignStats b = runSystemCampaign(config);
  expectIdentical(a, b);
}

TEST(SystemCampaign, EveryExperimentIsClassified) {
  const SystemCampaignStats stats = runSystemCampaign(smallConfig());
  std::size_t classified = 0;
  for (std::size_t o = 0; o < kSystemOutcomeCount; ++o) classified += stats.outcomes[o];
  EXPECT_EQ(classified, stats.experiments);
  std::size_t byKind = 0;
  for (const auto& row : stats.outcomesByKind) {
    for (const std::size_t n : row) byKind += n;
  }
  EXPECT_EQ(byKind, stats.experiments);
  EXPECT_EQ(stats.stoppingDistanceM.count(), stats.experiments);
}

TEST(SystemCampaign, SampleScenarioIsDeterministic) {
  const SystemCampaignConfig config = smallConfig();
  util::Rng a{42};
  util::Rng b{42};
  for (int i = 0; i < 20; ++i) {
    const SystemScenario sa = sampleScenario(config, a);
    const SystemScenario sb = sampleScenario(config, b);
    EXPECT_EQ(sa.kind, sb.kind);
    EXPECT_EQ(sa.targets, sb.targets);
    EXPECT_EQ(sa.at.us(), sb.at.us());
    EXPECT_EQ(sa.flipBits, sb.flipBits);
    ASSERT_FALSE(sa.targets.empty());
    for (const net::NodeId node : sa.targets) {
      EXPECT_GE(node, 1u);
      EXPECT_LE(node, 6u);
    }
    EXPECT_GE(sa.at.us(), 200000);
    EXPECT_LE(sa.at.us(), 2000000);
  }
}

// --- The system-level oracle on hand-built scenarios -----------------------

struct OracleFixture : ::testing::Test {
  SystemCampaignConfig config = smallConfig();
  bbw::BbwSimResult golden = goldenStop(config);

  SystemExperiment run(SystemScenario scenario) {
    return runSystemExperiment(config, scenario, golden);
  }
};

TEST_F(OracleFixture, GoldenStopIsAStop) {
  EXPECT_TRUE(golden.stopped);
  EXPECT_GT(golden.stoppingDistanceM, 0.0);
}

TEST_F(OracleFixture, NodeCrashIsFailSilentDegradation) {
  SystemScenario scenario;
  scenario.kind = ScenarioKind::NodeCrash;
  scenario.targets = {bbw::kWheelNodeBase};
  scenario.at = SimTime::fromUs(500000);
  const SystemExperiment experiment = run(scenario);
  EXPECT_EQ(experiment.outcome, SystemOutcome::FailSilentDegradation);
  EXPECT_GT(experiment.sim.failSilentEvents, 0u);
  EXPECT_TRUE(experiment.sim.stopped);
}

TEST_F(OracleFixture, BusCorruptionIsOmissionDegradation) {
  SystemScenario scenario;
  scenario.kind = ScenarioKind::BusCorruption;
  scenario.targets = {bbw::kCuA};
  scenario.at = SimTime::fromUs(500000);
  scenario.flipBits = {5};
  const SystemExperiment experiment = run(scenario);
  EXPECT_EQ(experiment.outcome, SystemOutcome::OmissionDegradation);
  EXPECT_GT(experiment.sim.busFramesDropped, golden.busFramesDropped);
}

TEST_F(OracleFixture, LosingEveryWheelNodeMissesTheStop) {
  SystemScenario scenario;
  scenario.kind = ScenarioKind::CorrelatedBurst;
  scenario.targets = {3, 4, 5, 6};
  scenario.at = SimTime::fromUs(500000);
  const SystemExperiment experiment = run(scenario);
  EXPECT_EQ(experiment.outcome, SystemOutcome::MissedStop);
  EXPECT_GT(experiment.sim.stoppingDistanceM,
            golden.stoppingDistanceM + config.missedStopMarginM);
}

// --- Measured coverage vs the paper's assumed parameters -------------------

TEST(SystemCampaign, MeasuredCoverageConsistentWithPaperAssumptions) {
  SystemCampaignConfig config;
  config.experiments = 400;
  config.seed = 11;
  config.machineTransientWeight = 1.0;  // machine-level transients only
  config.busCorruptionWeight = 0.0;
  config.nodeCrashWeight = 0.0;
  config.correlatedBurstWeight = 0.0;
  config.sim.initialSpeedMps = 15.0;
  config.sim.horizon = Duration::seconds(8);

  const SystemCampaignStats stats = runSystemCampaign(config);
  ASSERT_GT(stats.nodeLevel.activated(), 30u);
  const CoverageEstimate measured = measuredCoverage(stats);

  // The paper assumes P_T = 0.9 and P_OM = 0.05 (Section 5). The measured
  // proportions must be statistically consistent: the assumed value inside
  // the Wilson interval.
  EXPECT_LE(measured.pMask.low, 0.9);
  EXPECT_GE(measured.pMask.high, 0.9);
  EXPECT_LE(measured.pOmission.low, 0.05);
  EXPECT_GE(measured.pOmission.high, 0.05);
  EXPECT_GT(measured.coverage.proportion, 0.9);
}

TEST(SystemCampaign, WithMeasuredCoverageNormalisesByCoverage) {
  CoverageEstimate measured;
  measured.pMask.proportion = 0.90;
  measured.pOmission.proportion = 0.045;
  measured.coverage.proportion = 0.95;
  measured.coverage.trials = 1000;  // a real measurement, not an empty campaign

  const bbw::ReliabilityParameters params = withMeasuredCoverage(measured);
  EXPECT_DOUBLE_EQ(params.coverage, 0.95);
  // C * P_T reproduces the measured unconditional masking proportion.
  EXPECT_NEAR(params.coverage * params.pMask, 0.90, 1e-12);
  EXPECT_NEAR(params.coverage * params.pOmission, 0.045, 1e-12);
  EXPECT_NEAR(params.pMask + params.pOmission + params.pFailSilent, 1.0, 1e-12);

  // The measured parameters drive the Markov models without modification.
  const bbw::BbwStudy study{params};
  const double r = study.systemReliability(bbw::NodeType::Nlft, bbw::FunctionalityMode::Degraded,
                                           24.0 * 365.0);
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);
}

TEST(SystemCampaign, ZeroActivationLeavesBaseParametersUntouched) {
  // No activated faults = no measurement: every Wilson interval comes back
  // with trials == 0 and a zeroed point estimate. The feedback must return
  // the paper-assumed base UNCHANGED — the old behaviour stomped coverage
  // with 0.0, feeding garbage into the Markov models.
  const CoverageEstimate empty{};
  const bbw::ReliabilityParameters base = bbw::ReliabilityParameters::paperDefaults();
  const bbw::ReliabilityParameters params = withMeasuredCoverage(empty, base);
  EXPECT_DOUBLE_EQ(params.pMask, base.pMask);
  EXPECT_DOUBLE_EQ(params.pOmission, base.pOmission);
  EXPECT_DOUBLE_EQ(params.pFailSilent, base.pFailSilent);
  EXPECT_DOUBLE_EQ(params.coverage, base.coverage);
}

TEST(SystemCampaign, ZeroExperimentCampaignFeedsBackCleanly) {
  // The degenerate end-to-end path: a 0-experiment campaign measures
  // nothing, and the measured-coverage feedback must hand back finite,
  // unchanged parameters (wilsonInterval(0, 0) used to reach a division by
  // the zero coverage proportion).
  SystemCampaignConfig config = smallConfig();
  config.experiments = 0;
  const SystemCampaignStats stats = runSystemCampaign(config);
  EXPECT_EQ(stats.experiments, 0u);
  EXPECT_EQ(stats.nodeLevel.activated(), 0u);

  const CoverageEstimate measured = measuredCoverage(stats);
  EXPECT_EQ(measured.coverage.trials, 0u);
  const bbw::ReliabilityParameters base = bbw::ReliabilityParameters::paperDefaults();
  const bbw::ReliabilityParameters params = withMeasuredCoverage(measured, base);
  EXPECT_TRUE(std::isfinite(params.pMask));
  EXPECT_TRUE(std::isfinite(params.pOmission));
  EXPECT_TRUE(std::isfinite(params.pFailSilent));
  EXPECT_DOUBLE_EQ(params.coverage, base.coverage);
}

TEST(SystemCampaign, AllNotActivatedCampaignFeedsBackCleanly) {
  // A campaign whose every machine-level fault failed to activate: injected
  // counts grow but activated() stays 0, which is the same "no measurement"
  // case as an empty campaign.
  SystemCampaignStats stats;
  stats.experiments = 40;
  stats.nodeLevel.injected = 40;
  stats.nodeLevel.notActivated = 30;
  stats.nodeLevel.maskedByEcc = 10;
  ASSERT_EQ(stats.nodeLevel.activated(), 0u);

  const CoverageEstimate measured = measuredCoverage(stats);
  const bbw::ReliabilityParameters base = bbw::ReliabilityParameters::paperDefaults();
  const bbw::ReliabilityParameters params = withMeasuredCoverage(measured, base);
  EXPECT_TRUE(std::isfinite(params.pMask));
  EXPECT_DOUBLE_EQ(params.pMask, base.pMask);
  EXPECT_DOUBLE_EQ(params.coverage, base.coverage);
}

TEST(SystemCampaign, MeasuredReactionsNeverExceedUnitMass) {
  // Noisy small-sample point estimates can satisfy pMask + pOmission >
  // coverage; after conditioning, the reaction masses must still form a
  // distribution (P_OM is capped at the mass P_T leaves over).
  CoverageEstimate measured;
  measured.pMask.proportion = 0.80;
  measured.pMask.trials = 10;
  measured.pOmission.proportion = 0.50;
  measured.pOmission.trials = 10;
  measured.coverage.proportion = 0.90;
  measured.coverage.trials = 10;

  const bbw::ReliabilityParameters params = withMeasuredCoverage(measured);
  EXPECT_LE(params.pMask + params.pOmission, 1.0 + 1e-12);
  EXPECT_GE(params.pFailSilent, 0.0);
  EXPECT_NEAR(params.pMask + params.pOmission + params.pFailSilent, 1.0, 1e-12);
}

TEST(SystemCampaign, MaskedSkipsCountedConsistently) {
  // Experiments whose fault never became an error skip the simulation in
  // every execution mode. The campaign must still reconcile: the skip
  // count equals the not-activated + ECC-masked node outcomes, lands in
  // the Masked outcome bucket, and is mirrored by the
  // "campaign.skipped_masked" metric so registry consumers can explain the
  // gap between campaign.* reducers and the per-sim metrics.
  obs::Registry metrics;
  SystemCampaignConfig config = smallConfig();
  config.experiments = 64;
  config.metrics = &metrics;
  const SystemCampaignStats stats = runSystemCampaign(config);

  ASSERT_GT(stats.skippedMasked, 0u) << "seed produced no skipped experiments; adjust seed";
  EXPECT_EQ(stats.skippedMasked, stats.nodeLevel.notActivated + stats.nodeLevel.maskedByEcc);
  EXPECT_GE(stats.outcome(SystemOutcome::Masked), stats.skippedMasked);
  EXPECT_EQ(metrics.count("campaign.skipped_masked"), stats.skippedMasked);
  // Per-sim registries only see the experiments that ran a simulation.
  EXPECT_EQ(metrics.count("campaign.experiments"), stats.experiments);
}

}  // namespace
}  // namespace nlft::fi
