// System-level fault-injection campaign: deterministic parallel execution
// (bit-identical statistics at every thread count), the system-level oracle,
// and the measured-coverage feedback into the analytic reliability models.
#include "faults/system_campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "bbw/markov_models.hpp"
#include "util/rng.hpp"

namespace nlft::fi {
namespace {

using util::Duration;
using util::SimTime;

/// Small, fast campaign configuration: low speed + short horizon keeps each
/// closed-loop stop cheap without changing any fault-handling mechanism.
SystemCampaignConfig smallConfig() {
  SystemCampaignConfig config;
  config.experiments = 48;
  config.seed = 7;
  config.sim.initialSpeedMps = 15.0;
  config.sim.horizon = Duration::seconds(8);
  return config;
}

void expectIdentical(const SystemCampaignStats& a, const SystemCampaignStats& b) {
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.outcomesByKind, b.outcomesByKind);
  EXPECT_EQ(a.nodeLevel.injected, b.nodeLevel.injected);
  EXPECT_EQ(a.nodeLevel.notActivated, b.nodeLevel.notActivated);
  EXPECT_EQ(a.nodeLevel.maskedByEcc, b.nodeLevel.maskedByEcc);
  EXPECT_EQ(a.nodeLevel.masked, b.nodeLevel.masked);
  EXPECT_EQ(a.nodeLevel.omission, b.nodeLevel.omission);
  EXPECT_EQ(a.nodeLevel.failSilent, b.nodeLevel.failSilent);
  EXPECT_EQ(a.nodeLevel.undetected, b.nodeLevel.undetected);
  EXPECT_EQ(a.stops, b.stops);
  EXPECT_EQ(a.stoppingDistanceM.count(), b.stoppingDistanceM.count());
  // Chunk-order merge: the accumulated moments are bit-identical, not
  // merely approximately equal.
  const double meanA = a.stoppingDistanceM.mean();
  const double meanB = b.stoppingDistanceM.mean();
  EXPECT_EQ(std::memcmp(&meanA, &meanB, sizeof(double)), 0);
  const double varA = a.stoppingDistanceM.variance();
  const double varB = b.stoppingDistanceM.variance();
  EXPECT_EQ(std::memcmp(&varA, &varB, sizeof(double)), 0);
}

TEST(SystemCampaign, BitIdenticalAcrossThreadCounts) {
  SystemCampaignConfig config = smallConfig();
  config.parallelism.chunkSize = 8;  // fixed chunking = fixed RNG substreams

  config.parallelism.threads = 1;
  const SystemCampaignStats serial = runSystemCampaign(config);
  EXPECT_EQ(serial.experiments, config.experiments);

  for (const unsigned threads : {2u, 8u}) {
    config.parallelism.threads = threads;
    const SystemCampaignStats parallel = runSystemCampaign(config);
    expectIdentical(serial, parallel);
  }
}

TEST(SystemCampaign, SameSeedReproduces) {
  const SystemCampaignConfig config = smallConfig();
  const SystemCampaignStats a = runSystemCampaign(config);
  const SystemCampaignStats b = runSystemCampaign(config);
  expectIdentical(a, b);
}

TEST(SystemCampaign, EveryExperimentIsClassified) {
  const SystemCampaignStats stats = runSystemCampaign(smallConfig());
  std::size_t classified = 0;
  for (std::size_t o = 0; o < kSystemOutcomeCount; ++o) classified += stats.outcomes[o];
  EXPECT_EQ(classified, stats.experiments);
  std::size_t byKind = 0;
  for (const auto& row : stats.outcomesByKind) {
    for (const std::size_t n : row) byKind += n;
  }
  EXPECT_EQ(byKind, stats.experiments);
  EXPECT_EQ(stats.stoppingDistanceM.count(), stats.experiments);
}

TEST(SystemCampaign, SampleScenarioIsDeterministic) {
  const SystemCampaignConfig config = smallConfig();
  util::Rng a{42};
  util::Rng b{42};
  for (int i = 0; i < 20; ++i) {
    const SystemScenario sa = sampleScenario(config, a);
    const SystemScenario sb = sampleScenario(config, b);
    EXPECT_EQ(sa.kind, sb.kind);
    EXPECT_EQ(sa.targets, sb.targets);
    EXPECT_EQ(sa.at.us(), sb.at.us());
    EXPECT_EQ(sa.flipBits, sb.flipBits);
    ASSERT_FALSE(sa.targets.empty());
    for (const net::NodeId node : sa.targets) {
      EXPECT_GE(node, 1u);
      EXPECT_LE(node, 6u);
    }
    EXPECT_GE(sa.at.us(), 200000);
    EXPECT_LE(sa.at.us(), 2000000);
  }
}

// --- The system-level oracle on hand-built scenarios -----------------------

struct OracleFixture : ::testing::Test {
  SystemCampaignConfig config = smallConfig();
  bbw::BbwSimResult golden = goldenStop(config);

  SystemExperiment run(SystemScenario scenario) {
    return runSystemExperiment(config, scenario, golden);
  }
};

TEST_F(OracleFixture, GoldenStopIsAStop) {
  EXPECT_TRUE(golden.stopped);
  EXPECT_GT(golden.stoppingDistanceM, 0.0);
}

TEST_F(OracleFixture, NodeCrashIsFailSilentDegradation) {
  SystemScenario scenario;
  scenario.kind = ScenarioKind::NodeCrash;
  scenario.targets = {bbw::kWheelNodeBase};
  scenario.at = SimTime::fromUs(500000);
  const SystemExperiment experiment = run(scenario);
  EXPECT_EQ(experiment.outcome, SystemOutcome::FailSilentDegradation);
  EXPECT_GT(experiment.sim.failSilentEvents, 0u);
  EXPECT_TRUE(experiment.sim.stopped);
}

TEST_F(OracleFixture, BusCorruptionIsOmissionDegradation) {
  SystemScenario scenario;
  scenario.kind = ScenarioKind::BusCorruption;
  scenario.targets = {bbw::kCuA};
  scenario.at = SimTime::fromUs(500000);
  scenario.flipBits = {5};
  const SystemExperiment experiment = run(scenario);
  EXPECT_EQ(experiment.outcome, SystemOutcome::OmissionDegradation);
  EXPECT_GT(experiment.sim.busFramesDropped, golden.busFramesDropped);
}

TEST_F(OracleFixture, LosingEveryWheelNodeMissesTheStop) {
  SystemScenario scenario;
  scenario.kind = ScenarioKind::CorrelatedBurst;
  scenario.targets = {3, 4, 5, 6};
  scenario.at = SimTime::fromUs(500000);
  const SystemExperiment experiment = run(scenario);
  EXPECT_EQ(experiment.outcome, SystemOutcome::MissedStop);
  EXPECT_GT(experiment.sim.stoppingDistanceM,
            golden.stoppingDistanceM + config.missedStopMarginM);
}

// --- Measured coverage vs the paper's assumed parameters -------------------

TEST(SystemCampaign, MeasuredCoverageConsistentWithPaperAssumptions) {
  SystemCampaignConfig config;
  config.experiments = 400;
  config.seed = 11;
  config.machineTransientWeight = 1.0;  // machine-level transients only
  config.busCorruptionWeight = 0.0;
  config.nodeCrashWeight = 0.0;
  config.correlatedBurstWeight = 0.0;
  config.sim.initialSpeedMps = 15.0;
  config.sim.horizon = Duration::seconds(8);

  const SystemCampaignStats stats = runSystemCampaign(config);
  ASSERT_GT(stats.nodeLevel.activated(), 30u);
  const CoverageEstimate measured = measuredCoverage(stats);

  // The paper assumes P_T = 0.9 and P_OM = 0.05 (Section 5). The measured
  // proportions must be statistically consistent: the assumed value inside
  // the Wilson interval.
  EXPECT_LE(measured.pMask.low, 0.9);
  EXPECT_GE(measured.pMask.high, 0.9);
  EXPECT_LE(measured.pOmission.low, 0.05);
  EXPECT_GE(measured.pOmission.high, 0.05);
  EXPECT_GT(measured.coverage.proportion, 0.9);
}

TEST(SystemCampaign, WithMeasuredCoverageNormalisesByCoverage) {
  CoverageEstimate measured;
  measured.pMask.proportion = 0.90;
  measured.pOmission.proportion = 0.045;
  measured.coverage.proportion = 0.95;

  const bbw::ReliabilityParameters params = withMeasuredCoverage(measured);
  EXPECT_DOUBLE_EQ(params.coverage, 0.95);
  // C * P_T reproduces the measured unconditional masking proportion.
  EXPECT_NEAR(params.coverage * params.pMask, 0.90, 1e-12);
  EXPECT_NEAR(params.coverage * params.pOmission, 0.045, 1e-12);
  EXPECT_NEAR(params.pMask + params.pOmission + params.pFailSilent, 1.0, 1e-12);

  // The measured parameters drive the Markov models without modification.
  const bbw::BbwStudy study{params};
  const double r = study.systemReliability(bbw::NodeType::Nlft, bbw::FunctionalityMode::Degraded,
                                           24.0 * 365.0);
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);
}

TEST(SystemCampaign, ZeroCoverageLeavesBaseParameters) {
  const CoverageEstimate empty{};  // no activated faults measured
  const bbw::ReliabilityParameters base = bbw::ReliabilityParameters::paperDefaults();
  const bbw::ReliabilityParameters params = withMeasuredCoverage(empty, base);
  EXPECT_DOUBLE_EQ(params.pMask, base.pMask);
  EXPECT_DOUBLE_EQ(params.pOmission, base.pOmission);
  EXPECT_DOUBLE_EQ(params.coverage, 0.0);
}

}  // namespace
}  // namespace nlft::fi
