#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nlft::sim {
namespace {

using util::Duration;
using util::SimTime;

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.scheduleAt(SimTime::fromUs(300), [&] { order.push_back(3); });
  simulator.scheduleAt(SimTime::fromUs(100), [&] { order.push_back(1); });
  simulator.scheduleAt(SimTime::fromUs(200), [&] { order.push_back(2); });
  simulator.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), SimTime::fromUs(300));
}

TEST(Simulator, TieBreakByPriorityThenInsertion) {
  Simulator simulator;
  std::vector<int> order;
  const auto t = SimTime::fromUs(50);
  simulator.scheduleAt(t, [&] { order.push_back(2); }, EventPriority::Application);
  simulator.scheduleAt(t, [&] { order.push_back(1); }, EventPriority::FaultInjection);
  simulator.scheduleAt(t, [&] { order.push_back(3); }, EventPriority::Application);
  simulator.scheduleAt(t, [&] { order.push_back(4); }, EventPriority::Observer);
  simulator.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesOnlyWhenEventsFire) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), SimTime::zero());
  simulator.scheduleAfter(Duration::milliseconds(5), [] {});
  EXPECT_EQ(simulator.now(), SimTime::zero());
  simulator.step();
  EXPECT_EQ(simulator.now(), SimTime::fromUs(5000));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool ran = false;
  const EventId id = simulator.scheduleAfter(Duration::milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(simulator.cancel(id));
  EXPECT_FALSE(simulator.cancel(id));  // idempotent
  simulator.runAll();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator simulator;
  const EventId id = simulator.scheduleAfter(Duration::milliseconds(1), [] {});
  simulator.runAll();
  EXPECT_FALSE(simulator.cancel(id));
}

TEST(Simulator, EventsCanScheduleFurtherEvents) {
  Simulator simulator;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) simulator.scheduleAfter(Duration::milliseconds(10), chain);
  };
  simulator.scheduleAfter(Duration::milliseconds(10), chain);
  simulator.runAll();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(simulator.now(), SimTime::fromUs(50'000));
}

TEST(Simulator, RunUntilStopsAtLimitAndAdvancesClock) {
  Simulator simulator;
  std::vector<int> order;
  simulator.scheduleAt(SimTime::fromUs(100), [&] { order.push_back(1); });
  simulator.scheduleAt(SimTime::fromUs(900), [&] { order.push_back(2); });
  simulator.runUntil(SimTime::fromUs(500));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(simulator.now(), SimTime::fromUs(500));
  simulator.runUntil(SimTime::fromUs(1000));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilIncludesEventsAtTheLimit) {
  Simulator simulator;
  bool ran = false;
  simulator.scheduleAt(SimTime::fromUs(500), [&] { ran = true; });
  simulator.runUntil(SimTime::fromUs(500));
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilNotConfusedByCancelledEventAtTop) {
  // Regression: a cancelled event before the limit must not make runUntil
  // execute a live event beyond the limit.
  Simulator simulator;
  bool lateRan = false;
  const EventId cancelled = simulator.scheduleAt(SimTime::fromUs(100), [] {});
  simulator.scheduleAt(SimTime::fromUs(900), [&] { lateRan = true; });
  simulator.cancel(cancelled);
  simulator.runUntil(SimTime::fromUs(500));
  EXPECT_FALSE(lateRan);
  EXPECT_EQ(simulator.now(), SimTime::fromUs(500));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator simulator;
  simulator.scheduleAt(SimTime::fromUs(100), [] {});
  simulator.runAll();
  EXPECT_THROW(simulator.scheduleAt(SimTime::fromUs(50), [] {}), std::invalid_argument);
  EXPECT_THROW(simulator.scheduleAfter(Duration::microseconds(-1), [] {}),
               std::invalid_argument);
}

TEST(Simulator, PendingAndProcessedCounts) {
  Simulator simulator;
  const EventId a = simulator.scheduleAfter(Duration::milliseconds(1), [] {});
  simulator.scheduleAfter(Duration::milliseconds(2), [] {});
  EXPECT_EQ(simulator.pendingEvents(), 2u);
  simulator.cancel(a);
  EXPECT_EQ(simulator.pendingEvents(), 1u);
  simulator.runAll();
  EXPECT_EQ(simulator.pendingEvents(), 0u);
  EXPECT_EQ(simulator.processedEvents(), 1u);
}

TEST(Simulator, CancellingFromWithinAnEvent) {
  Simulator simulator;
  bool secondRan = false;
  EventId second{};
  second = simulator.scheduleAt(SimTime::fromUs(200), [&] { secondRan = true; });
  simulator.scheduleAt(SimTime::fromUs(100), [&] { simulator.cancel(second); });
  simulator.runAll();
  EXPECT_FALSE(secondRan);
}

TEST(Simulator, SameTimeCancellationHonoursPriority) {
  // A fault-injection event at time t can cancel an application event at the
  // same instant, because fault injection runs first.
  Simulator simulator;
  bool appRan = false;
  const auto t = SimTime::fromUs(10);
  const EventId app = simulator.scheduleAt(t, [&] { appRan = true; },
                                           EventPriority::Application);
  simulator.scheduleAt(t, [&] { simulator.cancel(app); }, EventPriority::FaultInjection);
  simulator.runAll();
  EXPECT_FALSE(appRan);
}

}  // namespace
}  // namespace nlft::sim
