// Extended fault models: instruction-fetch upsets (illegal-instruction EDM)
// and MMU-confined campaigns.
#include <gtest/gtest.h>

#include "bbw/wheel_task.hpp"
#include "faults/campaign.hpp"

namespace nlft::fi {
namespace {

TaskImage wheelImage(bool mmu) {
  TaskImage image = bbw::makeWheelTaskImage(800 * 256, 50, 600 * 256);
  image.enableMmu = mmu;
  return image;
}

TEST(FetchFault, OpcodeBitFlipRaisesIllegalInstruction) {
  // Flipping a high opcode bit of a low-opcode instruction produces an
  // undefined opcode: the CPU's illegal-instruction EDM fires.
  const TaskImage image = wheelImage(false);
  hw::Machine machine{image.memBytes};
  machine.loadWords(image.program.origin, image.program.words);
  machine.loadWords(image.inputBase, image.input);
  machine.cpu().pc = image.entry;
  machine.cpu().setSp(image.stackTop);
  machine.armFetchCorruption(31);  // top opcode bit
  const auto result = machine.run(100);
  EXPECT_EQ(result.reason, hw::StopReason::Exception);
  EXPECT_EQ(result.exception.kind, hw::ExceptionKind::IllegalInstruction);
}

TEST(FetchFault, FetchCorruptionIsOneShot) {
  hw::Machine machine{4096};
  machine.loadWords(0, hw::assemble("nop\nnop\nhalt\n").words);
  machine.cpu().setSp(4096);
  machine.armFetchCorruption(0);  // nop (opcode 0) -> opcode still legal? bit 0 is imm
  // Whatever the first instruction became, the remaining fetches are clean;
  // re-arming is required for another corruption.
  (void)machine.run(10);
  machine.resume();
  EXPECT_EQ(machine.cpu().pc % 4, 0u);
}

TEST(FetchFault, TemMasksFetchUpsets) {
  const TaskImage image = wheelImage(false);
  FaultSpec fault;
  fault.location = FetchBitFlip{28};  // opcode field
  fault.afterInstructions = 8;
  fault.targetCopy = 1;
  const TemOutcome outcome = runTemExperiment(image, fault);
  // Either the decode stays legal (wrong computation -> vote) or it traps
  // (replacement); both are masked. Never an undetected wrong output.
  EXPECT_TRUE(outcome == TemOutcome::MaskedByVote || outcome == TemOutcome::MaskedByRestart ||
              outcome == TemOutcome::NotActivated)
      << static_cast<int>(outcome);
}

TEST(FetchFault, CampaignRegistersIllegalInstructionDetections) {
  TaskImage image = wheelImage(false);
  CampaignConfig config;
  config.experiments = 3000;
  config.seed = 31;
  config.mix.fetchWeight = 0.6;  // concentrate on fetch faults
  config.mix.registerWeight = 0.2;
  config.mix.pcWeight = 0.1;
  config.mix.memoryWeight = 0.1;
  config.jobBudgetFactor = 3.8;
  const TemCampaignStats stats = runTemCampaign(image, config);
  EXPECT_GT(stats.mechanisms.illegalInstruction, 0u);
  EXPECT_GT(stats.coverage().proportion, 0.97);
}

TEST(MmuCampaign, GoldenRunUnaffectedByProtection) {
  const CopyRun open = goldenRun(wheelImage(false));
  const CopyRun confined = goldenRun(wheelImage(true));
  EXPECT_EQ(open.output, confined.output);
  EXPECT_EQ(open.instructions, confined.instructions);
}

TEST(MmuCampaign, WildStoreRaisesMmuViolation) {
  // A task whose address register is corrupted to point outside its regions
  // must be stopped by the MMU, not corrupt foreign memory.
  TaskImage image;
  image.program = hw::assemble(R"(
      ldi r1, 0xC00
      ldi r2, 7
      st  r2, [r1+0]
      halt
  )");
  image.entry = 0;
  image.stackTop = 0x4000;
  image.inputBase = 0x800;
  image.input = {0};
  image.outputBase = 0xC00;
  image.outputWords = 1;
  image.enableMmu = true;
  image.maxInstructionsPerCopy = 16;

  hw::Machine machine{image.memBytes};
  machine.loadWords(image.program.origin, image.program.words);
  machine.mmu().addRegion({0, image.program.sizeBytes(), 1,
                           hw::accessMask(hw::Access::Read) | hw::accessMask(hw::Access::Execute),
                           "text"});
  machine.mmu().addRegion({0xC00, 4, 1,
                           hw::accessMask(hw::Access::Read) | hw::accessMask(hw::Access::Write),
                           "output"});
  machine.mmu().setActiveTask(1);
  machine.mmu().setEnabled(true);
  machine.cpu().pc = 0;
  machine.cpu().setSp(0x4000);
  machine.flipRegisterBit(1, 12);  // will corrupt r1 once loaded... flip after ldi instead
  // Run: ldi r1 overwrites the flip; corrupt after the first instruction.
  (void)machine.step();
  machine.flipRegisterBit(1, 12);  // 0xC00 -> 0x1C00: outside every region
  const auto result = machine.run(10);
  EXPECT_EQ(result.reason, hw::StopReason::Exception);
  EXPECT_EQ(result.exception.kind, hw::ExceptionKind::MmuViolation);
}

TEST(MmuCampaign, ConfinementShowsUpInMechanismCounts) {
  TaskImage image = wheelImage(true);
  CampaignConfig config;
  config.experiments = 6000;
  config.seed = 33;
  config.jobBudgetFactor = 3.8;
  const TemCampaignStats stats = runTemCampaign(image, config);
  // With the MMU confining the task, some wild accesses that previously
  // landed as address errors (or silent far stores) now raise violations.
  EXPECT_GT(stats.mechanisms.mmuViolation, 0u);
  EXPECT_GT(stats.coverage().proportion, 0.97);
  EXPECT_GT(stats.pMask().proportion, 0.8);
}

TEST(MmuCampaign, CoverageAtLeastAsGoodAsUnprotected) {
  CampaignConfig config;
  config.experiments = 6000;
  config.seed = 34;
  config.jobBudgetFactor = 3.8;
  const TemCampaignStats open = runTemCampaign(wheelImage(false), config);
  const TemCampaignStats confined = runTemCampaign(wheelImage(true), config);
  EXPECT_GE(confined.coverage().proportion + 0.01, open.coverage().proportion);
}

TEST(FetchFault, DescribeText) {
  EXPECT_EQ(describe(FetchBitFlip{28}), "fetch bit 28");
}

}  // namespace
}  // namespace nlft::fi
