#include "util/crc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/rng.hpp"

namespace nlft::util {
namespace {

std::vector<std::uint8_t> bytes(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

TEST(Crc32, KnownVectors) {
  // Standard check value for "123456789".
  EXPECT_EQ(crc32(bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes("the quick brown fox jumps over the lazy dog");
  const std::uint32_t oneShot = crc32(data);
  std::uint32_t crc = 0;
  crc = crc32Update(crc, std::span{data}.subspan(0, 10));
  crc = crc32Update(crc, std::span{data}.subspan(10));
  EXPECT_EQ(crc, oneShot);
}

TEST(Crc16Ccitt, KnownVector) {
  EXPECT_EQ(crc16Ccitt(bytes("123456789")), 0x29B1u);
}

TEST(Crc32Words, MatchesByteSerialization) {
  const std::uint32_t words[] = {0x11223344u, 0xA5A5A5A5u};
  const std::uint8_t raw[] = {0x44, 0x33, 0x22, 0x11, 0xA5, 0xA5, 0xA5, 0xA5};
  EXPECT_EQ(crc32Words(words), crc32(raw));
}

// Property: CRC-32 detects every single-bit error (exhaustive for a small
// payload), which is what the end-to-end integrity checks rely on.
TEST(Crc32, DetectsAllSingleBitErrors) {
  const auto original = bytes("NLFT frame payload!");
  const std::uint32_t good = crc32(original);
  for (std::size_t i = 0; i < original.size() * 8; ++i) {
    auto corrupted = original;
    corrupted[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_NE(crc32(corrupted), good) << "undetected single-bit flip at bit " << i;
  }
}

TEST(Crc32, DetectsAllDoubleBitErrorsInSmallPayload) {
  const auto original = bytes("TEMvote");
  const std::uint32_t good = crc32(original);
  const std::size_t bits = original.size() * 8;
  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = i + 1; j < bits; ++j) {
      auto corrupted = original;
      corrupted[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
      corrupted[j / 8] ^= static_cast<std::uint8_t>(1u << (j % 8));
      ASSERT_NE(crc32(corrupted), good) << "undetected double flip " << i << "," << j;
    }
  }
}

TEST(Crc16Ccitt, DetectsAllSingleBitErrors) {
  const auto original = bytes("brake force frame");
  const std::uint16_t good = crc16Ccitt(original);
  for (std::size_t i = 0; i < original.size() * 8; ++i) {
    auto corrupted = original;
    corrupted[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_NE(crc16Ccitt(corrupted), good);
  }
}

TEST(Crc32, RandomCorruptionIsDetectedWithHighProbability) {
  Rng rng{99};
  std::vector<std::uint8_t> payload(64);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniformInt(256));
  const std::uint32_t good = crc32(payload);
  int undetected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    auto corrupted = payload;
    const int flips = 1 + static_cast<int>(rng.uniformInt(8));
    for (int f = 0; f < flips; ++f) {
      const auto bit = rng.uniformInt(corrupted.size() * 8);
      corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    // Random flips may cancel each other; recompute to skip no-ops.
    if (corrupted == payload) continue;
    undetected += crc32(corrupted) == good;
  }
  EXPECT_EQ(undetected, 0);  // 2^-32 per trial; expected zero over 5000
}

}  // namespace
}  // namespace nlft::util
