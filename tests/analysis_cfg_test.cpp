// Unit tests of the static analyzer: CFG recovery, loop-bounded path
// enumeration, WCET bounds, footprint analysis and trace validation — on
// small hand-written programs where the expected answers are checkable by
// inspection.
#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "faults/campaign.hpp"
#include "hw/assembler.hpp"

namespace nlft::analysis {
namespace {

fi::TaskImage imageFor(const char* source, std::vector<std::uint32_t> input = {}) {
  fi::TaskImage image;
  image.program = hw::assemble(source);
  image.entry = 0;
  image.stackTop = 0x4000;
  image.inputBase = 0x800;
  image.input = std::move(input);
  image.outputBase = 0xC00;
  image.outputWords = 1;
  return image;
}

TEST(Cfg, StraightLineProgramIsOneBlock) {
  const auto program = hw::assemble(R"(
      ldi r1, 1
      ldi r2, 2
      add r3, r1, r2
      halt
)");
  const Cfg cfg = buildCfg(program);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].id, 0u);
  EXPECT_EQ(cfg.blocks[0].instructions.size(), 4u);
  EXPECT_TRUE(cfg.blocks[0].exits);
  EXPECT_TRUE(cfg.warnings.empty());

  const PathSet paths = enumeratePaths(cfg, program);
  ASSERT_EQ(paths.paths.size(), 1u);
  EXPECT_EQ(paths.paths[0], (std::vector<std::uint32_t>{0}));
}

TEST(Cfg, DiamondHasTwoPathsAndExactEdges) {
  const auto program = hw::assemble(R"(
      cmpi r1, 0
      beq taken
      ldi r2, 1
      jmp join
taken:
      ldi r2, 2
join:
      halt
)");
  const Cfg cfg = buildCfg(program);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  const PathSet paths = enumeratePaths(cfg, program);
  EXPECT_EQ(paths.paths.size(), 2u);

  // Fallthrough and branch edges exist; a made-up edge does not.
  EXPECT_TRUE(cfg.isLegalEdge(4, 8));    // beq fallthrough
  EXPECT_TRUE(cfg.isLegalEdge(4, 16));   // beq taken
  EXPECT_FALSE(cfg.isLegalEdge(0, 16));  // cmpi cannot jump
}

TEST(Cfg, FallthroughBlockBoundaries) {
  // A branch target mid-stream cuts a leader; the pre-target block falls
  // through into it.
  const auto program = hw::assemble(R"(
      cmpi r1, 0
      beq skip
      nop
skip:
      halt
)");
  const Cfg cfg = buildCfg(program);
  const BasicBlock* nopBlock = cfg.block(8);
  ASSERT_NE(nopBlock, nullptr);
  EXPECT_EQ(nopBlock->successors, (std::vector<std::uint32_t>{12}));
}

TEST(Cfg, BranchOutsideTextWarnsInsteadOfCrashing) {
  const auto program = hw::assemble(R"(
      jmp 0x4000
)");
  const Cfg cfg = buildCfg(program);
  ASSERT_FALSE(cfg.warnings.empty());
  EXPECT_NE(cfg.warnings[0].find("outside program text"), std::string::npos);
}

TEST(PathEnum, AnnotatedLoopBoundLimitsPaths) {
  const auto program = hw::assemble(R"(
      ldi r1, 3
loop:
      addi r1, r1, -1
      cmpi r1, 0
      .loopbound 3
      bne loop
      halt
)");
  EXPECT_EQ(program.loopBounds.size(), 1u);
  const Cfg cfg = buildCfg(program);
  const PathSet paths = enumeratePaths(cfg, program);
  EXPECT_FALSE(paths.truncated);
  EXPECT_TRUE(paths.warnings.empty());
  // 0..3 taken back edges -> 4 legal paths.
  EXPECT_EQ(paths.paths.size(), 4u);
}

TEST(PathEnum, UnannotatedBackEdgeGetsDefaultBoundAndWarning) {
  const auto program = hw::assemble(R"(
      ldi r1, 2
loop:
      addi r1, r1, -1
      cmpi r1, 0
      bne loop
      halt
)");
  const Cfg cfg = buildCfg(program);
  PathEnumOptions options;
  options.defaultLoopBound = 2;
  const PathSet paths = enumeratePaths(cfg, program, options);
  EXPECT_EQ(paths.paths.size(), 3u);  // 0, 1 or 2 taken back edges
  ASSERT_FALSE(paths.warnings.empty());
  EXPECT_NE(paths.warnings[0].find("loopbound"), std::string::npos);
}

TEST(PathEnum, JsrRtsMatchedViaCallStack) {
  const auto program = hw::assemble(R"(
      jsr sub
      jsr sub
      halt
sub:
      nop
      rts
)");
  const Cfg cfg = buildCfg(program);
  // CFG-level RTS successors are conservative: both return sites.
  const BasicBlock* sub = cfg.blockContaining(16);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->successors.size(), 2u);

  // Path enumeration matches calls and returns: exactly one path.
  const PathSet paths = enumeratePaths(cfg, program);
  ASSERT_EQ(paths.paths.size(), 1u);
  EXPECT_EQ(paths.paths[0], (std::vector<std::uint32_t>{0, 12, 4, 12, 8}));
}

TEST(Wcet, LoopWcetScalesWithBound) {
  const auto program = hw::assemble(R"(
      ldi r1, 3
loop:
      addi r1, r1, -1
      cmpi r1, 0
      .loopbound 3
      bne loop
      halt
)");
  const Cfg cfg = buildCfg(program);
  const PathSet paths = enumeratePaths(cfg, program);
  const TimingBounds timing = computeTiming(cfg, paths);
  EXPECT_TRUE(timing.exact);
  // ldi + 4 * (addi, cmpi, bne) + halt = 14 instructions worst case.
  EXPECT_EQ(timing.wcetInstructions, 14u);
  // Zero taken edges: ldi + addi + cmpi + bne + halt.
  EXPECT_EQ(timing.bcetInstructions, 5u);
  EXPECT_GE(timing.wcetCycles, timing.wcetInstructions);

  const std::uint64_t budget = deriveBudget(timing, 1.25);
  EXPECT_GE(budget, timing.wcetInstructions + 1);
}

TEST(Wcet, BudgetNeverBelowWcetPlusOne) {
  TimingBounds timing;
  timing.wcetInstructions = 100;
  EXPECT_EQ(deriveBudget(timing, 1.0), 101u);
  EXPECT_EQ(deriveBudget(timing, 1.25), 125u);
}

TEST(Footprint, ResolvesAccessesAndDerivesRegions) {
  const fi::TaskImage image = imageFor(R"(
      ldi r1, 0x800
      ld  r2, [r1+0]
      ldi r3, 0xC00
      st  r2, [r3+0]
      halt
)",
                                       {7});
  const ProgramAnalysis analysis = analyzeImage(image);
  EXPECT_TRUE(analysis.clean()) << formatReport("test", analysis);
  EXPECT_EQ(analysis.footprint.readWords, (std::vector<std::uint32_t>{0x800}));
  EXPECT_EQ(analysis.footprint.writeWords, (std::vector<std::uint32_t>{0xC00}));

  // Regions: text, stack, one rw run over the output, one ro run over the
  // input.
  ASSERT_EQ(analysis.mmuRegions.size(), 4u);
  EXPECT_EQ(analysis.mmuRegions[0].name, "text");
  EXPECT_EQ(analysis.mmuRegions[1].name, "stack");
  EXPECT_EQ(analysis.mmuRegions[2].base, 0xC00u);
  EXPECT_EQ(analysis.mmuRegions[2].size, 4u);
  EXPECT_EQ(analysis.mmuRegions[3].base, 0x800u);
}

TEST(Footprint, OutOfFootprintWriteFlagged) {
  const fi::TaskImage image = imageFor(R"(
      ldi r1, 0x2000
      st  r1, [r1+0]
      halt
)");
  const ProgramAnalysis analysis = analyzeImage(image);
  ASSERT_FALSE(analysis.clean());
  const auto flagged = std::any_of(
      analysis.findings.begin(), analysis.findings.end(), [](const std::string& finding) {
        return finding.find("out-of-footprint write at 0x2000") != std::string::npos;
      });
  EXPECT_TRUE(flagged);
}

TEST(Footprint, UnresolvedBaseFlagged) {
  // The base register is loaded from memory, so its value is unknown.
  const fi::TaskImage image = imageFor(R"(
      ldi r1, 0x800
      ld  r2, [r1+0]
      st  r1, [r2+0]
      halt
)",
                                       {0xC00});
  const ProgramAnalysis analysis = analyzeImage(image);
  ASSERT_FALSE(analysis.clean());
  EXPECT_NE(analysis.findings[0].find("unresolved base"), std::string::npos);
}

TEST(TraceCheck, GoldenTraceFollowsCfgAndMutationIsCaught) {
  const fi::TaskImage image = imageFor(R"(
      ldi r1, 0x800
      ld  r2, [r1+0]
      cmpi r2, 0
      beq zero
      ldi r3, 1
      jmp done
zero:
      ldi r3, 0
done:
      ldi r4, 0xC00
      st  r3, [r4+0]
      halt
)",
                                       {5});
  const ProgramAnalysis analysis = analyzeImage(image);
  const fi::TracedRun traced = fi::runTracedCopy(image, std::nullopt);
  ASSERT_EQ(traced.run.end, fi::CopyRun::End::Output);

  const TraceCheck ok = checkTrace(analysis.cfg, traced.pcTrace);
  EXPECT_TRUE(ok.controlFlowIntact) << ok.reason;

  // Simulate a control-flow error: jump straight into the output write.
  std::vector<std::uint32_t> mutated = traced.pcTrace;
  mutated[1] = 28;  // ldi r4, 0xC00 — skips the comparison entirely
  const TraceCheck bad = checkTrace(analysis.cfg, mutated);
  EXPECT_FALSE(bad.controlFlowIntact);
  EXPECT_EQ(bad.violationIndex, 1u);
}

TEST(TraceCheck, EmptyAndWrongEntryTraces) {
  const fi::TaskImage image = imageFor("      halt\n");
  const ProgramAnalysis analysis = analyzeImage(image);
  EXPECT_TRUE(checkTrace(analysis.cfg, {}).controlFlowIntact);
  const TraceCheck wrongEntry = checkTrace(analysis.cfg, {4});
  EXPECT_FALSE(wrongEntry.controlFlowIntact);
}

TEST(Assembler, LoopboundDirectiveRules) {
  EXPECT_THROW(hw::assemble(R"(
      .loopbound 3
      .loopbound 4
      bne 0
)"),
               hw::AssemblyError);
  EXPECT_THROW(hw::assemble(R"(
      .loopbound 3
      .word 1
)"),
               hw::AssemblyError);
  EXPECT_THROW(hw::assemble(R"(
      nop
      .loopbound 3
)"),
               hw::AssemblyError);

  const auto program = hw::assemble(R"(
      nop
      .loopbound 7
      bne 0
      halt
)");
  ASSERT_EQ(program.loopBounds.size(), 1u);
  EXPECT_EQ(program.loopBounds.at(4), 7u);
}

}  // namespace
}  // namespace nlft::analysis
