#include "rtkernel/watchdog.hpp"

#include <gtest/gtest.h>

#include "rtkernel/kernel.hpp"

namespace nlft::rt {
namespace {

using util::Duration;
using util::SimTime;

TEST(Watchdog, ExpiresWithoutKicks) {
  sim::Simulator simulator;
  bool fired = false;
  Watchdog watchdog{simulator, Duration::milliseconds(10), [&] { fired = true; }};
  simulator.runUntil(SimTime::fromUs(9'999));
  EXPECT_FALSE(fired);
  simulator.runUntil(SimTime::fromUs(10'000));
  EXPECT_TRUE(fired);
  EXPECT_TRUE(watchdog.expired());
}

TEST(Watchdog, KicksKeepItQuiet) {
  sim::Simulator simulator;
  bool fired = false;
  Watchdog watchdog{simulator, Duration::milliseconds(10), [&] { fired = true; }};
  for (int i = 1; i <= 10; ++i) {
    simulator.scheduleAt(SimTime::fromUs(i * 8000), [&] { watchdog.kick(); });
  }
  simulator.runUntil(SimTime::fromUs(85'000));
  EXPECT_FALSE(fired);
  EXPECT_EQ(watchdog.kicks(), 10u);
  // Kicks stop: expiry 10 ms after the last one (at 80 ms).
  simulator.runUntil(SimTime::fromUs(90'000));
  EXPECT_TRUE(fired);
}

TEST(Watchdog, DisablePreventsExpiry) {
  sim::Simulator simulator;
  bool fired = false;
  Watchdog watchdog{simulator, Duration::milliseconds(10), [&] { fired = true; }};
  watchdog.disable();
  simulator.runUntil(SimTime::fromUs(50'000));
  EXPECT_FALSE(fired);
  watchdog.kick();  // kicking a disabled watchdog is a no-op
  EXPECT_EQ(watchdog.kicks(), 0u);
}

TEST(Watchdog, RejectsBadTimeout) {
  sim::Simulator simulator;
  EXPECT_THROW(Watchdog(simulator, Duration{}, [] {}), std::invalid_argument);
}

TEST(Watchdog, EnforcesSilenceOnAHungKernel) {
  // The kernel kicks the watchdog at every job release; when the release
  // machinery dies (here: every task disabled, as a stand-in for a kernel
  // hang), the watchdog silences the node from OUTSIDE the kernel.
  sim::Simulator simulator;
  Cpu cpu{simulator};
  RtKernel kernel{simulator, cpu};
  bool silencedByWatchdog = false;
  Watchdog watchdog{simulator, Duration::milliseconds(25), [&] {
    silencedByWatchdog = true;
    kernel.stop();
  }};
  kernel.attachWatchdog(&watchdog);

  TaskConfig config;
  config.name = "heartbeat";
  config.priority = 1;
  config.period = Duration::milliseconds(10);
  config.wcet = Duration::milliseconds(1);
  const TaskId task = kernel.addTask(config, [](Job& job) {
    job.runCopy(Duration::milliseconds(1), [&job](CopyStop) { job.complete({}); });
  });
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(35), [&] { kernel.disableTask(task); });
  simulator.runUntil(SimTime::fromUs(100'000));

  EXPECT_TRUE(silencedByWatchdog);
  EXPECT_TRUE(kernel.stopped());
  EXPECT_GE(watchdog.kicks(), 3u);  // releases at 0, 10, 20, 30 kicked it
}

TEST(Watchdog, IntentionalShutdownDoesNotTriggerIt) {
  sim::Simulator simulator;
  Cpu cpu{simulator};
  RtKernel kernel{simulator, cpu};
  bool fired = false;
  Watchdog watchdog{simulator, Duration::milliseconds(25), [&] { fired = true; }};
  kernel.attachWatchdog(&watchdog);

  TaskConfig config;
  config.name = "t";
  config.priority = 1;
  config.period = Duration::milliseconds(10);
  config.wcet = Duration::milliseconds(1);
  kernel.addTask(config, [](Job& job) {
    job.runCopy(Duration::milliseconds(1), [&job](CopyStop) { job.complete({}); });
  });
  kernel.start();
  simulator.scheduleAfter(Duration::milliseconds(30), [&] {
    kernel.reportKernelError({ErrorEvent::Source::HardwareException, 0});
  });
  simulator.runUntil(SimTime::fromUs(200'000));
  EXPECT_TRUE(kernel.stopped());
  EXPECT_FALSE(fired);  // stop() disabled the watchdog with it
}

}  // namespace
}  // namespace nlft::rt
