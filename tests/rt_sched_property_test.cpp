// Property tests of the preemptive scheduler against response-time analysis:
// for random schedulable task sets, the observed worst-case response time in
// simulation never exceeds the RTA bound, the trace is physically consistent
// (no overlap, busy time = executed work), and every job meets its deadline.
#include <gtest/gtest.h>

#include "rtkernel/kernel.hpp"
#include "rtkernel/rta.hpp"
#include "util/rng.hpp"

namespace nlft::rt {
namespace {

using util::Duration;
using util::Rng;
using util::SimTime;

struct GeneratedSet {
  std::vector<RtaTask> analysis;
  std::vector<TaskConfig> configs;
};

/// Random synchronous periodic task set with rate-monotonic priorities and
/// total utilisation below `maxUtilisation`.
GeneratedSet randomTaskSet(Rng& rng, double maxUtilisation) {
  const std::size_t count = 2 + rng.uniformInt(3);
  static const std::int64_t periodChoices[] = {5000, 10000, 20000, 40000, 80000};
  GeneratedSet set;
  double utilisation = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t periodUs = periodChoices[rng.uniformInt(5)];
    const double share = rng.uniform(0.05, maxUtilisation / static_cast<double>(count));
    if (utilisation + share > maxUtilisation) break;
    utilisation += share;
    const auto wcetUs = std::max<std::int64_t>(
        100, static_cast<std::int64_t>(share * static_cast<double>(periodUs)));

    RtaTask analysis;
    analysis.wcet = Duration::microseconds(wcetUs);
    analysis.period = Duration::microseconds(periodUs);
    analysis.deadline = Duration::microseconds(periodUs);
    set.analysis.push_back(analysis);

    TaskConfig config;
    config.name = "task" + std::to_string(i);
    config.period = Duration::microseconds(periodUs);
    config.wcet = Duration::microseconds(wcetUs);
    config.budget = Duration::microseconds(wcetUs);
    set.configs.push_back(config);
  }
  // Rate-monotonic priorities: shorter period = higher priority.
  for (std::size_t i = 0; i < set.configs.size(); ++i) {
    int priority = 0;
    for (std::size_t j = 0; j < set.configs.size(); ++j) {
      if (set.configs[j].period > set.configs[i].period) ++priority;
      if (set.configs[j].period == set.configs[i].period && j < i) ++priority;
    }
    set.configs[i].priority = priority;
    set.analysis[i].priority = priority;
  }
  return set;
}

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, SimulatedResponsesRespectRtaBound) {
  Rng rng{GetParam()};
  const GeneratedSet set = randomTaskSet(rng, 0.75);
  const RtaResult rta = analyze(set.analysis);
  if (!rta.schedulable) GTEST_SKIP() << "generated set unschedulable";

  sim::Simulator simulator;
  Cpu cpu{simulator};
  RtKernel kernel{simulator, cpu};

  std::vector<Duration> worstResponse(set.configs.size());
  std::vector<TaskId> ids;
  for (std::size_t i = 0; i < set.configs.size(); ++i) {
    const Duration wcet = set.configs[i].wcet;
    ids.push_back(kernel.addTask(set.configs[i], [&, i, wcet](Job& job) {
      const SimTime release = job.releaseTime();
      job.runCopy(wcet, [&, i, release](CopyStop stop) {
        ASSERT_EQ(stop, CopyStop::Completed);
        const Duration response = kernel.simulator().now() - release;
        worstResponse[i] = std::max(worstResponse[i], response);
        job.complete({});
      });
    }));
  }
  kernel.start();
  simulator.runUntil(SimTime::fromUs(400'000));  // several hyperperiods

  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_GT(kernel.stats(ids[i]).releases, 0u);
    EXPECT_EQ(kernel.stats(ids[i]).deadlineMisses, 0u) << set.configs[i].name;
    EXPECT_LE(worstResponse[i].us(), rta.responseTimes[i].us()) << set.configs[i].name;
  }
  // The synchronous release at t=0 is the critical instant: the first job of
  // the LOWEST priority task achieves exactly its RTA bound.
  std::size_t lowest = 0;
  for (std::size_t i = 1; i < set.configs.size(); ++i) {
    if (set.configs[i].priority < set.configs[lowest].priority) lowest = i;
  }
  EXPECT_EQ(worstResponse[lowest].us(), rta.responseTimes[lowest].us());
}

TEST_P(SchedulerProperty, TraceIsPhysicallyConsistent) {
  Rng rng{GetParam() ^ 0xD15C};
  const GeneratedSet set = randomTaskSet(rng, 0.7);
  sim::Simulator simulator;
  Cpu cpu{simulator};
  RtKernel kernel{simulator, cpu};
  for (const TaskConfig& config : set.configs) {
    const Duration wcet = config.wcet;
    kernel.addTask(config, [wcet](Job& job) {
      job.runCopy(wcet, [&job](CopyStop) { job.complete({}); });
    });
  }
  kernel.start();
  simulator.runUntil(SimTime::fromUs(200'000));

  // Segments are ordered, non-overlapping, and sum to the busy time.
  Duration summed{};
  SimTime previousEnd;
  for (const ExecutionSegment& segment : cpu.trace()) {
    EXPECT_GE(segment.start, previousEnd);
    EXPECT_GT(segment.end, segment.start);
    summed += segment.end - segment.start;
    previousEnd = segment.end;
  }
  EXPECT_EQ(summed.us(), cpu.busyTime().us());

  // Executed work equals completions x wcet per task (all jobs complete).
  Duration expected{};
  for (std::size_t i = 0; i < set.configs.size(); ++i) {
    const TaskStats& stats = kernel.stats(TaskId{static_cast<std::uint32_t>(i)});
    expected += set.configs[i].wcet * static_cast<std::int64_t>(stats.completions);
  }
  // Jobs still in flight at the horizon may have partial work in the trace.
  EXPECT_GE(cpu.busyTime().us(), expected.us());
  EXPECT_LE(cpu.busyTime().us(), expected.us() + 2 * 80'000);
}

TEST_P(SchedulerProperty, OverloadedSetMissesDeadlinesButKeepsHighestPriorityClean) {
  Rng rng{GetParam() ^ 0xBAD};
  // Force overload: two tasks with combined utilisation ~1.3.
  sim::Simulator simulator;
  Cpu cpu{simulator};
  RtKernel kernel{simulator, cpu};

  TaskConfig high;
  high.name = "high";
  high.priority = 2;
  high.period = Duration::milliseconds(10);
  high.wcet = Duration::milliseconds(6);
  high.budget = high.wcet;
  TaskConfig low;
  low.name = "low";
  low.priority = 1;
  low.period = Duration::milliseconds(10);
  low.wcet = Duration::milliseconds(7);
  low.budget = low.wcet;

  auto handler = [](Duration wcet) {
    return [wcet](Job& job) {
      job.runCopy(wcet, [&job](CopyStop stop) {
        if (stop == CopyStop::Completed) job.complete({});
      });
    };
  };
  const TaskId highId = kernel.addTask(high, handler(high.wcet));
  const TaskId lowId = kernel.addTask(low, handler(low.wcet));
  kernel.start();
  simulator.runUntil(SimTime::fromUs(100'000));

  EXPECT_EQ(kernel.stats(highId).deadlineMisses, 0u);
  EXPECT_GT(kernel.stats(lowId).deadlineMisses, 0u);
  EXPECT_GT(kernel.stats(lowId).omissions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Range<std::uint64_t>(1, 15));

}  // namespace
}  // namespace nlft::rt
