// The interpreted-ISA wheel task must agree with the C++ fixed-point control
// law on every input — a parameterized equivalence sweep — and behave well
// under TEM fault injection.
#include "bbw/wheel_task.hpp"

#include <gtest/gtest.h>

#include "bbw/control.hpp"

namespace nlft::bbw {
namespace {

struct WheelCase {
  std::int32_t requestQ8;
  std::int32_t slipQ8;
  std::int32_t limitQ8;
};

class WheelTaskEquivalence : public ::testing::TestWithParam<WheelCase> {};

TEST_P(WheelTaskEquivalence, AssemblyMatchesFixedPointReference) {
  const WheelCase testCase = GetParam();
  const fi::TaskImage image =
      makeWheelTaskImage(testCase.requestQ8, testCase.slipQ8, testCase.limitQ8);
  const fi::CopyRun run = fi::goldenRun(image);
  ASSERT_EQ(run.end, fi::CopyRun::End::Output);

  std::int32_t expectedLimit = 0;
  const std::int32_t expectedTorque = wheelControlFixedPoint(
      testCase.requestQ8, testCase.slipQ8, testCase.limitQ8, &expectedLimit);
  EXPECT_EQ(static_cast<std::int32_t>(run.output[0]), expectedTorque);
  EXPECT_EQ(static_cast<std::int32_t>(run.output[1]), expectedLimit);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WheelTaskEquivalence,
    ::testing::Values(
        WheelCase{800 * 256, 0, -1},        // no slip, no limit
        WheelCase{800 * 256, 20, -1},       // below target
        WheelCase{800 * 256, 38, -1},       // exactly at target (not above)
        WheelCase{800 * 256, 39, -1},       // just above target
        WheelCase{800 * 256, 50, -1},       // reduce once
        WheelCase{800 * 256, 64, -1},       // exactly at release (reduce once)
        WheelCase{800 * 256, 65, -1},       // above release (reduce twice)
        WheelCase{800 * 256, 200, -1},      // deep lock-up
        WheelCase{800 * 256, 10, 400 * 256},   // recovery with active limit
        WheelCase{800 * 256, 10, 790 * 256},   // recovery that releases
        WheelCase{800 * 256, 50, 400 * 256},   // reduce an existing limit
        WheelCase{800 * 256, 70, 400 * 256},   // hard dump of existing limit
        WheelCase{0, 50, -1},               // zero request
        WheelCase{1, 300, -1},              // tiny request, huge slip
        WheelCase{1500 * 256, 45, 2},       // tiny limit
        WheelCase{123 * 256 + 7, 41, 99 * 256 + 3}));  // non-round values

TEST(WheelTask, ExhaustiveRandomEquivalence) {
  util::Rng rng{321};
  for (int trial = 0; trial < 300; ++trial) {
    const auto request = static_cast<std::int32_t>(rng.uniformInt(2000 * 256));
    const auto slip = static_cast<std::int32_t>(rng.uniformInt(300));
    const std::int32_t limit =
        rng.bernoulli(0.5) ? -1 : static_cast<std::int32_t>(rng.uniformInt(2000 * 256));
    const fi::TaskImage image = makeWheelTaskImage(request, slip, limit);
    const fi::CopyRun run = fi::goldenRun(image);
    ASSERT_EQ(run.end, fi::CopyRun::End::Output);
    std::int32_t expectedLimit = 0;
    const std::int32_t expectedTorque =
        wheelControlFixedPoint(request, slip, limit, &expectedLimit);
    ASSERT_EQ(static_cast<std::int32_t>(run.output[0]), expectedTorque)
        << request << " " << slip << " " << limit;
    ASSERT_EQ(static_cast<std::int32_t>(run.output[1]), expectedLimit);
  }
}

TEST(WheelTask, FitsItsInstructionBudget) {
  const fi::TaskImage image = makeWheelTaskImage(800 * 256, 50, -1);
  const fi::CopyRun run = fi::goldenRun(image);
  EXPECT_LT(run.instructions, image.maxInstructionsPerCopy);
  EXPECT_GT(run.instructions, 10u);
}

TEST(WheelTask, TemCampaignOnBrakeTaskMatchesPaperRegime) {
  const fi::TaskImage image = makeWheelTaskImage(800 * 256, 50, 600 * 256);
  fi::CampaignConfig config;
  config.experiments = 1200;
  config.seed = 2025;
  config.jobBudgetFactor = 3.8;
  const fi::TemCampaignStats stats = fi::runTemCampaign(image, config);
  ASSERT_GT(stats.activated(), 80u);
  // The paper assumed P_T = 0.9 from brake-task fault injection [7].
  EXPECT_GT(stats.pMask().proportion, 0.80);
  EXPECT_GT(stats.coverage().proportion, 0.97);
}

TEST(WheelTask, FsNodeLeaksSilentCorruptionOnBrakeTask) {
  const fi::TaskImage image = makeWheelTaskImage(800 * 256, 50, 600 * 256);
  fi::CampaignConfig config;
  config.experiments = 1200;
  config.seed = 2025;
  const fi::FsCampaignStats stats = fi::runFsCampaign(image, config);
  EXPECT_GT(stats.undetected, 0u);  // wrong brake torque delivered silently
}

}  // namespace
}  // namespace nlft::bbw
