// The end-to-end-protected wheel task: checksum correctness, stack usage,
// and the coverage gain it buys a fail-silent node (Table 1, Section 2.6).
#include <gtest/gtest.h>

#include "bbw/control.hpp"
#include "bbw/wheel_task.hpp"

namespace nlft::bbw {
namespace {

TEST(CheckedWheelTask, GoldenRunProducesValidChecksum) {
  const fi::TaskImage image = makeCheckedWheelTaskImage(800 * 256, 50, 600 * 256);
  const fi::CopyRun run = fi::goldenRun(image);
  ASSERT_EQ(run.end, fi::CopyRun::End::Output);
  ASSERT_EQ(run.output.size(), 3u);
  EXPECT_TRUE(fi::endToEndChecksumValid(run.output));
  EXPECT_EQ(run.output[2], run.output[0] ^ run.output[1] ^ fi::kEndToEndSeed);
}

TEST(CheckedWheelTask, ControlLawUnchangedByTheChecksumVariant) {
  for (int slip : {0, 20, 50, 80, 200}) {
    const fi::CopyRun plain = fi::goldenRun(makeWheelTaskImage(800 * 256, slip, 600 * 256));
    const fi::CopyRun checked =
        fi::goldenRun(makeCheckedWheelTaskImage(800 * 256, slip, 600 * 256));
    ASSERT_EQ(checked.output[0], plain.output[0]) << slip;
    ASSERT_EQ(checked.output[1], plain.output[1]) << slip;
  }
}

TEST(CheckedWheelTask, UsesTheStack) {
  // The subroutine pushes/pops: a broken SP must crash the checked variant.
  const fi::TaskImage image = makeCheckedWheelTaskImage(800 * 256, 50, 600 * 256);
  fi::FaultSpec fault;
  fault.location = fi::RegisterBitFlip{hw::kStackPointer, 31};  // SP -> wild
  fault.afterInstructions = 2;
  fault.targetCopy = 1;
  EXPECT_EQ(fi::runFsExperiment(image, fault), fi::FsOutcome::FailSilent);
}

TEST(CheckedWheelTask, ChecksumValidatorRejectsCorruption) {
  std::vector<std::uint32_t> output{10, 20, 10u ^ 20u ^ fi::kEndToEndSeed};
  EXPECT_TRUE(fi::endToEndChecksumValid(output));
  output[0] ^= 4;
  EXPECT_FALSE(fi::endToEndChecksumValid(output));
  EXPECT_FALSE(fi::endToEndChecksumValid({}));
}

TEST(CheckedWheelTask, EndToEndDetectionRaisesFsCoverage) {
  fi::CampaignConfig config;
  config.experiments = 4000;
  config.seed = 555;
  config.jobBudgetFactor = 3.8;
  const fi::FsCampaignStats plain =
      fi::runFsCampaign(makeWheelTaskImage(800 * 256, 50, 600 * 256), config);
  const fi::FsCampaignStats checked =
      fi::runFsCampaign(makeCheckedWheelTaskImage(800 * 256, 50, 600 * 256), config);
  ASSERT_GT(plain.activated(), 200u);
  ASSERT_GT(checked.activated(), 200u);
  EXPECT_GT(checked.detectedByEndToEnd, 0u);
  // The checksum catches a sizeable share of what used to escape silently.
  EXPECT_GT(checked.coverage().proportion, plain.coverage().proportion + 0.05);
}

TEST(CheckedWheelTask, TemCampaignCountsIntegrityDetections) {
  fi::CampaignConfig config;
  config.experiments = 4000;
  config.seed = 556;
  config.jobBudgetFactor = 4.5;  // checksum rejections cost extra copies
  const fi::TemCampaignStats stats =
      fi::runTemCampaign(makeCheckedWheelTaskImage(800 * 256, 50, 600 * 256), config);
  EXPECT_GT(stats.mechanisms.endToEndCheck, 0u);
  EXPECT_GT(stats.coverage().proportion, 0.98);
}

}  // namespace
}  // namespace nlft::bbw
