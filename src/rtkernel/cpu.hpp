// Preemptive fixed-priority CPU resource on top of the discrete-event
// simulator.
//
// Work items occupy the (single) CPU for a given duration; a higher-priority
// item preempts the running one, which resumes later with its remaining
// time. The execution trace records every contiguous segment, which the
// tests use to assert exact Gantt charts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace nlft::rt {

using util::Duration;
using util::SimTime;

struct WorkId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(WorkId, WorkId) = default;
};

/// One contiguous interval of CPU time given to a work item.
struct ExecutionSegment {
  std::string label;
  SimTime start;
  SimTime end;
};

class Cpu {
 public:
  using CompletionFn = std::function<void()>;

  /// `contextSwitchOverhead` is charged whenever a different work item is
  /// dispatched (a simple but measurable model of kernel overhead).
  explicit Cpu(sim::Simulator& simulator, Duration contextSwitchOverhead = Duration{});

  /// Enqueues `work` at `priority` (higher runs first; FIFO within equal
  /// priority). `onComplete` fires when the accumulated CPU time reaches
  /// `work`. Returns an id usable with cancel().
  WorkId post(int priority, Duration work, CompletionFn onComplete, std::string label);

  /// Cancels a queued or running work item (its completion never fires).
  /// Returns false if the item already completed or is unknown.
  bool cancel(WorkId id);

  [[nodiscard]] bool idle() const { return !running_.has_value(); }
  /// Label of the running item, or empty when idle.
  [[nodiscard]] std::string runningLabel() const;

  [[nodiscard]] const std::vector<ExecutionSegment>& trace() const { return trace_; }
  /// Total CPU busy time accumulated so far.
  [[nodiscard]] Duration busyTime() const { return busy_; }
  [[nodiscard]] std::uint64_t preemptions() const { return preemptions_; }
  [[nodiscard]] std::uint64_t dispatches() const { return dispatches_; }

 private:
  struct Item {
    WorkId id;
    int priority;
    std::uint64_t seq;
    Duration remaining;
    CompletionFn onComplete;
    std::string label;
  };
  struct Running {
    Item item;
    SimTime segmentStart;
    sim::EventId completionEvent;
  };

  void dispatch();
  void preemptRunning();
  void onCompletion();
  void closeSegment();

  sim::Simulator& simulator_;
  Duration contextSwitch_;
  std::uint64_t nextId_ = 1;
  std::uint64_t nextSeq_ = 0;
  std::deque<Item> ready_;
  std::optional<Running> running_;
  std::vector<ExecutionSegment> trace_;
  Duration busy_{};
  std::uint64_t preemptions_ = 0;
  std::uint64_t dispatches_ = 0;
  std::string lastDispatchedLabel_;
};

}  // namespace nlft::rt
