#include "rtkernel/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace nlft::rt {

std::string renderGantt(const std::vector<ExecutionSegment>& trace, Duration resolution,
                        Duration horizon) {
  if (resolution <= Duration{}) throw std::invalid_argument("renderGantt: bad resolution");
  if (trace.empty()) return "";

  Duration end = horizon;
  if (end <= Duration{}) {
    for (const ExecutionSegment& segment : trace) {
      end = std::max(end, segment.end - SimTime::zero());
    }
  }
  const auto columns = static_cast<std::size_t>((end + resolution - Duration::microseconds(1)) /
                                                resolution);

  std::vector<std::string> labels;
  for (const ExecutionSegment& segment : trace) {
    if (std::find(labels.begin(), labels.end(), segment.label) == labels.end()) {
      labels.push_back(segment.label);
    }
  }
  std::size_t width = 0;
  for (const std::string& label : labels) width = std::max(width, label.size());

  std::vector<std::string> rows(labels.size(), std::string(columns, '.'));
  for (const ExecutionSegment& segment : trace) {
    const std::size_t row =
        std::find(labels.begin(), labels.end(), segment.label) - labels.begin();
    const std::int64_t first = (segment.start - SimTime::zero()) / resolution;
    // Last column touched: segment.end is exclusive.
    const std::int64_t last =
        (segment.end - SimTime::zero() - Duration::microseconds(1)) / resolution;
    for (std::int64_t column = first; column <= last; ++column) {
      if (column >= 0 && static_cast<std::size_t>(column) < columns) {
        rows[row][static_cast<std::size_t>(column)] = '#';
      }
    }
  }

  std::string output;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    output += labels[i];
    output.append(width - labels[i].size(), ' ');
    output += " |";
    output += rows[i];
    output += "\n";
  }
  return output;
}

std::vector<std::pair<std::string, Duration>> perLabelBusyTime(
    const std::vector<ExecutionSegment>& trace) {
  std::vector<std::pair<std::string, Duration>> totals;
  for (const ExecutionSegment& segment : trace) {
    const auto it = std::find_if(totals.begin(), totals.end(),
                                 [&](const auto& entry) { return entry.first == segment.label; });
    const Duration length = segment.end - segment.start;
    if (it == totals.end()) {
      totals.emplace_back(segment.label, length);
    } else {
      it->second += length;
    }
  }
  return totals;
}

}  // namespace nlft::rt
