#include "rtkernel/cpu.hpp"

#include <algorithm>
#include <stdexcept>

namespace nlft::rt {

Cpu::Cpu(sim::Simulator& simulator, Duration contextSwitchOverhead)
    : simulator_{simulator}, contextSwitch_{contextSwitchOverhead} {
  if (contextSwitchOverhead < Duration{})
    throw std::invalid_argument("Cpu: negative context-switch overhead");
}

WorkId Cpu::post(int priority, Duration work, CompletionFn onComplete, std::string label) {
  if (work < Duration{}) throw std::invalid_argument("Cpu: negative work");
  const WorkId id{nextId_++};
  ready_.push_back(Item{id, priority, nextSeq_++, work, std::move(onComplete), std::move(label)});
  if (running_ && priority > running_->item.priority) preemptRunning();
  dispatch();
  return id;
}

bool Cpu::cancel(WorkId id) {
  if (running_ && running_->item.id == id) {
    simulator_.cancel(running_->completionEvent);
    closeSegment();
    running_.reset();
    dispatch();
    return true;
  }
  const auto it = std::find_if(ready_.begin(), ready_.end(),
                               [id](const Item& item) { return item.id == id; });
  if (it == ready_.end()) return false;
  ready_.erase(it);
  return true;
}

std::string Cpu::runningLabel() const { return running_ ? running_->item.label : ""; }

void Cpu::dispatch() {
  if (running_ || ready_.empty()) return;

  // Highest priority first, FIFO within a priority level.
  auto best = ready_.begin();
  for (auto it = std::next(ready_.begin()); it != ready_.end(); ++it) {
    if (it->priority > best->priority ||
        (it->priority == best->priority && it->seq < best->seq)) {
      best = it;
    }
  }
  Item item = std::move(*best);
  ready_.erase(best);

  // Context-switch overhead is charged on every dispatch of a different
  // item than the one that ran last (including resumption after preemption
  // by a third party).
  Duration cost = item.remaining;
  if (contextSwitch_ > Duration{} && item.label != lastDispatchedLabel_) {
    cost += contextSwitch_;
  }
  lastDispatchedLabel_ = item.label;
  ++dispatches_;

  // Fold the overhead into the remaining work so that preemption accounting
  // stays exact: a preempted item resumes with precisely what it has left.
  item.remaining = cost;

  Running running;
  running.item = std::move(item);
  running.segmentStart = simulator_.now();
  running.completionEvent = simulator_.scheduleAfter(
      cost, [this] { onCompletion(); }, sim::EventPriority::Kernel);
  running_ = std::move(running);
}

void Cpu::preemptRunning() {
  simulator_.cancel(running_->completionEvent);
  const Duration consumed = simulator_.now() - running_->segmentStart;
  closeSegment();
  Item item = std::move(running_->item);
  running_.reset();
  // Remaining time can go slightly negative if overhead was charged; clamp.
  item.remaining = std::max(Duration{}, item.remaining - consumed);
  ready_.push_back(std::move(item));
  ++preemptions_;
}

void Cpu::closeSegment() {
  const SimTime now = simulator_.now();
  if (now > running_->segmentStart) {
    trace_.push_back({running_->item.label, running_->segmentStart, now});
    busy_ += now - running_->segmentStart;
  }
}

void Cpu::onCompletion() {
  closeSegment();
  CompletionFn callback = std::move(running_->item.onComplete);
  running_.reset();
  if (callback) callback();
  dispatch();
}

}  // namespace nlft::rt
