// The real-time kernel: periodic/sporadic job release, per-job control,
// deadline monitoring and budget enforcement on top of the preemptive
// fixed-priority Cpu.
//
// The kernel itself is policy-free about error handling: it routes detected
// errors to the active job's error handler and exposes the omission /
// fail-silent actions. The NLFT layer (src/core) implements temporal error
// masking on top of exactly this interface; a conventional fail-silent node
// uses the same kernel with a different policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtkernel/cpu.hpp"
#include "rtkernel/task.hpp"
#include "rtkernel/watchdog.hpp"

namespace nlft::rt {

class RtKernel;

/// Why a task-copy execution segment stopped.
enum class CopyStop : std::uint8_t {
  Completed,      ///< consumed its full CPU-time request
  BudgetOverrun,  ///< killed by the execution-time monitor
  Killed,         ///< killed by killRunningCopy() (e.g. EDM error)
  Aborted,        ///< job aborted by the deadline monitor
};

/// An error detected while a task (or the kernel) was executing.
struct ErrorEvent {
  enum class Source : std::uint8_t {
    HardwareException,  ///< CPU exception (illegal opcode, address error, ...)
    EccUncorrectable,
    MmuViolation,
    DataIntegrity,      ///< duplicated-data / CRC check mismatch
    ControlFlow,        ///< control-flow signature check failed
    External,           ///< injected or reported by another mechanism
  };
  Source source = Source::External;
  int detail = 0;  ///< e.g. hw::ExceptionKind as int
};

/// One kernel-level event, streamed to an external tap (golden-trace
/// recording, observers). Job/task fields are valid for the job- and
/// task-scoped kinds only.
struct KernelEvent {
  enum class Kind : std::uint8_t {
    JobCompleted,  ///< job delivered a result
    JobOmitted,    ///< job finished with an omission (no result)
    TaskError,     ///< detected error routed to a task
    KernelError,   ///< kernel-internal error (leads to Stopped)
    Stopped,       ///< kernel went silent
    Restarted,     ///< kernel came back up
  };
  Kind kind = Kind::JobCompleted;
  TaskId task{};
  std::uint64_t jobIndex = 0;
};

/// A delivered job result (the "write output" of the task loop).
struct JobResult {
  TaskId task;
  std::uint64_t jobIndex = 0;
  std::vector<std::uint32_t> data;
  SimTime deliveredAt;
};

/// Handle used by the job handler (the NLFT layer) to drive one job.
///
/// Lifetime: valid from the handler invocation until complete()/omit() or a
/// deadline abort. The kernel owns the object.
class Job {
 public:
  [[nodiscard]] TaskId taskId() const { return task_; }
  [[nodiscard]] std::uint64_t index() const { return index_; }
  [[nodiscard]] SimTime releaseTime() const { return release_; }
  [[nodiscard]] SimTime absoluteDeadline() const { return deadline_; }
  [[nodiscard]] const TaskConfig& config() const;

  /// Time left until the deadline (can be negative after the deadline).
  [[nodiscard]] Duration timeToDeadline() const;

  /// Posts one task-copy execution of `work` CPU time at the task priority.
  /// The execution-time monitor kills the copy after the task budget.
  /// Exactly one copy may run at a time.
  void runCopy(Duration work, std::function<void(CopyStop)> onStop);

  /// True while a copy is queued or running on the CPU.
  [[nodiscard]] bool copyActive() const { return copyWork_.valid(); }

  /// Kills the active copy; its onStop fires with CopyStop::Killed. The
  /// remaining CPU time is reclaimed (paper Fig. 3, scenario iii).
  void killRunningCopy();

  /// Delivers the job result and finishes the job.
  void complete(std::vector<std::uint32_t> result);

  /// Finishes the job with an omission failure (no result delivered).
  void omit();

  /// Registers a callback for errors routed to this job while it is active.
  void setErrorHandler(std::function<void(const ErrorEvent&)> handler) {
    errorHandler_ = std::move(handler);
  }

  /// Registers a callback fired if the deadline monitor aborts the job.
  void setAbortHandler(std::function<void()> handler) { abortHandler_ = std::move(handler); }

 private:
  friend class RtKernel;
  Job(RtKernel& kernel, TaskId task, std::uint64_t index, SimTime release, SimTime deadline)
      : kernel_{kernel}, task_{task}, index_{index}, release_{release}, deadline_{deadline} {}

  void finish();

  RtKernel& kernel_;
  TaskId task_;
  std::uint64_t index_;
  SimTime release_;
  SimTime deadline_;
  WorkId copyWork_{};
  std::function<void(CopyStop)> copyStop_;
  std::function<void(const ErrorEvent&)> errorHandler_;
  std::function<void()> abortHandler_;
  sim::EventId deadlineEvent_{};
  bool finished_ = false;
};

class RtKernel {
 public:
  using JobHandler = std::function<void(Job&)>;
  using ResultSink = std::function<void(const JobResult&)>;

  RtKernel(sim::Simulator& simulator, Cpu& cpu);
  RtKernel(const RtKernel&) = delete;
  RtKernel& operator=(const RtKernel&) = delete;

  /// Registers a task; `handler` is invoked at every job release.
  TaskId addTask(TaskConfig config, JobHandler handler);

  /// Receives every delivered job result (e.g. the network layer).
  void setResultSink(ResultSink sink) { resultSink_ = std::move(sink); }

  /// Streams kernel-level events (job completion/omission, detected errors,
  /// stop/restart) to an observer; one tap per kernel.
  using EventTap = std::function<void(const KernelEvent&)>;
  void setEventTap(EventTap tap) { eventTap_ = std::move(tap); }

  /// Invoked when the kernel decides the node must become silent
  /// (kernel-internal error, Section 2.2 strategy 3).
  void setFailSilentHook(std::function<void()> hook) { failSilent_ = std::move(hook); }

  /// Attaches a hardware watchdog: the kernel kicks it on every job release
  /// (its liveness signal) and disables it on intentional shutdown. A hung
  /// kernel stops kicking and the watchdog enforces silence externally.
  void attachWatchdog(Watchdog* watchdog) { watchdog_ = watchdog; }

  /// Schedules the first release of every periodic task.
  void start();
  /// Stops all activity (node silent): cancels releases and aborts jobs.
  void stop();
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Brings a stopped kernel back up (node restart after diagnosis found a
  /// transient fault): periodic releases resume from the current time.
  /// Tasks disabled with disableTask() stay disabled.
  void restart();

  /// Releases one job of a sporadic (or periodic) task right now.
  void releaseSporadic(TaskId task);

  /// Routes a detected error to the task's active job (TEM reacts to it).
  /// Errors for tasks without an active job are counted but otherwise lost.
  void reportTaskError(TaskId task, const ErrorEvent& event);

  /// A kernel-internal error: the node becomes silent (strategy 3).
  void reportKernelError(const ErrorEvent& event);

  /// Disables further releases of a task (used to shut down non-critical
  /// tasks after an error, Section 2.2 strategy 2).
  void disableTask(TaskId task);

  [[nodiscard]] const TaskConfig& config(TaskId task) const;
  [[nodiscard]] const TaskStats& stats(TaskId task) const;
  [[nodiscard]] TaskStats& mutableStats(TaskId task);
  [[nodiscard]] bool jobActive(TaskId task) const;
  [[nodiscard]] Job* activeJob(TaskId task);
  [[nodiscard]] std::size_t taskCount() const { return tasks_.size(); }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] Cpu& cpu() { return cpu_; }

  [[nodiscard]] std::uint64_t kernelErrors() const { return kernelErrors_; }

 private:
  friend class Job;
  struct TaskEntry {
    TaskConfig config;
    JobHandler handler;
    TaskStats stats;
    std::uint64_t nextJobIndex = 0;
    std::unique_ptr<Job> activeJob;
    sim::EventId nextRelease{};
    bool disabled = false;
  };

  void release(std::uint32_t taskIndex);
  void scheduleNextRelease(std::uint32_t taskIndex, SimTime at);
  TaskEntry& entry(TaskId task);
  const TaskEntry& entry(TaskId task) const;

  /// Jobs are destroyed deferred (at the end of the current event) because
  /// finish() is regularly reached from inside the job's own callbacks.
  void retire(std::unique_ptr<Job> job);

  void emitEvent(KernelEvent::Kind kind, TaskId task = {}, std::uint64_t jobIndex = 0);

  sim::Simulator& simulator_;
  Cpu& cpu_;
  std::vector<TaskEntry> tasks_;
  ResultSink resultSink_;
  EventTap eventTap_;
  std::function<void()> failSilent_;
  bool stopped_ = false;
  std::uint64_t kernelErrors_ = 0;
  std::vector<std::unique_ptr<Job>> retired_;
  bool retireCleanupScheduled_ = false;
  Watchdog* watchdog_ = nullptr;
};

}  // namespace nlft::rt
