// ASCII Gantt rendering of CPU execution traces — a debugging and teaching
// aid for the preemptive schedule (used by examples; handy in test failure
// output too).
#pragma once

#include <string>
#include <vector>

#include "rtkernel/cpu.hpp"

namespace nlft::rt {

/// Renders one row per distinct label (in order of first execution); each
/// column covers `resolution` of simulated time. A cell shows '#' when the
/// task held the CPU during any part of that column, '.' otherwise.
///
///   brake-distribution |##..##..
///   wheel-control      |..##..##
///
/// `horizon` bounds the chart; zero means "end of the last segment".
[[nodiscard]] std::string renderGantt(const std::vector<ExecutionSegment>& trace,
                                      Duration resolution, Duration horizon = Duration{});

/// Total CPU time per label, e.g. for utilisation summaries.
[[nodiscard]] std::vector<std::pair<std::string, Duration>> perLabelBusyTime(
    const std::vector<ExecutionSegment>& trace);

}  // namespace nlft::rt
