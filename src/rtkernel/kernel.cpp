#include "rtkernel/kernel.hpp"

#include <stdexcept>

namespace nlft::rt {

// --- Job ---

const TaskConfig& Job::config() const { return kernel_.config(task_); }

Duration Job::timeToDeadline() const { return deadline_ - kernel_.simulator_.now(); }

void Job::runCopy(Duration work, std::function<void(CopyStop)> onStop) {
  if (finished_) throw std::logic_error("Job::runCopy on finished job");
  if (copyWork_.valid()) throw std::logic_error("Job::runCopy while a copy is active");
  const TaskConfig& cfg = config();
  const Duration budget = cfg.budget > Duration{} ? cfg.budget : cfg.wcet;
  const bool overruns = budget > Duration{} && work > budget;
  const Duration granted = overruns ? budget : work;
  copyStop_ = std::move(onStop);
  copyWork_ = kernel_.cpu_.post(
      cfg.priority, granted,
      [this, overruns] {
        copyWork_ = WorkId{};
        auto stop = std::move(copyStop_);
        copyStop_ = nullptr;
        if (overruns) kernel_.mutableStats(task_).budgetOverruns++;
        if (stop) stop(overruns ? CopyStop::BudgetOverrun : CopyStop::Completed);
      },
      cfg.name);
}

void Job::killRunningCopy() {
  if (!copyWork_.valid()) return;
  kernel_.cpu_.cancel(copyWork_);
  copyWork_ = WorkId{};
  auto stop = std::move(copyStop_);
  copyStop_ = nullptr;
  if (stop) stop(CopyStop::Killed);
}

void Job::complete(std::vector<std::uint32_t> result) {
  if (finished_) return;
  kernel_.mutableStats(task_).completions++;
  kernel_.emitEvent(KernelEvent::Kind::JobCompleted, task_, index_);
  if (kernel_.resultSink_) {
    kernel_.resultSink_(JobResult{task_, index_, std::move(result), kernel_.simulator_.now()});
  }
  finish();
}

void Job::omit() {
  if (finished_) return;
  kernel_.mutableStats(task_).omissions++;
  kernel_.emitEvent(KernelEvent::Kind::JobOmitted, task_, index_);
  finish();
}

void Job::finish() {
  finished_ = true;
  if (copyWork_.valid()) {
    kernel_.cpu_.cancel(copyWork_);
    copyWork_ = WorkId{};
    copyStop_ = nullptr;
  }
  kernel_.simulator_.cancel(deadlineEvent_);
  deadlineEvent_ = sim::EventId{};
  // Hand ownership to the retire list: finish() is often reached from
  // inside this job's own callbacks, so destruction must be deferred.
  kernel_.retire(std::move(kernel_.entry(task_).activeJob));
}

// --- RtKernel ---

RtKernel::RtKernel(sim::Simulator& simulator, Cpu& cpu) : simulator_{simulator}, cpu_{cpu} {}

TaskId RtKernel::addTask(TaskConfig config, JobHandler handler) {
  if (config.wcet < Duration{}) throw std::invalid_argument("RtKernel: negative wcet");
  if (config.relativeDeadline == Duration{}) config.relativeDeadline = config.period;
  if (config.budget == Duration{}) config.budget = config.wcet;
  TaskEntry taskEntry;
  taskEntry.config = std::move(config);
  taskEntry.handler = std::move(handler);
  tasks_.push_back(std::move(taskEntry));
  return TaskId{static_cast<std::uint32_t>(tasks_.size() - 1)};
}

RtKernel::TaskEntry& RtKernel::entry(TaskId task) {
  if (task.value >= tasks_.size()) throw std::invalid_argument("RtKernel: unknown task");
  return tasks_[task.value];
}

const RtKernel::TaskEntry& RtKernel::entry(TaskId task) const {
  if (task.value >= tasks_.size()) throw std::invalid_argument("RtKernel: unknown task");
  return tasks_[task.value];
}

const TaskConfig& RtKernel::config(TaskId task) const { return entry(task).config; }
const TaskStats& RtKernel::stats(TaskId task) const { return entry(task).stats; }
TaskStats& RtKernel::mutableStats(TaskId task) { return entry(task).stats; }
bool RtKernel::jobActive(TaskId task) const { return entry(task).activeJob != nullptr; }
Job* RtKernel::activeJob(TaskId task) { return entry(task).activeJob.get(); }

void RtKernel::start() {
  for (std::uint32_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].config.period > Duration{}) {
      scheduleNextRelease(i, simulator_.now() + tasks_[i].config.offset);
    }
  }
}

void RtKernel::stop() {
  stopped_ = true;
  emitEvent(KernelEvent::Kind::Stopped);
  // Intentional silence: the watchdog must not fire on top of it.
  if (watchdog_) watchdog_->disable();
  for (auto& task : tasks_) {
    simulator_.cancel(task.nextRelease);
    task.nextRelease = sim::EventId{};
    if (task.activeJob) {
      Job& job = *task.activeJob;
      if (job.copyWork_.valid()) {
        cpu_.cancel(job.copyWork_);
        job.copyWork_ = WorkId{};
        job.copyStop_ = nullptr;
      }
      simulator_.cancel(job.deadlineEvent_);
      retire(std::move(task.activeJob));
    }
  }
}

void RtKernel::restart() {
  if (!stopped_) return;
  stopped_ = false;
  emitEvent(KernelEvent::Kind::Restarted);
  start();
}

void RtKernel::retire(std::unique_ptr<Job> job) {
  if (!job) return;
  retired_.push_back(std::move(job));
  if (!retireCleanupScheduled_) {
    retireCleanupScheduled_ = true;
    simulator_.scheduleAfter(Duration{}, [this] {
      retireCleanupScheduled_ = false;
      retired_.clear();
    }, sim::EventPriority::Observer);
  }
}

void RtKernel::scheduleNextRelease(std::uint32_t taskIndex, SimTime at) {
  tasks_[taskIndex].nextRelease = simulator_.scheduleAt(
      at, [this, taskIndex] { release(taskIndex); }, sim::EventPriority::Kernel);
}

void RtKernel::release(std::uint32_t taskIndex) {
  TaskEntry& task = tasks_[taskIndex];
  task.nextRelease = sim::EventId{};
  if (stopped_ || task.disabled) return;

  if (watchdog_) watchdog_->kick();  // kernel liveness signal

  // Schedule the next periodic release first so a handler exception cannot
  // stall the task chain.
  if (task.config.period > Duration{}) {
    scheduleNextRelease(taskIndex, simulator_.now() + task.config.period);
  }

  task.stats.releases++;

  if (task.activeJob) {
    // Previous job still active at its successor's release: count it as a
    // deadline miss and abort it (it can no longer deliver a timely result).
    task.stats.deadlineMisses++;
    Job& previous = *task.activeJob;
    auto abortHandler = std::move(previous.abortHandler_);
    previous.abortHandler_ = nullptr;
    previous.omit();
    if (abortHandler) abortHandler();
  }

  const SimTime now = simulator_.now();
  const SimTime deadline = now + task.config.relativeDeadline;
  task.activeJob.reset(new Job{*this, TaskId{taskIndex}, task.nextJobIndex++, now, deadline});
  Job* job = task.activeJob.get();

  job->deadlineEvent_ = simulator_.scheduleAt(
      deadline,
      [this, taskIndex, job] {
        TaskEntry& task = tasks_[taskIndex];
        if (task.activeJob.get() != job) return;  // already finished
        task.stats.deadlineMisses++;
        if (job->copyWork_.valid()) {
          cpu_.cancel(job->copyWork_);
          job->copyWork_ = WorkId{};
          auto stop = std::move(job->copyStop_);
          job->copyStop_ = nullptr;
          if (stop) stop(CopyStop::Aborted);
        }
        if (task.activeJob.get() != job) return;  // stop callback finished it
        auto abortHandler = std::move(job->abortHandler_);
        job->abortHandler_ = nullptr;
        job->omit();
        if (abortHandler) abortHandler();
      },
      sim::EventPriority::Kernel);

  task.handler(*job);
}

void RtKernel::releaseSporadic(TaskId task) {
  if (stopped_) return;
  release(task.value);
}

void RtKernel::reportTaskError(TaskId task, const ErrorEvent& event) {
  TaskEntry& taskEntry = entry(task);
  taskEntry.stats.errorsDetected++;
  emitEvent(KernelEvent::Kind::TaskError, task,
            taskEntry.activeJob ? taskEntry.activeJob->index() : 0);
  if (taskEntry.activeJob && taskEntry.activeJob->errorHandler_) {
    taskEntry.activeJob->errorHandler_(event);
  }
}

void RtKernel::reportKernelError(const ErrorEvent&) {
  ++kernelErrors_;
  emitEvent(KernelEvent::Kind::KernelError);
  // Strategy 3 (Section 2.2): errors in the kernel silence the node.
  stop();
  if (failSilent_) failSilent_();
}

void RtKernel::emitEvent(KernelEvent::Kind kind, TaskId task, std::uint64_t jobIndex) {
  if (!eventTap_) return;
  KernelEvent event;
  event.kind = kind;
  event.task = task;
  event.jobIndex = jobIndex;
  eventTap_(event);
}

void RtKernel::disableTask(TaskId task) {
  TaskEntry& taskEntry = entry(task);
  taskEntry.disabled = true;
  simulator_.cancel(taskEntry.nextRelease);
  taskEntry.nextRelease = sim::EventId{};
  if (taskEntry.activeJob) taskEntry.activeJob->omit();
}

}  // namespace nlft::rt
