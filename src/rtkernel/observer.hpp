// Response-time observation: per-task response-time statistics (max, mean,
// jitter) collected from delivered results, for comparing the running system
// against the response-time analysis bounds.
#pragma once

#include <map>

#include "rtkernel/kernel.hpp"
#include "util/statistics.hpp"

namespace nlft::rt {

/// Collects response times (delivery time - release time) per task.
///
/// Hook it between the kernel and the application's result sink:
///
///   ResponseTimeObserver observer{kernel};
///   observer.setDownstream([](const JobResult& r) { ... });
///
/// The observer needs the jobs' release times, which it derives from the
/// task config (periodic releases) — exact for periodic tasks started at
/// offset; sporadic tasks can be recorded manually via noteRelease().
class ResponseTimeObserver {
 public:
  explicit ResponseTimeObserver(RtKernel& kernel);

  /// Forwards every result downstream after recording its response time.
  void setDownstream(RtKernel::ResultSink sink) { downstream_ = std::move(sink); }

  /// Records a sporadic release (periodic ones are derived automatically).
  void noteRelease(TaskId task, std::uint64_t jobIndex, SimTime releaseTime);

  [[nodiscard]] const util::RunningStats& stats(TaskId task) const;
  /// Max observed response; zero if the task never delivered.
  [[nodiscard]] Duration worstCase(TaskId task) const;
  /// Jitter: max - min observed response time.
  [[nodiscard]] Duration jitter(TaskId task) const;

 private:
  void onResult(const JobResult& result);

  RtKernel& kernel_;
  RtKernel::ResultSink downstream_;
  std::map<std::uint32_t, util::RunningStats> stats_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, SimTime> sporadicReleases_;
};

}  // namespace nlft::rt
