// Response-time analysis (RTA) for fixed-priority preemptive scheduling,
// including the fault-tolerant extension the paper relies on (Section 2.8):
// slack must be reserved a priori so that a failed critical task can
// re-execute (the third TEM copy) without causing any deadline miss.
//
// Classic RTA (Joseph & Pandya):
//   R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j
//
// Fault-tolerant RTA (Burns, Davis & Punnekkat 1996):
//   R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j
//             + ceil(R_i / T_F) * max_{k in hep(i)} F_k
// where T_F is the minimum inter-arrival time of faults and F_k the
// recovery cost (re-execution time) of task k.
#pragma once

#include <optional>
#include <vector>

#include "util/time.hpp"

namespace nlft::rt {

using util::Duration;

/// A task as seen by the analysis. `wcet` is the total per-job demand in the
/// fault-free case (for TEM tasks: two copies plus comparison overhead);
/// `recovery` is the extra demand when one fault hits the job (the third
/// copy plus the vote).
struct RtaTask {
  Duration wcet{};
  Duration period{};
  Duration deadline{};
  int priority = 0;
  Duration recovery{};
};

struct RtaResult {
  bool schedulable = false;
  std::vector<Duration> responseTimes;  // parallel to the input task vector
};

/// Worst-case response time of tasks[index] ignoring faults.
/// Returns std::nullopt if the recurrence diverges past the deadline.
[[nodiscard]] std::optional<Duration> responseTime(const std::vector<RtaTask>& tasks,
                                                   std::size_t index);

/// Worst-case response time with faults arriving at most every
/// `faultMinInterArrival` (T_F). Pass zero recovery costs to recover the
/// classic analysis.
[[nodiscard]] std::optional<Duration> responseTimeWithFaults(const std::vector<RtaTask>& tasks,
                                                             std::size_t index,
                                                             Duration faultMinInterArrival);

/// Full task-set analysis; `faultMinInterArrival` zero means fault-free.
[[nodiscard]] RtaResult analyze(const std::vector<RtaTask>& tasks,
                                Duration faultMinInterArrival = Duration{});

/// Total utilisation (sum of wcet/period) as a fraction.
[[nodiscard]] double utilization(const std::vector<RtaTask>& tasks);

/// Helper: the per-job demand of a TEM-protected task with a single-copy
/// execution time `singleCopy` and comparison/vote overhead `checkOverhead`:
/// fault-free demand is two copies + one comparison; recovery is one more
/// copy + one more comparison (the majority vote).
[[nodiscard]] RtaTask temTask(Duration singleCopy, Duration checkOverhead, Duration period,
                              Duration deadline, int priority);

}  // namespace nlft::rt
