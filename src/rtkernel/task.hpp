// Task model of the real-time kernel.
//
// Tasks follow the paper's read input - compute - write output loop
// (Fig. 2). Critical tasks are executed under temporal error masking by the
// NLFT layer (src/core); non-critical tasks run once and are simply shut
// down when an error is detected. Priorities are fixed before run-time and
// assigned by criticality (Section 2.8).
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace nlft::rt {

using util::Duration;
using util::SimTime;

struct TaskId {
  std::uint32_t value = 0;
  friend bool operator==(TaskId, TaskId) = default;
};

enum class Criticality : std::uint8_t {
  Critical,     ///< TEM-protected; omission enforced when recovery is impossible
  NonCritical,  ///< best effort; shut down on error
};

/// Static task attributes. All durations are in simulated time.
struct TaskConfig {
  std::string name;
  Criticality criticality = Criticality::Critical;
  int priority = 0;          ///< higher value = higher priority
  Duration period{};         ///< zero for sporadic tasks
  Duration offset{};         ///< release offset of the first job
  Duration relativeDeadline{};  ///< deadline after release (defaults to period)
  Duration wcet{};           ///< worst-case execution time of ONE copy
  Duration budget{};         ///< execution-time-monitor budget per copy (defaults to wcet)
};

/// Per-task runtime counters, exposed for tests and observability.
struct TaskStats {
  std::uint64_t releases = 0;
  std::uint64_t completions = 0;      ///< jobs that delivered a result
  std::uint64_t omissions = 0;        ///< jobs that ended in an omission failure
  std::uint64_t deadlineMisses = 0;   ///< jobs aborted by the deadline monitor
  std::uint64_t budgetOverruns = 0;   ///< copies killed by the budget timer
  std::uint64_t errorsDetected = 0;   ///< EDM/comparison errors observed
  std::uint64_t errorsMasked = 0;     ///< errors masked by TEM
};

}  // namespace nlft::rt
