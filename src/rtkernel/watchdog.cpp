#include "rtkernel/watchdog.hpp"

#include <stdexcept>

namespace nlft::rt {

Watchdog::Watchdog(sim::Simulator& simulator, Duration timeout, std::function<void()> onExpire)
    : simulator_{simulator}, timeout_{timeout}, onExpire_{std::move(onExpire)} {
  if (timeout <= Duration{}) throw std::invalid_argument("Watchdog: bad timeout");
  arm();
}

Watchdog::~Watchdog() { disable(); }

void Watchdog::arm() {
  pending_ = simulator_.scheduleAfter(timeout_, [this] {
    pending_ = sim::EventId{};
    expired_ = true;
    enabled_ = false;
    if (onExpire_) onExpire_();
  }, sim::EventPriority::Hardware);
}

void Watchdog::kick() {
  if (!enabled_) return;
  ++kicks_;
  simulator_.cancel(pending_);
  arm();
}

void Watchdog::disable() {
  enabled_ = false;
  simulator_.cancel(pending_);
  pending_ = sim::EventId{};
}

}  // namespace nlft::rt
