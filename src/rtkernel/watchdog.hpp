// Hardware watchdog timer.
//
// Fail-silent behaviour must hold even when the KERNEL itself hangs (a
// control-flow error looping inside kernel code produces no output — but
// also no error report). A hardware watchdog enforces it: the kernel kicks
// the watchdog on every job release; if no kick arrives within the timeout,
// the watchdog hardware silences the node. This closes the detection gap
// behind the paper's Section 2.2 strategy 3.
#pragma once

#include <functional>

#include "sim/simulator.hpp"

namespace nlft::rt {

using util::Duration;

class Watchdog {
 public:
  /// `onExpire` fires when the watchdog is not kicked for `timeout`.
  Watchdog(sim::Simulator& simulator, Duration timeout, std::function<void()> onExpire);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Restarts the countdown (the kernel's periodic liveness signal).
  void kick();

  /// Stops the watchdog (node intentionally shut down).
  void disable();

  [[nodiscard]] bool expired() const { return expired_; }
  [[nodiscard]] std::uint64_t kicks() const { return kicks_; }

 private:
  void arm();

  sim::Simulator& simulator_;
  Duration timeout_;
  std::function<void()> onExpire_;
  sim::EventId pending_{};
  bool expired_ = false;
  bool enabled_ = true;
  std::uint64_t kicks_ = 0;
};

}  // namespace nlft::rt
