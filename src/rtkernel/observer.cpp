#include "rtkernel/observer.hpp"

namespace nlft::rt {

ResponseTimeObserver::ResponseTimeObserver(RtKernel& kernel) : kernel_{kernel} {
  kernel_.setResultSink([this](const JobResult& result) { onResult(result); });
}

void ResponseTimeObserver::noteRelease(TaskId task, std::uint64_t jobIndex,
                                       SimTime releaseTime) {
  sporadicReleases_[{task.value, jobIndex}] = releaseTime;
}

void ResponseTimeObserver::onResult(const JobResult& result) {
  SimTime release;
  const auto sporadic = sporadicReleases_.find({result.task.value, result.jobIndex});
  if (sporadic != sporadicReleases_.end()) {
    release = sporadic->second;
    sporadicReleases_.erase(sporadic);
  } else {
    // Periodic: release k happens at offset + k * period.
    const TaskConfig& config = kernel_.config(result.task);
    release = SimTime::zero() + config.offset +
              config.period * static_cast<std::int64_t>(result.jobIndex);
  }
  const Duration response = result.deliveredAt - release;
  stats_[result.task.value].add(response.toSeconds());
  if (downstream_) downstream_(result);
}

const util::RunningStats& ResponseTimeObserver::stats(TaskId task) const {
  static const util::RunningStats kEmpty{};
  const auto it = stats_.find(task.value);
  return it == stats_.end() ? kEmpty : it->second;
}

Duration ResponseTimeObserver::worstCase(TaskId task) const {
  const util::RunningStats& s = stats(task);
  if (s.count() == 0) return Duration{};
  return Duration::fromSeconds(s.max());
}

Duration ResponseTimeObserver::jitter(TaskId task) const {
  const util::RunningStats& s = stats(task);
  if (s.count() == 0) return Duration{};
  return Duration::fromSeconds(s.max() - s.min());
}

}  // namespace nlft::rt
