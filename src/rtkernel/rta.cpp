#include "rtkernel/rta.hpp"

#include <stdexcept>

namespace nlft::rt {

namespace {

// ceil(a / b) for positive durations.
std::int64_t ceilDiv(Duration a, Duration b) {
  return (a.us() + b.us() - 1) / b.us();
}

std::optional<Duration> fixedPoint(const std::vector<RtaTask>& tasks, std::size_t index,
                                   Duration faultMinInterArrival) {
  const RtaTask& task = tasks[index];
  if (task.wcet <= Duration{}) throw std::invalid_argument("RTA: non-positive wcet");

  // Max recovery cost among tasks at this or higher priority: a fault in any
  // of them can steal CPU time from task i.
  Duration maxRecovery{};
  for (const RtaTask& other : tasks) {
    if (other.priority >= task.priority) maxRecovery = std::max(maxRecovery, other.recovery);
  }

  // The recurrence either converges or grows without bound (utilisation at
  // or above 1 within this priority band). Responses are reported even past
  // the deadline so callers can see HOW unschedulable a task is; only truly
  // divergent recurrences return nullopt.
  const Duration divergenceBound = std::max(task.deadline, task.period) * 64;

  Duration response = task.wcet;
  for (int iteration = 0; iteration < 10000; ++iteration) {
    Duration demand = task.wcet;
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (j == index) continue;
      const RtaTask& other = tasks[j];
      if (other.priority <= task.priority) continue;
      if (other.period <= Duration{}) throw std::invalid_argument("RTA: non-positive period");
      demand += Duration::microseconds(ceilDiv(response, other.period) * other.wcet.us());
    }
    if (faultMinInterArrival > Duration{} && maxRecovery > Duration{}) {
      demand += Duration::microseconds(ceilDiv(response, faultMinInterArrival) * maxRecovery.us());
    }
    if (demand == response) return response;
    if (demand > divergenceBound) return std::nullopt;
    response = demand;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Duration> responseTime(const std::vector<RtaTask>& tasks, std::size_t index) {
  return fixedPoint(tasks, index, Duration{});
}

std::optional<Duration> responseTimeWithFaults(const std::vector<RtaTask>& tasks,
                                               std::size_t index,
                                               Duration faultMinInterArrival) {
  return fixedPoint(tasks, index, faultMinInterArrival);
}

RtaResult analyze(const std::vector<RtaTask>& tasks, Duration faultMinInterArrival) {
  RtaResult result;
  result.schedulable = true;
  result.responseTimes.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto response = fixedPoint(tasks, i, faultMinInterArrival);
    if (response && *response <= tasks[i].deadline) {
      result.responseTimes[i] = *response;
    } else {
      result.schedulable = false;
      result.responseTimes[i] = response.value_or(Duration::microseconds(-1));
    }
  }
  return result;
}

double utilization(const std::vector<RtaTask>& tasks) {
  double total = 0.0;
  for (const RtaTask& task : tasks) {
    if (task.period <= Duration{}) throw std::invalid_argument("RTA: non-positive period");
    total += static_cast<double>(task.wcet.us()) / static_cast<double>(task.period.us());
  }
  return total;
}

RtaTask temTask(Duration singleCopy, Duration checkOverhead, Duration period, Duration deadline,
                int priority) {
  RtaTask task;
  task.wcet = singleCopy * 2 + checkOverhead;
  task.recovery = singleCopy + checkOverhead;
  task.period = period;
  task.deadline = deadline;
  task.priority = priority;
  return task;
}

}  // namespace nlft::rt
