#include "reliability/reliability_fn.hpp"

#include <cmath>

#include "util/quadrature.hpp"

namespace nlft::rel {

ReliabilityFn exponentialReliability(double ratePerHour) {
  return [ratePerHour](double t) { return std::exp(-ratePerHour * t); };
}

ReliabilityFn constantReliability(double value) {
  return [value](double) { return value; };
}

ReliabilityFn ctmcReliability(CtmcModel model) {
  auto shared = std::make_shared<CtmcModel>(std::move(model));
  return [shared](double t) { return shared->reliability(t); };
}

double mttfByIntegration(const ReliabilityFn& fn, double horizonHint) {
  return util::integrateToInfinity(fn, horizonHint, 1e-9);
}

}  // namespace nlft::rel
