#include "reliability/reliability_fn.hpp"

#include <cmath>

#include "util/quadrature.hpp"

namespace nlft::rel {

ReliabilityFn exponentialReliability(double ratePerHour) {
  return [ratePerHour](double t) { return std::exp(-ratePerHour * t); };
}

ReliabilityFn constantReliability(double value) {
  return [value](double) { return value; };
}

ReliabilityFn ctmcReliability(CtmcModel model) {
  auto shared = std::make_shared<CtmcModel>(std::move(model));
  return [shared](double t) { return shared->reliability(t); };
}

double mttfByIntegration(const ReliabilityFn& fn, double horizonHint) {
  return util::integrateToInfinity(fn, horizonHint, 1e-9);
}

std::vector<ReliabilityComparison> compareReliability(const ReliabilityFn& baseline,
                                                      const ReliabilityFn& alternative,
                                                      const std::vector<double>& checkpointHours) {
  std::vector<ReliabilityComparison> rows;
  rows.reserve(checkpointHours.size());
  for (const double t : checkpointHours) {
    ReliabilityComparison row;
    row.tHours = t;
    row.baseline = baseline(t);
    row.alternative = alternative(t);
    row.relativeDelta =
        row.baseline != 0.0 ? (row.alternative - row.baseline) / row.baseline : 0.0;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace nlft::rel
