#include "reliability/ctmc.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nlft::rel {

using util::LuDecomposition;
using util::Matrix;

StateId CtmcModel::addState(std::string name, bool failure) {
  names_.push_back(std::move(name));
  failure_.push_back(failure);
  initial_.push_back(names_.size() == 1 ? 1.0 : 0.0);
  return StateId{names_.size() - 1};
}

void CtmcModel::validateState(StateId s) const {
  if (s.value >= names_.size()) throw std::invalid_argument("CtmcModel: unknown state");
}

void CtmcModel::addTransition(StateId from, StateId to, double ratePerHour) {
  validateState(from);
  validateState(to);
  if (from == to) throw std::invalid_argument("CtmcModel: self-transition");
  if (ratePerHour < 0.0) throw std::invalid_argument("CtmcModel: negative rate");
  if (ratePerHour == 0.0) return;
  transitions_.push_back({from.value, to.value, ratePerHour});
}

void CtmcModel::setInitialProbability(StateId state, double probability) {
  validateState(state);
  if (probability < 0.0 || probability > 1.0)
    throw std::invalid_argument("CtmcModel: initial probability outside [0,1]");
  initial_[state.value] = probability;
}

Matrix CtmcModel::generator() const {
  const std::size_t n = stateCount();
  Matrix q{n, n};
  for (const auto& t : transitions_) {
    q.at(t.from, t.to) += t.rate;
    q.at(t.from, t.from) -= t.rate;
  }
  return q;
}

Matrix CtmcModel::transientGenerator() const {
  std::vector<std::size_t> map;
  for (std::size_t i = 0; i < stateCount(); ++i)
    if (!failure_[i]) map.push_back(i);
  const Matrix q = generator();
  Matrix qt{map.size(), map.size()};
  for (std::size_t r = 0; r < map.size(); ++r) {
    // Keep the full exit rate on the diagonal so that probability leaking to
    // failure states is correctly lost from the transient partition.
    for (std::size_t c = 0; c < map.size(); ++c) qt.at(r, c) = q.at(map[r], map[c]);
  }
  return qt;
}

std::vector<double> CtmcModel::transientInitial() const {
  std::vector<double> p0;
  for (std::size_t i = 0; i < stateCount(); ++i)
    if (!failure_[i]) p0.push_back(initial_[i]);
  return p0;
}

namespace {

std::vector<double> transientPade(const Matrix& q, const std::vector<double>& p0, double t) {
  const Matrix expQt = util::matrixExponential(q * t);
  // Row vector: p(t) = p0 * exp(Q t).
  return expQt.applyLeft(p0);
}

std::vector<double> transientUniformization(const Matrix& q, const std::vector<double>& p0,
                                            double t, double epsilon = 1e-12) {
  const std::size_t n = q.rows();
  double maxExit = 0.0;
  for (std::size_t i = 0; i < n; ++i) maxExit = std::max(maxExit, -q.at(i, i));
  if (maxExit == 0.0 || t == 0.0) return p0;

  const double rate = maxExit * 1.02;
  const double qt = rate * t;
  // P = I + Q / rate (a substochastic matrix on the transient partition).
  Matrix p = Matrix::identity(n);
  p += q * (1.0 / rate);

  std::vector<double> pk = p0;           // p0 * P^k
  std::vector<double> result(n, 0.0);
  double accumulated = 0.0;
  const std::uint64_t maxIterations =
      static_cast<std::uint64_t>(qt + 12.0 * std::sqrt(qt) + 64.0);
  for (std::uint64_t k = 0; k <= maxIterations; ++k) {
    const double logWeight = -qt + static_cast<double>(k) * std::log(qt) -
                             std::lgamma(static_cast<double>(k) + 1.0);
    const double weight = logWeight < -745.0 ? 0.0 : std::exp(logWeight);
    if (weight > 0.0) {
      for (std::size_t i = 0; i < n; ++i) result[i] += weight * pk[i];
      accumulated += weight;
      if (accumulated >= 1.0 - epsilon) break;
    }
    pk = p.applyLeft(pk);
  }
  return result;
}

}  // namespace

std::vector<double> CtmcModel::stateProbabilities(double tHours, TransientMethod method) const {
  if (tHours < 0.0) throw std::invalid_argument("CtmcModel: negative time");
  const std::size_t n = stateCount();
  const Matrix q = generator();
  std::vector<double> p;
  switch (method) {
    case TransientMethod::PadeExpm:
      p = transientPade(q, initial_, tHours);
      break;
    case TransientMethod::Uniformization:
      p = transientUniformization(q, initial_, tHours);
      break;
  }
  // Clamp tiny negative round-off.
  for (std::size_t i = 0; i < n; ++i) p[i] = std::max(0.0, p[i]);
  return p;
}

double CtmcModel::reliability(double tHours, TransientMethod method) const {
  if (tHours < 0.0) throw std::invalid_argument("CtmcModel: negative time");
  // Work on the transient partition only: with absorbing failure states this
  // equals 1 - P(failure), and it stays numerically clean for stiff chains.
  const Matrix qt = transientGenerator();
  const auto p0 = transientInitial();
  std::vector<double> p;
  switch (method) {
    case TransientMethod::PadeExpm:
      p = transientPade(qt, p0, tHours);
      break;
    case TransientMethod::Uniformization:
      p = transientUniformization(qt, p0, tHours);
      break;
  }
  double r = std::accumulate(p.begin(), p.end(), 0.0);
  return std::min(1.0, std::max(0.0, r));
}

std::vector<double> CtmcModel::expectedVisitTimes() const {
  const Matrix qt = transientGenerator();
  const auto p0 = transientInitial();
  // m^T = p0^T * (-Q_TT)^{-1}  <=>  (-Q_TT)^T m = p0.
  Matrix neg = qt;
  neg *= -1.0;
  return LuDecomposition{neg.transpose()}.solve(p0);
}

std::vector<double> CtmcModel::stationaryDistribution() const {
  const std::size_t n = stateCount();
  const Matrix q = generator();
  for (std::size_t i = 0; i < n; ++i) {
    if (q.at(i, i) == 0.0)
      throw std::logic_error("CtmcModel: absorbing state; no stationary distribution");
  }
  // Solve pi Q = 0 with the last balance equation replaced by normalisation:
  // rows of A are Q^T's rows, except row n-1 = all ones.
  Matrix a = q.transpose();
  std::vector<double> rhs(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) a.at(n - 1, c) = 1.0;
  rhs[n - 1] = 1.0;
  auto pi = LuDecomposition{a}.solve(rhs);
  for (double& p : pi) p = std::max(0.0, p);
  return pi;
}

double CtmcModel::steadyStateAvailability() const {
  const auto pi = stationaryDistribution();
  double available = 0.0;
  for (std::size_t i = 0; i < stateCount(); ++i) {
    if (!failure_[i]) available += pi[i];
  }
  return available;
}

double CtmcModel::meanTimeToFailure() const {
  // MTTF = sum over transient states of expected time spent there.
  const auto visits = expectedVisitTimes();
  return std::accumulate(visits.begin(), visits.end(), 0.0);
}

IndependentSeriesSystem::IndependentSeriesSystem(const CtmcModel& a, const CtmcModel& b)
    : qa_{a.transientGenerator()},
      qb_{b.transientGenerator()},
      pa0_{a.transientInitial()},
      pb0_{b.transientInitial()} {}

double IndependentSeriesSystem::reliability(double tHours) const {
  const auto pa = transientPade(qa_, pa0_, tHours);
  const auto pb = transientPade(qb_, pb0_, tHours);
  const double ra = std::accumulate(pa.begin(), pa.end(), 0.0);
  const double rb = std::accumulate(pb.begin(), pb.end(), 0.0);
  return std::min(1.0, std::max(0.0, ra)) * std::min(1.0, std::max(0.0, rb));
}

double IndependentSeriesSystem::meanTimeToFailure() const {
  // System survives while BOTH components are transient: the joint process
  // lives on the product space with generator Q_a (+) Q_b (Kronecker sum).
  const Matrix joint = util::kroneckerSum(qa_, qb_);
  std::vector<double> p0(pa0_.size() * pb0_.size());
  for (std::size_t i = 0; i < pa0_.size(); ++i)
    for (std::size_t j = 0; j < pb0_.size(); ++j) p0[i * pb0_.size() + j] = pa0_[i] * pb0_[j];

  Matrix neg = joint;
  neg *= -1.0;
  const auto visits = LuDecomposition{neg.transpose()}.solve(p0);
  return std::accumulate(visits.begin(), visits.end(), 0.0);
}

}  // namespace nlft::rel
