#include "reliability/fault_tree.hpp"

#include <stdexcept>

namespace nlft::rel {

GateId FaultTree::addNode(Node node) {
  nodes_.push_back(std::move(node));
  return GateId{nodes_.size() - 1};
}

GateId FaultTree::basicEvent(std::string name, ReliabilityFn reliabilityFn) {
  if (!reliabilityFn) throw std::invalid_argument("FaultTree: null reliability function");
  return addNode(Node{Kind::Basic, std::move(name), std::move(reliabilityFn), 0, {}});
}

GateId FaultTree::orGate(std::vector<GateId> inputs) {
  if (inputs.empty()) throw std::invalid_argument("FaultTree: OR gate needs inputs");
  Node n{Kind::Or, "or", {}, 0, {}};
  for (GateId g : inputs) n.inputs.push_back(g.value);
  return addNode(std::move(n));
}

GateId FaultTree::andGate(std::vector<GateId> inputs) {
  if (inputs.empty()) throw std::invalid_argument("FaultTree: AND gate needs inputs");
  Node n{Kind::And, "and", {}, 0, {}};
  for (GateId g : inputs) n.inputs.push_back(g.value);
  return addNode(std::move(n));
}

GateId FaultTree::kOfNGate(std::size_t k, std::vector<GateId> inputs) {
  if (inputs.empty() || k == 0 || k > inputs.size())
    throw std::invalid_argument("FaultTree: k-of-n requires 1 <= k <= n");
  Node n{Kind::KOfN, "k-of-n", {}, k, {}};
  for (GateId g : inputs) n.inputs.push_back(g.value);
  return addNode(std::move(n));
}

void FaultTree::setTop(GateId top) {
  if (top.value >= nodes_.size()) throw std::invalid_argument("FaultTree: unknown top");
  top_ = top.value;
  hasTop_ = true;
}

double FaultTree::nodeFailure(std::size_t node, double tHours, std::ptrdiff_t forcedNode,
                              double forcedValue) const {
  const Node& n = nodes_[node];
  if (forcedNode >= 0 && static_cast<std::size_t>(forcedNode) == node && n.kind == Kind::Basic) {
    return forcedValue;
  }
  switch (n.kind) {
    case Kind::Basic:
      return 1.0 - n.fn(tHours);
    case Kind::Or: {
      double survive = 1.0;
      for (std::size_t input : n.inputs)
        survive *= 1.0 - nodeFailure(input, tHours, forcedNode, forcedValue);
      return 1.0 - survive;
    }
    case Kind::And: {
      double fail = 1.0;
      for (std::size_t input : n.inputs)
        fail *= nodeFailure(input, tHours, forcedNode, forcedValue);
      return fail;
    }
    case Kind::KOfN: {
      // dist[j] = P(exactly j inputs failed) over processed inputs.
      std::vector<double> dist(n.inputs.size() + 1, 0.0);
      dist[0] = 1.0;
      std::size_t processed = 0;
      for (std::size_t input : n.inputs) {
        const double f = nodeFailure(input, tHours, forcedNode, forcedValue);
        for (std::size_t j = processed + 1; j-- > 0;) {
          dist[j + 1] += dist[j] * f;
          dist[j] *= 1.0 - f;
        }
        ++processed;
      }
      double sum = 0.0;
      for (std::size_t j = n.k; j <= n.inputs.size(); ++j) sum += dist[j];
      return sum;
    }
  }
  return 1.0;
}

double FaultTree::failureProbability(double tHours) const {
  if (nodes_.empty()) throw std::logic_error("FaultTree: empty tree");
  const std::size_t top = hasTop_ ? top_ : nodes_.size() - 1;
  return nodeFailure(top, tHours);
}

double FaultTree::reliability(double tHours) const { return 1.0 - failureProbability(tHours); }

double FaultTree::mttf(double horizonHintHours) const {
  return mttfByIntegration([this](double t) { return reliability(t); }, horizonHintHours);
}

double FaultTree::birnbaumImportance(GateId basicEvent, double tHours) const {
  if (basicEvent.value >= nodes_.size() || nodes_[basicEvent.value].kind != Kind::Basic)
    throw std::invalid_argument("FaultTree: birnbaumImportance needs a basic event");
  const std::size_t top = hasTop_ ? top_ : nodes_.size() - 1;
  const auto forced = static_cast<std::ptrdiff_t>(basicEvent.value);
  return nodeFailure(top, tHours, forced, 1.0) - nodeFailure(top, tHours, forced, 0.0);
}

}  // namespace nlft::rel
