// Graphviz (DOT) export of reliability models — the SHARPE-style tooling
// side of the engine: render the paper's state-transition diagrams
// (Figs. 6, 7, 9, 10, 11) and the Fig. 5 fault tree directly from the
// models used in the analysis.
#pragma once

#include <string>

#include "reliability/ctmc.hpp"

namespace nlft::rel {

/// DOT digraph of a CTMC: states as nodes (failure states drawn as double
/// circles), transitions as edges labelled with their rates.
[[nodiscard]] std::string toDot(const CtmcModel& model, const std::string& title = "ctmc");

/// Generic m-out-of-n repairable group as a birth-death CTMC:
/// `n` identical components, each failing at `failureRate` while the group
/// is alive; failed components are repaired one at a time at `repairRate`
/// (single repair crew); the group fails when fewer than `k` components
/// remain up. State i = "i components down"; state n-k+1 = failure.
[[nodiscard]] CtmcModel kOfNRepairableChain(int n, int k, double failureRate,
                                            double repairRate);

}  // namespace nlft::rel
