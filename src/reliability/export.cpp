#include "reliability/export.hpp"

#include <cstdio>
#include <stdexcept>

namespace nlft::rel {

std::string toDot(const CtmcModel& model, const std::string& title) {
  std::string dot = "digraph \"" + title + "\" {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < model.stateCount(); ++i) {
    const StateId state{i};
    dot += "  s" + std::to_string(i) + " [label=\"" + model.stateName(state) + "\"";
    if (model.isFailureState(state)) dot += ", shape=doublecircle";
    dot += "];\n";
  }
  const util::Matrix q = model.generator();
  for (std::size_t from = 0; from < model.stateCount(); ++from) {
    for (std::size_t to = 0; to < model.stateCount(); ++to) {
      if (from == to || q.at(from, to) == 0.0) continue;
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.3g", q.at(from, to));
      dot += "  s" + std::to_string(from) + " -> s" + std::to_string(to) + " [label=\"" +
             rate + "\"];\n";
    }
  }
  dot += "}\n";
  return dot;
}

CtmcModel kOfNRepairableChain(int n, int k, double failureRate, double repairRate) {
  if (n < 1 || k < 1 || k > n) throw std::invalid_argument("kOfNRepairableChain: bad n/k");
  if (failureRate <= 0.0 || repairRate < 0.0)
    throw std::invalid_argument("kOfNRepairableChain: bad rates");

  CtmcModel m;
  const int failureState = n - k + 1;  // this many down => fewer than k up
  std::vector<StateId> states;
  for (int down = 0; down <= failureState; ++down) {
    states.push_back(m.addState(std::to_string(down) + " down", down == failureState));
  }
  for (int down = 0; down < failureState; ++down) {
    m.addTransition(states[down], states[down + 1],
                    static_cast<double>(n - down) * failureRate);
    if (down > 0 && repairRate > 0.0) {
      m.addTransition(states[down], states[down - 1], repairRate);
    }
  }
  return m;
}

}  // namespace nlft::rel
