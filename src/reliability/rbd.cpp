#include "reliability/rbd.hpp"

#include <stdexcept>

namespace nlft::rel {

BlockId Rbd::addBlock(Block block) {
  blocks_.push_back(std::move(block));
  return BlockId{blocks_.size() - 1};
}

BlockId Rbd::component(std::string name, ReliabilityFn fn) {
  if (!fn) throw std::invalid_argument("Rbd: null reliability function");
  return addBlock(Block{Kind::Component, std::move(name), std::move(fn), 0, {}});
}

BlockId Rbd::series(std::vector<BlockId> children) {
  if (children.empty()) throw std::invalid_argument("Rbd: series needs children");
  Block b{Kind::Series, "series", {}, 0, {}};
  for (BlockId c : children) b.children.push_back(c.value);
  return addBlock(std::move(b));
}

BlockId Rbd::parallel(std::vector<BlockId> children) {
  if (children.empty()) throw std::invalid_argument("Rbd: parallel needs children");
  Block b{Kind::Parallel, "parallel", {}, 0, {}};
  for (BlockId c : children) b.children.push_back(c.value);
  return addBlock(std::move(b));
}

BlockId Rbd::kOfN(std::size_t k, std::vector<BlockId> children) {
  if (children.empty() || k == 0 || k > children.size())
    throw std::invalid_argument("Rbd: k-of-n requires 1 <= k <= n");
  Block b{Kind::KOfN, "k-of-n", {}, k, {}};
  for (BlockId c : children) b.children.push_back(c.value);
  return addBlock(std::move(b));
}

void Rbd::setRoot(BlockId root) {
  if (root.value >= blocks_.size()) throw std::invalid_argument("Rbd: unknown root");
  root_ = root.value;
  hasRoot_ = true;
}

double Rbd::blockReliability(BlockId block, double tHours) const {
  if (block.value >= blocks_.size()) throw std::invalid_argument("Rbd: unknown block");
  const Block& b = blocks_[block.value];
  switch (b.kind) {
    case Kind::Component:
      return b.fn(tHours);
    case Kind::Series: {
      double r = 1.0;
      for (std::size_t c : b.children) r *= blockReliability(BlockId{c}, tHours);
      return r;
    }
    case Kind::Parallel: {
      double unreliability = 1.0;
      for (std::size_t c : b.children) unreliability *= 1.0 - blockReliability(BlockId{c}, tHours);
      return 1.0 - unreliability;
    }
    case Kind::KOfN: {
      // Dynamic program over children: dist[j] = P(exactly j of the first i
      // children work). Handles heterogeneous components exactly.
      std::vector<double> dist(b.children.size() + 1, 0.0);
      dist[0] = 1.0;
      std::size_t processed = 0;
      for (std::size_t c : b.children) {
        const double r = blockReliability(BlockId{c}, tHours);
        for (std::size_t j = processed + 1; j-- > 0;) {
          dist[j + 1] += dist[j] * r;
          dist[j] *= 1.0 - r;
        }
        ++processed;
      }
      double sum = 0.0;
      for (std::size_t j = b.k; j <= b.children.size(); ++j) sum += dist[j];
      return sum;
    }
  }
  return 0.0;
}

double Rbd::reliability(double tHours) const {
  if (blocks_.empty()) throw std::logic_error("Rbd: empty diagram");
  const std::size_t root = hasRoot_ ? root_ : blocks_.size() - 1;
  return blockReliability(BlockId{root}, tHours);
}

double Rbd::mttf(double horizonHintHours) const {
  return mttfByIntegration([this](double t) { return reliability(t); }, horizonHintHours);
}

}  // namespace nlft::rel
