// Static fault trees.
//
// A fault tree expresses *failure* logic: basic events are component
// failures with probability F(t) = 1 - R(t); gates combine them. The paper's
// Figure 5 is a two-input OR gate over the central-unit subsystem and the
// wheel-node subsystem.
//
// Basic events must be statistically independent and must not be shared
// between branches (no repeated events); this matches the paper's
// assumptions and is validated in debug builds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "reliability/reliability_fn.hpp"

namespace nlft::rel {

/// Handle to a node inside one FaultTree instance.
struct GateId {
  std::size_t value = 0;
  friend bool operator==(GateId, GateId) = default;
};

class FaultTree {
 public:
  /// Adds a basic event whose *reliability* (not failure probability) is fn.
  GateId basicEvent(std::string name, ReliabilityFn reliabilityFn);

  /// Output fails if ANY input fails.
  GateId orGate(std::vector<GateId> inputs);
  /// Output fails only if ALL inputs fail.
  GateId andGate(std::vector<GateId> inputs);
  /// Output fails if at least k of the n inputs fail.
  GateId kOfNGate(std::size_t k, std::vector<GateId> inputs);

  /// Designates the top event (defaults to the last node added).
  void setTop(GateId top);

  /// Probability that the top event has occurred by time t.
  [[nodiscard]] double failureProbability(double tHours) const;
  /// 1 - failureProbability.
  [[nodiscard]] double reliability(double tHours) const;
  /// MTTF of the top event by numeric integration of reliability().
  [[nodiscard]] double mttf(double horizonHintHours) const;

  /// Birnbaum structural importance of a basic event at time t:
  /// I_B = F_top(event failed) - F_top(event working). The event with the
  /// highest importance is the system's reliability bottleneck (the paper's
  /// Section 3.2.3 motivates the hierarchical model with exactly this kind
  /// of bottleneck identification).
  [[nodiscard]] double birnbaumImportance(GateId basicEvent, double tHours) const;

 private:
  enum class Kind : std::uint8_t { Basic, Or, And, KOfN };
  struct Node {
    Kind kind;
    std::string name;
    ReliabilityFn fn;  // basic only
    std::size_t k = 0;
    std::vector<std::size_t> inputs;
  };

  GateId addNode(Node node);
  /// `forcedNode` >= 0 pins that basic event's failure probability.
  [[nodiscard]] double nodeFailure(std::size_t node, double tHours,
                                   std::ptrdiff_t forcedNode = -1,
                                   double forcedValue = 0.0) const;

  std::vector<Node> nodes_;
  std::size_t top_ = 0;
  bool hasTop_ = false;
};

}  // namespace nlft::rel
