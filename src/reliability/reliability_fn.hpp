// Reliability functions R(t) and helpers to build them.
#pragma once

#include <functional>
#include <memory>

#include "reliability/ctmc.hpp"

namespace nlft::rel {

/// A reliability function: t in hours -> probability of survival in [0,1].
using ReliabilityFn = std::function<double(double)>;

/// R(t) = exp(-rate * t).
[[nodiscard]] ReliabilityFn exponentialReliability(double ratePerHour);

/// Constant reliability (useful for components out of scope of a study).
[[nodiscard]] ReliabilityFn constantReliability(double value);

/// Reliability of a CTMC (probability of not having hit a failure state).
/// The model is copied into the returned function.
[[nodiscard]] ReliabilityFn ctmcReliability(CtmcModel model);

/// MTTF of an arbitrary reliability function by numeric integration.
/// `horizonHint` (hours) sets the first integration window.
[[nodiscard]] double mttfByIntegration(const ReliabilityFn& fn, double horizonHint);

}  // namespace nlft::rel
