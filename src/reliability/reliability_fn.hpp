// Reliability functions R(t) and helpers to build them.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "reliability/ctmc.hpp"

namespace nlft::rel {

/// A reliability function: t in hours -> probability of survival in [0,1].
using ReliabilityFn = std::function<double(double)>;

/// R(t) = exp(-rate * t).
[[nodiscard]] ReliabilityFn exponentialReliability(double ratePerHour);

/// Constant reliability (useful for components out of scope of a study).
[[nodiscard]] ReliabilityFn constantReliability(double value);

/// Reliability of a CTMC (probability of not having hit a failure state).
/// The model is copied into the returned function.
[[nodiscard]] ReliabilityFn ctmcReliability(CtmcModel model);

/// MTTF of an arbitrary reliability function by numeric integration.
/// `horizonHint` (hours) sets the first integration window.
[[nodiscard]] double mttfByIntegration(const ReliabilityFn& fn, double horizonHint);

/// One comparison point of a baseline vs an alternative reliability model
/// (e.g. paper-assumed vs measured-coverage parameters).
struct ReliabilityComparison {
  double tHours = 0.0;
  double baseline = 0.0;
  double alternative = 0.0;
  /// (alternative - baseline) / baseline; 0 when the baseline is 0.
  double relativeDelta = 0.0;
};

/// Evaluates both functions at every checkpoint, side by side.
[[nodiscard]] std::vector<ReliabilityComparison> compareReliability(
    const ReliabilityFn& baseline, const ReliabilityFn& alternative,
    const std::vector<double>& checkpointHours);

}  // namespace nlft::rel
