// Continuous-time Markov chain (CTMC) modelling and analysis.
//
// This is the analytical core of the SHARPE-style reliability engine: build
// a chain from named states and transition rates, then ask for the transient
// state distribution at time t, the reliability R(t) (probability of not
// being in a failure state), and the mean time to failure.
//
// Two independent transient solvers are provided and cross-checked in tests:
//   * Pade scaling-and-squaring matrix exponential (default; exact ordering
//     of magnitude even for stiff chains where repair rates exceed fault
//     rates by seven orders of magnitude), and
//   * Jensen uniformization (classic randomization; O(q*t) iterations, used
//     for validation at moderate horizons).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace nlft::rel {

/// Index of a state within one CtmcModel.
struct StateId {
  std::size_t value = 0;
  friend bool operator==(StateId, StateId) = default;
};

/// Transient solver selection.
enum class TransientMethod : std::uint8_t { PadeExpm, Uniformization };

/// A finite-state CTMC with designated failure states.
///
/// Rates are per hour (the unit used throughout the reliability analysis).
/// Failure states need not be absorbing for transient analysis, but mttf()
/// requires every failure state to be absorbing.
class CtmcModel {
 public:
  /// Adds a state; `failure` marks it as a system-failure state.
  StateId addState(std::string name, bool failure = false);

  /// Adds a transition with the given non-negative rate (per hour).
  /// Multiple transitions between the same pair of states accumulate.
  void addTransition(StateId from, StateId to, double ratePerHour);

  /// Sets the initial probability of a state (default: all mass on state 0).
  void setInitialProbability(StateId state, double probability);

  [[nodiscard]] std::size_t stateCount() const { return names_.size(); }
  [[nodiscard]] const std::string& stateName(StateId s) const { return names_[s.value]; }
  [[nodiscard]] bool isFailureState(StateId s) const { return failure_[s.value]; }

  /// Full generator matrix Q (diagonal = negative exit rates).
  [[nodiscard]] util::Matrix generator() const;

  /// Generator restricted to non-failure (transient) states.
  [[nodiscard]] util::Matrix transientGenerator() const;

  /// Initial distribution restricted to non-failure states.
  [[nodiscard]] std::vector<double> transientInitial() const;

  /// State distribution at time t (hours).
  [[nodiscard]] std::vector<double> stateProbabilities(
      double tHours, TransientMethod method = TransientMethod::PadeExpm) const;

  /// Probability of being in a non-failure state at time t.
  [[nodiscard]] double reliability(double tHours,
                                   TransientMethod method = TransientMethod::PadeExpm) const;

  /// Mean time (hours) until first entry into a failure state.
  ///
  /// Computed by solving (-Q_TT) m = 1 on the transient partition; requires
  /// failure states to be absorbing and failure reachable from every
  /// initially occupied state.
  [[nodiscard]] double meanTimeToFailure() const;

  /// Expected number of visits to each transient state before absorption
  /// (row of the fundamental matrix weighted by the initial distribution).
  [[nodiscard]] std::vector<double> expectedVisitTimes() const;

  /// Stationary distribution pi with pi Q = 0, sum(pi) = 1. Requires an
  /// irreducible chain (no absorbing states); throws std::logic_error when a
  /// state has no outgoing rate. Use for steady-state availability of
  /// repairable models.
  [[nodiscard]] std::vector<double> stationaryDistribution() const;

  /// Steady-state availability: stationary probability mass on non-failure
  /// states (requires a repairable, irreducible chain).
  [[nodiscard]] double steadyStateAvailability() const;

 private:
  void validateState(StateId s) const;

  std::vector<std::string> names_;
  std::vector<bool> failure_;
  std::vector<double> initial_;
  struct Transition {
    std::size_t from;
    std::size_t to;
    double rate;
  };
  std::vector<Transition> transitions_;
};

/// Reliability of two independent subsystems in series (system fails when
/// either fails): R(t) = Ra(t) * Rb(t); MTTF via the Kronecker sum of the
/// transient generators, which is exact for exponential chains.
class IndependentSeriesSystem {
 public:
  IndependentSeriesSystem(const CtmcModel& a, const CtmcModel& b);

  [[nodiscard]] double reliability(double tHours) const;
  [[nodiscard]] double meanTimeToFailure() const;

 private:
  util::Matrix qa_;
  util::Matrix qb_;
  std::vector<double> pa0_;
  std::vector<double> pb0_;
};

}  // namespace nlft::rel
