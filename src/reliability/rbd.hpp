// Reliability block diagrams (RBD).
//
// A block diagram is a tree: leaves are components with reliability
// functions; inner blocks combine children in series (all must work),
// parallel (at least one must work) or k-of-n (at least k must work).
// Components are assumed statistically independent, matching the paper's
// assumptions (Section 3.2.2). Figure 8 of the paper (wheel-node subsystem,
// full functionality, fail-silent nodes) is a 4-block series diagram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "reliability/reliability_fn.hpp"

namespace nlft::rel {

/// Handle to a block inside one Rbd instance.
struct BlockId {
  std::size_t value = 0;
  friend bool operator==(BlockId, BlockId) = default;
};

class Rbd {
 public:
  /// Adds a leaf component with the given reliability function.
  BlockId component(std::string name, ReliabilityFn fn);

  /// All children must work. Requires at least one child.
  BlockId series(std::vector<BlockId> children);
  /// At least one child must work. Requires at least one child.
  BlockId parallel(std::vector<BlockId> children);
  /// At least k of the children must work. Requires 1 <= k <= n.
  BlockId kOfN(std::size_t k, std::vector<BlockId> children);

  /// Designates the top-level block (defaults to the last one added).
  void setRoot(BlockId root);

  /// System reliability at time t (hours).
  [[nodiscard]] double reliability(double tHours) const;

  /// Reliability of an individual block (useful for bottleneck inspection).
  [[nodiscard]] double blockReliability(BlockId block, double tHours) const;

  /// System MTTF by numeric integration.
  [[nodiscard]] double mttf(double horizonHintHours) const;

 private:
  enum class Kind : std::uint8_t { Component, Series, Parallel, KOfN };
  struct Block {
    Kind kind;
    std::string name;
    ReliabilityFn fn;                // component only
    std::size_t k = 0;               // k-of-n only
    std::vector<std::size_t> children;
  };

  BlockId addBlock(Block block);

  std::vector<Block> blocks_;
  std::size_t root_ = 0;
  bool hasRoot_ = false;
};

}  // namespace nlft::rel
