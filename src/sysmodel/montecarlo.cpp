#include "sysmodel/montecarlo.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/time.hpp"

namespace nlft::sys {

namespace {

enum class NodeState : std::uint8_t { Up, DownTemporary, DownPermanent };

struct NodeRuntime {
  NodeState state = NodeState::Up;
  int group = 0;
  double nextEventAt = 0.0;  ///< next fault (Up) or repair completion (DownTemporary)
};

/// Draws what happens when an activated fault hits an up node.
/// Returns true if the system fails outright (undetected error).
struct FaultEffect {
  bool systemFailure = false;
  bool nodeDown = false;
  bool permanent = false;
  double repairRate = 0.0;
};

FaultEffect resolveFault(const SystemSpec& spec, util::Rng& rng) {
  const NodeParameters& p = spec.params;
  FaultEffect effect;

  const double lambda = p.lambdaPermanent + p.lambdaTransient;
  const bool permanentFault = rng.bernoulli(p.lambdaPermanent / lambda);

  // Pessimistic assumption of the paper: every non-covered error is fatal
  // for the entire system.
  if (!rng.bernoulli(p.coverage)) {
    effect.systemFailure = true;
    return effect;
  }

  if (permanentFault) {
    // Detected permanent fault: the node is taken down for good (repair of
    // permanent faults is outside the model's scope).
    effect.nodeDown = true;
    effect.permanent = true;
    return effect;
  }

  // Detected transient fault.
  if (spec.behavior == NodeBehavior::FailSilent) {
    // The node always restarts: down for ~Exp(muRestart).
    effect.nodeDown = true;
    effect.repairRate = p.muRestart;
    return effect;
  }

  // NLFT node: mask / omission / fail-silent split.
  const double u = rng.uniform01();
  if (u < p.pMask) {
    return effect;  // masked by TEM: no visible effect at all
  }
  if (u < p.pMask + p.pOmission) {
    effect.nodeDown = true;
    effect.repairRate = p.muOmissionRepair;
    return effect;
  }
  effect.nodeDown = true;
  effect.repairRate = p.muRestart;
  return effect;
}

}  // namespace

double simulateLifetime(const SystemSpec& spec, double horizonHours, util::Rng& rng) {
  if (spec.groups.empty()) throw std::invalid_argument("simulateLifetime: no groups");
  const double lambda = spec.params.lambdaPermanent + spec.params.lambdaTransient;

  std::vector<NodeRuntime> nodes;
  std::vector<int> upCount(spec.groups.size(), 0);
  std::vector<int> required(spec.groups.size(), 0);
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    const GroupSpec& group = spec.groups[g];
    if (group.requiredUp < 0 || group.requiredUp > group.nodes)
      throw std::invalid_argument("simulateLifetime: bad group requirement");
    required[g] = group.requiredUp;
    upCount[g] = group.nodes;
    for (int n = 0; n < group.nodes; ++n) {
      NodeRuntime node;
      node.group = static_cast<int>(g);
      node.nextEventAt = rng.exponential(lambda);
      nodes.push_back(node);
    }
  }

  double now = 0.0;
  for (;;) {
    // Next event over all nodes (faults of up nodes, repairs of down ones).
    std::size_t nextIndex = nodes.size();
    double nextAt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].state == NodeState::DownPermanent) continue;
      if (nodes[i].nextEventAt < nextAt) {
        nextAt = nodes[i].nextEventAt;
        nextIndex = i;
      }
    }
    if (nextAt >= horizonHours || nextIndex == nodes.size()) return horizonHours;
    now = nextAt;
    NodeRuntime& node = nodes[nextIndex];

    if (node.state == NodeState::DownTemporary) {
      // Repair completed: the node reintegrates.
      node.state = NodeState::Up;
      ++upCount[node.group];
      node.nextEventAt = now + rng.exponential(lambda);
      continue;
    }

    // An activated fault on an up node (possibly correlated across its
    // whole group — an extension over the paper's independence assumption).
    auto strike = [&](NodeRuntime& victim) -> bool /* system failed */ {
      const FaultEffect effect = resolveFault(spec, rng);
      if (effect.systemFailure) return true;
      if (!effect.nodeDown) return false;  // masked
      --upCount[victim.group];
      if (upCount[victim.group] < required[victim.group]) return true;
      if (effect.permanent) {
        victim.state = NodeState::DownPermanent;
      } else {
        victim.state = NodeState::DownTemporary;
        victim.nextEventAt = now + rng.exponential(effect.repairRate);
      }
      return false;
    };

    const bool correlated = spec.correlation.correlatedFraction > 0.0 &&
                            rng.bernoulli(spec.correlation.correlatedFraction);
    const int group = node.group;
    if (strike(node)) return now;
    if (node.state == NodeState::Up) node.nextEventAt = now + rng.exponential(lambda);

    if (correlated) {
      for (NodeRuntime& other : nodes) {
        if (&other == &node || other.group != group) continue;
        if (other.state != NodeState::Up) continue;
        // The partner's own fault schedule is untouched (the correlated hit
        // is extra; exponential memorylessness keeps this exact).
        if (strike(other)) return now;
      }
    }
  }
}

namespace {

/// One independent RNG sub-stream per chunk, forked from the root stream in
/// chunk order. The mapping from trial to randomness therefore depends only
/// on (seed, chunk layout) — never on the thread count.
std::vector<util::Rng> forkChunkRngs(std::uint64_t seed, std::size_t chunks) {
  util::Rng root{seed};
  std::vector<util::Rng> rngs;
  rngs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) rngs.push_back(root.fork(c));
  return rngs;
}

}  // namespace

MonteCarloResult estimateReliability(const SystemSpec& spec, const MonteCarloConfig& config) {
  if (config.checkpointHours.empty())
    throw std::invalid_argument("estimateReliability: no checkpoints");
  MonteCarloResult result;
  result.trials = config.trials;
  const util::MonotonicStopwatch clock;
  const double horizon =
      *std::max_element(config.checkpointHours.begin(), config.checkpointHours.end());

  struct ChunkAccumulator {
    std::vector<std::size_t> survivors;
    std::size_t failures = 0;
    util::RunningStats failureTimes;
  };

  const std::size_t chunkSize = config.parallelism.resolvedChunkSize(config.trials);
  const std::size_t chunks = exec::chunkCount(config.trials, chunkSize);
  std::vector<util::Rng> chunkRngs = forkChunkRngs(config.seed, chunks);
  std::vector<ChunkAccumulator> accumulators(chunks);

  const std::size_t processed = exec::forEachChunk(
      config.trials, config.parallelism,
      [&](const exec::ChunkRange& range, unsigned) {
        ChunkAccumulator& acc = accumulators[range.index];
        acc.survivors.assign(config.checkpointHours.size(), 0);
        util::Rng rng = chunkRngs[range.index];
        for (std::size_t trial = range.begin; trial < range.end; ++trial) {
          const double failedAt = simulateLifetime(spec, horizon, rng);
          if (failedAt < horizon) {
            ++acc.failures;
            acc.failureTimes.add(failedAt);
          }
          for (std::size_t c = 0; c < config.checkpointHours.size(); ++c) {
            if (failedAt >= config.checkpointHours[c]) ++acc.survivors[c];
          }
        }
      },
      config.cancel, {config.onProgress, 0.25});
  if (processed < config.trials) throw std::runtime_error("estimateReliability: cancelled");

  // Merge in chunk order: deterministic regardless of completion order.
  std::vector<std::size_t> survivors(config.checkpointHours.size(), 0);
  for (const ChunkAccumulator& acc : accumulators) {
    result.failuresWithinHorizon += acc.failures;
    result.failureTimes.merge(acc.failureTimes);
    for (std::size_t c = 0; c < survivors.size(); ++c) survivors[c] += acc.survivors[c];
  }
  for (std::size_t c = 0; c < config.checkpointHours.size(); ++c) {
    ReliabilityEstimate estimate;
    estimate.tHours = config.checkpointHours[c];
    estimate.reliability = util::wilsonInterval(survivors[c], config.trials);
    result.checkpoints.push_back(estimate);
  }
  if (config.metrics != nullptr) {
    config.metrics->add("mc.estimations");
    config.metrics->add("mc.trials", config.trials);
    config.metrics->add("mc.failures_within_horizon", result.failuresWithinHorizon);
    const double elapsed = clock.elapsedSeconds();
    config.metrics->gaugeMax("wall.mc.seconds", elapsed);
    if (elapsed > 0.0) {
      config.metrics->gaugeMax("wall.mc.samples_per_second",
                               static_cast<double>(config.trials) / elapsed);
    }
  }
  return result;
}

util::RunningStats estimateMttf(const SystemSpec& spec, std::size_t trials, std::uint64_t seed,
                                const exec::Parallelism& parallelism) {
  const double effectivelyForever = std::numeric_limits<double>::infinity();
  const std::size_t chunkSize = parallelism.resolvedChunkSize(trials);
  const std::size_t chunks = exec::chunkCount(trials, chunkSize);
  std::vector<util::Rng> chunkRngs = forkChunkRngs(seed, chunks);
  std::vector<util::RunningStats> accumulators(chunks);

  exec::forEachChunk(trials, parallelism, [&](const exec::ChunkRange& range, unsigned) {
    util::Rng rng = chunkRngs[range.index];
    util::RunningStats& stats = accumulators[range.index];
    for (std::size_t trial = range.begin; trial < range.end; ++trial) {
      stats.add(simulateLifetime(spec, effectivelyForever, rng));
    }
  });

  util::RunningStats stats;
  for (const util::RunningStats& chunk : accumulators) stats.merge(chunk);
  return stats;
}

}  // namespace nlft::sys
