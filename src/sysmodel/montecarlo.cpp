#include "sysmodel/montecarlo.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "exec/chunked_campaign.hpp"
#include "sysmodel/lifetime_model.hpp"
#include "util/time.hpp"

namespace nlft::sys {

double simulateLifetime(const SystemSpec& spec, double horizonHours, util::Rng& rng) {
  detail::NominalDraws draws{rng};
  return detail::simulateLifetimeImpl(spec, horizonHours, draws);
}

namespace {

/// Per-chunk accumulator for estimateReliability, mergeable in chunk order.
struct ReliabilityChunk {
  std::size_t experiments = 0;
  std::vector<std::size_t> survivors;  ///< per checkpoint
  std::size_t failures = 0;
  util::RunningStats failureTimes;

  void merge(const ReliabilityChunk& other) {
    experiments += other.experiments;
    failures += other.failures;
    failureTimes.merge(other.failureTimes);
    if (other.survivors.empty()) return;
    if (survivors.empty()) survivors.assign(other.survivors.size(), 0);
    for (std::size_t c = 0; c < survivors.size(); ++c) survivors[c] += other.survivors[c];
  }
};

}  // namespace

MonteCarloResult estimateReliability(const SystemSpec& spec, const MonteCarloConfig& config) {
  if (config.checkpointHours.empty())
    throw std::invalid_argument("estimateReliability: no checkpoints");
  const util::MonotonicStopwatch clock;
  const double horizon =
      *std::max_element(config.checkpointHours.begin(), config.checkpointHours.end());
  const std::size_t checkpointCount = config.checkpointHours.size();

  exec::EarlyStopRule<ReliabilityChunk> rule;
  if (config.target.ciHalfWidth > 0.0) {
    rule.minItems = std::max<std::size_t>(config.target.minTrials, 1);
    rule.shouldStop = [&config](const ReliabilityChunk& prefix, std::size_t items) {
      if (prefix.survivors.empty()) return false;
      for (const std::size_t survivors : prefix.survivors) {
        const util::ProportionEstimate est = util::wilsonInterval(survivors, items);
        if ((est.high - est.low) / 2.0 > config.target.ciHalfWidth) return false;
      }
      return true;
    };
  }

  const auto run = exec::runStoppableChunkedCampaign<ReliabilityChunk>(
      config.trials, config.seed, config.parallelism, "estimateReliability",
      [&](util::Rng& rng, ReliabilityChunk& acc) {
        if (acc.survivors.empty()) acc.survivors.assign(checkpointCount, 0);
        const double failedAt = simulateLifetime(spec, horizon, rng);
        if (failedAt < horizon) {
          ++acc.failures;
          acc.failureTimes.add(failedAt);
        }
        for (std::size_t c = 0; c < checkpointCount; ++c) {
          if (failedAt >= config.checkpointHours[c]) ++acc.survivors[c];
        }
      },
      rule, config.cancel, config.onProgress);

  MonteCarloResult result;
  result.trials = run.itemsUsed;
  result.stoppedEarly = run.stoppedEarly;
  result.failuresWithinHorizon = run.stats.failures;
  result.failureTimes = run.stats.failureTimes;
  const std::vector<std::size_t>& survivors = run.stats.survivors;
  for (std::size_t c = 0; c < checkpointCount; ++c) {
    ReliabilityEstimate estimate;
    estimate.tHours = config.checkpointHours[c];
    const std::size_t up = survivors.empty() ? 0 : survivors[c];
    estimate.reliability = util::wilsonInterval(up, run.itemsUsed);
    result.checkpoints.push_back(estimate);
  }
  if (config.metrics != nullptr) {
    config.metrics->add("mc.estimations");
    config.metrics->add("mc.trials", result.trials);
    config.metrics->add("mc.failures_within_horizon", result.failuresWithinHorizon);
    if (result.stoppedEarly) config.metrics->add("mc.early_stopped");
    const double elapsed = clock.elapsedSeconds();
    config.metrics->gaugeMax("wall.mc.seconds", elapsed);
    if (elapsed > 0.0) {
      config.metrics->gaugeMax("wall.mc.samples_per_second",
                               static_cast<double>(result.trials) / elapsed);
    }
  }
  return result;
}

namespace {

struct MttfChunk {
  std::size_t experiments = 0;
  util::RunningStats lifetimes;

  void merge(const MttfChunk& other) {
    experiments += other.experiments;
    lifetimes.merge(other.lifetimes);
  }
};

}  // namespace

util::RunningStats estimateMttf(const SystemSpec& spec, std::size_t trials, std::uint64_t seed,
                                const exec::Parallelism& parallelism) {
  const double effectivelyForever = std::numeric_limits<double>::infinity();
  return exec::runChunkedCampaign<MttfChunk>(
             trials, seed, parallelism, "estimateMttf",
             [&](util::Rng& rng, MttfChunk& acc) {
               acc.lifetimes.add(simulateLifetime(spec, effectivelyForever, rng));
             })
      .lifetimes;
}

}  // namespace nlft::sys
