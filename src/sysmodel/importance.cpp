#include "sysmodel/importance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/chunked_campaign.hpp"
#include "sysmodel/lifetime_model.hpp"
#include "util/time.hpp"

namespace nlft::sys {

namespace {

void validateBias(const ImportanceSamplingConfig& bias) {
  if (!(bias.arrivalBoost > 0.0) || !(bias.uncoveredBoost > 0.0))
    throw std::invalid_argument("ImportanceSamplingConfig: boosts must be positive");
}

/// Draw policy that tilts fault arrivals and the coverage coin toward
/// failure while accumulating the log likelihood ratio of every biased draw.
/// Unbiased sites (boost == 1.0) call the SAME util::Rng method as the
/// nominal policy and leave logWeight untouched, so the identity
/// configuration reproduces plain Monte-Carlo bit for bit with weight
/// exactly 1.0.
struct BiasedDraws {
  util::Rng& rng;
  double arrivalBoost;
  double uncoveredBoost;
  double logWeight = 0.0;

  double faultArrival(double lambda, double remainingHours) {
    if (arrivalBoost == 1.0) return rng.exponential(lambda);
    const double biased = lambda * arrivalBoost;
    const double x = rng.exponential(biased);
    if (x >= remainingHours) {
      // Censored draw: the arrival lands past the horizon, where the event
      // loop only ever uses the fact that no fault fired in time. Weight by
      // the survival ratio P[X > r] / P'[X > r] = exp((l' - l) r), which is
      // bounded — the raw density ratio's tail diverges whenever l' > l and
      // would sink the effective sample size (docs/ESTIMATORS.md).
      logWeight += (biased - lambda) * remainingHours;
    } else {
      // Exp likelihood ratio: (l/l') * exp(-(l - l') x).
      logWeight += std::log(lambda / biased) - (lambda - biased) * x;
    }
    return x;
  }

  double repairDelay(double rate) { return rng.exponential(rate); }

  bool permanentSplit(double pPermanent) { return rng.bernoulli(pPermanent); }

  bool covered(double coverage) {
    const double q = 1.0 - coverage;  // nominal uncovered probability
    // Bias only genuinely rare coverage failures; cap at 1/2 so the covered
    // branch keeps positive biased mass (absolute continuity both ways).
    const double qBiased =
        q > 0.0 && q < 0.5 ? std::max(q, std::min(q * uncoveredBoost, 0.5)) : q;
    if (qBiased == q) return rng.bernoulli(coverage);
    const bool uncovered = rng.bernoulli(qBiased);
    logWeight += uncovered ? std::log(q / qBiased) : std::log((1.0 - q) / (1.0 - qBiased));
    return !uncovered;
  }

  double maskSplit() { return rng.uniform01(); }

  bool correlatedHit(double fraction) { return rng.bernoulli(fraction); }
};

}  // namespace

BiasedLifetimeSample simulateLifetimeBiased(const SystemSpec& spec, double horizonHours,
                                            util::Rng& rng,
                                            const ImportanceSamplingConfig& bias) {
  validateBias(bias);
  BiasedDraws draws{rng, bias.arrivalBoost, bias.uncoveredBoost};
  BiasedLifetimeSample sample;
  sample.failedAt = detail::simulateLifetimeImpl(spec, horizonHours, draws);
  sample.weight = draws.logWeight == 0.0 ? 1.0 : std::exp(draws.logWeight);
  return sample;
}

namespace {

/// Per-chunk accumulator for estimateReliabilityIs, mergeable in chunk order.
struct IsChunk {
  std::size_t experiments = 0;
  std::vector<util::RunningStats> weightedFailure;  ///< per checkpoint, samples w * 1[fail]
  util::WeightedStats diagnostics;                  ///< x = horizon indicator, w = weight

  void merge(const IsChunk& other) {
    experiments += other.experiments;
    diagnostics.merge(other.diagnostics);
    if (other.weightedFailure.empty()) return;
    if (weightedFailure.empty()) weightedFailure.resize(other.weightedFailure.size());
    for (std::size_t c = 0; c < weightedFailure.size(); ++c)
      weightedFailure[c].merge(other.weightedFailure[c]);
  }
};

}  // namespace

IsReliabilityResult estimateReliabilityIs(const SystemSpec& spec, const MonteCarloConfig& config,
                                          const ImportanceSamplingConfig& bias) {
  if (config.checkpointHours.empty())
    throw std::invalid_argument("estimateReliabilityIs: no checkpoints");
  validateBias(bias);
  const util::MonotonicStopwatch clock;
  const double horizon =
      *std::max_element(config.checkpointHours.begin(), config.checkpointHours.end());
  const std::size_t checkpointCount = config.checkpointHours.size();

  exec::EarlyStopRule<IsChunk> rule;
  if (config.target.ciHalfWidth > 0.0) {
    rule.minItems = std::max<std::size_t>(config.target.minTrials, 1);
    rule.shouldStop = [&config](const IsChunk& prefix, std::size_t) {
      if (prefix.weightedFailure.empty()) return false;
      for (const util::RunningStats& stats : prefix.weightedFailure) {
        if (stats.confidenceHalfWidth() > config.target.ciHalfWidth) return false;
      }
      return true;
    };
  }

  const auto run = exec::runStoppableChunkedCampaign<IsChunk>(
      config.trials, config.seed, config.parallelism, "estimateReliabilityIs",
      [&](util::Rng& rng, IsChunk& acc) {
        if (acc.weightedFailure.empty()) acc.weightedFailure.resize(checkpointCount);
        const BiasedLifetimeSample sample = simulateLifetimeBiased(spec, horizon, rng, bias);
        for (std::size_t c = 0; c < checkpointCount; ++c) {
          const bool failed = sample.failedAt < config.checkpointHours[c];
          acc.weightedFailure[c].add(failed ? sample.weight : 0.0);
        }
        acc.diagnostics.add(sample.failedAt < horizon ? 1.0 : 0.0, sample.weight);
      },
      rule, config.cancel, config.onProgress);

  IsReliabilityResult result;
  result.trials = run.itemsUsed;
  result.stoppedEarly = run.stoppedEarly;
  result.weightDiagnostics = run.stats.diagnostics;
  for (std::size_t c = 0; c < checkpointCount; ++c) {
    IsCheckpointEstimate estimate;
    estimate.tHours = config.checkpointHours[c];
    if (!run.stats.weightedFailure.empty()) {
      const util::RunningStats& stats = run.stats.weightedFailure[c];
      estimate.failureProbability = stats.mean();
      estimate.halfWidth = stats.confidenceHalfWidth();
    }
    estimate.reliability = 1.0 - estimate.failureProbability;
    result.checkpoints.push_back(estimate);
  }
  if (config.metrics != nullptr) {
    config.metrics->add("mc.is.estimations");
    config.metrics->add("mc.is.trials", result.trials);
    if (result.stoppedEarly) config.metrics->add("mc.is.early_stopped");
    config.metrics->gaugeMax("mc.is.ess", result.weightDiagnostics.effectiveSampleSize());
    config.metrics->gaugeMax("mc.is.weight_cv", result.weightDiagnostics.weightCv());
    const double elapsed = clock.elapsedSeconds();
    config.metrics->gaugeMax("wall.mc.is.seconds", elapsed);
    if (elapsed > 0.0) {
      config.metrics->gaugeMax("wall.mc.is.samples_per_second",
                               static_cast<double>(result.trials) / elapsed);
    }
  }
  return result;
}

namespace {

struct MttfIsChunk {
  std::size_t experiments = 0;
  util::RunningStats weightedLifetimes;
  util::WeightedStats diagnostics;

  void merge(const MttfIsChunk& other) {
    experiments += other.experiments;
    weightedLifetimes.merge(other.weightedLifetimes);
    diagnostics.merge(other.diagnostics);
  }
};

}  // namespace

MttfIsEstimate estimateMttfIs(const SystemSpec& spec, std::size_t trials, std::uint64_t seed,
                              const ImportanceSamplingConfig& bias,
                              const exec::Parallelism& parallelism) {
  validateBias(bias);
  const double effectivelyForever = std::numeric_limits<double>::infinity();
  const MttfIsChunk merged = exec::runChunkedCampaign<MttfIsChunk>(
      trials, seed, parallelism, "estimateMttfIs", [&](util::Rng& rng, MttfIsChunk& acc) {
        const BiasedLifetimeSample sample =
            simulateLifetimeBiased(spec, effectivelyForever, rng, bias);
        acc.weightedLifetimes.add(sample.weight * sample.failedAt);
        acc.diagnostics.add(sample.failedAt, sample.weight);
      });
  MttfIsEstimate estimate;
  estimate.weightedLifetimes = merged.weightedLifetimes;
  estimate.weightDiagnostics = merged.diagnostics;
  return estimate;
}

}  // namespace nlft::sys
