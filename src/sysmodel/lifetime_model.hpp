// Internal shared core of the system-lifetime simulation.
//
// The event loop is templated over a Draws policy so the nominal Monte-Carlo
// path (montecarlo.cpp) and the importance-sampling path (importance.cpp)
// execute the SAME model code and differ only in how individual random
// variables are drawn. The policy surface names every draw site by its role:
//
//   faultArrival(lambda, remainingHours)
//                           exponential inter-arrival of the next fault;
//                           remainingHours is the time left to the horizon,
//                           so a biased policy can censor its likelihood
//                           ratio there (the loop never looks at the exact
//                           value of an arrival past the horizon)
//   repairDelay(rate)       exponential repair / restart completion
//   permanentSplit(p)       permanent-vs-transient classification
//   covered(coverage)       error-detection coverage draw
//   maskSplit()             NLFT mask / omission / fail-silent uniform
//   correlatedHit(f)        correlated-burst coin
//
// A biased policy may change the distribution at a draw site as long as it
// accounts for the likelihood ratio (docs/ESTIMATORS.md); the nominal policy
// is a plain passthrough to util::Rng, consuming the stream in exactly the
// order the pre-refactor simulateLifetime did, which keeps every seeded
// result in tests and EXPERIMENTS.md bit-identical.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sysmodel/montecarlo.hpp"
#include "util/rng.hpp"

namespace nlft::sys::detail {

enum class NodeState : std::uint8_t { Up, DownTemporary, DownPermanent };

struct NodeRuntime {
  NodeState state = NodeState::Up;
  int group = 0;
  double nextEventAt = 0.0;  ///< next fault (Up) or repair completion (DownTemporary)
};

/// Draws what happens when an activated fault hits an up node.
struct FaultEffect {
  bool systemFailure = false;
  bool nodeDown = false;
  bool permanent = false;
  double repairRate = 0.0;
};

template <typename Draws>
FaultEffect resolveFault(const SystemSpec& spec, Draws& draws) {
  const NodeParameters& p = spec.params;
  FaultEffect effect;

  const double lambda = p.lambdaPermanent + p.lambdaTransient;
  const bool permanentFault = draws.permanentSplit(p.lambdaPermanent / lambda);

  // Pessimistic assumption of the paper: every non-covered error is fatal
  // for the entire system.
  if (!draws.covered(p.coverage)) {
    effect.systemFailure = true;
    return effect;
  }

  if (permanentFault) {
    // Detected permanent fault: the node is taken down for good (repair of
    // permanent faults is outside the model's scope).
    effect.nodeDown = true;
    effect.permanent = true;
    return effect;
  }

  // Detected transient fault.
  if (spec.behavior == NodeBehavior::FailSilent) {
    // The node always restarts: down for ~Exp(muRestart).
    effect.nodeDown = true;
    effect.repairRate = p.muRestart;
    return effect;
  }

  // NLFT node: mask / omission / fail-silent split.
  const double u = draws.maskSplit();
  if (u < p.pMask) {
    return effect;  // masked by TEM: no visible effect at all
  }
  if (u < p.pMask + p.pOmission) {
    effect.nodeDown = true;
    effect.repairRate = p.muOmissionRepair;
    return effect;
  }
  effect.nodeDown = true;
  effect.repairRate = p.muRestart;
  return effect;
}

/// Simulates one system lifetime under the given draw policy; returns the
/// failure time in hours, capped at `horizonHours`.
template <typename Draws>
double simulateLifetimeImpl(const SystemSpec& spec, double horizonHours, Draws& draws) {
  if (spec.groups.empty()) throw std::invalid_argument("simulateLifetime: no groups");
  const double lambda = spec.params.lambdaPermanent + spec.params.lambdaTransient;

  std::vector<NodeRuntime> nodes;
  std::vector<int> upCount(spec.groups.size(), 0);
  std::vector<int> required(spec.groups.size(), 0);
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    const GroupSpec& group = spec.groups[g];
    if (group.requiredUp < 0 || group.requiredUp > group.nodes)
      throw std::invalid_argument("simulateLifetime: bad group requirement");
    required[g] = group.requiredUp;
    upCount[g] = group.nodes;
    for (int n = 0; n < group.nodes; ++n) {
      NodeRuntime node;
      node.group = static_cast<int>(g);
      node.nextEventAt = draws.faultArrival(lambda, horizonHours);
      nodes.push_back(node);
    }
  }

  double now = 0.0;
  for (;;) {
    // Next event over all nodes (faults of up nodes, repairs of down ones).
    std::size_t nextIndex = nodes.size();
    double nextAt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].state == NodeState::DownPermanent) continue;
      if (nodes[i].nextEventAt < nextAt) {
        nextAt = nodes[i].nextEventAt;
        nextIndex = i;
      }
    }
    if (nextAt >= horizonHours || nextIndex == nodes.size()) return horizonHours;
    now = nextAt;
    NodeRuntime& node = nodes[nextIndex];

    if (node.state == NodeState::DownTemporary) {
      // Repair completed: the node reintegrates.
      node.state = NodeState::Up;
      ++upCount[node.group];
      node.nextEventAt = now + draws.faultArrival(lambda, horizonHours - now);
      continue;
    }

    // An activated fault on an up node (possibly correlated across its
    // whole group — an extension over the paper's independence assumption).
    auto strike = [&](NodeRuntime& victim) -> bool /* system failed */ {
      const FaultEffect effect = resolveFault(spec, draws);
      if (effect.systemFailure) return true;
      if (!effect.nodeDown) return false;  // masked
      --upCount[victim.group];
      if (upCount[victim.group] < required[victim.group]) return true;
      if (effect.permanent) {
        victim.state = NodeState::DownPermanent;
      } else {
        victim.state = NodeState::DownTemporary;
        victim.nextEventAt = now + draws.repairDelay(effect.repairRate);
      }
      return false;
    };

    const bool correlated = spec.correlation.correlatedFraction > 0.0 &&
                            draws.correlatedHit(spec.correlation.correlatedFraction);
    const int group = node.group;
    if (strike(node)) return now;
    if (node.state == NodeState::Up)
      node.nextEventAt = now + draws.faultArrival(lambda, horizonHours - now);

    if (correlated) {
      for (NodeRuntime& other : nodes) {
        if (&other == &node || other.group != group) continue;
        if (other.state != NodeState::Up) continue;
        // The partner's own fault schedule is untouched (the correlated hit
        // is extra; exponential memorylessness keeps this exact).
        if (strike(other)) return now;
      }
    }
  }
}

/// Passthrough policy: every draw site pulls straight from util::Rng, in the
/// same order as the original hand-written loop.
struct NominalDraws {
  util::Rng& rng;

  double faultArrival(double lambda, double /*remainingHours*/) {
    return rng.exponential(lambda);
  }
  double repairDelay(double rate) { return rng.exponential(rate); }
  bool permanentSplit(double pPermanent) { return rng.bernoulli(pPermanent); }
  bool covered(double coverage) { return rng.bernoulli(coverage); }
  double maskSplit() { return rng.uniform01(); }
  bool correlatedHit(double fraction) { return rng.bernoulli(fraction); }
};

}  // namespace nlft::sys::detail
