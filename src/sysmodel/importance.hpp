// Importance-sampling (IS) estimators for rare-event reliability questions.
//
// Plain Monte-Carlo needs ~100/p trials to resolve a failure probability p;
// for a one-year mission of the paper's node (lambda ~ 2e-4/h, coverage
// 0.99) interesting events can be orders of magnitude rarer than that. The
// IS path simulates the SAME lifetime model (lifetime_model.hpp) under a
// biased measure that makes failures common — faults arrive faster, the
// coverage draw fails more often — and multiplies every trial's outcome by
// the likelihood ratio w = dP_nominal/dP_biased of the draws it consumed, so
// the weighted estimator remains unbiased for the nominal model. The full
// derivation, diagnostics and determinism contract live in
// docs/ESTIMATORS.md.
//
// Determinism: trials are chunked exactly like estimateReliability (per-chunk
// RNG sub-streams, chunk-order merge), so results are bit-identical at every
// thread count. With both boosts at 1.0 the biased draws consume the RNG
// stream identically to the nominal path and every weight is EXACTLY 1.0 —
// tests assert the estimates then coincide with plain Monte-Carlo bit for
// bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sysmodel/montecarlo.hpp"

namespace nlft::sys {

/// How far to tilt the sampling distribution toward failure. Boosts must be
/// positive; 1.0 leaves the corresponding draw unbiased.
struct ImportanceSamplingConfig {
  /// Multiplies the fault inter-arrival rate (lambda -> lambda * boost).
  double arrivalBoost = 10.0;
  /// Multiplies the uncovered-error probability (1-c -> min((1-c)*boost,
  /// 0.5), never below the nominal value). 1.0 leaves coverage unbiased.
  double uncoveredBoost = 1.0;
};

/// One biased lifetime draw: the (possibly censored) failure time plus the
/// likelihood-ratio weight of the path that produced it.
struct BiasedLifetimeSample {
  double failedAt = 0.0;  ///< hours; >= horizon means survived the horizon
  double weight = 1.0;    ///< dP_nominal / dP_biased over the consumed draws
};

[[nodiscard]] BiasedLifetimeSample simulateLifetimeBiased(const SystemSpec& spec,
                                                          double horizonHours, util::Rng& rng,
                                                          const ImportanceSamplingConfig& bias);

struct IsCheckpointEstimate {
  double tHours = 0.0;
  /// Unbiased IS estimate of the failure probability F(t): mean of w * 1[T <= t].
  double failureProbability = 0.0;
  double reliability = 0.0;  ///< 1 - failureProbability
  /// Normal-approximation 95% half-width of the failureProbability estimate.
  double halfWidth = 0.0;
};

struct IsReliabilityResult {
  std::vector<IsCheckpointEstimate> checkpoints;
  std::size_t trials = 0;  ///< trials the estimates are based on
  bool stoppedEarly = false;
  /// Weighted accumulator over the horizon-failure indicator: mean() is the
  /// self-normalized alternative estimate, effectiveSampleSize() and
  /// weightCv() are the proposal-quality diagnostics (docs/ESTIMATORS.md).
  util::WeightedStats weightDiagnostics;
};

/// IS counterpart of estimateReliability: same checkpoints, same chunked
/// determinism contract, same PrecisionTarget early stopping (applied to the
/// IS half-widths). Metrics (when config.metrics is set) land under
/// "mc.is.*": trial counters plus ESS and weight-CV gauges.
[[nodiscard]] IsReliabilityResult estimateReliabilityIs(const SystemSpec& spec,
                                                        const MonteCarloConfig& config,
                                                        const ImportanceSamplingConfig& bias);

struct MttfIsEstimate {
  /// Samples w * T; mean() is the unbiased IS estimate of the MTTF.
  util::RunningStats weightedLifetimes;
  /// Weighted accumulator (x = lifetime, w = weight) for diagnostics.
  util::WeightedStats weightDiagnostics;
};

/// IS counterpart of estimateMttf (every trial simulated to failure under
/// the biased measure).
[[nodiscard]] MttfIsEstimate estimateMttfIs(const SystemSpec& spec, std::size_t trials,
                                            std::uint64_t seed,
                                            const ImportanceSamplingConfig& bias,
                                            const exec::Parallelism& parallelism = {});

}  // namespace nlft::sys
