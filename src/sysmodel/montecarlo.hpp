// Monte-Carlo estimation of system reliability, simulating the same
// stochastic model the paper analyses with Markov chains.
//
// Each trial draws per-node fault processes (permanent + transient,
// exponential inter-arrival), applies the node behaviour — fail-silent or
// light-weight NLFT with its (P_T, P_OM, P_FS) reaction to detected
// transients — and exponential repairs, and records the first instant at
// which any redundancy group drops below its required number of working
// nodes (or an undetected error occurs anywhere, which is assumed fatal for
// the whole system, Section 3.2.1).
//
// Because the stochastic assumptions are identical to the CTMC models, the
// estimates must agree with the analytic solution within sampling error;
// tests and the montecarlo_vs_markov bench enforce exactly that. This is
// the repository's substitute for validating against the (closed-source)
// SHARPE tool used by the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace nlft::sys {

/// Node error-handling behaviour (mirrors bbw::NodeType, kept independent so
/// this module has no dependency on the brake-by-wire study).
enum class NodeBehavior : std::uint8_t { FailSilent, Nlft };

/// Stochastic node parameters; rates per hour.
struct NodeParameters {
  double lambdaPermanent = 1.82e-5;
  double lambdaTransient = 1.82e-4;
  double coverage = 0.99;
  double pMask = 0.90;
  double pOmission = 0.05;
  double pFailSilent = 0.05;
  double muRestart = 1.2e3;
  double muOmissionRepair = 2.25e3;
};

/// A redundancy group: `nodes` identical nodes of which `requiredUp` must be
/// operational at all times (e.g. CU duplex: 2/1; wheel nodes degraded: 4/3).
struct GroupSpec {
  std::string name;
  int nodes = 1;
  int requiredUp = 1;
};

/// Extension beyond the paper's independence assumption (Section 3.2.2
/// explicitly excludes correlated faults): with probability
/// `correlatedFraction`, a fault event strikes EVERY up node of the same
/// group at once (e.g. a power glitch hitting both central-unit channels).
/// Each affected node resolves its fault independently (an NLFT node may
/// mask its copy of the correlated fault). Set to 0 to recover the paper's
/// model exactly.
struct CorrelationModel {
  double correlatedFraction = 0.0;
};

struct SystemSpec {
  NodeBehavior behavior = NodeBehavior::FailSilent;
  NodeParameters params{};
  std::vector<GroupSpec> groups;
  CorrelationModel correlation{};
};

/// Simulates one system lifetime; returns the failure time in hours
/// (capped at `horizonHours`: a return value >= horizonHours means the
/// system survived the whole horizon).
[[nodiscard]] double simulateLifetime(const SystemSpec& spec, double horizonHours,
                                      util::Rng& rng);

struct ReliabilityEstimate {
  double tHours = 0.0;
  util::ProportionEstimate reliability;
};

struct MonteCarloResult {
  std::vector<ReliabilityEstimate> checkpoints;
  /// Trials the estimates are based on — the full budget, or less when a
  /// PrecisionTarget stopped the campaign early.
  std::size_t trials = 0;
  std::size_t failuresWithinHorizon = 0;
  bool stoppedEarly = false;
  util::RunningStats failureTimes;  ///< uncensored failure times only
};

/// Sequential precision target (docs/ESTIMATORS.md). When `ciHalfWidth` is
/// positive, the campaign halts at the first chunk boundary where EVERY
/// checkpoint's 95% interval half-width is at or below the target. The stop
/// decision is evaluated on deterministic chunk prefixes only, so early-
/// stopped results stay bit-identical at every thread count.
struct PrecisionTarget {
  double ciHalfWidth = 0.0;  ///< 0 disables early stopping
  /// Never stop before this many trials (guards small-sample CI math).
  std::size_t minTrials = 1000;
};

struct MonteCarloConfig {
  std::size_t trials = 10000;
  std::uint64_t seed = 1;
  std::vector<double> checkpointHours{8760.0};
  /// Worker threads and chunking. Trials are split into chunks, each chunk
  /// draws from its own RNG sub-stream (`Rng::fork(chunkIndex)`), and chunk
  /// results merge in chunk order — so for a fixed (seed, chunkSize) the
  /// result is bit-identical for EVERY thread count, including 1.
  exec::Parallelism parallelism{};
  /// Optional throughput reporting (trials/sec, ETA, per-worker counts).
  exec::ProgressFn onProgress;
  /// Optional cooperative cancellation. A cancelled run throws
  /// std::runtime_error rather than returning a truncated estimate.
  exec::CancellationToken* cancel = nullptr;
  /// Optional metrics sink (not owned): deterministic "mc.*" counters plus
  /// non-golden "wall.mc.*" throughput gauges (trials per second).
  obs::Registry* metrics = nullptr;
  /// Optional sequential early stopping at a target interval half-width.
  PrecisionTarget target{};
};

/// Estimates R(t) at every checkpoint (horizon = max checkpoint).
[[nodiscard]] MonteCarloResult estimateReliability(const SystemSpec& spec,
                                                   const MonteCarloConfig& config);

/// Estimates the MTTF by simulating every trial to system failure.
[[nodiscard]] util::RunningStats estimateMttf(const SystemSpec& spec, std::size_t trials,
                                              std::uint64_t seed,
                                              const exec::Parallelism& parallelism = {});

}  // namespace nlft::sys
