// Fault-tolerant distributed clock synchronisation (Welch-Lynch style
// fault-tolerant averaging), the foundation every time-triggered platform —
// TTA, TTP/C, FlexRay — rests on: TDMA slots only exist because all nodes
// agree on time to within a known precision.
//
// Model: every node owns a drifting local clock (rate 1 + rho, initial
// offset). At each resynchronisation round the nodes exchange their local
// readings (the exchange is modelled as instantaneous and reliable, as the
// paper assumes for its network); each node discards the k largest and k
// smallest differences (tolerating up to k arbitrarily faulty clocks) and
// corrects by the average of the rest.
//
// The classic precision bound: after convergence the worst pairwise skew
// stays below ~ 2 * rho_max * R + residual, with R the resync interval.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"

namespace nlft::net {

/// A local clock with constant rate deviation and adjustable offset.
class DriftingClock {
 public:
  DriftingClock(double driftPpm, double initialOffsetUs)
      : driftPpm_{driftPpm}, offsetUs_{initialOffsetUs} {}

  /// Local reading (microseconds) at a given global instant.
  [[nodiscard]] double readAt(util::SimTime globalNow) const {
    return offsetUs_ + (1.0 + driftPpm_ * 1e-6) * static_cast<double>(globalNow.us());
  }

  /// Applies a correction (state correction: jumps the offset).
  void adjust(double deltaUs) { offsetUs_ += deltaUs; }

  [[nodiscard]] double driftPpm() const { return driftPpm_; }

 private:
  double driftPpm_;
  double offsetUs_;
};

/// Runs periodic fault-tolerant-average resynchronisation over a set of
/// clocks on the shared simulator.
class ClockSyncService {
 public:
  /// `faultyTolerated` = k of the FTA (k highest and k lowest discarded).
  ClockSyncService(sim::Simulator& simulator, util::Duration resyncInterval,
                   int faultyTolerated = 1);

  /// Adds a clock; returns its index.
  std::size_t addClock(DriftingClock clock);

  /// Marks a clock Byzantine: its broadcast readings are replaced by the
  /// value produced by `lie` (other nodes cannot tell), while its own
  /// corrections are skipped (a faulty node need not behave).
  void setByzantine(std::size_t index, std::function<double(double honestReading)> lie);

  /// Models membership expulsion of a node mid-run: an expelled clock stops
  /// broadcasting (peers ignore it in the fault-tolerant average), applies
  /// no corrections itself (it free-runs), and no longer counts toward
  /// maxSkewUs(). Re-admission (`excluded = false`) lets the next resync
  /// rounds pull the returning clock back toward the ensemble.
  void setExcluded(std::size_t index, bool excluded);
  [[nodiscard]] bool excluded(std::size_t index) const { return excluded_.at(index); }

  /// Starts the resynchronisation rounds.
  void start();

  /// Worst pairwise skew (microseconds) among NON-Byzantine clocks now.
  [[nodiscard]] double maxSkewUs() const;

  [[nodiscard]] const DriftingClock& clock(std::size_t index) const { return clocks_[index]; }
  [[nodiscard]] std::uint64_t roundsCompleted() const { return rounds_; }

 private:
  void resyncRound();

  sim::Simulator& simulator_;
  util::Duration interval_;
  int faultyTolerated_;
  std::vector<DriftingClock> clocks_;
  std::vector<std::function<double(double)>> byzantine_;
  std::vector<bool> excluded_;
  std::uint64_t rounds_ = 0;
  bool started_ = false;
};

}  // namespace nlft::net
