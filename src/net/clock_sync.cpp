#include "net/clock_sync.hpp"

#include <algorithm>
#include <stdexcept>

namespace nlft::net {

ClockSyncService::ClockSyncService(sim::Simulator& simulator, util::Duration resyncInterval,
                                   int faultyTolerated)
    : simulator_{simulator}, interval_{resyncInterval}, faultyTolerated_{faultyTolerated} {
  if (resyncInterval <= util::Duration{})
    throw std::invalid_argument("ClockSyncService: bad interval");
  if (faultyTolerated < 0) throw std::invalid_argument("ClockSyncService: bad k");
}

std::size_t ClockSyncService::addClock(DriftingClock clock) {
  if (started_) throw std::logic_error("ClockSyncService: addClock after start");
  clocks_.push_back(clock);
  byzantine_.emplace_back();
  excluded_.push_back(false);
  return clocks_.size() - 1;
}

void ClockSyncService::setByzantine(std::size_t index,
                                    std::function<double(double)> lie) {
  byzantine_.at(index) = std::move(lie);
}

void ClockSyncService::setExcluded(std::size_t index, bool excluded) {
  excluded_.at(index) = excluded;
}

void ClockSyncService::start() {
  if (started_) throw std::logic_error("ClockSyncService: already started");
  if (clocks_.size() < static_cast<std::size_t>(2 * faultyTolerated_ + 1))
    throw std::invalid_argument("ClockSyncService: need > 2k clocks");
  started_ = true;
  simulator_.scheduleAfter(interval_, [this] { resyncRound(); },
                           sim::EventPriority::Network);
}

void ClockSyncService::resyncRound() {
  const util::SimTime now = simulator_.now();

  // Broadcast phase: every member's (possibly lying) reading. Expelled
  // nodes do not broadcast — their slots are simply missing.
  std::vector<double> broadcast(clocks_.size());
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (excluded_[i]) continue;
    const double honest = clocks_[i].readAt(now);
    broadcast[i] = byzantine_[i] ? byzantine_[i](honest) : honest;
  }

  // Correction phase: each honest member applies the fault-tolerant average
  // of the differences to its own clock. Expelled nodes free-run.
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (byzantine_[i] || excluded_[i]) continue;
    const double own = clocks_[i].readAt(now);
    std::vector<double> differences;
    differences.reserve(clocks_.size());
    for (std::size_t j = 0; j < clocks_.size(); ++j) {
      if (excluded_[j]) continue;
      differences.push_back(broadcast[j] - own);  // includes its own zero
    }
    std::sort(differences.begin(), differences.end());
    const std::size_t k = static_cast<std::size_t>(faultyTolerated_);
    if (differences.size() <= 2 * k) continue;  // too few members to average
    double sum = 0.0;
    for (std::size_t d = k; d < differences.size() - k; ++d) sum += differences[d];
    const double correction = sum / static_cast<double>(differences.size() - 2 * k);
    clocks_[i].adjust(correction);
  }

  ++rounds_;
  simulator_.scheduleAfter(interval_, [this] { resyncRound(); },
                           sim::EventPriority::Network);
}

double ClockSyncService::maxSkewUs() const {
  const util::SimTime now = simulator_.now();
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (byzantine_[i] || excluded_[i]) continue;
    const double reading = clocks_[i].readAt(now);
    if (first) {
      lo = hi = reading;
      first = false;
    } else {
      lo = std::min(lo, reading);
      hi = std::max(hi, reading);
    }
  }
  return hi - lo;
}

}  // namespace nlft::net
