#include "net/state_resync.hpp"

namespace nlft::net {

namespace {
constexpr std::uint32_t kStateRequestMagic = 0x53524551;   // "SREQ"
constexpr std::uint32_t kStateResponseMagic = 0x53525350;  // "SRSP"
}  // namespace

StateResyncService::StateResyncService(sim::Simulator& simulator, TdmaBus& bus,
                                       std::uint32_t requestPriority,
                                       std::uint32_t responsePriority)
    : simulator_{simulator},
      bus_{bus},
      requestPriority_{requestPriority},
      responsePriority_{responsePriority} {}

void StateResyncService::addNode(NodeId node, ProviderFn provider) {
  nodes_[node].provider = std::move(provider);
  bus_.attach(node, [this, node](const Frame& frame) { onFrame(node, frame); });
}

void StateResyncService::setRecoveredHandler(NodeId node, RecoveredFn handler) {
  nodes_.at(node).recovered = std::move(handler);
}

void StateResyncService::requestState(NodeId node, StateId32 stateId) {
  NodeState& state = nodes_.at(node);
  state.outstanding[stateId] = simulator_.now();
  ++requestsSent_;
  bus_.sendDynamic(node, requestPriority_, {kStateRequestMagic, stateId});
}

void StateResyncService::onFrame(NodeId receiver, const Frame& frame) {
  if (frame.payload.size() < 2) return;
  NodeState& state = nodes_.at(receiver);

  if (frame.payload[0] == kStateRequestMagic) {
    // Answer if this node holds the requested state.
    if (!state.provider) return;
    const StateId32 stateId = frame.payload[1];
    if (const auto data = state.provider(stateId)) {
      std::vector<std::uint32_t> payload{kStateResponseMagic, stateId,
                                         frame.sender /* requester */};
      payload.insert(payload.end(), data->begin(), data->end());
      ++responsesSent_;
      bus_.sendDynamic(receiver, responsePriority_, std::move(payload));
    }
    return;
  }

  if (frame.payload[0] == kStateResponseMagic && frame.payload.size() >= 3) {
    const StateId32 stateId = frame.payload[1];
    const NodeId requester = frame.payload[2];
    if (requester != receiver) return;  // addressed to someone else
    const auto outstanding = state.outstanding.find(stateId);
    if (outstanding == state.outstanding.end()) return;  // duplicate response
    const Duration latency = simulator_.now() - outstanding->second;
    state.outstanding.erase(outstanding);
    ++recoveries_;
    if (state.recovered) {
      const std::vector<std::uint32_t> data{frame.payload.begin() + 3, frame.payload.end()};
      state.recovered(stateId, data, latency);
    }
  }
}

}  // namespace nlft::net
