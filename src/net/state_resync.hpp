// State re-synchronisation over the event-triggered (dynamic) segment.
//
// The paper's future-work section singles out FlexRay's event-triggered part
// for "fast recovery of state data with low communication overhead through
// special requests to the partner node" after an omission failure. This
// service implements that protocol:
//
//   1. A node that lost state (omission recovery, restart) broadcasts a
//      STATE_REQ frame in the dynamic segment (high priority).
//   2. Every peer holding a copy of that state answers with STATE_RESP in
//      the same or the next dynamic segment.
//   3. The requester adopts the first matching response and reports the
//      measured recovery latency.
//
// The protocol is generic over a 32-bit-word state snapshot keyed by a
// state id (e.g. one id per replicated task).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/bus.hpp"

namespace nlft::net {

using StateId32 = std::uint32_t;

class StateResyncService {
 public:
  /// `requestPriority` / `responsePriority` are dynamic-segment priorities
  /// (lower transmits first; responses default just after requests).
  StateResyncService(sim::Simulator& simulator, TdmaBus& bus,
                     std::uint32_t requestPriority = 0, std::uint32_t responsePriority = 1);

  /// Registers a node. `provider(stateId)` returns the node's copy of a
  /// state (nullopt if it does not hold it).
  using ProviderFn = std::function<std::optional<std::vector<std::uint32_t>>(StateId32)>;
  void addNode(NodeId node, ProviderFn provider);

  /// Called on the requester when a response arrives:
  /// (stateId, data, latency since request).
  using RecoveredFn =
      std::function<void(StateId32, const std::vector<std::uint32_t>&, Duration)>;
  void setRecoveredHandler(NodeId node, RecoveredFn handler);

  /// Broadcasts a state request from `node`.
  void requestState(NodeId node, StateId32 stateId);

  [[nodiscard]] std::uint64_t requestsSent() const { return requestsSent_; }
  [[nodiscard]] std::uint64_t responsesSent() const { return responsesSent_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

 private:
  struct NodeState {
    ProviderFn provider;
    RecoveredFn recovered;
    std::map<StateId32, SimTime> outstanding;  ///< stateId -> request time
  };

  void onFrame(NodeId receiver, const Frame& frame);

  sim::Simulator& simulator_;
  TdmaBus& bus_;
  std::uint32_t requestPriority_;
  std::uint32_t responsePriority_;
  std::map<NodeId, NodeState> nodes_;
  std::uint64_t requestsSent_ = 0;
  std::uint64_t responsesSent_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace nlft::net
