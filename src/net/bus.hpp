// Time-triggered broadcast bus with FlexRay-style communication cycles
// (paper Section 2.1: "time-triggered ... or even more preferable, a mix of
// event- and time-triggered communication (such as provided by the FlexRay
// protocol)").
//
// A communication cycle (round) consists of:
//   * a static segment: one slot per entry in the static schedule, each
//     owned by one node (time-triggered; used for all critical messages);
//   * a dynamic segment: minislot arbitration by frame priority (event-
//     triggered; used for sporadic traffic such as diagnostics or state
//     re-synchronisation requests).
//
// Frames carry a CRC-16; the channel is assumed reliable by the paper, but
// corruption can be injected to exercise receiver-side end-to-end checks
// (corrupted frames are dropped and counted, never delivered).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace nlft::net {

using util::Duration;
using util::SimTime;

using NodeId = std::uint32_t;

struct Frame {
  NodeId sender = 0;
  std::uint32_t slot = 0;      ///< static slot index, or ~0u for dynamic frames
  std::uint32_t priority = 0;  ///< dynamic frames: lower value wins arbitration
  std::vector<std::uint32_t> payload;
  std::uint16_t crc = 0;  ///< frame check sequence, stamped at transmission
};

/// CRC-16-CCITT over the payload words (little-endian byte order) — the
/// frame check sequence every transmitted frame carries. The generator
/// polynomial 0x1021 has Hamming distance 4 over these frame sizes, so ANY
/// 1-, 2- or 3-bit corruption is guaranteed to be caught at the receiver.
[[nodiscard]] std::uint16_t frameCrc(const std::vector<std::uint32_t>& payload);

/// Flips one bit of a frame in transit. The bit index space covers the
/// payload first (32 bits per word, little-endian) and then the 16 CRC
/// bits; indices wrap modulo the frame length.
void flipFrameBit(Frame& frame, std::uint32_t bitIndex);

struct TdmaConfig {
  Duration slotLength = Duration::milliseconds(1);
  std::vector<NodeId> staticSchedule;  ///< slot index -> owning node
  std::uint32_t dynamicMinislots = 0;  ///< minislots per cycle (0 = none)
  Duration minislotLength = Duration::microseconds(100);
};

class TdmaBus {
 public:
  using ReceiveFn = std::function<void(const Frame&)>;

  TdmaBus(sim::Simulator& simulator, TdmaConfig config);

  /// Registers a receiver; every delivered frame (except the node's own) is
  /// passed to `receive`.
  void attach(NodeId node, ReceiveFn receive);

  /// Queues the payload for the node's NEXT static slot. One frame per slot;
  /// a newer message replaces a pending one (freshest-value semantics, as in
  /// state message protocols).
  void sendStatic(NodeId node, std::vector<std::uint32_t> payload);

  /// Queues an event-triggered frame for the dynamic segment. Lower priority
  /// value transmits first. Frames that do not fit wait for the next cycle.
  void sendDynamic(NodeId node, std::uint32_t priority, std::vector<std::uint32_t> payload);

  /// Starts the first communication cycle at the current simulated time.
  void start();

  /// Marks a node as silent: its static slots stay empty and its dynamic
  /// frames are discarded (fail-silent failure, or node powered down).
  void setNodeSilent(NodeId node, bool silent);
  [[nodiscard]] bool nodeSilent(NodeId node) const;

  /// Fault injection: the next transmitted frame of `node` is corrupted in
  /// transit (one bit flip; the receivers' CRC check drops the frame).
  void corruptNextFrame(NodeId node);

  /// Fault injection with explicit fault locations: flips the given bits of
  /// the node's next transmitted frame (payload bits first, then the 16 CRC
  /// bits; indices wrap modulo the frame length). Receivers verify the CRC
  /// and drop the frame on mismatch — with 1..3 flipped bits the CRC-16
  /// catches the corruption with certainty (Hamming distance 4).
  void corruptNextFrame(NodeId node, std::vector<std::uint32_t> flipBits);

  /// Observer for dropped frames: (frame, reason) with reason "crc" (failed
  /// frame check) or "collision" (destroyed by a babbling transmission).
  using DropTap = std::function<void(const Frame&, const char* reason)>;
  void setDropTap(DropTap tap) { dropTap_ = std::move(tap); }

  /// Fault injection: `node` becomes a babbling idiot — it transmits in
  /// EVERY static slot. Without a bus guardian, its babble collides with
  /// the slot owner's frame and destroys it (both are dropped); with the
  /// guardian enabled, out-of-slot transmissions are blocked at the node's
  /// bus interface and only counted.
  void setBabbling(NodeId node, bool babbling);

  /// Enables the bus guardian (per-slot transmission windows enforced in
  /// hardware, as in TTP/FlexRay star couplers / local guardians).
  void setBusGuardianEnabled(bool enabled) { guardian_ = enabled; }
  [[nodiscard]] bool busGuardianEnabled() const { return guardian_; }

  [[nodiscard]] std::uint64_t babbleCollisions() const { return babbleCollisions_; }
  [[nodiscard]] std::uint64_t babbleBlocked() const { return babbleBlocked_; }

  [[nodiscard]] Duration cycleLength() const;
  [[nodiscard]] std::uint64_t cyclesCompleted() const { return cycles_; }
  [[nodiscard]] std::uint64_t framesDelivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t framesDropped() const { return dropped_; }
  /// Frames that had injected corruption applied in transit.
  [[nodiscard]] std::uint64_t corruptionsInjected() const { return corruptionsInjected_; }
  /// Frames dropped because the receiver-side CRC check failed.
  [[nodiscard]] std::uint64_t crcRejected() const { return crcRejected_; }

  [[nodiscard]] const TdmaConfig& config() const { return config_; }

  /// True while any injected disturbance is still armed: a pending
  /// corruptNextFrame that no transmission has consumed yet, or an active
  /// babbling idiot. The snapshot campaign engine refuses to splice a
  /// faulted run back onto the golden timeline until this returns false.
  [[nodiscard]] bool injectionArmed() const;

  /// 64-bit digest of the EVOLUTION-RELEVANT bus state: queued static
  /// payloads, pending dynamic frames, silenced nodes, armed corruptions and
  /// active babblers. Monotone delivery counters are excluded, and so are
  /// map entries that no longer carry state (a node un-silenced via
  /// setNodeSilent(node, false) leaves a `false` entry behind that must not
  /// perturb the digest). Two buses with equal digests queue and deliver the
  /// same frames from here on.
  [[nodiscard]] std::uint64_t stateDigest() const;

 private:
  struct Attached {
    NodeId node;
    ReceiveFn receive;
  };

  void runStaticSlot(std::uint32_t slot);
  void runDynamicSegment();
  void deliver(Frame frame, std::vector<std::uint32_t> flipBits);
  void scheduleNextCycle();
  /// Consumes the pending corruption for `node` (empty = none pending).
  std::vector<std::uint32_t> takeCorruption(NodeId node);

  sim::Simulator& simulator_;
  TdmaConfig config_;
  std::vector<Attached> attached_;
  std::map<NodeId, std::vector<std::uint32_t>> pendingStatic_;
  std::deque<Frame> pendingDynamic_;
  std::map<NodeId, bool> silent_;
  std::map<NodeId, std::vector<std::uint32_t>> corruptNext_;
  std::map<NodeId, bool> babbling_;
  DropTap dropTap_;
  bool guardian_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corruptionsInjected_ = 0;
  std::uint64_t crcRejected_ = 0;
  std::uint64_t babbleCollisions_ = 0;
  std::uint64_t babbleBlocked_ = 0;
  bool started_ = false;
};

}  // namespace nlft::net
