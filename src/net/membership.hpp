// Membership and reintegration on top of the TDMA bus.
//
// Every alive node broadcasts a heartbeat in its static slot each cycle.
// Each node maintains a local membership view: a peer is a member while its
// heartbeats keep arriving; it is expelled after `missTolerance` consecutive
// silent cycles; and after coming back it is re-admitted only after
// `reintegrationCycles` consecutive heartbeats (the node must prove itself
// stable before it may carry load again). The restart/reintegration times
// behind the paper's repair rates mu_R (3 s) and mu_OM (1.6 s) are exactly
// these protocol latencies plus the local reboot/diagnosis time.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/bus.hpp"

namespace nlft::net {

struct MembershipConfig {
  std::uint32_t missTolerance = 1;        ///< silent cycles before expulsion
  std::uint32_t reintegrationCycles = 2;  ///< heartbeats needed to rejoin
};

/// Runs the heartbeat protocol for a set of nodes sharing one bus.
///
/// Heartbeat payloads use one reserved word prepended to application data in
/// the node's slot; this service owns the slot traffic of its nodes (it
/// forwards any application payload given via queueAppData).
class MembershipService {
 public:
  MembershipService(sim::Simulator& simulator, TdmaBus& bus, MembershipConfig config = {});

  /// Registers a node; `alive` nodes heartbeat from the next cycle on.
  void addNode(NodeId node, bool alive = true);

  /// Node liveness toggles: a fail-silent failure sets alive=false; a
  /// completed restart sets alive=true (reintegration then takes
  /// reintegrationCycles before peers re-admit the node).
  void setAlive(NodeId node, bool alive);
  [[nodiscard]] bool alive(NodeId node) const;

  /// Queues application data to ride along the node's next heartbeat.
  void queueAppData(NodeId node, std::vector<std::uint32_t> data);

  /// Membership view of `observer`: which peers it currently counts as
  /// members (the observer itself is always included while alive).
  [[nodiscard]] std::set<NodeId> membershipView(NodeId observer) const;

  /// True if `observer` counts `peer` as a member.
  [[nodiscard]] bool isMember(NodeId observer, NodeId peer) const;

  /// Application receive hook: called with (receiver, sender, data) for
  /// every heartbeat frame carrying application data.
  using AppReceiveFn = std::function<void(NodeId, NodeId, const std::vector<std::uint32_t>&)>;
  void setAppReceive(AppReceiveFn fn) { appReceive_ = std::move(fn); }

  /// Observer for membership transitions: (observer, peer, nowMember) fires
  /// whenever `observer` expels or re-admits `peer` from its local view.
  using MembershipTap = std::function<void(NodeId, NodeId, bool)>;
  void setMembershipTap(MembershipTap tap) { membershipTap_ = std::move(tap); }

  /// Must be called once after all nodes are added; also starts the bus.
  void start();

  /// 64-bit digest of the full protocol state: per-node liveness, queued
  /// application data and every peer-view entry (membership, consecutive
  /// heard/missed streaks, last-heard cycle). Two services with equal
  /// digests make the same expulsion/re-admission decisions from here on.
  [[nodiscard]] std::uint64_t stateDigest() const;

 private:
  struct PeerState {
    bool member = false;
    std::uint32_t consecutiveHeard = 0;
    std::uint32_t consecutiveMissed = 0;
    std::uint64_t lastHeardCycle = ~0ULL;
  };
  struct NodeState {
    bool alive = true;
    std::vector<std::uint32_t> pendingAppData;
    std::map<NodeId, PeerState> peers;
  };

  void onCycle();
  void onFrame(NodeId receiver, const Frame& frame);

  sim::Simulator& simulator_;
  TdmaBus& bus_;
  MembershipConfig config_;
  std::map<NodeId, NodeState> nodes_;
  AppReceiveFn appReceive_;
  MembershipTap membershipTap_;
  bool started_ = false;
};

}  // namespace nlft::net
