#include "net/membership.hpp"

#include <stdexcept>

#include "util/state_hash.hpp"

namespace nlft::net {

namespace {
constexpr std::uint32_t kHeartbeatMagic = 0x48427631;  // "HBv1"
}

MembershipService::MembershipService(sim::Simulator& simulator, TdmaBus& bus,
                                     MembershipConfig config)
    : simulator_{simulator}, bus_{bus}, config_{config} {
  if (config_.reintegrationCycles == 0)
    throw std::invalid_argument("MembershipService: reintegrationCycles must be >= 1");
}

void MembershipService::addNode(NodeId node, bool alive) {
  if (started_) throw std::logic_error("MembershipService: addNode after start");
  NodeState state;
  state.alive = alive;
  nodes_[node] = std::move(state);
  // Everyone already registered learns about the new node and vice versa;
  // initially-alive nodes are members of each other's view (static config).
  for (auto& [id, other] : nodes_) {
    if (id == node) continue;
    other.peers[node].member = alive;
    nodes_[node].peers[id].member = other.alive;
  }
  bus_.setNodeSilent(node, !alive);
}

void MembershipService::setAlive(NodeId node, bool alive) {
  auto& state = nodes_.at(node);
  if (state.alive == alive) return;
  state.alive = alive;
  bus_.setNodeSilent(node, !alive);
  if (alive) {
    // Fresh restart: the node's own view of its peers rebuilds from traffic.
    for (auto& [id, peer] : state.peers) {
      peer.member = false;
      peer.consecutiveHeard = 0;
      peer.consecutiveMissed = 0;
    }
  }
}

bool MembershipService::alive(NodeId node) const { return nodes_.at(node).alive; }

void MembershipService::queueAppData(NodeId node, std::vector<std::uint32_t> data) {
  nodes_.at(node).pendingAppData = std::move(data);
}

std::set<NodeId> MembershipService::membershipView(NodeId observer) const {
  const NodeState& state = nodes_.at(observer);
  std::set<NodeId> view;
  if (!state.alive) return view;  // a down node has no view at all
  view.insert(observer);
  for (const auto& [id, peer] : state.peers) {
    if (peer.member) view.insert(id);
  }
  return view;
}

bool MembershipService::isMember(NodeId observer, NodeId peer) const {
  if (observer == peer) return nodes_.at(observer).alive;
  return nodes_.at(observer).peers.at(peer).member;
}

void MembershipService::start() {
  if (started_) throw std::logic_error("MembershipService: already started");
  started_ = true;
  for (auto& [id, state] : nodes_) {
    bus_.attach(id, [this, id = id](const Frame& frame) { onFrame(id, frame); });
  }
  onCycle();  // queue the first heartbeats
  bus_.start();
  // Evaluate and re-queue at every cycle boundary, with a self-rescheduling
  // tick. The tick runs at Application priority, i.e. before the bus's own
  // cycle-advance event at the same instant, so cyclesCompleted() still
  // names the cycle that just ended.
  const Duration cycle = bus_.cycleLength();
  struct Ticker {
    MembershipService* service;
    Duration cycle;
    void operator()() const {
      service->onCycle();
      service->simulator_.scheduleAfter(cycle, *this, sim::EventPriority::Application);
    }
  };
  simulator_.scheduleAfter(cycle, Ticker{this, cycle}, sim::EventPriority::Application);
}

std::uint64_t MembershipService::stateDigest() const {
  util::StateHash digest;
  for (const auto& [id, state] : nodes_) {
    digest.u64(id);
    digest.boolean(state.alive);
    digest.u64(state.pendingAppData.size());
    for (const std::uint32_t word : state.pendingAppData) digest.u64(word);
    for (const auto& [peerId, peer] : state.peers) {
      digest.u64(peerId);
      digest.boolean(peer.member);
      digest.u64(peer.consecutiveHeard);
      digest.u64(peer.consecutiveMissed);
      digest.u64(peer.lastHeardCycle);
    }
  }
  return digest.finish();
}

void MembershipService::onCycle() {
  // Evaluate the cycle that just ended (skipped on the very first call,
  // where no lastHeardCycle can match the sentinel).
  const std::uint64_t endedCycle = bus_.cyclesCompleted();
  if (simulator_.now() > SimTime::zero()) {
    for (auto& [observerId, observer] : nodes_) {
      if (!observer.alive) continue;
      for (auto& [peerId, peer] : observer.peers) {
        const bool heard = peer.lastHeardCycle == endedCycle;
        if (heard) {
          peer.consecutiveMissed = 0;
          ++peer.consecutiveHeard;
          if (!peer.member && peer.consecutiveHeard >= config_.reintegrationCycles) {
            peer.member = true;
            if (membershipTap_) membershipTap_(observerId, peerId, true);
          }
        } else {
          peer.consecutiveHeard = 0;
          ++peer.consecutiveMissed;
          if (peer.member && peer.consecutiveMissed >= config_.missTolerance) {
            peer.member = false;
            if (membershipTap_) membershipTap_(observerId, peerId, false);
          }
        }
      }
    }
  }
  // Queue heartbeats (with piggybacked application data) for the new cycle.
  for (auto& [id, state] : nodes_) {
    if (!state.alive) continue;
    std::vector<std::uint32_t> payload;
    payload.reserve(1 + state.pendingAppData.size());
    payload.push_back(kHeartbeatMagic);
    payload.insert(payload.end(), state.pendingAppData.begin(), state.pendingAppData.end());
    state.pendingAppData.clear();
    bus_.sendStatic(id, std::move(payload));
  }
}

void MembershipService::onFrame(NodeId receiver, const Frame& frame) {
  if (frame.payload.empty() || frame.payload[0] != kHeartbeatMagic) return;
  NodeState& state = nodes_.at(receiver);
  if (!state.alive) return;  // a down node hears nothing
  auto peerIt = state.peers.find(frame.sender);
  if (peerIt == state.peers.end()) return;
  peerIt->second.lastHeardCycle = bus_.cyclesCompleted();
  if (appReceive_ && frame.payload.size() > 1) {
    const std::vector<std::uint32_t> data{frame.payload.begin() + 1, frame.payload.end()};
    appReceive_(receiver, frame.sender, data);
  }
}

}  // namespace nlft::net
