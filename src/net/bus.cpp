#include "net/bus.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/crc.hpp"
#include "util/state_hash.hpp"

namespace nlft::net {

std::uint16_t frameCrc(const std::vector<std::uint32_t>& payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(payload.size() * 4);
  for (const std::uint32_t word : payload) {
    bytes.push_back(static_cast<std::uint8_t>(word));
    bytes.push_back(static_cast<std::uint8_t>(word >> 8));
    bytes.push_back(static_cast<std::uint8_t>(word >> 16));
    bytes.push_back(static_cast<std::uint8_t>(word >> 24));
  }
  return util::crc16Ccitt(bytes);
}

void flipFrameBit(Frame& frame, std::uint32_t bitIndex) {
  const std::uint32_t payloadBits = static_cast<std::uint32_t>(frame.payload.size()) * 32;
  const std::uint32_t totalBits = payloadBits + 16;
  bitIndex %= totalBits;
  if (bitIndex < payloadBits) {
    frame.payload[bitIndex / 32] ^= 1u << (bitIndex % 32);
  } else {
    frame.crc = static_cast<std::uint16_t>(frame.crc ^ (1u << (bitIndex - payloadBits)));
  }
}

TdmaBus::TdmaBus(sim::Simulator& simulator, TdmaConfig config)
    : simulator_{simulator}, config_{std::move(config)} {
  if (config_.staticSchedule.empty()) throw std::invalid_argument("TdmaBus: empty schedule");
  if (config_.slotLength <= Duration{}) throw std::invalid_argument("TdmaBus: bad slot length");
}

Duration TdmaBus::cycleLength() const {
  return config_.slotLength * static_cast<std::int64_t>(config_.staticSchedule.size()) +
         config_.minislotLength * static_cast<std::int64_t>(config_.dynamicMinislots);
}

void TdmaBus::attach(NodeId node, ReceiveFn receive) {
  attached_.push_back({node, std::move(receive)});
}

void TdmaBus::sendStatic(NodeId node, std::vector<std::uint32_t> payload) {
  pendingStatic_[node] = std::move(payload);
}

void TdmaBus::sendDynamic(NodeId node, std::uint32_t priority, std::vector<std::uint32_t> payload) {
  Frame frame;
  frame.sender = node;
  frame.slot = ~0u;
  frame.priority = priority;
  frame.payload = std::move(payload);
  pendingDynamic_.push_back(std::move(frame));
}

void TdmaBus::setNodeSilent(NodeId node, bool silent) { silent_[node] = silent; }

bool TdmaBus::nodeSilent(NodeId node) const {
  const auto it = silent_.find(node);
  return it != silent_.end() && it->second;
}

void TdmaBus::corruptNextFrame(NodeId node) { corruptNext_[node] = {0}; }

void TdmaBus::corruptNextFrame(NodeId node, std::vector<std::uint32_t> flipBits) {
  if (flipBits.empty()) flipBits.push_back(0);
  corruptNext_[node] = std::move(flipBits);
}

std::vector<std::uint32_t> TdmaBus::takeCorruption(NodeId node) {
  const auto it = corruptNext_.find(node);
  if (it == corruptNext_.end()) return {};
  std::vector<std::uint32_t> bits = std::move(it->second);
  corruptNext_.erase(it);
  return bits;
}

void TdmaBus::setBabbling(NodeId node, bool babbling) { babbling_[node] = babbling; }

bool TdmaBus::injectionArmed() const {
  for (const auto& entry : corruptNext_) {
    if (!entry.second.empty()) return true;
  }
  for (const auto& entry : babbling_) {
    if (entry.second) return true;
  }
  return false;
}

std::uint64_t TdmaBus::stateDigest() const {
  util::StateHash digest;
  for (const auto& [node, payload] : pendingStatic_) {
    digest.u64(node);
    digest.u64(payload.size());
    for (const std::uint32_t word : payload) digest.u64(word);
  }
  for (const Frame& frame : pendingDynamic_) {
    digest.u64(frame.sender);
    digest.u64(frame.priority);
    digest.u64(frame.payload.size());
    for (const std::uint32_t word : frame.payload) digest.u64(word);
  }
  for (const auto& [node, silent] : silent_) {
    if (silent) digest.u64(node);
  }
  for (const auto& [node, bits] : corruptNext_) {
    if (bits.empty()) continue;
    digest.u64(node);
    for (const std::uint32_t bit : bits) digest.u64(bit);
  }
  for (const auto& [node, active] : babbling_) {
    if (active) digest.u64(node);
  }
  digest.boolean(guardian_);
  return digest.finish();
}

void TdmaBus::start() {
  if (started_) throw std::logic_error("TdmaBus: already started");
  started_ = true;
  scheduleNextCycle();
}

void TdmaBus::scheduleNextCycle() {
  // Schedule every slot boundary of the upcoming cycle. Frames are delivered
  // at the END of their slot (transmission complete).
  const SimTime cycleStart = simulator_.now();
  for (std::uint32_t slot = 0; slot < config_.staticSchedule.size(); ++slot) {
    const SimTime slotEnd = cycleStart + config_.slotLength * static_cast<std::int64_t>(slot + 1);
    simulator_.scheduleAt(slotEnd, [this, slot] { runStaticSlot(slot); },
                          sim::EventPriority::Network);
  }
  const SimTime staticEnd =
      cycleStart + config_.slotLength * static_cast<std::int64_t>(config_.staticSchedule.size());
  const SimTime cycleEnd = cycleStart + cycleLength();
  if (config_.dynamicMinislots > 0) {
    // Arbitration happens when the static segment closes; each winning frame
    // is delivered at the end of its minislot.
    simulator_.scheduleAt(staticEnd, [this] { runDynamicSegment(); },
                          sim::EventPriority::Network);
  }
  simulator_.scheduleAt(cycleEnd,
                        [this] {
                          ++cycles_;
                          scheduleNextCycle();
                        },
                        sim::EventPriority::Observer);
}

void TdmaBus::runStaticSlot(std::uint32_t slot) {
  const NodeId owner = config_.staticSchedule[slot];

  // Babbling-idiot handling: a faulty node transmitting outside its slot
  // either collides with the owner's frame (no guardian) or is blocked at
  // its own bus interface (guardian enabled).
  bool collision = false;
  for (const auto& [babbler, active] : babbling_) {
    if (!active || babbler == owner || nodeSilent(babbler)) continue;
    if (guardian_) {
      ++babbleBlocked_;
    } else {
      collision = true;
      ++babbleCollisions_;
    }
  }

  if (nodeSilent(owner)) return;
  const auto it = pendingStatic_.find(owner);
  if (it == pendingStatic_.end()) return;
  if (collision) {
    // The owner's frame is destroyed by the overlapping transmission;
    // receivers see garbage and their CRC check drops it.
    Frame destroyed;
    destroyed.sender = owner;
    destroyed.slot = slot;
    destroyed.payload = std::move(it->second);
    pendingStatic_.erase(it);
    ++dropped_;
    if (dropTap_) dropTap_(destroyed, "collision");
    return;
  }
  Frame frame;
  frame.sender = owner;
  frame.slot = slot;
  frame.payload = std::move(it->second);
  pendingStatic_.erase(it);
  deliver(std::move(frame), takeCorruption(owner));
}

void TdmaBus::runDynamicSegment() {
  // Minislot arbitration: pending frames transmit in priority order; each
  // consumes one minislot. Frames beyond the segment capacity wait.
  std::stable_sort(pendingDynamic_.begin(), pendingDynamic_.end(),
                   [](const Frame& a, const Frame& b) { return a.priority < b.priority; });
  std::uint32_t used = 0;
  std::deque<Frame> keep;
  while (!pendingDynamic_.empty()) {
    Frame frame = std::move(pendingDynamic_.front());
    pendingDynamic_.pop_front();
    if (nodeSilent(frame.sender)) continue;  // silent nodes transmit nothing
    if (used >= config_.dynamicMinislots) {
      keep.push_back(std::move(frame));
      continue;
    }
    ++used;
    std::vector<std::uint32_t> flipBits = takeCorruption(frame.sender);
    simulator_.scheduleAfter(config_.minislotLength * static_cast<std::int64_t>(used),
                             [this, frame = std::move(frame),
                              flipBits = std::move(flipBits)]() mutable {
                               deliver(std::move(frame), std::move(flipBits));
                             },
                             sim::EventPriority::Network);
  }
  pendingDynamic_ = std::move(keep);
}

void TdmaBus::deliver(Frame frame, std::vector<std::uint32_t> flipBits) {
  // Transmission stamps the frame check sequence; injected corruption then
  // strikes the frame in transit (after the CRC is computed, as on a real
  // bus). Every receiver recomputes the CRC and drops the frame on mismatch
  // — and since all receivers see the same bits, they drop it consistently
  // (the atomic broadcast property of TDMA buses).
  frame.crc = frameCrc(frame.payload);
  if (!flipBits.empty()) {
    ++corruptionsInjected_;
    for (const std::uint32_t bit : flipBits) flipFrameBit(frame, bit);
  }
  if (frameCrc(frame.payload) != frame.crc) {
    ++dropped_;
    ++crcRejected_;
    if (dropTap_) dropTap_(frame, "crc");
    return;
  }
  ++delivered_;
  for (const Attached& attached : attached_) {
    if (attached.node == frame.sender) continue;
    attached.receive(frame);
  }
}

}  // namespace nlft::net
