#include "net/bus.hpp"

#include <algorithm>
#include <stdexcept>

namespace nlft::net {

TdmaBus::TdmaBus(sim::Simulator& simulator, TdmaConfig config)
    : simulator_{simulator}, config_{std::move(config)} {
  if (config_.staticSchedule.empty()) throw std::invalid_argument("TdmaBus: empty schedule");
  if (config_.slotLength <= Duration{}) throw std::invalid_argument("TdmaBus: bad slot length");
}

Duration TdmaBus::cycleLength() const {
  return config_.slotLength * static_cast<std::int64_t>(config_.staticSchedule.size()) +
         config_.minislotLength * static_cast<std::int64_t>(config_.dynamicMinislots);
}

void TdmaBus::attach(NodeId node, ReceiveFn receive) {
  attached_.push_back({node, std::move(receive)});
}

void TdmaBus::sendStatic(NodeId node, std::vector<std::uint32_t> payload) {
  pendingStatic_[node] = std::move(payload);
}

void TdmaBus::sendDynamic(NodeId node, std::uint32_t priority, std::vector<std::uint32_t> payload) {
  Frame frame;
  frame.sender = node;
  frame.slot = ~0u;
  frame.priority = priority;
  frame.payload = std::move(payload);
  pendingDynamic_.push_back(std::move(frame));
}

void TdmaBus::setNodeSilent(NodeId node, bool silent) { silent_[node] = silent; }

bool TdmaBus::nodeSilent(NodeId node) const {
  const auto it = silent_.find(node);
  return it != silent_.end() && it->second;
}

void TdmaBus::corruptNextFrame(NodeId node) { corruptNext_[node] = true; }

void TdmaBus::setBabbling(NodeId node, bool babbling) { babbling_[node] = babbling; }

void TdmaBus::start() {
  if (started_) throw std::logic_error("TdmaBus: already started");
  started_ = true;
  scheduleNextCycle();
}

void TdmaBus::scheduleNextCycle() {
  // Schedule every slot boundary of the upcoming cycle. Frames are delivered
  // at the END of their slot (transmission complete).
  const SimTime cycleStart = simulator_.now();
  for (std::uint32_t slot = 0; slot < config_.staticSchedule.size(); ++slot) {
    const SimTime slotEnd = cycleStart + config_.slotLength * static_cast<std::int64_t>(slot + 1);
    simulator_.scheduleAt(slotEnd, [this, slot] { runStaticSlot(slot); },
                          sim::EventPriority::Network);
  }
  const SimTime staticEnd =
      cycleStart + config_.slotLength * static_cast<std::int64_t>(config_.staticSchedule.size());
  const SimTime cycleEnd = cycleStart + cycleLength();
  if (config_.dynamicMinislots > 0) {
    // Arbitration happens when the static segment closes; each winning frame
    // is delivered at the end of its minislot.
    simulator_.scheduleAt(staticEnd, [this] { runDynamicSegment(); },
                          sim::EventPriority::Network);
  }
  simulator_.scheduleAt(cycleEnd,
                        [this] {
                          ++cycles_;
                          scheduleNextCycle();
                        },
                        sim::EventPriority::Observer);
}

void TdmaBus::runStaticSlot(std::uint32_t slot) {
  const NodeId owner = config_.staticSchedule[slot];

  // Babbling-idiot handling: a faulty node transmitting outside its slot
  // either collides with the owner's frame (no guardian) or is blocked at
  // its own bus interface (guardian enabled).
  bool collision = false;
  for (const auto& [babbler, active] : babbling_) {
    if (!active || babbler == owner || nodeSilent(babbler)) continue;
    if (guardian_) {
      ++babbleBlocked_;
    } else {
      collision = true;
      ++babbleCollisions_;
    }
  }

  if (nodeSilent(owner)) return;
  const auto it = pendingStatic_.find(owner);
  if (it == pendingStatic_.end()) return;
  if (collision) {
    // The owner's frame is destroyed by the overlapping transmission;
    // receivers see garbage and their CRC check drops it.
    pendingStatic_.erase(it);
    ++dropped_;
    return;
  }
  Frame frame;
  frame.sender = owner;
  frame.slot = slot;
  frame.payload = std::move(it->second);
  pendingStatic_.erase(it);
  bool corrupted = false;
  if (auto corrupt = corruptNext_.find(owner); corrupt != corruptNext_.end() && corrupt->second) {
    corrupt->second = false;
    corrupted = true;
  }
  deliver(std::move(frame), corrupted);
}

void TdmaBus::runDynamicSegment() {
  // Minislot arbitration: pending frames transmit in priority order; each
  // consumes one minislot. Frames beyond the segment capacity wait.
  std::stable_sort(pendingDynamic_.begin(), pendingDynamic_.end(),
                   [](const Frame& a, const Frame& b) { return a.priority < b.priority; });
  std::uint32_t used = 0;
  std::deque<Frame> keep;
  while (!pendingDynamic_.empty()) {
    Frame frame = std::move(pendingDynamic_.front());
    pendingDynamic_.pop_front();
    if (nodeSilent(frame.sender)) continue;  // silent nodes transmit nothing
    if (used >= config_.dynamicMinislots) {
      keep.push_back(std::move(frame));
      continue;
    }
    ++used;
    bool corrupted = false;
    if (auto corrupt = corruptNext_.find(frame.sender);
        corrupt != corruptNext_.end() && corrupt->second) {
      corrupt->second = false;
      corrupted = true;
    }
    simulator_.scheduleAfter(config_.minislotLength * static_cast<std::int64_t>(used),
                             [this, frame = std::move(frame), corrupted]() mutable {
                               deliver(std::move(frame), corrupted);
                             },
                             sim::EventPriority::Network);
  }
  pendingDynamic_ = std::move(keep);
}

void TdmaBus::deliver(Frame frame, bool corrupted) {
  // The CRC-16 protecting each frame catches any injected corruption; a
  // corrupted frame is dropped by every receiver (and therefore by all of
  // them consistently — an atomic broadcast property of TDMA buses).
  if (corrupted) {
    ++dropped_;
    return;
  }
  ++delivered_;
  for (const Attached& attached : attached_) {
    if (attached.node == frame.sender) continue;
    attached.receive(frame);
  }
}

}  // namespace nlft::net
