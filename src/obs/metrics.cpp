#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace nlft::obs {

namespace {

/// Renders a spec's bin edges for mismatch diagnostics: "[lo, hi) / N bins".
std::string describeSpec(const HistogramSpec& spec) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "[%g, %g) / %zu bins", spec.lo, spec.hi, spec.buckets);
  return buffer;
}

}  // namespace

bool isNonGoldenMetric(const std::string& name) {
  return name.rfind(kNonGoldenPrefix, 0) == 0;
}

Registry::Registry(const Registry& other) {
  std::scoped_lock lock{other.mutex_};
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
}

Registry& Registry::operator=(const Registry& other) {
  if (this == &other) return *this;
  std::scoped_lock lock{mutex_, other.mutex_};
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  return *this;
}

Registry::Registry(Registry&& other) noexcept {
  std::scoped_lock lock{other.mutex_};
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  histograms_ = std::move(other.histograms_);
}

Registry& Registry::operator=(Registry&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock{mutex_, other.mutex_};
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  histograms_ = std::move(other.histograms_);
  return *this;
}

void Registry::add(const std::string& name, std::uint64_t delta) {
  std::scoped_lock lock{mutex_};
  counters_[name] += delta;
}

void Registry::gaugeMax(const std::string& name, double value) {
  std::scoped_lock lock{mutex_};
  auto [it, inserted] = gauges_.try_emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

void Registry::observe(const std::string& name, const HistogramSpec& spec, double value) {
  if (spec.buckets == 0 || !(spec.lo < spec.hi)) {
    throw std::invalid_argument("Registry::observe: bad histogram spec for " + name);
  }
  std::scoped_lock lock{mutex_};
  auto [it, inserted] = histograms_.try_emplace(name);
  HistogramState& state = it->second;
  if (inserted) {
    state.spec = spec;
    state.counts.assign(spec.buckets, 0);
  } else if (!(state.spec == spec)) {
    throw std::invalid_argument("Registry::observe: histogram spec mismatch for " + name +
                                ": registered " + describeSpec(state.spec) + " vs observed " +
                                describeSpec(spec));
  }
  const double clamped = std::min(std::max(value, spec.lo), spec.hi);
  const double width = (spec.hi - spec.lo) / static_cast<double>(spec.buckets);
  std::size_t bucket = value < spec.lo
                           ? 0
                           : static_cast<std::size_t>((clamped - spec.lo) / width);
  bucket = std::min(bucket, spec.buckets - 1);
  ++state.counts[bucket];
  ++state.total;
}

std::uint64_t Registry::count(const std::string& name) const {
  std::scoped_lock lock{mutex_};
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  std::scoped_lock lock{mutex_};
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool Registry::hasCounter(const std::string& name) const {
  std::scoped_lock lock{mutex_};
  return counters_.count(name) != 0;
}

HistogramSnapshot Registry::histogram(const std::string& name) const {
  std::scoped_lock lock{mutex_};
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    throw std::invalid_argument("Registry::histogram: unknown histogram " + name);
  }
  return HistogramSnapshot{it->second.spec, it->second.counts, it->second.total};
}

namespace {
template <typename Map>
std::vector<std::string> keysOf(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, value] : map) names.push_back(name);
  return names;
}
}  // namespace

std::vector<std::string> Registry::counterNames() const {
  std::scoped_lock lock{mutex_};
  return keysOf(counters_);
}

std::vector<std::string> Registry::gaugeNames() const {
  std::scoped_lock lock{mutex_};
  return keysOf(gauges_);
}

std::vector<std::string> Registry::histogramNames() const {
  std::scoped_lock lock{mutex_};
  return keysOf(histograms_);
}

void Registry::merge(const Registry& other) {
  if (this == &other) throw std::invalid_argument("Registry::merge: self-merge");
  std::scoped_lock lock{mutex_, other.mutex_};
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) {
    auto [it, inserted] = gauges_.try_emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, theirs] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(name, theirs);
    if (inserted) continue;
    HistogramState& mine = it->second;
    if (!(mine.spec == theirs.spec)) {
      throw std::invalid_argument("Registry::merge: histogram spec mismatch for " + name +
                                  ": ours " + describeSpec(mine.spec) + " vs theirs " +
                                  describeSpec(theirs.spec));
    }
    for (std::size_t b = 0; b < mine.counts.size(); ++b) mine.counts[b] += theirs.counts[b];
    mine.total += theirs.total;
  }
}

void Registry::clear() {
  std::scoped_lock lock{mutex_};
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

JsonValue histogramJson(const HistogramSpec& spec, const std::vector<std::uint64_t>& counts,
                        std::uint64_t total) {
  JsonValue h = JsonValue::object();
  h.set("lo", JsonValue::number(spec.lo));
  h.set("hi", JsonValue::number(spec.hi));
  JsonValue bins = JsonValue::array();
  for (const std::uint64_t c : counts) bins.push(JsonValue::integer(static_cast<std::int64_t>(c)));
  h.set("counts", std::move(bins));
  h.set("total", JsonValue::integer(static_cast<std::int64_t>(total)));
  return h;
}

}  // namespace

JsonValue Registry::toJson() const {
  std::scoped_lock lock{mutex_};
  JsonValue root = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : counters_) {
    counters.set(name, JsonValue::integer(static_cast<std::int64_t>(value)));
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : gauges_) gauges.set(name, JsonValue::number(value));
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, state] : histograms_) {
    histograms.set(name, histogramJson(state.spec, state.counts, state.total));
  }
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

JsonValue Registry::goldenJson() const {
  std::scoped_lock lock{mutex_};
  JsonValue root = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : counters_) {
    if (isNonGoldenMetric(name)) continue;
    counters.set(name, JsonValue::integer(static_cast<std::int64_t>(value)));
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : gauges_) {
    if (!isNonGoldenMetric(name)) gauges.set(name, JsonValue::number(value));
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, state] : histograms_) {
    if (isNonGoldenMetric(name)) continue;
    histograms.set(name, histogramJson(state.spec, state.counts, state.total));
  }
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

std::string Registry::goldenFingerprint() const { return goldenJson().dump(); }

}  // namespace nlft::obs
