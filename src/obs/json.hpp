// Minimal deterministic JSON support for the observability layer.
//
// The writer side backs the metrics/run-report/Chrome-trace exporters: object
// keys are kept in sorted order (std::map) and doubles are printed with a
// fixed shortest-round-trip format, so serialising the same value twice
// yields byte-identical output — a prerequisite for the golden-export tests
// and tools/determinism_lint.sh.
//
// The parser side is used by tests to SCHEMA-CHECK what the exporters emit
// (valid Chrome trace_event JSON, reconcilable run reports) without taking a
// third-party dependency the container does not have.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nlft::obs {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes).
[[nodiscard]] std::string jsonEscape(const std::string& raw);

/// A JSON value. Numbers are stored as double plus an integer flag so that
/// counters round-trip exactly (no 1e+06 formatting for event counts).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;
  static JsonValue null() { return JsonValue{}; }
  static JsonValue boolean(bool b);
  static JsonValue integer(std::int64_t i);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::Int || kind_ == Kind::Double; }

  [[nodiscard]] bool asBool() const;
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] double asDouble() const;
  [[nodiscard]] const std::string& asString() const;

  /// Array access. push() appends; size()/at() read.
  void push(JsonValue value);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t index) const;

  /// Object access. set() inserts/overwrites; has()/get() read (get throws
  /// std::out_of_range for missing keys).
  void set(const std::string& key, JsonValue value);
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const JsonValue& get(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, JsonValue>& members() const;

  /// Serialises deterministically (sorted object keys, fixed number format).
  /// `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a JSON document; throws std::runtime_error with a byte offset on
/// malformed input. Accepts exactly one top-level value.
[[nodiscard]] JsonValue parseJson(const std::string& text);

}  // namespace nlft::obs
