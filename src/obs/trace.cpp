#include "obs/trace.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace nlft::obs {

void TraceRecorder::setProcessName(std::uint32_t pid, const std::string& name) {
  TraceEvent e;
  e.name = "process_name";
  e.phase = 'M';
  e.pid = pid;
  e.tid = 0;
  e.argKey = "name";
  e.argValue = name;
  events_.push_back(std::move(e));
}

void TraceRecorder::setThreadName(std::uint32_t pid, std::uint32_t tid, const std::string& name) {
  TraceEvent e;
  e.name = "thread_name";
  e.phase = 'M';
  e.pid = pid;
  e.tid = tid;
  e.argKey = "name";
  e.argValue = name;
  events_.push_back(std::move(e));
}

void TraceRecorder::instant(std::uint32_t pid, std::uint32_t tid, const std::string& name,
                            const std::string& category, util::SimTime at,
                            const std::string& detail) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.tsUs = at.us();
  e.pid = pid;
  e.tid = tid;
  if (!detail.empty()) {
    e.argKey = "detail";
    e.argValue = detail;
  }
  events_.push_back(std::move(e));
}

void TraceRecorder::complete(std::uint32_t pid, std::uint32_t tid, const std::string& name,
                             const std::string& category, util::SimTime start,
                             util::Duration duration) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'X';
  e.tsUs = start.us();
  e.durUs = duration.us();
  e.pid = pid;
  e.tid = tid;
  events_.push_back(std::move(e));
}

std::uint64_t TraceRecorder::countCategory(const std::string& category) const {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.phase != 'M' && e.category == category) ++n;
  }
  return n;
}

std::uint64_t TraceRecorder::countEvents(const std::string& category,
                                         const std::string& name) const {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.phase != 'M' && e.category == category && e.name == name) ++n;
  }
  return n;
}

std::string TraceRecorder::toJson() const {
  // Events are appended in recording order and emitted in that order; Chrome
  // and Perfetto sort by ts themselves, so no reordering is needed here and
  // the export stays a pure function of the recorded sequence.
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "\n  {\"name\": \"";
    out += jsonEscape(e.name);
    out += "\", \"ph\": \"";
    out += e.phase;
    out += "\", \"pid\": ";
    out += std::to_string(e.pid);
    out += ", \"tid\": ";
    out += std::to_string(e.tid);
    if (e.phase != 'M') {
      out += ", \"ts\": ";
      out += std::to_string(e.tsUs);
      out += ", \"cat\": \"";
      out += jsonEscape(e.category);
      out += '"';
      if (e.phase == 'X') {
        out += ", \"dur\": ";
        out += std::to_string(e.durUs);
      }
      if (e.phase == 'i') {
        out += ", \"s\": \"t\"";  // thread-scoped instant
      }
    }
    if (!e.argKey.empty()) {
      out += ", \"args\": {\"";
      out += jsonEscape(e.argKey);
      out += "\": \"";
      out += jsonEscape(e.argValue);
      out += "\"}";
    }
    out += '}';
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

void TraceRecorder::writeJson(std::ostream& out) const { out << toJson(); }

void TraceRecorder::writeJsonFile(const std::string& path) const {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("TraceRecorder: cannot open " + path);
  out << toJson();
  if (!out) throw std::runtime_error("TraceRecorder: write failed for " + path);
}

}  // namespace nlft::obs
