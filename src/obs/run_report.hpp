// Machine-readable run reports for benches and campaigns.
//
// A run report is a plain JsonValue object assembled by the caller (campaign
// statistics, metrics registry snapshot, configuration echo) and written
// pretty-printed to one file per run — CI and notebooks consume it instead of
// scraping stdout. appendToJsonArrayFile() covers the other idiom used by the
// bench suite (BENCH_*.json history files holding one top-level array that
// every run appends to, as bench/scaling_report.hpp does for scaling data).
#pragma once

#include <string>

#include "obs/json.hpp"

namespace nlft::obs {

/// Writes `report.dump(2)` (pretty, trailing newline) to `path`; throws
/// std::runtime_error on I/O failure.
void writeRunReportFile(const JsonValue& report, const std::string& path);

/// Appends `entry` to the top-level JSON array stored at `path`, creating the
/// file (as a one-element array) if it does not exist. The existing content
/// is parsed, so a corrupt file fails loudly instead of being clobbered.
void appendToJsonArrayFile(const JsonValue& entry, const std::string& path);

}  // namespace nlft::obs
