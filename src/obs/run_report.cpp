#include "obs/run_report.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nlft::obs {

void writeRunReportFile(const JsonValue& report, const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw std::runtime_error("writeRunReportFile: cannot open " + path);
  out << report.dump(2) << '\n';
  if (!out) throw std::runtime_error("writeRunReportFile: write failed for " + path);
}

void appendToJsonArrayFile(const JsonValue& entry, const std::string& path) {
  JsonValue history = JsonValue::array();
  {
    std::ifstream in{path, std::ios::binary};
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string existing = buffer.str();
      if (!existing.empty()) {
        history = parseJson(existing);
        if (history.kind() != JsonValue::Kind::Array) {
          throw std::runtime_error("appendToJsonArrayFile: " + path + " is not a JSON array");
        }
      }
    }
  }
  history.push(entry);
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw std::runtime_error("appendToJsonArrayFile: cannot open " + path);
  out << history.dump(2) << '\n';
  if (!out) throw std::runtime_error("appendToJsonArrayFile: write failed for " + path);
}

}  // namespace nlft::obs
