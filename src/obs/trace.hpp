// Span/trace recorder with Chrome trace_event JSON export.
//
// Events carry SIMULATED-clock microsecond timestamps (util::SimTime), never
// wall clock, so an export is a pure function of the recorded run: exporting
// twice yields byte-identical JSON (tests/obs_trace_test.cpp enforces it and
// tools/determinism_lint.sh re-runs that check when a build is present).
//
// Mapping convention used by the system-simulation adapter: pid = node id,
// tid = task id (+1; tid 0 is the node-scope pseudo-thread for events that
// are not task-scoped). Open build/…/trace.json in chrome://tracing or
// https://ui.perfetto.dev to see one lane per node/task.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace nlft::obs {

/// One Chrome trace_event. Phase 'X' = complete (has dur), 'i' = instant,
/// 'M' = metadata (process_name / thread_name).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'i';
  std::int64_t tsUs = 0;
  std::int64_t durUs = 0;  ///< complete events only
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  /// Optional single string argument, rendered under "args" (metadata events
  /// use it for the name; instants may carry a detail string).
  std::string argKey;
  std::string argValue;
};

class TraceRecorder {
 public:
  /// Names the process lane (Chrome metadata event, pid-scoped).
  void setProcessName(std::uint32_t pid, const std::string& name);
  /// Names the thread lane (pid, tid)-scoped.
  void setThreadName(std::uint32_t pid, std::uint32_t tid, const std::string& name);

  /// Records an instant event at the given simulated time.
  void instant(std::uint32_t pid, std::uint32_t tid, const std::string& name,
               const std::string& category, util::SimTime at, const std::string& detail = {});

  /// Records a complete ('X') span [start, start + duration).
  void complete(std::uint32_t pid, std::uint32_t tid, const std::string& name,
                const std::string& category, util::SimTime start, util::Duration duration);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  /// Number of non-metadata events in `category` (optionally further
  /// filtered by exact event name).
  [[nodiscard]] std::uint64_t countCategory(const std::string& category) const;
  [[nodiscard]] std::uint64_t countEvents(const std::string& category,
                                          const std::string& name) const;

  void clear() { events_.clear(); }

  /// Chrome trace_event JSON (object form: {"traceEvents": [...],
  /// "displayTimeUnit": "ms"}). Deterministic: a second call on the same
  /// recorder returns a byte-identical string.
  [[nodiscard]] std::string toJson() const;
  void writeJson(std::ostream& out) const;
  /// Writes toJson() to `path`; throws std::runtime_error on I/O failure.
  void writeJsonFile(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace nlft::obs
