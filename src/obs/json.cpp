#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nlft::obs {

std::string jsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::Int;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Double;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

std::int64_t JsonValue::asInt() const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Double) return static_cast<std::int64_t>(double_);
  throw std::logic_error("JsonValue: not a number");
}

double JsonValue::asDouble() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ == Kind::Double) return double_;
  throw std::logic_error("JsonValue: not a number");
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) throw std::logic_error("JsonValue: not a string");
  return string_;
}

void JsonValue::push(JsonValue value) {
  if (kind_ != Kind::Array) throw std::logic_error("JsonValue: push on non-array");
  array_.push_back(std::move(value));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  throw std::logic_error("JsonValue: size of non-container");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (kind_ != Kind::Array) throw std::logic_error("JsonValue: at on non-array");
  return array_.at(index);
}

void JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ != Kind::Object) throw std::logic_error("JsonValue: set on non-object");
  object_[key] = std::move(value);
}

bool JsonValue::has(const std::string& key) const {
  return kind_ == Kind::Object && object_.count(key) != 0;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::Object) throw std::logic_error("JsonValue: get on non-object");
  return object_.at(key);
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  if (kind_ != Kind::Object) throw std::logic_error("JsonValue: members of non-object");
  return object_;
}

namespace {

/// Shortest representation of `d` that round-trips through strtod; falls
/// back to %.17g. Fixed algorithm => byte-stable output across runs.
std::string formatDouble(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  char buffer[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, d);
    if (std::strtod(buffer, nullptr) == d) break;
  }
  return buffer;
}

void appendIndent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Int: out += std::to_string(int_); return;
    case Kind::Double: out += formatDouble(double_); return;
    case Kind::String:
      out += '"';
      out += jsonEscape(string_);
      out += '"';
      return;
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out += ',';
        first = false;
        appendIndent(out, indent, depth + 1);
        v.dumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) appendIndent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        appendIndent(out, indent, depth + 1);
        out += '"';
        out += jsonEscape(key);
        out += "\": ";
        value.dumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) appendIndent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_{text} {}

  JsonValue parse() {
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parseValue() {
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue::string(parseString());
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return JsonValue::null();
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue object = JsonValue::object();
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      object.set(key, parseValue());
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue array = JsonValue::array();
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push(parseValue());
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Encode as UTF-8 (surrogate pairs not needed for our exporters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  /// Consumes one or more digits; fails when none are present.
  void consumeDigits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == start) fail("bad number");
  }

  JsonValue parseNumber() {
    // Full JSON number grammar: -?int(.frac)?([eE][+-]?exp)? — anything
    // looser (doubled signs, bare dots, "1e") would rely on strtod's
    // undefined leniency and parse garbage as 0.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    consumeDigits();
    bool isInteger = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      isInteger = false;
      ++pos_;
      consumeDigits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      isInteger = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      consumeDigits();
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (isInteger) {
      try {
        return JsonValue::integer(std::stoll(token));
      } catch (const std::out_of_range&) {
        return JsonValue::number(std::strtod(token.c_str(), nullptr));
      }
    }
    return JsonValue::number(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) { return Parser{text}.parse(); }

}  // namespace nlft::obs
