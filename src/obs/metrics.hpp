// Thread-safe metrics registry: named counters, gauges and fixed-bucket
// histograms, with chunk-order merge() for the parallel campaign reducers.
//
// Merge algebra (what makes per-chunk registries equal the single-threaded
// registry for ANY shard split):
//   * counters   add            — associative and commutative;
//   * gauges     take the max   — "peak observed" semantics (queue depth,
//                                 samples/s); associative and commutative;
//   * histograms add bin-wise   — specs must match; associative/commutative.
// All three operations are exact integer/IEEE-max arithmetic, so merging the
// same multiset of updates in any order or grouping is BIT-IDENTICAL to
// applying them serially. tests/obs_metrics_test.cpp property-checks this
// over randomized interleavings and shard splits. Histograms deliberately
// carry NO floating-point sum accumulator: double addition is not
// associative (regrouping drifts the last ulp), which would silently break
// the bit-identity guarantee the parallel campaign reducers rely on.
//
// Golden fencing: metric names under the "wall." prefix carry wall-clock
// derived values (chunk timings, throughput). They are excluded from
// goldenJson()/goldenFingerprint(), which is what the bit-identity tests and
// run-report reconciliation compare — everything else must be deterministic
// for a fixed seed, at every thread count.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace nlft::obs {

/// Bucket layout of a fixed-width histogram over [lo, hi); samples outside
/// the range clamp to the first/last bucket (the total still increments).
struct HistogramSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t buckets = 10;
  friend bool operator==(const HistogramSpec&, const HistogramSpec&) = default;
};

/// Snapshot of one histogram (returned by Registry::histogram()).
struct HistogramSnapshot {
  HistogramSpec spec;
  std::vector<std::uint64_t> counts;  ///< size == spec.buckets
  std::uint64_t total = 0;            ///< sum of counts
};

/// Prefix fencing wall-clock-derived (non-golden) metrics.
inline constexpr const char* kNonGoldenPrefix = "wall.";

[[nodiscard]] bool isNonGoldenMetric(const std::string& name);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry& other);
  Registry& operator=(const Registry& other);
  Registry(Registry&& other) noexcept;
  Registry& operator=(Registry&& other) noexcept;

  /// Adds `delta` to the named counter (created at 0 on first use).
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Raises the named gauge to at least `value` (peak semantics; created at
  /// `value` on first use).
  void gaugeMax(const std::string& name, double value);

  /// Records `value` into the named histogram. The spec is fixed on first
  /// use; a later observe with a different spec throws std::invalid_argument.
  void observe(const std::string& name, const HistogramSpec& spec, double value);

  [[nodiscard]] std::uint64_t count(const std::string& name) const;  ///< 0 if absent
  [[nodiscard]] double gauge(const std::string& name) const;         ///< 0.0 if absent
  [[nodiscard]] bool hasCounter(const std::string& name) const;
  [[nodiscard]] HistogramSnapshot histogram(const std::string& name) const;  ///< throws if absent

  /// Sorted names per family.
  [[nodiscard]] std::vector<std::string> counterNames() const;
  [[nodiscard]] std::vector<std::string> gaugeNames() const;
  [[nodiscard]] std::vector<std::string> histogramNames() const;

  /// Folds `other` into this registry (counters add, gauges max, histograms
  /// add bin-wise; mismatched histogram specs throw).
  void merge(const Registry& other);

  void clear();

  /// Full JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}}. Deterministic (sorted names).
  [[nodiscard]] JsonValue toJson() const;

  /// As toJson() but with every "wall."-prefixed metric removed — the
  /// deterministic subset that must be bit-identical across thread counts.
  [[nodiscard]] JsonValue goldenJson() const;

  /// dump() of goldenJson(): a comparable fingerprint string.
  [[nodiscard]] std::string goldenFingerprint() const;

 private:
  struct HistogramState {
    HistogramSpec spec;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramState> histograms_;
};

}  // namespace nlft::obs
