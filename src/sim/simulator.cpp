#include "sim/simulator.hpp"

#include <stdexcept>

namespace nlft::sim {

EventId Simulator::scheduleAt(SimTime at, Callback cb, EventPriority priority) {
  if (at < now_) throw std::invalid_argument("Simulator: cannot schedule in the past");
  const std::uint64_t id = nextId_++;
  queue_.push(Entry{at, static_cast<int>(priority), nextSeq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return EventId{id};
}

EventId Simulator::scheduleAfter(Duration delay, Callback cb, EventPriority priority) {
  if (delay < Duration{}) throw std::invalid_argument("Simulator: negative delay");
  return scheduleAt(now_ + delay, std::move(cb), priority);
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (const auto cancelledIt = cancelled_.find(entry.id); cancelledIt != cancelled_.end()) {
      cancelled_.erase(cancelledIt);
      continue;
    }
    const auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // defensive; should not happen
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = entry.at;
    ++processed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::purgeCancelledTop() {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    queue_.pop();
  }
}

void Simulator::runUntil(SimTime limit) {
  for (;;) {
    purgeCancelledTop();
    if (queue_.empty() || queue_.top().at > limit) break;
    if (!step()) break;
  }
  if (now_ < limit) now_ = limit;
}

void Simulator::runAll() {
  while (step()) {
  }
}

}  // namespace nlft::sim
