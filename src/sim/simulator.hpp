// Discrete-event simulation core.
//
// A single Simulator instance owns the simulated clock and an event queue.
// Events are callbacks scheduled at absolute times; ties are broken first by
// an explicit priority (lower value runs first) and then by insertion order,
// which makes every run fully deterministic.
//
// The real-time kernel, the TDMA bus and the fault injector all share one
// Simulator, so cross-component ordering (e.g. "fault strikes during the
// second task copy") is exact.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace nlft::sim {

using util::Duration;
using util::SimTime;

/// Handle for a scheduled event; valid until the event fires or is cancelled.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Tie-break priorities for events scheduled at the same instant.
/// Lower runs first.
enum class EventPriority : int {
  FaultInjection = 0,  // faults strike "just before" anything else at t
  Hardware = 1,
  Kernel = 2,
  Network = 3,
  Application = 4,
  Observer = 9,
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (must not be in the past).
  EventId scheduleAt(SimTime at, Callback cb, EventPriority priority = EventPriority::Application);
  /// Schedules `cb` after a non-negative delay from now.
  EventId scheduleAfter(Duration delay, Callback cb,
                        EventPriority priority = EventPriority::Application);

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled (safe to call either way).
  bool cancel(EventId id);

  /// Runs the next event. Returns false when the queue is empty.
  bool step();
  /// Runs events until the queue is empty or `limit` is reached; the clock
  /// ends at exactly `limit` even if no event fires there.
  void runUntil(SimTime limit);
  /// Runs all events (use only for workloads that are known to terminate).
  void runAll();

  [[nodiscard]] std::size_t pendingEvents() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t processedEvents() const { return processed_; }

 private:
  struct Entry {
    SimTime at;
    int priority;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void purgeCancelledTop();

  SimTime now_;
  std::uint64_t nextId_ = 1;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace nlft::sim
