#include "fuzz/shrink.hpp"

#include <algorithm>
#include <cmath>

namespace nlft::fuzz {

namespace {

class Shrinker {
 public:
  Shrinker(const std::function<bool(const Scenario&)>& stillFails, const ScenarioLimits& limits,
           std::size_t maxEvaluations)
      : stillFails_{stillFails}, limits_{limits}, maxEvaluations_{maxEvaluations} {}

  /// Evaluates a canonicalised candidate; true if it still fails (and is
  /// actually different from `current` — re-evaluating the same scenario
  /// would waste budget).
  [[nodiscard]] bool accepts(const Scenario& current, Scenario& candidate) {
    clampScenario(candidate, limits_);
    if (candidate == current) return false;
    if (evaluations_ >= maxEvaluations_) return false;
    ++evaluations_;
    return stillFails_(candidate);
  }

  [[nodiscard]] bool budgetLeft() const { return evaluations_ < maxEvaluations_; }
  [[nodiscard]] std::size_t evaluations() const { return evaluations_; }

 private:
  const std::function<bool(const Scenario&)>& stillFails_;
  const ScenarioLimits& limits_;
  std::size_t maxEvaluations_;
  std::size_t evaluations_ = 0;
};

/// One ddmin-style pass: try deleting chunks of `chunk` consecutive events.
/// Returns true when a deletion stuck.
bool deleteChunkPass(Scenario& scenario, std::size_t chunk, Shrinker& shrinker) {
  bool shrunk = false;
  for (std::size_t begin = 0; begin + chunk <= scenario.events.size();) {
    Scenario candidate = scenario;
    candidate.events.erase(candidate.events.begin() + static_cast<std::ptrdiff_t>(begin),
                           candidate.events.begin() + static_cast<std::ptrdiff_t>(begin + chunk));
    if (shrinker.accepts(scenario, candidate)) {
      scenario = std::move(candidate);
      shrunk = true;  // same begin now points at the next chunk
    } else {
      ++begin;
    }
    if (!shrinker.budgetLeft()) break;
  }
  return shrunk;
}

void deleteEvents(Scenario& scenario, Shrinker& shrinker, std::size_t& removed) {
  const std::size_t before = scenario.events.size();
  for (std::size_t chunk = std::max<std::size_t>(scenario.events.size() / 2, 1); chunk >= 1;) {
    const bool shrunk = deleteChunkPass(scenario, chunk, shrinker);
    if (!shrinker.budgetLeft()) break;
    if (shrunk && chunk > 1) continue;  // retry the same granularity first
    if (chunk == 1 && shrunk) continue; // keep sweeping singles until stable
    chunk /= 2;
  }
  removed += before - scenario.events.size();
}

}  // namespace

ShrinkResult shrinkScenario(const Scenario& seed,
                            const std::function<bool(const Scenario&)>& stillFails,
                            const ScenarioLimits& limits, std::size_t maxEvaluations) {
  ShrinkResult result;
  result.scenario = seed;
  clampScenario(result.scenario, limits);

  Shrinker shrinker{stillFails, limits, maxEvaluations};
  {
    // The seed must fail; otherwise there is nothing to preserve.
    Scenario probe = result.scenario;
    if (!stillFails(probe)) {
      result.evaluations = 1;
      return result;
    }
  }

  Scenario& scenario = result.scenario;
  deleteEvents(scenario, shrinker, result.removedEvents);

  // Parameter bisection toward the defaults.
  const ScenarioParams defaults{};
  const auto trySet = [&](auto apply, auto target, auto get) {
    constexpr int kIterations = 10;
    {
      Scenario candidate = scenario;
      apply(candidate, target);
      if (shrinker.accepts(scenario, candidate)) {
        scenario = std::move(candidate);
        return;
      }
    }
    auto lo = target;  // known-passing (or at least not known-failing) side
    for (int i = 0; i < kIterations && shrinker.budgetLeft(); ++i) {
      const auto hi = get(scenario);  // known-failing side
      const auto mid = lo + (hi - lo) / 2;
      if (mid == lo || mid == hi) break;
      Scenario candidate = scenario;
      apply(candidate, mid);
      if (shrinker.accepts(scenario, candidate)) {
        scenario = std::move(candidate);
      } else {
        lo = mid;
      }
    }
  };

  trySet([](Scenario& s, double v) { s.params.initialSpeedMps = v; }, defaults.initialSpeedMps,
         [](const Scenario& s) { return s.params.initialSpeedMps; });
  trySet([](Scenario& s, double v) { s.params.pedal = v; }, defaults.pedal,
         [](const Scenario& s) { return s.params.pedal; });
  trySet([](Scenario& s, std::int64_t v) { s.params.restartTimeUs = v; }, defaults.restartTimeUs,
         [](const Scenario& s) { return s.params.restartTimeUs; });

  // Time bisection: normalise each surviving event toward the earliest
  // legal instant. Event identity is positional, so iterate by index and
  // re-check the size after each attempt (clamping re-sorts, but the count
  // is stable under time changes).
  for (std::size_t i = 0; i < scenario.events.size(); ++i) {
    const std::size_t index = i;
    trySet(
        [index](Scenario& s, std::int64_t v) {
          if (index < s.events.size()) s.events[index].atUs = v;
        },
        limits.minEventUs,
        [index](const Scenario& s) {
          return index < s.events.size() ? s.events[index].atUs : std::int64_t{0};
        });
  }

  // A successful parameter change can make further events redundant.
  deleteEvents(scenario, shrinker, result.removedEvents);

  result.evaluations = shrinker.evaluations() + 1;  // + the initial probe
  return result;
}

}  // namespace nlft::fuzz
