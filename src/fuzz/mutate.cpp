#include "fuzz/mutate.hpp"

#include <algorithm>

namespace nlft::fuzz {

namespace {

[[nodiscard]] ScheduleEvent randomEvent(util::Rng& rng, const ScenarioLimits& limits) {
  ScheduleEvent event;
  event.kind = static_cast<EventKind>(rng.uniformInt(kEventKindCount));
  event.node = static_cast<net::NodeId>(1 + rng.uniformInt(limits.nodeCount));
  event.atUs = limits.minEventUs + static_cast<std::int64_t>(rng.uniformInt(
      static_cast<std::uint64_t>(limits.maxEventUs - limits.minEventUs + 1)));
  if (event.kind == EventKind::BusCorruption) {
    const std::size_t flips = 1 + rng.uniformInt(limits.maxFlipBits);
    for (std::size_t f = 0; f < flips; ++f) {
      event.flipBits.push_back(static_cast<std::uint32_t>(rng.uniformInt(limits.flipBitSpace)));
    }
  }
  return event;
}

void applyOne(util::Rng& rng, Scenario& scenario, const Scenario* donor,
              const ScenarioLimits& limits, MutationKind kind) {
  switch (kind) {
    case MutationKind::ParamNudge: {
      switch (rng.uniformInt(4)) {
        case 0:
          scenario.params.initialSpeedMps +=
              rng.uniform(-3.0, 3.0);  // clamp pulls back into range
          break;
        case 1: scenario.params.pedal += rng.uniform(-0.1, 0.1); break;
        case 2:
          scenario.params.restartTimeUs +=
              static_cast<std::int64_t>(rng.uniform(-500'000.0, 500'000.0));
          break;
        default:
          scenario.params.nodeType = scenario.params.nodeType == bbw::NodeType::Nlft
                                         ? bbw::NodeType::FailSilent
                                         : bbw::NodeType::Nlft;
          break;
      }
      break;
    }
    case MutationKind::TimeShift: {
      if (scenario.events.empty()) break;
      const auto delta = static_cast<std::int64_t>(rng.uniform(-400'000.0, 400'000.0));
      if (rng.bernoulli(0.5)) {
        scenario.events[rng.uniformInt(scenario.events.size())].atUs += delta;
      } else {
        for (ScheduleEvent& event : scenario.events) event.atUs += delta;
      }
      break;
    }
    case MutationKind::ScheduleSplice: {
      const Scenario& source = donor != nullptr ? *donor : scenario;
      if (source.events.empty()) break;
      const std::size_t begin = rng.uniformInt(source.events.size());
      const std::size_t count = 1 + rng.uniformInt(source.events.size() - begin);
      scenario.events.insert(scenario.events.end(), source.events.begin() + begin,
                             source.events.begin() + begin + count);
      break;
    }
    case MutationKind::AddEvent: {
      scenario.events.push_back(randomEvent(rng, limits));
      break;
    }
    case MutationKind::DeleteEvent: {
      if (scenario.events.empty()) break;
      scenario.events.erase(scenario.events.begin() +
                            static_cast<std::ptrdiff_t>(rng.uniformInt(scenario.events.size())));
      break;
    }
    case MutationKind::RetargetEvent: {
      if (scenario.events.empty()) break;
      ScheduleEvent& event = scenario.events[rng.uniformInt(scenario.events.size())];
      switch (rng.uniformInt(3)) {
        case 0:
          event.node = static_cast<net::NodeId>(1 + rng.uniformInt(limits.nodeCount));
          break;
        case 1:
          event.kind = static_cast<EventKind>(rng.uniformInt(kEventKindCount));
          break;
        default:
          if (event.kind == EventKind::BusCorruption) {
            event.flipBits.clear();
            const std::size_t flips = 1 + rng.uniformInt(limits.maxFlipBits);
            for (std::size_t f = 0; f < flips; ++f) {
              event.flipBits.push_back(
                  static_cast<std::uint32_t>(rng.uniformInt(limits.flipBitSpace)));
            }
          } else {
            event.kind = static_cast<EventKind>(rng.uniformInt(kEventKindCount));
          }
          break;
      }
      break;
    }
  }
}

}  // namespace

const char* describe(MutationKind kind) {
  switch (kind) {
    case MutationKind::ParamNudge: return "param-nudge";
    case MutationKind::TimeShift: return "time-shift";
    case MutationKind::ScheduleSplice: return "schedule-splice";
    case MutationKind::AddEvent: return "add-event";
    case MutationKind::DeleteEvent: return "delete-event";
    case MutationKind::RetargetEvent: return "retarget-event";
  }
  return "?";
}

Scenario mutateScenario(util::Rng& rng, const Scenario& base, const Scenario* donor,
                        const ScenarioLimits& limits) {
  Scenario scenario = base;
  const std::size_t rounds = rng.bernoulli(0.25) ? 2 : 1;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto kind = static_cast<MutationKind>(rng.uniformInt(kMutationKindCount));
    applyOne(rng, scenario, donor, limits, kind);
  }
  clampScenario(scenario, limits);
  return scenario;
}

}  // namespace nlft::fuzz
