// Mutation operators of the scenario fuzzer.
//
// A mutation takes a corpus seed (and optionally a second "donor" seed for
// crossover-style splicing) and produces a new legal scenario. All operators
// draw exclusively from the caller's Rng and end with clampScenario(), so a
// mutated scenario is always canonical and the whole pipeline stays
// deterministic for a fixed seed.
#pragma once

#include "fuzz/scenario.hpp"
#include "util/rng.hpp"

namespace nlft::fuzz {

/// The operator families; exposed so tests can pin coverage of each.
enum class MutationKind : std::uint8_t {
  ParamNudge,     ///< perturb speed / pedal / restart time (or flip node type)
  TimeShift,      ///< shift one event (or the whole schedule) in time
  ScheduleSplice, ///< copy a slice of the donor's schedule into the base
  AddEvent,       ///< insert one fresh random event
  DeleteEvent,    ///< drop one event
  RetargetEvent,  ///< move an event to a different node / kind / bit set
};
inline constexpr std::size_t kMutationKindCount = 6;

[[nodiscard]] const char* describe(MutationKind kind);

/// Applies one randomly chosen operator (two with probability 1/4) to `base`.
/// `donor` feeds ScheduleSplice; pass nullptr (or base itself) when the
/// corpus has a single entry — splicing then degrades to duplication, which
/// clampScenario keeps legal. The result is always canonical.
[[nodiscard]] Scenario mutateScenario(util::Rng& rng, const Scenario& base,
                                      const Scenario* donor = nullptr,
                                      const ScenarioLimits& limits = {});

}  // namespace nlft::fuzz
