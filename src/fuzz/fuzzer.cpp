#include "fuzz/fuzzer.hpp"

#include <set>
#include <utility>

#include "exec/chunked_campaign.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/shrink.hpp"

namespace nlft::fuzz {

namespace {

/// One executed scenario, carried from the workers to the sequential fold.
struct RoundItem {
  Scenario scenario;
  ScenarioVerdict verdict;
};

/// Chunk-local accumulator; merge() appends in chunk order, so the merged
/// item list is ordered by (chunk, item) — a pure function of the round.
struct RoundStats {
  std::size_t experiments = 0;
  std::vector<RoundItem> items;

  void merge(const RoundStats& other) {
    experiments += other.experiments;
    items.insert(items.end(), other.items.begin(), other.items.end());
  }
};

[[nodiscard]] std::uint64_t roundSeed(std::uint64_t seed, std::size_t round) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(round) + 1));
  return util::splitmix64(state);
}

[[nodiscard]] Scenario generateScenario(util::Rng& rng, const std::vector<CorpusEntry>& snapshot,
                                        const FuzzConfig& config) {
  if (snapshot.empty() || !rng.bernoulli(config.mutateProbability)) {
    return randomScenario(rng, config.limits);
  }
  const Scenario& base = snapshot[rng.uniformInt(snapshot.size())].scenario;
  const Scenario& donor = snapshot[rng.uniformInt(snapshot.size())].scenario;
  return mutateScenario(rng, base, &donor, config.limits);
}

}  // namespace

obs::JsonValue FuzzReport::toJson() const {
  obs::JsonValue root = obs::JsonValue::object();
  root.set("executed", obs::JsonValue::integer(static_cast<std::int64_t>(executed)));
  root.set("valid", obs::JsonValue::integer(static_cast<std::int64_t>(valid)));
  root.set("rounds", obs::JsonValue::integer(static_cast<std::int64_t>(rounds)));

  obs::JsonValue outcomes = obs::JsonValue::object();
  for (const auto& [outcome, count] : outcomeCounts) {
    outcomes.set(outcome, obs::JsonValue::integer(static_cast<std::int64_t>(count)));
  }
  root.set("outcomes", std::move(outcomes));

  obs::JsonValue violationTotals = obs::JsonValue::object();
  for (const auto& [oracle, count] : violationCounts) {
    violationTotals.set(oracle, obs::JsonValue::integer(static_cast<std::int64_t>(count)));
  }
  root.set("violation_counts", std::move(violationTotals));

  obs::JsonValue corpusJson = obs::JsonValue::array();
  for (const CorpusEntry& entry : corpus.entries()) {
    obs::JsonValue e = obs::JsonValue::object();
    e.set("signature", obs::JsonValue::string(entry.signature));
    e.set("outcome", obs::JsonValue::string(entry.outcome));
    e.set("scenario", scenarioToJson(entry.scenario));
    corpusJson.push(std::move(e));
  }
  root.set("corpus", std::move(corpusJson));

  obs::JsonValue violationsJson = obs::JsonValue::array();
  for (const FuzzViolation& violation : violations) {
    obs::JsonValue v = obs::JsonValue::object();
    v.set("oracle", obs::JsonValue::string(violation.oracle));
    v.set("message", obs::JsonValue::string(violation.message));
    v.set("scenario", scenarioToJson(violation.scenario));
    v.set("shrunk", scenarioToJson(violation.shrunk));
    v.set("was_shrunk", obs::JsonValue::boolean(violation.wasShrunk));
    violationsJson.push(std::move(v));
  }
  root.set("violations", std::move(violationsJson));
  return root;
}

FuzzReport runFuzzer(const FuzzConfig& config) {
  const OracleConfig oracle = resolveOracleConfig(config.oracle);
  GoldenCache cache;
  FuzzReport report;
  std::set<std::pair<std::string, std::uint32_t>> violationKeys;

  const std::size_t batchSize = config.batchSize == 0 ? 1 : config.batchSize;
  while (report.executed < config.budget) {
    const std::size_t batch = std::min(batchSize, config.budget - report.executed);
    // Frozen snapshot: workers read it concurrently, nobody writes until
    // the sequential fold below.
    const std::vector<CorpusEntry> snapshot = report.corpus.entries();

    const RoundStats stats = exec::runChunkedCampaign<RoundStats>(
        batch, roundSeed(config.seed, report.rounds), config.parallelism, "nlft-fuzz",
        [&](util::Rng& rng, RoundStats& roundStats) {
          RoundItem item;
          item.scenario = generateScenario(rng, snapshot, config);
          item.verdict = evaluateScenario(item.scenario, oracle, &cache);
          roundStats.items.push_back(std::move(item));
        });

    // Sequential fold in deterministic (chunk, item) order.
    for (const RoundItem& item : stats.items) {
      if (!item.verdict.valid) continue;
      ++report.valid;
      ++report.outcomeCounts[fi::describe(item.verdict.outcome)];
      report.corpus.addIfNovel(makeCorpusEntry(item.scenario, item.verdict));
      for (const OracleViolation& violation : item.verdict.violations) {
        ++report.violationCounts[violation.oracle];
        if (!violationKeys
                 .emplace(violation.oracle, item.verdict.signature.key())
                 .second) {
          continue;  // same oracle on the same behaviour class: one repro is enough
        }
        FuzzViolation repro;
        repro.oracle = violation.oracle;
        repro.message = violation.message;
        repro.scenario = item.scenario;
        repro.shrunk = item.scenario;
        if (report.violations.size() <
            static_cast<std::size_t>(config.maxShrinks)) {
          const ShrinkResult shrunk =
              shrinkScenario(item.scenario, violatesOracle(violation.oracle, oracle, &cache),
                             config.limits, config.shrinkEvaluations);
          repro.shrunk = shrunk.scenario;
          repro.wasShrunk = true;
          repro.shrinkEvaluations = shrunk.evaluations;
        }
        report.violations.push_back(std::move(repro));
      }
    }
    report.executed += stats.experiments;
    ++report.rounds;
  }
  return report;
}

ScenarioVerdict replayCase(const CorpusEntry& entry, const FuzzConfig& config) {
  return evaluateScenario(entry.scenario, resolveOracleConfig(config.oracle), nullptr);
}

}  // namespace nlft::fuzz
