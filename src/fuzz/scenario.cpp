#include "fuzz/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace nlft::fuzz {

namespace {

[[nodiscard]] std::int64_t clampI64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return std::min(std::max(v, lo), hi);
}

[[nodiscard]] double clampD(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

[[nodiscard]] auto eventOrderKey(const ScheduleEvent& e) {
  return std::make_tuple(e.atUs, e.node, static_cast<std::uint8_t>(e.kind), e.flipBits);
}

}  // namespace

const char* describe(EventKind kind) {
  switch (kind) {
    case EventKind::ComputationFault: return "computation-fault";
    case EventKind::DetectedError: return "detected-error";
    case EventKind::KernelError: return "kernel-error";
    case EventKind::OmissionFailure: return "omission-failure";
    case EventKind::ValueFailure: return "value-failure";
    case EventKind::BusCorruption: return "bus-corruption";
  }
  return "?";
}

EventKind parseEventKind(const std::string& name) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == describe(kind)) return kind;
  }
  throw std::invalid_argument("parseEventKind: unknown event kind '" + name + "'");
}

void clampScenario(Scenario& scenario, const ScenarioLimits& limits) {
  ScenarioParams& p = scenario.params;
  p.initialSpeedMps = clampD(p.initialSpeedMps, limits.minSpeedMps, limits.maxSpeedMps);
  p.pedal = clampD(p.pedal, limits.minPedal, limits.maxPedal);
  p.restartTimeUs = clampI64(p.restartTimeUs, limits.minRestartUs, limits.maxRestartUs);

  if (scenario.events.size() > limits.maxEvents) scenario.events.resize(limits.maxEvents);
  for (ScheduleEvent& event : scenario.events) {
    event.node = static_cast<net::NodeId>(
        1 + (event.node == 0 ? 0 : (event.node - 1) % limits.nodeCount));
    event.atUs = clampI64(event.atUs, limits.minEventUs, limits.maxEventUs);
    if (event.kind == EventKind::BusCorruption) {
      if (event.flipBits.empty()) event.flipBits.push_back(0);
      if (event.flipBits.size() > limits.maxFlipBits) event.flipBits.resize(limits.maxFlipBits);
      for (std::uint32_t& bit : event.flipBits) bit %= limits.flipBitSpace;
      std::sort(event.flipBits.begin(), event.flipBits.end());
    } else {
      event.flipBits.clear();
    }
  }
  std::sort(scenario.events.begin(), scenario.events.end(),
            [](const ScheduleEvent& a, const ScheduleEvent& b) {
              return eventOrderKey(a) < eventOrderKey(b);
            });
}

bool isLegalScenario(const Scenario& scenario, const ScenarioLimits& limits) {
  Scenario clamped = scenario;
  clampScenario(clamped, limits);
  return clamped == scenario;
}

Scenario randomScenario(util::Rng& rng, const ScenarioLimits& limits) {
  Scenario scenario;
  scenario.params.nodeType =
      rng.bernoulli(0.5) ? bbw::NodeType::Nlft : bbw::NodeType::FailSilent;
  scenario.params.initialSpeedMps = rng.uniform(limits.minSpeedMps, limits.maxSpeedMps);
  scenario.params.pedal = rng.uniform(limits.minPedal, limits.maxPedal);
  scenario.params.restartTimeUs = limits.minRestartUs + static_cast<std::int64_t>(rng.uniformInt(
      static_cast<std::uint64_t>(limits.maxRestartUs - limits.minRestartUs + 1)));

  const std::size_t count = 1 + rng.uniformInt(3);  // fresh seeds start small
  for (std::size_t i = 0; i < count; ++i) {
    ScheduleEvent event;
    event.kind = static_cast<EventKind>(rng.uniformInt(kEventKindCount));
    event.node = static_cast<net::NodeId>(1 + rng.uniformInt(limits.nodeCount));
    event.atUs = limits.minEventUs + static_cast<std::int64_t>(rng.uniformInt(
        static_cast<std::uint64_t>(limits.maxEventUs - limits.minEventUs + 1)));
    if (event.kind == EventKind::BusCorruption) {
      const std::size_t flips = 1 + rng.uniformInt(limits.maxFlipBits);
      for (std::size_t f = 0; f < flips; ++f) {
        event.flipBits.push_back(static_cast<std::uint32_t>(rng.uniformInt(limits.flipBitSpace)));
      }
    }
    scenario.events.push_back(std::move(event));
  }
  clampScenario(scenario, limits);
  return scenario;
}

obs::JsonValue scenarioToJson(const Scenario& scenario) {
  obs::JsonValue params = obs::JsonValue::object();
  params.set("node_type", obs::JsonValue::string(
      scenario.params.nodeType == bbw::NodeType::Nlft ? "nlft" : "fail-silent"));
  params.set("initial_speed_mps", obs::JsonValue::number(scenario.params.initialSpeedMps));
  params.set("pedal", obs::JsonValue::number(scenario.params.pedal));
  params.set("restart_time_us", obs::JsonValue::integer(scenario.params.restartTimeUs));

  obs::JsonValue events = obs::JsonValue::array();
  for (const ScheduleEvent& event : scenario.events) {
    obs::JsonValue e = obs::JsonValue::object();
    e.set("kind", obs::JsonValue::string(describe(event.kind)));
    e.set("node", obs::JsonValue::integer(static_cast<std::int64_t>(event.node)));
    e.set("at_us", obs::JsonValue::integer(event.atUs));
    if (!event.flipBits.empty()) {
      obs::JsonValue bits = obs::JsonValue::array();
      for (const std::uint32_t bit : event.flipBits) {
        bits.push(obs::JsonValue::integer(static_cast<std::int64_t>(bit)));
      }
      e.set("flip_bits", std::move(bits));
    }
    events.push(std::move(e));
  }

  obs::JsonValue root = obs::JsonValue::object();
  root.set("params", std::move(params));
  root.set("events", std::move(events));
  return root;
}

Scenario scenarioFromJson(const obs::JsonValue& json) {
  if (json.kind() != obs::JsonValue::Kind::Object || !json.has("params") ||
      !json.has("events")) {
    throw std::runtime_error("scenarioFromJson: expected {params, events}");
  }
  Scenario scenario;
  const obs::JsonValue& params = json.get("params");
  const std::string nodeType = params.get("node_type").asString();
  if (nodeType == "nlft") {
    scenario.params.nodeType = bbw::NodeType::Nlft;
  } else if (nodeType == "fail-silent") {
    scenario.params.nodeType = bbw::NodeType::FailSilent;
  } else {
    throw std::runtime_error("scenarioFromJson: unknown node_type '" + nodeType + "'");
  }
  scenario.params.initialSpeedMps = params.get("initial_speed_mps").asDouble();
  scenario.params.pedal = params.get("pedal").asDouble();
  scenario.params.restartTimeUs = params.get("restart_time_us").asInt();

  const obs::JsonValue& events = json.get("events");
  if (events.kind() != obs::JsonValue::Kind::Array) {
    throw std::runtime_error("scenarioFromJson: events must be an array");
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::JsonValue& e = events.at(i);
    ScheduleEvent event;
    event.kind = parseEventKind(e.get("kind").asString());
    event.node = static_cast<net::NodeId>(e.get("node").asInt());
    event.atUs = e.get("at_us").asInt();
    if (e.has("flip_bits")) {
      const obs::JsonValue& bits = e.get("flip_bits");
      for (std::size_t b = 0; b < bits.size(); ++b) {
        event.flipBits.push_back(static_cast<std::uint32_t>(bits.at(b).asInt()));
      }
    }
    scenario.events.push_back(std::move(event));
  }
  if (!isLegalScenario(scenario)) {
    throw std::runtime_error("scenarioFromJson: scenario outside the legal ranges "
                             "(re-canonicalise with clampScenario)");
  }
  return scenario;
}

}  // namespace nlft::fuzz
