// Differential and metamorphic oracles of the scenario fuzzer.
//
// Every executed scenario is checked against properties that hold by design
// of the NLFT architecture, independently of any hand-picked expectation:
//
//   diff.e2e-bound        the static verifier's sample->apply bound for the
//                         scenario's configuration dominates the measured
//                         e2e.latency.max_us of the run (the same contract
//                         tests/verify_differential_test.cpp pins on the six
//                         golden traces, here enforced on EVERY fuzzed run);
//   nlft.single-transient a single transient (any event except the
//                         by-construction-undetectable value failure) on the
//                         verified NLFT deployment never produces a missed
//                         stop — the paper's core claim;
//   meta.tem-monotone     replaying the same schedule with TEM disabled
//                         (fail-silent baseline) must not yield a STRICTLY
//                         LESS severe outcome, and must not mask more: TEM
//                         only ever improves the outcome class;
//   det.replay            snapshot-resume determinism: a twin of the
//                         scenario is advanced to a mid-run split point,
//                         checkpointed (BbwSystemSim::saveState) and restored
//                         into a fresh simulation; the resumed run must
//                         reproduce the straight run's metrics fingerprint
//                         byte-for-byte, and a checkpoint the restore layer
//                         rejects is itself a violation (the campaign layer
//                         separately pins thread-count bit-identity).
//
// Violations carry the oracle id plus the numbers that refute the property;
// the shrinker reduces the scenario while the SAME oracle keeps failing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bbw/system_sim.hpp"
#include "faults/system_campaign.hpp"
#include "fuzz/scenario.hpp"

namespace nlft::fuzz {

struct OracleConfig {
  /// Static sample->apply bounds in us; 0 = derive from the registered
  /// verifier configurations (verify::bbwNlftConfig / bbwFailSilentConfig).
  /// Tests override these to emulate a weakened (reverted) verifier check.
  std::int64_t e2eBoundNlftUs = 0;
  std::int64_t e2eBoundFsUs = 0;

  /// Metamorphic TEM comparison costs one extra fail-silent run per NLFT
  /// scenario; replay determinism costs one re-run. Both default on.
  bool checkTemMonotone = true;
  bool checkReplayDeterminism = true;

  /// Vehicle-level outcome thresholds (same semantics as the fi:: system
  /// campaign oracle).
  double maskToleranceM = 0.5;
  double missedStopMarginM = 20.0;

  /// Simulation horizon; scenarios whose fault-free stop does not complete
  /// inside it are classified invalid and never reach the oracles.
  std::int64_t horizonUs = 15'000'000;

  /// TEST HOOK: when set, every replay checkpoint blob (the golden cache's
  /// validation restore and the det.replay resume leg) passes through this
  /// mutator before being restored. Tests use it to prove a deliberately
  /// corrupted checkpoint is reported as a det.replay violation instead of
  /// being cached or silently accepted.
  std::function<void(std::vector<std::uint8_t>&)> corruptReplayCheckpoint;
};

/// Resolves the 0-defaults of `config` against the registered verifier
/// configurations (computed once, cached).
[[nodiscard]] OracleConfig resolveOracleConfig(OracleConfig config);

/// Severity order of an outcome (index in fi::SystemOutcome).
[[nodiscard]] std::size_t outcomeSeverity(fi::SystemOutcome outcome);

/// Coarse behaviour signature of one executed scenario — the novelty key of
/// the corpus. Deliberately quantised: two runs that differ only in noise
/// (exact distances, counter values) share a signature; runs that differ in
/// WHICH mechanisms fired do not.
struct ScenarioSignature {
  std::string outcome;       ///< fi::describe(SystemOutcome)
  std::string nodeType;      ///< "nlft" | "fail-silent"
  bool stopped = false;
  std::size_t distanceBucket = 0;   ///< |distance - golden| in log-ish buckets
  std::size_t omissionBucket = 0;   ///< extra omissions vs golden
  std::size_t busDropBucket = 0;    ///< extra bus drops vs golden
  std::size_t nodesDown = 0;        ///< nodes still down at the end
  bool masking = false;             ///< TEM masked at least one error
  bool failSilent = false;
  bool undetectedValue = false;
  std::array<std::size_t, kEventKindCount> eventKindBuckets{};  ///< 0/1/2(=2+)

  /// Canonical one-line form (deterministic; feeds key()).
  [[nodiscard]] std::string canonical() const;
  /// CRC-32 of canonical() — the novelty-map key.
  [[nodiscard]] std::uint32_t key() const;
};

struct OracleViolation {
  std::string oracle;   ///< stable id, e.g. "diff.e2e-bound"
  std::string message;  ///< the numbers that refute the property
};

/// Everything the fuzzer learns from one scenario execution.
struct ScenarioVerdict {
  bool valid = false;  ///< fault-free stop completed inside the horizon
  fi::SystemOutcome outcome = fi::SystemOutcome::Masked;
  ScenarioSignature signature;
  double stoppingDistanceM = 0.0;
  double goldenDistanceM = 0.0;
  double e2eMaxUs = 0.0;
  std::int64_t e2eBoundUs = 0;
  std::vector<OracleViolation> violations;
};

/// Shared fault-free reference runs, keyed by the perturbed parameters.
/// Golden results are pure functions of the parameters, so the cache only
/// affects speed, never results; safe to share across worker threads.
///
/// Re-pointed at snapshot-resume (docs/SNAPSHOT.md): a cache miss runs the
/// fault-free producer, checkpoints it (BbwSystemSim::saveState) and takes
/// the cached result from a fresh simulation restored from that checkpoint,
/// so every entry in the cache has survived a full save/restore round-trip.
/// restoreState throws on a damaged blob or a diverging replay, and a
/// throwing restore caches NOTHING — the caller reports it as a det.replay
/// violation instead.
class GoldenCache {
 public:
  /// `mutateCheckpoint` is the OracleConfig::corruptReplayCheckpoint test
  /// hook; leave empty outside tests.
  [[nodiscard]] bbw::BbwSimResult get(
      const ScenarioParams& params, std::int64_t horizonUs,
      const std::function<void(std::vector<std::uint8_t>&)>& mutateCheckpoint = {});

 private:
  std::mutex mutex_;
  std::map<std::string, bbw::BbwSimResult> cache_;
};

/// Runs the scenario (plus its fault-free reference and, when configured,
/// the fail-silent counterpart and a replay) and checks every oracle.
/// `config` must be resolved (resolveOracleConfig) when bounds are derived.
[[nodiscard]] ScenarioVerdict evaluateScenario(const Scenario& scenario,
                                               const OracleConfig& config,
                                               GoldenCache* goldenCache = nullptr);

/// Convenience predicate for the shrinker: does the scenario still violate
/// the given oracle id?
[[nodiscard]] std::function<bool(const Scenario&)> violatesOracle(
    std::string oracleId, OracleConfig config, GoldenCache* goldenCache = nullptr);

}  // namespace nlft::fuzz
