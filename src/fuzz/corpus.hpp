// Regression corpus: novelty map + persistent JSON case files.
//
// Each corpus entry is a scenario together with the behaviour it pinned when
// first discovered: the outcome class and the canonical behaviour signature.
// The novelty map keys on ScenarioSignature::key() — a scenario only enters
// the corpus when its signature has not been seen before, so the corpus
// grows toward one representative per behaviour class instead of thousands
// of near-duplicates.
//
// Case files are self-contained: tests/corpus/*.json replayed by
// fuzz_corpus_test re-evaluates the scenario and checks that (a) no oracle
// is violated and (b) the outcome and signature still match what the file
// pinned — a behaviour change in the simulator surfaces as a corpus diff,
// not as silent drift. Minimized oracle violations use the same format with
// "expect.violations" listing the oracle ids that MUST fire.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"

namespace nlft::fuzz {

struct CorpusEntry {
  Scenario scenario;
  std::string outcome;     ///< fi::describe of the pinned outcome class
  std::string signature;   ///< ScenarioSignature::canonical()
  std::uint32_t key = 0;   ///< ScenarioSignature::key()
  /// Oracle ids this case is EXPECTED to violate (empty for well-behaved
  /// corpus seeds; non-empty only for pinned known-bug repros, none today).
  std::vector<std::string> expectedViolations;
};

[[nodiscard]] CorpusEntry makeCorpusEntry(const Scenario& scenario,
                                          const ScenarioVerdict& verdict);

[[nodiscard]] obs::JsonValue corpusEntryToJson(const CorpusEntry& entry);
/// Throws std::runtime_error on schema violations.
[[nodiscard]] CorpusEntry corpusEntryFromJson(const obs::JsonValue& json);

/// Deterministic case-file name: "case-<crc32 of the scenario JSON>.json".
/// Keyed on the SCENARIO (not the signature) so two scenarios pinning the
/// same behaviour class can coexist on disk without clobbering each other.
[[nodiscard]] std::string corpusFileName(const CorpusEntry& entry);

/// In-memory corpus with the novelty map.
class Corpus {
 public:
  /// Adds the entry if its signature key is novel; returns true when added.
  bool addIfNovel(CorpusEntry entry);
  /// True when this signature key has been seen (in the corpus or rejected).
  [[nodiscard]] bool seen(std::uint32_t key) const;
  [[nodiscard]] const std::vector<CorpusEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<CorpusEntry> entries_;
  std::map<std::uint32_t, std::size_t> byKey_;
};

/// Writes the entry as a pretty-printed JSON case file. Throws on IO errors.
void saveCorpusEntry(const CorpusEntry& entry, const std::string& path);
/// Reads one case file. Throws std::runtime_error on IO/parse errors.
[[nodiscard]] CorpusEntry loadCorpusEntry(const std::string& path);
/// Loads every *.json in the directory, sorted by file name (deterministic).
[[nodiscard]] std::vector<CorpusEntry> loadCorpusDir(const std::string& dir);

}  // namespace nlft::fuzz
