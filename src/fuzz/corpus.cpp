#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/crc.hpp"

namespace nlft::fuzz {

CorpusEntry makeCorpusEntry(const Scenario& scenario, const ScenarioVerdict& verdict) {
  CorpusEntry entry;
  entry.scenario = scenario;
  entry.outcome = fi::describe(verdict.outcome);
  entry.signature = verdict.signature.canonical();
  entry.key = verdict.signature.key();
  return entry;
}

obs::JsonValue corpusEntryToJson(const CorpusEntry& entry) {
  obs::JsonValue expect = obs::JsonValue::object();
  expect.set("outcome", obs::JsonValue::string(entry.outcome));
  expect.set("signature", obs::JsonValue::string(entry.signature));
  if (!entry.expectedViolations.empty()) {
    obs::JsonValue violations = obs::JsonValue::array();
    for (const std::string& oracle : entry.expectedViolations) {
      violations.push(obs::JsonValue::string(oracle));
    }
    expect.set("violations", std::move(violations));
  }

  obs::JsonValue root = obs::JsonValue::object();
  root.set("format", obs::JsonValue::string("nlft-fuzz-case-v1"));
  root.set("scenario", scenarioToJson(entry.scenario));
  root.set("expect", std::move(expect));
  return root;
}

CorpusEntry corpusEntryFromJson(const obs::JsonValue& json) {
  if (json.kind() != obs::JsonValue::Kind::Object || !json.has("scenario")) {
    throw std::runtime_error("corpusEntryFromJson: expected {format, scenario, expect}");
  }
  if (json.has("format") && json.get("format").asString() != "nlft-fuzz-case-v1") {
    throw std::runtime_error("corpusEntryFromJson: unsupported format '" +
                             json.get("format").asString() + "'");
  }
  CorpusEntry entry;
  entry.scenario = scenarioFromJson(json.get("scenario"));
  if (json.has("expect")) {
    const obs::JsonValue& expect = json.get("expect");
    if (expect.has("outcome")) entry.outcome = expect.get("outcome").asString();
    if (expect.has("signature")) entry.signature = expect.get("signature").asString();
    if (expect.has("violations")) {
      const obs::JsonValue& violations = expect.get("violations");
      for (std::size_t i = 0; i < violations.size(); ++i) {
        entry.expectedViolations.push_back(violations.at(i).asString());
      }
    }
  }
  if (!entry.signature.empty()) {
    entry.key = util::crc32({reinterpret_cast<const std::uint8_t*>(entry.signature.data()),
                             entry.signature.size()});
  }
  return entry;
}

std::string corpusFileName(const CorpusEntry& entry) {
  const std::string encoded = scenarioToJson(entry.scenario).dump();
  const std::uint32_t id = util::crc32(
      {reinterpret_cast<const std::uint8_t*>(encoded.data()), encoded.size()});
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "case-%08x.json", id);
  return buffer;
}

bool Corpus::addIfNovel(CorpusEntry entry) {
  if (byKey_.contains(entry.key)) return false;
  byKey_.emplace(entry.key, entries_.size());
  entries_.push_back(std::move(entry));
  return true;
}

bool Corpus::seen(std::uint32_t key) const { return byKey_.contains(key); }

void saveCorpusEntry(const CorpusEntry& entry, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("saveCorpusEntry: cannot open " + path);
  out << corpusEntryToJson(entry).dump(2) << '\n';
  if (!out) throw std::runtime_error("saveCorpusEntry: write failed for " + path);
}

CorpusEntry loadCorpusEntry(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("loadCorpusEntry: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return corpusEntryFromJson(obs::parseJson(text.str()));
}

std::vector<CorpusEntry> loadCorpusDir(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  std::vector<CorpusEntry> entries;
  entries.reserve(files.size());
  for (const std::string& file : files) entries.push_back(loadCorpusEntry(file));
  return entries;
}

}  // namespace nlft::fuzz
