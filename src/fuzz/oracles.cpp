#include "fuzz/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"
#include "util/crc.hpp"
#include "verify/bbw_configs.hpp"
#include "verify/holistic.hpp"

namespace nlft::fuzz {

namespace {

using bbw::BbwSimConfig;
using bbw::BbwSimResult;
using bbw::BbwSystemSim;

[[nodiscard]] BbwSimConfig simConfigFor(const ScenarioParams& params, std::int64_t horizonUs) {
  BbwSimConfig config;
  config.nodeType = params.nodeType;
  config.initialSpeedMps = params.initialSpeedMps;
  config.pedal = params.pedal;
  config.restartTime = util::Duration::microseconds(params.restartTimeUs);
  config.horizon = util::Duration::microseconds(horizonUs);
  return config;
}

void applyEvent(BbwSystemSim& sim, const ScheduleEvent& event) {
  const util::SimTime at = util::SimTime::fromUs(event.atUs);
  switch (event.kind) {
    case EventKind::ComputationFault: sim.injectComputationFault(event.node, at); break;
    case EventKind::DetectedError: sim.injectDetectedError(event.node, at); break;
    case EventKind::KernelError: sim.injectKernelError(event.node, at); break;
    case EventKind::OmissionFailure: sim.injectOmissionFailure(event.node, at); break;
    case EventKind::ValueFailure: sim.injectValueFailure(event.node, at); break;
    case EventKind::BusCorruption:
      sim.injectBusCorruption(event.node, at, event.flipBits);
      break;
  }
}

[[nodiscard]] BbwSimResult runScenarioSim(const ScenarioParams& params,
                                          const std::vector<ScheduleEvent>& events,
                                          std::int64_t horizonUs,
                                          obs::Registry* metrics = nullptr) {
  BbwSystemSim sim{simConfigFor(params, horizonUs)};
  if (metrics != nullptr) sim.setMetricsRegistry(metrics);
  for (const ScheduleEvent& event : events) applyEvent(sim, event);
  return sim.run();
}

[[nodiscard]] std::uint64_t omissionCount(const BbwSimResult& result) {
  std::uint64_t total = result.commandsOmitted;
  for (const std::uint64_t omissions : result.wheelOmissions) total += omissions;
  return total;
}

/// Mirrors the fi:: system-campaign oracle (docs/SYSTEM_FI.md) so fuzzer
/// outcome classes reconcile with campaign statistics.
[[nodiscard]] fi::SystemOutcome classifyOutcome(const OracleConfig& config,
                                                const BbwSimResult& golden,
                                                const BbwSimResult& run) {
  if (!run.stopped ||
      run.stoppingDistanceM > golden.stoppingDistanceM + config.missedStopMarginM) {
    return fi::SystemOutcome::MissedStop;
  }
  if (run.undetectedValueDeliveries > 0) return fi::SystemOutcome::ValueFailure;
  if (run.failSilentEvents > 0) return fi::SystemOutcome::FailSilentDegradation;
  if (omissionCount(run) > omissionCount(golden) ||
      run.busFramesDropped > golden.busFramesDropped) {
    return fi::SystemOutcome::OmissionDegradation;
  }
  if (std::abs(run.stoppingDistanceM - golden.stoppingDistanceM) > config.maskToleranceM) {
    return fi::SystemOutcome::OmissionDegradation;
  }
  return fi::SystemOutcome::Masked;
}

[[nodiscard]] std::size_t bucketOf(double value, std::initializer_list<double> edges) {
  std::size_t bucket = 0;
  for (const double edge : edges) {
    if (value <= edge) return bucket;
    ++bucket;
  }
  return bucket;
}

[[nodiscard]] std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

[[nodiscard]] const char* nodeTypeName(bbw::NodeType type) {
  return type == bbw::NodeType::Nlft ? "nlft" : "fail-silent";
}

[[nodiscard]] ScenarioSignature makeSignature(const OracleConfig& config,
                                              const Scenario& scenario,
                                              const BbwSimResult& golden,
                                              const BbwSimResult& run,
                                              fi::SystemOutcome outcome) {
  ScenarioSignature sig;
  sig.outcome = fi::describe(outcome);
  sig.nodeType = nodeTypeName(scenario.params.nodeType);
  sig.stopped = run.stopped;
  const double delta = std::abs(run.stoppingDistanceM - golden.stoppingDistanceM);
  sig.distanceBucket =
      bucketOf(delta, {config.maskToleranceM, 2.0, 5.0, config.missedStopMarginM});
  const std::uint64_t extraOmissions =
      omissionCount(run) > omissionCount(golden) ? omissionCount(run) - omissionCount(golden) : 0;
  sig.omissionBucket = static_cast<std::size_t>(std::min<std::uint64_t>(extraOmissions, 3));
  const std::uint64_t extraDrops = run.busFramesDropped > golden.busFramesDropped
                                       ? run.busFramesDropped - golden.busFramesDropped
                                       : 0;
  sig.busDropBucket = static_cast<std::size_t>(std::min<std::uint64_t>(extraDrops, 3));
  sig.nodesDown = run.nodesDownAtEnd.size();
  sig.masking = run.errorsMaskedByTem > 0;
  sig.failSilent = run.failSilentEvents > 0;
  sig.undetectedValue = run.undetectedValueDeliveries > 0;
  for (const ScheduleEvent& event : scenario.events) {
    std::size_t& bucket = sig.eventKindBuckets[static_cast<std::size_t>(event.kind)];
    bucket = std::min<std::size_t>(bucket + 1, 2);
  }
  return sig;
}

}  // namespace

OracleConfig resolveOracleConfig(OracleConfig config) {
  // The registered verifier configurations are immutable, so the derived
  // bounds are process-wide constants; computing them is not free (FT-RTA
  // fixed points), hence the static cache.
  if (config.e2eBoundNlftUs == 0) {
    static const std::int64_t nlftBound = [] {
      const auto bound = verify::computeEndToEndBound(verify::bbwNlftConfig());
      return bound ? bound->sampleToApply().us() : 0;
    }();
    config.e2eBoundNlftUs = nlftBound;
  }
  if (config.e2eBoundFsUs == 0) {
    static const std::int64_t fsBound = [] {
      const auto bound = verify::computeEndToEndBound(verify::bbwFailSilentConfig());
      return bound ? bound->sampleToApply().us() : 0;
    }();
    config.e2eBoundFsUs = fsBound;
  }
  return config;
}

std::size_t outcomeSeverity(fi::SystemOutcome outcome) {
  return static_cast<std::size_t>(outcome);
}

std::string ScenarioSignature::canonical() const {
  std::string line = outcome;
  line += '|';
  line += nodeType;
  line += stopped ? "|stopped" : "|unstopped";
  line += "|d" + std::to_string(distanceBucket);
  line += "|o" + std::to_string(omissionBucket);
  line += "|b" + std::to_string(busDropBucket);
  line += "|down" + std::to_string(nodesDown);
  line += masking ? "|tem" : "|-";
  line += failSilent ? "|fs" : "|-";
  line += undetectedValue ? "|val" : "|-";
  line += "|ev";
  for (const std::size_t bucket : eventKindBuckets) line += std::to_string(bucket);
  return line;
}

std::uint32_t ScenarioSignature::key() const {
  const std::string line = canonical();
  return util::crc32({reinterpret_cast<const std::uint8_t*>(line.data()), line.size()});
}

bbw::BbwSimResult GoldenCache::get(
    const ScenarioParams& params, std::int64_t horizonUs,
    const std::function<void(std::vector<std::uint8_t>&)>& mutateCheckpoint) {
  std::string key = nodeTypeName(params.nodeType);
  key += '|' + fmt(params.initialSpeedMps) + '|' + fmt(params.pedal) + '|' +
         std::to_string(params.restartTimeUs) + '|' + std::to_string(horizonUs);
  {
    std::lock_guard<std::mutex> lock{mutex_};
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Snapshot-resume validation: advance the fault-free producer to mid
  // horizon, checkpoint it there, and take the cached result from a fresh
  // simulation restored from the checkpoint (the restore replays the first
  // half, the replica then finishes the run — 1.5 full runs instead of the
  // 2.0 a full-horizon producer would cost). restoreState throws on a
  // damaged blob or a diverging replay BEFORE anything reaches the cache,
  // so a corrupted checkpoint surfaces as a det.replay violation at the
  // caller rather than a poisoned entry.
  BbwSystemSim producer{simConfigFor(params, horizonUs)};
  producer.runUntil(util::SimTime::fromUs(horizonUs / 2));
  std::vector<std::uint8_t> checkpoint = producer.saveState();
  if (mutateCheckpoint) mutateCheckpoint(checkpoint);
  BbwSystemSim replica{simConfigFor(params, horizonUs)};
  replica.restoreState(checkpoint);
  const bbw::BbwSimResult golden = replica.run();
  std::lock_guard<std::mutex> lock{mutex_};
  return cache_.emplace(key, golden).first->second;
}

ScenarioVerdict evaluateScenario(const Scenario& scenario, const OracleConfig& config,
                                 GoldenCache* goldenCache) {
  ScenarioVerdict verdict;
  GoldenCache localCache;
  GoldenCache& cache = goldenCache != nullptr ? *goldenCache : localCache;

  BbwSimResult golden;
  try {
    golden = cache.get(scenario.params, config.horizonUs, config.corruptReplayCheckpoint);
  } catch (const std::exception& error) {
    // The golden cache's validation restore rejected the checkpoint: report
    // it as a det.replay violation; nothing was cached.
    verdict.violations.push_back(
        {"det.replay",
         std::string{"golden checkpoint restore rejected instead of cached: "} + error.what()});
    return verdict;
  }
  verdict.goldenDistanceM = golden.stoppingDistanceM;
  if (!golden.stopped) return verdict;  // invalid: oracles are vacuous here
  verdict.valid = true;

  obs::Registry metrics;
  const BbwSimResult run =
      runScenarioSim(scenario.params, scenario.events, config.horizonUs, &metrics);
  const std::string fingerprint = metrics.goldenFingerprint();
  verdict.stoppingDistanceM = run.stoppingDistanceM;
  verdict.e2eMaxUs = metrics.gauge("e2e.latency.max_us");
  verdict.outcome = classifyOutcome(config, golden, run);
  verdict.signature = makeSignature(config, scenario, golden, run, verdict.outcome);

  // diff.e2e-bound: the static verifier's sample->apply bound must dominate
  // the measured worst end-to-end latency of this run.
  verdict.e2eBoundUs = scenario.params.nodeType == bbw::NodeType::Nlft
                           ? config.e2eBoundNlftUs
                           : config.e2eBoundFsUs;
  if (verdict.e2eBoundUs > 0 && verdict.e2eMaxUs > static_cast<double>(verdict.e2eBoundUs)) {
    verdict.violations.push_back(
        {"diff.e2e-bound",
         "measured e2e.latency.max_us " + fmt(verdict.e2eMaxUs) + " exceeds the static bound " +
             std::to_string(verdict.e2eBoundUs) + "us for the " +
             nodeTypeName(scenario.params.nodeType) + " deployment"});
  }

  // nlft.single-transient: one transient on the certified NLFT deployment
  // must never miss the stop (value failures are the documented coverage
  // gap and excluded by definition).
  if (scenario.params.nodeType == bbw::NodeType::Nlft && scenario.events.size() == 1 &&
      scenario.events.front().kind != EventKind::ValueFailure &&
      verdict.outcome == fi::SystemOutcome::MissedStop) {
    verdict.violations.push_back(
        {"nlft.single-transient",
         std::string{"single "} + describe(scenario.events.front().kind) + " on node " +
             std::to_string(scenario.events.front().node) + " at " +
             std::to_string(scenario.events.front().atUs) + "us produced a missed stop (" +
             fmt(run.stoppingDistanceM) + "m vs golden " + fmt(golden.stoppingDistanceM) + "m)"});
  }

  // meta.tem-monotone: the fail-silent twin of an NLFT scenario must not
  // fare strictly better, and must not report TEM maskings.
  if (config.checkTemMonotone && scenario.params.nodeType == bbw::NodeType::Nlft) {
    ScenarioParams fsParams = scenario.params;
    fsParams.nodeType = bbw::NodeType::FailSilent;
    const BbwSimResult fsGolden = cache.get(fsParams, config.horizonUs);
    if (fsGolden.stopped) {
      const BbwSimResult fsRun =
          runScenarioSim(fsParams, scenario.events, config.horizonUs);
      const fi::SystemOutcome fsOutcome = classifyOutcome(config, fsGolden, fsRun);
      if (outcomeSeverity(verdict.outcome) > outcomeSeverity(fsOutcome)) {
        verdict.violations.push_back(
            {"meta.tem-monotone",
             std::string{"TEM-enabled outcome '"} + fi::describe(verdict.outcome) +
                 "' is more severe than the TEM-disabled outcome '" + fi::describe(fsOutcome) +
                 "' on the same schedule"});
      }
      if (fsRun.errorsMaskedByTem > 0) {
        verdict.violations.push_back(
            {"meta.tem-monotone",
             "fail-silent run reports " + std::to_string(fsRun.errorsMaskedByTem) +
                 " TEM maskings — masking machinery active with TEM disabled"});
      }
    }
  }

  // det.replay, re-pointed at snapshot-resume: advance a twin of the
  // scenario to a mid-stop split point, checkpoint it, restore the
  // checkpoint into a fresh simulation and run that one to completion. The
  // resumed run must reproduce the straight run's metrics fingerprint
  // byte-for-byte (the metrics registry is attached BEFORE restoreState, so
  // the replayed prefix streams the same live samples as the straight run),
  // and a checkpoint the restore layer rejects is itself a violation.
  if (config.checkReplayDeterminism) {
    const std::int64_t splitUs =
        std::max<std::int64_t>(static_cast<std::int64_t>(golden.stopTimeS * 500000.0), 1000);
    try {
      BbwSystemSim twin{simConfigFor(scenario.params, config.horizonUs)};
      for (const ScheduleEvent& event : scenario.events) applyEvent(twin, event);
      twin.runUntil(util::SimTime::fromUs(splitUs));
      std::vector<std::uint8_t> checkpoint = twin.saveState();
      if (config.corruptReplayCheckpoint) config.corruptReplayCheckpoint(checkpoint);
      obs::Registry replayMetrics;
      BbwSystemSim resumed{simConfigFor(scenario.params, config.horizonUs)};
      resumed.setMetricsRegistry(&replayMetrics);
      resumed.restoreState(checkpoint);
      (void)resumed.run();
      if (replayMetrics.goldenFingerprint() != fingerprint) {
        verdict.violations.push_back(
            {"det.replay",
             "metrics fingerprint differs between the straight run and the snapshot-resume "
             "replay split at " + std::to_string(splitUs) +
                 "us — ambient nondeterminism or a drifting restore"});
      }
    } catch (const std::exception& error) {
      verdict.violations.push_back(
          {"det.replay",
           std::string{"snapshot-resume replay at "} + std::to_string(splitUs) +
               "us rejected the checkpoint: " + error.what()});
    }
  }

  return verdict;
}

std::function<bool(const Scenario&)> violatesOracle(std::string oracleId, OracleConfig config,
                                                    GoldenCache* goldenCache) {
  return [oracleId = std::move(oracleId), config,
          goldenCache](const Scenario& scenario) {
    const ScenarioVerdict verdict = evaluateScenario(scenario, config, goldenCache);
    for (const OracleViolation& violation : verdict.violations) {
      if (violation.oracle == oracleId) return true;
    }
    return false;
  };
}

}  // namespace nlft::fuzz
