// The coverage-guided fuzzing loop (docs/FUZZING.md).
//
// The search runs in ROUNDS. Within a round the corpus is FROZEN: a batch of
// scenarios is generated (fresh random draws, or mutations of snapshot
// entries once the corpus is non-empty) and executed on
// exec::runChunkedCampaign — generation happens inside runOne from the
// chunk's forked Rng against the frozen snapshot, and the per-chunk result
// lists merge in chunk order, so the full round outcome is a pure function
// of (seed, round, chunkSize) at ANY thread count. Between rounds the merged
// results are folded into the corpus and novelty map sequentially, in that
// deterministic order. Oracle violations are deduplicated by (oracle,
// signature) and shrunk to minimal repros.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/parallel_for.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"

namespace nlft::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t budget = 200;    ///< total scenario executions
  std::size_t batchSize = 25;  ///< scenarios per round (corpus freeze window)
  exec::Parallelism parallelism{};
  ScenarioLimits limits{};
  OracleConfig oracle{};  ///< resolved internally (resolveOracleConfig)
  /// Probability of mutating a corpus entry instead of drawing a fresh
  /// random scenario, once the corpus is non-empty.
  double mutateProbability = 0.75;
  /// Shrink at most this many distinct (oracle, signature) violations; the
  /// rest are still counted and reported unshrunk.
  std::size_t maxShrinks = 4;
  std::size_t shrinkEvaluations = 400;  ///< predicate budget per shrink
};

struct FuzzViolation {
  std::string oracle;
  std::string message;
  Scenario scenario;  ///< as found
  Scenario shrunk;    ///< minimized (== scenario when shrinking was skipped)
  bool wasShrunk = false;
  std::size_t shrinkEvaluations = 0;
};

struct FuzzReport {
  std::size_t executed = 0;
  std::size_t valid = 0;  ///< scenarios whose fault-free reference stopped
  std::size_t rounds = 0;
  std::map<std::string, std::size_t> outcomeCounts;          ///< by outcome class
  std::map<std::string, std::size_t> violationCounts;        ///< by oracle id
  Corpus corpus;
  std::vector<FuzzViolation> violations;  ///< deduplicated, shrunk repros

  /// Deterministic JSON summary — byte-identical for identical searches
  /// (no wall-clock, no absolute paths).
  [[nodiscard]] obs::JsonValue toJson() const;
};

/// Runs the search. Deterministic for fixed (seed, budget, batchSize,
/// chunkSize) at any thread count.
[[nodiscard]] FuzzReport runFuzzer(const FuzzConfig& config);

/// Replays one case: evaluates the scenario and reports the verdict (used by
/// tools/nlft-fuzz --replay and fuzz_corpus_test). The verdict's violations
/// list is the pass/fail criterion against entry.expectedViolations.
[[nodiscard]] ScenarioVerdict replayCase(const CorpusEntry& entry, const FuzzConfig& config);

}  // namespace nlft::fuzz
