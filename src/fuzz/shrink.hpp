// Scenario minimization (shrinking).
//
// Given a failing scenario and a predicate "does this still fail?", the
// shrinker produces a smaller scenario that still fails:
//
//   1. greedy schedule-event deletion — ddmin-style: first try dropping
//      contiguous halves/quarters of the schedule, then single events, and
//      restart whenever a deletion sticks, until no single event can be
//      removed;
//   2. parameter bisection — each scalar deployment parameter is bisected
//      toward its default value (binary search on the failing/passing
//      boundary, fixed iteration count so runtime is bounded);
//   3. time bisection — each surviving event's injection time is bisected
//      toward the earliest legal instant, which normalises repros that
//      differ only in when the fault lands.
//
// The predicate is typically violatesOracle(...) from oracles.hpp, so a
// shrink preserves the SPECIFIC oracle violation, not just "something is
// wrong". Every candidate is canonicalised with clampScenario before
// evaluation; the result is therefore directly serialisable as a corpus
// case. Deterministic: no randomness, candidate order is fixed.
#pragma once

#include <cstddef>
#include <functional>

#include "fuzz/scenario.hpp"

namespace nlft::fuzz {

struct ShrinkResult {
  Scenario scenario;            ///< minimized, canonical, still failing
  std::size_t evaluations = 0;  ///< predicate calls spent
  std::size_t removedEvents = 0;
};

/// Shrinks `seed` while `stillFails` holds. `seed` itself must fail (the
/// shrinker asserts this with the first evaluation and returns it unchanged
/// if not). `maxEvaluations` bounds the total predicate calls.
[[nodiscard]] ShrinkResult shrinkScenario(const Scenario& seed,
                                          const std::function<bool(const Scenario&)>& stillFails,
                                          const ScenarioLimits& limits = {},
                                          std::size_t maxEvaluations = 400);

}  // namespace nlft::fuzz
