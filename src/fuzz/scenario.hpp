// Structured scenario model of the coverage-guided fuzzer (docs/FUZZING.md).
//
// A Scenario is everything one adversarial experiment needs to be replayed
// bit-identically: the deployment-parameter perturbations (node type, initial
// speed, pedal position, restart time — each confined to the legal range the
// static verifier certifies the deployment for) plus a fault SCHEDULE, an
// ordered list of injection events that map 1:1 onto the BbwSystemSim
// injection hooks. Correlated bursts are simply several kernel-error events
// sharing one instant, so the schedule subsumes every scenario kind of the
// fi:: system campaigns.
//
// Scenarios serialise to self-contained JSON case files (obs::json, sorted
// keys, fixed number format) — the corpus under tests/corpus/ and every
// minimized repro the fuzzer emits use exactly this format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bbw/params.hpp"
#include "net/bus.hpp"
#include "obs/json.hpp"
#include "util/rng.hpp"

namespace nlft::fuzz {

/// One injection event; kinds map 1:1 onto the BbwSystemSim hooks.
enum class EventKind : std::uint8_t {
  ComputationFault,  ///< one copy computes wrong (maskable by TEM)
  DetectedError,     ///< EDM-detected error in one copy
  KernelError,       ///< node crash + restart after restartTime
  OmissionFailure,   ///< the node's next result is suppressed
  ValueFailure,      ///< every copy wrong identically (coverage gap)
  BusCorruption,     ///< flip bits on the node's next bus frame
};
inline constexpr std::size_t kEventKindCount = 6;

[[nodiscard]] const char* describe(EventKind kind);
/// Inverse of describe(); throws std::invalid_argument for unknown names.
[[nodiscard]] EventKind parseEventKind(const std::string& name);

struct ScheduleEvent {
  EventKind kind = EventKind::ComputationFault;
  net::NodeId node = 1;  ///< 1..6 (duplex CU pair, four wheel nodes)
  std::int64_t atUs = 0;
  std::vector<std::uint32_t> flipBits;  ///< BusCorruption only

  friend bool operator==(const ScheduleEvent&, const ScheduleEvent&) = default;
};

/// Deployment-parameter perturbations. The ranges in ScenarioLimits keep
/// every value inside what the verifier's certified deployment tolerates
/// (and inside the region where the fault-free stop completes well before
/// the horizon, so the missed-stop oracle is meaningful).
struct ScenarioParams {
  bbw::NodeType nodeType = bbw::NodeType::Nlft;
  double initialSpeedMps = 27.8;
  double pedal = 1.0;
  std::int64_t restartTimeUs = 3'000'000;

  friend bool operator==(const ScenarioParams&, const ScenarioParams&) = default;
};

/// Legal ranges of the generator; clampScenario() enforces them.
struct ScenarioLimits {
  double minSpeedMps = 15.0;
  double maxSpeedMps = 40.0;
  double minPedal = 0.6;
  double maxPedal = 1.0;
  std::int64_t minRestartUs = 1'000'000;
  std::int64_t maxRestartUs = 5'000'000;
  std::int64_t minEventUs = 100'000;    ///< after the control loop settles
  std::int64_t maxEventUs = 8'000'000;  ///< inside every legal stop
  std::size_t maxEvents = 8;
  std::size_t maxFlipBits = 3;
  std::uint32_t flipBitSpace = 512;  ///< net::flipFrameBit index space
  net::NodeId nodeCount = 6;
};

struct Scenario {
  ScenarioParams params;
  std::vector<ScheduleEvent> events;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Clamps every field into the legal ranges and canonicalises the event
/// order (by time, then node, then kind) so equal scenarios serialise
/// identically regardless of how they were produced.
void clampScenario(Scenario& scenario, const ScenarioLimits& limits = {});

/// True when the scenario is already clamped and canonical.
[[nodiscard]] bool isLegalScenario(const Scenario& scenario, const ScenarioLimits& limits = {});

/// Uniform random scenario inside the legal ranges (already canonical).
[[nodiscard]] Scenario randomScenario(util::Rng& rng, const ScenarioLimits& limits = {});

/// Deterministic JSON encoding (sorted keys; see docs/FUZZING.md).
[[nodiscard]] obs::JsonValue scenarioToJson(const Scenario& scenario);
/// Parses a scenario back; throws std::runtime_error on schema violations.
[[nodiscard]] Scenario scenarioFromJson(const obs::JsonValue& json);

}  // namespace nlft::fuzz
