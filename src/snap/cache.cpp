#include "snap/cache.hpp"

namespace nlft::snap {

const std::vector<std::uint8_t>* SnapshotCache::find(Key key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->blob;
}

void SnapshotCache::insert(Key key, std::vector<std::uint8_t> blob) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytesInUse_ -= it->second->blob.size();
    lru_.erase(it->second);
    entries_.erase(it);
  }
  insertedBytes_ += blob.size();
  bytesInUse_ += blob.size();
  lru_.push_front(Entry{key, std::move(blob)});
  entries_.emplace(key, lru_.begin());
  while (bytesInUse_ > maxBytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytesInUse_ -= victim.blob.size();
    entries_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace nlft::snap
