// Versioned, sectioned, CRC-protected binary snapshot format.
//
// Every saveState() blob in the framework (hw::Machine, bbw::BbwSystemSim)
// uses this container so the failure modes are uniform and testable:
//
//   * a header pins the snapshot KIND (machine vs system) and a per-kind
//     FORMAT VERSION — restoring a blob of the wrong kind or of a newer
//     version fails loudly instead of misparsing;
//   * the payload is split into named sections, each protected by its own
//     CRC-32 — a truncated or bit-flipped blob is rejected with a
//     diagnostic NAMING the damaged section ("snapshot section 'mem': CRC
//     mismatch"), which tests/snapshot_roundtrip_test.cpp pins.
//
// Layout (all integers little-endian):
//
//   [u32 magic 'NLSN'] [u16 kind] [u16 version]
//   repeated sections:
//     [u8 nameLen] [name bytes] [u32 payloadSize] [payload] [u32 crc32]
//
// Writing and reading are strictly sequential; the reader verifies section
// names in order, so a blob is parsed exactly the way it was produced.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nlft::snap {

/// Snapshot kinds (the `kind` header field).
inline constexpr std::uint16_t kMachineSnapshot = 1;  ///< hw::Machine
inline constexpr std::uint16_t kSystemSnapshot = 2;   ///< bbw::BbwSystemSim

/// Header magic: "NLSN" in little-endian byte order.
inline constexpr std::uint32_t kBlobMagic = 0x4E534C4Eu;

/// Thrown on any malformed blob: wrong magic/kind, version mismatch,
/// truncation, or a section CRC failure. The message names the section
/// where the damage was detected.
class BlobError : public std::runtime_error {
 public:
  explicit BlobError(const std::string& message) : std::runtime_error(message) {}
};

/// Sequential writer. Usage:
///   BlobWriter w{kMachineSnapshot, kVersion};
///   w.beginSection("cpu"); w.u32(...); ... w.endSection();
///   std::vector<std::uint8_t> blob = w.finish();
class BlobWriter {
 public:
  BlobWriter(std::uint16_t kind, std::uint16_t version);

  void beginSection(std::string_view name);
  void endSection();

  void u8(std::uint8_t value);
  void u16(std::uint16_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void boolean(bool value);
  void str(std::string_view value);           ///< u32 length + bytes
  void u32Vec(std::span<const std::uint32_t> values);
  void u64Vec(std::span<const std::uint64_t> values);

  /// Seals the blob. The writer must not be reused afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t sectionPayloadStart_ = 0;  ///< 0 = no open section
  std::string sectionName_;
};

/// Sequential reader; the constructor validates magic, kind and version.
class BlobReader {
 public:
  BlobReader(std::span<const std::uint8_t> bytes, std::uint16_t expectedKind,
             std::uint16_t expectedVersion);

  /// Opens the next section, verifying its name and payload CRC.
  void openSection(std::string_view name);
  /// Asserts the open section was fully consumed and closes it.
  void closeSection();

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint32_t> u32Vec();
  [[nodiscard]] std::vector<std::uint64_t> u64Vec();

  /// Asserts the whole blob was consumed (no trailing garbage).
  void finish() const;

 private:
  [[nodiscard]] std::span<const std::uint8_t> take(std::size_t count);
  [[noreturn]] void fail(const std::string& what) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
  std::size_t sectionEnd_ = 0;  ///< 0 = no open section
  std::string sectionName_;
};

}  // namespace nlft::snap
