// Bounded LRU cache of snapshot blobs, keyed by simulated time.
//
// Campaigns fork every experiment from the nearest cached snapshot of a
// shared fast-forwarded baseline. The cache is byte-bounded, not
// entry-bounded, because blob sizes vary with the machine image; eviction is
// least-recently-used. Every campaign chunk owns a PRIVATE cache instance,
// so hit/miss counters are pure functions of the chunk contents and stay
// bit-identical at every thread count (the snap.* golden counters rely on
// this).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace nlft::snap {

class SnapshotCache {
 public:
  /// A snapshot is identified by the simulated time it was taken at (an
  /// instruction index for machine-level snapshots, microseconds for
  /// system-level ones) plus a caller-defined stream tag (e.g. which TEM
  /// copy band the baseline belongs to).
  struct Key {
    std::uint64_t time = 0;
    std::uint64_t tag = 0;
    friend bool operator==(Key, Key) = default;
  };

  explicit SnapshotCache(std::size_t maxBytes) : maxBytes_(maxBytes) {}

  /// Returns the cached blob (marking it most-recently-used), or nullptr.
  /// Counts a hit or a miss.
  [[nodiscard]] const std::vector<std::uint8_t>* find(Key key);

  /// Inserts (or replaces) a blob, then evicts least-recently-used entries
  /// until the cache fits maxBytes again. A blob larger than the whole
  /// budget is still kept (alone) so forking always has a resume point.
  void insert(Key key, std::vector<std::uint8_t> blob);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t insertedBytes() const { return insertedBytes_; }
  [[nodiscard]] std::size_t bytesInUse() const { return bytesInUse_; }
  [[nodiscard]] std::size_t entries() const { return entries_.size(); }
  [[nodiscard]] std::size_t maxBytes() const { return maxBytes_; }

 private:
  struct KeyHash {
    std::size_t operator()(Key key) const {
      // Splitmix-style scramble; tag occupies the high bits.
      std::uint64_t x = key.time ^ (key.tag * 0x9E3779B97F4A7C15ull);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  struct Entry {
    Key key;
    std::vector<std::uint8_t> blob;
  };

  std::size_t maxBytes_;
  std::size_t bytesInUse_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertedBytes_ = 0;
};

}  // namespace nlft::snap
