#include "snap/blob.hpp"

#include <bit>
#include <cstring>

#include "util/crc.hpp"

namespace nlft::snap {

namespace {

void appendLe(std::vector<std::uint8_t>& bytes, std::uint64_t value, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

[[nodiscard]] std::uint64_t readLe(std::span<const std::uint8_t> bytes) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

}  // namespace

BlobWriter::BlobWriter(std::uint16_t kind, std::uint16_t version) {
  appendLe(bytes_, kBlobMagic, 4);
  appendLe(bytes_, kind, 2);
  appendLe(bytes_, version, 2);
}

void BlobWriter::beginSection(std::string_view name) {
  if (sectionPayloadStart_ != 0) {
    throw BlobError("BlobWriter: section '" + sectionName_ + "' still open");
  }
  bytes_.push_back(static_cast<std::uint8_t>(name.size()));
  bytes_.insert(bytes_.end(), name.begin(), name.end());
  appendLe(bytes_, 0, 4);  // payload size, patched by endSection()
  sectionPayloadStart_ = bytes_.size();
  sectionName_ = name;
}

void BlobWriter::endSection() {
  if (sectionPayloadStart_ == 0) throw BlobError("BlobWriter: no open section");
  const std::size_t payloadSize = bytes_.size() - sectionPayloadStart_;
  for (std::size_t i = 0; i < 4; ++i) {
    bytes_[sectionPayloadStart_ - 4 + i] = static_cast<std::uint8_t>(payloadSize >> (8 * i));
  }
  const std::uint32_t crc = util::crc32(
      {bytes_.data() + sectionPayloadStart_, payloadSize});
  appendLe(bytes_, crc, 4);
  sectionPayloadStart_ = 0;
  sectionName_.clear();
}

void BlobWriter::u8(std::uint8_t value) { appendLe(bytes_, value, 1); }
void BlobWriter::u16(std::uint16_t value) { appendLe(bytes_, value, 2); }
void BlobWriter::u32(std::uint32_t value) { appendLe(bytes_, value, 4); }
void BlobWriter::u64(std::uint64_t value) { appendLe(bytes_, value, 8); }
void BlobWriter::i64(std::int64_t value) { appendLe(bytes_, static_cast<std::uint64_t>(value), 8); }
void BlobWriter::f64(double value) { appendLe(bytes_, std::bit_cast<std::uint64_t>(value), 8); }
void BlobWriter::boolean(bool value) { appendLe(bytes_, value ? 1 : 0, 1); }

void BlobWriter::str(std::string_view value) {
  u32(static_cast<std::uint32_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void BlobWriter::u32Vec(std::span<const std::uint32_t> values) {
  u32(static_cast<std::uint32_t>(values.size()));
  for (const std::uint32_t value : values) u32(value);
}

void BlobWriter::u64Vec(std::span<const std::uint64_t> values) {
  u32(static_cast<std::uint32_t>(values.size()));
  for (const std::uint64_t value : values) u64(value);
}

std::vector<std::uint8_t> BlobWriter::finish() {
  if (sectionPayloadStart_ != 0) {
    throw BlobError("BlobWriter: section '" + sectionName_ + "' still open at finish");
  }
  return std::move(bytes_);
}

BlobReader::BlobReader(std::span<const std::uint8_t> bytes, std::uint16_t expectedKind,
                       std::uint16_t expectedVersion)
    : bytes_(bytes) {
  if (bytes_.size() < 8) throw BlobError("snapshot header: truncated blob");
  if (readLe(bytes_.subspan(0, 4)) != kBlobMagic) {
    throw BlobError("snapshot header: bad magic (not a snapshot blob)");
  }
  const auto kind = static_cast<std::uint16_t>(readLe(bytes_.subspan(4, 2)));
  const auto version = static_cast<std::uint16_t>(readLe(bytes_.subspan(6, 2)));
  if (kind != expectedKind) {
    throw BlobError("snapshot header: kind " + std::to_string(kind) + ", expected " +
                    std::to_string(expectedKind));
  }
  if (version != expectedVersion) {
    throw BlobError("snapshot header: format version " + std::to_string(version) +
                    ", this build reads version " + std::to_string(expectedVersion) +
                    " — refusing to parse");
  }
  cursor_ = 8;
}

void BlobReader::fail(const std::string& what) const {
  const std::string where =
      sectionName_.empty() ? std::string{"snapshot"} : "snapshot section '" + sectionName_ + "'";
  throw BlobError(where + ": " + what);
}

std::span<const std::uint8_t> BlobReader::take(std::size_t count) {
  const std::size_t limit = sectionEnd_ != 0 ? sectionEnd_ : bytes_.size();
  if (cursor_ + count > limit) {
    fail(sectionEnd_ != 0 ? "field overruns section (corrupted blob)" : "truncated blob");
  }
  const std::span<const std::uint8_t> view = bytes_.subspan(cursor_, count);
  cursor_ += count;
  return view;
}

void BlobReader::openSection(std::string_view name) {
  if (sectionEnd_ != 0) fail("previous section still open");
  if (cursor_ >= bytes_.size()) {
    sectionName_ = name;
    fail("missing (truncated blob)");
  }
  const auto nameLen = static_cast<std::size_t>(bytes_[cursor_]);
  ++cursor_;
  if (cursor_ + nameLen + 4 > bytes_.size()) {
    sectionName_ = name;
    fail("header truncated");
  }
  const std::string found{reinterpret_cast<const char*>(bytes_.data() + cursor_), nameLen};
  cursor_ += nameLen;
  if (found != name) {
    sectionName_ = name;
    fail("expected here, found section '" + found + "'");
  }
  sectionName_ = found;
  const auto payloadSize = static_cast<std::size_t>(readLe(bytes_.subspan(cursor_, 4)));
  cursor_ += 4;
  if (cursor_ + payloadSize + 4 > bytes_.size()) fail("truncated blob");
  const std::uint32_t stored =
      static_cast<std::uint32_t>(readLe(bytes_.subspan(cursor_ + payloadSize, 4)));
  const std::uint32_t actual = util::crc32(bytes_.subspan(cursor_, payloadSize));
  if (stored != actual) fail("CRC mismatch (corrupted or truncated blob)");
  sectionEnd_ = cursor_ + payloadSize;
}

void BlobReader::closeSection() {
  if (sectionEnd_ == 0) fail("no open section");
  if (cursor_ != sectionEnd_) fail("trailing bytes in section (corrupted blob)");
  cursor_ += 4;  // the CRC trailer, already verified
  sectionEnd_ = 0;
  sectionName_.clear();
}

std::uint8_t BlobReader::u8() { return static_cast<std::uint8_t>(readLe(take(1))); }
std::uint16_t BlobReader::u16() { return static_cast<std::uint16_t>(readLe(take(2))); }
std::uint32_t BlobReader::u32() { return static_cast<std::uint32_t>(readLe(take(4))); }
std::uint64_t BlobReader::u64() { return readLe(take(8)); }
std::int64_t BlobReader::i64() { return static_cast<std::int64_t>(readLe(take(8))); }
double BlobReader::f64() { return std::bit_cast<double>(readLe(take(8))); }
bool BlobReader::boolean() { return readLe(take(1)) != 0; }

std::string BlobReader::str() {
  const std::size_t size = u32();
  const std::span<const std::uint8_t> view = take(size);
  return {reinterpret_cast<const char*>(view.data()), view.size()};
}

std::vector<std::uint32_t> BlobReader::u32Vec() {
  const std::size_t size = u32();
  std::vector<std::uint32_t> values;
  values.reserve(size);
  for (std::size_t i = 0; i < size; ++i) values.push_back(u32());
  return values;
}

std::vector<std::uint64_t> BlobReader::u64Vec() {
  const std::size_t size = u32();
  std::vector<std::uint64_t> values;
  values.reserve(size);
  for (std::size_t i = 0; i < size; ++i) values.push_back(u64());
  return values;
}

void BlobReader::finish() const {
  if (sectionEnd_ != 0) {
    throw BlobError("snapshot section '" + sectionName_ + "': left open at finish");
  }
  if (cursor_ != bytes_.size()) throw BlobError("snapshot: trailing bytes after last section");
}

}  // namespace nlft::snap
