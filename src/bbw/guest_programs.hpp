// Registry of the interpreted (toy-ISA) guest programs.
//
// Everything that iterates "all BBW guest tasks" — the nlft-analyze CLI,
// analysis tests, campaign benches — goes through this table instead of
// hard-coding the individual factories, so a new guest program is picked up
// everywhere by adding one row.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "faults/campaign.hpp"

namespace nlft::bbw {

struct GuestProgram {
  std::string name;
  const char* source = nullptr;
  /// Image with nominal inputs, derived budget and MMU regions applied.
  fi::TaskImage (*makeNominalImage)() = nullptr;
  /// Cached static analysis of the program (shared across calls).
  const analysis::ProgramAnalysis& (*analyze)() = nullptr;
};

/// All interpreted guest programs: wheel, checked-wheel, central unit.
[[nodiscard]] const std::vector<GuestProgram>& guestPrograms();

}  // namespace nlft::bbw
