// Longitudinal vehicle and wheel dynamics for the brake-by-wire study.
//
// A quarter-car-per-wheel model: the body decelerates under the sum of the
// four tyre forces; each wheel spins down under its brake torque; tyre force
// follows a Burckhardt friction curve over longitudinal slip. Deliberately
// simple — just rich enough that losing a wheel node measurably degrades
// braking (the paper's "degraded functionality mode") and that an ABS-style
// slip controller has something to regulate.
#pragma once

#include <array>
#include <cstddef>

namespace nlft::bbw {

/// Wheel indices used throughout the BBW code.
enum Wheel : std::size_t { FrontLeft = 0, FrontRight = 1, RearLeft = 2, RearRight = 3 };
inline constexpr std::size_t kWheelCount = 4;

struct VehicleParams {
  double massKg = 1500.0;
  double wheelRadiusM = 0.30;
  double wheelInertia = 1.2;        ///< kg m^2
  double gravity = 9.81;
  // Burckhardt dry-asphalt friction coefficients: mu(s) = c1(1-e^{-c2 s}) - c3 s.
  double burckhardtC1 = 1.2801;
  double burckhardtC2 = 23.99;
  double burckhardtC3 = 0.52;
  double rollingResistance = 0.015;  ///< fraction of weight, always opposing motion
  /// Per-wheel road-friction scale (1.0 = the Burckhardt curve as-is);
  /// lets scenarios model split-mu surfaces, e.g. right wheels on ice.
  std::array<double, 4> frictionScale{1.0, 1.0, 1.0, 1.0};
};

/// Longitudinal friction coefficient at a given slip (>= 0).
[[nodiscard]] double burckhardtMu(const VehicleParams& params, double slip);

class Vehicle {
 public:
  explicit Vehicle(VehicleParams params = {});

  /// Resets to an initial speed (m/s); wheels start rolling freely.
  void reset(double speedMps);

  /// Sets the brake torque command (N m, >= 0) of one wheel; the value holds
  /// until overwritten (zero-order hold, like a real actuator interface).
  void setBrakeTorque(std::size_t wheel, double torqueNm);

  /// Advances the dynamics by dt seconds (fixed-step forward Euler; stable
  /// for dt <= ~2 ms with these parameters).
  void step(double dtSeconds);

  [[nodiscard]] double speedMps() const { return speed_; }
  [[nodiscard]] double distanceM() const { return distance_; }
  [[nodiscard]] bool stopped() const { return speed_ <= 0.01; }
  [[nodiscard]] double wheelSpeedRadps(std::size_t wheel) const { return omega_[wheel]; }
  /// Longitudinal slip of a wheel in [0, 1].
  [[nodiscard]] double slip(std::size_t wheel) const;
  [[nodiscard]] double brakeTorque(std::size_t wheel) const { return torque_[wheel]; }
  [[nodiscard]] const VehicleParams& params() const { return params_; }

 private:
  VehicleParams params_;
  double speed_ = 0.0;
  double distance_ = 0.0;
  std::array<double, kWheelCount> omega_{};
  std::array<double, kWheelCount> torque_{};
};

}  // namespace nlft::bbw
