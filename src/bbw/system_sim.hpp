// Closed-loop distributed brake-by-wire simulation (Fig. 4 of the paper).
//
// Six computer nodes on one FlexRay-style bus:
//   node 1, 2  — duplex central unit (active replication): pedal ->
//                per-wheel torque requests, broadcast each cycle;
//   node 3..6  — simplex wheel nodes: slip control, local brake actuator.
//
// Every node runs the real-time kernel; critical control tasks execute under
// TEM (NLFT nodes) or as single copies (fail-silent baseline). Faults can be
// injected into any node mid-stop and the effect shows up directly in the
// stopping distance — the system-level consequence of node-level fault
// tolerance.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "bbw/control.hpp"
#include "bbw/params.hpp"
#include "bbw/vehicle.hpp"
#include "core/policies.hpp"
#include "core/tem.hpp"
#include "net/membership.hpp"
#include "rtkernel/kernel.hpp"
#include "sim/simulator.hpp"

namespace nlft::obs {
class Registry;
class TraceRecorder;
}  // namespace nlft::obs

namespace nlft::bbw {

using util::Duration;
using util::SimTime;

/// Format version of BbwSystemSim::saveState() blobs. Bump on any layout
/// change; restoreState() refuses blobs of any other version.
inline constexpr std::uint16_t kSystemStateVersion = 1;

/// Node ids on the bus.
inline constexpr net::NodeId kCuA = 1;
inline constexpr net::NodeId kCuB = 2;
inline constexpr net::NodeId kWheelNodeBase = 3;  // +0..3 = FL, FR, RL, RR

/// The fixed deployment constants shared by the simulator AND the static
/// verifier (src/verify): TDMA bus layout and per-task timing of every node.
/// Single source of truth so the configuration the verifier certifies is
/// exactly the one the simulator executes.
struct BbwDeployment {
  net::TdmaConfig bus;
  Duration controlPeriod{};   ///< periodic control tasks (CU + wheels)
  int controlPriority = 0;
  Duration cuControlWcet{};   ///< single-copy time of brake-distribution
  Duration wheelControlWcet{};///< single-copy time of wheel-control
  int emergencyPriority = 0;  ///< sporadic emergency-brake task (CUs)
  Duration emergencyWcet{};
  Duration emergencyDeadline{};
  int diagnosticPriority = 0; ///< non-critical diagnostic task (all nodes)
  Duration diagnosticPeriod{};
  Duration diagnosticWcet{};
};

[[nodiscard]] const BbwDeployment& bbwDeployment();

struct BbwSimConfig {
  NodeType nodeType = NodeType::Nlft;
  double initialSpeedMps = 27.8;   ///< ~100 km/h
  double pedal = 1.0;              ///< panic braking
  /// Optional pedal profile (simulated seconds -> pedal position [0,1]);
  /// overrides `pedal` when set. Sampled once per CU job (read-input phase).
  std::function<double(double)> pedalProfile;
  Duration controlPeriod = Duration::milliseconds(5);
  Duration plantStep = Duration::milliseconds(1);
  Duration horizon = Duration::seconds(15);
  Duration restartTime = Duration::seconds(3);  ///< node reboot + diagnosis (mu_R)
  VehicleParams vehicle{};
  CentralUnitConfig centralUnit{};
};

struct BbwSimResult {
  bool stopped = false;
  double stoppingDistanceM = 0.0;
  double stopTimeS = 0.0;
  std::uint64_t commandFramesDelivered = 0;   ///< accepted by the duplex arbiters
  std::uint64_t duplicateCommandsDropped = 0; ///< partner copies discarded
  std::uint64_t busFramesDropped = 0;
  std::set<net::NodeId> nodesDownAtEnd;
  /// Per wheel node: jobs completed / omissions (kernel stats).
  std::array<std::uint64_t, kWheelCount> wheelCompletions{};
  std::array<std::uint64_t, kWheelCount> wheelOmissions{};
  std::uint64_t cuCompletions = 0;
  std::uint64_t errorsMaskedByTem = 0;   ///< summed over all NLFT nodes
  std::uint64_t failSilentEvents = 0;
  /// Control results suppressed by injectOmissionFailure (node-level
  /// omission failures: no command that period).
  std::uint64_t commandsOmitted = 0;
  /// Results corrupted identically in every copy by injectValueFailure that
  /// reached the actuator/bus undetected (the system-level coverage gap).
  std::uint64_t undetectedValueDeliveries = 0;
  /// Emergency-brake press -> first wheel actuation latency (zero if the
  /// emergency path was never exercised).
  Duration emergencyBrakeLatency{};
};

/// Monotone counters of a live system simulation, observable at any instant
/// (run() reports the same quantities, finalized). The snapshot campaign
/// engine (docs/SNAPSHOT.md "system campaigns") compares PER-INTERVAL deltas
/// of these against a precomputed golden timeline: equal deltas over
/// consecutive checkpoints mean the faulted run processed the exact same
/// event stream as the fault-free run over that interval.
struct BbwSystemCounters {
  std::uint64_t eventsProcessed = 0;
  std::uint64_t busCycles = 0;
  std::uint64_t busFramesDelivered = 0;
  std::uint64_t busFramesDropped = 0;
  std::uint64_t busCrcRejected = 0;
  std::uint64_t busCorruptionsInjected = 0;
  std::uint64_t commandFramesDelivered = 0;
  std::uint64_t duplicateCommandsDropped = 0;
  std::uint64_t commandsOmitted = 0;
  std::uint64_t undetectedValueDeliveries = 0;
  std::uint64_t failSilentEvents = 0;
  std::uint64_t kernelErrors = 0;
  std::uint64_t cpuDispatches = 0;
  std::uint64_t cpuPreemptions = 0;
  std::uint64_t controlReleases = 0;
  std::uint64_t controlDeadlineMisses = 0;
  std::uint64_t controlBudgetOverruns = 0;
  std::uint64_t cuCompletions = 0;
  std::uint64_t errorsMaskedByTem = 0;
  std::array<std::uint64_t, kWheelCount> wheelCompletions{};
  std::array<std::uint64_t, kWheelCount> wheelOmissions{};

  friend bool operator==(const BbwSystemCounters&, const BbwSystemCounters&) = default;

  /// Field-wise difference against an EARLIER snapshot of the same
  /// simulation (all counters are monotone, so this never underflows).
  [[nodiscard]] BbwSystemCounters minus(const BbwSystemCounters& earlier) const;
};

class BbwSystemSim {
 public:
  explicit BbwSystemSim(BbwSimConfig config = {});
  ~BbwSystemSim();
  BbwSystemSim(const BbwSystemSim&) = delete;
  BbwSystemSim& operator=(const BbwSystemSim&) = delete;

  /// Corrupts the result of one copy of the node's next control job
  /// (a silent data fault: NLFT masks it by comparison+vote; a fail-silent
  /// node delivers the wrong value undetected).
  void injectComputationFault(net::NodeId node, SimTime at);

  /// Injects an EDM-detected error into the node's next control-task copy
  /// (NLFT: copy terminated + replacement; FS baseline: node fail-silent).
  void injectDetectedError(net::NodeId node, SimTime at);

  /// Injects an error into the node's kernel: the node becomes silent and
  /// restarts after restartTime (both node types, Section 2.2 strategy 3).
  void injectKernelError(net::NodeId node, SimTime at);

  /// Forces the node's next delivered control result to be suppressed
  /// before it reaches the actuator/bus — the node-level OMISSION failure
  /// (P_OM): no command that period; receivers bridge with the previous
  /// value (Section 2.2 "the system is able to use a previous value").
  void injectOmissionFailure(net::NodeId node, SimTime at);

  /// The coverage-gap injection: the node's next control job computes a
  /// wrong result in EVERY copy identically, so neither the comparison nor
  /// the vote can detect it — an undetected VALUE failure delivered to the
  /// system (counted in BbwSimResult::undetectedValueDeliveries).
  void injectValueFailure(net::NodeId node, SimTime at);

  /// Corrupts the node's next bus frame in transit: the CRC check drops it
  /// at every receiver, so one command/heartbeat is lost. Wheel nodes hold
  /// the previous command (Section 2.2: "the system is able to use a
  /// previous value").
  void injectBusCorruption(net::NodeId node, SimTime at);

  /// As above but with explicit fault locations: flips the given frame bits
  /// (payload first, then CRC; indices wrap — see net::TdmaBus).
  void injectBusCorruption(net::NodeId node, SimTime at, std::vector<std::uint32_t> flipBits);

  /// Presses the emergency-brake input at `at`: both CUs release a SPORADIC
  /// task whose full-brake command travels in the event-triggered (dynamic)
  /// segment — the paper's Section 2.1 argument for mixed time/event
  /// triggering ("fast handling of sporadic activities"). Wheel nodes apply
  /// it the moment it arrives, without waiting for the next periodic
  /// command. Returns nothing; the observed latency is in the result.
  void pressEmergencyBrake(SimTime at);

  /// Streams a line-oriented system event trace (fault firings, kernel
  /// errors, node silences/restarts, membership transitions, bus drops,
  /// vehicle stop) into `sink` — the input of the golden-trace harness.
  /// Must be called before run(); one sink per simulation.
  void setTraceSink(std::function<void(const std::string&)> sink);

  /// Attaches a metrics registry (not owned; must outlive the simulation).
  /// During run() the simulation folds its deterministic counters into it:
  /// kernel scheduling (preemptions, releases, budget overruns), TEM copy
  /// executions and vote outcomes, bus frames/CRC rejects/drops, and the
  /// system-level failure counters. Call before run().
  void setMetricsRegistry(obs::Registry* registry);

  /// Attaches a span/trace recorder (not owned). Every system event that
  /// goes to the trace sink is mirrored as a Chrome instant event (pid =
  /// node id), and at the end of run() each node's CPU execution segments
  /// are exported as complete spans (one tid per task). Call before run().
  void setTraceRecorder(obs::TraceRecorder* recorder);

  /// The membership service (peer views, liveness) for assertions and
  /// observer taps.
  [[nodiscard]] const net::MembershipService& membership() const;
  [[nodiscard]] net::MembershipService& membership();

  /// Runs until the vehicle stops or the horizon elapses.
  [[nodiscard]] BbwSimResult run();

  // --- Replay checkpoints (snapshot campaign engine, docs/SNAPSHOT.md) ---
  //
  // A system simulation owns live kernels, executors and scheduled closures,
  // so its state is CHECKPOINTED BY REPLAY rather than serialized flat: the
  // blob records the configuration digest, the full injection schedule, the
  // simulated clock and a fingerprint of the deterministic state.
  // restoreState() re-applies the schedule to a freshly constructed,
  // identically configured simulation, advances it to the saved clock and
  // verifies the fingerprint — so a restored simulation is the REAL thing,
  // not a deserialized approximation, and any divergence fails loudly.

  /// Advances the simulation to `until` (or until the vehicle stops /
  /// events run out) WITHOUT finalizing a result. Callable repeatedly with
  /// nondecreasing times; a later run() continues to the horizon and
  /// finalizes as usual.
  void runUntil(SimTime until);

  /// Serializes a replay checkpoint at the current simulated time into a
  /// versioned, sectioned, CRC-32 protected blob (src/snap/blob.hpp).
  [[nodiscard]] std::vector<std::uint8_t> saveState() const;

  /// Restores a saveState() checkpoint into THIS simulation, which must be
  /// freshly constructed with the same BbwSimConfig (and the same pedal
  /// profile, which the digest can only check for presence) and never
  /// advanced or injected into. Throws snap::BlobError on a damaged or
  /// version-mismatched blob and std::runtime_error if the configuration
  /// digest differs or the replayed state misses the checkpoint
  /// fingerprint.
  void restoreState(std::span<const std::uint8_t> blob);

  /// 64-bit digest of the deterministic simulation state: simulated clock,
  /// event/bus/kernel counters, vehicle kinematics, per-node liveness and
  /// task statistics. Equal fingerprints at equal simulated times are the
  /// snapshot layer's definition of state equality.
  [[nodiscard]] std::uint64_t stateFingerprint() const;

  /// Snapshot of the monotone counters at the current instant.
  [[nodiscard]] BbwSystemCounters counterSnapshot() const;

  /// 64-bit digest of the EVOLUTION-RELEVANT state only: clock, pending
  /// event count, vehicle kinematics, held commands/limits/sequences,
  /// emergency latching, per-node kernel liveness and armed one-shot faults,
  /// plus the membership, bus and duplex-arbiter state digests. Unlike
  /// stateFingerprint() it EXCLUDES monotone bookkeeping (processed events,
  /// delivery counters, task statistics), so a faulted simulation whose
  /// disturbance has fully healed produces the golden digest again — the
  /// rejoin condition of the snapshot campaign engine. Counter deltas are
  /// compared separately via counterSnapshot().
  [[nodiscard]] std::uint64_t behaviorFingerprint() const;

  /// True when no injected one-shot fault is still armed: every
  /// corrupt/detected-error/omission/value flag has been consumed by a
  /// control job, no value-failure job is in flight, and the bus holds no
  /// armed corruption or babbler. Scheduled-but-unfired injection closures
  /// are invisible here; callers gate on the injection time separately.
  [[nodiscard]] bool injectionQuiescent() const;

  [[nodiscard]] sim::Simulator& simulator();
  [[nodiscard]] const Vehicle& vehicle() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nlft::bbw
