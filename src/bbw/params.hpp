// Parameters of the paper's dependability analysis (Section 3.3).
#pragma once

#include <cstdint>

namespace nlft::bbw {

/// Node type compared in the paper's analysis.
enum class NodeType : std::uint8_t {
  FailSilent,  // conventional fail-silent node: every detected error stops the node
  Nlft,        // light-weight NLFT node: most transients are masked by TEM
};

/// System functionality requirement (Section 3.2).
enum class FunctionalityMode : std::uint8_t {
  Full,      // all four wheel nodes + one central-unit node must work
  Degraded,  // at least three wheel nodes + one central-unit node must work
};

/// Rates and probabilities of the reliability study. All rates are per hour.
struct ReliabilityParameters {
  double lambdaPermanent = 1.82e-5;   ///< permanent fault rate (MIL-HDBK-217 derived)
  double lambdaTransient = 1.82e-4;   ///< transient fault rate (10x permanent)
  double coverage = 0.99;             ///< C_D: P(error detected | fault occurred)
  double pMask = 0.90;                ///< P_T: P(masked by TEM | detected transient)
  double pOmission = 0.05;            ///< P_OM: P(omission failure | detected transient)
  double pFailSilent = 0.05;          ///< P_FS: P(fail-silent failure | detected transient)
  double muRestart = 1.2e3;           ///< mu_R: restart+diagnosis+reintegration (3 s)
  double muOmissionRepair = 2.25e3;   ///< mu_OM: reintegration after omission (1.6 s)

  /// The paper's baseline parameter set.
  [[nodiscard]] static ReliabilityParameters paperDefaults() { return {}; }

  /// Total activated-fault rate of one node.
  [[nodiscard]] double lambdaTotal() const { return lambdaPermanent + lambdaTransient; }

  /// Rate at which one NLFT node suffers a fault that is NOT masked by TEM
  /// (permanent faults plus undetected or unmaskable transients).
  [[nodiscard]] double unmaskedRate() const {
    return lambdaPermanent + lambdaTransient * (1.0 - coverage * pMask);
  }
};

}  // namespace nlft::bbw
