#include "bbw/markov_models.hpp"

namespace nlft::bbw {

using rel::CtmcModel;
using rel::StateId;

rel::CtmcModel centralUnitChain(NodeType type, const ReliabilityParameters& p,
                                double permanentRepairRate) {
  CtmcModel m;
  const double lambda = p.lambdaTotal();
  const double undetected = 2.0 * lambda * (1.0 - p.coverage);

  if (type == NodeType::FailSilent) {
    // Fig. 6. Any detected fault silences the node; transients repair at muR.
    const StateId s0 = m.addState("0: both up");
    const StateId s1 = m.addState("1: one permanently down");
    const StateId s2 = m.addState("2: one restarting (transient)");
    const StateId f = m.addState("F: failure", /*failure=*/true);

    m.addTransition(s0, s1, 2.0 * p.lambdaPermanent * p.coverage);
    m.addTransition(s0, s2, 2.0 * p.lambdaTransient * p.coverage);
    m.addTransition(s0, f, undetected);
    m.addTransition(s2, s0, p.muRestart);
    // With one node down (permanently or during restart), any further
    // activated fault on the remaining node takes the service out.
    m.addTransition(s1, f, lambda);
    m.addTransition(s2, f, lambda);
    if (permanentRepairRate > 0.0) {
      m.addTransition(s1, s0, permanentRepairRate);
      m.addTransition(f, s0, permanentRepairRate);
    }
    return m;
  }

  // Fig. 7. NLFT node: detected transients are masked with pMask (no state
  // change), cause an omission with pOmission, or fail-silence with
  // pFailSilent. Once only one node remains, its unmasked faults are fatal.
  const StateId s0 = m.addState("0: both up");
  const StateId s1 = m.addState("1: one permanently down");
  const StateId s2 = m.addState("2: one restarting (fail-silent transient)");
  const StateId s3 = m.addState("3: one in omission recovery");
  const StateId f = m.addState("F: failure", /*failure=*/true);

  m.addTransition(s0, s1, 2.0 * p.lambdaPermanent * p.coverage);
  m.addTransition(s0, s2, 2.0 * p.lambdaTransient * p.coverage * p.pFailSilent);
  m.addTransition(s0, s3, 2.0 * p.lambdaTransient * p.coverage * p.pOmission);
  m.addTransition(s0, f, undetected);
  m.addTransition(s2, s0, p.muRestart);
  m.addTransition(s3, s0, p.muOmissionRepair);
  const double loneNodeFatal = p.unmaskedRate();
  m.addTransition(s1, f, loneNodeFatal);
  m.addTransition(s2, f, loneNodeFatal);
  m.addTransition(s3, f, loneNodeFatal);
  if (permanentRepairRate > 0.0) {
    m.addTransition(s1, s0, permanentRepairRate);
    m.addTransition(f, s0, permanentRepairRate);
  }
  return m;
}

rel::CtmcModel wheelSubsystemChain(NodeType type, FunctionalityMode mode,
                                   const ReliabilityParameters& p,
                                   double permanentRepairRate) {
  CtmcModel m;
  const double lambda = p.lambdaTotal();

  if (mode == FunctionalityMode::Full) {
    if (type == NodeType::FailSilent) {
      // Equivalent chain for the Fig. 8 RBD: any activated fault in any of
      // the four nodes interrupts full functionality.
      const StateId s0 = m.addState("0: all four up");
      const StateId f = m.addState("F: failure", /*failure=*/true);
      m.addTransition(s0, f, 4.0 * lambda);
      if (permanentRepairRate > 0.0) m.addTransition(f, s0, permanentRepairRate);
      return m;
    }
    // Fig. 10: only unmasked faults are visible at the system level.
    const StateId s0 = m.addState("0: all four up (masked transients stay here)");
    const StateId f = m.addState("F: failure", /*failure=*/true);
    m.addTransition(s0, f, 4.0 * p.unmaskedRate());
    if (permanentRepairRate > 0.0) m.addTransition(f, s0, permanentRepairRate);
    return m;
  }

  // Degraded mode: one node may be lost; re-integration is allowed.
  const double undetected = 4.0 * lambda * (1.0 - p.coverage);
  if (type == NodeType::FailSilent) {
    // Fig. 9.
    const StateId s0 = m.addState("0: all four up");
    const StateId s1 = m.addState("1: one permanently down");
    const StateId s2 = m.addState("2: one restarting (transient)");
    const StateId f = m.addState("F: failure", /*failure=*/true);

    m.addTransition(s0, s1, 4.0 * p.lambdaPermanent * p.coverage);
    m.addTransition(s0, s2, 4.0 * p.lambdaTransient * p.coverage);
    m.addTransition(s0, f, undetected);
    m.addTransition(s2, s0, p.muRestart);
    // Exactly three nodes deliver service in states 1 and 2; a further
    // activated fault in any of them drops below the 3-node requirement.
    m.addTransition(s1, f, 3.0 * lambda);
    m.addTransition(s2, f, 3.0 * lambda);
    if (permanentRepairRate > 0.0) {
      m.addTransition(s1, s0, permanentRepairRate);
      m.addTransition(f, s0, permanentRepairRate);
    }
    return m;
  }

  // Fig. 11.
  const StateId s0 = m.addState("0: all four up");
  const StateId s1 = m.addState("1: one permanently down");
  const StateId s2 = m.addState("2: one restarting (fail-silent transient)");
  const StateId s3 = m.addState("3: one in omission recovery");
  const StateId f = m.addState("F: failure", /*failure=*/true);

  m.addTransition(s0, s1, 4.0 * p.lambdaPermanent * p.coverage);
  m.addTransition(s0, s2, 4.0 * p.lambdaTransient * p.coverage * p.pFailSilent);
  m.addTransition(s0, s3, 4.0 * p.lambdaTransient * p.coverage * p.pOmission);
  m.addTransition(s0, f, undetected);
  m.addTransition(s2, s0, p.muRestart);
  m.addTransition(s3, s0, p.muOmissionRepair);
  const double threeNodesFatal = 3.0 * p.unmaskedRate();
  m.addTransition(s1, f, threeNodesFatal);
  m.addTransition(s2, f, threeNodesFatal);
  m.addTransition(s3, f, threeNodesFatal);
  if (permanentRepairRate > 0.0) {
    m.addTransition(s1, s0, permanentRepairRate);
    m.addTransition(f, s0, permanentRepairRate);
  }
  return m;
}

rel::CtmcModel votingTriplexChain(const ReliabilityParameters& p, double permanentRepairRate) {
  // 2-of-3 majority voting: value errors are outvoted (no coverage term);
  // a transient only costs the brief state-resynchronisation outage of the
  // affected node. With one node gone, the remaining pair can detect but
  // not resolve a disagreement: any further activated fault is fatal.
  CtmcModel m;
  const double lambda = p.lambdaTotal();
  const StateId s0 = m.addState("0: three up");
  const StateId s1 = m.addState("1: one permanently down");
  const StateId s2 = m.addState("2: one resynchronising (transient)");
  const StateId f = m.addState("F: failure", /*failure=*/true);

  m.addTransition(s0, s1, 3.0 * p.lambdaPermanent);
  m.addTransition(s0, s2, 3.0 * p.lambdaTransient);
  m.addTransition(s2, s0, p.muOmissionRepair);
  m.addTransition(s1, f, 2.0 * lambda);
  m.addTransition(s2, f, 2.0 * lambda);
  if (permanentRepairRate > 0.0) {
    m.addTransition(s1, s0, permanentRepairRate);
    m.addTransition(f, s0, permanentRepairRate);
  }
  return m;
}

rel::Rbd wheelSubsystemRbdFullFs(const ReliabilityParameters& p) {
  rel::Rbd rbd;
  std::vector<rel::BlockId> wheels;
  const double lambda = p.lambdaTotal();
  for (const char* name : {"front-left", "front-right", "rear-left", "rear-right"}) {
    wheels.push_back(rbd.component(name, rel::exponentialReliability(lambda)));
  }
  rbd.setRoot(rbd.series(wheels));
  return rbd;
}

rel::FaultTree systemFaultTree(NodeType type, FunctionalityMode mode,
                               const ReliabilityParameters& p) {
  rel::FaultTree tree;
  const auto cu = tree.basicEvent("central unit subsystem",
                                  rel::ctmcReliability(centralUnitChain(type, p)));
  const auto wns = tree.basicEvent("wheel node subsystem",
                                   rel::ctmcReliability(wheelSubsystemChain(type, mode, p)));
  tree.setTop(tree.orGate({cu, wns}));
  return tree;
}

BbwStudy::BbwStudy(ReliabilityParameters p) : params_{p} {}

double BbwStudy::centralUnitReliability(NodeType type, double tHours) const {
  return centralUnitChain(type, params_).reliability(tHours);
}

double BbwStudy::wheelSubsystemReliability(NodeType type, FunctionalityMode mode,
                                           double tHours) const {
  return wheelSubsystemChain(type, mode, params_).reliability(tHours);
}

double BbwStudy::systemReliability(NodeType type, FunctionalityMode mode, double tHours) const {
  const rel::IndependentSeriesSystem system{centralUnitChain(type, params_),
                                            wheelSubsystemChain(type, mode, params_)};
  return system.reliability(tHours);
}

double BbwStudy::systemMttfHours(NodeType type, FunctionalityMode mode) const {
  const rel::IndependentSeriesSystem system{centralUnitChain(type, params_),
                                            wheelSubsystemChain(type, mode, params_)};
  return system.meanTimeToFailure();
}

}  // namespace nlft::bbw
