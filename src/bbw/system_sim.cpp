#include "bbw/system_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include <map>

#include "bbw/cu_task.hpp"
#include "core/replication.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snap/blob.hpp"
#include "util/state_hash.hpp"

namespace nlft::bbw {

BbwSystemCounters BbwSystemCounters::minus(const BbwSystemCounters& earlier) const {
  BbwSystemCounters delta;
  delta.eventsProcessed = eventsProcessed - earlier.eventsProcessed;
  delta.busCycles = busCycles - earlier.busCycles;
  delta.busFramesDelivered = busFramesDelivered - earlier.busFramesDelivered;
  delta.busFramesDropped = busFramesDropped - earlier.busFramesDropped;
  delta.busCrcRejected = busCrcRejected - earlier.busCrcRejected;
  delta.busCorruptionsInjected = busCorruptionsInjected - earlier.busCorruptionsInjected;
  delta.commandFramesDelivered = commandFramesDelivered - earlier.commandFramesDelivered;
  delta.duplicateCommandsDropped = duplicateCommandsDropped - earlier.duplicateCommandsDropped;
  delta.commandsOmitted = commandsOmitted - earlier.commandsOmitted;
  delta.undetectedValueDeliveries = undetectedValueDeliveries - earlier.undetectedValueDeliveries;
  delta.failSilentEvents = failSilentEvents - earlier.failSilentEvents;
  delta.kernelErrors = kernelErrors - earlier.kernelErrors;
  delta.cpuDispatches = cpuDispatches - earlier.cpuDispatches;
  delta.cpuPreemptions = cpuPreemptions - earlier.cpuPreemptions;
  delta.controlReleases = controlReleases - earlier.controlReleases;
  delta.controlDeadlineMisses = controlDeadlineMisses - earlier.controlDeadlineMisses;
  delta.controlBudgetOverruns = controlBudgetOverruns - earlier.controlBudgetOverruns;
  delta.cuCompletions = cuCompletions - earlier.cuCompletions;
  delta.errorsMaskedByTem = errorsMaskedByTem - earlier.errorsMaskedByTem;
  for (std::size_t w = 0; w < kWheelCount; ++w) {
    delta.wheelCompletions[w] = wheelCompletions[w] - earlier.wheelCompletions[w];
    delta.wheelOmissions[w] = wheelOmissions[w] - earlier.wheelOmissions[w];
  }
  return delta;
}

namespace {
constexpr std::uint32_t kMsgCommand = 0xC0DE0001;
constexpr std::uint32_t kMsgWheelStatus = 0xC0DE0002;
constexpr std::uint32_t kMsgEmergency = 0xC0DE0003;

using StateHash = util::StateHash;
}  // namespace

const BbwDeployment& bbwDeployment() {
  static const BbwDeployment deployment = [] {
    BbwDeployment d;
    d.bus.slotLength = Duration::microseconds(500);
    d.bus.staticSchedule = {kCuA, kCuB, kWheelNodeBase + 0, kWheelNodeBase + 1,
                            kWheelNodeBase + 2, kWheelNodeBase + 3};
    d.bus.dynamicMinislots = 4;  // event-triggered segment (diagnostics)
    d.bus.minislotLength = Duration::microseconds(250);
    d.controlPeriod = Duration::milliseconds(5);
    d.controlPriority = 10;
    d.cuControlWcet = Duration::microseconds(400);
    d.wheelControlWcet = Duration::microseconds(300);
    d.emergencyPriority = 12;  // above the periodic control task
    d.emergencyWcet = Duration::microseconds(150);
    d.emergencyDeadline = Duration::milliseconds(5);
    d.diagnosticPriority = 1;
    d.diagnosticPeriod = Duration::milliseconds(50);
    d.diagnosticWcet = Duration::microseconds(100);
    return d;
  }();
  return deployment;
}

struct BbwSystemSim::Impl {
  explicit Impl(BbwSimConfig cfg)
      : config{cfg}, bus{simulator, bbwDeployment().bus}, membership{simulator, bus},
        vehicle{cfg.vehicle} {}

  struct Node {
    net::NodeId id = 0;
    std::unique_ptr<rt::Cpu> cpu;
    std::unique_ptr<rt::RtKernel> kernel;
    std::unique_ptr<tem::TemExecutor> temExecutor;
    std::unique_ptr<tem::FailSilentExecutor> fsExecutor;
    rt::TaskId controlTask{};
    rt::TaskId emergencyTask{};  // CUs only
    // One-shot fault-injection flags, consumed by the next control job.
    bool corruptSecondCopy = false;
    bool detectedErrorNextCopy = false;
    bool omitNextResult = false;
    bool valueFailureArmed = false;
    std::uint64_t valueFailureJob = ~0ULL;  // job whose copies all compute wrong
    // Input snapshot taken once per job and reused by every copy, preserving
    // replica determinism (read input once per job, Fig. 2 task model).
    std::array<std::uint32_t, 4> jobInput{};
    std::uint64_t snapshotJob = ~0ULL;
    // Wheel nodes: command sequence captured with the input snapshot, so the
    // e2e.latency sample spans pedal-read (CU) -> torque-apply (this job).
    std::uint64_t snapshotSeq = ~0ULL;
  };

  BbwSimConfig config;
  sim::Simulator simulator;
  net::TdmaBus bus;
  net::MembershipService membership;
  Vehicle vehicle;
  std::vector<Node> nodes;  // index i -> node id i+1

  std::array<std::uint32_t, kWheelCount> lastCommandQ8{};
  // Per-wheel duplex arbitration of the two CUs' command streams: the first
  // valid copy of each command sequence wins, the partner's is dropped.
  std::array<tem::DuplexArbiter, kWheelCount> commandArbiter{
      tem::DuplexArbiter{tem::DuplexArbiter::Policy::FirstValid},
      tem::DuplexArbiter{tem::DuplexArbiter::Policy::FirstValid},
      tem::DuplexArbiter{tem::DuplexArbiter::Policy::FirstValid},
      tem::DuplexArbiter{tem::DuplexArbiter::Policy::FirstValid}};
  std::array<std::int32_t, kWheelCount> wheelLimitQ8{-1, -1, -1, -1};
  // End-to-end latency bookkeeping (simulated clock): when each command
  // sequence's pedal input was sampled on a CU, which sequence each wheel
  // last received, and which it already measured (one sample per wheel and
  // sequence, taken at the first actuator apply).
  std::map<std::uint64_t, SimTime> commandSampleTime;
  std::array<std::uint64_t, kWheelCount> lastCommandSeq{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  std::array<std::uint64_t, kWheelCount> lastMeasuredSeq{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  std::uint64_t commandFramesDelivered = 0;
  std::uint64_t failSilentEvents = 0;
  std::uint64_t commandsOmitted = 0;
  std::uint64_t undetectedValueDeliveries = 0;
  double stopTimeS = 0.0;
  bool vehicleStopped = false;
  std::optional<SimTime> emergencyPressedAt;
  std::optional<SimTime> emergencyAppliedAt;
  bool emergencyLatched = false;  // the pedal sensor also shows full braking
  std::function<void(const std::string&)> traceSink;
  obs::Registry* metrics = nullptr;
  obs::TraceRecorder* recorder = nullptr;
  bool tapsWired = false;

  /// One entry per public injection/press call, in call order — the replay
  /// schedule a restoreState() re-applies to a fresh simulation.
  struct LoggedInjection {
    enum class Kind : std::uint16_t {
      Computation = 1,
      DetectedError = 2,
      KernelError = 3,
      Omission = 4,
      ValueFailure = 5,
      BusCorruption = 6,
      BusCorruptionBits = 7,
      EmergencyBrake = 8,
    };
    Kind kind{};
    net::NodeId node = 0;
    SimTime at;
    std::vector<std::uint32_t> flipBits;  ///< BusCorruptionBits only
  };
  std::vector<LoggedInjection> injectionLog;
  bool advanced = false;  ///< any simulated time has elapsed (run/runUntil)

  /// Emits one trace line, prefixed with the simulated time in microseconds.
  void trace(const std::string& message) {
    if (!traceSink) return;
    traceSink("t=" + std::to_string(simulator.now().us()) + " " + message);
  }

  /// Mirrors one system event into the Chrome-trace recorder. Every trace()
  /// call site has exactly one record() companion so the differential test
  /// can reconcile recorder event counts against the golden-trace lines.
  void record(net::NodeId pid, const std::string& name, const std::string& category,
              const std::string& detail = {}) {
    if (!recorder) return;
    recorder->instant(pid, 0, name, category, simulator.now(), detail);
  }

  Node& node(net::NodeId id) { return nodes[id - 1]; }
  [[nodiscard]] static bool isWheel(net::NodeId id) { return id >= kWheelNodeBase; }
  [[nodiscard]] static std::size_t wheelIndex(net::NodeId id) { return id - kWheelNodeBase; }

  void build() {
    for (net::NodeId id = kCuA; id <= kWheelNodeBase + 3; ++id) {
      membership.addNode(id);
    }
    membership.setAppReceive(
        [this](net::NodeId receiver, net::NodeId sender, const std::vector<std::uint32_t>& data) {
          onAppData(receiver, sender, data);
        });

    for (net::NodeId id = kCuA; id <= kWheelNodeBase + 3; ++id) {
      nodes.emplace_back();
      Node& n = nodes.back();
      n.id = id;
      n.cpu = std::make_unique<rt::Cpu>(simulator);
      n.kernel = std::make_unique<rt::RtKernel>(simulator, *n.cpu);
      n.kernel->setFailSilentHook([this, id] { onNodeSilent(id, /*scheduleRestart=*/true); });
      n.kernel->setResultSink([this, id](const rt::JobResult& result) { onResult(id, result); });

      const BbwDeployment& deployment = bbwDeployment();
      rt::TaskConfig control;
      control.name = isWheel(id) ? "wheel-control" : "brake-distribution";
      control.priority = deployment.controlPriority;
      control.period = config.controlPeriod;
      control.wcet = isWheel(id) ? deployment.wheelControlWcet : deployment.cuControlWcet;

      auto behavior = [this, id](const tem::CopyContext& context) {
        return controlCopy(id, context);
      };
      if (config.nodeType == NodeType::Nlft) {
        n.temExecutor = std::make_unique<tem::TemExecutor>(*n.kernel);
        n.controlTask = n.temExecutor->addCriticalTask(control, behavior);
      } else {
        n.fsExecutor = std::make_unique<tem::FailSilentExecutor>(*n.kernel);
        n.controlTask = n.fsExecutor->addTask(control, behavior);
      }

      if (!isWheel(id)) {
        // Sporadic emergency-brake task (event-triggered path, Section 2.1):
        // released on the pedal-press event, its command bypasses the
        // periodic schedule via the dynamic segment at top priority.
        rt::TaskConfig emergency;
        emergency.name = "emergency-brake";
        emergency.priority = deployment.emergencyPriority;
        emergency.relativeDeadline = deployment.emergencyDeadline;
        emergency.wcet = deployment.emergencyWcet;
        auto emergencyBehavior = [](const tem::CopyContext&) {
          tem::CopyPlan plan;
          plan.executionTime = bbwDeployment().emergencyWcet;
          plan.result = {kMsgEmergency};
          return plan;
        };
        if (n.temExecutor) {
          n.emergencyTask = n.temExecutor->addCriticalTask(emergency, emergencyBehavior);
        } else {
          n.emergencyTask = n.fsExecutor->addTask(emergency, emergencyBehavior);
        }
      } else {
        // Wheels listen for emergency frames directly on the bus (the
        // membership service ignores non-heartbeat traffic).
        bus.attach(id, [this, id](const net::Frame& frame) {
          if (frame.payload.empty() || frame.payload[0] != kMsgEmergency) return;
          if (!membership.alive(id)) return;
          const std::size_t w = wheelIndex(id);
          const auto fullTorque = distributeFixedPoint(256);
          lastCommandQ8[w] = static_cast<std::uint32_t>(fullTorque[w]);
          vehicle.setBrakeTorque(w, static_cast<double>(fullTorque[w]) / 256.0);
          if (!emergencyAppliedAt) emergencyAppliedAt = simulator.now();
        });
      }

      // A non-critical diagnostic task rides the dynamic segment.
      rt::TaskConfig diagnostic;
      diagnostic.name = "diagnostic";
      diagnostic.priority = deployment.diagnosticPriority;
      diagnostic.period = deployment.diagnosticPeriod;
      diagnostic.wcet = deployment.diagnosticWcet;
      tem::addNonCriticalTask(*n.kernel, diagnostic, [this, id](const tem::CopyContext&) {
        tem::CopyPlan plan;
        plan.executionTime = bbwDeployment().diagnosticWcet;
        plan.result = {kMsgWheelStatus};
        bus.sendDynamic(id, id, {kMsgWheelStatus, static_cast<std::uint32_t>(id)});
        return plan;
      });

      n.kernel->start();
    }

    membership.start();
    schedulePlantStep();
  }

  tem::CopyPlan controlCopy(net::NodeId id, const tem::CopyContext& context) {
    Node& n = node(id);
    tem::CopyPlan plan;
    plan.executionTime =
        isWheel(id) ? bbwDeployment().wheelControlWcet : bbwDeployment().cuControlWcet;

    if (context.jobIndex != n.snapshotJob) {
      // Read-input phase: snapshot the sensors once per job (the input read
      // happens at the start of the first copy, before any fault strikes).
      n.snapshotJob = context.jobIndex;
      if (n.valueFailureArmed) {
        n.valueFailureArmed = false;
        n.valueFailureJob = context.jobIndex;
      }
      if (isWheel(id)) {
        const std::size_t w = wheelIndex(id);
        n.jobInput[0] = lastCommandQ8[w];
        n.jobInput[1] = static_cast<std::uint32_t>(std::lround(vehicle.slip(w) * 256.0));
        n.jobInput[2] = static_cast<std::uint32_t>(wheelLimitQ8[w]);
        n.snapshotSeq = lastCommandSeq[w];
      } else {
        // The pedal is read HERE; the job's sequence number equals its job
        // index, so the e2e.latency clock for that sequence starts now (the
        // earlier of the two CU replicas wins, which only widens the sample).
        commandSampleTime.try_emplace(context.jobIndex, simulator.now());
        double pedal = config.pedalProfile
                           ? config.pedalProfile(simulator.now().toSeconds())
                           : config.pedal;
        // An emergency press latches the pedal input: the event-triggered
        // message delivers the FIRST actuation, the periodic path sustains it.
        if (emergencyLatched) pedal = 1.0;
        n.jobInput[0] = static_cast<std::uint32_t>(std::lround(pedal * 256.0));
      }
    }

    if (n.detectedErrorNextCopy && context.copyIndex == 1) {
      n.detectedErrorNextCopy = false;
      plan.end = tem::CopyPlan::End::DetectedError;
      plan.executionTime = Duration::microseconds(120);
      plan.error = {rt::ErrorEvent::Source::HardwareException, 0};
      return plan;
    }

    if (isWheel(id)) {
      std::int32_t newLimit = 0;
      const std::int32_t torque = wheelControlFixedPoint(
          static_cast<std::int32_t>(n.jobInput[0]), static_cast<std::int32_t>(n.jobInput[1]),
          static_cast<std::int32_t>(n.jobInput[2]), &newLimit);
      plan.result = {static_cast<std::uint32_t>(torque), static_cast<std::uint32_t>(newLimit)};
    } else {
      const double pedal = static_cast<double>(n.jobInput[0]) / 256.0;
      const auto torques = distributeBrakeForce(config.centralUnit, pedal);
      plan.result.reserve(kWheelCount);
      for (double torque : torques) {
        plan.result.push_back(static_cast<std::uint32_t>(std::lround(torque * 256.0)));
      }
    }

    if (n.corruptSecondCopy && context.copyIndex == 2) {
      n.corruptSecondCopy = false;
      plan.result[0] ^= 1u << 7;  // silent data corruption
    }
    if (context.jobIndex == n.valueFailureJob) {
      // Coverage-gap fault: every copy computes the same wrong torque, so
      // comparison and vote pass it through (bit 16 = 256 Nm in q8.8).
      plan.result[0] ^= 1u << 16;
    }
    return plan;
  }

  void onResult(net::NodeId id, const rt::JobResult& result) {
    if (!isWheel(id) && node(id).emergencyTask == result.task &&
        !result.data.empty() && result.data[0] == kMsgEmergency) {
      bus.sendDynamic(id, 0 /* wins every minislot arbitration */, {kMsgEmergency});
      return;
    }
    if (node(id).controlTask == result.task) {
      Node& n = node(id);
      if (n.omitNextResult) {
        // Injected omission failure: the write-output phase is suppressed;
        // the command for this period is simply missing (P_OM).
        n.omitNextResult = false;
        ++commandsOmitted;
        trace("omission node=" + std::to_string(id) + " job=" + std::to_string(result.jobIndex));
        record(id, "omission", "failure", "job=" + std::to_string(result.jobIndex));
        return;
      }
      if (result.jobIndex == n.valueFailureJob) {
        n.valueFailureJob = ~0ULL;
        ++undetectedValueDeliveries;
        trace("undetected-value node=" + std::to_string(id) +
              " job=" + std::to_string(result.jobIndex));
        record(id, "undetected-value", "failure", "job=" + std::to_string(result.jobIndex));
      }
      if (isWheel(id)) {
        const std::size_t w = wheelIndex(id);
        wheelLimitQ8[w] = static_cast<std::int32_t>(result.data[1]);
        vehicle.setBrakeTorque(w, static_cast<double>(result.data[0]) / 256.0);
        observeEndToEnd(w, n.snapshotSeq);
      } else {
        // Replica determinism: both CUs tag the command of job k with
        // sequence number k, so receivers can arbitrate the duplex pair.
        std::vector<std::uint32_t> payload;
        payload.reserve(2 + result.data.size());
        payload.push_back(kMsgCommand);
        payload.push_back(static_cast<std::uint32_t>(result.jobIndex));
        payload.insert(payload.end(), result.data.begin(), result.data.end());
        membership.queueAppData(id, std::move(payload));
      }
    }
  }

  void onAppData(net::NodeId receiver, net::NodeId sender,
                 const std::vector<std::uint32_t>& data) {
    if (data.empty() || data[0] != kMsgCommand) return;
    if (!isWheel(receiver) || sender > kCuB) return;
    if (data.size() < 2 + kWheelCount) return;
    const std::size_t w = wheelIndex(receiver);
    const std::uint64_t sequence = data[1];
    const int replica = sender == kCuA ? 0 : 1;
    const auto accepted = commandArbiter[w].offer(
        replica, sequence, {data.begin() + 2, data.end()}, simulator.now());
    if (!accepted) return;  // duplicate from the partner CU
    lastCommandQ8[w] = (*accepted)[w];
    lastCommandSeq[w] = sequence;
    ++commandFramesDelivered;
  }

  /// Records one pedal-sample -> actuator-apply latency into the metrics
  /// registry: first apply of each command sequence per wheel, on the
  /// simulated clock (deterministic, hence golden). No-op without a registry.
  void observeEndToEnd(std::size_t wheel, std::uint64_t sequence) {
    if (!metrics || sequence == ~0ULL) return;
    if (lastMeasuredSeq[wheel] == sequence) return;  // later applies hold the value
    const auto sampled = commandSampleTime.find(sequence);
    if (sampled == commandSampleTime.end()) return;
    lastMeasuredSeq[wheel] = sequence;
    const auto latencyUs = static_cast<double>((simulator.now() - sampled->second).us());
    metrics->observe("e2e.latency", obs::HistogramSpec{0.0, 50000.0, 50}, latencyUs);
    metrics->gaugeMax("e2e.latency.max_us", latencyUs);
  }

  void onNodeSilent(net::NodeId id, bool scheduleRestart) {
    ++failSilentEvents;
    membership.setAlive(id, false);
    trace("node-silent node=" + std::to_string(id));
    record(id, "node-silent", "node");
    if (isWheel(id)) {
      // The actuator watchdog releases the brake of a dead wheel node.
      vehicle.setBrakeTorque(wheelIndex(id), 0.0);
      // A restarting node re-applies the command it held when it died
      // ("use a previous value"); that apply measures the outage, not a
      // pedal->actuator chain traversal, so it must not enter e2e.latency.
      lastCommandSeq[wheelIndex(id)] = ~0ULL;
    }
    if (scheduleRestart) {
      simulator.scheduleAfter(config.restartTime, [this, id] {
        node(id).kernel->restart();
        membership.setAlive(id, true);
        trace("node-restarted node=" + std::to_string(id));
        record(id, "node-restarted", "node");
      });
    }
  }

  /// Routes kernel, membership and bus events into the trace sink AND the
  /// Chrome-trace recorder. Wired once, when the first observer (sink,
  /// recorder or metrics registry) is installed — after build(), so `nodes`
  /// is stable.
  void wireTaps() {
    if (tapsWired) return;
    tapsWired = true;
    for (Node& n : nodes) {
      const net::NodeId id = n.id;
      const rt::TaskId controlTask = n.controlTask;
      n.kernel->setEventTap([this, id, controlTask](const rt::KernelEvent& event) {
        switch (event.kind) {
          case rt::KernelEvent::Kind::TaskError:
            trace("task-error node=" + std::to_string(id) +
                  " task=" + std::to_string(event.task.value) +
                  " job=" + std::to_string(event.jobIndex));
            record(id, "task-error", "kernel", "job=" + std::to_string(event.jobIndex));
            break;
          case rt::KernelEvent::Kind::KernelError:
            trace("kernel-error node=" + std::to_string(id));
            record(id, "kernel-error", "kernel");
            break;
          case rt::KernelEvent::Kind::JobOmitted:
            if (event.task.value == controlTask.value) {
              trace("job-omitted node=" + std::to_string(id) +
                    " job=" + std::to_string(event.jobIndex));
              record(id, "job-omitted", "kernel", "job=" + std::to_string(event.jobIndex));
            }
            break;
          default:
            break;  // completions are too frequent to trace
        }
      });
    }
    membership.setMembershipTap([this](net::NodeId observer, net::NodeId peer, bool member) {
      trace("membership observer=" + std::to_string(observer) + " peer=" + std::to_string(peer) +
            " member=" + (member ? std::string{"1"} : std::string{"0"}));
      record(observer, "membership-change", "membership",
             "peer=" + std::to_string(peer) + " member=" + (member ? "1" : "0"));
    });
    bus.setDropTap([this](const net::Frame& frame, const char* reason) {
      trace("bus-drop sender=" + std::to_string(frame.sender) + " reason=" + reason);
      record(frame.sender, "bus-drop", "bus", reason);
    });
  }

  /// Folds the run's deterministic counters into the attached registry.
  void snapshotMetrics() {
    if (!metrics) return;
    obs::Registry& m = *metrics;
    m.add("bus.cycles", bus.cyclesCompleted());
    m.add("bus.frames_delivered", bus.framesDelivered());
    m.add("bus.frames_dropped", bus.framesDropped());
    m.add("bus.crc_rejected", bus.crcRejected());
    m.add("bus.corruptions_injected", bus.corruptionsInjected());
    m.add("sim.events_processed", simulator.processedEvents());
    m.add("sys.command_frames_delivered", commandFramesDelivered);
    m.add("sys.commands_omitted", commandsOmitted);
    m.add("sys.undetected_value_deliveries", undetectedValueDeliveries);
    m.add("sys.fail_silent_events", failSilentEvents);
    for (const Node& n : nodes) {
      m.add("kernel.preemptions", n.cpu->preemptions());
      m.add("kernel.dispatches", n.cpu->dispatches());
      m.add("kernel.errors", n.kernel->kernelErrors());
      const rt::TaskStats& stats = n.kernel->stats(n.controlTask);
      m.add("kernel.control.releases", stats.releases);
      m.add("kernel.control.completions", stats.completions);
      m.add("kernel.control.omissions", stats.omissions);
      m.add("kernel.control.deadline_misses", stats.deadlineMisses);
      m.add("kernel.control.budget_overruns", stats.budgetOverruns);
      if (!n.temExecutor) continue;
      tem::TemStats tem = n.temExecutor->stats(n.controlTask);
      if (!isWheel(n.id)) {
        const tem::TemStats& emergency = n.temExecutor->stats(n.emergencyTask);
        tem.jobs += emergency.jobs;
        tem.firstCopies += emergency.firstCopies;
        tem.secondCopies += emergency.secondCopies;
        tem.thirdCopies += emergency.thirdCopies;
        tem.deliveredCleanly += emergency.deliveredCleanly;
        tem.maskedByVote += emergency.maskedByVote;
        tem.maskedByReplacement += emergency.maskedByReplacement;
        tem.comparisonMismatches += emergency.comparisonMismatches;
        tem.edmDetectedErrors += emergency.edmDetectedErrors;
        tem.omissionsNoTime += emergency.omissionsNoTime;
        tem.omissionsVoteFailed += emergency.omissionsVoteFailed;
        tem.omissionsAborted += emergency.omissionsAborted;
      }
      m.add("tem.jobs", tem.jobs);
      m.add("tem.copies.first", tem.firstCopies);
      m.add("tem.copies.second", tem.secondCopies);
      m.add("tem.copies.third", tem.thirdCopies);
      m.add("tem.vote.delivered_cleanly", tem.deliveredCleanly);
      m.add("tem.vote.masked_by_vote", tem.maskedByVote);
      m.add("tem.vote.masked_by_replacement", tem.maskedByReplacement);
      m.add("tem.vote.comparison_mismatches", tem.comparisonMismatches);
      m.add("tem.edm_detected_errors", tem.edmDetectedErrors);
      m.add("tem.omissions.no_time", tem.omissionsNoTime);
      m.add("tem.omissions.vote_failed", tem.omissionsVoteFailed);
      m.add("tem.omissions.aborted", tem.omissionsAborted);
    }
  }

  /// Exports each node's CPU execution segments as Chrome complete spans:
  /// pid = node id, one tid per distinct task label (tid 0 is reserved for
  /// node-scope instants).
  void emitSpans() {
    if (!recorder) return;
    recorder->setProcessName(0, "vehicle");
    for (const Node& n : nodes) {
      recorder->setProcessName(n.id, (isWheel(n.id) ? "wheel-node-" : "central-unit-") +
                                         std::to_string(n.id));
      std::map<std::string, std::uint32_t> tids;
      for (const rt::ExecutionSegment& segment : n.cpu->trace()) {
        auto [it, inserted] =
            tids.try_emplace(segment.label, static_cast<std::uint32_t>(tids.size() + 1));
        if (inserted) recorder->setThreadName(n.id, it->second, segment.label);
        recorder->complete(n.id, it->second, segment.label, "cpu", segment.start,
                           segment.end - segment.start);
      }
    }
  }

  /// Digest of the configuration a checkpoint was taken under. A replay is
  /// only meaningful on an identically configured simulation; the pedal
  /// profile is a closure, so only its PRESENCE can be pinned (the caller
  /// owns supplying the same profile, see BbwSystemSim::restoreState docs).
  [[nodiscard]] std::uint64_t configDigest() const {
    StateHash digest;
    digest.u64(static_cast<std::uint64_t>(config.nodeType));
    digest.f64(config.initialSpeedMps);
    digest.f64(config.pedal);
    digest.boolean(static_cast<bool>(config.pedalProfile));
    digest.i64(config.controlPeriod.us());
    digest.i64(config.plantStep.us());
    digest.i64(config.horizon.us());
    digest.i64(config.restartTime.us());
    digest.f64(config.vehicle.massKg);
    digest.f64(config.vehicle.wheelRadiusM);
    digest.f64(config.vehicle.wheelInertia);
    digest.f64(config.vehicle.burckhardtC1);
    digest.f64(config.vehicle.burckhardtC2);
    digest.f64(config.vehicle.burckhardtC3);
    digest.f64(config.vehicle.rollingResistance);
    for (const double scale : config.vehicle.frictionScale) digest.f64(scale);
    digest.f64(config.centralUnit.maxTotalForceN);
    digest.f64(config.centralUnit.frontShare);
    digest.f64(config.centralUnit.wheelRadiusM);
    return digest.finish();
  }

  /// Digest of the deterministic simulation state (see the header docs).
  [[nodiscard]] std::uint64_t fingerprint() const {
    StateHash digest;
    digest.i64(simulator.now().us());
    digest.u64(simulator.processedEvents());
    digest.f64(vehicle.speedMps());
    digest.f64(vehicle.distanceM());
    digest.boolean(vehicleStopped);
    digest.f64(stopTimeS);
    digest.u64(bus.cyclesCompleted());
    digest.u64(bus.framesDelivered());
    digest.u64(bus.framesDropped());
    digest.u64(bus.crcRejected());
    digest.u64(bus.corruptionsInjected());
    digest.u64(commandFramesDelivered);
    digest.u64(failSilentEvents);
    digest.u64(commandsOmitted);
    digest.u64(undetectedValueDeliveries);
    digest.boolean(emergencyLatched);
    digest.i64(emergencyPressedAt ? emergencyPressedAt->us() : -1);
    digest.i64(emergencyAppliedAt ? emergencyAppliedAt->us() : -1);
    for (const std::uint32_t command : lastCommandQ8) digest.u64(command);
    for (const std::uint64_t seq : lastCommandSeq) digest.u64(seq);
    for (const Node& n : nodes) {
      digest.boolean(n.kernel->stopped());
      digest.boolean(membership.alive(n.id));
      digest.u64(n.kernel->kernelErrors());
      const rt::TaskStats& stats = n.kernel->stats(n.controlTask);
      digest.u64(stats.releases);
      digest.u64(stats.completions);
      digest.u64(stats.omissions);
      digest.u64(stats.deadlineMisses);
      digest.u64(stats.budgetOverruns);
      digest.u64(stats.errorsDetected);
      digest.u64(stats.errorsMasked);
    }
    return digest.finish();
  }

  /// Snapshot of the monotone counters (see BbwSystemCounters).
  [[nodiscard]] BbwSystemCounters counterSnapshot() const {
    BbwSystemCounters c;
    c.eventsProcessed = simulator.processedEvents();
    c.busCycles = bus.cyclesCompleted();
    c.busFramesDelivered = bus.framesDelivered();
    c.busFramesDropped = bus.framesDropped();
    c.busCrcRejected = bus.crcRejected();
    c.busCorruptionsInjected = bus.corruptionsInjected();
    c.commandFramesDelivered = commandFramesDelivered;
    for (const auto& arbiter : commandArbiter) {
      c.duplicateCommandsDropped += arbiter.duplicatesDropped();
    }
    c.commandsOmitted = commandsOmitted;
    c.undetectedValueDeliveries = undetectedValueDeliveries;
    c.failSilentEvents = failSilentEvents;
    for (const Node& n : nodes) {
      c.kernelErrors += n.kernel->kernelErrors();
      c.cpuDispatches += n.cpu->dispatches();
      c.cpuPreemptions += n.cpu->preemptions();
      const rt::TaskStats& stats = n.kernel->stats(n.controlTask);
      c.controlReleases += stats.releases;
      c.controlDeadlineMisses += stats.deadlineMisses;
      c.controlBudgetOverruns += stats.budgetOverruns;
      if (isWheel(n.id)) {
        c.wheelCompletions[wheelIndex(n.id)] = stats.completions;
        c.wheelOmissions[wheelIndex(n.id)] = stats.omissions;
      } else {
        c.cuCompletions += stats.completions;
      }
      if (n.temExecutor) {
        const tem::TemStats& temStats = n.temExecutor->stats(n.controlTask);
        c.errorsMaskedByTem += temStats.maskedByVote + temStats.maskedByReplacement;
      }
    }
    return c;
  }

  /// Digest of the evolution-relevant state only (see the header docs):
  /// everything that determines how the simulation behaves from here on,
  /// NOTHING that merely records how it got here.
  [[nodiscard]] std::uint64_t behaviorFingerprint() const {
    StateHash digest;
    digest.i64(simulator.now().us());
    digest.u64(simulator.pendingEvents());
    digest.f64(vehicle.speedMps());
    digest.f64(vehicle.distanceM());
    for (std::size_t w = 0; w < kWheelCount; ++w) {
      digest.f64(vehicle.wheelSpeedRadps(w));
      digest.f64(vehicle.brakeTorque(w));
    }
    digest.boolean(vehicleStopped);
    digest.f64(stopTimeS);
    for (const std::uint32_t command : lastCommandQ8) digest.u64(command);
    for (const std::int32_t limit : wheelLimitQ8) digest.i64(limit);
    for (const std::uint64_t seq : lastCommandSeq) digest.u64(seq);
    digest.boolean(emergencyLatched);
    digest.i64(emergencyPressedAt ? emergencyPressedAt->us() : -1);
    digest.i64(emergencyAppliedAt ? emergencyAppliedAt->us() : -1);
    digest.u64(membership.stateDigest());
    digest.u64(bus.stateDigest());
    for (const auto& arbiter : commandArbiter) digest.u64(arbiter.stateDigest());
    for (const Node& n : nodes) {
      digest.boolean(n.kernel->stopped());
      digest.boolean(n.corruptSecondCopy);
      digest.boolean(n.detectedErrorNextCopy);
      digest.boolean(n.omitNextResult);
      digest.boolean(n.valueFailureArmed);
      digest.u64(n.valueFailureJob);
      digest.u64(n.snapshotJob);
      digest.u64(n.snapshotSeq);
      for (const std::uint32_t input : n.jobInput) digest.u64(input);
    }
    return digest.finish();
  }

  /// See BbwSystemSim::injectionQuiescent.
  [[nodiscard]] bool injectionQuiescent() const {
    for (const Node& n : nodes) {
      if (n.corruptSecondCopy || n.detectedErrorNextCopy || n.omitNextResult ||
          n.valueFailureArmed || n.valueFailureJob != ~0ULL) {
        return false;
      }
    }
    return !bus.injectionArmed();
  }

  /// Advances the event loop to `until` (the run() loop without result
  /// finalization).
  void advanceTo(SimTime until) {
    const SimTime limit = std::min(until, SimTime::zero() + config.horizon);
    while (simulator.now() < limit && !vehicleStopped) {
      if (!simulator.step()) break;
    }
  }

  void schedulePlantStep() {
    simulator.scheduleAfter(config.plantStep, [this] {
      vehicle.step(config.plantStep.toSeconds());
      if (vehicle.stopped()) {
        if (!vehicleStopped) {
          vehicleStopped = true;
          stopTimeS = simulator.now().toSeconds();
          char line[64];
          std::snprintf(line, sizeof line, "vehicle-stopped distance=%.3f", vehicle.distanceM());
          trace(line);
          record(0, "vehicle-stopped", "vehicle", line + sizeof("vehicle-stopped ") - 1);
        }
        return;  // plant settled; no more stepping needed
      }
      schedulePlantStep();
    }, sim::EventPriority::Observer);
  }
};

BbwSystemSim::BbwSystemSim(BbwSimConfig config) : impl_{std::make_unique<Impl>(config)} {
  impl_->vehicle.reset(config.initialSpeedMps);
  impl_->build();
}

BbwSystemSim::~BbwSystemSim() = default;

sim::Simulator& BbwSystemSim::simulator() { return impl_->simulator; }
const Vehicle& BbwSystemSim::vehicle() const { return impl_->vehicle; }

void BbwSystemSim::injectComputationFault(net::NodeId node, SimTime at) {
  impl_->injectionLog.push_back({Impl::LoggedInjection::Kind::Computation, node, at, {}});
  impl_->simulator.scheduleAt(at,
                              [this, node] {
                                impl_->trace("inject computation-fault node=" +
                                             std::to_string(node));
                                impl_->record(node, "computation-fault", "inject");
                                impl_->node(node).corruptSecondCopy = true;
                              },
                              sim::EventPriority::FaultInjection);
}

void BbwSystemSim::injectDetectedError(net::NodeId node, SimTime at) {
  impl_->injectionLog.push_back({Impl::LoggedInjection::Kind::DetectedError, node, at, {}});
  impl_->simulator.scheduleAt(at,
                              [this, node] {
                                impl_->trace("inject detected-error node=" + std::to_string(node));
                                impl_->record(node, "detected-error", "inject");
                                impl_->node(node).detectedErrorNextCopy = true;
                              },
                              sim::EventPriority::FaultInjection);
}

void BbwSystemSim::injectOmissionFailure(net::NodeId node, SimTime at) {
  impl_->injectionLog.push_back({Impl::LoggedInjection::Kind::Omission, node, at, {}});
  impl_->simulator.scheduleAt(at,
                              [this, node] {
                                impl_->trace("inject omission node=" + std::to_string(node));
                                impl_->record(node, "omission", "inject");
                                impl_->node(node).omitNextResult = true;
                              },
                              sim::EventPriority::FaultInjection);
}

void BbwSystemSim::injectValueFailure(net::NodeId node, SimTime at) {
  impl_->injectionLog.push_back({Impl::LoggedInjection::Kind::ValueFailure, node, at, {}});
  impl_->simulator.scheduleAt(at,
                              [this, node] {
                                impl_->trace("inject value-failure node=" + std::to_string(node));
                                impl_->record(node, "value-failure", "inject");
                                impl_->node(node).valueFailureArmed = true;
                              },
                              sim::EventPriority::FaultInjection);
}

void BbwSystemSim::injectKernelError(net::NodeId node, SimTime at) {
  impl_->injectionLog.push_back({Impl::LoggedInjection::Kind::KernelError, node, at, {}});
  impl_->simulator.scheduleAt(at,
                              [this, node] {
                                impl_->trace("inject kernel-error node=" + std::to_string(node));
                                impl_->record(node, "kernel-error", "inject");
                                impl_->node(node).kernel->reportKernelError(
                                    {rt::ErrorEvent::Source::HardwareException, 0});
                              },
                              sim::EventPriority::FaultInjection);
}

void BbwSystemSim::setTraceSink(std::function<void(const std::string&)> sink) {
  impl_->traceSink = std::move(sink);
  impl_->wireTaps();
}

void BbwSystemSim::setMetricsRegistry(obs::Registry* registry) {
  impl_->metrics = registry;
  impl_->wireTaps();
}

void BbwSystemSim::setTraceRecorder(obs::TraceRecorder* recorder) {
  impl_->recorder = recorder;
  impl_->wireTaps();
}

const net::MembershipService& BbwSystemSim::membership() const { return impl_->membership; }

net::MembershipService& BbwSystemSim::membership() { return impl_->membership; }

void BbwSystemSim::pressEmergencyBrake(SimTime at) {
  impl_->injectionLog.push_back({Impl::LoggedInjection::Kind::EmergencyBrake, 0, at, {}});
  impl_->simulator.scheduleAt(at, [this] {
    Impl& impl = *impl_;
    impl.emergencyLatched = true;
    if (!impl.emergencyPressedAt) impl.emergencyPressedAt = impl.simulator.now();
    for (const net::NodeId cu : {kCuA, kCuB}) {
      if (!impl.node(cu).kernel->stopped()) {
        impl.node(cu).kernel->releaseSporadic(impl.node(cu).emergencyTask);
      }
    }
  }, sim::EventPriority::Application);
}

void BbwSystemSim::injectBusCorruption(net::NodeId node, SimTime at) {
  impl_->injectionLog.push_back({Impl::LoggedInjection::Kind::BusCorruption, node, at, {}});
  impl_->simulator.scheduleAt(at,
                              [this, node] {
                                impl_->trace("inject bus-corruption node=" + std::to_string(node));
                                impl_->record(node, "bus-corruption", "inject");
                                impl_->bus.corruptNextFrame(node);
                              },
                              sim::EventPriority::FaultInjection);
}

void BbwSystemSim::injectBusCorruption(net::NodeId node, SimTime at,
                                       std::vector<std::uint32_t> flipBits) {
  impl_->injectionLog.push_back({Impl::LoggedInjection::Kind::BusCorruptionBits, node, at, flipBits});
  impl_->simulator.scheduleAt(at,
                              [this, node, flipBits = std::move(flipBits)] {
                                impl_->trace("inject bus-corruption node=" + std::to_string(node));
                                impl_->record(node, "bus-corruption", "inject");
                                impl_->bus.corruptNextFrame(node, flipBits);
                              },
                              sim::EventPriority::FaultInjection);
}

BbwSimResult BbwSystemSim::run() {
  Impl& impl = *impl_;
  impl.advanced = true;
  const SimTime limit = SimTime::zero() + impl.config.horizon;
  while (impl.simulator.now() < limit && !impl.vehicleStopped) {
    if (!impl.simulator.step()) break;
  }

  BbwSimResult result;
  result.stopped = impl.vehicleStopped;
  result.stoppingDistanceM = impl.vehicle.distanceM();
  result.stopTimeS = impl.stopTimeS;
  const BbwSystemCounters counters = impl.counterSnapshot();
  result.commandFramesDelivered = counters.commandFramesDelivered;
  result.duplicateCommandsDropped = counters.duplicateCommandsDropped;
  result.busFramesDropped = counters.busFramesDropped;
  result.failSilentEvents = counters.failSilentEvents;
  result.commandsOmitted = counters.commandsOmitted;
  result.undetectedValueDeliveries = counters.undetectedValueDeliveries;
  result.wheelCompletions = counters.wheelCompletions;
  result.wheelOmissions = counters.wheelOmissions;
  result.cuCompletions = counters.cuCompletions;
  result.errorsMaskedByTem = counters.errorsMaskedByTem;
  if (impl.emergencyPressedAt && impl.emergencyAppliedAt) {
    result.emergencyBrakeLatency = *impl.emergencyAppliedAt - *impl.emergencyPressedAt;
  }
  for (const auto& n : impl.nodes) {
    if (n.kernel->stopped() || !impl.membership.alive(n.id)) {
      result.nodesDownAtEnd.insert(n.id);
    }
  }
  impl.snapshotMetrics();
  impl.emitSpans();
  return result;
}

void BbwSystemSim::runUntil(SimTime until) {
  impl_->advanced = true;
  impl_->advanceTo(until);
}

std::uint64_t BbwSystemSim::stateFingerprint() const { return impl_->fingerprint(); }

BbwSystemCounters BbwSystemSim::counterSnapshot() const { return impl_->counterSnapshot(); }

std::uint64_t BbwSystemSim::behaviorFingerprint() const { return impl_->behaviorFingerprint(); }

bool BbwSystemSim::injectionQuiescent() const { return impl_->injectionQuiescent(); }

std::vector<std::uint8_t> BbwSystemSim::saveState() const {
  const Impl& impl = *impl_;
  snap::BlobWriter writer{snap::kSystemSnapshot, kSystemStateVersion};
  writer.beginSection("config");
  writer.u64(impl.configDigest());
  writer.endSection();
  writer.beginSection("inject");
  writer.u32(static_cast<std::uint32_t>(impl.injectionLog.size()));
  for (const Impl::LoggedInjection& injection : impl.injectionLog) {
    writer.u16(static_cast<std::uint16_t>(injection.kind));
    writer.u32(injection.node);
    writer.i64(injection.at.us());
    writer.u32Vec(injection.flipBits);
  }
  writer.endSection();
  writer.beginSection("clock");
  writer.i64(impl.simulator.now().us());
  // The clock alone under-specifies the state when several events share a
  // timestamp (e.g. a checkpoint taken right after the event that stopped
  // the vehicle), so the replay target is the PROCESSED-EVENT COUNT; the
  // deterministic event order makes it exact.
  writer.u64(impl.simulator.processedEvents());
  writer.endSection();
  writer.beginSection("fp");
  writer.u64(impl.fingerprint());
  writer.endSection();
  return writer.finish();
}

void BbwSystemSim::restoreState(std::span<const std::uint8_t> blob) {
  Impl& impl = *impl_;
  if (impl.advanced || !impl.injectionLog.empty()) {
    throw std::runtime_error(
        "BbwSystemSim::restoreState: requires a freshly constructed simulation "
        "(this one has already advanced or been injected into)");
  }

  // Parse and validate the WHOLE checkpoint before replaying anything.
  snap::BlobReader reader{blob, snap::kSystemSnapshot, kSystemStateVersion};
  reader.openSection("config");
  const std::uint64_t configDigest = reader.u64();
  reader.closeSection();
  reader.openSection("inject");
  const std::uint32_t injections = reader.u32();
  std::vector<Impl::LoggedInjection> schedule;
  schedule.reserve(injections);
  for (std::uint32_t i = 0; i < injections; ++i) {
    Impl::LoggedInjection injection;
    injection.kind = static_cast<Impl::LoggedInjection::Kind>(reader.u16());
    injection.node = reader.u32();
    injection.at = SimTime::fromUs(reader.i64());
    injection.flipBits = reader.u32Vec();
    schedule.push_back(std::move(injection));
  }
  reader.closeSection();
  reader.openSection("clock");
  const SimTime target = SimTime::fromUs(reader.i64());
  const std::uint64_t targetProcessed = reader.u64();
  reader.closeSection();
  reader.openSection("fp");
  const std::uint64_t expectedFingerprint = reader.u64();
  reader.closeSection();
  reader.finish();

  if (configDigest != impl.configDigest()) {
    throw std::runtime_error(
        "BbwSystemSim::restoreState: configuration digest mismatch (the checkpoint "
        "was taken under a different BbwSimConfig)");
  }

  // Replay: re-apply the injection schedule in call order, advance to the
  // checkpoint clock, and verify the state digest. Because the simulation
  // is a deterministic function of (config, schedule, clock), a fingerprint
  // match means THIS simulation is the checkpointed one.
  using Kind = Impl::LoggedInjection::Kind;
  for (const Impl::LoggedInjection& injection : schedule) {
    switch (injection.kind) {
      case Kind::Computation: injectComputationFault(injection.node, injection.at); break;
      case Kind::DetectedError: injectDetectedError(injection.node, injection.at); break;
      case Kind::KernelError: injectKernelError(injection.node, injection.at); break;
      case Kind::Omission: injectOmissionFailure(injection.node, injection.at); break;
      case Kind::ValueFailure: injectValueFailure(injection.node, injection.at); break;
      case Kind::BusCorruption: injectBusCorruption(injection.node, injection.at); break;
      case Kind::BusCorruptionBits:
        injectBusCorruption(injection.node, injection.at, injection.flipBits);
        break;
      case Kind::EmergencyBrake: pressEmergencyBrake(injection.at); break;
      default:
        throw std::runtime_error("BbwSystemSim::restoreState: unknown injection kind " +
                                 std::to_string(static_cast<int>(injection.kind)));
    }
  }
  // Advance by PROCESSED-EVENT COUNT, not by clock: the producer may have
  // processed further events at the checkpoint timestamp (its advance loops
  // gate on the pre-step clock), and the deterministic event order makes
  // the count exact. The clock and horizon bounds only guard against a
  // nonsensical count; the fingerprint check below is the real arbiter.
  impl.advanced = true;
  const SimTime horizon = SimTime::zero() + impl.config.horizon;
  while (impl.simulator.processedEvents() < targetProcessed &&
         impl.simulator.now() <= std::min(target, horizon) && !impl.vehicleStopped) {
    if (!impl.simulator.step()) break;
  }
  if (impl.fingerprint() != expectedFingerprint) {
    throw std::runtime_error(
        "BbwSystemSim::restoreState: replay diverged from the checkpoint fingerprint "
        "at t=" + std::to_string(target.us()) +
        "us (corrupted blob, mismatched pedal profile, or nondeterminism)");
  }
}

}  // namespace nlft::bbw
