#include "bbw/wheel_task.hpp"

namespace nlft::bbw {

namespace {

/// Image fields shared by both wheel variants, without the derived parts.
fi::TaskImage baseWheelImage(const char* source, std::int32_t requestedTorqueQ8,
                             std::int32_t slipQ8, std::int32_t currentLimitQ8,
                             std::uint32_t outputWords) {
  fi::TaskImage image;
  image.program = hw::assemble(source);
  image.entry = 0;
  image.stackTop = 0x4000;
  image.inputBase = 0x800;
  image.input = {static_cast<std::uint32_t>(requestedTorqueQ8),
                 static_cast<std::uint32_t>(slipQ8),
                 static_cast<std::uint32_t>(currentLimitQ8)};
  image.outputBase = 0xC00;
  image.outputWords = outputWords;
  image.memBytes = 64 * 1024;
  return image;
}

}  // namespace

const char* wheelTaskSource() {
  return R"(
; Wheel-node slip control, q8.8 fixed point.
; r2 = requested torque, r3 = slip, r4 = anti-lock limit (-1 = none).
      ldi r1, 0x800
      ld  r2, [r1+0]
      ld  r3, [r1+4]
      ld  r4, [r1+8]

      ldi r5, 64            ; release threshold (0.25)
      cmp r5, r3
      blt hard_release      ; slip > release
      ldi r5, 38            ; target threshold (~0.148)
      cmp r5, r3
      blt reduce_once       ; slip > target

      ; slip at or below target: recover the limit if one is active
      cmpi r4, 0
      blt compute           ; no active limit
      ldi r6, 294           ; recover factor (1.148)
      mul r4, r4, r6
      shr r4, r4, 8
      cmp r4, r2
      blt compute           ; still limiting
      ldi r4, -1            ; limit released
      jmp compute

hard_release:
      cmpi r4, 0
      bge hr_have
      mov r4, r2
hr_have:
      ldi r6, 179           ; reduce factor (0.699), applied twice
      mul r4, r4, r6
      shr r4, r4, 8
      mul r4, r4, r6
      shr r4, r4, 8
      jmp compute

reduce_once:
      cmpi r4, 0
      bge ro_have
      mov r4, r2
ro_have:
      ldi r6, 179
      mul r4, r4, r6
      shr r4, r4, 8

compute:
      mov r7, r2            ; torque = requested
      cmpi r4, 0
      blt clamp_zero        ; no limit active
      cmp r4, r7
      bge clamp_zero        ; limit >= torque: no capping
      mov r7, r4

clamp_zero:
      cmpi r7, 0
      bge store
      ldi r7, 0

store:
      ldi r8, 0xC00
      st  r7, [r8+0]
      st  r4, [r8+4]
      halt
)";
}

const char* checkedWheelTaskSource() {
  return R"(
; Wheel-node slip control with end-to-end output checksum (q8.8).
; Identical control law; the checksum subroutine exercises JSR/RTS and the
; stack, and appends out[2] = out[0] ^ out[1] ^ 0x5A5A5A5A.
      ldi r1, 0x800
      ld  r2, [r1+0]
      ld  r3, [r1+4]
      ld  r4, [r1+8]

      ldi r5, 64
      cmp r5, r3
      blt hard_release
      ldi r5, 38
      cmp r5, r3
      blt reduce_once

      cmpi r4, 0
      blt compute
      ldi r6, 294
      mul r4, r4, r6
      shr r4, r4, 8
      cmp r4, r2
      blt compute
      ldi r4, -1
      jmp compute

hard_release:
      cmpi r4, 0
      bge hr_have
      mov r4, r2
hr_have:
      ldi r6, 179
      mul r4, r4, r6
      shr r4, r4, 8
      mul r4, r4, r6
      shr r4, r4, 8
      jmp compute

reduce_once:
      cmpi r4, 0
      bge ro_have
      mov r4, r2
ro_have:
      ldi r6, 179
      mul r4, r4, r6
      shr r4, r4, 8

compute:
      mov r7, r2
      cmpi r4, 0
      blt clamp_zero
      cmp r4, r7
      bge clamp_zero
      mov r7, r4

clamp_zero:
      cmpi r7, 0
      bge store
      ldi r7, 0

store:
      ldi r8, 0xC00
      st  r7, [r8+0]
      st  r4, [r8+4]
      jsr checksum
      st  r9, [r8+8]
      halt

checksum:
      push r5
      push r6
      ldi r6, 0x5A5A
      shl r6, r6, 16
      ldi r5, 0x5A5A
      or  r6, r6, r5
      xor r9, r7, r4
      xor r9, r9, r6
      pop r6
      pop r5
      rts
)";
}

const analysis::ProgramAnalysis& wheelTaskAnalysis() {
  static const analysis::ProgramAnalysis analysis =
      analysis::analyzeImage(baseWheelImage(wheelTaskSource(), 0, 0, -1, 2));
  return analysis;
}

const analysis::ProgramAnalysis& checkedWheelTaskAnalysis() {
  static const analysis::ProgramAnalysis analysis =
      analysis::analyzeImage(baseWheelImage(checkedWheelTaskSource(), 0, 0, -1, 3));
  return analysis;
}

fi::TaskImage makeCheckedWheelTaskImage(std::int32_t requestedTorqueQ8, std::int32_t slipQ8,
                                        std::int32_t currentLimitQ8) {
  fi::TaskImage image = baseWheelImage(checkedWheelTaskSource(), requestedTorqueQ8, slipQ8,
                                       currentLimitQ8, 3);
  image.outputHasChecksum = true;
  // Budget timer and MMU regions from the static analyzer (~1.25x the
  // longest legal path): tight enough that a runaway copy is killed before
  // it eats the recovery slack.
  analysis::applyDerivedConfig(image, checkedWheelTaskAnalysis());
  return image;
}

fi::TaskImage makeWheelTaskImage(std::int32_t requestedTorqueQ8, std::int32_t slipQ8,
                                 std::int32_t currentLimitQ8) {
  fi::TaskImage image =
      baseWheelImage(wheelTaskSource(), requestedTorqueQ8, slipQ8, currentLimitQ8, 2);
  analysis::applyDerivedConfig(image, wheelTaskAnalysis());
  return image;
}

}  // namespace nlft::bbw
