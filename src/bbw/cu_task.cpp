#include "bbw/cu_task.hpp"

#include <algorithm>

namespace nlft::bbw {

const char* cuTaskSource() {
  return R"(
; Central-unit brake-force distribution, q8.8 fixed point.
; Front per-wheel torque at full pedal: 18000 N * 0.6 / 2 * 0.30 m = 1620 Nm.
; Rear: 18000 * 0.4 / 2 * 0.30 = 1080 Nm.
      ldi r1, 0x800
      ld  r2, [r1+0]        ; pedal q8.8

      cmpi r2, 0            ; clamp below
      bge not_negative
      ldi r2, 0
not_negative:
      cmpi r2, 256          ; clamp above
      blt in_range
      ldi r2, 256
in_range:

      ldi r3, 1620
      mul r4, r2, r3        ; front torque (q8.8)
      ldi r3, 1080
      mul r5, r2, r3        ; rear torque (q8.8)

      ldi r8, 0xC00
      st  r4, [r8+0]        ; front left
      st  r4, [r8+4]        ; front right
      st  r5, [r8+8]        ; rear left
      st  r5, [r8+12]       ; rear right
      halt
)";
}

std::array<std::int32_t, 4> distributeFixedPoint(std::int32_t pedalQ8) {
  const std::int32_t pedal = std::clamp(pedalQ8, 0, 256);
  const std::int32_t front = pedal * 1620;
  const std::int32_t rear = pedal * 1080;
  return {front, front, rear, rear};
}

namespace {

fi::TaskImage baseCuImage(std::int32_t pedalQ8) {
  fi::TaskImage image;
  image.program = hw::assemble(cuTaskSource());
  image.entry = 0;
  image.stackTop = 0x4000;
  image.inputBase = 0x800;
  image.input = {static_cast<std::uint32_t>(pedalQ8)};
  image.outputBase = 0xC00;
  image.outputWords = 4;
  image.memBytes = 64 * 1024;
  return image;
}

}  // namespace

const analysis::ProgramAnalysis& cuTaskAnalysis() {
  static const analysis::ProgramAnalysis analysis = analysis::analyzeImage(baseCuImage(0));
  return analysis;
}

fi::TaskImage makeCuTaskImage(std::int32_t pedalQ8) {
  fi::TaskImage image = baseCuImage(pedalQ8);
  // Budget timer and MMU regions from the static analyzer.
  analysis::applyDerivedConfig(image, cuTaskAnalysis());
  return image;
}

}  // namespace nlft::bbw
