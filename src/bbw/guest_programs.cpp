#include "bbw/guest_programs.hpp"

#include "bbw/cu_task.hpp"
#include "bbw/wheel_task.hpp"

namespace nlft::bbw {

namespace {

// Nominal operating point: moderate brake request with mild slip for the
// wheel tasks, half pedal for the central unit. Inputs only parameterise the
// data regions — the program text, and therefore the analysis, budget and
// MMU regions, are input-independent.
fi::TaskImage nominalWheel() { return makeWheelTaskImage(200 * 256, 30, -1); }
fi::TaskImage nominalCheckedWheel() { return makeCheckedWheelTaskImage(200 * 256, 30, -1); }
fi::TaskImage nominalCu() { return makeCuTaskImage(128); }

}  // namespace

const std::vector<GuestProgram>& guestPrograms() {
  static const std::vector<GuestProgram> programs = {
      {"wheel", wheelTaskSource(), &nominalWheel, &wheelTaskAnalysis},
      {"checked_wheel", checkedWheelTaskSource(), &nominalCheckedWheel,
       &checkedWheelTaskAnalysis},
      {"cu", cuTaskSource(), &nominalCu, &cuTaskAnalysis},
  };
  return programs;
}

}  // namespace nlft::bbw
