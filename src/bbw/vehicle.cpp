#include "bbw/vehicle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nlft::bbw {

double burckhardtMu(const VehicleParams& params, double slip) {
  slip = std::clamp(slip, 0.0, 1.0);
  return params.burckhardtC1 * (1.0 - std::exp(-params.burckhardtC2 * slip)) -
         params.burckhardtC3 * slip;
}

Vehicle::Vehicle(VehicleParams params) : params_{params} {}

void Vehicle::reset(double speedMps) {
  if (speedMps < 0.0) throw std::invalid_argument("Vehicle: negative speed");
  speed_ = speedMps;
  distance_ = 0.0;
  omega_.fill(speedMps / params_.wheelRadiusM);
  torque_.fill(0.0);
}

void Vehicle::setBrakeTorque(std::size_t wheel, double torqueNm) {
  torque_[wheel] = std::max(0.0, torqueNm);
}

double Vehicle::slip(std::size_t wheel) const {
  if (speed_ < 0.1) return 0.0;
  const double wheelLinear = omega_[wheel] * params_.wheelRadiusM;
  return std::clamp((speed_ - wheelLinear) / speed_, 0.0, 1.0);
}

void Vehicle::step(double dtSeconds) {
  if (speed_ <= 0.0) return;

  const double normalPerWheel = params_.massKg * params_.gravity / kWheelCount;
  double totalBrakeForce = 0.0;
  for (std::size_t w = 0; w < kWheelCount; ++w) {
    const double s = slip(w);
    const double tyreForce =
        params_.frictionScale[w] * burckhardtMu(params_, s) * normalPerWheel;
    totalBrakeForce += tyreForce;
    // Wheel spin: I w' = F_tyre * R - T_brake (tyre force spins the wheel up
    // toward vehicle speed; brake torque spins it down).
    const double omegaDot = (tyreForce * params_.wheelRadiusM - torque_[w]) / params_.wheelInertia;
    omega_[w] = std::max(0.0, omega_[w] + omegaDot * dtSeconds);
    // A wheel cannot spin faster than free rolling (no drive torque).
    omega_[w] = std::min(omega_[w], speed_ / params_.wheelRadiusM);
  }

  const double rolling = params_.rollingResistance * params_.massKg * params_.gravity;
  const double decel = (totalBrakeForce + rolling) / params_.massKg;
  const double newSpeed = std::max(0.0, speed_ - decel * dtSeconds);
  distance_ += 0.5 * (speed_ + newSpeed) * dtSeconds;
  speed_ = newSpeed;
  if (speed_ <= 0.01) speed_ = 0.0;
}

}  // namespace nlft::bbw
