#include "bbw/control.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nlft::bbw {

std::array<double, kWheelCount> distributeBrakeForce(const CentralUnitConfig& config,
                                                     double pedal) {
  pedal = std::clamp(pedal, 0.0, 1.0);
  const double total = pedal * config.maxTotalForceN;
  const double front = total * config.frontShare / 2.0;
  const double rear = total * (1.0 - config.frontShare) / 2.0;
  std::array<double, kWheelCount> torque{};
  torque[FrontLeft] = front * config.wheelRadiusM;
  torque[FrontRight] = front * config.wheelRadiusM;
  torque[RearLeft] = rear * config.wheelRadiusM;
  torque[RearRight] = rear * config.wheelRadiusM;
  return torque;
}

WheelSlipController::WheelSlipController(SlipControllerConfig config) : config_{config} {
  if (config.targetSlip <= 0.0 || config.releaseSlip <= config.targetSlip)
    throw std::invalid_argument("WheelSlipController: bad slip thresholds");
}

double WheelSlipController::update(double requestedTorqueNm, double measuredSlip) {
  if (measuredSlip > config_.releaseSlip) {
    // Imminent lock-up: dump torque hard (two reduction steps).
    if (currentLimit_ < 0.0) currentLimit_ = requestedTorqueNm;
    currentLimit_ *= config_.reduceFactor * config_.reduceFactor;
  } else if (measuredSlip > config_.targetSlip) {
    if (currentLimit_ < 0.0) currentLimit_ = requestedTorqueNm;
    currentLimit_ *= config_.reduceFactor;
  } else if (currentLimit_ >= 0.0) {
    currentLimit_ *= config_.recoverFactor;
    if (currentLimit_ >= requestedTorqueNm) currentLimit_ = -1.0;  // limit released
  }
  double torque = requestedTorqueNm;
  if (currentLimit_ >= 0.0) torque = std::min(torque, currentLimit_);
  return std::max(0.0, torque);
}

std::uint32_t WheelSlipController::packedState() const {
  if (currentLimit_ < 0.0) return 0xFFFFFFFFu;
  return static_cast<std::uint32_t>(std::lround(currentLimit_ * 256.0));
}

void WheelSlipController::restoreState(std::uint32_t packed) {
  currentLimit_ = packed == 0xFFFFFFFFu ? -1.0 : static_cast<double>(packed) / 256.0;
}

std::int32_t wheelControlFixedPoint(std::int32_t requestedTorqueQ8, std::int32_t slipQ8,
                                    std::int32_t currentLimitQ8, std::int32_t* newLimitQ8) {
  // Quantised counterparts of SlipControllerConfig's defaults:
  // target 0.1484 (38/256), release 0.25 (64/256), reduce 179/256 = 0.699,
  // recover 294/256 = 1.148. The structure matches update() exactly.
  constexpr std::int32_t kTarget = 38;
  constexpr std::int32_t kRelease = 64;
  constexpr std::int32_t kReduce = 179;
  constexpr std::int32_t kRecover = 294;

  std::int32_t limit = currentLimitQ8;
  if (slipQ8 > kRelease) {
    if (limit < 0) limit = requestedTorqueQ8;
    limit = static_cast<std::int32_t>((static_cast<std::int64_t>(limit) * kReduce) >> 8);
    limit = static_cast<std::int32_t>((static_cast<std::int64_t>(limit) * kReduce) >> 8);
  } else if (slipQ8 > kTarget) {
    if (limit < 0) limit = requestedTorqueQ8;
    limit = static_cast<std::int32_t>((static_cast<std::int64_t>(limit) * kReduce) >> 8);
  } else if (limit >= 0) {
    limit = static_cast<std::int32_t>((static_cast<std::int64_t>(limit) * kRecover) >> 8);
    if (limit >= requestedTorqueQ8) limit = -1;
  }
  std::int32_t torque = requestedTorqueQ8;
  if (limit >= 0 && limit < torque) torque = limit;
  if (torque < 0) torque = 0;
  *newLimitQ8 = limit;
  return torque;
}

}  // namespace nlft::bbw
