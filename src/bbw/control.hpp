// Brake-by-wire control algorithms.
//
// The central unit turns the pedal position into per-wheel brake torque
// requests (static front/rear proportioning); each wheel node runs an
// ABS-style slip controller that caps the applied torque when the wheel
// approaches lock-up. Both are pure functions of their inputs so that TEM
// replica determinism holds trivially.
#pragma once

#include <array>
#include <cstdint>

#include "bbw/vehicle.hpp"

namespace nlft::bbw {

struct CentralUnitConfig {
  double maxTotalForceN = 18000.0;  ///< total brake force at full pedal
  double frontShare = 0.6;          ///< front axle share of the total force
  double wheelRadiusM = 0.30;
};

/// Pedal position [0,1] -> per-wheel brake torque request (N m).
[[nodiscard]] std::array<double, kWheelCount> distributeBrakeForce(
    const CentralUnitConfig& config, double pedal);

struct SlipControllerConfig {
  double targetSlip = 0.15;    ///< near the Burckhardt friction peak
  double releaseSlip = 0.25;   ///< above this the controller dumps torque hard
  double reduceFactor = 0.70;  ///< multiplicative torque reduction per period
  double recoverFactor = 1.15; ///< multiplicative torque recovery per period
};

/// One wheel node's slip-control state (the task's state data; under NLFT it
/// would be protected by the end-to-end mechanisms of Section 2.6).
class WheelSlipController {
 public:
  explicit WheelSlipController(SlipControllerConfig config = {});

  /// Computes the torque to apply this period from the CU request, the
  /// measured slip, and the internal anti-lock state.
  [[nodiscard]] double update(double requestedTorqueNm, double measuredSlip);

  /// Serialises the controller state (for duplex state re-synchronisation).
  [[nodiscard]] std::uint32_t packedState() const;
  void restoreState(std::uint32_t packed);

 private:
  SlipControllerConfig config_;
  double currentLimit_ = -1.0;  ///< < 0 means "no anti-lock limit active"
};

/// Fixed-point version of the wheel control law used by the interpreted-ISA
/// task (q8.8 arithmetic): must match update() bit-for-bit in behaviour so
/// fault-injection campaigns exercise the real algorithm.
[[nodiscard]] std::int32_t wheelControlFixedPoint(std::int32_t requestedTorqueQ8,
                                                  std::int32_t slipQ8,
                                                  std::int32_t currentLimitQ8,
                                                  std::int32_t* newLimitQ8);

}  // namespace nlft::bbw
