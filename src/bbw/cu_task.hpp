// The central unit's brake-force distribution task compiled for the
// simulated COTS processor — the second interpreted workload for fault
// injection (the CU is the duplex part of the architecture, so its failure
// behaviour matters most for the system-level analysis).
//
// Memory interface:
//   input  @ 0x800: [0] pedal position (q8.8, 0..256 = 0..100 %)
//   output @ 0xC00: [0..3] per-wheel brake torque requests (q8.8 N m)
#pragma once

#include <array>
#include <cstdint>

#include "analysis/analyzer.hpp"
#include "faults/campaign.hpp"

namespace nlft::bbw {

/// Assembly source of the central-unit distribution task.
[[nodiscard]] const char* cuTaskSource();

/// Static analysis of the CU task (cached): derived budget, MMU regions and
/// legal-path signatures.
[[nodiscard]] const analysis::ProgramAnalysis& cuTaskAnalysis();

/// Fixed-point reference of the distribution law (60/40 proportioning of
/// an 18 kN total at 0.30 m wheel radius): front wheels get pedal * 1620,
/// rear wheels pedal * 1080 (all q8.8). Pedal is clamped to [0, 256].
[[nodiscard]] std::array<std::int32_t, 4> distributeFixedPoint(std::int32_t pedalQ8);

/// Builds a ready-to-run TaskImage for the given pedal position.
[[nodiscard]] fi::TaskImage makeCuTaskImage(std::int32_t pedalQ8);

}  // namespace nlft::bbw
