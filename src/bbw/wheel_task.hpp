// The wheel-node slip-control task compiled for the simulated COTS
// processor (toy ISA). Implements exactly the quantised control law of
// wheelControlFixedPoint(), so fault-injection campaigns (bench
// fault_injection_coverage) corrupt the *real* brake algorithm — mirroring
// the paper's reference [7], which injected faults into a brake-by-wire
// application to obtain P_T and P_OM.
//
// Memory interface:
//   input  @ 0x800: [0] requested torque (q8.8), [1] slip (q8.8),
//                   [2] current anti-lock limit (q8.8; -1 = none)
//   output @ 0xC00: [0] applied torque (q8.8), [1] new anti-lock limit
#pragma once

#include <cstdint>

#include "analysis/analyzer.hpp"
#include "faults/campaign.hpp"

namespace nlft::bbw {

/// Assembly source of the wheel control task.
[[nodiscard]] const char* wheelTaskSource();

/// Static analysis of the wheel task (cached; the program text is
/// input-independent). Source of the derived execution-time budget, MMU
/// regions and legal-path signatures.
[[nodiscard]] const analysis::ProgramAnalysis& wheelTaskAnalysis();
[[nodiscard]] const analysis::ProgramAnalysis& checkedWheelTaskAnalysis();

/// Builds a ready-to-run TaskImage for the given inputs. The execution-time
/// budget and MMU regions come from the static analyzer, not hand-kept
/// constants.
[[nodiscard]] fi::TaskImage makeWheelTaskImage(std::int32_t requestedTorqueQ8,
                                               std::int32_t slipQ8,
                                               std::int32_t currentLimitQ8);

/// End-to-end-protected variant (Section 2.6 / Table 1): the same control
/// law restructured with a subroutine (exercising the stack) that appends an
/// XOR checksum word to the output. A receiver — or the kernel's data
/// integrity check — verifies torque ^ limit ^ kEndToEndSeed == checksum, so
/// data faults that corrupt the output after the computation are detected
/// even on a single-copy fail-silent node.
[[nodiscard]] const char* checkedWheelTaskSource();
[[nodiscard]] fi::TaskImage makeCheckedWheelTaskImage(std::int32_t requestedTorqueQ8,
                                                      std::int32_t slipQ8,
                                                      std::int32_t currentLimitQ8);

}  // namespace nlft::bbw
