// Builders for every reliability model in the paper's evaluation:
//
//   Fig. 6  central unit (duplex), fail-silent nodes         -> CTMC, 4 states
//   Fig. 7  central unit (duplex), NLFT nodes                -> CTMC, 5 states
//   Fig. 8  wheel nodes, full functionality, fail-silent     -> RBD (4 in series)
//   Fig. 9  wheel nodes, degraded functionality, fail-silent -> CTMC, 4 states
//   Fig. 10 wheel nodes, full functionality, NLFT            -> CTMC, 2 states
//   Fig. 11 wheel nodes, degraded functionality, NLFT        -> CTMC, 5 states
//   Fig. 5  system fault tree: failure = CU-failure OR WNS-failure
//
// The transition-rate reconstruction is documented in DESIGN.md Section 3 and
// reproduces the numbers quoted in the paper (R(1y): 0.45 vs 0.70 in
// degraded mode; MTTF 1.2 vs 1.9 years).
#pragma once

#include "bbw/params.hpp"
#include "reliability/ctmc.hpp"
#include "reliability/fault_tree.hpp"
#include "reliability/rbd.hpp"

namespace nlft::bbw {

/// CTMC for the duplex central unit (Fig. 6 for FS, Fig. 7 for NLFT).
///
/// `permanentRepairRate` > 0 turns the reliability model into an
/// availability model (an extension over the paper): permanently-down nodes
/// and the system-failure state are repaired at that rate (e.g. a workshop
/// visit). reliability(t) then reads as P(first system failure later than
/// t), and steadyStateAvailability() becomes meaningful; meanTimeToFailure()
/// must NOT be used on availability chains (failure is no longer absorbing).
[[nodiscard]] rel::CtmcModel centralUnitChain(NodeType type, const ReliabilityParameters& p,
                                              double permanentRepairRate = 0.0);

/// CTMC for the four-wheel-node subsystem. Covers Figs. 9, 10 and 11; the
/// full/FS case (Fig. 8, an RBD in the paper) is also expressible as the
/// equivalent 2-state chain and is returned as such for uniform handling.
/// See centralUnitChain for `permanentRepairRate`.
[[nodiscard]] rel::CtmcModel wheelSubsystemChain(NodeType type, FunctionalityMode mode,
                                                 const ReliabilityParameters& p,
                                                 double permanentRepairRate = 0.0);

/// 2-of-3 voting triplex (the classic "2f+1" alternative the paper's
/// introduction contrasts with fail-silent duplexes). The voter masks value
/// errors without needing error-detection coverage, but a third node is
/// paid for and any two concurrent losses are fatal. Transients take the
/// affected node out only briefly (state resynchronisation, rate mu_OM).
[[nodiscard]] rel::CtmcModel votingTriplexChain(const ReliabilityParameters& p,
                                                double permanentRepairRate = 0.0);

/// The paper's actual Fig. 8 representation: series RBD of four exponential
/// blocks. Equivalent to wheelSubsystemChain(FailSilent, Full, p).
[[nodiscard]] rel::Rbd wheelSubsystemRbdFullFs(const ReliabilityParameters& p);

/// Fig. 5 fault tree over the two subsystems for a given configuration.
[[nodiscard]] rel::FaultTree systemFaultTree(NodeType type, FunctionalityMode mode,
                                             const ReliabilityParameters& p);

/// Convenience evaluator for the complete study.
class BbwStudy {
 public:
  explicit BbwStudy(ReliabilityParameters p = ReliabilityParameters::paperDefaults());

  [[nodiscard]] const ReliabilityParameters& parameters() const { return params_; }

  /// R(t) of the whole BBW system (CU and WNS independent, in series).
  [[nodiscard]] double systemReliability(NodeType type, FunctionalityMode mode,
                                         double tHours) const;
  /// System MTTF in hours, exact via Kronecker composition of the two chains.
  [[nodiscard]] double systemMttfHours(NodeType type, FunctionalityMode mode) const;

  [[nodiscard]] double centralUnitReliability(NodeType type, double tHours) const;
  [[nodiscard]] double wheelSubsystemReliability(NodeType type, FunctionalityMode mode,
                                                 double tHours) const;

 private:
  ReliabilityParameters params_;
};

}  // namespace nlft::bbw
