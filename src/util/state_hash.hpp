// Incremental 64-bit state digest: FNV-1a over 64-bit lanes with a
// splitmix finalizer. This is the one hashing scheme every layer's state
// digests use (bus/membership/arbiter digests, the bbw behavior
// fingerprint, fi::behaviorDigest), so digests composed across layers mix
// uniformly and the snapshot engine can compare them across simulations.
//
// NOT a cryptographic hash: it pins determinism, it does not resist an
// adversary. Equal digests mean "equal state" only together with the
// replay-checkpoint fingerprint checks (docs/SNAPSHOT.md).
#pragma once

#include <bit>
#include <cstdint>

namespace nlft::util {

struct StateHash {
  std::uint64_t hash = 1469598103934665603ull;

  void u64(std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
  void boolean(bool value) { u64(value ? 1 : 0); }
  [[nodiscard]] std::uint64_t finish() const {
    std::uint64_t x = hash;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }
};

}  // namespace nlft::util
