// Deterministic random number generation.
//
// The framework never uses std::random_device or global RNG state: every
// stochastic component receives an explicit Rng (or a seed) so that every
// test, example and bench is exactly reproducible. The generator is
// xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>

namespace nlft::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with distribution helpers.
///
/// Satisfies std::uniform_random_bit_generator so it can also be used with
/// <random> distributions, but the members below are preferred: they are
/// stable across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Creates an independent child stream; `label` distinguishes children.
  [[nodiscard]] Rng fork(std::uint64_t label);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  [[nodiscard]] std::uint64_t uniformInt(std::uint64_t n);
  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);
  /// Exponentially distributed value with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate);
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);
  /// Poisson-distributed count (Knuth for small means, normal approx above 64).
  [[nodiscard]] std::uint64_t poisson(double mean);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace nlft::util
