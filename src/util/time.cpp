#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace nlft::util {

Duration Duration::fromSeconds(double s) {
  return Duration::microseconds(static_cast<std::int64_t>(std::llround(s * 1e6)));
}

std::string Duration::toString() const {
  char buf[48];
  if (us_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(us_ / 1'000'000));
  } else if (us_ % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(us_ / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

std::string SimTime::toString() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.6fs", toSeconds());
  return buf;
}

}  // namespace nlft::util
