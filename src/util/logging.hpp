// Minimal leveled logger.
//
// Logging defaults to Warn so that tests and benches stay quiet; examples
// raise the level to show the interesting event flow. Not thread-safe by
// design: the whole framework is a single-threaded discrete-event simulator.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace nlft::util {

enum class LogLevel : std::uint8_t { Trace, Debug, Info, Warn, Error, Off };

/// Returns the process-wide minimum level that will be emitted.
[[nodiscard]] LogLevel logLevel();

/// Sets the process-wide minimum level.
void setLogLevel(LogLevel level);

/// Emits one formatted line to stderr if `level` passes the filter.
void logf(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define NLFT_LOG_TRACE(component, ...) ::nlft::util::logf(::nlft::util::LogLevel::Trace, component, __VA_ARGS__)
#define NLFT_LOG_DEBUG(component, ...) ::nlft::util::logf(::nlft::util::LogLevel::Debug, component, __VA_ARGS__)
#define NLFT_LOG_INFO(component, ...) ::nlft::util::logf(::nlft::util::LogLevel::Info, component, __VA_ARGS__)
#define NLFT_LOG_WARN(component, ...) ::nlft::util::logf(::nlft::util::LogLevel::Warn, component, __VA_ARGS__)
#define NLFT_LOG_ERROR(component, ...) ::nlft::util::logf(::nlft::util::LogLevel::Error, component, __VA_ARGS__)

}  // namespace nlft::util
