// Small dense linear algebra for the reliability engine.
//
// Markov models in this framework have at most a few dozen states (Kronecker
// compositions of the paper's 4-5 state chains), so a straightforward dense
// row-major double matrix with partial-pivoting LU is both sufficient and
// easy to verify.
#pragma once

#include <cstddef>
#include <vector>

namespace nlft::util {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] Matrix transpose() const;

  /// Maximum absolute row sum (the induced infinity norm).
  [[nodiscard]] double normInf() const;
  /// Maximum absolute column sum (the induced 1-norm).
  [[nodiscard]] double norm1() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double k);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double k) { return a *= k; }
  friend Matrix operator*(double k, Matrix a) { return a *= k; }
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product A*x. Requires x.size() == cols().
  [[nodiscard]] std::vector<double> apply(const std::vector<double>& x) const;
  /// Row-vector product x^T * A. Requires x.size() == rows().
  [[nodiscard]] std::vector<double> applyLeft(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU decomposition with partial pivoting of a square matrix.
///
/// Throws std::invalid_argument for non-square input and std::runtime_error
/// when the matrix is numerically singular.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const;
  /// Solves A X = B column by column.
  [[nodiscard]] Matrix solveMatrix(const Matrix& b) const;

  [[nodiscard]] double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> pivots_;
  int pivotSign_ = 1;
};

/// Matrix exponential exp(A) via scaling-and-squaring with Pade(13)
/// approximation (Higham 2005, fixed order for simplicity). Accurate to
/// near machine precision for the well-conditioned generators used here.
[[nodiscard]] Matrix matrixExponential(const Matrix& a);

/// Kronecker product A (x) B.
[[nodiscard]] Matrix kroneckerProduct(const Matrix& a, const Matrix& b);

/// Kronecker sum A (+) B = A (x) I_b + I_a (x) B (square inputs).
[[nodiscard]] Matrix kroneckerSum(const Matrix& a, const Matrix& b);

}  // namespace nlft::util
