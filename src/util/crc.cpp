#include "util/crc.hpp"

#include <array>

namespace nlft::util {

namespace {

std::array<std::uint32_t, 256> makeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32Table() {
  static const auto table = makeCrc32Table();
  return table;
}

}  // namespace

std::uint32_t crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  const auto& table = crc32Table();
  crc = ~crc;
  for (std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFU] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) { return crc32Update(0, data); }

std::uint16_t crc16Ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000U) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021U)
                            : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint32_t crc32Words(std::span<const std::uint32_t> words) {
  std::uint32_t crc = 0;
  for (std::uint32_t w : words) {
    const std::uint8_t bytes[4] = {
        static_cast<std::uint8_t>(w), static_cast<std::uint8_t>(w >> 8),
        static_cast<std::uint8_t>(w >> 16), static_cast<std::uint8_t>(w >> 24)};
    crc = crc32Update(crc, bytes);
  }
  return crc;
}

}  // namespace nlft::util
