// Streaming statistics and confidence intervals for Monte-Carlo estimation
// and fault-injection campaigns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nlft::util {

/// Welford streaming mean/variance accumulator. Mergeable: independent
/// accumulators (e.g. one per worker or chunk of a parallel campaign) can be
/// combined with merge(); merging in a fixed order yields a deterministic
/// result regardless of which thread filled which accumulator.
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator into this one (Chan et al. pairwise update).
  /// Exact for count/min/max; mean and variance agree with the sequential
  /// equivalent up to floating-point rounding.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Half-width of the normal-approximation confidence interval for the mean.
  [[nodiscard]] double confidenceHalfWidth(double confidence = 0.95) const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Estimate of a binomial proportion with a Wilson score interval.
struct ProportionEstimate {
  double proportion = 0.0;
  double low = 0.0;
  double high = 0.0;
  std::size_t successes = 0;
  std::size_t trials = 0;
};

/// Wilson score interval for `successes` out of `trials` at `confidence`.
[[nodiscard]] ProportionEstimate wilsonInterval(std::size_t successes, std::size_t trials,
                                                double confidence = 0.95);

/// Inverse standard normal CDF (Acklam's approximation, ~1e-9 accuracy).
[[nodiscard]] double inverseNormalCdf(double p);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for repair-time and response-time distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  /// Adds another histogram's counts; ranges and bin counts must match.
  void merge(const Histogram& other);
  [[nodiscard]] std::size_t binCount(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double binLow(std::size_t bin) const;
  [[nodiscard]] double binHigh(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nlft::util
