// Streaming statistics and confidence intervals for Monte-Carlo estimation
// and fault-injection campaigns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nlft::util {

/// Welford streaming mean/variance accumulator. Mergeable: independent
/// accumulators (e.g. one per worker or chunk of a parallel campaign) can be
/// combined with merge(); merging in a fixed order yields a deterministic
/// result regardless of which thread filled which accumulator.
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator into this one (Chan et al. pairwise update).
  /// Exact for count/min/max; mean and variance agree with the sequential
  /// equivalent up to floating-point rounding.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Half-width of the normal-approximation confidence interval for the mean.
  [[nodiscard]] double confidenceHalfWidth(double confidence = 0.95) const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Weighted streaming mean/variance accumulator (West's incremental update)
/// for likelihood-ratio-weighted estimators (importance sampling). Mergeable
/// under the same contract as RunningStats: per-chunk accumulators merged in
/// chunk order give a deterministic result at every thread count.
///
/// Beyond the weighted moments it tracks the raw weight sums Σw and Σw², so
/// estimator diagnostics — effective sample size, weight variance — come out
/// of the same accumulator (docs/ESTIMATORS.md).
class WeightedStats {
 public:
  /// Adds sample `x` with weight `w >= 0`. Zero-weight samples count toward
  /// count() (they are real draws) but not toward the moments.
  void add(double x, double w);

  /// Folds another accumulator into this one (weighted Chan combination).
  /// Exact for count/Σw/Σw²/min/max; mean and M2 agree with the sequential
  /// equivalent up to floating-point rounding.
  void merge(const WeightedStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double sumWeights() const { return sumW_; }
  [[nodiscard]] double sumSquaredWeights() const { return sumW2_; }
  /// Weighted mean Σwx / Σw (0 while Σw == 0).
  [[nodiscard]] double mean() const;
  /// Weighted population variance Σw(x - mean)² / Σw (0 while Σw == 0).
  [[nodiscard]] double variance() const;
  /// Kish effective sample size (Σw)² / Σw² — how many unweighted samples
  /// the weighted set is "worth". Equals count() iff all weights are equal.
  [[nodiscard]] double effectiveSampleSize() const;
  /// Coefficient of variation of the weights, sqrt(n·Σw²/(Σw)² - 1).
  /// Large values flag a poorly matched importance-sampling proposal.
  [[nodiscard]] double weightCv() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double sumW_ = 0.0;
  double sumW2_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Estimate of a binomial proportion with a Wilson score interval.
struct ProportionEstimate {
  double proportion = 0.0;
  double low = 0.0;
  double high = 0.0;
  std::size_t successes = 0;
  std::size_t trials = 0;
};

/// Wilson score interval for `successes` out of `trials` at `confidence`.
[[nodiscard]] ProportionEstimate wilsonInterval(std::size_t successes, std::size_t trials,
                                                double confidence = 0.95);

/// Inverse standard normal CDF (Acklam's approximation, ~1e-9 accuracy).
[[nodiscard]] double inverseNormalCdf(double p);

/// One stratum's contribution to a post-stratified proportion estimate:
/// `weight` is the stratum's share W_h of the nominal sampling distribution
/// (the W_h over all strata must sum to 1), successes/trials the outcome
/// counts observed inside the stratum.
struct StratumProportion {
  double weight = 0.0;
  std::size_t successes = 0;
  std::size_t trials = 0;
};

/// Post-stratified combination p̂ = Σ W_h p̂_h with normal-approximation
/// interval from Var = Σ W_h² p̃_h(1-p̃_h)/n_h. The per-stratum variance
/// uses the Agresti-Coull shrunk proportion p̃_h = (s+z²/2)/(n+z²), so
/// all-success / all-failure strata keep a nonzero width instead of
/// collapsing the interval. Strata with zero trials contribute their W_h
/// times 0 to the point estimate and are flagged via `emptyStrata`
/// (allocators should guarantee n_h >= 1; see docs/ESTIMATORS.md).
struct StratifiedProportionEstimate {
  double proportion = 0.0;
  double low = 0.0;
  double high = 0.0;
  double halfWidth = 0.0;
  std::size_t trials = 0;
  std::size_t emptyStrata = 0;
};

[[nodiscard]] StratifiedProportionEstimate stratifiedProportion(
    const std::vector<StratumProportion>& strata, double confidence = 0.95);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for repair-time and response-time distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  /// Adds another histogram's counts; ranges and bin counts must match.
  void merge(const Histogram& other);
  [[nodiscard]] std::size_t binCount(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double binLow(std::size_t bin) const;
  [[nodiscard]] double binHigh(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nlft::util
