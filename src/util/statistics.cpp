#include "util/statistics.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace nlft::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::confidenceHalfWidth(double confidence) const {
  if (count_ < 2) return 0.0;
  const double z = inverseNormalCdf(0.5 + confidence / 2.0);
  return z * stddev() / std::sqrt(static_cast<double>(count_));
}

void WeightedStats::add(double x, double w) {
  if (w < 0.0) throw std::invalid_argument("WeightedStats::add: negative weight");
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sumW2_ += w * w;
  if (w == 0.0) return;  // a real draw, but no mass in the moments
  sumW_ += w;
  const double delta = x - mean_;
  mean_ += delta * w / sumW_;
  m2_ += w * delta * (x - mean_);
}

void WeightedStats::merge(const WeightedStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  count_ += other.count_;
  sumW2_ += other.sumW2_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  if (other.sumW_ == 0.0) return;
  if (sumW_ == 0.0) {
    sumW_ = other.sumW_;
    mean_ = other.mean_;
    m2_ = other.m2_;
    return;
  }
  const double w1 = sumW_;
  const double w2 = other.sumW_;
  const double delta = other.mean_ - mean_;
  const double w = w1 + w2;
  mean_ += delta * w2 / w;
  m2_ += other.m2_ + delta * delta * w1 * w2 / w;
  sumW_ = w;
}

double WeightedStats::mean() const { return sumW_ > 0.0 ? mean_ : 0.0; }

double WeightedStats::variance() const { return sumW_ > 0.0 ? m2_ / sumW_ : 0.0; }

double WeightedStats::effectiveSampleSize() const {
  return sumW2_ > 0.0 ? sumW_ * sumW_ / sumW2_ : 0.0;
}

double WeightedStats::weightCv() const {
  if (count_ == 0 || sumW_ <= 0.0) return 0.0;
  const double n = static_cast<double>(count_);
  const double ratio = n * sumW2_ / (sumW_ * sumW_) - 1.0;
  return ratio > 0.0 ? std::sqrt(ratio) : 0.0;
}

StratifiedProportionEstimate stratifiedProportion(const std::vector<StratumProportion>& strata,
                                                  double confidence) {
  StratifiedProportionEstimate est;
  const double z = inverseNormalCdf(0.5 + confidence / 2.0);
  const double z2 = z * z;
  double variance = 0.0;
  for (const StratumProportion& stratum : strata) {
    if (stratum.weight < 0.0)
      throw std::invalid_argument("stratifiedProportion: negative stratum weight");
    est.trials += stratum.trials;
    if (stratum.trials == 0) {
      if (stratum.weight > 0.0) ++est.emptyStrata;
      continue;
    }
    const double n = static_cast<double>(stratum.trials);
    const double phat = static_cast<double>(stratum.successes) / n;
    est.proportion += stratum.weight * phat;
    // Agresti-Coull shrinkage for the variance term only: keeps degenerate
    // strata (0 or n successes) from zeroing their width contribution.
    const double ptilde = (static_cast<double>(stratum.successes) + z2 / 2.0) / (n + z2);
    variance += stratum.weight * stratum.weight * ptilde * (1.0 - ptilde) / n;
  }
  est.halfWidth = z * std::sqrt(variance);
  est.low = std::max(0.0, est.proportion - est.halfWidth);
  est.high = std::min(1.0, est.proportion + est.halfWidth);
  return est;
}

double inverseNormalCdf(double p) {
  if (p <= 0.0 || p >= 1.0) throw std::invalid_argument("inverseNormalCdf: p outside (0,1)");

  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;

  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

ProportionEstimate wilsonInterval(std::size_t successes, std::size_t trials, double confidence) {
  ProportionEstimate est;
  est.successes = successes;
  est.trials = trials;
  if (trials == 0) return est;

  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z = inverseNormalCdf(0.5 + confidence / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;

  est.proportion = phat;
  est.low = std::max(0.0, center - half);
  est.high = std::min(1.0, center + half);
  // At the degenerate ends center∓half is 0 or 1 exactly in real arithmetic
  // (center = half = (z²/2n)/denom when s = 0); pin the bound so rounding
  // residue (~1e-19) cannot leak a spurious open interval.
  if (successes == 0) est.low = 0.0;
  if (successes == trials) est.high = 1.0;
  return est;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range or bin count");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  bin = std::max<std::ptrdiff_t>(0, std::min<std::ptrdiff_t>(bin, static_cast<std::ptrdiff_t>(counts_.size()) - 1));
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    char detail[128];
    std::snprintf(detail, sizeof detail,
                  ": ours [%g, %g) / %zu bins vs theirs [%g, %g) / %zu bins", lo_, hi_,
                  counts_.size(), other.lo_, other.hi_, other.counts_.size());
    throw std::invalid_argument(std::string{"Histogram::merge: incompatible layout"} + detail);
  }
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) counts_[bin] += other.counts_[bin];
  total_ += other.total_;
}

double Histogram::binLow(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::binHigh(std::size_t bin) const { return binLow(bin + 1); }

}  // namespace nlft::util
