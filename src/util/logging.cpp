#include "util/logging.hpp"

#include <cstdarg>

namespace nlft::util {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel logLevel() { return g_level; }
void setLogLevel(LogLevel level) { g_level = level; }

void logf(LogLevel level, const char* component, const char* fmt, ...) {
  if (level < g_level || g_level == LogLevel::Off) return;
  std::fprintf(stderr, "[%-5s] %-10s ", levelName(level), component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace nlft::util
