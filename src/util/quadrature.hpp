// Adaptive numeric integration, used to compute the MTTF of composed
// reliability models as the integral of R(t) over [0, inf).
#pragma once

#include <functional>

namespace nlft::util {

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance tol.
[[nodiscard]] double integrateAdaptive(const std::function<double(double)>& f, double a, double b,
                                       double tol = 1e-10, int maxDepth = 40);

/// Integral of a non-increasing, non-negative function over [0, inf).
///
/// Integrates over doubling windows until the window contribution falls
/// below `tailTol` times the accumulated integral. Suited to reliability
/// functions R(t), which decay (at least) exponentially.
[[nodiscard]] double integrateToInfinity(const std::function<double(double)>& f,
                                         double initialWindow, double tailTol = 1e-9);

}  // namespace nlft::util
