#include "util/quadrature.hpp"

#include <cmath>

namespace nlft::util {

namespace {

double simpson(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptiveStep(const std::function<double(double)>& f, double a, double b, double fa,
                    double fm, double fb, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, a, m);
  const double right = simpson(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptiveStep(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1) +
         adaptiveStep(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1);
}

}  // namespace

double integrateAdaptive(const std::function<double(double)>& f, double a, double b, double tol,
                         int maxDepth) {
  if (a == b) return 0.0;
  // Pre-subdivide into fixed panels so that narrow features away from the
  // interval midpoint cannot be missed by the first Simpson estimate.
  constexpr int kPanels = 16;
  const double h = (b - a) / kPanels;
  double total = 0.0;
  double prevX = a;
  double prevF = f(a);
  for (int panel = 0; panel < kPanels; ++panel) {
    const double x1 = (panel == kPanels - 1) ? b : a + h * (panel + 1);
    const double xm = 0.5 * (prevX + x1);
    const double fm = f(xm);
    const double f1 = f(x1);
    const double whole = simpson(prevF, fm, f1, prevX, x1);
    total += adaptiveStep(f, prevX, x1, prevF, fm, f1, whole, tol / kPanels, maxDepth);
    prevX = x1;
    prevF = f1;
  }
  return total;
}

double integrateToInfinity(const std::function<double(double)>& f, double initialWindow,
                           double tailTol) {
  double total = 0.0;
  double lo = 0.0;
  double window = initialWindow;
  for (int i = 0; i < 64; ++i) {
    const double hi = lo + window;
    // Scale the absolute tolerance to the magnitude of what has been (or is
    // about to be) accumulated; a fixed tiny tolerance would force the
    // adaptive subdivision down to function-evaluation noise.
    const double roughScale =
        std::abs(f(lo)) * window + std::abs(total);
    const double tol = tailTol * std::max(roughScale, 1e-30);
    const double piece = integrateAdaptive(f, lo, hi, tol);
    total += piece;
    if (i > 0 && std::abs(piece) <= tailTol * std::max(total, 1e-300)) break;
    lo = hi;
    window *= 2.0;
  }
  return total;
}

}  // namespace nlft::util
