#include "util/rng.hpp"

#include <cmath>

namespace nlft::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t label) {
  std::uint64_t seed = next() ^ (label * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  return Rng{seed};
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

std::uint64_t Rng::uniformInt(std::uint64_t n) {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) {
  // -log(1-U) with U in [0,1) avoids log(0).
  return -std::log1p(-uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1 = 0.0;
  do { u1 = uniform01(); } while (u1 == 0.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
  }
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = uniform01();
  while (product > limit) {
    ++count;
    product *= uniform01();
  }
  return count;
}

}  // namespace nlft::util
