#include "util/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace nlft::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_{rows}, cols_{cols}, data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t{cols_, rows_};
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

double Matrix::normInf() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += std::abs(at(r, c));
    best = std::max(best, sum);
  }
  return best;
}

double Matrix::norm1() const {
  double best = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) sum += std::abs(at(r, c));
    best = std::max(best, sum);
  }
  return best;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) throw std::invalid_argument("matrix shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) throw std::invalid_argument("matrix shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double k) {
  for (double& v : data_) v *= k;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.rows_) throw std::invalid_argument("matrix shape mismatch");
  Matrix c{a.rows_, b.cols_};
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) c.at(i, j) += aik * b.at(k, j);
    }
  }
  return c;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  if (x.size() != cols_) throw std::invalid_argument("matrix/vector shape mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) y[r] += at(r, c) * x[c];
  return y;
}

std::vector<double> Matrix::applyLeft(const std::vector<double>& x) const {
  if (x.size() != rows_) throw std::invalid_argument("matrix/vector shape mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * at(r, c);
  }
  return y;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_{std::move(a)} {
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LU requires a square matrix");
  const std::size_t n = lu_.rows();
  pivots_.resize(n);
  for (std::size_t i = 0; i < n; ++i) pivots_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::abs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_.at(r, k));
      if (v > best) { best = v; pivot = r; }
    }
    if (best == 0.0) throw std::runtime_error("LU: singular matrix");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_.at(pivot, c), lu_.at(k, c));
      std::swap(pivots_[pivot], pivots_[k]);
      pivotSign_ = -pivotSign_;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_.at(r, k) / lu_.at(k, k);
      lu_.at(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_.at(r, c) -= factor * lu_.at(k, c);
    }
  }
}

std::vector<double> LuDecomposition::solve(std::vector<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU solve: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[pivots_[i]];
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_.at(i, j) * x[j];
  // Back substitution with upper triangle.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_.at(ii, j) * x[j];
    x[ii] /= lu_.at(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solveMatrix(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n) throw std::invalid_argument("LU solve: size mismatch");
  Matrix x{n, b.cols()};
  std::vector<double> column(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) column[r] = b.at(r, c);
    const auto solved = solve(column);
    for (std::size_t r = 0; r < n; ++r) x.at(r, c) = solved[r];
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = pivotSign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_.at(i, i);
  return det;
}

Matrix matrixExponential(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("expm requires a square matrix");
  const std::size_t n = a.rows();

  // Scale so that the scaled norm is below the Pade(13) threshold.
  const double theta13 = 5.371920351148152;
  const double norm = a.norm1();
  int squarings = 0;
  if (norm > theta13) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / theta13)));
  }
  Matrix scaled = a;
  scaled *= std::pow(2.0, -squarings);

  // Pade(13) coefficients.
  static constexpr double b[] = {
      64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
      1187353796428800.0,  129060195264000.0,   10559470521600.0,
      670442572800.0,      33522128640.0,       1323241920.0,
      40840800.0,          960960.0,            16380.0,
      182.0,               1.0};

  const Matrix identity = Matrix::identity(n);
  const Matrix a2 = scaled * scaled;
  const Matrix a4 = a2 * a2;
  const Matrix a6 = a4 * a2;

  Matrix u = a6 * (b[13] * a6 + b[11] * a4 + b[9] * a2) + b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * identity;
  u = scaled * u;
  Matrix v = a6 * (b[12] * a6 + b[10] * a4 + b[8] * a2) + b[6] * a6 + b[4] * a4 + b[2] * a2 + b[0] * identity;

  // Solve (V - U) X = (V + U).
  Matrix result = LuDecomposition{v - u}.solveMatrix(v + u);
  for (int s = 0; s < squarings; ++s) result = result * result;
  return result;
}

Matrix kroneckerProduct(const Matrix& a, const Matrix& b) {
  Matrix k{a.rows() * b.rows(), a.cols() * b.cols()};
  for (std::size_t ar = 0; ar < a.rows(); ++ar)
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const double v = a.at(ar, ac);
      if (v == 0.0) continue;
      for (std::size_t br = 0; br < b.rows(); ++br)
        for (std::size_t bc = 0; bc < b.cols(); ++bc)
          k.at(ar * b.rows() + br, ac * b.cols() + bc) = v * b.at(br, bc);
    }
  return k;
}

Matrix kroneckerSum(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols() || b.rows() != b.cols())
    throw std::invalid_argument("kroneckerSum requires square matrices");
  return kroneckerProduct(a, Matrix::identity(b.rows())) +
         kroneckerProduct(Matrix::identity(a.rows()), b);
}

}  // namespace nlft::util
