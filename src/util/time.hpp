// Strong simulated-time types used throughout the framework.
//
// All discrete-event simulation runs on integer microseconds to keep event
// ordering exact and reproducible. Reliability analysis (Markov models) works
// in continuous hours and uses plain double; the two worlds only meet in
// benches, via explicit conversions.
#pragma once

#include <chrono>
#include <cstdint>
#include <compare>
#include <string>

namespace nlft::util {

/// Wall-clock stopwatch for throughput/ETA reporting.
///
/// This is the ONLY sanctioned wall-clock access outside util/rng.hpp: all
/// simulation and analysis results must be wall-clock-free so campaigns are
/// bit-reproducible (tools/determinism_lint.sh enforces it). Never let a
/// stopwatch reading influence results — observability only.
class MonotonicStopwatch {
 public:
  MonotonicStopwatch() : start_{std::chrono::steady_clock::now()} {}

  /// Seconds elapsed since construction.
  [[nodiscard]] double elapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A span of simulated time with microsecond resolution.
///
/// Value type, totally ordered, closed under addition/subtraction and under
/// scaling by integers. Negative durations are representable (useful for
/// slack arithmetic) but most APIs require non-negative values.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration microseconds(std::int64_t us) { return Duration{us}; }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000}; }
  /// Converts a floating-point second count, rounding to nearest microsecond.
  [[nodiscard]] static Duration fromSeconds(double s);

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double toSeconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double toMilliseconds() const { return static_cast<double>(us_) / 1e3; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration d) { us_ += d.us_; return *this; }
  constexpr Duration& operator-=(Duration d) { us_ -= d.us_; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.us_ + b.us_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.us_ - b.us_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.us_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  /// Integer division: how many times does `b` fit into `a` (floor).
  friend constexpr std::int64_t operator/(Duration a, Duration b) { return a.us_ / b.us_; }

  [[nodiscard]] std::string toString() const;

 private:
  constexpr explicit Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// An absolute instant on the simulated clock (microseconds since start).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{}; }
  [[nodiscard]] static constexpr SimTime fromUs(std::int64_t us) { return SimTime{us}; }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double toSeconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const SimTime&) const = default;

  friend constexpr SimTime operator+(SimTime t, Duration d) { return SimTime{t.us_ + d.us()}; }
  friend constexpr SimTime operator-(SimTime t, Duration d) { return SimTime{t.us_ - d.us()}; }
  friend constexpr Duration operator-(SimTime a, SimTime b) { return Duration::microseconds(a.us_ - b.us_); }

  [[nodiscard]] std::string toString() const;

 private:
  constexpr explicit SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// Hours expressed as double, for the continuous-time reliability world.
constexpr double kHoursPerYear = 8760.0;

/// Converts a mean-time value in seconds to a rate in events per hour.
[[nodiscard]] constexpr double ratePerHourFromSeconds(double seconds) { return 3600.0 / seconds; }

}  // namespace nlft::util
