// Cyclic redundancy checks used for frame protection (net) and data
// integrity records (core end-to-end error detection).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace nlft::util {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
///
/// Detects all single- and double-bit errors over payloads well beyond the
/// sizes used in this framework, and all burst errors up to 32 bits.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental CRC-32: feed chunks, pass the previous return value back in.
[[nodiscard]] std::uint32_t crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data);

/// CRC-16-CCITT (polynomial 0x1021, init 0xFFFF) as used by many field buses.
[[nodiscard]] std::uint16_t crc16Ccitt(std::span<const std::uint8_t> data);

/// Convenience: CRC-32 over an array of 32-bit words (little-endian bytes).
[[nodiscard]] std::uint32_t crc32Words(std::span<const std::uint32_t> words);

}  // namespace nlft::util
