#include "exec/parallel_for.hpp"

#include <algorithm>
#include <mutex>

#include "util/time.hpp"

namespace nlft::exec {

namespace {

/// Shared progress state; workers report completed chunks, the callback is
/// rate-limited and serialized under a mutex.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t totalItems, unsigned workers, const ProgressOptions& options)
      : options_{options} {
    snapshot_.totalItems = totalItems;
    snapshot_.perWorkerItems.assign(workers, 0);
  }

  void chunkDone(std::size_t items, unsigned worker) {
    if (!options_.callback) return;
    std::lock_guard<std::mutex> lock{mutex_};
    snapshot_.completedItems += items;
    snapshot_.perWorkerItems[worker] += items;
    // The very last chunk to finish always reports, so observers see 100%.
    const bool finalReport = snapshot_.completedItems == snapshot_.totalItems;
    const double elapsed = stopwatch_.elapsedSeconds();
    if (!finalReport && elapsed - lastReportAt_ < options_.minIntervalSeconds) return;
    lastReportAt_ = elapsed;
    snapshot_.elapsedSeconds = elapsed;
    snapshot_.itemsPerSecond =
        elapsed > 0.0 ? static_cast<double>(snapshot_.completedItems) / elapsed : 0.0;
    const std::size_t remaining = snapshot_.totalItems - snapshot_.completedItems;
    snapshot_.etaSeconds = snapshot_.itemsPerSecond > 0.0
                               ? static_cast<double>(remaining) / snapshot_.itemsPerSecond
                               : 0.0;
    options_.callback(snapshot_);
  }

  [[nodiscard]] bool enabled() const { return static_cast<bool>(options_.callback); }

 private:
  ProgressOptions options_;
  util::MonotonicStopwatch stopwatch_;
  std::mutex mutex_;
  ProgressSnapshot snapshot_;
  double lastReportAt_ = 0.0;
};

}  // namespace

std::size_t Parallelism::resolvedChunkSize(std::size_t items) const {
  if (chunkSize != 0) return chunkSize;
  // Auto: ~256 chunks — enough granularity for dynamic load balancing and
  // progress reporting, few enough that per-chunk RNG forks are free. A pure
  // function of `items` so the item-to-substream mapping never depends on
  // the thread count.
  return std::max<std::size_t>(1, items / 256);
}

std::size_t chunkCount(std::size_t items, std::size_t chunkSize) {
  return chunkSize == 0 ? 0 : (items + chunkSize - 1) / chunkSize;
}

std::size_t forEachChunk(std::size_t items, const Parallelism& parallelism,
                         const std::function<void(const ChunkRange&, unsigned worker)>& body,
                         CancellationToken* cancel, const ProgressOptions& progress) {
  if (items == 0) return 0;
  const std::size_t chunkSize = parallelism.resolvedChunkSize(items);
  const std::size_t chunks = chunkCount(items, chunkSize);
  const unsigned threads =
      std::min<unsigned>(parallelism.resolvedThreads(), static_cast<unsigned>(chunks));

  ProgressMeter meter{items, std::max(threads, 1u), progress};
  std::atomic<std::size_t> nextChunk{0};
  std::atomic<std::size_t> processed{0};

  const auto drainChunks = [&](unsigned worker) {
    for (;;) {
      if (cancel != nullptr && cancel->cancelled()) return;
      const std::size_t c = nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      ChunkRange range;
      range.begin = c * chunkSize;
      range.end = std::min(items, range.begin + chunkSize);
      range.index = c;
      body(range, worker);
      const std::size_t chunkItems = range.end - range.begin;
      processed.fetch_add(chunkItems, std::memory_order_relaxed);
      meter.chunkDone(chunkItems, worker);
    }
  };

  if (threads <= 1) {
    drainChunks(0);
  } else {
    ThreadPool pool{threads};
    for (unsigned w = 0; w < threads; ++w) pool.submit(drainChunks);
    pool.wait();
  }
  return processed.load();
}

}  // namespace nlft::exec
