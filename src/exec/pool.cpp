#include "exec/pool.hpp"

#include <algorithm>

namespace nlft::exec {

unsigned resolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolveThreadCount(threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void(unsigned)> task) {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    queue_.push(std::move(task));
    ++inFlight_;
    maxQueueDepth_ = std::max(maxQueueDepth_, queue_.size());
    peakInFlight_ = std::max(peakInFlight_, inFlight_);
  }
  taskReady_.notify_one();
}

std::uint64_t ThreadPool::tasksExecuted() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return tasksExecuted_;
}

std::size_t ThreadPool::maxQueueDepth() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return maxQueueDepth_;
}

std::size_t ThreadPool::peakInFlight() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return peakInFlight_;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock{mutex_};
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop(unsigned index) {
  for (;;) {
    std::function<void(unsigned)> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      taskReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task(index);
    {
      std::lock_guard<std::mutex> lock{mutex_};
      ++tasksExecuted_;
      --inFlight_;
      if (inFlight_ == 0) allDone_.notify_all();
    }
  }
}

}  // namespace nlft::exec
