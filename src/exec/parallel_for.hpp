// Deterministic chunked parallel execution.
//
// The contract that makes parallel Monte-Carlo and fault-injection campaigns
// bit-identical to their serial runs, for ANY thread count:
//
//  1. [0, items) is split into chunks whose boundaries depend only on
//     `items` and `Parallelism::chunkSize` — never on the thread count.
//  2. The caller derives one independent RNG sub-stream per chunk (fork the
//     root RNG in chunk order BEFORE running) and keeps one accumulator per
//     chunk.
//  3. After forEachChunk returns, per-chunk accumulators are merged in chunk
//     order — completion order is irrelevant.
//
// Threads only decide WHO runs a chunk, never WHAT the chunk computes or how
// results combine. `threads = 1` runs inline on the calling thread (no pool),
// so default configs pay nothing for the machinery.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "exec/pool.hpp"

namespace nlft::exec {

/// Degree of parallelism for a campaign or estimation run.
struct Parallelism {
  /// Worker threads; 1 = serial (default), 0 = all hardware threads.
  unsigned threads = 1;
  /// Items per chunk; 0 = auto. Results depend on the chunk size (it fixes
  /// the item-to-RNG-substream mapping) but NOT on `threads`.
  std::size_t chunkSize = 0;

  [[nodiscard]] unsigned resolvedThreads() const { return resolveThreadCount(threads); }
  [[nodiscard]] std::size_t resolvedChunkSize(std::size_t items) const;
};

/// Cooperative cancellation: workers observe the token between chunks, so a
/// cancelled run stops after the chunks already in flight.
class CancellationToken {
 public:
  void requestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Throughput snapshot passed to progress callbacks.
struct ProgressSnapshot {
  std::size_t completedItems = 0;
  std::size_t totalItems = 0;
  double elapsedSeconds = 0.0;
  double itemsPerSecond = 0.0;  ///< average rate since the run started
  double etaSeconds = 0.0;      ///< remaining work at the average rate
  /// Items completed by each worker; uneven entries reveal load imbalance.
  std::vector<std::size_t> perWorkerItems;
};

using ProgressFn = std::function<void(const ProgressSnapshot&)>;

struct ProgressOptions {
  ProgressFn callback;               ///< empty = no reporting
  double minIntervalSeconds = 0.25;  ///< rate limit between callbacks
};

/// A contiguous slice of the item range: [begin, end), with its chunk index.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t index = 0;
};

/// Number of chunks [0, items) splits into for the given chunk size.
[[nodiscard]] std::size_t chunkCount(std::size_t items, std::size_t chunkSize);

/// Runs body(range, worker) over every chunk of [0, items). `body` may run
/// concurrently on different chunks and must not throw; on a completed
/// (uncancelled) run the progress callback, if configured, always fires one
/// last time at 100%. Returns the number of items actually processed
/// (< items only when cancelled).
std::size_t forEachChunk(std::size_t items, const Parallelism& parallelism,
                         const std::function<void(const ChunkRange&, unsigned worker)>& body,
                         CancellationToken* cancel = nullptr,
                         const ProgressOptions& progress = {});

}  // namespace nlft::exec
