// Deterministic chunked campaign driver shared by every Monte-Carlo style
// experiment runner (fault-injection campaigns, system-level campaigns,
// reliability estimation).
//
// Experiments are split into chunks; each chunk draws from its own RNG
// sub-stream (`Rng::fork(chunkIndex)` off the campaign seed, forked in chunk
// order) and accumulates into a chunk-local Stats. Chunk results merge in
// chunk order afterwards, so for a fixed (seed, chunkSize) the campaign
// statistics are bit-identical at EVERY thread count, including 1.
//
// Sequential early stopping (docs/ESTIMATORS.md): a campaign can carry an
// EarlyStopRule that halts it once a target precision is reached. The stop
// decision is taken on CHUNK BOUNDARIES ONLY — the rule is evaluated on the
// merged prefix [0, k) for increasing k, and the campaign's result is the
// merge of chunks [0, k*) for the smallest satisfying k*. Because prefix
// contents and merge order are pure functions of (seed, chunkSize), the
// returned statistics stay bit-identical at every thread count; workers may
// speculatively execute chunks beyond k*, but those results are discarded
// deterministically.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace nlft::exec {

/// Histogram layout for per-chunk wall time (50 buckets over [0, 10] s).
inline constexpr obs::HistogramSpec kChunkSecondsSpec{0.0, 10.0, 50};

/// Sequential early-stopping rule. `shouldStop(prefix, items)` is evaluated
/// on every completed chunk prefix in increasing order (under a lock, so it
/// may be stateless or cheaply stateful); returning true freezes the
/// campaign result at that prefix. An empty callback disables stopping.
template <typename Stats>
struct EarlyStopRule {
  std::function<bool(const Stats& prefix, std::size_t items)> shouldStop;
  /// Never stop before this many experiments (guards tiny-sample CI math).
  std::size_t minItems = 0;
};

/// Result of a stoppable campaign: the merged statistics plus how much of
/// the experiment budget they actually contain.
template <typename Stats>
struct ChunkedCampaignResult {
  Stats stats;
  std::size_t itemsUsed = 0;   ///< experiments included in `stats`
  std::size_t chunksUsed = 0;  ///< chunks included in `stats`
  bool stoppedEarly = false;
};

/// Placeholder context for campaigns that need no per-chunk state.
struct NoChunkContext {};

/// Optional per-chunk lifecycle hooks. `setup(chunkIndex)` builds a
/// chunk-private context before the chunk's first experiment (e.g. the
/// snapshot cache and fast-forwarded baseline of a copy-on-inject
/// campaign); `teardown(ctx, stats)` runs after the chunk's last experiment,
/// INSIDE the worker and BEFORE the chunk is merged, so deferred work it
/// performs (and any counters it folds into `stats`) still lands in the
/// deterministic chunk-order merge. Empty hooks default-construct the
/// context and skip teardown.
template <typename Stats, typename Ctx>
struct ChunkHooks {
  std::function<Ctx(std::size_t chunkIndex)> setup;
  std::function<void(Ctx& ctx, Stats& stats)> teardown;
};

/// Runs `experiments` seeded experiments chunk by chunk, merging chunk-local
/// statistics in chunk order, with optional sequential early stopping.
///
/// Stats must be default-constructible, copyable, expose a `std::size_t
/// experiments` member (set per chunk before the first experiment) and
/// `merge(const Stats&)`. `runOne(rng, stats)` samples and classifies one
/// experiment. A cancelled campaign throws std::runtime_error("<what>:
/// cancelled") rather than returning truncated statistics (an early-stopped
/// campaign is NOT truncated: its prefix is a complete deterministic result).
///
/// `profile` (optional) receives execution profiling: deterministic
/// structure counters ("exec.items", "exec.chunks", "exec.early_stopped" —
/// they reflect the chunks INCLUDED in the result, so they are identical at
/// every thread count even when workers speculate past the stop boundary)
/// plus non-golden "wall." metrics (per-chunk wall-time histogram,
/// throughput, worker utilization — these do include speculative work).
/// The hooked core: like runStoppableChunkedCampaign (below), but each chunk
/// owns a `Ctx` built by `hooks.setup` and finalized by `hooks.teardown`,
/// and `runOne(rng, stats, ctx)` receives it. A campaign that samples into
/// the context during runOne and executes the (sorted) batch in teardown
/// keeps the RNG stream AND the merged statistics bit-identical to the
/// unhooked per-experiment execution at every thread count.
template <typename Stats, typename Ctx, typename RunOne>
ChunkedCampaignResult<Stats> runStoppableChunkedCampaignWithHooks(
    std::size_t experiments, std::uint64_t seed, const Parallelism& parallelism,
    const char* what, RunOne runOne, const ChunkHooks<Stats, Ctx>& hooks,
    const EarlyStopRule<Stats>& stop = {}, CancellationToken* cancel = nullptr,
    const ProgressFn& onProgress = {}, obs::Registry* profile = nullptr) {
  const std::size_t chunkSize = parallelism.resolvedChunkSize(experiments);
  const std::size_t chunks = chunkCount(experiments, chunkSize);
  util::Rng root{seed};
  std::vector<util::Rng> chunkRngs;
  chunkRngs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) chunkRngs.push_back(root.fork(c));
  std::vector<Stats> accumulators(chunks);

  const auto itemsInChunk = [&](std::size_t c) {
    return std::min(experiments, (c + 1) * chunkSize) - c * chunkSize;
  };

  // Early-stop bookkeeping. The contiguous completed prefix is merged
  // incrementally (in chunk order, under the mutex) and the rule evaluated
  // at every new boundary; the first satisfying prefix wins. `stopToken`
  // stops workers from claiming chunks past the decision.
  const bool stoppable = static_cast<bool>(stop.shouldStop);
  std::mutex prefixMutex;
  std::vector<std::uint8_t> chunkDone(stoppable ? chunks : 0, 0);
  Stats prefixStats;
  std::size_t prefixChunks = 0;
  std::size_t prefixItems = 0;
  bool ruleFired = false;
  std::size_t stopChunk = chunks;
  CancellationToken stopToken;
  CancellationToken* runCancel = stoppable ? &stopToken : cancel;

  const util::MonotonicStopwatch campaignClock;
  std::atomic<double> busySeconds{0.0};

  const std::size_t processed = forEachChunk(
      experiments, parallelism,
      [&](const ChunkRange& range, unsigned) {
        if (stoppable && cancel != nullptr && cancel->cancelled()) {
          stopToken.requestCancel();
          return;
        }
        const util::MonotonicStopwatch chunkClock;
        util::Rng rng = chunkRngs[range.index];
        Stats& stats = accumulators[range.index];
        stats.experiments = range.end - range.begin;
        Ctx ctx = hooks.setup ? hooks.setup(range.index) : Ctx{};
        for (std::size_t i = range.begin; i < range.end; ++i) runOne(rng, stats, ctx);
        if (hooks.teardown) hooks.teardown(ctx, stats);
        if (profile != nullptr) {
          const double seconds = chunkClock.elapsedSeconds();
          busySeconds.fetch_add(seconds, std::memory_order_relaxed);
          profile->observe("wall.exec.chunk_seconds", kChunkSecondsSpec, seconds);
        }
        if (stoppable) {
          std::lock_guard<std::mutex> lock{prefixMutex};
          if (ruleFired) return;
          chunkDone[range.index] = 1;
          while (prefixChunks < chunks && chunkDone[prefixChunks] != 0) {
            prefixStats.merge(accumulators[prefixChunks]);
            prefixItems += itemsInChunk(prefixChunks);
            ++prefixChunks;
            if (prefixItems >= stop.minItems && stop.shouldStop(prefixStats, prefixItems)) {
              ruleFired = true;
              stopChunk = prefixChunks;
              stopToken.requestCancel();
              break;
            }
          }
        }
      },
      runCancel, {onProgress, 0.25});

  const bool callerCancelled = cancel != nullptr && cancel->cancelled();
  if (callerCancelled && !ruleFired) {
    throw std::runtime_error(std::string{what} + ": cancelled");
  }
  if (!stoppable && processed < experiments) {
    throw std::runtime_error(std::string{what} + ": cancelled");
  }

  ChunkedCampaignResult<Stats> result;
  result.stoppedEarly = ruleFired;
  result.chunksUsed = ruleFired ? stopChunk : chunks;
  if (stoppable) {
    // The incremental prefix merge holds exactly chunks [0, chunksUsed) in
    // chunk order — the full merge when the rule never fired (the last
    // completing chunk drives the prefix to the end), the frozen prefix
    // otherwise (workers stop touching it once the rule fires).
    result.stats = prefixStats;
    result.itemsUsed = prefixItems;
  } else {
    for (const Stats& chunk : accumulators) result.stats.merge(chunk);
    result.itemsUsed = experiments;
  }

  if (profile != nullptr) {
    profile->add("exec.campaigns");
    profile->add("exec.items", result.itemsUsed);
    profile->add("exec.chunks", result.chunksUsed);
    if (result.stoppedEarly) profile->add("exec.early_stopped");
    const double elapsed = campaignClock.elapsedSeconds();
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(parallelism.resolvedThreads(), chunks == 0 ? 1 : chunks));
    profile->gaugeMax("wall.exec.threads", static_cast<double>(workers));
    profile->gaugeMax("wall.exec.campaign_seconds", elapsed);
    if (elapsed > 0.0) {
      profile->gaugeMax("wall.exec.items_per_second",
                        static_cast<double>(processed) / elapsed);
      profile->gaugeMax("wall.exec.worker_utilization",
                        busySeconds.load() / (elapsed * static_cast<double>(workers)));
    }
  }
  return result;
}

/// Hook-free wrapper: `runOne(rng, stats)` with no per-chunk context. This
/// is the entry point documented at the top of the file; the contract notes
/// on Stats, cancellation and profiling live here.
template <typename Stats, typename RunOne>
ChunkedCampaignResult<Stats> runStoppableChunkedCampaign(
    std::size_t experiments, std::uint64_t seed, const Parallelism& parallelism,
    const char* what, RunOne runOne, const EarlyStopRule<Stats>& stop = {},
    CancellationToken* cancel = nullptr, const ProgressFn& onProgress = {},
    obs::Registry* profile = nullptr) {
  return runStoppableChunkedCampaignWithHooks<Stats, NoChunkContext>(
      experiments, seed, parallelism, what,
      [&runOne](util::Rng& rng, Stats& stats, NoChunkContext&) { runOne(rng, stats); },
      ChunkHooks<Stats, NoChunkContext>{}, stop, cancel, onProgress, profile);
}

/// Runs `experiments` seeded experiments chunk by chunk and merges the
/// chunk-local statistics in chunk order (no early stopping; see
/// runStoppableChunkedCampaign for the full contract).
template <typename Stats, typename RunOne>
Stats runChunkedCampaign(std::size_t experiments, std::uint64_t seed,
                         const Parallelism& parallelism, const char* what, RunOne runOne,
                         CancellationToken* cancel = nullptr, const ProgressFn& onProgress = {},
                         obs::Registry* profile = nullptr) {
  return runStoppableChunkedCampaign<Stats>(experiments, seed, parallelism, what, runOne,
                                            EarlyStopRule<Stats>{}, cancel, onProgress, profile)
      .stats;
}

}  // namespace nlft::exec
