// Deterministic chunked campaign driver shared by every Monte-Carlo style
// experiment runner (fault-injection campaigns, system-level campaigns).
//
// Experiments are split into chunks; each chunk draws from its own RNG
// sub-stream (`Rng::fork(chunkIndex)` off the campaign seed, forked in chunk
// order) and accumulates into a chunk-local Stats. Chunk results merge in
// chunk order afterwards, so for a fixed (seed, chunkSize) the campaign
// statistics are bit-identical at EVERY thread count, including 1.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel_for.hpp"
#include "util/rng.hpp"

namespace nlft::exec {

/// Runs `experiments` seeded experiments chunk by chunk and merges the
/// chunk-local statistics in chunk order.
///
/// Stats must be default-constructible, expose a `std::size_t experiments`
/// member (set per chunk before the first experiment) and `merge(const
/// Stats&)`. `runOne(rng, stats)` samples and classifies one experiment.
/// A cancelled campaign throws std::runtime_error("<what>: cancelled")
/// rather than returning truncated statistics.
template <typename Stats, typename RunOne>
Stats runChunkedCampaign(std::size_t experiments, std::uint64_t seed,
                         const Parallelism& parallelism, const char* what, RunOne runOne,
                         CancellationToken* cancel = nullptr, const ProgressFn& onProgress = {}) {
  const std::size_t chunkSize = parallelism.resolvedChunkSize(experiments);
  const std::size_t chunks = chunkCount(experiments, chunkSize);
  util::Rng root{seed};
  std::vector<util::Rng> chunkRngs;
  chunkRngs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) chunkRngs.push_back(root.fork(c));
  std::vector<Stats> accumulators(chunks);

  const std::size_t processed = forEachChunk(
      experiments, parallelism,
      [&](const ChunkRange& range, unsigned) {
        util::Rng rng = chunkRngs[range.index];
        Stats& stats = accumulators[range.index];
        stats.experiments = range.end - range.begin;
        for (std::size_t i = range.begin; i < range.end; ++i) runOne(rng, stats);
      },
      cancel, {onProgress, 0.25});
  if (processed < experiments) {
    throw std::runtime_error(std::string{what} + ": cancelled");
  }

  Stats stats;
  for (const Stats& chunk : accumulators) stats.merge(chunk);
  return stats;
}

}  // namespace nlft::exec
