// Deterministic chunked campaign driver shared by every Monte-Carlo style
// experiment runner (fault-injection campaigns, system-level campaigns).
//
// Experiments are split into chunks; each chunk draws from its own RNG
// sub-stream (`Rng::fork(chunkIndex)` off the campaign seed, forked in chunk
// order) and accumulates into a chunk-local Stats. Chunk results merge in
// chunk order afterwards, so for a fixed (seed, chunkSize) the campaign
// statistics are bit-identical at EVERY thread count, including 1.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace nlft::exec {

/// Histogram layout for per-chunk wall time (50 buckets over [0, 10] s).
inline constexpr obs::HistogramSpec kChunkSecondsSpec{0.0, 10.0, 50};

/// Runs `experiments` seeded experiments chunk by chunk and merges the
/// chunk-local statistics in chunk order.
///
/// Stats must be default-constructible, expose a `std::size_t experiments`
/// member (set per chunk before the first experiment) and `merge(const
/// Stats&)`. `runOne(rng, stats)` samples and classifies one experiment.
/// A cancelled campaign throws std::runtime_error("<what>: cancelled")
/// rather than returning truncated statistics.
///
/// `profile` (optional) receives execution profiling: deterministic
/// structure counters ("exec.items", "exec.chunks" — identical at every
/// thread count) plus non-golden "wall." metrics (per-chunk wall-time
/// histogram, throughput, worker utilization). Profiling never influences
/// chunking, RNG forks or merge order, so campaign statistics stay
/// bit-identical with or without it.
template <typename Stats, typename RunOne>
Stats runChunkedCampaign(std::size_t experiments, std::uint64_t seed,
                         const Parallelism& parallelism, const char* what, RunOne runOne,
                         CancellationToken* cancel = nullptr, const ProgressFn& onProgress = {},
                         obs::Registry* profile = nullptr) {
  const std::size_t chunkSize = parallelism.resolvedChunkSize(experiments);
  const std::size_t chunks = chunkCount(experiments, chunkSize);
  util::Rng root{seed};
  std::vector<util::Rng> chunkRngs;
  chunkRngs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) chunkRngs.push_back(root.fork(c));
  std::vector<Stats> accumulators(chunks);

  const util::MonotonicStopwatch campaignClock;
  std::atomic<double> busySeconds{0.0};

  const std::size_t processed = forEachChunk(
      experiments, parallelism,
      [&](const ChunkRange& range, unsigned) {
        const util::MonotonicStopwatch chunkClock;
        util::Rng rng = chunkRngs[range.index];
        Stats& stats = accumulators[range.index];
        stats.experiments = range.end - range.begin;
        for (std::size_t i = range.begin; i < range.end; ++i) runOne(rng, stats);
        if (profile != nullptr) {
          const double seconds = chunkClock.elapsedSeconds();
          busySeconds.fetch_add(seconds, std::memory_order_relaxed);
          profile->observe("wall.exec.chunk_seconds", kChunkSecondsSpec, seconds);
        }
      },
      cancel, {onProgress, 0.25});
  if (processed < experiments) {
    throw std::runtime_error(std::string{what} + ": cancelled");
  }

  if (profile != nullptr) {
    profile->add("exec.campaigns");
    profile->add("exec.items", experiments);
    profile->add("exec.chunks", chunks);
    const double elapsed = campaignClock.elapsedSeconds();
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(parallelism.resolvedThreads(), chunks == 0 ? 1 : chunks));
    profile->gaugeMax("wall.exec.threads", static_cast<double>(workers));
    profile->gaugeMax("wall.exec.campaign_seconds", elapsed);
    if (elapsed > 0.0) {
      profile->gaugeMax("wall.exec.items_per_second",
                        static_cast<double>(experiments) / elapsed);
      profile->gaugeMax("wall.exec.worker_utilization",
                        busySeconds.load() / (elapsed * static_cast<double>(workers)));
    }
  }

  Stats stats;
  for (const Stats& chunk : accumulators) stats.merge(chunk);
  return stats;
}

}  // namespace nlft::exec
