// Fixed-size worker-thread pool — the execution substrate for parallel
// Monte-Carlo estimation and fault-injection campaigns.
//
// Design constraints (shared with parallel_for.hpp):
//  * the pool is a dumb executor: all determinism guarantees live in the
//    chunking layer on top (deterministic chunk boundaries + per-chunk RNG
//    forks + chunk-ordered merges), never in scheduling order;
//  * tasks receive their worker index so callers can keep per-worker
//    accumulators and utilization counters without any sharing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nlft::exec {

/// Worker threads to use for a requested count (0 = all hardware threads;
/// always at least 1).
[[nodiscard]] unsigned resolveThreadCount(unsigned requested);

/// A fixed-size std::thread pool draining a FIFO task queue. Tasks are
/// `void(unsigned worker)` with worker in [0, size()).
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw: the pool has no channel to
  /// report exceptions, so callers catch and encode failures themselves.
  void submit(std::function<void(unsigned)> task);

  /// Blocks until every submitted task has finished (queue empty and all
  /// workers idle). The pool stays usable afterwards.
  void wait();

  /// Profiling counters (observability only — they never influence
  /// scheduling). tasksExecuted counts tasks a worker finished;
  /// maxQueueDepth is the peak number of tasks waiting in the queue;
  /// peakInFlight the peak of queued + running tasks.
  [[nodiscard]] std::uint64_t tasksExecuted() const;
  [[nodiscard]] std::size_t maxQueueDepth() const;
  [[nodiscard]] std::size_t peakInFlight() const;

 private:
  void workerLoop(unsigned index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void(unsigned)>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;  ///< queued + currently running tasks
  bool stopping_ = false;
  std::uint64_t tasksExecuted_ = 0;
  std::size_t maxQueueDepth_ = 0;
  std::size_t peakInFlight_ = 0;
};

}  // namespace nlft::exec
