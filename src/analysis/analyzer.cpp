#include "analysis/analyzer.hpp"

#include <cstdio>
#include <sstream>

namespace nlft::analysis {

ProgramAnalysis analyzeProgram(const hw::Program& program, const AnalyzeOptions& options) {
  ProgramAnalysis analysis;
  analysis.cfg = buildCfg(program, options.entry);
  analysis.paths = enumeratePaths(analysis.cfg, program, options.paths);
  analysis.timing = computeTiming(analysis.cfg, analysis.paths, options.cycles);
  analysis.footprint = analyzeFootprint(analysis.cfg, program, options.layout);
  analysis.mmuRegions =
      deriveMmuRegions(program, analysis.footprint, options.layout, options.mmuOwner);
  analysis.budgetInstructions = deriveBudget(analysis.timing, options.budgetFactor);

  analysis.findings.insert(analysis.findings.end(), analysis.cfg.warnings.begin(),
                           analysis.cfg.warnings.end());
  analysis.findings.insert(analysis.findings.end(), analysis.paths.warnings.begin(),
                           analysis.paths.warnings.end());
  analysis.findings.insert(analysis.findings.end(), analysis.footprint.findings.begin(),
                           analysis.footprint.findings.end());
  if (analysis.paths.truncated) {
    analysis.findings.emplace_back("path enumeration truncated: WCET is only a lower bound");
  }
  return analysis;
}

ProgramAnalysis analyzeImage(const fi::TaskImage& image) {
  AnalyzeOptions options;
  options.entry = image.entry;
  options.layout.stackTop = image.stackTop;
  options.layout.stackBytes = image.stackBytes;
  options.layout.inputBase = image.inputBase;
  options.layout.inputWords = static_cast<std::uint32_t>(image.input.size());
  options.layout.outputBase = image.outputBase;
  options.layout.outputWords = image.outputWords;
  options.layout.memBytes = image.memBytes;
  return analyzeProgram(image.program, options);
}

void populateSignatureMonitor(tem::SignatureMonitor& monitor, const ProgramAnalysis& analysis) {
  for (const std::vector<std::uint32_t>& path : analysis.paths.paths) {
    monitor.addLegalPath(path);
  }
}

void applyDerivedConfig(fi::TaskImage& image, const ProgramAnalysis& analysis) {
  image.maxInstructionsPerCopy = analysis.budgetInstructions;
  image.mmuRegions = analysis.mmuRegions;
}

rt::RtaTask deriveTemRtaTask(const ProgramAnalysis& analysis, util::Duration perCycle,
                             util::Duration checkOverhead, util::Duration period,
                             util::Duration deadline, int priority) {
  const util::Duration singleCopy =
      perCycle * static_cast<std::int64_t>(analysis.timing.wcetCycles);
  return rt::temTask(singleCopy, checkOverhead, period, deadline, priority);
}

namespace {

void appendLine(std::ostringstream& out, const char* format, auto... args) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer, format, args...);
  out << buffer << '\n';
}

}  // namespace

std::string formatReport(const std::string& name, const ProgramAnalysis& analysis) {
  std::ostringstream out;
  out << "=== " << name << " ===\n";
  appendLine(out, "blocks: %zu  paths: %zu%s  edges from entry 0x%X", analysis.cfg.blocks.size(),
             analysis.paths.paths.size(), analysis.paths.truncated ? " (TRUNCATED)" : "",
             analysis.cfg.entry);

  out << "\nbasic blocks:\n";
  for (const BasicBlock& block : analysis.cfg.blocks) {
    std::ostringstream succ;
    for (std::size_t i = 0; i < block.successors.size(); ++i) {
      if (i > 0) succ << ", ";
      char buffer[16];
      std::snprintf(buffer, sizeof buffer, "0x%X", block.successors[i]);
      succ << buffer;
    }
    appendLine(out, "  [0x%03X..0x%03X) %2zu instr  -> %s%s", block.id, block.endAddress(),
               block.instructions.size(),
               block.exits ? "HALT" : succ.str().c_str(),
               block.endsInRts ? " (rts: any return site)" : "");
  }

  out << "\nlegal paths (block ids / signature):\n";
  for (const std::vector<std::uint32_t>& path : analysis.paths.paths) {
    out << "  ";
    for (std::size_t i = 0; i < path.size(); ++i) {
      char buffer[16];
      std::snprintf(buffer, sizeof buffer, "%s0x%X", i > 0 ? ">" : "", path[i]);
      out << buffer;
    }
    appendLine(out, "   sig=%08X", tem::SignatureMonitor::signatureOf(path));
  }

  out << "\ntiming:\n";
  appendLine(out, "  BCET %llu instr / %llu cycles",
             static_cast<unsigned long long>(analysis.timing.bcetInstructions),
             static_cast<unsigned long long>(analysis.timing.bcetCycles));
  appendLine(out, "  WCET %llu instr / %llu cycles%s",
             static_cast<unsigned long long>(analysis.timing.wcetInstructions),
             static_cast<unsigned long long>(analysis.timing.wcetCycles),
             analysis.timing.exact ? "" : " (lower bound only)");
  appendLine(out, "  derived budget: %llu instructions",
             static_cast<unsigned long long>(analysis.budgetInstructions));

  out << "\nmemory footprint:\n";
  appendLine(out, "  reads: %zu words, writes: %zu words", analysis.footprint.readWords.size(),
             analysis.footprint.writeWords.size());
  if (analysis.footprint.stackDepthKnown) {
    appendLine(out, "  stack low water: 0x%X", analysis.footprint.stackLowWater);
  } else {
    out << "  stack depth: unknown\n";
  }
  out << "  derived MMU regions:\n";
  for (const hw::MmuRegion& region : analysis.mmuRegions) {
    appendLine(out, "    %-10s base 0x%04X size %4u perm %c%c%c", region.name.c_str(),
               region.base, region.size,
               (region.permissions & hw::accessMask(hw::Access::Read)) != 0 ? 'r' : '-',
               (region.permissions & hw::accessMask(hw::Access::Write)) != 0 ? 'w' : '-',
               (region.permissions & hw::accessMask(hw::Access::Execute)) != 0 ? 'x' : '-');
  }

  if (analysis.findings.empty()) {
    out << "\nfindings: none (statically clean)\n";
  } else {
    out << "\nfindings:\n";
    for (const std::string& finding : analysis.findings) out << "  ! " << finding << '\n';
  }
  return out.str();
}

}  // namespace nlft::analysis
