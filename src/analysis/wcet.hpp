// Static execution-time bounds from enumerated legal paths.
//
// The kernel's execution-time monitor (budget timer) and the fault-tolerant
// response-time analysis (paper Section 2.8, Burns/Davis/Punnekkat) both
// need per-task WCETs. Instead of guessing constants, the bounds are
// computed over the CFG's legal paths: instruction counts feed the
// machine-level budget (hw::Machine counts instructions), cycle counts feed
// the kernel/RTA time domain via a per-instruction cost model.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"

namespace nlft::analysis {

/// Per-opcode cycle costs of the simulated in-order core. Deterministic and
/// data-independent (no cache/pipeline state), so path enumeration gives
/// exact bounds rather than estimates.
struct CycleModel {
  CycleModel();
  [[nodiscard]] std::uint32_t cost(hw::Opcode opcode) const {
    return cycles[static_cast<std::size_t>(opcode)];
  }
  std::array<std::uint32_t, hw::kMaxOpcode + 1> cycles{};
};

struct TimingBounds {
  std::uint64_t wcetInstructions = 0;
  std::uint64_t bcetInstructions = 0;
  std::uint64_t wcetCycles = 0;
  std::uint64_t bcetCycles = 0;
  std::vector<std::uint32_t> worstPath;  ///< block ids of the WCET path
  /// True when the path set was truncated: bounds are then only lower
  /// bounds on the true WCET and must not be used for budgets.
  bool exact = true;
};

/// Timing bounds over an enumerated path set.
[[nodiscard]] TimingBounds computeTiming(const Cfg& cfg, const PathSet& paths,
                                         const CycleModel& model = {});

/// Execution-time-monitor budget (in instructions) from a WCET bound:
/// ceil(factor * WCET), never below WCET + 1 so the worst legal path always
/// completes. The margin absorbs the paper's budget-timer granularity.
[[nodiscard]] std::uint64_t deriveBudget(const TimingBounds& timing, double factor = 1.25);

}  // namespace nlft::analysis
