// Runtime trace validation against the static CFG.
//
// hw::Machine can record the PC of every executed instruction
// (setTraceSink). Checking that trace against the statically derived CFG
// gives fault-injection campaigns a ground-truth control-flow signal: any
// executed edge that is not in the CFG is a *confirmed* control-flow error,
// independent of whether a runtime mechanism (signature monitor, MMU,
// exception) happened to catch it. Comparing the two yields true
// detection-coverage numbers instead of proxies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"

namespace nlft::analysis {

struct TraceCheck {
  bool controlFlowIntact = true;
  std::size_t violationIndex = 0;  ///< index into the trace of the bad PC
  std::uint32_t fromPc = 0;
  std::uint32_t toPc = 0;
  std::string reason;  ///< empty when intact
};

/// Validates a PC trace: the first PC must be the CFG entry and every
/// transition must be a legal CFG edge (RTS edges use the conservative
/// any-return-site set, so a verdict of "broken" is always a true positive).
[[nodiscard]] TraceCheck checkTrace(const Cfg& cfg, const std::vector<std::uint32_t>& pcTrace);

/// Compresses a PC trace to the sequence of entered basic blocks — the
/// format tem::SignatureMonitor consumes via enterBlock().
[[nodiscard]] std::vector<std::uint32_t> blockTrace(const Cfg& cfg,
                                                    const std::vector<std::uint32_t>& pcTrace);

}  // namespace nlft::analysis
