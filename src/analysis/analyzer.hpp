// Facade of the static guest-program analyzer.
//
// One call — analyzeImage()/analyzeProgram() — derives everything the NLFT
// runtime mechanisms need as reference data:
//   * legal block paths  -> tem::SignatureMonitor (control-flow checking, 2.7)
//   * WCET/BCET bounds   -> execution-time-monitor budgets and rt::RtaTask
//                           wcet/recovery for fault-tolerant RTA (2.8)
//   * memory footprint   -> hw::MmuRegion configs (fault confinement, 2.4)
// "Analyze once, enforce at runtime": the hand-maintained constants the
// repo previously used for the BBW guest tasks are all produced here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/footprint.hpp"
#include "analysis/trace_check.hpp"
#include "analysis/wcet.hpp"
#include "core/control_flow.hpp"
#include "faults/campaign.hpp"
#include "rtkernel/rta.hpp"
#include "util/time.hpp"

namespace nlft::analysis {

struct AnalyzeOptions {
  std::uint32_t entry = 0;
  MemoryLayout layout{};
  PathEnumOptions paths{};
  CycleModel cycles{};
  /// Budget-timer headroom over the WCET (paper: the budget must cover the
  /// worst legal path but stay tight enough to kill runaway copies early).
  double budgetFactor = 1.25;
  hw::MmuTaskId mmuOwner = 1;  ///< task id campaign machines run under
};

/// Everything the analyzer derives for one guest program.
struct ProgramAnalysis {
  Cfg cfg;
  PathSet paths;
  TimingBounds timing;
  MemoryFootprint footprint;
  std::vector<hw::MmuRegion> mmuRegions;
  std::uint64_t budgetInstructions = 0;
  /// CFG/path/footprint warnings and findings, merged. Empty means the
  /// program is statically clean.
  std::vector<std::string> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

[[nodiscard]] ProgramAnalysis analyzeProgram(const hw::Program& program,
                                             const AnalyzeOptions& options);

/// Convenience: analyzes a task image with options drawn from its fields.
[[nodiscard]] ProgramAnalysis analyzeImage(const fi::TaskImage& image);

/// Registers every enumerated legal path with the signature monitor —
/// replaces hand-listed addLegalPath() calls for assembled guest tasks.
void populateSignatureMonitor(tem::SignatureMonitor& monitor, const ProgramAnalysis& analysis);

/// Installs the derived execution-time budget and MMU regions on an image.
void applyDerivedConfig(fi::TaskImage& image, const ProgramAnalysis& analysis);

/// Builds a TEM-protected RTA task from the derived WCET: one copy costs
/// `perCycle * wcetCycles`, the fault-free demand is two copies plus a
/// comparison, and the recovery slack one more copy plus the vote
/// (rt::temTask, Section 2.8).
[[nodiscard]] rt::RtaTask deriveTemRtaTask(const ProgramAnalysis& analysis,
                                           util::Duration perCycle,
                                           util::Duration checkOverhead, util::Duration period,
                                           util::Duration deadline, int priority);

/// Human-readable report: block table, paths, timing, footprint, findings.
[[nodiscard]] std::string formatReport(const std::string& name, const ProgramAnalysis& analysis);

}  // namespace nlft::analysis
