#include "analysis/footprint.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <optional>
#include <set>

namespace nlft::analysis {

namespace {

/// Flat two-level lattice per register: unknown (top) or a single constant.
struct AbsVal {
  bool known = false;
  std::uint32_t value = 0;

  [[nodiscard]] static AbsVal constant(std::uint32_t v) { return {true, v}; }
  [[nodiscard]] static AbsVal top() { return {}; }

  bool operator==(const AbsVal& other) const {
    return known == other.known && (!known || value == other.value);
  }
};

using AbsState = std::array<AbsVal, hw::kRegisterCount>;

/// Join of two states; returns true if `into` changed.
bool merge(AbsState& into, const AbsState& from) {
  bool changed = false;
  for (int r = 0; r < hw::kRegisterCount; ++r) {
    if (into[r].known && !(into[r] == from[r])) {
      into[r] = AbsVal::top();
      changed = true;
    }
  }
  return changed;
}

std::string hex(std::uint32_t value) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "0x%X", value);
  return buffer;
}

class FootprintAnalyzer {
 public:
  FootprintAnalyzer(const Cfg& cfg, const hw::Program& program, const MemoryLayout& layout)
      : cfg_{cfg}, program_{program}, layout_{layout} {}

  MemoryFootprint run() {
    if (cfg_.block(cfg_.entry) == nullptr) {
      footprint_.findings.push_back("no entry block; footprint unknown");
      footprint_.stackDepthKnown = false;
      return std::move(footprint_);
    }
    // Initial state mirrors the kernel's context setup before each copy
    // (fi::resetContext): registers zeroed, SP at the stack top.
    AbsState entryState;
    for (auto& reg : entryState) reg = AbsVal::constant(0);
    entryState[hw::kStackPointer] = AbsVal::constant(layout_.stackTop);
    footprint_.stackLowWater = layout_.stackTop;

    states_[cfg_.entry] = entryState;
    worklist_.insert(cfg_.entry);
    while (!worklist_.empty()) {
      const std::uint32_t id = *worklist_.begin();
      worklist_.erase(worklist_.begin());
      const BasicBlock* block = cfg_.block(id);
      if (block == nullptr) continue;
      AbsState state = states_[id];
      for (const CodeInstruction& ci : block->instructions) transfer(ci, state);
      for (const std::uint32_t succ : block->successors) propagate(succ, state);
    }
    finalize();
    return std::move(footprint_);
  }

 private:
  void propagate(std::uint32_t blockId, const AbsState& state) {
    const auto it = states_.find(blockId);
    if (it == states_.end()) {
      states_[blockId] = state;
      worklist_.insert(blockId);
    } else if (merge(it->second, state)) {
      worklist_.insert(blockId);
    }
  }

  void recordAccess(std::uint32_t address, bool isWrite, std::uint32_t pc) {
    (isWrite ? writes_ : reads_).insert(address);
    if (address % 4 != 0 || address + 4 > layout_.memBytes) {
      finding((isWrite ? "unmapped store to " : "unmapped load from ") + hex(address) + " at " +
              hex(pc));
    }
  }

  void recordStackMove(const AbsVal& sp, std::uint32_t pc) {
    if (!sp.known) {
      if (footprint_.stackDepthKnown) {
        finding("stack pointer not statically known at " + hex(pc));
      }
      footprint_.stackDepthKnown = false;
      return;
    }
    footprint_.stackLowWater = std::min(footprint_.stackLowWater, sp.value);
  }

  void finding(std::string text) {
    if (std::find(footprint_.findings.begin(), footprint_.findings.end(), text) ==
        footprint_.findings.end()) {
      footprint_.findings.push_back(std::move(text));
    }
  }

  void transfer(const CodeInstruction& ci, AbsState& state) {
    const hw::Instruction& inst = ci.inst;
    const auto imm = static_cast<std::uint32_t>(inst.imm);
    const AbsVal rs1 = state[inst.rs1];
    const AbsVal rs2 = state[inst.rs2];
    const auto fold = [&](auto op) {
      state[inst.rd] = rs1.known && rs2.known ? AbsVal::constant(op(rs1.value, rs2.value))
                                              : AbsVal::top();
    };
    switch (inst.opcode) {
      case hw::Opcode::Nop:
      case hw::Opcode::Halt:
      case hw::Opcode::Cmp:
      case hw::Opcode::Cmpi:
      case hw::Opcode::Beq:
      case hw::Opcode::Bne:
      case hw::Opcode::Blt:
      case hw::Opcode::Bge:
      case hw::Opcode::Jmp:
        break;
      case hw::Opcode::Ldi:
        state[inst.rd] = AbsVal::constant(imm);
        break;
      case hw::Opcode::Mov:
        state[inst.rd] = rs1;
        break;
      case hw::Opcode::Add:
        fold([](std::uint32_t a, std::uint32_t b) { return a + b; });
        break;
      case hw::Opcode::Sub:
        fold([](std::uint32_t a, std::uint32_t b) { return a - b; });
        break;
      case hw::Opcode::Mul:
        fold([](std::uint32_t a, std::uint32_t b) { return a * b; });
        break;
      case hw::Opcode::Divs:
        state[inst.rd] = AbsVal::top();  // divisor range not tracked
        break;
      case hw::Opcode::And:
        fold([](std::uint32_t a, std::uint32_t b) { return a & b; });
        break;
      case hw::Opcode::Or:
        fold([](std::uint32_t a, std::uint32_t b) { return a | b; });
        break;
      case hw::Opcode::Xor:
        fold([](std::uint32_t a, std::uint32_t b) { return a ^ b; });
        break;
      case hw::Opcode::Shl:
        state[inst.rd] = rs1.known ? AbsVal::constant(rs1.value << (imm & 31u)) : AbsVal::top();
        break;
      case hw::Opcode::Shr:
        state[inst.rd] = rs1.known ? AbsVal::constant(rs1.value >> (imm & 31u)) : AbsVal::top();
        break;
      case hw::Opcode::Addi:
        state[inst.rd] = rs1.known ? AbsVal::constant(rs1.value + imm) : AbsVal::top();
        break;
      case hw::Opcode::Ld:
        if (rs1.known) {
          recordAccess(rs1.value + imm, false, ci.address);
        } else {
          finding("load with unresolved base r" + std::to_string(inst.rs1) + " at " +
                  hex(ci.address));
        }
        state[inst.rd] = AbsVal::top();  // loaded data is input-dependent
        break;
      case hw::Opcode::St:
        if (rs1.known) {
          recordAccess(rs1.value + imm, true, ci.address);
        } else {
          finding("store with unresolved base r" + std::to_string(inst.rs1) + " at " +
                  hex(ci.address));
        }
        break;
      case hw::Opcode::Jsr:
      case hw::Opcode::Push: {
        AbsVal& sp = state[hw::kStackPointer];
        if (sp.known) sp = AbsVal::constant(sp.value - 4);
        recordStackMove(sp, ci.address);
        break;
      }
      case hw::Opcode::Rts:
      case hw::Opcode::Pop: {
        AbsVal& sp = state[hw::kStackPointer];
        if (inst.opcode == hw::Opcode::Pop) state[inst.rd] = AbsVal::top();
        if (sp.known) sp = AbsVal::constant(sp.value + 4);
        recordStackMove(sp, ci.address);
        break;
      }
    }
  }

  [[nodiscard]] bool inStack(std::uint32_t address) const {
    return address >= layout_.stackTop - layout_.stackBytes && address < layout_.stackTop;
  }

  void finalize() {
    const auto inRange = [](std::uint32_t address, std::uint32_t base, std::uint32_t bytes) {
      return address >= base && address < base + bytes;
    };
    for (const std::uint32_t address : reads_) {
      footprint_.readWords.push_back(address);
      const bool ok = inRange(address, layout_.inputBase, layout_.inputWords * 4) ||
                      inRange(address, layout_.outputBase, layout_.outputWords * 4) ||
                      inStack(address) || isText(address);
      if (!ok) finding("out-of-footprint read at " + hex(address));
    }
    for (const std::uint32_t address : writes_) {
      footprint_.writeWords.push_back(address);
      const bool ok = inRange(address, layout_.outputBase, layout_.outputWords * 4) ||
                      inStack(address);
      if (!ok) finding("out-of-footprint write at " + hex(address));
    }
    if (footprint_.stackDepthKnown &&
        footprint_.stackLowWater < layout_.stackTop - layout_.stackBytes) {
      finding("stack exceeds declared region: low water " + hex(footprint_.stackLowWater));
    }
  }

  [[nodiscard]] bool isText(std::uint32_t address) const {
    // `.word` constant tables live inside the program image; reads there are
    // code-relative and legal.
    return address >= program_.origin && address < program_.origin + program_.sizeBytes();
  }

  const Cfg& cfg_;
  const hw::Program& program_;
  const MemoryLayout& layout_;
  MemoryFootprint footprint_;
  std::map<std::uint32_t, AbsState> states_;
  std::set<std::uint32_t> worklist_;
  std::set<std::uint32_t> reads_;
  std::set<std::uint32_t> writes_;
};

/// Collapses a sorted unique word-address list into contiguous [base, size)
/// runs, skipping addresses already covered by `covered`.
std::vector<std::pair<std::uint32_t, std::uint32_t>> contiguousRuns(
    const std::vector<std::uint32_t>& words,
    const std::vector<hw::MmuRegion>& covered) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
  const auto isCovered = [&](std::uint32_t address) {
    return std::any_of(covered.begin(), covered.end(), [&](const hw::MmuRegion& region) {
      return address >= region.base && address < region.base + region.size;
    });
  };
  for (const std::uint32_t address : words) {
    if (isCovered(address)) continue;
    if (!runs.empty() && runs.back().first + runs.back().second == address) {
      runs.back().second += 4;
    } else {
      runs.emplace_back(address, 4);
    }
  }
  return runs;
}

}  // namespace

MemoryFootprint analyzeFootprint(const Cfg& cfg, const hw::Program& program,
                                 const MemoryLayout& layout) {
  return FootprintAnalyzer{cfg, program, layout}.run();
}

std::vector<hw::MmuRegion> deriveMmuRegions(const hw::Program& program,
                                            const MemoryFootprint& footprint,
                                            const MemoryLayout& layout, hw::MmuTaskId owner) {
  std::vector<hw::MmuRegion> regions;
  const auto rx =
      static_cast<std::uint8_t>(hw::accessMask(hw::Access::Read) | hw::accessMask(hw::Access::Execute));
  const auto ro = hw::accessMask(hw::Access::Read);
  const auto rw =
      static_cast<std::uint8_t>(hw::accessMask(hw::Access::Read) | hw::accessMask(hw::Access::Write));
  regions.push_back({program.origin, program.sizeBytes(), owner, rx, "text"});
  regions.push_back({layout.stackTop - layout.stackBytes, layout.stackBytes, owner, rw, "stack"});

  int index = 0;
  for (const auto& [base, size] : contiguousRuns(footprint.writeWords, regions)) {
    regions.push_back({base, size, owner, rw, "rw" + std::to_string(index++) + "@" +
                                                  std::to_string(base)});
  }
  index = 0;
  for (const auto& [base, size] : contiguousRuns(footprint.readWords, regions)) {
    regions.push_back({base, size, owner, ro, "ro" + std::to_string(index++) + "@" +
                                                  std::to_string(base)});
  }
  return regions;
}

}  // namespace nlft::analysis
