#include "analysis/wcet.hpp"

#include <algorithm>
#include <cmath>

namespace nlft::analysis {

CycleModel::CycleModel() {
  cycles.fill(1);  // single-cycle ALU/branch baseline
  const auto set = [this](hw::Opcode op, std::uint32_t c) {
    cycles[static_cast<std::size_t>(op)] = c;
  };
  set(hw::Opcode::Ld, 2);    // memory access incl. ECC decode
  set(hw::Opcode::St, 2);
  set(hw::Opcode::Push, 2);
  set(hw::Opcode::Pop, 2);
  set(hw::Opcode::Jsr, 3);   // memory access + PC redirect
  set(hw::Opcode::Rts, 3);
  set(hw::Opcode::Mul, 3);
  set(hw::Opcode::Divs, 12);
}

TimingBounds computeTiming(const Cfg& cfg, const PathSet& paths, const CycleModel& model) {
  TimingBounds timing;
  timing.exact = !paths.truncated;
  bool first = true;
  for (const std::vector<std::uint32_t>& path : paths.paths) {
    std::uint64_t instructions = 0;
    std::uint64_t cycleCount = 0;
    for (std::uint32_t blockId : path) {
      const BasicBlock* block = cfg.block(blockId);
      if (block == nullptr) continue;
      instructions += block->instructions.size();
      for (const CodeInstruction& ci : block->instructions) {
        cycleCount += model.cost(ci.inst.opcode);
      }
    }
    if (first || instructions > timing.wcetInstructions) {
      timing.wcetInstructions = instructions;
      timing.worstPath = path;
    }
    if (first || instructions < timing.bcetInstructions) timing.bcetInstructions = instructions;
    if (first || cycleCount > timing.wcetCycles) timing.wcetCycles = cycleCount;
    if (first || cycleCount < timing.bcetCycles) timing.bcetCycles = cycleCount;
    first = false;
  }
  return timing;
}

std::uint64_t deriveBudget(const TimingBounds& timing, double factor) {
  const auto scaled = static_cast<std::uint64_t>(
      std::ceil(factor * static_cast<double>(timing.wcetInstructions)));
  return std::max(scaled, timing.wcetInstructions + 1);
}

}  // namespace nlft::analysis
